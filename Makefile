# Convenience targets; the source of truth for the gate is scripts/verify.sh.

.PHONY: build test vet race fmt verify bench clean-cache

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/exp/... ./internal/sim/...

fmt:
	gofmt -l cmd internal examples

# The full pre-merge gate: build + test + vet + race + gofmt.
verify:
	sh scripts/verify.sh

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...

# Remove the default on-disk compile cache and any run checkpoints, forcing
# the next distda-repro/-run to compile and execute everything cold.
clean-cache:
	rm -rf .distda-cache
	rm -f *.ckpt
