# Convenience targets; the source of truth for the gate is scripts/verify.sh.

.PHONY: build test vet race fmt verify bench clean-cache

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/exp/... ./internal/sim/...

fmt:
	gofmt -l cmd internal examples

# The full pre-merge gate: build + test + vet + race + gofmt.
verify:
	sh scripts/verify.sh

# Runs every benchmark once and records the numbers as BENCH_<date>.json
# (schema: docs/results-bench.txt). BENCHTIME=5x make bench for stable runs.
bench:
	sh scripts/bench.sh

# Remove the default on-disk compile cache and any run checkpoints, forcing
# the next distda-repro/-run to compile and execute everything cold.
clean-cache:
	rm -rf .distda-cache
	rm -f *.ckpt
