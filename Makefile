# Convenience targets; the source of truth for the gate is scripts/verify.sh.

# Pinned lint tool versions — keep in sync with scripts/verify.sh and
# .github/workflows/ci.yml.
STATICCHECK_VERSION = 2025.1.1
GOVULNCHECK_VERSION = v1.1.4

.PHONY: build test vet race fmt lint lint-tools verify bench serve serve-smoke clean-cache

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/engine/... ./internal/exp/... ./internal/sim/... \
	    ./internal/serve/... ./internal/serveclient/... ./internal/backend/... \
	    ./internal/pimdram/...

fmt:
	gofmt -l cmd internal examples

# Static analysis + known-vulnerability scan. Skips any tool that is not
# installed (the hermetic dev container ships neither); `make lint-tools`
# installs the pinned versions where the network allows it.
lint:
	sh scripts/verify.sh lint

lint-tools:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# The full pre-merge gate: build + test + vet + race + lint + gofmt.
verify:
	sh scripts/verify.sh

# Run the simulation-as-a-service job server on localhost:8080 with the
# default on-disk caches (see docs/SERVING.md for the API).
serve:
	go run ./cmd/distda-serve -addr localhost:8080 -cache-dir .distda-cache -state-dir .distda-serve

# End-to-end smoke test: start a server, submit jobs over HTTP, assert the
# served bytes match the batch CLIs.
serve-smoke:
	sh scripts/serve_smoke.sh

# Runs every benchmark SAMPLES times (default 5) and records mean/stddev as
# BENCH_<date>.json (schema: docs/results-bench.txt). SAMPLES=10 and/or
# BENCHTIME=5x make bench for tighter statistics. Compare two snapshots with
# scripts/bench_check.sh (the CI regression gate).
bench:
	sh scripts/bench.sh

# Remove the default on-disk compile cache and any run checkpoints, forcing
# the next distda-repro/-run to compile and execute everything cold.
clean-cache:
	rm -rf .distda-cache
	rm -f *.ckpt
