# Convenience targets; the source of truth for the gate is scripts/verify.sh.

.PHONY: build test vet race fmt verify bench

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/exp/... ./internal/sim/...

fmt:
	gofmt -l cmd internal examples

# The full pre-merge gate: build + test + vet + race + gofmt.
verify:
	sh scripts/verify.sh

bench:
	go test -bench . -benchtime 1x -run '^$$' ./...
