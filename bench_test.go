// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (§VI). Each benchmark regenerates its table from the
// simulator (the full 12-workload × 6-configuration matrix is built once
// and shared), reports the figure's headline numbers as custom metrics, and
// prints the rendered table under -v.
//
// The input scale defaults to the CI-sized "test" datasets; set
// DISTDA_SCALE=bench (or paper) to reproduce at evaluation sizes:
//
//	DISTDA_SCALE=bench go test -bench=Fig -benchtime=1x
package distda_test

import (
	"context"
	"os"
	"runtime"
	"sync"
	"testing"

	"distda/internal/exp"
	"distda/internal/report"
	"distda/internal/sim"
	"distda/internal/stats"
	"distda/internal/workloads"
)

func benchScale() workloads.Scale {
	switch os.Getenv("DISTDA_SCALE") {
	case "bench":
		return workloads.ScaleBench
	case "paper":
		return workloads.ScalePaper
	default:
		return workloads.ScaleTest
	}
}

var (
	matrixOnce sync.Once
	matrix     *exp.Matrix
	matrixErr  error
)

func sharedMatrix(b *testing.B) *exp.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		matrix, matrixErr = exp.Build(context.Background(), exp.Options{Scale: benchScale()})
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrix
}

// BenchmarkReproMatrixSerial / BenchmarkReproMatrixParallel time one full
// workload × configuration matrix build end to end — the dominant cost of a
// distda-repro run. Serial pins the worker pool to one goroutine; Parallel
// uses one worker per available CPU (what distda-repro does by default).
// Both paths produce bit-identical matrices (see internal/exp tests), so
// ns/op is directly comparable. Run with -benchtime=1x for a single timed
// build:
//
//	go test -bench='ReproMatrix' -benchtime=1x
func benchReproMatrix(b *testing.B, workers int) {
	b.Helper()
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Build(context.Background(), exp.Options{Scale: scale, Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReproMatrixSerial(b *testing.B) { benchReproMatrix(b, 1) }

func BenchmarkReproMatrixParallel(b *testing.B) {
	benchReproMatrix(b, runtime.GOMAXPROCS(0))
}

// runOne simulates a representative workload under a configuration once per
// benchmark iteration so ns/op reflects real simulation work.
func runOne(b *testing.B, w *workloads.Workload, cfg sim.Config) *sim.Result {
	b.Helper()
	res, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// gmVs extracts the geomean of a per-workload metric of cfg against base.
func gmVs(m *exp.Matrix, base, cfg string, f func(base, r *sim.Result) float64) float64 {
	var vals []float64
	for _, w := range m.Workloads {
		vals = append(vals, f(m.Res[w.Name][base], m.Res[w.Name][cfg]))
	}
	return stats.Geomean(vals)
}

func logTable(b *testing.B, t *report.Table) {
	b.Helper()
	if testing.Verbose() {
		b.Log("\n" + t.Render())
	}
}

func BenchmarkFig07EnergyEfficiency(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig7EnergyEfficiency())
	w := workloads.FDTD2D(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.EnergyEfficiencyVs(base) }), "xEnergyEffVsOoO")
}

func BenchmarkFig08CacheAccesses(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig8CacheAccesses())
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F", func(base, r *sim.Result) float64 {
		return stats.Ratio(float64(base.CacheL1+base.CacheL2+base.CacheL3),
			float64(r.CacheL1+r.CacheL2+r.CacheL3))
	}), "xFewerCacheAccesses")
	w := workloads.Tracking(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
}

func BenchmarkFig09AccessDistribution(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig9AccessDistribution())
	r := m.Res["seidel-2d"]["Dist-DA-F"]
	total := float64(r.IntraBytes + r.DABytes + r.AABytes)
	w := workloads.Seidel2D(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
	b.ReportMetric(100*float64(r.IntraBytes)/total, "pctIntraSeidel")
}

func BenchmarkFig10NoCTraffic(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig10NoCTraffic())
	// Inter-accelerator traffic reduction, Mono-DA vs Dist-DA.
	var mono, dist int64
	for _, w := range m.Workloads {
		rm := m.Res[w.Name]["Mono-DA-IO"]
		rd := m.Res[w.Name]["Dist-DA-F"]
		mono += rm.NoCBytes["acc_ctrl"] + rm.NoCBytes["acc_data"]
		dist += rd.NoCBytes["acc_ctrl"] + rd.NoCBytes["acc_data"]
	}
	w := workloads.Disparity(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.MonoDAIO())
	}
	ratio := 1.0
	if dist > 0 && mono > 0 {
		ratio = float64(mono) / float64(dist)
	}
	b.ReportMetric(ratio, "xLessAccTrafficVsMono")
}

func BenchmarkFig11aIPC(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig11aIPC())
	w := workloads.ADI(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAIO())
	}
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return stats.Ratio(r.IPC(), base.IPC()) }), "xIPCVsOoO")
}

func BenchmarkFig11bSpeedup(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Fig11bSpeedup())
	w := workloads.Disparity(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.SpeedupVs(base) }), "xSpeedupVsOoO")
	b.ReportMetric(gmVs(m, "Mono-DA-IO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.SpeedupVs(base) }), "xSpeedupVsMonoDA")
}

func BenchmarkFig12aCaseStudies(b *testing.B) {
	t, err := exp.Fig12aCaseStudies(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.SpMV(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), exp.AnnotateSpMVBNS(w)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12bMultithread(b *testing.B) {
	t, err := exp.Fig12bMultithread(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.BFSMT(benchScale())
	cfg := sim.DistDAIO()
	cfg.NoStreams = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunThreads(w.Kernel, w.Params, w.NewData(), cfg, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13Clocking(b *testing.B) {
	t, err := exp.Fig13Clocking(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.Seidel2D(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAIO().WithClock(3))
	}
}

func BenchmarkFig14SoftwareOpt(b *testing.B) {
	t, err := exp.Fig14SoftwareOpt(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.PCA(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAIOSW())
	}
}

func BenchmarkTab05MechanismCoverage(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Tab5MechanismCoverage())
	w := workloads.Pagerank(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAIO())
	}
}

func BenchmarkTab06OffloadCharacteristics(b *testing.B) {
	m := sharedMatrix(b)
	t, err := m.Tab6OffloadCharacteristics()
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.Cholesky(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAIO())
	}
}

func BenchmarkTab03AreaModel(b *testing.B) {
	logTable(b, exp.Tab3Area())
	w := workloads.NW(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
}

func BenchmarkSensWorkingSet(b *testing.B) {
	t, err := exp.SensWorkingSet(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.FDTD2D(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.MonoDAIO())
	}
}

func BenchmarkHeadline(b *testing.B) {
	m := sharedMatrix(b)
	logTable(b, m.Headline())
	logTable(b, m.DataMovement())
	w := workloads.PointerChase(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAF())
	}
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.EnergyEfficiencyVs(base) }), "xEnergyEff")
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.SpeedupVs(base) }), "xSpeedup")
	b.ReportMetric(gmVs(m, "OoO", "Dist-DA-F",
		func(base, r *sim.Result) float64 { return r.DataMovementReductionVs(base) }), "xDataMovement")
}

// Ablation benches (DESIGN.md §5).

func ablBench(b *testing.B, mod func(*sim.Config)) {
	w := workloads.FDTD2D(benchScale())
	cfg := sim.DistDAIO()
	mod(&cfg)
	base := runOne(b, w, sim.DistDAIO())
	variant := runOne(b, w, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, cfg)
	}
	b.ReportMetric(variant.SpeedupVs(base), "xSpeedupVsDefault")
	b.ReportMetric(variant.EnergyEfficiencyVs(base), "xEnergyEffVsDefault")
}

func BenchmarkAblBufferSizeSmall(b *testing.B) {
	ablBench(b, func(c *sim.Config) { c.BufElems = 16 })
}

func BenchmarkAblBufferSizeLarge(b *testing.B) {
	ablBench(b, func(c *sim.Config) { c.BufElems = 1024 })
}

func BenchmarkAblCombining(b *testing.B) {
	ablBench(b, func(c *sim.Config) { c.Combining = false })
}

func BenchmarkAblObjConstraint(b *testing.B) {
	ablBench(b, func(c *sim.Config) { c.NoObjConstr = true })
}

func BenchmarkAblPlacement(b *testing.B) {
	ablBench(b, func(c *sim.Config) { c.PlaceAtHost = true })
}

func BenchmarkAblPrefetcher(b *testing.B) {
	// Host prefetcher off affects the OoO baseline: measure OoO itself.
	w := workloads.FDTD2D(benchScale())
	cfg := sim.OoO()
	cfg.HostPrefetch = false
	base := runOne(b, w, sim.OoO())
	variant := runOne(b, w, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, cfg)
	}
	b.ReportMetric(variant.SpeedupVs(base), "xSpeedupVsDefault")
}

func BenchmarkExtOffChip(b *testing.B) {
	t, err := exp.OffChipExtension(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.Pathfinder(benchScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, sim.DistDAOffChip())
	}
}

// BenchmarkPIMWorkload is the headline entry for the PIM-in-DRAM backend:
// one streaming workload simulated end to end on bank-level compute at the
// memory controller, with the near-L3-vs-in-DRAM comparison table rendered
// under -v. Gated by scripts/bench_check.sh in CI.
func BenchmarkPIMWorkload(b *testing.B) {
	t, err := exp.PIMExtension(benchScale())
	if err != nil {
		b.Fatal(err)
	}
	logTable(b, t)
	w := workloads.Pathfinder(benchScale())
	cfg := sim.DistDAPIM()
	near := runOne(b, w, sim.DistDAIO())
	pim := runOne(b, w, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(b, w, cfg)
	}
	b.ReportMetric(pim.SpeedupVs(near), "xSpeedupVsNearL3")
}
