// distda-inspect dumps the compiler's artifacts for a workload: the DFG of
// each offloadable region (optionally as Graphviz dot), the partitioned
// accelerator definitions with their access declarations and interface
// mechanisms, and the disassembled micro-programs.
//
// Usage:
//
//	distda-inspect -w seidel-2d
//	distda-inspect -w spmv -mono -dot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"distda/internal/cliutil"
	"distda/internal/compiler"
	"distda/internal/ir"
)

func main() {
	name := flag.String("w", "", "workload name")
	mono := flag.Bool("mono", false, "compile in monolithic (Mono-CA/DA) mode")
	dot := flag.Bool("dot", false, "emit the region DFGs as Graphviz dot")
	showSrc := flag.Bool("src", false, "print the kernel source before the compiler artifacts")
	profileKeys := flag.Bool("profile-keys", false, "print the folded-stack key space (kernel;region keys and per-accel component labels) a profiled run would emit, then exit")
	scaleName := flag.String("scale", "bench", "input scale: test, bench, paper")
	httpAddr := flag.String("http", "", "serve live introspection (expvar, pprof) on this address while inspecting, e.g. localhost:6060")
	flag.Parse()
	if *name == "" {
		flag.Usage()
		os.Exit(cliutil.ExitUsage)
	}
	if *httpAddr != "" {
		intro, err := cliutil.ServeIntrospection(*httpAddr, nil, nil)
		if err != nil {
			fatal(err)
		}
		// Graceful stop on the normal exit path; error paths os.Exit and
		// tear the listener down with the process.
		defer intro.Shutdown(context.Background())
		fmt.Fprintf(os.Stderr, "distda-inspect: introspection on http://%s (/debug/vars, /debug/pprof/)\n", intro.Addr())
	}
	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	w, err := cliutil.LookupWorkload(*name, scale)
	if err != nil {
		fatal(err)
	}
	mode := compiler.ModeDist
	if *mono {
		mode = compiler.ModeMono
	}
	c, err := compiler.Compile(w.Kernel, compiler.Options{Mode: mode})
	if err != nil {
		fatal(err)
	}
	if *profileKeys {
		// Static view of the folded-stack key space: the profiler keys
		// execution by kernel;region;component (see internal/profile), and
		// the component labels for offloaded regions come from the
		// partitioned accelerator IDs (printed as core:<id> here; CGRA
		// substrates label the same IDs fabric:<id>). This prints the keys
		// a profiled run of this kernel would emit, without simulating
		// anything.
		for _, info := range c.Infos {
			r := info.Region
			if !info.Offloaded() {
				fmt.Printf("%s;%s (not offloaded: %s)\n", w.Kernel.Name, r.Name, info.Why)
				continue
			}
			fmt.Printf("%s;%s;[dispatch]\n", w.Kernel.Name, r.Name)
			fmt.Printf("%s;%s;[queue]\n", w.Kernel.Name, r.Name)
			for _, a := range r.Accels {
				fmt.Printf("%s;%s;core:%d\n", w.Kernel.Name, r.Name, a.ID)
			}
			fmt.Printf("%s;%s;[writeback]\n", w.Kernel.Name, r.Name)
		}
		return
	}
	if *showSrc {
		fmt.Println(ir.Format(w.Kernel))
	}
	fmt.Printf("kernel %s: %d innermost regions\n\n", w.Name, len(c.Regions))
	for i, info := range c.Infos {
		r := info.Region
		fmt.Printf("--- region %d (%s): %s", i, r.Name, r.Class)
		if r.FoldedEpilogue {
			fmt.Printf(", epilogue folded")
		}
		fmt.Println()
		if !info.Offloaded() {
			fmt.Printf("    not offloaded: %s\n\n", info.Why)
			continue
		}
		wdt, hgt, _ := info.Graph.Dims()
		fmt.Printf("    DFG: %d nodes (%dx%d), %d micro-ops (%d B)\n",
			len(info.Graph.Nodes), wdt, hgt, info.Insts, info.Insts*8)
		if *dot {
			fmt.Println(info.Graph.Dot(r.Name))
		}
		for _, a := range r.Accels {
			fmt.Printf("    accel %d (%s): objects %v, anchor %q, place %s, trips %s\n",
				a.ID, a.Name, a.Objects, a.AnchorObj, a.Place, exprStr(a.Trip.Count))
			for _, acc := range a.Accesses {
				switch acc.Kind {
				case 0, 1: // streams
					fmt.Printf("      %%a%d %-10s %s start=%s stride=%s len=%s\n",
						acc.ID, acc.Kind, acc.Obj, exprStr(acc.Start), exprStr(acc.Stride), exprStr(acc.Length))
				default:
					fmt.Printf("      %%a%d %-10s peer=accel%d.%%a%d\n", acc.ID, acc.Kind, acc.Peer.Accel, acc.Peer.Access)
				}
			}
			for _, sb := range a.ScalarInit {
				fmt.Printf("      cp_set_rf r%d <- %s\n", sb.Reg, exprStr(sb.Expr))
			}
			for _, sb := range a.ScalarOut {
				fmt.Printf("      cp_load_rf %s <- r%d\n", sb.Name, sb.Reg)
			}
			fmt.Print(indent(a.Program.String(), "      "))
		}
		fmt.Println()
	}
}

func exprStr(e ir.Expr) string {
	if e == nil {
		return "-"
	}
	return e.String()
}

func indent(s, pad string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += pad + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += pad + s[start:] + "\n"
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distda-inspect:", err)
	os.Exit(cliutil.ExitError)
}
