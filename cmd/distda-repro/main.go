// distda-repro regenerates every table and figure of the paper's evaluation
// (§VI) from the simulator. Each figure prints as an aligned text table with
// the paper's target numbers noted alongside.
//
// Usage:
//
//	distda-repro -all                 # everything (default scale: bench)
//	distda-repro -fig 7 -fig 11b     # specific figures
//	distda-repro -tab 6 -scale test  # Table VI at CI scale
//	distda-repro -all -parallel 8 -trace-dir traces -metrics
//	distda-repro -all -cache-dir .distda-cache -checkpoint run.ckpt \
//	             -cell-timeout 5m   # resumable, fault-tolerant run
//
// Exit codes: 0 success, 1 error, 2 usage, 3 completed with degraded (n/a)
// matrix cells (see -cell-timeout).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"distda/internal/cliutil"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/exp"
	"distda/internal/obs"
	"distda/internal/profile"
	"distda/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point. Every -fig / -tab selection is
// validated before anything is computed or printed, so an unknown name
// fails with a non-zero exit and no partial tables on stdout.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distda-repro", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var figs, tabs cliutil.StringList
	scaleName := fs.String("scale", "bench", "input scale: test, bench, paper")
	all := fs.Bool("all", false, "regenerate every table and figure")
	headline := fs.Bool("headline", false, "print the abstract's headline geomeans")
	ablations := fs.Bool("ablations", false, "run the DESIGN.md ablation benches")
	sens := fs.Bool("sens", false, "working-set sensitivity")
	params := fs.Bool("params", false, "print Table III parameters")
	area := fs.Bool("area", false, "print the area model")
	offchip := fs.Bool("offchip", false, "evaluate the §VII off-chip placement extension")
	pim := fs.Bool("pim", false, "compare near-L3 offload against the PIM-in-DRAM backend")
	parallel := fs.Int("parallel", 0, "worker count for the experiment matrix (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	engineMode := fs.String("engine", "adaptive", "engine scheduler: adaptive, event, naive (bit-identical output, wall-clock only)")
	shards := fs.Int("shards", 1, "goroutine shards per offload launch, one per NUCA island (bit-identical output, wall-clock only)")
	metrics := fs.Bool("metrics", false, "print the matrix's merged per-component metrics table (includes artifact cache hit/miss counters)")
	statsPath := fs.String("stats", "", "write the matrix's merged gem5-style stats dump (cycle/energy attribution) to this file")
	foldedPath := fs.String("folded", "", "write the matrix's folded stacks of simulated time (FlameGraph/speedscope input) to this file")
	breakdown := fs.Bool("breakdown", false, "print the offload latency breakdown table (dispatch/queue/execute/writeback)")
	shardStats := fs.Bool("shard-stats", false, "print the matrix's merged per-island shard attribution (busy/barrier-wait wall-clock, window counts)")
	httpAddr := fs.String("http", "", "serve live run introspection on this address (/progress JSON + expvar + pprof), e.g. localhost:6060")
	traceDir := fs.String("trace-dir", "", "write one Chrome trace JSON per matrix cell into this directory")
	cacheDir := fs.String("cache-dir", "", "content-addressed compile cache directory; reused across runs (empty = in-memory only)")
	checkpoint := fs.String("checkpoint", "", "JSON checkpoint path: rewritten after every completed matrix cell; an existing file resumes only the missing cells")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell wall-clock deadline; a timed-out cell renders as n/a and the run exits 3 (0 = unbounded)")
	retries := fs.Int("retries", 0, "retry budget per cell for transient failures")
	hangCell := fs.String("hang-cell", "", "TESTING: hang the given workload/config cell until its deadline (e.g. fdtd-2d/Dist-DA-IO)")
	fs.Var(&figs, "fig", "figure to regenerate (7, 8, 9, 10, 11a, 11b, 12a, 12b, 13, 14); repeatable")
	fs.Var(&tabs, "tab", "table to regenerate (3, 4, 5, 6); repeatable")
	if err := fs.Parse(args); err != nil {
		return cliutil.ExitUsage
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "distda-repro:", err)
		return cliutil.ExitError
	}

	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		return fail(err)
	}
	sel := exp.Selection{
		Figs: figs, Tabs: tabs,
		Headline: *headline, Params: *params, Sens: *sens,
		Area: *area, OffChip: *offchip, PIM: *pim, Ablations: *ablations,
	}
	if *all {
		sel.SetAll()
	}
	// Validate every selection up front: a typo must not cost a matrix
	// build, and must not leave earlier tables on stdout.
	if err := sel.Validate(); err != nil {
		return fail(err)
	}
	if sel.Empty() {
		fs.Usage()
		return cliutil.ExitUsage
	}

	// Observability: per-cell tracers are drawn serially in cell order and
	// written out (deterministically named) once the matrix is built, so
	// -parallel never changes file names or contents.
	observe := exp.Observe{}
	var met *trace.Metrics
	if *metrics {
		met = trace.NewMetrics()
		observe.Metrics = met
	}
	var prof *profile.Profiler
	if *statsPath != "" || *foldedPath != "" || *breakdown {
		prof = profile.New()
		observe.Profile = prof
	}
	var shStats *shard.Stats
	if *shardStats {
		shStats = &shard.Stats{}
	}
	type cellTrace struct {
		path string
		tr   *trace.Tracer
	}
	var cellTraces []cellTrace
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			return fail(err)
		}
		dir := *traceDir
		observe.Tracer = func(workload, config string) *trace.Tracer {
			tr := trace.New()
			cellTraces = append(cellTraces, cellTrace{
				path: filepath.Join(dir, fmt.Sprintf("%s-%s.trace.json", workload, config)),
				tr:   tr,
			})
			return tr
		}
	}

	// The resumable runner: cached compilation, per-cell deadlines, and a
	// checkpoint that lets an interrupted run pick up where it stopped.
	emode, err := engine.ParseMode(*engineMode)
	if err != nil {
		return fail(err)
	}
	buildOpts := exp.Options{
		Scale:       scale,
		Workers:     *parallel,
		Observe:     observe,
		Cache:       cliutil.OpenCache(*cacheDir),
		Checkpoint:  *checkpoint,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		EngineMode:  emode,
		Shards:      *shards,
		ShardStats:  shStats,
	}
	// Live introspection: the /progress view is fed per-cell completion
	// events from exp.Build; expvar and pprof expose the host process.
	var reg *obs.Registry
	if *httpAddr != "" {
		reg = obs.New()
		prog := profile.NewProgress(0)
		intro, err := cliutil.ServeIntrospection(*httpAddr, prog, reg)
		if err != nil {
			return fail(err)
		}
		defer intro.Shutdown(context.Background())
		fmt.Fprintf(stderr, "distda-repro: introspection on http://%s (/progress, /metrics, /debug/vars, /debug/pprof/)\n", intro.Addr())
		buildOpts.Progress = func(ev exp.ProgressEvent) {
			prog.SetTotal(ev.Total)
			prog.Record(profile.CellStatus{
				Workload: ev.Workload, Config: ev.Config,
				Dur: ev.Dur, Degraded: ev.Degraded, Resumed: ev.Resumed,
			})
		}
	}
	if *hangCell != "" {
		target := *hangCell
		buildOpts.Hook = func(ctx context.Context, workload, config string, attempt int) error {
			if workload+"/"+config == target {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		}
	}

	var matrix *exp.Matrix
	var buildErr error
	needMatrix := func() *exp.Matrix {
		if matrix == nil && buildErr == nil {
			fmt.Fprintf(stderr, "building %s-scale workload x configuration matrix (12 x 6 runs)...\n", scale)
			m, err := exp.Build(context.Background(), buildOpts)
			if err != nil {
				buildErr = err
				return nil
			}
			matrix = m
			var degraded []string
			for w, byCfg := range m.Degraded {
				for c, reason := range byCfg {
					degraded = append(degraded, fmt.Sprintf("%s/%s: %s", w, c, reason))
				}
			}
			sort.Strings(degraded)
			for _, d := range degraded {
				fmt.Fprintln(stderr, "distda-repro: cell degraded to n/a:", d)
			}
			for _, ct := range cellTraces {
				if err := cliutil.WriteTrace(ct.tr, ct.path); err != nil {
					buildErr = err
					return nil
				}
			}
			if len(cellTraces) > 0 {
				fmt.Fprintf(stderr, "distda-repro: wrote %d trace files to %s\n", len(cellTraces), *traceDir)
			}
		}
		return matrix
	}

	// All selected tables and figures render through exp.RenderSelection —
	// the same entry point the distda-serve job server uses — so the bytes
	// on stdout for a given selection are identical across both front ends.
	if err := exp.RenderSelection(stdout, scale, sel, func() (*exp.Matrix, error) {
		if m := needMatrix(); m != nil {
			return m, nil
		}
		return nil, buildErr
	}); err != nil {
		return fail(err)
	}
	if met != nil {
		if matrix == nil {
			fmt.Fprintln(stderr, "distda-repro: -metrics set but no matrix-backed output was selected; nothing collected")
		} else {
			fmt.Fprintln(stdout, met.Table().Render())
		}
	}
	if shStats != nil {
		if matrix == nil {
			fmt.Fprintln(stderr, "distda-repro: -shard-stats set but no matrix-backed output was selected; nothing collected")
		} else {
			shStats.Record(reg) // nil registry no-ops
			shStats.Extern(func(name, desc string, v float64) {
				prof.Extern(name, desc, v) // nil profiler no-ops
			})
			shStats.WriteReport(stdout)
		}
	}
	if prof != nil {
		if matrix == nil {
			fmt.Fprintln(stderr, "distda-repro: profiling flags set but no matrix-backed output was selected; nothing collected")
		}
		if *breakdown {
			fmt.Fprintln(stdout, prof.LatencyBreakdown().Render())
		}
		if *statsPath != "" {
			if err := cliutil.WriteStats(prof, *statsPath); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "distda-repro: wrote stats dump to %s\n", *statsPath)
		}
		if *foldedPath != "" {
			if err := cliutil.WriteFolded(prof, *foldedPath); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "distda-repro: wrote folded stacks to %s\n", *foldedPath)
		}
	}
	if matrix != nil && matrix.DegradedCount() > 0 {
		fmt.Fprintf(stderr, "distda-repro: %d matrix cell(s) degraded to n/a\n", matrix.DegradedCount())
		return cliutil.ExitDegraded
	}
	return cliutil.ExitOK
}
