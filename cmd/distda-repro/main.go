// distda-repro regenerates every table and figure of the paper's evaluation
// (§VI) from the simulator. Each figure prints as an aligned text table with
// the paper's target numbers noted alongside.
//
// Usage:
//
//	distda-repro -all                 # everything (default scale: bench)
//	distda-repro -fig 7 -fig 11b     # specific figures
//	distda-repro -tab 6 -scale test  # Table VI at CI scale
package main

import (
	"flag"
	"fmt"
	"os"

	"distda/internal/exp"
	"distda/internal/workloads"
)

type figList []string

func (f *figList) String() string { return fmt.Sprint(*f) }
func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs, tabs figList
	scaleName := flag.String("scale", "bench", "input scale: test, bench, paper")
	all := flag.Bool("all", false, "regenerate every table and figure")
	headline := flag.Bool("headline", false, "print the abstract's headline geomeans")
	ablations := flag.Bool("ablations", false, "run the DESIGN.md ablation benches")
	sens := flag.Bool("sens", false, "working-set sensitivity")
	params := flag.Bool("params", false, "print Table III parameters")
	area := flag.Bool("area", false, "print the area model")
	offchip := flag.Bool("offchip", false, "evaluate the §VII off-chip placement extension")
	parallel := flag.Int("parallel", 0, "worker count for the experiment matrix (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	flag.Var(&figs, "fig", "figure to regenerate (7, 8, 9, 10, 11a, 11b, 12a, 12b, 13, 14); repeatable")
	flag.Var(&tabs, "tab", "table to regenerate (3, 4, 5, 6); repeatable")
	flag.Parse()

	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *all {
		figs = figList{"7", "8", "9", "10", "11a", "11b", "12a", "12b", "13", "14"}
		tabs = figList{"3", "4", "5", "6"}
		*headline = true
		*sens = true
		*area = true
		*ablations = true
		*offchip = true
	}
	if len(figs) == 0 && len(tabs) == 0 && !*headline && !*ablations && !*sens && !*params && !*area && !*offchip {
		flag.Usage()
		os.Exit(2)
	}

	var matrix *exp.Matrix
	needMatrix := func() *exp.Matrix {
		if matrix == nil {
			fmt.Fprintf(os.Stderr, "building %s-scale workload x configuration matrix (12 x 6 runs)...\n", scale)
			m, err := exp.BuildMatrixParallel(scale, *parallel)
			if err != nil {
				fatal(err)
			}
			matrix = m
		}
		return matrix
	}

	if *params {
		fmt.Println(exp.Tab3Params().Render())
	}
	for _, tab := range tabs {
		switch tab {
		case "3":
			fmt.Println(exp.Tab3Params().Render())
		case "4":
			fmt.Println(needMatrix().Tab4Workloads().Render())
		case "5":
			fmt.Println(needMatrix().Tab5MechanismCoverage().Render())
		case "6":
			t, err := needMatrix().Tab6OffloadCharacteristics()
			if err != nil {
				fatal(err)
			}
			fmt.Println(t.Render())
		default:
			fatal(fmt.Errorf("unknown table %q", tab))
		}
	}
	for _, fig := range figs {
		switch fig {
		case "7":
			fmt.Println(needMatrix().Fig7EnergyEfficiency().Render())
		case "8":
			fmt.Println(needMatrix().Fig8CacheAccesses().Render())
		case "9":
			fmt.Println(needMatrix().Fig9AccessDistribution().Render())
		case "10":
			fmt.Println(needMatrix().Fig10NoCTraffic().Render())
		case "11a":
			fmt.Println(needMatrix().Fig11aIPC().Render())
		case "11b":
			fmt.Println(needMatrix().Fig11bSpeedup().Render())
		case "12a":
			t, err := exp.Fig12aCaseStudies(scale)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t.Render())
		case "12b":
			t, err := exp.Fig12bMultithread(scale)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t.Render())
		case "13":
			t, err := exp.Fig13Clocking(scale)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t.Render())
		case "14":
			t, err := exp.Fig14SoftwareOpt(scale)
			if err != nil {
				fatal(err)
			}
			fmt.Println(t.Render())
		default:
			fatal(fmt.Errorf("unknown figure %q", fig))
		}
	}
	if *headline {
		fmt.Println(needMatrix().Headline().Render())
		fmt.Println(needMatrix().DataMovement().Render())
	}
	if *sens {
		t, err := exp.SensWorkingSet(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *area {
		fmt.Println(exp.Tab3Area().Render())
	}
	if *offchip {
		t, err := exp.OffChipExtension(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
	if *ablations {
		t, err := exp.Ablations(scale)
		if err != nil {
			fatal(err)
		}
		fmt.Println(t.Render())
	}
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "bench":
		return workloads.ScaleBench, nil
	case "paper":
		return workloads.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want test, bench or paper)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distda-repro:", err)
	os.Exit(1)
}
