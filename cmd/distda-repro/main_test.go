package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunValidation table-tests the CLI front end: every -fig / -tab
// selection is validated before anything is computed, so an unknown name
// exits non-zero with an empty stdout — never a partial set of tables.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		exit      int
		wantErr   string // substring of stderr
		wantOut   string // substring of stdout
		wantNoOut bool   // stdout must be empty
	}{
		{name: "no selection", args: nil, exit: 2, wantNoOut: true},
		{name: "unknown flag", args: []string{"-bogus"}, exit: 2, wantNoOut: true},
		{name: "unknown scale", args: []string{"-scale", "huge", "-tab", "3"},
			exit: 1, wantErr: `unknown scale "huge"`, wantNoOut: true},
		{name: "unknown figure", args: []string{"-fig", "99"},
			exit: 1, wantErr: `unknown figure "99"`, wantNoOut: true},
		{name: "unknown table", args: []string{"-tab", "9"},
			exit: 1, wantErr: `unknown table "9"`, wantNoOut: true},
		// The critical partial-output case: a valid selection listed before
		// an invalid one must not print before validation rejects the run.
		{name: "valid tab then unknown fig", args: []string{"-tab", "3", "-fig", "nope"},
			exit: 1, wantErr: `unknown figure "nope"`, wantNoOut: true},
		{name: "valid fig then unknown tab", args: []string{"-fig", "7", "-tab", "nope"},
			exit: 1, wantErr: `unknown table "nope"`, wantNoOut: true},
		{name: "params", args: []string{"-params"}, exit: 0, wantOut: "Table III"},
		{name: "tab 3", args: []string{"-tab", "3"}, exit: 0, wantOut: "Table III"},
		{name: "area", args: []string{"-area"}, exit: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if tc.wantNoOut && stdout.Len() != 0 {
				t.Errorf("run(%v) wrote to stdout on failure:\n%s", tc.args, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr = %q, want substring %q", tc.args, stderr.String(), tc.wantErr)
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("run(%v) stdout = %q, want substring %q", tc.args, stdout.String(), tc.wantOut)
			}
		})
	}
}

// TestMetricsWithoutMatrixWarns checks -metrics with only non-matrix output
// exits cleanly and explains that nothing was collected.
func TestMetricsWithoutMatrixWarns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-params", "-metrics"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run exited %d", got)
	}
	if !strings.Contains(stderr.String(), "no matrix-backed output") {
		t.Errorf("stderr = %q, want a no-matrix warning", stderr.String())
	}
}
