package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunValidation table-tests the CLI front end: every -fig / -tab
// selection is validated before anything is computed, so an unknown name
// exits non-zero with an empty stdout — never a partial set of tables.
func TestRunValidation(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		exit      int
		wantErr   string // substring of stderr
		wantOut   string // substring of stdout
		wantNoOut bool   // stdout must be empty
	}{
		{name: "no selection", args: nil, exit: 2, wantNoOut: true},
		{name: "unknown flag", args: []string{"-bogus"}, exit: 2, wantNoOut: true},
		{name: "unknown scale", args: []string{"-scale", "huge", "-tab", "3"},
			exit: 1, wantErr: `unknown scale "huge"`, wantNoOut: true},
		{name: "unknown figure", args: []string{"-fig", "99"},
			exit: 1, wantErr: `unknown figure "99"`, wantNoOut: true},
		{name: "unknown table", args: []string{"-tab", "9"},
			exit: 1, wantErr: `unknown table "9"`, wantNoOut: true},
		// The critical partial-output case: a valid selection listed before
		// an invalid one must not print before validation rejects the run.
		{name: "valid tab then unknown fig", args: []string{"-tab", "3", "-fig", "nope"},
			exit: 1, wantErr: `unknown figure "nope"`, wantNoOut: true},
		{name: "valid fig then unknown tab", args: []string{"-fig", "7", "-tab", "nope"},
			exit: 1, wantErr: `unknown table "nope"`, wantNoOut: true},
		{name: "params", args: []string{"-params"}, exit: 0, wantOut: "Table III"},
		{name: "tab 3", args: []string{"-tab", "3"}, exit: 0, wantOut: "Table III"},
		{name: "area", args: []string{"-area"}, exit: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if tc.wantNoOut && stdout.Len() != 0 {
				t.Errorf("run(%v) wrote to stdout on failure:\n%s", tc.args, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr = %q, want substring %q", tc.args, stderr.String(), tc.wantErr)
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("run(%v) stdout = %q, want substring %q", tc.args, stdout.String(), tc.wantOut)
			}
		})
	}
}

// TestDegradedCellExitsThree induces a per-cell timeout through the test
// hook flag: the hung cell renders n/a, every other cell still prints, and
// the process exits with the distinct degraded code 3.
func TestDegradedCellExitsThree(t *testing.T) {
	var stdout, stderr bytes.Buffer
	got := run([]string{"-fig", "7", "-scale", "test",
		"-cell-timeout", "1s", "-hang-cell", "fdtd-2d/Dist-DA-IO",
		"-parallel", "4"}, &stdout, &stderr)
	if got != 3 {
		t.Fatalf("exit = %d, want 3 (degraded)\nstderr: %s", got, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "n/a") {
		t.Errorf("stdout lacks the n/a cell:\n%s", out)
	}
	if !strings.Contains(out, "Fig. 7") {
		t.Errorf("degradation suppressed the table:\n%s", out)
	}
	// The other workloads' Dist-DA-IO column still carries numbers: count
	// rows — every workload row must be present.
	if !strings.Contains(out, "bfs") || !strings.Contains(out, "geomean") {
		t.Errorf("table lost healthy rows:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "degraded") {
		t.Errorf("stderr = %q, want a degradation notice", stderr.String())
	}
}

// TestCacheDirRecompilesNothing runs the same matrix selection twice over
// one -cache-dir: the second process-equivalent run must serve every
// artifact from the disk store (artifact/compiles = 0 in its -metrics).
func TestCacheDirRecompilesNothing(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	runOnce := func() (string, int) {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-tab", "4", "-scale", "test", "-metrics",
			"-cache-dir", filepath.Join(dir, "cache"), "-checkpoint", ckpt}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
		}
		return stdout.String(), code
	}
	first, _ := runOnce()
	if v := metricValue(t, first, "artifact", "compiles"); v == "0" {
		t.Fatal("cold run compiled nothing — cache test is vacuous")
	}
	second, _ := runOnce()
	// The checkpoint completed, so the resumed run executes zero cells and
	// issues zero compile requests; without the checkpoint it would disk-hit.
	if v := metricValue(t, second, "artifact", "compiles"); v != "0" {
		t.Errorf("warm run compiled %s artifacts, want 0\n%s", v, second)
	}
}

// metricValue extracts a counter from the rendered metrics table.
func metricValue(t *testing.T, out, comp, metric string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		f := strings.Fields(line)
		if len(f) == 3 && f[0] == comp && f[1] == metric {
			return f[2]
		}
	}
	t.Fatalf("metric %s/%s not found in output:\n%s", comp, metric, out)
	return ""
}

// TestMetricsWithoutMatrixWarns checks -metrics with only non-matrix output
// exits cleanly and explains that nothing was collected.
func TestMetricsWithoutMatrixWarns(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-params", "-metrics"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run exited %d", got)
	}
	if !strings.Contains(stderr.String(), "no matrix-backed output") {
		t.Errorf("stderr = %q, want a no-matrix warning", stderr.String())
	}
}
