// distda-run executes one workload under one configuration and prints the
// collected result: cycles, energy breakdown, traffic categories, interface
// mechanism usage and validation status.
//
// Usage:
//
//	distda-run -w fdtd-2d -c Dist-DA-F -scale bench
//	distda-run -workload fdtd-2d -config dist-da-io -trace out.json -metrics
//	distda-run -w bfs -c OoO
//	distda-run -w fdtd-2d -cache-dir .distda-cache   # reuse compilations
//	distda-run -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"distda/internal/artifact"
	"distda/internal/cliutil"
	"distda/internal/compiler"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/obs"
	"distda/internal/profile"
	"distda/internal/sim"
	"distda/internal/trace"
	"distda/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: it parses args, executes the
// requested simulation, writes human output to stdout and errors to stderr,
// and returns the process exit code. Unknown workload or configuration
// names fail with a non-zero exit before any simulation output is printed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distda-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var name, cfgName string
	fs.StringVar(&name, "w", "", "workload name (see -list)")
	fs.StringVar(&name, "workload", "", "workload name (alias of -w)")
	fs.StringVar(&cfgName, "c", "Dist-DA-F", "configuration: OoO, Mono-CA, Mono-DA-IO, Mono-DA-F, Dist-DA-IO, Dist-DA-F (case-insensitive)")
	fs.StringVar(&cfgName, "config", "", "configuration (alias of -c)")
	scaleName := fs.String("scale", "bench", "input scale: test, bench, paper")
	ghz := fs.Int("ghz", 0, "override accelerator clock (1, 2, 3)")
	threads := fs.Int("threads", 1, "software threads for parallel-annotated loops")
	naive := fs.Bool("naive-engine", false, "use the reference one-tick-at-a-time engine scheduler (bit-identical results, slower)")
	shards := fs.Int("shards", 1, "execute each offload launch across up to N goroutine shards, one per NUCA island (bit-identical results, wall-clock only)")
	engineMode := fs.String("engine", "adaptive", "engine scheduler: adaptive, event, naive (bit-identical results, wall-clock only)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	metrics := fs.Bool("metrics", false, "print the per-component metrics table after the result")
	statsPath := fs.String("stats", "", "write a gem5-style stats.txt profile dump to this path")
	foldedPath := fs.String("folded", "", "write folded stacks (FlameGraph/speedscope input) to this path")
	breakdown := fs.Bool("breakdown", false, "print the offload latency breakdown table (dispatch/queue/execute/writeback)")
	shardStats := fs.Bool("shard-stats", false, "print per-island shard attribution (busy/barrier-wait wall-clock, window counts) after the result")
	httpAddr := fs.String("http", "", "serve live introspection (expvar, pprof) on this address, e.g. localhost:6060")
	cacheDir := fs.String("cache-dir", "", "content-addressed compile cache directory (shared with distda-repro; empty = in-memory only)")
	list := fs.Bool("list", false, "list workloads and exit")
	if err := fs.Parse(args); err != nil {
		return cliutil.ExitUsage
	}
	if cfgName == "" {
		cfgName = "Dist-DA-F"
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "distda-run:", err)
		return cliutil.ExitError
	}

	scale, err := cliutil.ParseScale(*scaleName)
	if err != nil {
		return fail(err)
	}
	if *list {
		for _, w := range workloads.All(scale) {
			fmt.Fprintf(stdout, "%-14s %s\n", w.Name, w.Desc)
		}
		fmt.Fprintf(stdout, "%-14s %s (case study)\n", "spmv", workloads.SpMV(scale).Desc)
		fmt.Fprintf(stdout, "%-14s %s (multithreaded)\n", "bfs-mt", workloads.BFSMT(scale).Desc)
		fmt.Fprintf(stdout, "%-14s %s (multithreaded)\n", "pathfinder-mt", workloads.PathfinderMT(scale).Desc)
		return cliutil.ExitOK
	}
	if name == "" {
		fs.Usage()
		return cliutil.ExitUsage
	}
	w, err := cliutil.LookupWorkload(name, scale)
	if err != nil {
		return fail(err)
	}
	cfg, err := cliutil.LookupConfig(cfgName)
	if err != nil {
		return fail(err)
	}
	if *ghz != 0 {
		cfg = cfg.WithClock(*ghz)
	}
	mode, err := engine.ParseMode(*engineMode)
	if err != nil {
		return fail(err)
	}
	cfg.EngineMode = mode
	cfg.NaiveEngine = *naive
	cfg.Shards = *shards
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New()
		cfg.Trace = tr
	}
	var met *trace.Metrics
	if *metrics {
		met = trace.NewMetrics()
		cfg.Metrics = met
	}
	var prof *profile.Profiler
	if *statsPath != "" || *foldedPath != "" || *breakdown {
		prof = profile.New()
		cfg.Profile = prof
	}
	var shStats *shard.Stats
	var reg *obs.Registry
	if *shardStats {
		shStats = &shard.Stats{}
		cfg.ShardStats = shStats
	}
	if *httpAddr != "" {
		reg = obs.New()
		intro, err := cliutil.ServeIntrospection(*httpAddr, nil, reg)
		if err != nil {
			return fail(err)
		}
		defer intro.Shutdown(context.Background())
		fmt.Fprintf(stderr, "distda-run: introspection on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", intro.Addr())
	}

	// Compile through the content-addressed cache (disk-backed under
	// -cache-dir); the key covers the strip-mined thread kernel, so -threads
	// variants hash distinctly.
	cfg.Threads = *threads
	kernel := sim.ThreadKernel(w.Kernel, *threads)
	var compiled *compiler.Compiled
	if cfg.HasAccel() {
		cache := cliutil.OpenCache(*cacheDir)
		copts := sim.CompileOptions(cfg)
		key := artifact.Key(w.Name, scale.String(), kernel, copts)
		compiled, err = cache.GetOrCompile(key, kernel, func() (*compiler.Compiled, error) {
			return compiler.Compile(kernel, copts)
		})
		if err != nil {
			return fail(err)
		}
		if *cacheDir != "" {
			st := cache.Stats()
			fmt.Fprintf(stderr, "distda-run: cache %s: %d disk hit(s), %d compile(s)\n", *cacheDir, st.DiskHits, st.Compiles)
		}
	}
	res, err := sim.RunPrecompiled(kernel, w.Params, w.NewData(), cfg, compiled)
	if err != nil {
		return fail(err)
	}
	cliutil.FprintResult(stdout, res)
	if met != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, met.Table().Render())
	}
	if shStats != nil {
		shStats.Record(reg) // nil registry no-ops
		shStats.Extern(func(name, desc string, v float64) {
			prof.Extern(name, desc, v) // nil profiler no-ops
		})
		fmt.Fprintln(stdout)
		shStats.WriteReport(stdout)
	}
	if prof != nil {
		if *breakdown {
			fmt.Fprintln(stdout)
			fmt.Fprintln(stdout, prof.LatencyBreakdown().Render())
		}
		if *statsPath != "" {
			if err := cliutil.WriteStats(prof, *statsPath); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "distda-run: wrote stats dump to %s\n", *statsPath)
		}
		if *foldedPath != "" {
			if err := cliutil.WriteFolded(prof, *foldedPath); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "distda-run: wrote folded stacks to %s\n", *foldedPath)
		}
	}
	if tr != nil {
		if err := cliutil.WriteTrace(tr, *traceOut); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "distda-run: %s -> %s\n", tr.Summary(), *traceOut)
	}
	return cliutil.ExitOK
}
