// distda-run executes one workload under one configuration and prints the
// collected result: cycles, energy breakdown, traffic categories, interface
// mechanism usage and validation status.
//
// Usage:
//
//	distda-run -w fdtd-2d -c Dist-DA-F -scale bench
//	distda-run -w bfs -c OoO
//	distda-run -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"distda/internal/core"
	"distda/internal/sim"
	"distda/internal/workloads"
)

func main() {
	name := flag.String("w", "", "workload name (see -list)")
	cfgName := flag.String("c", "Dist-DA-F", "configuration: OoO, Mono-CA, Mono-DA-IO, Mono-DA-F, Dist-DA-IO, Dist-DA-F")
	scaleName := flag.String("scale", "bench", "input scale: test, bench, paper")
	ghz := flag.Int("ghz", 0, "override accelerator clock (1, 2, 3)")
	threads := flag.Int("threads", 1, "software threads for parallel-annotated loops")
	naive := flag.Bool("naive-engine", false, "use the reference one-tick-at-a-time engine scheduler (bit-identical results, slower)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	scale, err := parseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	if *list {
		for _, w := range workloads.All(scale) {
			fmt.Printf("%-14s %s\n", w.Name, w.Desc)
		}
		fmt.Printf("%-14s %s (case study)\n", "spmv", workloads.SpMV(scale).Desc)
		fmt.Printf("%-14s %s (multithreaded)\n", "bfs-mt", workloads.BFSMT(scale).Desc)
		fmt.Printf("%-14s %s (multithreaded)\n", "pathfinder-mt", workloads.PathfinderMT(scale).Desc)
		return
	}
	if *name == "" {
		flag.Usage()
		os.Exit(2)
	}
	w, err := lookup(*name, scale)
	if err != nil {
		fatal(err)
	}
	cfg, err := lookupConfig(*cfgName)
	if err != nil {
		fatal(err)
	}
	if *ghz != 0 {
		cfg = cfg.WithClock(*ghz)
	}
	cfg.NaiveEngine = *naive
	res, err := sim.RunThreads(w.Kernel, w.Params, w.NewData(), cfg, *threads)
	if err != nil {
		fatal(err)
	}
	print(res)
}

func lookup(name string, scale workloads.Scale) (*workloads.Workload, error) {
	switch name {
	case "spmv":
		return workloads.SpMV(scale), nil
	case "bfs-mt":
		return workloads.BFSMT(scale), nil
	case "pathfinder-mt":
		return workloads.PathfinderMT(scale), nil
	default:
		return workloads.ByName(name, scale)
	}
}

func lookupConfig(name string) (sim.Config, error) {
	for _, c := range sim.AllPaperConfigs() {
		if c.Name == name {
			return c, nil
		}
	}
	switch name {
	case "Dist-DA-IO+SW":
		return sim.DistDAIOSW(), nil
	case "Dist-DA-F+A":
		return sim.DistDAFA(), nil
	}
	return sim.Config{}, fmt.Errorf("unknown configuration %q", name)
}

func print(r *sim.Result) {
	fmt.Printf("workload      %s\n", r.Workload)
	fmt.Printf("config        %s\n", r.Config)
	fmt.Printf("validated     %v\n", r.Validated)
	fmt.Printf("cycles        %d (2 GHz host clock)\n", r.Cycles)
	fmt.Printf("instructions  %d host + %d accel, IPC %.2f\n", r.HostInstr, r.AccelOps, r.IPC())
	fmt.Printf("mem ops       %d (%.3f per cycle)\n", r.MemOps, r.MemOpRate())
	fmt.Printf("energy        %.3f uJ\n", r.EnergyPJ/1e6)
	cats := make([]string, 0, len(r.EnergyByCat))
	for c := range r.EnergyByCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-10s  %10.3f uJ\n", c, r.EnergyByCat[c]/1e6)
	}
	fmt.Printf("cache acc     L1 %d, L2 %d, L3 %d, DRAM %d\n", r.CacheL1, r.CacheL2, r.CacheL3, r.DRAM)
	fmt.Printf("data moved    %d bytes\n", r.DataMovedBytes)
	fmt.Printf("accel traffic intra %d, D-A %d, A-A %d bytes\n", r.IntraBytes, r.DABytes, r.AABytes)
	fmt.Printf("NoC bytes     ctrl %d, data %d, acc_ctrl %d, acc_data %d\n",
		r.NoCBytes["ctrl"], r.NoCBytes["data"], r.NoCBytes["acc_ctrl"], r.NoCBytes["acc_data"])
	if r.Launches > 0 {
		fmt.Printf("offloads      %d launches, %.1f buffers avg, %%init %.2f\n",
			r.Launches, r.AvgBuffers, r.InitOverheadPct())
		fmt.Printf("mechanisms   ")
		for _, in := range core.Intrinsics() {
			if r.MMIO.Used(in) {
				fmt.Printf(" %s", in)
			}
		}
		fmt.Println()
	}
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "bench":
		return workloads.ScaleBench, nil
	case "paper":
		return workloads.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "distda-run:", err)
	os.Exit(1)
}
