// distda-run executes one workload under one configuration and prints the
// collected result: cycles, energy breakdown, traffic categories, interface
// mechanism usage and validation status.
//
// Usage:
//
//	distda-run -w fdtd-2d -c Dist-DA-F -scale bench
//	distda-run -workload fdtd-2d -config dist-da-io -trace out.json -metrics
//	distda-run -w bfs -c OoO
//	distda-run -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"distda/internal/core"
	"distda/internal/sim"
	"distda/internal/trace"
	"distda/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI entry point: it parses args, executes the
// requested simulation, writes human output to stdout and errors to stderr,
// and returns the process exit code. Unknown workload or configuration
// names fail with a non-zero exit before any simulation output is printed.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("distda-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var name, cfgName string
	fs.StringVar(&name, "w", "", "workload name (see -list)")
	fs.StringVar(&name, "workload", "", "workload name (alias of -w)")
	fs.StringVar(&cfgName, "c", "Dist-DA-F", "configuration: OoO, Mono-CA, Mono-DA-IO, Mono-DA-F, Dist-DA-IO, Dist-DA-F (case-insensitive)")
	fs.StringVar(&cfgName, "config", "", "configuration (alias of -c)")
	scaleName := fs.String("scale", "bench", "input scale: test, bench, paper")
	ghz := fs.Int("ghz", 0, "override accelerator clock (1, 2, 3)")
	threads := fs.Int("threads", 1, "software threads for parallel-annotated loops")
	naive := fs.Bool("naive-engine", false, "use the reference one-tick-at-a-time engine scheduler (bit-identical results, slower)")
	traceOut := fs.String("trace", "", "write a Chrome trace_event JSON file (load in chrome://tracing or Perfetto)")
	metrics := fs.Bool("metrics", false, "print the per-component metrics table after the result")
	list := fs.Bool("list", false, "list workloads and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if cfgName == "" {
		cfgName = "Dist-DA-F"
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "distda-run:", err)
		return 1
	}

	scale, err := parseScale(*scaleName)
	if err != nil {
		return fail(err)
	}
	if *list {
		for _, w := range workloads.All(scale) {
			fmt.Fprintf(stdout, "%-14s %s\n", w.Name, w.Desc)
		}
		fmt.Fprintf(stdout, "%-14s %s (case study)\n", "spmv", workloads.SpMV(scale).Desc)
		fmt.Fprintf(stdout, "%-14s %s (multithreaded)\n", "bfs-mt", workloads.BFSMT(scale).Desc)
		fmt.Fprintf(stdout, "%-14s %s (multithreaded)\n", "pathfinder-mt", workloads.PathfinderMT(scale).Desc)
		return 0
	}
	if name == "" {
		fs.Usage()
		return 2
	}
	w, err := lookup(name, scale)
	if err != nil {
		return fail(err)
	}
	cfg, err := lookupConfig(cfgName)
	if err != nil {
		return fail(err)
	}
	if *ghz != 0 {
		cfg = cfg.WithClock(*ghz)
	}
	cfg.NaiveEngine = *naive
	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New()
		cfg.Trace = tr
	}
	var met *trace.Metrics
	if *metrics {
		met = trace.NewMetrics()
		cfg.Metrics = met
	}
	res, err := sim.RunThreads(w.Kernel, w.Params, w.NewData(), cfg, *threads)
	if err != nil {
		return fail(err)
	}
	print(stdout, res)
	if met != nil {
		fmt.Fprintln(stdout)
		fmt.Fprintln(stdout, met.Table().Render())
	}
	if tr != nil {
		if err := writeTrace(tr, *traceOut); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "distda-run: %s -> %s\n", tr.Summary(), *traceOut)
	}
	return 0
}

// writeTrace exports the tracer to path as Chrome trace_event JSON.
func writeTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func lookup(name string, scale workloads.Scale) (*workloads.Workload, error) {
	switch name {
	case "spmv":
		return workloads.SpMV(scale), nil
	case "bfs-mt":
		return workloads.BFSMT(scale), nil
	case "pathfinder-mt":
		return workloads.PathfinderMT(scale), nil
	default:
		return workloads.ByName(name, scale)
	}
}

// lookupConfig resolves a configuration by name, case-insensitively
// ("dist-da-io" selects Dist-DA-IO).
func lookupConfig(name string) (sim.Config, error) {
	for _, c := range sim.AllPaperConfigs() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	for _, c := range []sim.Config{sim.DistDAIOSW(), sim.DistDAFA()} {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return sim.Config{}, fmt.Errorf("unknown configuration %q (want OoO, Mono-CA, Mono-DA-IO, Mono-DA-F, Dist-DA-IO, Dist-DA-F, Dist-DA-IO+SW or Dist-DA-F+A)", name)
}

func print(w io.Writer, r *sim.Result) {
	fmt.Fprintf(w, "workload      %s\n", r.Workload)
	fmt.Fprintf(w, "config        %s\n", r.Config)
	fmt.Fprintf(w, "validated     %v\n", r.Validated)
	fmt.Fprintf(w, "cycles        %d (2 GHz host clock)\n", r.Cycles)
	fmt.Fprintf(w, "instructions  %d host + %d accel, IPC %.2f\n", r.HostInstr, r.AccelOps, r.IPC())
	fmt.Fprintf(w, "mem ops       %d (%.3f per cycle)\n", r.MemOps, r.MemOpRate())
	fmt.Fprintf(w, "energy        %.3f uJ\n", r.EnergyPJ/1e6)
	cats := make([]string, 0, len(r.EnergyByCat))
	for c := range r.EnergyByCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(w, "  %-10s  %10.3f uJ\n", c, r.EnergyByCat[c]/1e6)
	}
	fmt.Fprintf(w, "cache acc     L1 %d, L2 %d, L3 %d, DRAM %d\n", r.CacheL1, r.CacheL2, r.CacheL3, r.DRAM)
	fmt.Fprintf(w, "data moved    %d bytes\n", r.DataMovedBytes)
	fmt.Fprintf(w, "accel traffic intra %d, D-A %d, A-A %d bytes\n", r.IntraBytes, r.DABytes, r.AABytes)
	fmt.Fprintf(w, "NoC bytes     ctrl %d, data %d, acc_ctrl %d, acc_data %d\n",
		r.NoCBytes["ctrl"], r.NoCBytes["data"], r.NoCBytes["acc_ctrl"], r.NoCBytes["acc_data"])
	if r.Launches > 0 {
		fmt.Fprintf(w, "offloads      %d launches, %.1f buffers avg, %%init %.2f\n",
			r.Launches, r.AvgBuffers, r.InitOverheadPct())
		fmt.Fprintf(w, "mechanisms   ")
		for _, in := range core.Intrinsics() {
			if r.MMIO.Used(in) {
				fmt.Fprintf(w, " %s", in)
			}
		}
		fmt.Fprintln(w)
	}
}

func parseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "bench":
		return workloads.ScaleBench, nil
	case "paper":
		return workloads.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want test, bench or paper)", name)
	}
}
