package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunExitCodes table-tests the flag parser and name resolution: every
// unknown name must fail with a non-zero exit, a clear stderr message and
// nothing on stdout.
func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name      string
		args      []string
		exit      int
		wantErr   string // substring of stderr
		wantOut   string // substring of stdout
		wantNoOut bool   // stdout must be empty
	}{
		{name: "no args", args: nil, exit: 2, wantNoOut: true},
		{name: "unknown flag", args: []string{"-bogus"}, exit: 2, wantNoOut: true},
		{name: "unknown workload", args: []string{"-w", "nope", "-scale", "test"},
			exit: 1, wantErr: "nope", wantNoOut: true},
		{name: "unknown workload long form", args: []string{"-workload", "nope", "-scale", "test"},
			exit: 1, wantErr: "nope", wantNoOut: true},
		{name: "unknown config", args: []string{"-w", "bfs", "-c", "Turbo", "-scale", "test"},
			exit: 1, wantErr: `unknown configuration "Turbo"`, wantNoOut: true},
		{name: "unknown config long form", args: []string{"-w", "bfs", "-config", "Turbo", "-scale", "test"},
			exit: 1, wantErr: `unknown configuration "Turbo"`, wantNoOut: true},
		{name: "unknown scale", args: []string{"-w", "bfs", "-scale", "huge"},
			exit: 1, wantErr: `unknown scale "huge"`, wantNoOut: true},
		{name: "list", args: []string{"-list"}, exit: 0, wantOut: "fdtd-2d"},
		{name: "run short flags", args: []string{"-w", "pathfinder", "-c", "Dist-DA-IO", "-scale", "test"},
			exit: 0, wantOut: "validated     true"},
		{name: "run long flags case-insensitive", args: []string{"-workload", "pathfinder", "-config", "dist-da-io", "-scale", "test"},
			exit: 0, wantOut: "validated     true"},
		{name: "metrics table", args: []string{"-w", "pathfinder", "-c", "dist-da-io", "-scale", "test", "-metrics"},
			exit: 0, wantOut: "sim"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			got := run(tc.args, &stdout, &stderr)
			if got != tc.exit {
				t.Fatalf("run(%v) = %d, want %d (stderr: %s)", tc.args, got, tc.exit, stderr.String())
			}
			if tc.wantNoOut && stdout.Len() != 0 {
				t.Errorf("run(%v) wrote to stdout on failure:\n%s", tc.args, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("run(%v) stderr = %q, want substring %q", tc.args, stderr.String(), tc.wantErr)
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("run(%v) stdout = %q, want substring %q", tc.args, stdout.String(), tc.wantOut)
			}
		})
	}
}

// TestLongShortAliasesIdentical checks -w/-c and -workload/-config produce
// byte-identical output for the same run (alias resolution must not change
// behavior).
func TestLongShortAliasesIdentical(t *testing.T) {
	var short, long bytes.Buffer
	if run([]string{"-w", "pathfinder", "-c", "Dist-DA-IO", "-scale", "test"}, &short, new(bytes.Buffer)) != 0 {
		t.Fatal("short-flag run failed")
	}
	if run([]string{"-workload", "pathfinder", "-config", "dist-da-io", "-scale", "test"}, &long, new(bytes.Buffer)) != 0 {
		t.Fatal("long-flag run failed")
	}
	if short.String() != long.String() {
		t.Errorf("alias outputs differ:\nshort:\n%s\nlong:\n%s", short.String(), long.String())
	}
}

// TestTraceFlagWritesValidChromeJSON runs a traced simulation and checks
// the exported file parses as a Chrome trace_event array with at least five
// distinct component tracks, and that tracing does not perturb the printed
// result.
func TestTraceFlagWritesValidChromeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var traced, plain bytes.Buffer
	if got := run([]string{"-workload", "fdtd-2d", "-config", "dist-da-io", "-scale", "test", "-trace", path},
		&traced, new(bytes.Buffer)); got != 0 {
		t.Fatalf("traced run exited %d", got)
	}
	if got := run([]string{"-w", "fdtd-2d", "-c", "Dist-DA-IO", "-scale", "test"},
		&plain, new(bytes.Buffer)); got != 0 {
		t.Fatalf("plain run exited %d", got)
	}
	if traced.String() != plain.String() {
		t.Errorf("-trace perturbed the printed result:\ntraced:\n%s\nplain:\n%s", traced.String(), plain.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not a JSON event array: %v", err)
	}
	tracks := map[float64]bool{}
	names := map[string]bool{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X", "i":
			if tid, ok := e["tid"].(float64); ok {
				tracks[tid] = true
			}
		case "M":
			if e["name"] == "thread_name" {
				if args, ok := e["args"].(map[string]any); ok {
					if n, ok := args["name"].(string); ok {
						names[n] = true
					}
				}
			}
		}
	}
	if len(tracks) < 5 {
		t.Errorf("trace has %d component tracks, want >= 5", len(tracks))
	}
	for _, want := range []string{"host", "engine"} {
		if !names[want] {
			t.Errorf("trace missing %q track (have %v)", want, names)
		}
	}
}
