// distda-serve runs the simulation-as-a-service job server: clients POST
// experiment jobs (one workload × configuration run, or a §VI reproduction
// matrix selection) as JSON, poll or stream progress, and fetch rendered
// results that are byte-identical to the equivalent distda-run /
// distda-repro invocation. See docs/SERVING.md for the API.
//
// Usage:
//
//	distda-serve -addr localhost:8080
//	distda-serve -addr :8080 -workers 4 -queue 128 -rate 2 -burst 10
//	distda-serve -cache-dir .distda-cache -state-dir .distda-serve
//
// SIGINT/SIGTERM drains gracefully: in-flight jobs get -drain-timeout to
// finish, everything unfinished is journaled to -state-dir and resumed —
// byte-identically — by the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distda/internal/artifact"
	"distda/internal/cliutil"
	"distda/internal/obs"
	"distda/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr, nil))
}

// run is the testable entry point. ready, when non-nil, receives the bound
// listen address once the server accepts connections.
func run(args []string, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("distda-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "localhost:8080", "HTTP listen address")
	workers := fs.Int("workers", 2, "jobs executing concurrently")
	cellWorkers := fs.Int("cell-workers", 0, "matrix cell workers per job (0 = GOMAXPROCS); output is identical at any setting")
	queueDepth := fs.Int("queue", 64, "job queue capacity; a full queue rejects submissions with 429")
	rate := fs.Float64("rate", 0, "per-tenant sustained submission rate in jobs/second (0 = unlimited)")
	burst := fs.Int("burst", 8, "per-tenant burst allowance (token bucket depth)")
	cacheDir := fs.String("cache-dir", "", "content-addressed cache directory for compiled kernels and results (shared with the batch CLIs; empty = in-memory only)")
	stateDir := fs.String("state-dir", "", "directory for matrix checkpoints and the shutdown journal (empty = no resume across restarts)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-cell wall-clock budget for matrix jobs; cells over budget render as n/a")
	retries := fs.Int("retries", 0, "retry budget per matrix cell for transient failures")
	shards := fs.Int("shards", 0, "default goroutine shards per offload launch for jobs that do not set shards (bit-identical output, wall-clock only)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for running jobs before canceling and journaling them")
	if err := fs.Parse(args); err != nil {
		return cliutil.ExitUsage
	}
	logger := slog.New(slog.NewTextHandler(stderr, nil))
	fail := func(err error) int {
		logger.Error("fatal", "err", err)
		return cliutil.ExitError
	}

	// The effective startup configuration, in one queryable line: what the
	// defaults resolved to matters when diagnosing backpressure or resume
	// behavior after the fact.
	logger.Info("starting",
		"addr", *addr, "workers", *workers, "cell_workers", *cellWorkers,
		"queue_depth", *queueDepth, "rate", *rate, "burst", *burst,
		"shards_default", *shards, "cache_dir", *cacheDir, "state_dir", *stateDir,
		"cell_timeout", *cellTimeout, "retries", *retries, "drain_timeout", *drain)

	srv, err := serve.NewServer(serve.Config{
		Workers:     *workers,
		CellWorkers: *cellWorkers,
		QueueDepth:  *queueDepth,
		Rate:        *rate,
		Burst:       *burst,
		Cache:       artifact.New(artifact.Config{Dir: *cacheDir}),
		StateDir:    *stateDir,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Shards:      *shards,
		Obs:         obs.New(),
		Logger:      logger,
	})
	if err != nil {
		return fail(err)
	}
	if restored := srv.Stats().Restored; restored > 0 {
		logger.Info("journal restored", "jobs", restored)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Shutdown(context.Background())
		return fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "distda-serve: listening on http://%s (POST /api/v1/jobs)\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		srv.Shutdown(context.Background())
		return fail(err)
	case got := <-sig:
		logger.Info("signal received, draining", "signal", got.String(), "timeout", *drain)
	}

	// Flip readiness first (GET /readyz → 503) so load balancers stop
	// routing here, then stop accepting HTTP, then drain the job queue:
	// running jobs get the drain budget, everything else lands in the
	// journal.
	srv.StartDrain()
	httpCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	_ = httpSrv.Shutdown(httpCtx)
	cancel()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	progress := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-progress:
				return
			case <-tick.C:
				st := srv.Stats()
				logger.Info("drain progress", "queued", st.QueueLen, "running", st.Running)
			}
		}
	}()
	err = srv.Shutdown(drainCtx)
	close(progress)
	if err != nil {
		return fail(err)
	}
	logger.Info("drained")
	return cliutil.ExitOK
}
