// distda-smoke drives an end-to-end smoke test against a running
// distda-serve instance through the internal/serveclient API: it submits
// one run job and one matrix job, follows their progress streams, and
// asserts the served bytes are identical to reference files produced by
// the batch CLIs (the serving layer's core guarantee). It then resubmits
// the run job and checks the result cache answered, and verifies the
// per-backend submission counters in /api/v1/stats. It also scrapes
// GET /metrics before and after the run job and asserts the exposition
// parses and the per-tenant job counters moved.
//
// scripts/serve_smoke.sh builds the binaries, generates the reference
// files, starts the server and invokes this tool; run it standalone with:
//
//	distda-smoke -base http://localhost:8080 -run-want run.txt -matrix-want matrix.txt
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"distda/internal/cliutil"
	"distda/internal/exp"
	"distda/internal/profile"
	"distda/internal/serve"
	"distda/internal/serveclient"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("distda-smoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	base := fs.String("base", "http://localhost:8080", "distda-serve base URL")
	runWant := fs.String("run-want", "", "reference file with the distda-run output the run job must match (empty = skip comparison)")
	matrixWant := fs.String("matrix-want", "", "reference file with the distda-repro output the matrix job must match (empty = skip comparison)")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return cliutil.ExitUsage
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "distda-smoke: "+format+"\n", a...)
		return cliutil.ExitError
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := serveclient.New(*base)

	fmt.Fprintln(stderr, "== health")
	if err := c.Health(ctx); err != nil {
		return fail("health check: %v", err)
	}
	if err := c.Ready(ctx); err != nil {
		return fail("readiness check: %v", err)
	}

	fmt.Fprintln(stderr, "== metrics (before)")
	mBefore, err := c.Metrics(ctx)
	if err != nil {
		return fail("metrics scrape: %v", err)
	}

	// submit-wait-fetch runs one job to completion, streaming progress.
	fetch := func(spec serve.JobSpec) (serve.JobStatus, []byte, error) {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			return st, nil, fmt.Errorf("submit: %w", err)
		}
		var events int
		fin, err := c.Wait(ctx, st.ID, func(profile.Snapshot) { events++ })
		if err != nil {
			return st, nil, fmt.Errorf("wait %s: %w", st.ID, err)
		}
		if fin.State != serve.StateDone {
			return fin, nil, fmt.Errorf("job %s ended %s: %s", st.ID, fin.State, fin.Error)
		}
		fmt.Fprintf(stderr, "   job %s done (%d progress events, backend %q)\n", st.ID, events, st.Backend)
		out, err := c.Result(ctx, st.ID)
		if err != nil {
			return fin, nil, fmt.Errorf("result %s: %w", st.ID, err)
		}
		return fin, out, nil
	}
	compare := func(got []byte, wantFile, what string) error {
		if wantFile == "" {
			return nil
		}
		want, err := os.ReadFile(wantFile)
		if err != nil {
			return err
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("served %s output differs from %s", what, wantFile)
		}
		return nil
	}

	fmt.Fprintln(stderr, "== run job")
	runSpec := serve.JobSpec{Workload: "fdtd-2d", Config: "Dist-DA-F", Scale: "test"}
	st, out, err := fetch(runSpec)
	if err != nil {
		return fail("%v", err)
	}
	if st.Backend != "cgra" {
		return fail("run job backend = %q, want cgra", st.Backend)
	}
	if err := compare(out, *runWant, "run"); err != nil {
		return fail("%v", err)
	}

	// The wall-clock telemetry must have seen the job: the per-tenant done
	// counter moves, and the queue/stage series exist in a valid exposition.
	fmt.Fprintln(stderr, "== metrics (after run job)")
	mAfter, err := c.Metrics(ctx)
	if err != nil {
		return fail("metrics scrape: %v", err)
	}
	doneKey := fmt.Sprintf("distda_jobs_total{outcome=%q,tenant=%q}", "done", "anonymous")
	if mAfter[doneKey] <= mBefore[doneKey] {
		return fail("%s did not increase (%v -> %v)", doneKey, mBefore[doneKey], mAfter[doneKey])
	}
	for _, key := range []string{
		"distda_queue_depth",
		"distda_running_jobs",
		fmt.Sprintf("distda_job_stage_seconds_count{stage=%q}", "executing"),
		fmt.Sprintf("distda_job_queue_wait_seconds_count{tenant=%q}", "anonymous"),
	} {
		if _, ok := mAfter[key]; !ok {
			return fail("metrics scrape missing %s", key)
		}
	}
	fmt.Fprintf(stderr, "   %d series, %s = %v\n", len(mAfter), doneKey, mAfter[doneKey])

	fmt.Fprintln(stderr, "== matrix job")
	_, out, err = fetch(serve.JobSpec{Kind: serve.KindMatrix, Scale: "test",
		Selection: exp.Selection{Figs: []string{"7"}}})
	if err != nil {
		return fail("%v", err)
	}
	if err := compare(out, *matrixWant, "matrix"); err != nil {
		return fail("%v", err)
	}

	fmt.Fprintln(stderr, "== cached resubmission")
	before, err := c.Stats(ctx)
	if err != nil {
		return fail("stats: %v", err)
	}
	st2, err := c.Submit(ctx, runSpec)
	if err != nil {
		return fail("resubmit: %v", err)
	}
	if !st2.Cached || st2.State != serve.StateDone {
		return fail("resubmission was not a result cache hit: %+v", st2)
	}
	out2, err := c.Result(ctx, st2.ID)
	if err != nil {
		return fail("cached result: %v", err)
	}
	if err := compare(out2, *runWant, "cached run"); err != nil {
		return fail("%v", err)
	}
	after, err := c.Stats(ctx)
	if err != nil {
		return fail("stats: %v", err)
	}
	if after.CacheHits <= before.CacheHits {
		return fail("resubmission did not hit the result cache (%d -> %d)", before.CacheHits, after.CacheHits)
	}
	if after.Backends["cgra"] < 2 {
		return fail("stats backends = %v, want cgra counted twice", after.Backends)
	}

	fmt.Fprintln(stderr, "distda-smoke: OK")
	return cliutil.ExitOK
}
