// Package distda is a from-scratch Go reproduction of "An architecture
// interface and offload model for low-overhead, near-data, distributed
// accelerators" (MICRO 2022): the Dist-DA offload interface (Table II
// MMIO intrinsics), the compiler flow that partitions innermost loops into
// distributed accelerator definitions, and the simulated system — OoO
// host, cache hierarchy, mesh NoC, access units, in-order cores and CGRA
// fabrics — that the paper evaluates on.
//
// The library lives under internal/; the runnable surfaces are the three
// commands under cmd/, the examples/ programs, and the benchmark harness in
// bench_test.go which regenerates every table and figure of the paper's
// evaluation section. See README.md and DESIGN.md.
package distda
