// Graphoffload runs the irregular-workload scenario the paper's
// introduction motivates: breadth-first search over a CSR graph, whose
// indirect level probes make the out-of-order core wait on the cache
// hierarchy while near-data accelerators probe the home bank directly.
// It compares all six tested configurations and the thread-scaling case
// study.
package main

import (
	"fmt"
	"log"

	"distda/internal/sim"
	"distda/internal/workloads"
)

func main() {
	w := workloads.BFS(workloads.ScaleBench)
	fmt.Printf("bfs: %s\n\n", w.Desc)

	var base *sim.Result
	fmt.Printf("%-11s %10s %10s %9s %9s %10s\n", "config", "cycles", "energy", "speedup", "eff", "data-moved")
	for _, cfg := range sim.AllPaperConfigs() {
		res, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-11s %10d %8.1fuJ %8.2fx %8.2fx %9dK\n",
			cfg.Name, res.Cycles, res.EnergyPJ/1e6,
			res.SpeedupVs(base), res.EnergyEfficiencyVs(base), res.DataMovedBytes/1024)
	}

	// Thread scaling (§VI-D): the per-level edge scan is parallel.
	mt := workloads.BFSMT(workloads.ScaleBench)
	cfg := sim.DistDAIO()
	cfg.NoStreams = true // the paper's framework skips stream specialization here
	fmt.Printf("\nmultithreaded bfs on %s (stream specialization off):\n", cfg.Name)
	var one *sim.Result
	for _, threads := range []int{1, 2, 4, 8} {
		res, err := sim.RunThreads(mt.Kernel, mt.Params, mt.NewData(), cfg, threads)
		if err != nil {
			log.Fatal(err)
		}
		if one == nil {
			one = res
		}
		fmt.Printf("  %d threads: %9d cycles (%.2fx)\n", threads, res.Cycles, res.SpeedupVs(one))
	}
}
