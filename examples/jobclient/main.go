// Jobclient: submit an experiment to a running distda-serve instance
// through the internal/serveclient Go client, stream its progress over
// server-sent events, and print the rendered result — the same bytes the
// equivalent distda-run invocation produces.
//
// Start a server first (in-memory caches are fine for a demo):
//
//	go run ./cmd/distda-serve -addr localhost:8080
//
// then:
//
//	go run ./examples/jobclient [-base http://localhost:8080]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"distda/internal/profile"
	"distda/internal/serve"
	"distda/internal/serveclient"
)

func main() {
	base := flag.String("base", "http://localhost:8080", "distda-serve base URL")
	flag.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	c := serveclient.New(*base)
	if err := c.Health(ctx); err != nil {
		log.Fatalf("no distda-serve at %s (start one with: go run ./cmd/distda-serve): %v", *base, err)
	}

	// One workload × configuration run; the job JSON mirrors distda-run's
	// flags, and the status reports the CLI equivalent plus the resolved
	// accelerator backend the configuration launches on.
	st, err := c.Submit(ctx, serve.JobSpec{
		Workload: "fdtd-2d",
		Config:   "Dist-DA-F",
		Scale:    "test",
	})
	if err != nil {
		var ae *serveclient.APIError
		if errors.As(err, &ae) {
			log.Fatalf("server rejected the job (HTTP %d): %s", ae.StatusCode, ae.Message)
		}
		log.Fatal(err)
	}
	fmt.Printf("job %s: %s (backend %s, equivalent: %s)\n", st.ID, st.State, st.Backend, st.Equivalent)

	// Follow the SSE progress stream to the terminal state.
	fin, err := c.Wait(ctx, st.ID, func(p profile.Snapshot) {
		fmt.Printf("  progress: %d/%d cells\n", p.Done, p.Total)
	})
	if err != nil {
		log.Fatal(err)
	}
	if fin.State != serve.StateDone {
		log.Fatalf("job ended %s: %s", fin.State, fin.Error)
	}

	out, err := c.Result(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(out)
}
