// Quickstart: define a kernel in the distda IR, compile it for the Dist-DA
// offload model, and run it on the simulated system under the out-of-order
// baseline and the distributed-accelerator configuration.
package main

import (
	"fmt"
	"log"

	"distda/internal/ir"
	"distda/internal/sim"
)

func main() {
	const n = 1 << 14

	// saxpy: Y[i] = a*X[i] + Y[i] — one streaming innermost loop.
	kernel := &ir.Kernel{
		Name:   "saxpy",
		Params: []string{"N", "a"},
		Objects: []ir.ObjDecl{
			{Name: "X", Len: n, ElemBytes: 8},
			{Name: "Y", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("Y", ir.V("i"),
					ir.AddE(ir.MulE(ir.P("a"), ir.Ld("X", ir.V("i"))), ir.Ld("Y", ir.V("i")))),
			),
		},
	}
	params := map[string]float64{"N": n, "a": 3}
	gen := func() map[string][]float64 {
		x, y := make([]float64, n), make([]float64, n)
		for i := range x {
			x[i] = float64(i % 100)
			y[i] = float64(i % 7)
		}
		return map[string][]float64{"X": x, "Y": y}
	}

	// The compiler partitions the loop into per-object accelerator
	// definitions; the simulator validates the run against the reference
	// interpreter automatically.
	var base *sim.Result
	for _, cfg := range []sim.Config{sim.OoO(), sim.DistDAIO(), sim.DistDAF()} {
		res, err := sim.Run(kernel, params, gen(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-11s validated=%v cycles=%8d energy=%7.1f nJ  speedup=%.2fx  energy-eff=%.2fx\n",
			cfg.Name, res.Validated, res.Cycles, res.EnergyPJ/1000,
			res.SpeedupVs(base), res.EnergyEfficiencyVs(base))
	}

	// Inspect what the compiler produced.
	compiled, err := sim.Compiled(kernel, sim.DistDAF())
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range compiled.Infos {
		fmt.Printf("\nregion %s: %s, %d accelerator definitions, %d micro-ops\n",
			info.Region.Name, info.Region.Class, len(info.Region.Accels), info.Insts)
		for _, a := range info.Region.Accels {
			fmt.Printf("  accel %d anchored at %q (%d accesses, %d ops)\n",
				a.ID, a.AnchorObj, len(a.Accesses), len(a.Program))
		}
	}
}
