// Spmv-annotated reproduces the §VI-D control-intensive case study: sparse
// matrix-vector multiplication whose short inner loops do not amortize the
// naive per-row offload. A user-annotated schedule offloads the whole loop
// nest, with one accelerator producing the inner-loop bounds over a channel
// (Fig. 5a) and a second pipelining across row boundaries with predicated
// produce/consume — Table V's "U"-marked mechanisms.
package main

import (
	"fmt"
	"log"

	"distda/internal/exp"
	"distda/internal/sim"
	"distda/internal/workloads"
)

func main() {
	w := workloads.SpMV(workloads.ScaleBench)
	fmt.Printf("spmv: %s\n\n", w.Desc)

	base, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.OoO())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d cycles (baseline)\n", "OoO", base.Cycles)

	// Dist-DA-B: the compiler's naive blocked offload, one synchronous
	// launch per row.
	cfgB := sim.DistDAIO()
	cfgB.NoFolding = true
	b, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfgB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d cycles (%.2fx)\n", "Dist-DA-B (automated)", b.Cycles, b.SpeedupVs(base))

	// Dist-DA-BN: user-identified whole-nest offload with the loop control
	// localized on the accelerator (bounds fetched with cp_read).
	bn, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), exp.AnnotateSpMVBN(w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d cycles (%.2fx)\n", "Dist-DA-BN (localized ctrl)", bn.Cycles, bn.SpeedupVs(base))

	// Dist-DA-BNS: the hand-annotated whole-nest schedule.
	bns, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), exp.AnnotateSpMVBNS(w))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %10d cycles (%.2fx)\n", "Dist-DA-BNS (produced bounds)", bns.Cycles, bns.SpeedupVs(base))
	fmt.Printf("\nBNS launches: %d (vs %d per-row launches for B)\n", bns.Launches, b.Launches)
	fmt.Printf("paper's spmv ordering: B 0.44x < BN 1.22x < BNS 1.95x\n")
}
