// Streampipe wires the Dist-DA interface by hand, the way Fig. 4 and Fig. 5
// of the paper do: two accelerator definitions in a producer→consumer
// pipeline over a channel, with a fill FSM streaming the input object and a
// drain FSM writing the result back — all driven by the cycle engine.
//
// The pipeline computes out[i] = (in[i] * 2) + 1 with the multiply on one
// accelerator and the add on another.
package main

import (
	"fmt"
	"log"

	"distda/internal/accessunit"
	"distda/internal/backend"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/memfake"
	"distda/internal/microcode"
	"distda/internal/noc"

	_ "distda/internal/backend/iocorebackend"
)

func main() {
	const n = 64
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i)
	}
	mem := memfake.New(8, map[string][]float64{"in": in, "out": make([]float64, n)})
	fetch := &memfake.Fetch{Lat: 24} // cluster-local L3 access, base cycles
	stats := &accessunit.Stats{}
	meter := energy.NewMeter(energy.Default32nm())
	mesh := noc.New(noc.DefaultConfig(), meter)

	// Access units: stream-in buffer at cluster 0, channel across the NoC
	// to cluster 3, drain buffer at cluster 3.
	bufIn, _ := accessunit.NewBuffer(32, meter)
	inPort := accessunit.NewInPort(bufIn, 0)
	fill, err := accessunit.NewStreamIn(bufIn, mem, fetch, 0, "in", 0, 1, n, stats, meter)
	if err != nil {
		log.Fatal(err)
	}
	chSrc, _ := accessunit.NewBuffer(16, meter)
	chDst, _ := accessunit.NewBuffer(16, meter)
	chPort := accessunit.NewInPort(chDst, 0)
	linkTx, linkRx := accessunit.NewLocalLink(chSrc, chDst, mesh, 0, 3, 8, stats)
	bufOut, _ := accessunit.NewBuffer(32, meter)
	drain, err := accessunit.NewStreamOut(bufOut, mem, fetch, 3, "out", 0, 1, stats, meter)
	if err != nil {
		log.Fatal(err)
	}

	op := func(c microcode.Code) microcode.Op { return microcode.NewOp(c) }

	// Accelerator 0 at the data: v*2, forwarded over the channel.
	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	mul := op(microcode.ALUI)
	mul.Dst, mul.A, mul.Bin, mul.Imm = 2, 1, ir.Mul, 2
	send := op(microcode.Produce)
	send.A, send.Access = 2, 1
	def0 := &core.AccelDef{
		ID: 0, Name: "scale", Objects: []string{"in"}, AnchorObj: "in",
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "in", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
			{ID: 1, Kind: core.ChanOut, ElemBytes: 8, Peer: core.PeerRef{Accel: 1, Access: 0}},
		},
		Program: microcode.Program{cons, mul, send},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(n)},
	}

	// Accelerator 1 at the output object: +1, drained to memory. Its
	// orchestrator runs while the channel delivers values (cp_consume
	// end-of-stream terminates it).
	recv := op(microcode.Consume)
	recv.Dst, recv.Access = 1, 0
	inc := op(microcode.ALUI)
	inc.Dst, inc.A, inc.Bin, inc.Imm = 2, 1, ir.Add, 1
	put := op(microcode.Produce)
	put.A, put.Access = 2, 1
	def1 := &core.AccelDef{
		ID: 1, Name: "bias", Objects: []string{"out"}, AnchorObj: "out",
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.ChanIn, ElemBytes: 8, Peer: core.PeerRef{Accel: 0, Access: 1}},
			{ID: 1, Kind: core.StreamOut, Obj: "out", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
		},
		Program: microcode.Program{recv, inc, put},
		Trip:    core.TripSpec{Kind: core.TripWhileInput, InputAccess: 0},
	}
	region := &core.Region{Name: "pipe", Class: core.ClassParallelizable, Accels: []*core.AccelDef{def0, def1}}
	if err := region.Validate(); err != nil {
		log.Fatal(err)
	}

	// Engines come from the backend registry — the same pluggable interface
	// the simulator assembly uses.
	be, ok := backend.Lookup("iocore")
	if !ok {
		log.Fatal("iocore backend not registered")
	}
	rp := accessunit.NewRandomPort(mem, fetch, 0, stats, meter)
	core0, err := be.NewEngine(backend.LaunchSpec{
		Def: def0, Trips: n,
		In:     map[int]*accessunit.InPort{0: inPort},
		Out:    map[int]*accessunit.OutPort{1: {Buf: chSrc}},
		Random: rp, GHz: 2, Width: 1, Meter: meter,
	})
	if err != nil {
		log.Fatal(err)
	}
	core1, err := be.NewEngine(backend.LaunchSpec{
		Def: def1, Trips: -1,
		In:     map[int]*accessunit.InPort{0: chPort},
		Out:    map[int]*accessunit.OutPort{1: {Buf: bufOut}},
		Random: rp, GHz: 2, Width: 1, Meter: meter,
	})
	if err != nil {
		log.Fatal(err)
	}

	eng := engine.New()
	eng.Add(fill, 2)
	eng.Add(core0, 2)
	eng.Add(linkTx, 2)
	eng.Add(linkRx, 2)
	eng.Add(core1, 2)
	eng.Add(drain, 2)
	baseCycles, err := eng.Run(1 << 24)
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < n; i++ {
		want := in[i]*2 + 1
		if mem.Objs["out"][i] != want {
			log.Fatalf("out[%d] = %g, want %g", i, mem.Objs["out"][i], want)
		}
	}
	fmt.Printf("pipeline of %d elements completed in %d base cycles (%d ns)\n",
		n, baseCycles, baseCycles/engine.BaseGHz)
	fmt.Printf("traffic: D-A %d B, A-A %d B over the NoC (%d acc_data bytes)\n",
		stats.DABytes, stats.AABytes, mesh.Bytes[noc.AccData])
	fmt.Printf("energy: %.1f pJ total\n", meter.TotalPJ())
	fmt.Printf("micro-ops: scale=%d bias=%d (decoupled, overlapped)\n", core0.Ops(), core1.Ops())
}
