module distda

go 1.22
