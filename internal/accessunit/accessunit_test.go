package accessunit

import (
	"fmt"
	"testing"
	"testing/quick"

	"distda/internal/energy"
	"distda/internal/noc"
)

// fakeMem is an in-process Memory over named slices laid out contiguously.
type fakeMem struct {
	objs  map[string][]float64
	base  map[string]int64
	elemB int
}

func newFakeMem(elemB int, objs map[string][]float64) *fakeMem {
	m := &fakeMem{objs: objs, base: map[string]int64{}, elemB: elemB}
	addr := int64(0)
	for name, s := range objs {
		m.base[name] = addr
		addr += int64(len(s)*elemB) + 4096
	}
	return m
}

func (m *fakeMem) check(obj string, idx int64) error {
	s, ok := m.objs[obj]
	if !ok {
		return fmt.Errorf("no object %q", obj)
	}
	if idx < 0 || idx >= int64(len(s)) {
		return fmt.Errorf("index %d out of range for %q", idx, obj)
	}
	return nil
}

func (m *fakeMem) Read(obj string, idx int64) (float64, error) {
	if err := m.check(obj, idx); err != nil {
		return 0, err
	}
	return m.objs[obj][idx], nil
}

func (m *fakeMem) Write(obj string, idx int64, v float64) error {
	if err := m.check(obj, idx); err != nil {
		return err
	}
	m.objs[obj][idx] = v
	return nil
}

func (m *fakeMem) AddrOf(obj string, idx int64) (int64, error) {
	if err := m.check(obj, idx); err != nil {
		return 0, err
	}
	return m.base[obj] + idx*int64(m.elemB), nil
}

func (m *fakeMem) ElemBytes(obj string) (int, error) {
	if _, ok := m.objs[obj]; !ok {
		return 0, fmt.Errorf("no object %q", obj)
	}
	return m.elemB, nil
}

// fakeFetch returns a fixed latency and counts accesses.
type fakeFetch struct {
	lat      int
	accesses int
	bytes    int
}

func (f *fakeFetch) Access(cluster int, addr int64, write bool, bytes int) int {
	f.accesses++
	f.bytes += bytes
	return f.lat
}
func (f *fakeFetch) LineBytes() int { return 64 }

func TestBufferBasics(t *testing.T) {
	b, err := NewBuffer(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := b.AttachReader(0)
	if b.CanPop(r) {
		t.Fatal("empty buffer CanPop")
	}
	for i := 0; i < 4; i++ {
		if !b.CanPush() {
			t.Fatalf("CanPush false at %d", i)
		}
		b.Push(float64(i))
	}
	if b.CanPush() {
		t.Fatal("full buffer CanPush")
	}
	for i := 0; i < 4; i++ {
		if got := b.Pop(r); got != float64(i) {
			t.Fatalf("Pop = %g, want %d", got, i)
		}
	}
	if b.Pushes != 4 || b.Pops != 4 {
		t.Fatal("counters")
	}
}

func TestBufferRejectsZeroCap(t *testing.T) {
	if _, err := NewBuffer(0, nil); err == nil {
		t.Fatal("zero cap accepted")
	}
}

func TestBufferMultiReaderWindow(t *testing.T) {
	b, _ := NewBuffer(8, nil)
	r0 := b.AttachReader(0) // accessor A[i]
	r2 := b.AttachReader(2) // accessor A[i+2]
	for i := 0; i < 8; i++ {
		b.Push(float64(i * 10))
	}
	// r2's first element is seq 2.
	if got := b.Pop(r2); got != 20 {
		t.Fatalf("offset reader first pop = %g, want 20", got)
	}
	// Space reclaimed only past the slowest reader (r0 still at seq 0).
	if b.CanPush() {
		t.Fatal("CanPush before slowest reader advanced past seq 0")
	}
	if got := b.Pop(r0); got != 0 {
		t.Fatalf("base reader first pop = %g, want 0", got)
	}
	if !b.CanPush() {
		t.Fatal("no space after slowest reader advanced")
	}
}

func TestBufferCloseAndDrained(t *testing.T) {
	b, _ := NewBuffer(2, nil)
	r := b.AttachReader(0)
	b.Push(1)
	b.Close()
	if b.Drained(r) {
		t.Fatal("drained with element left")
	}
	if b.Pop(r) != 1 {
		t.Fatal("pop after close")
	}
	if !b.Drained(r) {
		t.Fatal("not drained after close+empty")
	}
	if b.CanPush() {
		t.Fatal("CanPush after Close")
	}
}

func TestBufferSkip(t *testing.T) {
	b, _ := NewBuffer(8, nil)
	r := b.AttachReader(0)
	for i := 0; i < 5; i++ {
		b.Push(float64(i))
	}
	b.Skip(r, 3)
	if got := b.Pop(r); got != 3 {
		t.Fatalf("pop after skip = %g, want 3", got)
	}
}

func TestBufferEnergyMetered(t *testing.T) {
	m := energy.NewMeter(energy.Default32nm())
	b, _ := NewBuffer(4, m)
	r := b.AttachReader(0)
	b.Push(1)
	b.Pop(r)
	if got := m.Get(energy.CatBuffer); got != 2*m.Table.BufferPJ {
		t.Fatalf("buffer energy = %g", got)
	}
}

// Property: interleaved push/pop sequences preserve FIFO order per reader
// and never exceed capacity.
func TestBufferFIFOProperty(t *testing.T) {
	f := func(ops []bool, capRaw uint8) bool {
		capElems := 1 + int(capRaw%16)
		b, err := NewBuffer(capElems, nil)
		if err != nil {
			return false
		}
		r := b.AttachReader(0)
		var pushed, popped int64
		for _, isPush := range ops {
			if isPush && b.CanPush() {
				b.Push(float64(pushed))
				pushed++
			} else if !isPush && b.CanPop(r) {
				if b.Pop(r) != float64(popped) {
					return false
				}
				popped++
			}
			if b.Occupancy() > int64(capElems) || b.Occupancy() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the cached reclaim watermark always equals a fresh scan of
// the reader pointers, across random attach/pop/skip/push interleavings.
func TestBufferWatermarkInvariant(t *testing.T) {
	f := func(ops []uint8, capRaw uint8) bool {
		capElems := 2 + int(capRaw%16)
		b, err := NewBuffer(capElems, nil)
		if err != nil {
			return false
		}
		scan := func() int64 {
			if len(b.readers) == 0 {
				return 0
			}
			m := b.readers[0]
			for _, r := range b.readers[1:] {
				if r < m {
					m = r
				}
			}
			return m
		}
		readers := []int{b.AttachReader(0)}
		var next int64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if b.CanPush() {
					b.Push(float64(next))
					next++
				}
			case 1:
				r := readers[int(op/4)%len(readers)]
				if b.CanPop(r) {
					b.Pop(r)
				}
			case 2:
				r := readers[int(op/4)%len(readers)]
				if n := b.Level(r) / 2; n > 0 {
					b.Skip(r, n)
				}
			case 3:
				if len(readers) < 4 {
					readers = append(readers, b.AttachReader(scan()))
				}
			}
			if b.minSeq != scan() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamInDeliversInOrder(t *testing.T) {
	data := make([]float64, 64)
	for i := range data {
		data[i] = float64(i) * 1.5
	}
	mem := newFakeMem(8, map[string][]float64{"A": data})
	fetch := &fakeFetch{lat: 10}
	stats := &Stats{}
	buf, _ := NewBuffer(16, nil)
	r := buf.AttachReader(0)
	fsm, err := NewStreamIn(buf, mem, fetch, 0, "A", 0, 1, 64, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for now := int64(0); now < 10000 && len(got) < 64; now++ {
		fsm.Step(now)
		for buf.CanPop(r) {
			got = append(got, buf.Pop(r))
		}
	}
	if len(got) != 64 {
		t.Fatalf("delivered %d elements", len(got))
	}
	for i, v := range got {
		if v != float64(i)*1.5 {
			t.Fatalf("elem %d = %g", i, v)
		}
	}
	// 64 elements x 8 B = 8 lines; D-A should be 8 lines x 64 B.
	if stats.DABytes != 8*64 {
		t.Fatalf("DABytes = %d, want 512", stats.DABytes)
	}
	if fetch.accesses != 8 {
		t.Fatalf("line fetches = %d, want 8", fetch.accesses)
	}
	if !fsm.Done() || !buf.Drained(r) {
		t.Fatal("stream not closed")
	}
}

func TestStreamInStridedLargeSkipsLines(t *testing.T) {
	data := make([]float64, 256)
	mem := newFakeMem(8, map[string][]float64{"A": data})
	fetch := &fakeFetch{lat: 5}
	stats := &Stats{}
	buf, _ := NewBuffer(16, nil)
	r := buf.AttachReader(0)
	// Stride 16 elements = 128 B: every element on its own line.
	fsm, err := NewStreamIn(buf, mem, fetch, 0, "A", 0, 16, 16, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for now := int64(0); now < 10000 && n < 16; now++ {
		fsm.Step(now)
		for buf.CanPop(r) {
			buf.Pop(r)
			n++
		}
	}
	if fetch.accesses != 16 {
		t.Fatalf("line fetches = %d, want 16", fetch.accesses)
	}
}

func TestStreamInReverse(t *testing.T) {
	data := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	mem := newFakeMem(8, map[string][]float64{"A": data})
	stats := &Stats{}
	buf, _ := NewBuffer(8, nil)
	r := buf.AttachReader(0)
	fsm, err := NewStreamIn(buf, mem, &fakeFetch{lat: 3}, 0, "A", 7, -1, 8, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	for now := int64(0); now < 10000 && len(got) < 8; now++ {
		fsm.Step(now)
		for buf.CanPop(r) {
			got = append(got, buf.Pop(r))
		}
	}
	for i, v := range got {
		if v != float64(7-i) {
			t.Fatalf("reverse elem %d = %g", i, v)
		}
	}
}

func TestStreamInZeroStrideRejected(t *testing.T) {
	mem := newFakeMem(8, map[string][]float64{"A": make([]float64, 8)})
	buf, _ := NewBuffer(8, nil)
	if _, err := NewStreamIn(buf, mem, &fakeFetch{}, 0, "A", 0, 0, 8, &Stats{}, nil); err == nil {
		t.Fatal("zero stride accepted")
	}
}

func TestStreamOutWritesBack(t *testing.T) {
	out := make([]float64, 32)
	mem := newFakeMem(8, map[string][]float64{"B": out})
	fetch := &fakeFetch{lat: 8}
	stats := &Stats{}
	buf, _ := NewBuffer(8, nil)
	fsm, err := NewStreamOut(buf, mem, fetch, 0, "B", 0, 1, stats, nil)
	if err != nil {
		t.Fatal(err)
	}
	produced := 0
	for now := int64(0); now < 10000 && !fsm.Done(); now++ {
		if produced < 32 && buf.CanPush() {
			buf.Push(float64(produced * 3))
			produced++
		}
		if produced == 32 && !buf.Closed() {
			buf.Close()
		}
		fsm.Step(now)
	}
	if !fsm.Done() {
		t.Fatal("drain did not finish")
	}
	for i := 0; i < 32; i++ {
		if out[i] != float64(i*3) {
			t.Fatalf("B[%d] = %g", i, out[i])
		}
	}
	// 32 x 8 B = 4 lines.
	if stats.DABytes != 4*64 {
		t.Fatalf("DABytes = %d, want 256", stats.DABytes)
	}
}

func TestLinkMovesDataAndCloses(t *testing.T) {
	meter := energy.NewMeter(energy.Default32nm())
	mesh := noc.New(noc.DefaultConfig(), meter)
	stats := &Stats{}
	src, _ := NewBuffer(8, nil)
	dst, _ := NewBuffer(8, nil)
	rd := dst.AttachReader(0)
	tx, rx := NewLocalLink(src, dst, mesh, 0, 3, 8, stats)

	for i := 0; i < 8; i++ {
		src.Push(float64(i))
	}
	src.Close()
	var got []float64
	for now := int64(0); now < 1000 && !(tx.Done() && rx.Done()); now++ {
		tx.Step(now)
		rx.Step(now)
		for dst.CanPop(rd) {
			got = append(got, dst.Pop(rd))
		}
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d", len(got))
	}
	for i, v := range got {
		if v != float64(i) {
			t.Fatalf("elem %d = %g", i, v)
		}
	}
	if !dst.Closed() {
		t.Fatal("close not propagated")
	}
	if stats.AABytes != 64 {
		t.Fatalf("AABytes = %d, want 64", stats.AABytes)
	}
	if mesh.Bytes[noc.AccData] != 64 {
		t.Fatalf("NoC acc_data = %d", mesh.Bytes[noc.AccData])
	}
	if mesh.Bytes[noc.AccCtrl] == 0 {
		t.Fatal("no credit control traffic")
	}
}

func TestLinkColocatedNoAATraffic(t *testing.T) {
	mesh := noc.New(noc.DefaultConfig(), nil)
	stats := &Stats{}
	src, _ := NewBuffer(4, nil)
	dst, _ := NewBuffer(4, nil)
	rd := dst.AttachReader(0)
	tx, rx := NewLocalLink(src, dst, mesh, 2, 2, 8, stats)
	src.Push(42)
	src.Close()
	for now := int64(0); now < 100 && !(tx.Done() && rx.Done()); now++ {
		tx.Step(now)
		rx.Step(now)
		for dst.CanPop(rd) {
			dst.Pop(rd)
		}
	}
	if stats.AABytes != 0 {
		t.Fatalf("co-located AABytes = %d", stats.AABytes)
	}
}

func TestLinkBackPressure(t *testing.T) {
	mesh := noc.New(noc.DefaultConfig(), nil)
	stats := &Stats{}
	src, _ := NewBuffer(64, nil)
	dst, _ := NewBuffer(2, nil) // tiny consumer buffer
	tx, rx := NewLocalLink(src, dst, mesh, 0, 1, 8, stats)
	for i := 0; i < 32; i++ {
		src.Push(float64(i))
	}
	for now := int64(0); now < 50; now++ {
		tx.Step(now)
		rx.Step(now)
	}
	// Consumer never pops: at most cap(dst) may be delivered or in flight.
	if dst.Occupancy() > 2 {
		t.Fatalf("dst over capacity: %d", dst.Occupancy())
	}
	if src.Level(0) == 0 {
		t.Fatal("back-pressure ignored: src fully drained")
	}
}

func TestRandomPort(t *testing.T) {
	mem := newFakeMem(8, map[string][]float64{"A": {5, 6, 7}})
	fetch := &fakeFetch{lat: 12}
	stats := &Stats{}
	meter := energy.NewMeter(energy.Default32nm())
	p := NewRandomPort(mem, fetch, 1, stats, meter)

	v, lat, err := p.Load("A", 2)
	if err != nil || v != 7 || lat != 12 {
		t.Fatalf("Load = %g/%d/%v", v, lat, err)
	}
	if _, err := p.Store("A", 0, 99); err != nil {
		t.Fatal(err)
	}
	if got, _ := mem.Read("A", 0); got != 99 {
		t.Fatal("store not applied")
	}
	if stats.DABytes != 16 {
		t.Fatalf("DABytes = %d, want 16", stats.DABytes)
	}
	if p.Loads != 1 || p.Stores != 1 {
		t.Fatal("counters")
	}
	if _, _, err := p.Load("A", 99); err == nil {
		t.Fatal("OOB load accepted")
	}
	if _, _, err := p.Load("Z", 0); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := p.Store("A", -1, 0); err == nil {
		t.Fatal("OOB store accepted")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{DABytes: 1, AABytes: 2, IntraBytes: 3}
	if s.Total() != 6 {
		t.Fatal("Total")
	}
}
