// Package accessunit implements the Fig. 2c access unit: SRAM window
// buffers with per-consumer read pointers, the strided fill/drain FSM, and
// the NoC link that realizes decoupled producer→consumer channels (Fig. 4).
package accessunit

import (
	"fmt"

	"distda/internal/energy"
	"distda/internal/profile"
)

// Buffer is a bounded stream window held in the access unit's SRAM. A
// single writer appends a monotonically numbered element sequence; multiple
// readers (combined accessors, Fig. 2d) each hold an independent read
// pointer. An element's storage is reclaimed once every reader has passed
// it, which is what lets a stencil's A[i], A[i+1], A[i+2] accessors share
// one fetched window.
type Buffer struct {
	cap     int
	data    []float64
	wseq    int64
	readers []int64
	// minSeq caches min(readers): the reclaim watermark. Push and CanPush
	// sit on the simulator's innermost loop and must not rescan every
	// reader; the cache is refreshed only when the slowest reader advances
	// (Pop/Skip from the watermark) or a new reader attaches behind it.
	minSeq int64
	closed bool
	meter  *energy.Meter

	Pushes int64
	Pops   int64

	// Occ, when profiling is on, observes the buffer's occupancy after each
	// push — the queue-occupancy histogram of the stats dump. Nil (one
	// predictable branch per push) when profiling is off.
	Occ *profile.Queue
}

// NewBuffer creates a buffer holding capElems elements, metering SRAM
// energy into m (may be nil).
func NewBuffer(capElems int, m *energy.Meter) (*Buffer, error) {
	if capElems <= 0 {
		return nil, fmt.Errorf("accessunit: buffer capacity %d", capElems)
	}
	return &Buffer{cap: capElems, data: make([]float64, capElems), meter: m}, nil
}

// Cap returns the capacity in elements.
func (b *Buffer) Cap() int { return b.cap }

// AttachReader registers a consumer starting at sequence startSeq (a
// combined accessor with +k element offset starts at seq k) and returns its
// reader handle.
func (b *Buffer) AttachReader(startSeq int64) int {
	b.readers = append(b.readers, startSeq)
	if len(b.readers) == 1 || startSeq < b.minSeq {
		b.minSeq = startSeq
	}
	return len(b.readers) - 1
}

// recomputeMin rescans the readers for the watermark. Called only when
// the reader that was at the watermark advances.
func (b *Buffer) recomputeMin() {
	if len(b.readers) == 0 {
		b.minSeq = 0 // no consumers wired yet: nothing is reclaimable
		return
	}
	m := b.readers[0]
	for _, r := range b.readers[1:] {
		if r < m {
			m = r
		}
	}
	b.minSeq = m
}

// CanPush reports whether one more element fits.
func (b *Buffer) CanPush() bool {
	return !b.closed && b.wseq-b.minSeq < int64(b.cap)
}

// Push appends an element. The caller must check CanPush.
func (b *Buffer) Push(v float64) {
	if !b.CanPush() {
		panic("accessunit: Push on full or closed buffer")
	}
	b.data[b.wseq%int64(b.cap)] = v
	b.wseq++
	b.Pushes++
	if b.meter != nil {
		b.meter.Add(energy.CatBuffer, b.meter.Table.BufferPJ)
	}
	if b.Occ != nil {
		b.Occ.Observe(b.wseq - b.minSeq)
	}
}

// CanPop reports whether reader r has an element available.
func (b *Buffer) CanPop(r int) bool { return b.readers[r] < b.wseq }

// Pop returns the next element for reader r. The caller must check CanPop.
func (b *Buffer) Pop(r int) float64 {
	if !b.CanPop(r) {
		panic("accessunit: Pop on empty buffer")
	}
	seq := b.readers[r]
	if b.wseq-seq > int64(b.cap) {
		panic("accessunit: reader fell out of the window")
	}
	v := b.data[seq%int64(b.cap)]
	b.readers[r]++
	if seq == b.minSeq {
		b.recomputeMin()
	}
	b.Pops++
	if b.meter != nil {
		b.meter.Add(energy.CatBuffer, b.meter.Table.BufferPJ)
	}
	return v
}

// Skip advances reader r by n elements without reading them (cp_step).
func (b *Buffer) Skip(r int, n int64) {
	if b.readers[r]+n > b.wseq {
		panic("accessunit: Skip past write pointer")
	}
	seq := b.readers[r]
	b.readers[r] += n
	if seq == b.minSeq && n > 0 {
		b.recomputeMin()
	}
}

// Close marks end-of-stream: no further pushes. Readers may drain what
// remains.
func (b *Buffer) Close() { b.closed = true }

// Closed reports whether the writer closed the stream.
func (b *Buffer) Closed() bool { return b.closed }

// Drained reports end-of-stream for reader r: closed and fully consumed.
func (b *Buffer) Drained(r int) bool { return b.closed && b.readers[r] >= b.wseq }

// Level returns how many elements reader r still has buffered.
func (b *Buffer) Level(r int) int64 { return b.wseq - b.readers[r] }

// Occupancy returns the elements currently held (window between the write
// pointer and the slowest reader).
func (b *Buffer) Occupancy() int64 { return b.wseq - b.minSeq }
