package accessunit

import (
	"fmt"

	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/trace"
)

// Stats aggregates the Fig. 9 traffic categories for one simulated run.
type Stats struct {
	// DABytes: external traffic between accelerators and the cache
	// hierarchy (line fills, drains, random accesses).
	DABytes int64
	// AABytes: external traffic between an accelerator and a remote
	// accelerator (operand forwarding over the NoC).
	AABytes int64
	// IntraBytes: traffic internal to an accelerator's local buffers.
	IntraBytes int64
}

// Total returns all accelerator-side bytes moved.
func (s *Stats) Total() int64 { return s.DABytes + s.AABytes + s.IntraBytes }

// Memory provides functional element access to the named memory objects.
// The simulator implements it over the slab-allocated backing arrays.
type Memory interface {
	Read(obj string, idx int64) (float64, error)
	Write(obj string, idx int64, v float64) error
	AddrOf(obj string, idx int64) (int64, error)
	ElemBytes(obj string) (int, error)
}

// Fetcher models the timing and traffic of moving data between an access
// unit at an L3 cluster and the cache hierarchy. bytes is the payload
// returned to (or sent from) the requester. The returned latency is in
// engine base cycles.
type Fetcher interface {
	Access(cluster int, addr int64, write bool, bytes int) (latency int)
	LineBytes() int
}

// pendingLine is one in-flight line fetch: values already read functionally,
// delivered into the buffer at arrival time in issue order.
type pendingLine struct {
	arrival int64
	vals    []float64
}

// maxInflight is the access unit's outstanding line-fetch capacity (its
// MSHR analog): enough to cover L3 latency at one element per cycle.
const maxInflight = 4

// pushesPerCycle bounds SRAM write ports.
const pushesPerCycle = 2

// StreamIn is the fill FSM: it walks the configured stride pattern,
// fetching lines from the cluster's cache hierarchy and pushing elements
// into the buffer ahead of the consumer (§IV-C component 4).
type StreamIn struct {
	buf     *Buffer
	mem     Memory
	fetch   Fetcher
	cluster int
	obj     string

	start, stride, length int64 // elements
	elemBytes             int64

	issued   int64 // elements whose fetch was issued
	pending  []pendingLine
	lastLine int64
	closed   bool
	stats    *Stats
	meter    *energy.Meter

	// Trace, when enabled, records one span per issued line fetch and an
	// instant at end-of-stream close. Set after construction (the zero value
	// is disabled); timing is unaffected either way.
	Trace trace.Scope
	// LatHist, when non-nil, observes per-line fetch latencies (base cycles).
	LatHist *trace.Hist
}

// NewStreamIn builds a fill FSM. length may be zero (the buffer closes
// immediately).
func NewStreamIn(buf *Buffer, mem Memory, fetch Fetcher, cluster int, obj string,
	start, stride, length int64, stats *Stats, meter *energy.Meter) (*StreamIn, error) {
	eb, err := mem.ElemBytes(obj)
	if err != nil {
		return nil, err
	}
	if stride == 0 && length > 1 {
		return nil, fmt.Errorf("accessunit: zero stride stream of length %d on %q", length, obj)
	}
	return &StreamIn{
		buf: buf, mem: mem, fetch: fetch, cluster: cluster, obj: obj,
		start: start, stride: stride, length: length, elemBytes: int64(eb),
		lastLine: -1, stats: stats, meter: meter,
	}, nil
}

// Done reports stream completion (all elements delivered, buffer closed).
func (f *StreamIn) Done() bool { return f.closed }

// Step advances one access-unit clock.
func (f *StreamIn) Step(now int64) bool {
	progress := false
	// Deliver arrived lines in issue order.
	pushed := 0
	for len(f.pending) > 0 && f.pending[0].arrival <= now && pushed < pushesPerCycle {
		head := &f.pending[0]
		for len(head.vals) > 0 && f.buf.CanPush() && pushed < pushesPerCycle {
			f.buf.Push(head.vals[0])
			head.vals = head.vals[1:]
			pushed++
			progress = true
		}
		if len(head.vals) == 0 {
			f.pending = f.pending[1:]
		} else {
			break
		}
	}
	// Anything still in flight counts as progress (a timer is running).
	if len(f.pending) > 0 && f.pending[0].arrival > now {
		progress = true
	}
	// Issue the next line fetch when there is buffer headroom.
	if f.issued < f.length && len(f.pending) < maxInflight && f.headroom() > 0 {
		if f.issueLine(now) {
			progress = true
		}
	}
	// Close at end of stream.
	if !f.closed && f.issued >= f.length && len(f.pending) == 0 {
		f.buf.Close()
		f.closed = true
		progress = true
		f.Trace.Instant("close", now, trace.KV{K: "obj", V: f.obj}, trace.KV{K: "elems", V: f.issued})
	}
	return progress
}

// NextEvent implements engine.Hinter: the fill FSM's next effect is a
// delivery, an issue, or the end-of-stream close — all immediate when
// possible — otherwise the head in-flight line's arrival; with nothing in
// flight and no headroom it is blocked on the consumer.
func (f *StreamIn) NextEvent(now int64) int64 {
	if f.closed {
		return 0
	}
	if len(f.pending) > 0 && f.pending[0].arrival <= now && f.buf.CanPush() {
		return 0 // arrived line, buffer space: deliver now
	}
	if f.issued < f.length && len(f.pending) < maxInflight && f.headroom() > 0 {
		return 0 // can issue the next line fetch now
	}
	if f.issued >= f.length && len(f.pending) == 0 {
		return 0 // end of stream: close now
	}
	if len(f.pending) > 0 && f.pending[0].arrival > now {
		return f.pending[0].arrival // line in flight
	}
	return engine.Never // full buffer: blocked on the consumer
}

// headroom estimates free buffer space beyond in-flight elements so the
// fill FSM throttles on back-pressure (§V-B).
func (f *StreamIn) headroom() int64 {
	inflight := int64(0)
	for _, p := range f.pending {
		inflight += int64(len(p.vals))
	}
	return int64(f.buf.Cap()) - f.buf.Occupancy() - inflight
}

// issueLine reads the next run of elements sharing one cache line and
// issues its fetch. Elements whose line was just fetched are intra-buffer
// reuse; new lines cost a D-A line transfer.
func (f *StreamIn) issueLine(now int64) bool {
	lineBytes := int64(f.fetch.LineBytes())
	// Pre-size for the most elements one line can carry: the append loop
	// below never crosses a line, so this avoids the grow-and-copy churn a
	// nil slice pays per issued line (profile-visible across the repro).
	capElems := lineBytes / f.elemBytes
	if capElems < 1 {
		capElems = 1
	}
	vals := make([]float64, 0, capElems)
	var issueLat int
	newLine := false
	for f.issued < f.length {
		idx := f.start + f.issued*f.stride
		addr, err := f.mem.AddrOf(f.obj, idx)
		if err != nil {
			panic(fmt.Sprintf("accessunit: stream %q: %v", f.obj, err))
		}
		line := addr / lineBytes
		if len(vals) > 0 && line != f.lastLine {
			break // next element starts a new line; fetch it next issue
		}
		if line != f.lastLine {
			issueLat = f.fetch.Access(f.cluster, addr, false, int(lineBytes))
			f.stats.DABytes += lineBytes
			f.lastLine = line
			newLine = true
			f.Trace.Span("fill", now, int64(issueLat), trace.KV{K: "obj", V: f.obj})
			f.LatHist.Observe(float64(issueLat))
		} else if len(vals) == 0 && !newLine {
			// Element served from the already-fetched line: pure reuse
			// (buffer-internal traffic is accounted at the buffer).
			issueLat = 1
		}
		v, err := f.mem.Read(f.obj, idx)
		if err != nil {
			panic(fmt.Sprintf("accessunit: stream %q: %v", f.obj, err))
		}
		vals = append(vals, v)
		f.issued++
		if f.stride*f.elemBytes >= lineBytes || f.stride < 0 {
			break // each element on its own line (or reverse: keep simple)
		}
	}
	if len(vals) == 0 {
		return false
	}
	if f.meter != nil {
		f.meter.Add(energy.CatAccel, f.meter.Table.TranslatePJ)
	}
	f.pending = append(f.pending, pendingLine{arrival: now + int64(issueLat), vals: vals})
	return true
}

// StreamOut is the drain FSM: it pops produced elements from the buffer and
// writes them back through the cluster's cache hierarchy following the
// configured stride.
type StreamOut struct {
	buf     *Buffer
	reader  int
	mem     Memory
	fetch   Fetcher
	cluster int
	obj     string

	start, stride int64
	elemBytes     int64

	drained   int64
	lastLine  int64
	busyUntil int64
	closed    bool
	stats     *Stats
	meter     *energy.Meter

	// Trace, when enabled, records one span per line writeback and an
	// instant when the drain completes. Set after construction.
	Trace trace.Scope
	// LatHist, when non-nil, observes per-line writeback latencies.
	LatHist *trace.Hist
}

// NewStreamOut builds a drain FSM reading from buf via its own reader.
func NewStreamOut(buf *Buffer, mem Memory, fetch Fetcher, cluster int, obj string,
	start, stride int64, stats *Stats, meter *energy.Meter) (*StreamOut, error) {
	eb, err := mem.ElemBytes(obj)
	if err != nil {
		return nil, err
	}
	return &StreamOut{
		buf: buf, reader: buf.AttachReader(0), mem: mem, fetch: fetch,
		cluster: cluster, obj: obj, start: start, stride: stride,
		elemBytes: int64(eb), lastLine: -1, stats: stats, meter: meter,
	}, nil
}

// Done reports that the producer closed the stream and everything drained.
func (f *StreamOut) Done() bool { return f.closed }

// Step advances one access-unit clock.
func (f *StreamOut) Step(now int64) bool {
	if f.closed {
		return false
	}
	if now < f.busyUntil {
		return true // write port busy: timer counts down
	}
	if f.buf.Drained(f.reader) {
		f.closed = true
		f.Trace.Instant("close", now, trace.KV{K: "obj", V: f.obj}, trace.KV{K: "elems", V: f.drained})
		return true
	}
	if !f.buf.CanPop(f.reader) {
		return false // waiting on producer
	}
	v := f.buf.Pop(f.reader)
	idx := f.start + f.drained*f.stride
	if err := f.mem.Write(f.obj, idx, v); err != nil {
		panic(fmt.Sprintf("accessunit: drain %q: %v", f.obj, err))
	}
	addr, err := f.mem.AddrOf(f.obj, idx)
	if err != nil {
		panic(fmt.Sprintf("accessunit: drain %q: %v", f.obj, err))
	}
	lineBytes := int64(f.fetch.LineBytes())
	line := addr / lineBytes
	if line != f.lastLine {
		lat := f.fetch.Access(f.cluster, addr, true, int(lineBytes))
		f.stats.DABytes += lineBytes
		f.lastLine = line
		// Posted write: occupy the port briefly, don't wait for the ack.
		f.busyUntil = now + int64(min(lat, 4))
		if f.meter != nil {
			f.meter.Add(energy.CatAccel, f.meter.Table.TranslatePJ)
		}
		f.Trace.Span("drain", now, f.busyUntil-now, trace.KV{K: "obj", V: f.obj})
		f.LatHist.Observe(float64(lat))
	}
	f.drained++
	return true
}

// NextEvent implements engine.Hinter: the drain FSM acts as soon as its
// write port frees up and an element (or the end-of-stream mark) is
// available; an empty, still-open buffer blocks it on the producer.
func (f *StreamOut) NextEvent(now int64) int64 {
	if f.closed {
		return 0
	}
	if now < f.busyUntil {
		return f.busyUntil // write port busy
	}
	if f.buf.Drained(f.reader) || f.buf.CanPop(f.reader) {
		return 0
	}
	return engine.Never // waiting on the producer
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
