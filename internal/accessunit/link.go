package accessunit

import (
	"distda/internal/engine"
	"distda/internal/noc"
)

// This file realizes one producer→consumer channel across access units
// (Fig. 4) as a pair of engine components — LinkTx at the producer's node,
// LinkRx at the consumer's — exchanging timestamped messages over a Wire.
// Every cross-half observation is message-mediated with at least one cycle
// of latency: elements and end-of-stream travel Tx→Rx at the NoC transfer
// latency, and buffer space comes back Rx→Tx as batched credit returns
// (credit-based flow control, §IV-C). That discipline is what makes the
// halves shardable: a conservative time-window coordinator may run the two
// sides on different goroutines and exchange their wires' messages only at
// window barriers, because neither side ever reads the other's state
// directly. In a serial engine the same halves are joined by a LocalWire
// and behave identically cycle for cycle.

// Message kinds carried on a link's wires.
const (
	// LinkElem carries one stream element (Val is the payload).
	LinkElem = iota
	// LinkClose signals end-of-stream; it follows the last element.
	LinkClose
	// LinkCredit returns buffer credits to the sender (Val is the count).
	LinkCredit
)

// LinkMsg is one timestamped message between link halves. At is the base
// cycle at which the receiver may observe it; a receiver holding a message
// early (a window coordinator delivers conservatively early) must wait for
// its own clock to reach At.
type LinkMsg struct {
	At   int64
	Kind int
	Val  float64
}

// WireSend is the sending end of a one-directional wire between link
// halves. Messages must be sent with nondecreasing At (the NoC route is
// FIFO); senders enforce this by clamping.
type WireSend interface {
	Send(m LinkMsg)
}

// WireRecv is the receiving end: Head exposes the earliest visible message
// without consuming it.
type WireRecv interface {
	Head() (LinkMsg, bool)
	Pop()
}

// LocalWire joins two link halves registered in the same engine: a plain
// FIFO the receiver drains by timestamp. It is the serial (and
// intra-shard) wire.
type LocalWire struct {
	q []LinkMsg
}

// Send appends a message.
func (w *LocalWire) Send(m LinkMsg) { w.q = append(w.q, m) }

// Head returns the earliest message, if any.
func (w *LocalWire) Head() (LinkMsg, bool) {
	if len(w.q) == 0 {
		return LinkMsg{}, false
	}
	return w.q[0], true
}

// Pop consumes the head message.
func (w *LocalWire) Pop() { w.q = w.q[1:] }

// linkCredits bounds elements in flight per channel: the sender's initial
// credit grant (clamped to the consumer buffer's capacity). Large enough
// to cover the credit-return round trip at one element per cycle across
// the mesh diagonal.
const linkCredits = 32

// creditBatch: one 8-byte credit-return control message per this many
// delivered elements.
const creditBatch = 8

// LinkTx is the producer half: it pops the producer-side buffer and sends
// elements (then end-of-stream) down the wire, spending credits the
// receiver returns.
type LinkTx struct {
	src       *Buffer
	srcReader int
	mesh      *noc.Mesh
	srcNode   int
	dstNode   int
	elemBytes int

	out     WireSend
	credits WireRecv
	avail   int
	lastAt  int64
	closed  bool
	stats   *Stats
}

// NewLinkTx builds the producer half. dstCap is the consumer buffer's
// capacity (the credit clamp); out carries elements and close, credits
// carries returns.
func NewLinkTx(src *Buffer, mesh *noc.Mesh, srcNode, dstNode, elemBytes, dstCap int, out WireSend, credits WireRecv, stats *Stats) *LinkTx {
	avail := linkCredits
	if dstCap < avail {
		avail = dstCap
	}
	return &LinkTx{
		src: src, srcReader: src.AttachReader(0), mesh: mesh,
		srcNode: srcNode, dstNode: dstNode, elemBytes: elemBytes,
		out: out, credits: credits, avail: avail, stats: stats,
	}
}

// send stamps and forwards one message, keeping arrival times monotone
// (same-route messages never overtake).
func (l *LinkTx) send(now int64, lat int, kind int, v float64) {
	at := now + int64(lat)
	if at < l.lastAt {
		at = l.lastAt
	}
	l.lastAt = at
	l.out.Send(LinkMsg{At: at, Kind: kind, Val: v})
}

// Done reports that end-of-stream was sent; late credit returns are
// ignored.
func (l *LinkTx) Done() bool { return l.closed }

// remote reports whether the endpoints are on different mesh nodes.
func (l *LinkTx) remote() bool { return l.mesh != nil && l.srcNode != l.dstNode }

// NextEvent implements engine.Hinter.
func (l *LinkTx) NextEvent(now int64) int64 {
	if l.closed {
		return 0
	}
	if m, ok := l.credits.Head(); ok && m.At <= now {
		return 0 // credits to collect
	}
	if l.avail > 0 && l.src.CanPop(l.srcReader) {
		return 0 // inject now
	}
	if l.src.Drained(l.srcReader) {
		return 0 // propagate end-of-stream
	}
	if m, ok := l.credits.Head(); ok && m.At > now {
		return m.At // credit in flight
	}
	return engine.Never // blocked on producer pushes or credit returns
}

// Step advances one uncore clock.
func (l *LinkTx) Step(now int64) bool {
	if l.closed {
		return false
	}
	progress := false
	for {
		m, ok := l.credits.Head()
		if !ok || m.At > now {
			if ok {
				progress = true // credit timer running
			}
			break
		}
		l.credits.Pop()
		l.avail += int(m.Val)
		progress = true
	}
	for l.avail > 0 && l.src.CanPop(l.srcReader) {
		v := l.src.Pop(l.srcReader)
		lat := 1
		if l.remote() {
			lat = l.mesh.Transfer(l.srcNode, l.dstNode, l.elemBytes, noc.AccData)
			l.stats.AABytes += int64(l.elemBytes)
		}
		l.send(now, lat, LinkElem, v)
		l.avail--
		progress = true
	}
	if l.src.Drained(l.srcReader) {
		lat := 1
		if l.remote() {
			lat = l.mesh.MinLatency(l.srcNode, l.dstNode)
		}
		l.send(now, lat, LinkClose, 0)
		l.closed = true
		progress = true
	}
	return progress
}

// LinkRx is the consumer half: it delivers arrived elements into the
// consumer-side buffer, returns credits in batches, and closes the buffer
// on end-of-stream.
type LinkRx struct {
	dst     *Buffer
	mesh    *noc.Mesh
	srcNode int
	dstNode int

	in      WireRecv
	credits WireSend
	batch   int
	lastAt  int64
	closed  bool
}

// NewLinkRx builds the consumer half. in carries elements and close from
// the Tx; credits carries returns back.
func NewLinkRx(dst *Buffer, mesh *noc.Mesh, srcNode, dstNode int, in WireRecv, credits WireSend) *LinkRx {
	return &LinkRx{dst: dst, mesh: mesh, srcNode: srcNode, dstNode: dstNode, in: in, credits: credits}
}

// Done reports that end-of-stream was delivered.
func (l *LinkRx) Done() bool { return l.closed }

func (l *LinkRx) remote() bool { return l.mesh != nil && l.srcNode != l.dstNode }

// NextEvent implements engine.Hinter.
func (l *LinkRx) NextEvent(now int64) int64 {
	if l.closed {
		return 0
	}
	m, ok := l.in.Head()
	if !ok {
		return engine.Never // blocked on the sender
	}
	if m.At > now {
		return m.At // in flight
	}
	if m.Kind != LinkElem || l.dst.CanPush() {
		return 0 // deliver or close now
	}
	return engine.Never // blocked on consumer pops
}

// Step advances one uncore clock.
func (l *LinkRx) Step(now int64) bool {
	if l.closed {
		return false
	}
	progress := false
	for {
		m, ok := l.in.Head()
		if !ok {
			break
		}
		if m.At > now {
			progress = true // in-flight timer
			break
		}
		if m.Kind == LinkElem {
			if !l.dst.CanPush() {
				break
			}
			l.dst.Push(m.Val)
			l.in.Pop()
			progress = true
			l.batch++
			if l.batch == creditBatch {
				l.returnCredits(now, l.batch)
				l.batch = 0
			}
			continue
		}
		// LinkClose: always last on the wire.
		l.in.Pop()
		l.dst.Close()
		l.closed = true
		progress = true
	}
	return progress
}

// returnCredits sends one batched credit-return control message.
func (l *LinkRx) returnCredits(now int64, n int) {
	lat := 1
	if l.remote() {
		lat = l.mesh.Transfer(l.dstNode, l.srcNode, 8, noc.AccCtrl)
	}
	at := now + int64(lat)
	if at < l.lastAt {
		at = l.lastAt
	}
	l.lastAt = at
	l.credits.Send(LinkMsg{At: at, Kind: LinkCredit, Val: float64(n)})
}

// NewLocalLink wires a Tx/Rx pair over LocalWires — the serial form used
// when both halves run in one engine.
func NewLocalLink(src, dst *Buffer, mesh *noc.Mesh, srcNode, dstNode, elemBytes int, stats *Stats) (*LinkTx, *LinkRx) {
	fwd, back := &LocalWire{}, &LocalWire{}
	tx := NewLinkTx(src, mesh, srcNode, dstNode, elemBytes, dst.Cap(), fwd, back, stats)
	rx := NewLinkRx(dst, mesh, srcNode, dstNode, fwd, back)
	return tx, rx
}
