package accessunit

import (
	"distda/internal/engine"
	"distda/internal/noc"
)

// Link realizes one producer→consumer channel across access units (Fig. 4):
// the producer's cp_produce lands in its local buffer; the link moves
// elements over the NoC into the consumer-side buffer, respecting consumer
// space (credit-based back-pressure); cp_consume pops locally. Co-located
// endpoints still pay local buffer traffic but no NoC energy.
type Link struct {
	src       *Buffer
	srcReader int
	dst       *Buffer
	mesh      *noc.Mesh
	srcNode   int
	dstNode   int
	elemBytes int

	pending []arrival
	sent    int64
	closed  bool
	stats   *Stats
}

type arrival struct {
	t int64
	v float64
}

// linkInflight bounds elements in flight (credit window).
const linkInflight = 8

// creditBatch: one 8-byte credit-return control message per this many
// delivered elements.
const creditBatch = 8

// NewLink wires src (producer-side buffer) to dst (consumer-side buffer).
func NewLink(src, dst *Buffer, mesh *noc.Mesh, srcNode, dstNode, elemBytes int, stats *Stats) *Link {
	return &Link{
		src: src, srcReader: src.AttachReader(0), dst: dst,
		mesh: mesh, srcNode: srcNode, dstNode: dstNode,
		elemBytes: elemBytes, stats: stats,
	}
}

// Done reports that the producer closed and everything was delivered.
func (l *Link) Done() bool { return l.closed }

// NextEvent implements engine.Hinter: the link acts immediately when it
// can deliver an arrived element, inject a new one within its credit
// window, or propagate end-of-stream; otherwise its next self-scheduled
// event is the head in-flight element's arrival, and with nothing in
// flight it is blocked on its endpoints.
func (l *Link) NextEvent(now int64) int64 {
	if l.closed {
		return 0
	}
	if len(l.pending) > 0 && l.pending[0].t <= now && l.dst.CanPush() {
		return 0 // deliver now
	}
	if len(l.pending) < linkInflight && l.src.CanPop(l.srcReader) &&
		l.dst.Occupancy()+int64(len(l.pending)) < int64(l.dst.Cap()) {
		return 0 // inject now
	}
	if len(l.pending) == 0 && l.src.Drained(l.srcReader) {
		return 0 // propagate end-of-stream now
	}
	if len(l.pending) > 0 && l.pending[0].t > now {
		return l.pending[0].t // element in flight
	}
	return engine.Never // blocked on producer pushes or consumer pops
}

// Step advances one uncore clock.
func (l *Link) Step(now int64) bool {
	if l.closed {
		return false
	}
	progress := false
	remote := l.mesh != nil && l.srcNode != l.dstNode
	// Deliver arrivals.
	for len(l.pending) > 0 && l.pending[0].t <= now && l.dst.CanPush() {
		l.dst.Push(l.pending[0].v)
		l.pending = l.pending[1:]
		progress = true
		if l.sent%creditBatch == 0 && remote {
			l.mesh.Transfer(l.dstNode, l.srcNode, 8, noc.AccCtrl)
		}
	}
	if len(l.pending) > 0 && l.pending[0].t > now {
		progress = true // in-flight timer
	}
	// Inject new elements while credits allow.
	for len(l.pending) < linkInflight && l.src.CanPop(l.srcReader) &&
		l.dst.Occupancy()+int64(len(l.pending)) < int64(l.dst.Cap()) {
		v := l.src.Pop(l.srcReader)
		lat := 1
		if remote {
			lat = l.mesh.Transfer(l.srcNode, l.dstNode, l.elemBytes, noc.AccData)
			l.stats.AABytes += int64(l.elemBytes)
		}
		l.sent++
		l.pending = append(l.pending, arrival{t: now + int64(lat), v: v})
		progress = true
	}
	// Propagate end-of-stream.
	if l.src.Drained(l.srcReader) && len(l.pending) == 0 {
		l.dst.Close()
		l.closed = true
		progress = true
	}
	return progress
}
