package accessunit

import (
	"testing"
	"time"

	"distda/internal/energy"
)

// baselineBuffer is a frozen copy of the buffer push/pop fast path exactly
// as it stood before the profiling hook (Occ) existed — same guards, same
// energy-meter branch, minus only the Occ branch. It is the differential
// baseline for the disabled-profiler overhead budget: the instrumented
// buffer with a nil Occ must stay within 2% of this code.
type baselineBuffer struct {
	cap     int
	data    []float64
	wseq    int64
	readers []int64
	closed  bool
	meter   *energy.Meter

	pushes int64
	pops   int64
}

func newBaselineBuffer(capElems int) *baselineBuffer {
	return &baselineBuffer{cap: capElems, data: make([]float64, capElems)}
}

func (b *baselineBuffer) attachReader(startSeq int64) int {
	b.readers = append(b.readers, startSeq)
	return len(b.readers) - 1
}

func (b *baselineBuffer) minReader() int64 {
	if len(b.readers) == 0 {
		return 0
	}
	m := b.readers[0]
	for _, r := range b.readers[1:] {
		if r < m {
			m = r
		}
	}
	return m
}

func (b *baselineBuffer) canPush() bool {
	return !b.closed && b.wseq-b.minReader() < int64(b.cap)
}

func (b *baselineBuffer) push(v float64) {
	if !b.canPush() {
		panic("accessunit: Push on full or closed buffer")
	}
	b.data[b.wseq%int64(b.cap)] = v
	b.wseq++
	b.pushes++
	if b.meter != nil {
		b.meter.Add(energy.CatBuffer, b.meter.Table.BufferPJ)
	}
}

func (b *baselineBuffer) canPop(r int) bool { return b.readers[r] < b.wseq }

func (b *baselineBuffer) pop(r int) float64 {
	if !b.canPop(r) {
		panic("accessunit: Pop on empty buffer")
	}
	seq := b.readers[r]
	if b.wseq-seq > int64(b.cap) {
		panic("accessunit: reader fell out of the window")
	}
	v := b.data[seq%int64(b.cap)]
	b.readers[r]++
	b.pops++
	if b.meter != nil {
		b.meter.Add(energy.CatBuffer, b.meter.Table.BufferPJ)
	}
	return v
}

// workload parameters shared by both loops: a window buffer streamed through
// by two offset readers, the stencil shape that dominates simulated pushes.
const (
	ohCap   = 64
	ohElems = 1 << 16
)

func driveBaseline() int64 {
	b := newBaselineBuffer(ohCap)
	r0 := b.attachReader(0)
	r1 := b.attachReader(1)
	var sum float64
	var next int64
	for b.readers[r1] < ohElems {
		for b.canPush() && next < ohElems+1 {
			b.push(float64(next))
			next++
		}
		for b.canPop(r0) {
			sum += b.pop(r0)
		}
		for b.canPop(r1) {
			sum += b.pop(r1)
		}
	}
	_ = sum
	return b.pushes + b.pops
}

func driveCurrent() int64 {
	b, err := NewBuffer(ohCap, nil) // nil meter, nil Occ: fully disabled
	if err != nil {
		panic(err)
	}
	r0 := b.AttachReader(0)
	r1 := b.AttachReader(1)
	var sum float64
	var next int64
	for b.readers[r1] < ohElems {
		for b.CanPush() && next < ohElems+1 {
			b.Push(float64(next))
			next++
		}
		for b.CanPop(r0) {
			sum += b.Pop(r0)
		}
		for b.CanPop(r1) {
			sum += b.Pop(r1)
		}
	}
	_ = sum
	return b.Pushes + b.Pops
}

func timeDrives(reps int, drive func() int64) time.Duration {
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		drive()
	}
	return time.Since(t0)
}

// TestDisabledProfilerOverhead asserts the buffer fast path with profiling
// disabled (nil Occ) stays within 5% of the frozen pre-profiler loop. The
// watermark cache makes the real buffer cheaper per push than the frozen
// loop's reader rescan, so this now passes with headroom.
// Trials interleave the two loops and the comparison uses best-of-N, which
// discards scheduler noise; the test is skipped under -short and retried on
// marginal results before failing.
func TestDisabledProfilerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped under -short")
	}
	if b, c := driveBaseline(), driveCurrent(); b != c {
		t.Fatalf("loops diverge: baseline moved %d elements, current %d", b, c)
	}
	const (
		trials = 11
		reps   = 8
		budget = 1.05 // satellite acceptance: <= 5% overhead
	)
	measure := func() (base, cur time.Duration) {
		base, cur = time.Duration(1<<62), time.Duration(1<<62)
		timeDrives(1, driveBaseline) // warm-up outside the measurement
		timeDrives(1, driveCurrent)
		for i := 0; i < trials; i++ {
			if d := timeDrives(reps, driveBaseline); d < base {
				base = d
			}
			if d := timeDrives(reps, driveCurrent); d < cur {
				cur = d
			}
		}
		return base, cur
	}
	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base, cur := measure()
		ratio = float64(cur) / float64(base)
		t.Logf("attempt %d: baseline %v, instrumented %v, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("disabled-profiler overhead %.2f%% exceeds 5%% budget", 100*(ratio-1))
}

// Benchmarks for manual comparison of the frozen baseline loop vs the
// instrumented buffer with profiling disabled.
func BenchmarkBufferBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driveBaseline()
	}
}

func BenchmarkBufferDisabledProfiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		driveCurrent()
	}
}
