package accessunit

// InPort is a consuming endpoint over a buffer: an accelerator's view of a
// cp_consume-able access-id.
type InPort struct {
	Buf    *Buffer
	Reader int
}

// NewInPort attaches a reader starting at startSeq and returns the port.
func NewInPort(b *Buffer, startSeq int64) *InPort {
	return &InPort{Buf: b, Reader: b.AttachReader(startSeq)}
}

// OutPort is a producing endpoint over a buffer: an accelerator's view of a
// cp_produce-able access-id.
type OutPort struct {
	Buf *Buffer
}
