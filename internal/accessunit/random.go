package accessunit

import "distda/internal/energy"

// RandomPort serves an accelerator's cp_read / cp_write random accesses:
// object-id + offset are translated to a physical address and the request
// goes through the cluster's cache interface (§IV-B "Random access
// mechanisms"). Word-granularity payloads move between bank and
// accelerator.
type RandomPort struct {
	mem     Memory
	fetch   Fetcher
	cluster int
	stats   *Stats
	meter   *energy.Meter

	// Prefill marks objects whose window was block-fetched into the local
	// buffer with cp_fill_ra (§IV-B): loads hit the SRAM buffer instead of
	// the cache interface.
	Prefill map[string]bool

	Loads  int64
	Stores int64
}

// prefillLatency is a buffer probe in base cycles.
const prefillLatency = 4

// NewRandomPort builds a port for an accelerator at the given cluster.
func NewRandomPort(mem Memory, fetch Fetcher, cluster int, stats *Stats, meter *energy.Meter) *RandomPort {
	return &RandomPort{mem: mem, fetch: fetch, cluster: cluster, stats: stats, meter: meter}
}

func (p *RandomPort) account(elemBytes int) {
	p.stats.DABytes += int64(elemBytes)
	if p.meter != nil {
		p.meter.Add(energy.CatAccel, p.meter.Table.TranslatePJ)
	}
}

// Load reads obj[idx], returning the value and the access latency.
func (p *RandomPort) Load(obj string, idx int64) (float64, int, error) {
	eb, err := p.mem.ElemBytes(obj)
	if err != nil {
		return 0, 0, err
	}
	addr, err := p.mem.AddrOf(obj, idx)
	if err != nil {
		return 0, 0, err
	}
	v, err := p.mem.Read(obj, idx)
	if err != nil {
		return 0, 0, err
	}
	p.Loads++
	if p.Prefill[obj] {
		p.stats.IntraBytes += int64(eb)
		if p.meter != nil {
			p.meter.Add(energy.CatBuffer, p.meter.Table.BufferPJ)
		}
		_ = addr
		return v, prefillLatency, nil
	}
	lat := p.fetch.Access(p.cluster, addr, false, eb)
	p.account(eb)
	return v, lat, nil
}

// Store writes obj[idx] = v, returning the access latency.
func (p *RandomPort) Store(obj string, idx int64, v float64) (int, error) {
	eb, err := p.mem.ElemBytes(obj)
	if err != nil {
		return 0, err
	}
	addr, err := p.mem.AddrOf(obj, idx)
	if err != nil {
		return 0, err
	}
	if err := p.mem.Write(obj, idx, v); err != nil {
		return 0, err
	}
	lat := p.fetch.Access(p.cluster, addr, true, eb)
	p.account(eb)
	p.Stores++
	return lat, nil
}
