// Package artifact is a content-addressed cache for compiled offload
// artifacts. An artifact (a *compiler.Compiled) is fully determined by the
// kernel text and the compiler options — the simulator only ever reads it —
// so the 12-workload × 6-configuration experiment matrix can compile each
// (workload, compiler-mode, flags) pair exactly once and share the result
// across cells, worker goroutines, whole runs, and (through the optional
// on-disk store) across processes.
//
// Keys are deterministic SHA-256 content hashes (see Key). Lookup order is
// in-memory LRU → on-disk store → compile; concurrent requests for the same
// key share a single compilation. Artifacts loaded from disk are re-bound
// to the caller's kernel by innermost-loop position (see Bind) since region
// lookup inside the simulator is by loop pointer identity.
package artifact

import (
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"distda/internal/compiler"
	"distda/internal/core"
	"distda/internal/dfg"
	"distda/internal/ir"
)

// FormatVersion is bumped whenever the key derivation or the on-disk
// encoding changes; old entries then simply miss.
const FormatVersion = 2

func init() {
	// The artifact graph reaches ir.Expr interface values (stream
	// configuration expressions, trip counts, scalar binds, affine forms).
	gob.Register(ir.Const{})
	gob.Register(ir.Param{})
	gob.Register(ir.IV{})
	gob.Register(ir.Local{})
	gob.Register(ir.Load{})
	gob.Register(ir.Bin{})
	gob.Register(ir.Un{})
	gob.Register(ir.Sel{})
}

// Key returns the content address of the artifact produced by compiling
// kernel k (from the named workload at the named scale) under opts. The
// hash covers the formatted kernel text, so any change to the workload
// generator, a strip-mined thread variant, or a new scale yields a new key;
// equal keys imply byte-equivalent compilations.
func Key(workload, scale string, k *ir.Kernel, opts compiler.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "distda-artifact-v%d\nworkload=%s\nscale=%s\n", FormatVersion, workload, scale)
	fmt.Fprintf(h, "mode=%d maxpart=%d noobj=%t nostream=%t nofold=%t pim=%d\n",
		opts.Mode, opts.MaxPartitions, opts.NoObjConstraint, opts.NoStreamSpecialization, opts.NoEpilogueFold, opts.PIMBytes)
	fmt.Fprintf(h, "kernel:\n%s", ir.Format(k))
	return hex.EncodeToString(h.Sum(nil))
}

// Stats are the cache's cumulative counters. All values are deterministic
// for a deterministic request sequence (single-flight collapses racing
// compilations), so they can be folded into a metrics registry without
// perturbing worker-count invariance — provided no LRU eviction occurred.
type Stats struct {
	Requests int64 // GetOrCompile calls
	MemHits  int64 // served from the in-memory LRU
	DiskHits int64 // decoded from the on-disk store
	Compiles int64 // compiled from scratch
	Rebinds  int64 // re-bound to a new kernel instance
	Evicted  int64 // LRU evictions (capacity pressure)
	Errors   int64 // failed disk loads that fell back to compiling
}

// Config sizes a Cache.
type Config struct {
	// MaxEntries caps the in-memory LRU (0 selects DefaultMaxEntries).
	// Size it above the working set: the full paper matrix needs at most
	// 2 artifacts per workload (Mono + Dist lowering), 24 total.
	MaxEntries int
	// Dir, when non-empty, enables the on-disk store: one gob file per key
	// under Dir, written atomically (temp file + rename). The directory is
	// created on first use.
	Dir string
}

// DefaultMaxEntries is the default in-memory LRU capacity.
const DefaultMaxEntries = 256

// Cache is a process-wide artifact cache. It is safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	max    int
	dir    string
	ll     *list.List               // front = most recently used
	byKey  map[string]*list.Element // value: *entry
	flight map[string]*flight
	stats  Stats

	// Program side (see program.go): same policy, separate namespace.
	progLL     *list.List               // front = most recently used
	progByKey  map[string]*list.Element // value: *progEntry
	progFlight map[string]*progFlight
	progStats  ProgramStats

	// Result side (see result.go): same policy, separate namespace.
	resultLL    *list.List               // front = most recently used
	resultByKey map[string]*list.Element // value: *resultEntry
	resultStats ResultStats
}

type entry struct {
	key string
	c   *compiler.Compiled
}

type flight struct {
	done chan struct{}
	c    *compiler.Compiled
	err  error
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	max := cfg.MaxEntries
	if max <= 0 {
		max = DefaultMaxEntries
	}
	return &Cache{
		max:         max,
		dir:         cfg.Dir,
		ll:          list.New(),
		byKey:       map[string]*list.Element{},
		flight:      map[string]*flight{},
		progLL:      list.New(),
		progByKey:   map[string]*list.Element{},
		progFlight:  map[string]*progFlight{},
		resultLL:    list.New(),
		resultByKey: map[string]*list.Element{},
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompile returns the artifact stored under key, bound to kernel k.
// Misses consult the on-disk store (when configured) and otherwise invoke
// compile; concurrent callers with the same key wait for one resolution.
// The returned artifact is shared and must be treated as read-only — use
// compiler.Compile directly for artifacts that will be annotated/mutated.
func (c *Cache) GetOrCompile(key string, k *ir.Kernel, compile func() (*compiler.Compiled, error)) (*compiler.Compiled, error) {
	first := true
	for {
		c.mu.Lock()
		if first {
			// Count each external call once — a caller that waited out an
			// in-flight compile re-enters the loop but is still one request,
			// keeping the counters scheduling-independent.
			c.stats.Requests++
			first = false
		}
		if el, ok := c.byKey[key]; ok {
			e := el.Value.(*entry)
			if e.c.Kernel == k {
				c.ll.MoveToFront(el)
				c.stats.MemHits++
				c.mu.Unlock()
				return e.c, nil
			}
			// Same content, different kernel instance (e.g. a new matrix
			// build): re-bind region lookup to the caller's loop pointers
			// and store the re-bound artifact as the canonical entry.
			bound, err := Bind(e.c, k)
			if err == nil {
				e.c = bound
				c.ll.MoveToFront(el)
				c.stats.MemHits++
				c.stats.Rebinds++
				c.mu.Unlock()
				return bound, nil
			}
			// Structural mismatch: the key lied (or the kernel changed
			// under the same name). Drop the entry and fall through to a
			// fresh compile.
			c.ll.Remove(el)
			delete(c.byKey, key)
			c.stats.Errors++
		}
		if f, ok := c.flight[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			// Loop: the artifact is now in the LRU (possibly needing a
			// re-bind for this caller's kernel).
			continue
		}
		f := &flight{done: make(chan struct{})}
		c.flight[key] = f
		c.mu.Unlock()

		f.c, f.err = c.resolve(key, k, compile)

		c.mu.Lock()
		delete(c.flight, key)
		if f.err == nil {
			c.insert(key, f.c)
		}
		c.mu.Unlock()
		close(f.done)
		return f.c, f.err
	}
}

// resolve loads key from disk or compiles it. Runs outside the cache lock.
func (c *Cache) resolve(key string, k *ir.Kernel, compile func() (*compiler.Compiled, error)) (*compiler.Compiled, error) {
	if c.dir != "" {
		if compiled, err := c.loadDisk(key, k); err == nil {
			c.mu.Lock()
			c.stats.DiskHits++
			c.mu.Unlock()
			return compiled, nil
		} else if !os.IsNotExist(err) {
			// Corrupt or unreadable entry: recompile and overwrite.
			c.mu.Lock()
			c.stats.Errors++
			c.mu.Unlock()
		}
	}
	compiled, err := compile()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Compiles++
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort: a failed disk write leaves a working memory entry.
		_ = c.storeDisk(key, compiled)
	}
	return compiled, nil
}

// insert adds the artifact under key, evicting the LRU tail past capacity.
// Caller holds c.mu.
func (c *Cache) insert(key string, compiled *compiler.Compiled) {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*entry).c = compiled
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&entry{key: key, c: compiled})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byKey, tail.Value.(*entry).key)
		c.stats.Evicted++
	}
}

// path returns the disk file for key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".artifact.gob")
}

// envelope is the on-disk representation. Region loop pointers are elided
// (they are positional: region i belongs to the i-th innermost loop) and
// re-established by Bind at load time.
type envelope struct {
	Version int
	Key     string
	Regions []*core.Region
	Infos   []savedInfo
}

type savedInfo struct {
	Graph *dfg.Graph
	Insts int
	Why   string
}

// storeDisk writes the artifact atomically (temp + rename).
func (c *Cache) storeDisk(key string, compiled *compiler.Compiled) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	env := &envelope{Version: FormatVersion, Key: key}
	for i, r := range compiled.Regions {
		// Shallow-copy to drop the loop pointer: it is process-local and
		// re-derived positionally on load.
		cp := *r
		cp.Loop = nil
		env.Regions = append(env.Regions, &cp)
		info := compiled.Infos[i]
		env.Infos = append(env.Infos, savedInfo{Graph: info.Graph, Insts: info.Insts, Why: info.Why})
	}
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(env); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// loadDisk reads, validates and binds the artifact stored under key.
func (c *Cache) loadDisk(key string, k *ir.Kernel) (*compiler.Compiled, error) {
	f, err := os.Open(c.path(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var env envelope
	if err := gob.NewDecoder(f).Decode(&env); err != nil {
		return nil, fmt.Errorf("artifact: decode %s: %w", c.path(key), err)
	}
	if env.Version != FormatVersion || env.Key != key {
		return nil, fmt.Errorf("artifact: %s: stale entry (version %d, key %.12s…)", c.path(key), env.Version, env.Key)
	}
	if len(env.Infos) != len(env.Regions) {
		return nil, fmt.Errorf("artifact: %s: %d infos for %d regions", c.path(key), len(env.Infos), len(env.Regions))
	}
	compiled := &compiler.Compiled{Regions: env.Regions}
	for i, si := range env.Infos {
		compiled.Infos = append(compiled.Infos, &compiler.RegionInfo{
			Region: env.Regions[i], Graph: si.Graph, Insts: si.Insts, Why: si.Why,
		})
	}
	bound, err := Bind(compiled, k)
	if err != nil {
		return nil, err
	}
	for _, r := range bound.Regions {
		if r.Class != core.ClassNotOffloaded && len(r.Accels) > 0 {
			if err := r.Validate(); err != nil {
				return nil, fmt.Errorf("artifact: %s: %w", c.path(key), err)
			}
		}
	}
	return bound, nil
}

// Bind re-targets a compiled artifact at kernel k: regions are matched to
// k's innermost loops by position (the compiler emits exactly one region
// per innermost loop, in traversal order) and the loop-pointer index used
// by the simulator is rebuilt. The input artifact is not mutated; regions
// are shallow-copied with fresh Loop pointers, while accelerator
// definitions (read-only at run time) stay shared. Bind fails when k's
// loop structure does not match the artifact — the caller should then
// treat the lookup as a miss and recompile.
func Bind(compiled *compiler.Compiled, k *ir.Kernel) (*compiler.Compiled, error) {
	loops := ir.InnermostLoops(k.Body)
	if len(loops) != len(compiled.Regions) {
		return nil, fmt.Errorf("artifact: kernel %q has %d innermost loops, artifact has %d regions",
			k.Name, len(loops), len(compiled.Regions))
	}
	out := &compiler.Compiled{Kernel: k, ByLoop: map[*ir.For]*core.Region{}}
	for i, r := range compiled.Regions {
		cp := *r
		cp.Loop = loops[i]
		out.Regions = append(out.Regions, &cp)
		out.ByLoop[loops[i]] = &cp
		info := *compiled.Infos[i]
		info.Region = &cp
		out.Infos = append(out.Infos, &info)
	}
	return out, nil
}
