package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"distda/internal/compiler"
	"distda/internal/ir"
	"distda/internal/workloads"
)

func testKernel(t *testing.T) (*ir.Kernel, *workloads.Workload) {
	t.Helper()
	w, err := workloads.ByName("fdtd-2d", workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	return w.Kernel, w
}

func TestKeyDeterministicAndSensitive(t *testing.T) {
	k, _ := testKernel(t)
	opts := compiler.Options{Mode: compiler.ModeDist}
	a := Key("fdtd-2d", "test", k, opts)
	b := Key("fdtd-2d", "test", k, opts)
	if a != b {
		t.Fatalf("key not deterministic: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
	distinct := map[string]string{
		"scale":    Key("fdtd-2d", "bench", k, opts),
		"workload": Key("other", "test", k, opts),
		"mode":     Key("fdtd-2d", "test", k, compiler.Options{Mode: compiler.ModeMono}),
		"flag":     Key("fdtd-2d", "test", k, compiler.Options{Mode: compiler.ModeDist, NoStreamSpecialization: true}),
	}
	seen := map[string]string{a: "base"}
	for dim, key := range distinct {
		if prev, dup := seen[key]; dup {
			t.Errorf("key collision between %s and %s", dim, prev)
		}
		seen[key] = dim
	}
}

func TestMemoryHitSharesArtifact(t *testing.T) {
	k, _ := testKernel(t)
	c := New(Config{})
	opts := compiler.Options{Mode: compiler.ModeDist}
	key := Key("fdtd-2d", "test", k, opts)
	compiles := 0
	compile := func() (*compiler.Compiled, error) {
		compiles++
		return compiler.Compile(k, opts)
	}
	first, err := c.GetOrCompile(key, k, compile)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.GetOrCompile(key, k, compile)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("memory hit returned a different artifact pointer")
	}
	if compiles != 1 {
		t.Errorf("compiled %d times, want 1", compiles)
	}
	st := c.Stats()
	if st.Requests != 2 || st.MemHits != 1 || st.Compiles != 1 {
		t.Errorf("stats = %+v, want 2 requests / 1 mem hit / 1 compile", st)
	}
}

func TestSingleFlightConcurrentRequests(t *testing.T) {
	k, _ := testKernel(t)
	c := New(Config{})
	opts := compiler.Options{Mode: compiler.ModeDist}
	key := Key("fdtd-2d", "test", k, opts)
	var mu sync.Mutex
	compiles := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.GetOrCompile(key, k, func() (*compiler.Compiled, error) {
				mu.Lock()
				compiles++
				mu.Unlock()
				return compiler.Compile(k, opts)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if compiles != 1 {
		t.Errorf("raced %d compilations, want 1 (single-flight)", compiles)
	}
}

// TestDiskRoundTripBindsToFreshKernel is the cross-process reuse property:
// an artifact stored by one cache instance is decoded by another, re-bound
// to a *different* kernel instance of the same workload, and drives region
// lookup (ByLoop) for that kernel's loops — with zero recompiles.
func TestDiskRoundTripBindsToFreshKernel(t *testing.T) {
	dir := t.TempDir()
	k1, _ := testKernel(t)
	opts := compiler.Options{Mode: compiler.ModeDist}
	key := Key("fdtd-2d", "test", k1, opts)

	warm := New(Config{Dir: dir})
	orig, err := warm.GetOrCompile(key, k1, func() (*compiler.Compiled, error) { return compiler.Compile(k1, opts) })
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats().Compiles != 1 {
		t.Fatalf("warm stats = %+v", warm.Stats())
	}

	// A second process: fresh cache over the same dir, fresh kernel object.
	k2, _ := testKernel(t)
	if k2 == k1 {
		t.Fatal("test needs distinct kernel instances")
	}
	cold := New(Config{Dir: dir})
	loaded, err := cold.GetOrCompile(key, k2, func() (*compiler.Compiled, error) {
		t.Fatal("disk hit must not recompile")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.DiskHits != 1 || st.Compiles != 0 {
		t.Errorf("cold stats = %+v, want 1 disk hit / 0 compiles", st)
	}
	if loaded.Kernel != k2 {
		t.Error("loaded artifact not bound to the caller's kernel")
	}
	loops := ir.InnermostLoops(k2.Body)
	if len(loaded.Regions) != len(orig.Regions) {
		t.Fatalf("regions: got %d, want %d", len(loaded.Regions), len(orig.Regions))
	}
	offloaded := 0
	for i, loop := range loops {
		reg, ok := loaded.ByLoop[loop]
		if !ok {
			t.Fatalf("loop %d not indexed in loaded artifact", i)
		}
		if reg.Class != orig.Regions[i].Class {
			t.Errorf("region %d class %v, want %v", i, reg.Class, orig.Regions[i].Class)
		}
		if len(reg.Accels) > 0 {
			offloaded++
			if !reflect.DeepEqual(reg.Accels, orig.Regions[i].Accels) {
				t.Errorf("region %d accel definitions diverge after round trip", i)
			}
		}
	}
	if offloaded == 0 {
		t.Error("round-tripped artifact has no offloaded regions")
	}
	for i, info := range loaded.Infos {
		if info.Insts != orig.Infos[i].Insts {
			t.Errorf("info %d insts %d, want %d", i, info.Insts, orig.Infos[i].Insts)
		}
	}
}

func TestCorruptDiskEntryFallsBackToCompile(t *testing.T) {
	dir := t.TempDir()
	k, _ := testKernel(t)
	opts := compiler.Options{Mode: compiler.ModeDist}
	key := Key("fdtd-2d", "test", k, opts)
	if err := os.WriteFile(filepath.Join(dir, key+".artifact.gob"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir})
	if _, err := c.GetOrCompile(key, k, func() (*compiler.Compiled, error) { return compiler.Compile(k, opts) }); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Compiles != 1 || st.Errors != 1 {
		t.Errorf("stats = %+v, want 1 compile / 1 error", st)
	}
	// The corrupt entry was overwritten: a fresh cache now disk-hits.
	c2 := New(Config{Dir: dir})
	if _, err := c2.GetOrCompile(key, k, func() (*compiler.Compiled, error) {
		t.Fatal("repaired entry must not recompile")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	k, _ := testKernel(t)
	mk := func(mode compiler.Mode, nostream bool) string {
		opts := compiler.Options{Mode: mode, NoStreamSpecialization: nostream}
		key := Key("fdtd-2d", "test", k, opts)
		if _, err := c.GetOrCompile(key, k, func() (*compiler.Compiled, error) { return compiler.Compile(k, opts) }); err != nil {
			t.Fatal(err)
		}
		return key
	}
	mk(compiler.ModeDist, false)
	mk(compiler.ModeMono, false)
	mk(compiler.ModeDist, true) // evicts the first
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if st := c.Stats(); st.Evicted != 1 {
		t.Errorf("stats = %+v, want 1 eviction", st)
	}
}
