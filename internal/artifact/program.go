package artifact

// Compiled kernel programs (the flat bytecode the ir VM executes) ride the
// same content-addressed store as offload artifacts: deterministic key,
// in-memory LRU → on-disk gob → compile, single-flight on misses. A
// program is fully determined by the kernel text, so the experiment
// matrix compiles each workload's bytecode once and shares it across
// cells, workers, runs, and processes.

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"distda/internal/ir"
)

// ProgramFormatVersion is bumped whenever the program key derivation, the
// bytecode encoding (ir.Op / opcode numbering), or the on-disk envelope
// changes; old entries then simply miss.
const ProgramFormatVersion = 1

// ProgramKey returns the content address of the bytecode program compiled
// from kernel k (from the named workload at the named scale). The hash
// covers the formatted kernel text; equal keys imply byte-equivalent
// programs.
func ProgramKey(workload, scale string, k *ir.Kernel) string {
	h := sha256.New()
	fmt.Fprintf(h, "distda-program-v%d\nworkload=%s\nscale=%s\n", ProgramFormatVersion, workload, scale)
	fmt.Fprintf(h, "kernel:\n%s", ir.Format(k))
	return hex.EncodeToString(h.Sum(nil))
}

// ProgramStats are the program side's cumulative counters, deterministic
// for a deterministic request sequence like Stats.
type ProgramStats struct {
	Requests int64 // GetOrProgram calls
	MemHits  int64 // served from the in-memory LRU
	DiskHits int64 // decoded from the on-disk store
	Compiles int64 // compiled from scratch
	Rebinds  int64 // re-bound to a new kernel instance
	Evicted  int64 // LRU evictions (capacity pressure)
	Errors   int64 // failed disk loads / stale entries that fell back to compiling
}

type progEntry struct {
	key string
	p   *ir.Program
}

type progFlight struct {
	done chan struct{}
	p    *ir.Program
	err  error
}

// ProgramStats returns a snapshot of the program-cache counters.
func (c *Cache) ProgramStats() ProgramStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.progStats
}

// GetOrProgram returns the bytecode program stored under key, bound to
// kernel k. Misses consult the on-disk store (when configured) and
// otherwise compile; concurrent callers with the same key wait for one
// resolution. The returned program is shared, immutable, and safe for
// concurrent Run calls.
func (c *Cache) GetOrProgram(key string, k *ir.Kernel) (*ir.Program, error) {
	first := true
	for {
		c.mu.Lock()
		if first {
			c.progStats.Requests++
			first = false
		}
		if el, ok := c.progByKey[key]; ok {
			e := el.Value.(*progEntry)
			if e.p.Kernel() == k {
				c.progLL.MoveToFront(el)
				c.progStats.MemHits++
				c.mu.Unlock()
				return e.p, nil
			}
			// Same content, different kernel instance: re-bind the loop
			// table to the caller's pointers (counts attribution is by
			// *For identity) and keep the re-bound program as canonical.
			bound, err := e.p.Rebind(k)
			if err == nil {
				e.p = bound
				c.progLL.MoveToFront(el)
				c.progStats.MemHits++
				c.progStats.Rebinds++
				c.mu.Unlock()
				return bound, nil
			}
			c.progLL.Remove(el)
			delete(c.progByKey, key)
			c.progStats.Errors++
		}
		if f, ok := c.progFlight[key]; ok {
			c.mu.Unlock()
			<-f.done
			if f.err != nil {
				return nil, f.err
			}
			continue
		}
		f := &progFlight{done: make(chan struct{})}
		c.progFlight[key] = f
		c.mu.Unlock()

		f.p, f.err = c.resolveProgram(key, k)

		c.mu.Lock()
		delete(c.progFlight, key)
		if f.err == nil {
			c.insertProgram(key, f.p)
		}
		c.mu.Unlock()
		close(f.done)
		return f.p, f.err
	}
}

// resolveProgram loads key from disk or compiles it. Runs outside the lock.
func (c *Cache) resolveProgram(key string, k *ir.Kernel) (*ir.Program, error) {
	if c.dir != "" {
		if p, err := c.loadDiskProgram(key, k); err == nil {
			c.mu.Lock()
			c.progStats.DiskHits++
			c.mu.Unlock()
			return p, nil
		} else if !os.IsNotExist(err) {
			c.mu.Lock()
			c.progStats.Errors++
			c.mu.Unlock()
		}
	}
	p, err := ir.NewProgram(k)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.progStats.Compiles++
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort: a failed disk write leaves a working memory entry.
		_ = c.storeDiskProgram(key, p)
	}
	return p, nil
}

// insertProgram adds the program under key, evicting past capacity.
// Caller holds c.mu.
func (c *Cache) insertProgram(key string, p *ir.Program) {
	if el, ok := c.progByKey[key]; ok {
		el.Value.(*progEntry).p = p
		c.progLL.MoveToFront(el)
		return
	}
	c.progByKey[key] = c.progLL.PushFront(&progEntry{key: key, p: p})
	for c.progLL.Len() > c.max {
		tail := c.progLL.Back()
		c.progLL.Remove(tail)
		delete(c.progByKey, tail.Value.(*progEntry).key)
		c.progStats.Evicted++
	}
}

// progEnvelope is the on-disk representation: the position-independent
// program image; loop pointers are re-established by ProgramFromImage.
type progEnvelope struct {
	Version int
	Key     string
	Image   ir.Image
}

func (c *Cache) progPath(key string) string {
	return filepath.Join(c.dir, key+".program.gob")
}

// storeDiskProgram writes the program image atomically (temp + rename).
func (c *Cache) storeDiskProgram(key string, p *ir.Program) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	env := &progEnvelope{Version: ProgramFormatVersion, Key: key, Image: p.Image()}
	tmp, err := os.CreateTemp(c.dir, "."+key+".ptmp-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(env); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.progPath(key))
}

// loadDiskProgram reads, validates and binds the program stored under key.
func (c *Cache) loadDiskProgram(key string, k *ir.Kernel) (*ir.Program, error) {
	f, err := os.Open(c.progPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var env progEnvelope
	if err := gob.NewDecoder(f).Decode(&env); err != nil {
		return nil, fmt.Errorf("artifact: decode %s: %w", c.progPath(key), err)
	}
	if env.Version != ProgramFormatVersion || env.Key != key {
		return nil, fmt.Errorf("artifact: %s: stale program entry (version %d, key %.12s…)",
			c.progPath(key), env.Version, env.Key)
	}
	return ir.ProgramFromImage(env.Image, k)
}
