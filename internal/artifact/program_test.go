package artifact

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"distda/internal/compiler"
	"distda/internal/ir"
	"distda/internal/workloads"
)

func TestProgramKeyDeterministicAndSensitive(t *testing.T) {
	k, _ := testKernel(t)
	a := ProgramKey("fdtd-2d", "test", k)
	if a != ProgramKey("fdtd-2d", "test", k) {
		t.Fatal("program key not deterministic")
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", a)
	}
	if a == ProgramKey("fdtd-2d", "bench", k) || a == ProgramKey("other", "test", k) {
		t.Fatal("program key insensitive to workload/scale")
	}
	if a == Key("fdtd-2d", "test", k, compiler.Options{}) {
		t.Fatal("program key collides with artifact key namespace")
	}
}

func TestProgramMemoryHitShares(t *testing.T) {
	k, _ := testKernel(t)
	c := New(Config{})
	key := ProgramKey("fdtd-2d", "test", k)
	p1, err := c.GetOrProgram(key, k)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := c.GetOrProgram(key, k)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("second lookup did not share the cached program")
	}
	st := c.ProgramStats()
	if st.Requests != 2 || st.MemHits != 1 || st.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProgramRebindOnNewKernelInstance(t *testing.T) {
	c := New(Config{})
	w1, _ := workloads.ByName("fdtd-2d", workloads.ScaleTest)
	w2, _ := workloads.ByName("fdtd-2d", workloads.ScaleTest) // fresh kernel pointers
	key := ProgramKey("fdtd-2d", "test", w1.Kernel)
	if key != ProgramKey("fdtd-2d", "test", w2.Kernel) {
		t.Fatal("identical kernels hashed differently")
	}
	if _, err := c.GetOrProgram(key, w1.Kernel); err != nil {
		t.Fatal(err)
	}
	p2, err := c.GetOrProgram(key, w2.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Kernel() != w2.Kernel {
		t.Fatal("rebind did not target the caller's kernel")
	}
	st := c.ProgramStats()
	if st.Rebinds != 1 || st.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Rebound programs must still match the interpreter.
	data := w2.NewData()
	dataI := map[string][]float64{}
	for name, buf := range data {
		cp := make([]float64, len(buf))
		copy(cp, buf)
		dataI[name] = cp
	}
	want, errI := ir.Run(w2.Kernel, w2.Params, dataI, nil)
	got, errV := p2.Run(w2.Params, data, nil)
	if errI != nil || errV != nil {
		t.Fatalf("errI=%v errV=%v", errI, errV)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("rebound program counts diverge from interpreter")
	}
}

func TestProgramDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w1, _ := workloads.ByName("pathfinder", workloads.ScaleTest)
	key := ProgramKey("pathfinder", "test", w1.Kernel)

	c1 := New(Config{Dir: dir})
	if _, err := c1.GetOrProgram(key, w1.Kernel); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".program.gob")); err != nil {
		t.Fatalf("program not persisted: %v", err)
	}

	// A second cache (fresh process) loads from disk without compiling.
	c2 := New(Config{Dir: dir})
	w2, _ := workloads.ByName("pathfinder", workloads.ScaleTest)
	p, err := c2.GetOrProgram(key, w2.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.ProgramStats()
	if st.DiskHits != 1 || st.Compiles != 0 {
		t.Fatalf("stats: %+v", st)
	}
	want, errI := ir.Run(w2.Kernel, w2.Params, w2.NewData(), nil)
	got, errV := p.Run(w2.Params, w2.NewData(), nil)
	if errI != nil || errV != nil {
		t.Fatalf("errI=%v errV=%v", errI, errV)
	}
	if want.Ops != got.Ops || want.Loads != got.Loads || want.Stores != got.Stores {
		t.Fatal("disk-loaded program diverges from interpreter")
	}
}

func TestProgramCorruptDiskEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	k, _ := testKernel(t)
	key := ProgramKey("fdtd-2d", "test", k)
	if err := os.WriteFile(filepath.Join(dir, key+".program.gob"), []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir})
	if _, err := c.GetOrProgram(key, k); err != nil {
		t.Fatal(err)
	}
	st := c.ProgramStats()
	if st.Errors != 1 || st.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestProgramSingleFlight(t *testing.T) {
	k, _ := testKernel(t)
	c := New(Config{})
	key := ProgramKey("fdtd-2d", "test", k)
	const callers = 16
	var wg sync.WaitGroup
	progs := make([]*ir.Program, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.GetOrProgram(key, k)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if progs[i] != progs[0] {
			t.Fatal("racing callers got distinct programs")
		}
	}
	if st := c.ProgramStats(); st.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}
}
