package artifact

// Serving-layer result envelopes ride the same content-addressed store as
// offload artifacts and bytecode programs: deterministic SHA-256 key,
// in-memory LRU → on-disk gob, atomic writes. A result envelope is the
// rendered output of a fully specified experiment job (workload × config ×
// scale, selection, kernel text, inputs), so the distda-serve job server
// can return an identical re-submission instantly — across requests,
// tenants, server restarts, and (through a shared cache directory)
// machines — without recomputing the simulation.

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ResultFormatVersion is bumped whenever the result key derivation or the
// on-disk envelope changes; old entries then simply miss.
const ResultFormatVersion = 1

// ResultKey returns the content address of a result envelope derived from
// the given identity parts (job kind, scale, configuration, kernel text,
// input digests, ... — everything that determines the result bytes). Parts
// are length-prefixed, so distinct part lists never collide by
// concatenation.
func ResultKey(parts ...string) string {
	h := sha256.New()
	fmt.Fprintf(h, "distda-result-v%d\n", ResultFormatVersion)
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ResultEnvelope is a cached job result: the rendered output bytes plus
// free-form metadata (job kind, workload, timings, ...). Envelopes are
// immutable once stored; callers must not mutate Body or Meta.
type ResultEnvelope struct {
	Version int
	Key     string
	Meta    map[string]string
	Body    []byte
}

// ResultStats are the result side's cumulative counters.
type ResultStats struct {
	Requests int64 // GetResult calls
	MemHits  int64 // served from the in-memory LRU
	DiskHits int64 // decoded from the on-disk store
	Misses   int64 // not found anywhere
	Stores   int64 // PutResult calls that inserted a new envelope
	Evicted  int64 // LRU evictions (capacity pressure)
	Errors   int64 // failed disk loads / stale entries treated as misses
}

type resultEntry struct {
	key string
	e   *ResultEnvelope
}

// ResultStats returns a snapshot of the result-cache counters.
func (c *Cache) ResultStats() ResultStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resultStats
}

// GetResult returns the result envelope stored under key, or false on a
// miss. Misses consult the on-disk store when configured. The returned
// envelope is shared and must be treated as read-only.
func (c *Cache) GetResult(key string) (*ResultEnvelope, bool) {
	c.mu.Lock()
	c.resultStats.Requests++
	if el, ok := c.resultByKey[key]; ok {
		c.resultLL.MoveToFront(el)
		c.resultStats.MemHits++
		env := el.Value.(*resultEntry).e
		c.mu.Unlock()
		return env, true
	}
	c.mu.Unlock()

	if c.dir != "" {
		env, err := c.loadDiskResult(key)
		if err == nil {
			c.mu.Lock()
			c.resultStats.DiskHits++
			c.insertResult(key, env)
			c.mu.Unlock()
			return env, true
		}
		if !os.IsNotExist(err) {
			c.mu.Lock()
			c.resultStats.Errors++
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.resultStats.Misses++
	c.mu.Unlock()
	return nil, false
}

// PutResult stores the rendered result bytes (and metadata) under key, both
// in memory and — when the cache is disk-backed — on disk (atomically:
// temp file + rename). body and meta are copied; the caller keeps
// ownership of its slices and map.
func (c *Cache) PutResult(key string, meta map[string]string, body []byte) error {
	env := &ResultEnvelope{Version: ResultFormatVersion, Key: key, Body: append([]byte(nil), body...)}
	if len(meta) > 0 {
		env.Meta = make(map[string]string, len(meta))
		for k, v := range meta {
			env.Meta[k] = v
		}
	}
	c.mu.Lock()
	c.resultStats.Stores++
	c.insertResult(key, env)
	c.mu.Unlock()
	if c.dir != "" {
		// Best-effort: a failed disk write leaves a working memory entry.
		if err := c.storeDiskResult(key, env); err != nil {
			c.mu.Lock()
			c.resultStats.Errors++
			c.mu.Unlock()
			return err
		}
	}
	return nil
}

// insertResult adds the envelope under key, evicting past capacity.
// Caller holds c.mu.
func (c *Cache) insertResult(key string, env *ResultEnvelope) {
	if el, ok := c.resultByKey[key]; ok {
		el.Value.(*resultEntry).e = env
		c.resultLL.MoveToFront(el)
		return
	}
	c.resultByKey[key] = c.resultLL.PushFront(&resultEntry{key: key, e: env})
	for c.resultLL.Len() > c.max {
		tail := c.resultLL.Back()
		c.resultLL.Remove(tail)
		delete(c.resultByKey, tail.Value.(*resultEntry).key)
		c.resultStats.Evicted++
	}
}

// resultPath returns the disk file for key.
func (c *Cache) resultPath(key string) string {
	return filepath.Join(c.dir, key+".result.gob")
}

// storeDiskResult writes the envelope atomically (temp + rename).
func (c *Cache) storeDiskResult(key string, env *ResultEnvelope) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	// Gob encodes maps in randomized order; encode the meta as sorted
	// key/value pairs so the on-disk bytes are deterministic for a
	// deterministic envelope (content-addressed stores should not churn).
	disk := diskResult{Version: env.Version, Key: env.Key, Body: env.Body}
	keys := make([]string, 0, len(env.Meta))
	for k := range env.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		disk.Meta = append(disk.Meta, [2]string{k, env.Meta[k]})
	}
	tmp, err := os.CreateTemp(c.dir, "."+key+".tmp-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(&disk); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.resultPath(key))
}

// diskResult is the on-disk envelope encoding (deterministic meta order).
type diskResult struct {
	Version int
	Key     string
	Meta    [][2]string
	Body    []byte
}

// loadDiskResult reads and validates the envelope stored under key.
func (c *Cache) loadDiskResult(key string) (*ResultEnvelope, error) {
	f, err := os.Open(c.resultPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var disk diskResult
	if err := gob.NewDecoder(f).Decode(&disk); err != nil {
		return nil, fmt.Errorf("artifact: decode %s: %w", c.resultPath(key), err)
	}
	if disk.Version != ResultFormatVersion || disk.Key != key {
		return nil, fmt.Errorf("artifact: %s: stale result entry (version %d, key %.12s…)", c.resultPath(key), disk.Version, disk.Key)
	}
	env := &ResultEnvelope{Version: disk.Version, Key: disk.Key, Body: disk.Body}
	if len(disk.Meta) > 0 {
		env.Meta = make(map[string]string, len(disk.Meta))
		for _, kv := range disk.Meta {
			env.Meta[kv[0]] = kv[1]
		}
	}
	return env, nil
}
