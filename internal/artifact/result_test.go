package artifact

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestResultKeyDeterministicAndDelimited(t *testing.T) {
	a := ResultKey("run", "fdtd-2d", "Dist-DA-F")
	b := ResultKey("run", "fdtd-2d", "Dist-DA-F")
	if a != b {
		t.Fatalf("same parts, different keys: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(a))
	}
	// Length-prefixing must keep adjacent parts from bleeding into each
	// other: ("ab","c") and ("a","bc") concatenate identically.
	if ResultKey("ab", "c") == ResultKey("a", "bc") {
		t.Error("part boundaries not delimited")
	}
	if ResultKey("x") == ResultKey("x", "") {
		t.Error("empty trailing part not distinguished")
	}
}

func TestResultStoreMemoryRoundTrip(t *testing.T) {
	c := New(Config{})
	key := ResultKey("run", "a")
	if _, ok := c.GetResult(key); ok {
		t.Fatal("hit on empty cache")
	}
	body := []byte("workload fdtd-2d\ncycles 42\n")
	if err := c.PutResult(key, map[string]string{"kind": "run"}, body); err != nil {
		t.Fatal(err)
	}
	env, ok := c.GetResult(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(env.Body, body) || env.Meta["kind"] != "run" {
		t.Fatalf("envelope = %+v", env)
	}
	// The stored body is a copy: mutating the caller's slice must not
	// reach the envelope.
	body[0] = 'X'
	env2, _ := c.GetResult(key)
	if env2.Body[0] == 'X' {
		t.Error("PutResult aliased the caller's body slice")
	}
	st := c.ResultStats()
	if st.Requests != 3 || st.MemHits != 2 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestResultStoreDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := ResultKey("matrix", "test", "figs=7")
	body := []byte("Fig. 7 table bytes")

	c1 := New(Config{Dir: dir})
	if err := c1.PutResult(key, map[string]string{"b": "2", "a": "1"}, body); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, key+".result.gob")); err != nil {
		t.Fatalf("result file not written: %v", err)
	}

	// A fresh cache (new process) serves the envelope from disk.
	c2 := New(Config{Dir: dir})
	env, ok := c2.GetResult(key)
	if !ok {
		t.Fatal("disk miss in fresh cache")
	}
	if !bytes.Equal(env.Body, body) || env.Meta["a"] != "1" || env.Meta["b"] != "2" {
		t.Fatalf("envelope = %+v", env)
	}
	st := c2.ResultStats()
	if st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}
	// Promoted to memory: the second Get is a mem hit.
	if _, ok := c2.GetResult(key); !ok {
		t.Fatal("miss after disk promotion")
	}
	if st := c2.ResultStats(); st.MemHits != 1 {
		t.Errorf("stats = %+v, want 1 mem hit", st)
	}
}

func TestResultStoreCorruptDiskEntryMisses(t *testing.T) {
	dir := t.TempDir()
	key := ResultKey("run", "x")
	path := filepath.Join(dir, key+".result.gob")
	if err := os.WriteFile(path, []byte("not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{Dir: dir})
	if _, ok := c.GetResult(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	st := c.ResultStats()
	if st.Errors != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 error and 1 miss", st)
	}
	// Overwriting repairs the entry.
	if err := c.PutResult(key, nil, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	c2 := New(Config{Dir: dir})
	if env, ok := c2.GetResult(key); !ok || string(env.Body) != "fresh" {
		t.Fatalf("repair failed: %v %v", env, ok)
	}
}

func TestResultStoreLRUEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	k1, k2, k3 := ResultKey("1"), ResultKey("2"), ResultKey("3")
	for _, k := range []string{k1, k2, k3} {
		if err := c.PutResult(k, nil, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := c.GetResult(k1); ok {
		t.Error("LRU tail survived eviction")
	}
	if _, ok := c.GetResult(k3); !ok {
		t.Error("most recent entry evicted")
	}
	if st := c.ResultStats(); st.Evicted != 1 {
		t.Errorf("stats = %+v, want 1 eviction", st)
	}
}
