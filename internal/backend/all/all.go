// Package all links every in-tree accelerator backend into the registry.
// Importing it (blank) is how the simulator and CLIs get the full set:
//
//	import _ "distda/internal/backend/all"
package all

import (
	_ "distda/internal/backend/cgrabackend"
	_ "distda/internal/backend/iocorebackend"
	_ "distda/internal/pimdram"
)
