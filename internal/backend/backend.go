// Package backend formalizes the paper's accelerator-agnostic offload
// interface as a pluggable contract. An accelerator backend consumes
// decoupled request/response channels — the access-unit buffers with their
// valid/ready handshake (CanPop/Pop, CanPush/Push, Close) — plus a random
// access port and a scalar register file, and turns one compiled
// accelerator definition into a clocked engine component. The simulator
// assembly (internal/sim) talks only to this interface; the in-order core
// (iocore), the CGRA fabric (cgra) and the PIM-in-DRAM engine (pimdram)
// are registered implementations behind it.
package backend

import (
	"fmt"
	"sort"
	"strings"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/profile"
	"distda/internal/trace"
)

// Caps is a backend's capability descriptor, consulted for placement and
// compilation decisions instead of backend-name switches.
type Caps struct {
	// MaxPortWidth is the widest request port (micro-ops issued per cycle)
	// the backend accepts; LaunchSpec.Width beyond it is rejected.
	MaxPortWidth int
	// NearData: engines execute at the NUCA cluster owning their data
	// (the paper's near-L3 placement).
	NearData bool
	// InDRAM: engines execute at the DRAM channel (the memory-controller
	// node); resident data never traverses the on-chip NoC.
	InDRAM bool
	// RandomAccess: the backend serves cp_read/cp_write random accesses.
	RandomAccess bool
}

// Options is backend-scoped configuration: an ordered key=value list. It
// replaces backend-specific fields in the top-level sim config (the CGRA
// grid shape, for example, is Opt("grid", "5x5")). The canonical String
// form feeds config names and content-addressed cache keys, so options
// must stay deterministic value types.
type Options []Option

// Option is one backend-scoped key=value setting.
type Option struct {
	Key   string
	Value string
}

// Opt builds a single backend option.
func Opt(key, value string) Option { return Option{Key: key, Value: value} }

// Get returns the last value set for key.
func (o Options) Get(key string) (string, bool) {
	for i := len(o) - 1; i >= 0; i-- {
		if o[i].Key == key {
			return o[i].Value, true
		}
	}
	return "", false
}

// String renders the canonical "k=v,k=v" form, keys sorted, later
// duplicates winning.
func (o Options) String() string {
	m := map[string]string{}
	for _, kv := range o {
		m[kv.Key] = kv.Value
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%s", k, m[k])
	}
	return b.String()
}

// LaunchSpec carries everything a backend needs to instantiate one engine
// for one accelerator definition of an offload launch. The ports embody
// the valid/ready protocol: an engine may consume only when CanPop reports
// valid data, produce only when CanPush reports a ready slot, and must
// Close its output buffers on completion.
type LaunchSpec struct {
	Def   *core.AccelDef
	Trips int64 // orchestrator count; < 0 selects while-input

	// In / Out are the request/response stream endpoints by access id.
	In  map[int]*accessunit.InPort
	Out map[int]*accessunit.OutPort
	// Random serves cp_read / cp_write accesses (nil when the program has
	// none).
	Random *accessunit.RandomPort

	GHz   int // engine clock in GHz (engine.Div derives the base divisor)
	Width int // request port width: micro-ops issued per engine cycle

	Meter   *energy.Meter  // energy accounting (may be nil)
	Metrics *trace.Metrics // latency histograms (nil-safe handle)
	Opts    Options        // backend-scoped configuration
}

// Engine is one running accelerator instance: a clocked component with the
// engine scheduler's Step/Done/NextEvent contract plus the scalar register
// file (cp_set_rf / cp_load_rf) and observability attachment points. The
// Attach/Add methods are observational only — results must be bit-identical
// with or without them.
type Engine interface {
	Step(now int64) bool
	Done() bool
	// NextEvent is the engine scheduler's fast-forward hint
	// (engine.Hinter); backends that cannot predict return 0 to be polled.
	NextEvent(now int64) int64

	SetReg(r int, v float64)
	Reg(r int) float64

	// Ops returns retired micro-operations (the accelerator dynamic
	// instruction count).
	Ops() int64

	// AttachTrace binds the engine's trace scope at the launch's base-cycle
	// offset on the run-global timeline.
	AttachTrace(tr *trace.Tracer, off int64)
	// AddProfile folds the engine's cycle/energy attribution into the
	// profiler and the launch's region after the run.
	AddProfile(p *profile.Profiler, r *profile.Region)
}

// Backend turns compiled accelerator definitions into engines.
type Backend interface {
	// Name is the registry key ("iocore", "cgra", "pimdram", ...).
	Name() string
	Caps() Caps
	// ValidateOptions rejects unknown or malformed backend-scoped options
	// at config construction time.
	ValidateOptions(opts Options) error
	// NewEngine instantiates one engine for one accelerator definition.
	NewEngine(spec LaunchSpec) (Engine, error)
}
