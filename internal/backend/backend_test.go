package backend

import "testing"

func TestOptionsGetLastWins(t *testing.T) {
	o := Options{Opt("grid", "5x5"), Opt("grid", "8x8")}
	v, ok := o.Get("grid")
	if !ok || v != "8x8" {
		t.Fatalf("Get(grid) = %q, %v; want 8x8, true", v, ok)
	}
	if _, ok := o.Get("missing"); ok {
		t.Fatal("Get(missing) reported present")
	}
}

func TestOptionsStringCanonical(t *testing.T) {
	o := Options{Opt("b", "2"), Opt("a", "1"), Opt("b", "3")}
	if got := o.String(); got != "a=1,b=3" {
		t.Fatalf("String() = %q, want %q", got, "a=1,b=3")
	}
	if got := (Options{}).String(); got != "" {
		t.Fatalf("empty String() = %q, want empty", got)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"iocore", "cgra", "pimdram"} {
		found := false
		for _, n := range Names() {
			if n == name {
				found = true
			}
		}
		if !found {
			// The aggregate import is what wires these in; this package alone
			// registers nothing.
			t.Skipf("%s not registered in this test binary", name)
		}
		if _, ok := Lookup(name); !ok {
			t.Fatalf("Lookup(%q) failed but Names() lists it", name)
		}
	}
	if _, ok := Lookup("no-such-backend"); ok {
		t.Fatal("Lookup of an unregistered name succeeded")
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeBackend{name: "dup-test"})
	Register(fakeBackend{name: "dup-test"})
}

type fakeBackend struct{ name string }

func (f fakeBackend) Name() string                       { return f.name }
func (fakeBackend) Caps() Caps                           { return Caps{MaxPortWidth: 1} }
func (fakeBackend) ValidateOptions(Options) error        { return nil }
func (fakeBackend) NewEngine(LaunchSpec) (Engine, error) { return nil, nil }
