// Package backendtest is a table-driven conformance suite every registered
// accelerator backend must pass: it drives a synthetic copy kernel through
// the decoupled request/response ports and checks the valid/ready handshake
// end to end — consume only on valid data, produce only into ready slots,
// back-pressure propagation, width limits, both orchestration modes, and
// the scalar register file. Each backend package runs it from its own test:
//
//	backendtest.Conformance(t, "iocore")
//	backendtest.Conformance(t, "cgra", backend.Opt("grid", "5x5"))
package backendtest

import (
	"testing"

	"distda/internal/accessunit"
	"distda/internal/backend"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/microcode"
)

// copyDef builds the synthetic kernel: consume one element from access 0,
// produce it unchanged to access 1. whileInput selects end-of-stream
// orchestration watching the input.
func copyDef(n int64, whileInput bool) *core.AccelDef {
	cons := microcode.NewOp(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	prod := microcode.NewOp(microcode.Produce)
	prod.A, prod.Access = 1, 1
	trip := core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(n))}
	if whileInput {
		trip = core.TripSpec{Kind: core.TripWhileInput, InputAccess: 0}
	}
	return &core.AccelDef{
		ID: 0, Name: "copy",
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "in", ElemBytes: 8,
				Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
			{ID: 1, Kind: core.StreamOut, Obj: "out", ElemBytes: 8,
				Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
		},
		Program: microcode.Program{cons, prod},
		Trip:    trip,
	}
}

// fixture is one engine wired to hand-fed request/response buffers.
type fixture struct {
	eng backend.Engine
	in  *accessunit.Buffer
	out *accessunit.InPort
	div int64
	now int64
}

func newFixture(t *testing.T, be backend.Backend, opts backend.Options,
	trips int64, n int64, inCap, outCap, width int) *fixture {
	t.Helper()
	meter := energy.NewMeter(energy.Default32nm())
	inBuf, err := accessunit.NewBuffer(inCap, meter)
	if err != nil {
		t.Fatalf("in buffer: %v", err)
	}
	outBuf, err := accessunit.NewBuffer(outCap, meter)
	if err != nil {
		t.Fatalf("out buffer: %v", err)
	}
	e, err := be.NewEngine(backend.LaunchSpec{
		Def: copyDef(n, trips < 0), Trips: trips,
		In:  map[int]*accessunit.InPort{0: accessunit.NewInPort(inBuf, 0)},
		Out: map[int]*accessunit.OutPort{1: {Buf: outBuf}},
		GHz: 1, Width: width, Meter: meter, Opts: opts,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return &fixture{eng: e, in: inBuf, out: accessunit.NewInPort(outBuf, 0),
		div: int64(engine.Div(1))}
}

// settle steps the engine for a generous fixed number of edges — enough for
// any conforming backend to drain whatever the ports allow.
func (f *fixture) settle() {
	for i := 0; i < 4096; i++ {
		f.eng.Step(f.now)
		f.now += f.div
	}
}

// drain pops every currently valid response element.
func (f *fixture) drain() []float64 {
	var got []float64
	for f.out.Buf.CanPop(f.out.Reader) {
		got = append(got, f.out.Buf.Pop(f.out.Reader))
	}
	return got
}

// push feeds request elements, failing the test on a full buffer.
func (f *fixture) push(t *testing.T, vals ...float64) {
	t.Helper()
	for _, v := range vals {
		if !f.in.CanPush() {
			t.Fatalf("push %g: request buffer unexpectedly full", v)
		}
		f.in.Push(v)
	}
}

func seq(n int) []float64 {
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	return vals
}

func eq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Conformance runs the handshake suite against the named registered
// backend, passing opts to every engine construction (e.g. the cgra grid).
func Conformance(t *testing.T, name string, opts ...backend.Option) {
	be, ok := backend.Lookup(name)
	if !ok {
		t.Fatalf("backend %q not registered", name)
	}
	o := backend.Options(opts)
	caps := be.Caps()
	if caps.MaxPortWidth < 1 {
		t.Fatalf("Caps().MaxPortWidth = %d, want >= 1", caps.MaxPortWidth)
	}
	if err := be.ValidateOptions(o); err != nil {
		t.Fatalf("ValidateOptions(%v): %v", o, err)
	}

	t.Run("rejects-unknown-option", func(t *testing.T) {
		bad := append(append(backend.Options{}, o...), backend.Opt("no-such-option", "1"))
		if err := be.ValidateOptions(bad); err == nil {
			t.Fatal("ValidateOptions accepted an unknown option")
		}
	})

	t.Run("rejects-excess-width", func(t *testing.T) {
		meter := energy.NewMeter(energy.Default32nm())
		inBuf, _ := accessunit.NewBuffer(16, meter)
		outBuf, _ := accessunit.NewBuffer(16, meter)
		_, err := be.NewEngine(backend.LaunchSpec{
			Def: copyDef(4, false), Trips: 4,
			In:  map[int]*accessunit.InPort{0: accessunit.NewInPort(inBuf, 0)},
			Out: map[int]*accessunit.OutPort{1: {Buf: outBuf}},
			GHz: 1, Width: caps.MaxPortWidth + 1, Meter: meter, Opts: o,
		})
		if err == nil {
			t.Fatalf("NewEngine accepted width %d > MaxPortWidth %d",
				caps.MaxPortWidth+1, caps.MaxPortWidth)
		}
	})

	t.Run("counted-completion", func(t *testing.T) {
		const n = 8
		f := newFixture(t, be, o, n, n, 16, 16, 1)
		f.push(t, seq(n)...)
		f.settle()
		if !f.eng.Done() {
			t.Fatal("engine not done after consuming all counted trips")
		}
		if !f.out.Buf.Closed() {
			t.Fatal("response buffer not closed at completion")
		}
		if got := f.drain(); !eq(got, seq(n)) {
			t.Fatalf("responses = %v, want %v", got, seq(n))
		}
		if ops := f.eng.Ops(); ops <= 0 {
			t.Fatalf("Ops() = %d after a completed run, want > 0", ops)
		}
	})

	t.Run("partial-fill-valid-ready", func(t *testing.T) {
		const n = 8
		f := newFixture(t, be, o, n, n, 16, 16, 1)
		f.push(t, seq(3)...)
		f.settle()
		if f.eng.Done() {
			t.Fatal("engine done with only 3 of 8 requests delivered")
		}
		if got := f.drain(); !eq(got, seq(3)) {
			t.Fatalf("responses after partial fill = %v, want %v", got, seq(3))
		}
		f.push(t, 4, 5, 6, 7, 8)
		f.settle()
		if !f.eng.Done() {
			t.Fatal("engine not done after the remaining requests arrived")
		}
		if got := f.drain(); !eq(got, []float64{4, 5, 6, 7, 8}) {
			t.Fatalf("late responses = %v, want [4 5 6 7 8]", got)
		}
	})

	t.Run("backpressure", func(t *testing.T) {
		const n = 12
		// A 2-slot response buffer: the engine must stall on a full buffer
		// (ready deasserted) and resume as the consumer pops.
		f := newFixture(t, be, o, n, n, 16, 2, 1)
		f.push(t, seq(n)...)
		f.settle()
		if f.eng.Done() {
			t.Fatal("engine done despite a blocked 2-slot response buffer")
		}
		var got []float64
		for i := 0; i < n; i++ {
			got = append(got, f.drain()...)
			f.settle()
			if len(got) == n {
				break
			}
		}
		got = append(got, f.drain()...)
		if !eq(got, seq(n)) {
			t.Fatalf("responses under backpressure = %v, want %v", got, seq(n))
		}
		if !f.eng.Done() {
			t.Fatal("engine not done after the consumer drained everything")
		}
	})

	t.Run("while-input", func(t *testing.T) {
		const n = 5
		f := newFixture(t, be, o, -1, n, 16, 16, 1)
		f.push(t, seq(n)...)
		f.settle()
		if f.eng.Done() {
			t.Fatal("while-input engine finished before end-of-stream")
		}
		f.in.Close()
		f.settle()
		if !f.eng.Done() {
			t.Fatal("while-input engine not done after the input closed")
		}
		if got := f.drain(); !eq(got, seq(n)) {
			t.Fatalf("responses = %v, want %v", got, seq(n))
		}
	})

	t.Run("regfile", func(t *testing.T) {
		f := newFixture(t, be, o, 1, 1, 4, 4, 1)
		f.eng.SetReg(7, 3.5)
		if got := f.eng.Reg(7); got != 3.5 {
			t.Fatalf("Reg(7) = %g after SetReg(7, 3.5)", got)
		}
	})

	t.Run("max-width-accepted", func(t *testing.T) {
		const n = 6
		f := newFixture(t, be, o, n, n, 16, 16, caps.MaxPortWidth)
		f.push(t, seq(n)...)
		f.settle()
		if !f.eng.Done() {
			t.Fatal("engine at MaxPortWidth did not complete")
		}
		if got := f.drain(); !eq(got, seq(n)) {
			t.Fatalf("responses = %v, want %v", got, seq(n))
		}
	})
}
