// Package cgrabackend registers the statically mapped CGRA fabric
// (internal/cgra) as the "cgra" accelerator backend. The grid shape —
// formerly a top-level sim.Config field — is backend-scoped configuration:
// backend.Opt("grid", "5x5") or "8x8".
package cgrabackend

import (
	"fmt"

	"distda/internal/backend"
	"distda/internal/cgra"
	"distda/internal/engine"
	"distda/internal/profile"
	"distda/internal/trace"
)

func init() { backend.Register(cgraBackend{}) }

type cgraBackend struct{}

func (cgraBackend) Name() string { return "cgra" }

func (cgraBackend) Caps() backend.Caps {
	// The fabric's request port is its memory-port provisioning, not an
	// issue width; Width beyond 1 has no meaning here.
	return backend.Caps{MaxPortWidth: 1, NearData: true, RandomAccess: true}
}

// gridFor resolves the "grid" option to a provisioning preset.
func gridFor(opts backend.Options) (cgra.GridConfig, error) {
	name, ok := opts.Get("grid")
	if !ok {
		return cgra.GridConfig{}, fmt.Errorf("cgra backend: no grid provisioned (set the \"grid\" option to \"5x5\" or \"8x8\")")
	}
	switch name {
	case "5x5":
		return cgra.Grid5x5(), nil
	case "8x8":
		return cgra.Grid8x8(), nil
	}
	return cgra.GridConfig{}, fmt.Errorf("cgra backend: unknown grid %q (want \"5x5\" or \"8x8\")", name)
}

func (cgraBackend) ValidateOptions(opts backend.Options) error {
	for _, kv := range opts {
		if kv.Key != "grid" {
			return fmt.Errorf("cgra backend: unknown option %q", kv.Key)
		}
	}
	_, err := gridFor(opts)
	return err
}

func (cgraBackend) NewEngine(spec backend.LaunchSpec) (backend.Engine, error) {
	if spec.Width > 1 {
		return nil, fmt.Errorf("cgra backend: port width %d exceeds the maximum 1", spec.Width)
	}
	grid, err := gridFor(spec.Opts)
	if err != nil {
		return nil, err
	}
	f, err := cgra.NewFabric(spec.Def, grid, spec.Trips, spec.In, spec.Out, spec.Random,
		int64(engine.Div(spec.GHz)), spec.Meter)
	if err != nil {
		return nil, err
	}
	f.IterHist = spec.Metrics.Histogram("cgra/iter_lat")
	return &cgraEngine{f: f, id: spec.Def.ID}, nil
}

// cgraEngine adapts *cgra.Fabric to the backend.Engine contract.
type cgraEngine struct {
	f  *cgra.Fabric
	id int
}

func (e *cgraEngine) Step(now int64) bool       { return e.f.Step(now) }
func (e *cgraEngine) Done() bool                { return e.f.Done() }
func (e *cgraEngine) NextEvent(now int64) int64 { return e.f.NextEvent(now) }
func (e *cgraEngine) SetReg(r int, v float64)   { e.f.SetReg(r, v) }
func (e *cgraEngine) Reg(r int) float64         { return e.f.Reg(r) }
func (e *cgraEngine) Ops() int64                { return e.f.Ops }

func (e *cgraEngine) AttachTrace(tr *trace.Tracer, off int64) {
	e.f.Trace = tr.Component(fmt.Sprintf("fabric:%d", e.id)).At(off)
}

func (e *cgraEngine) AddProfile(p *profile.Profiler, r *profile.Region) {
	label := fmt.Sprintf("fabric:%d", e.id)
	pc := p.Component("fabric", label)
	pc.AddBusy(e.f.BusyBaseCycles())
	pc.AddEvents(e.f.Ops)
	r.AddComponent(label, e.f.BusyBaseCycles())
	// Per-tile attribution, by PE class: each mapped op occupies one PE of
	// its class for one fabric cycle per iteration (the mapper is analytic —
	// modulo scheduling without physical placement).
	intOps, cplxOps, fpOps, memOps := e.f.TileOps()
	for _, tc := range []struct {
		class string
		ops   int64
	}{{"int", intOps}, {"complex", cplxOps}, {"float", fpOps}, {"mem", memOps}} {
		if tc.ops == 0 {
			continue
		}
		tile := p.Component("cgra_tile", label+"."+tc.class)
		// One fabric cycle per op per iteration, in base cycles:
		// BusyBaseCycles() is Iters x clock divisor.
		tile.AddBusy(tc.ops * e.f.BusyBaseCycles())
		tile.AddEvents(tc.ops * e.f.Iters)
	}
}
