package cgrabackend_test

import (
	"testing"

	"distda/internal/backend"
	"distda/internal/backend/backendtest"
)

func TestConformance(t *testing.T) {
	for _, grid := range []string{"5x5", "8x8"} {
		grid := grid
		t.Run(grid, func(t *testing.T) {
			backendtest.Conformance(t, "cgra", backend.Opt("grid", grid))
		})
	}
}

func TestRejectsMissingGrid(t *testing.T) {
	be, ok := backend.Lookup("cgra")
	if !ok {
		t.Fatal("cgra backend not registered")
	}
	if err := be.ValidateOptions(nil); err == nil {
		t.Fatal("ValidateOptions accepted a config without a grid")
	}
}
