// Package iocorebackend registers the lightweight single-issue in-order
// core (internal/iocore) as the "iocore" accelerator backend.
package iocorebackend

import (
	"fmt"

	"distda/internal/backend"
	"distda/internal/engine"
	"distda/internal/iocore"
	"distda/internal/profile"
	"distda/internal/trace"
)

// MaxWidth is the widest in-order issue the model supports (Fig. 14's +SW
// configuration uses 4).
const MaxWidth = 8

func init() { backend.Register(ioBackend{}) }

type ioBackend struct{}

func (ioBackend) Name() string { return "iocore" }

func (ioBackend) Caps() backend.Caps {
	return backend.Caps{MaxPortWidth: MaxWidth, NearData: true, RandomAccess: true}
}

func (ioBackend) ValidateOptions(opts backend.Options) error {
	for _, kv := range opts {
		return fmt.Errorf("iocore backend: unknown option %q", kv.Key)
	}
	return nil
}

func (ioBackend) NewEngine(spec backend.LaunchSpec) (backend.Engine, error) {
	if spec.Width > MaxWidth {
		return nil, fmt.Errorf("iocore backend: port width %d exceeds the maximum %d", spec.Width, MaxWidth)
	}
	c, err := iocore.New(spec.Def, spec.Trips, spec.In, spec.Out, spec.Random, spec.Meter)
	if err != nil {
		return nil, err
	}
	c.Width = spec.Width
	c.ClockDiv = int64(engine.Div(spec.GHz))
	c.StallHist = spec.Metrics.Histogram("iocore/stall_lat")
	return &ioEngine{c: c, id: spec.Def.ID}, nil
}

// ioEngine adapts *iocore.Core to the backend.Engine contract.
type ioEngine struct {
	c  *iocore.Core
	id int
}

func (e *ioEngine) Step(now int64) bool       { return e.c.Step(now) }
func (e *ioEngine) Done() bool                { return e.c.Done() }
func (e *ioEngine) NextEvent(now int64) int64 { return e.c.NextEvent(now) }
func (e *ioEngine) SetReg(r int, v float64)   { e.c.SetReg(r, v) }
func (e *ioEngine) Reg(r int) float64         { return e.c.Reg(r) }
func (e *ioEngine) Ops() int64                { return e.c.Ops }

func (e *ioEngine) AttachTrace(tr *trace.Tracer, off int64) {
	e.c.Trace = tr.Component(fmt.Sprintf("core:%d", e.id)).At(off)
}

func (e *ioEngine) AddProfile(p *profile.Profiler, r *profile.Region) {
	label := fmt.Sprintf("core:%d", e.id)
	pc := p.Component("core", label)
	pc.AddBusy(e.c.BusyBaseCycles())
	pc.AddStall(e.c.StallBaseCycles())
	pc.AddEvents(e.c.Ops)
	r.AddComponent(label, e.c.BusyBaseCycles()+e.c.StallBaseCycles())
}
