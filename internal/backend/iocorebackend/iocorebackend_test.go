package iocorebackend_test

import (
	"testing"

	"distda/internal/backend/backendtest"
)

func TestConformance(t *testing.T) {
	backendtest.Conformance(t, "iocore")
}
