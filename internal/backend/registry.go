package backend

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps backend names to implementations. Backends register
// from init (import distda/internal/backend/all for the full set), so
// lookups after program start never race registration; the mutex keeps
// tests that register fixtures race-clean anyway.
var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its Name. Registering a duplicate name or
// an invalid descriptor panics: both are programmer errors at package-init
// time, not runtime conditions.
func Register(b Backend) {
	name := b.Name()
	if name == "" {
		panic("backend: Register with empty name")
	}
	if b.Caps().MaxPortWidth < 1 {
		panic(fmt.Sprintf("backend: %q registers MaxPortWidth %d < 1", name, b.Caps().MaxPortWidth))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("backend: duplicate registration of %q", name))
	}
	registry[name] = b
}

// Lookup resolves a registered backend by name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
