// Package cache models the on-chip cache hierarchy of Table III: private
// L1/L2 for the host (with an L2 stride prefetcher) and a 2 MB static-NUCA
// L3 of 8 clusters on the mesh NoC. Levels are real set-associative LRU
// arrays so access counts, hit rates, evictions and writebacks — the
// quantities behind Figs. 7, 8 and 11 — emerge from the address streams
// rather than being assumed.
package cache

import (
	"fmt"

	"distda/internal/energy"
)

// LevelConfig describes one cache level.
type LevelConfig struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // cycles per access
	EnergyPJ  float64
	EnergyCat string
}

// line is one cache line's metadata.
type line struct {
	tag   int64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Level is a set-associative write-back, write-allocate cache array.
type Level struct {
	cfg   LevelConfig
	sets  int
	data  [][]line
	clock uint64
	meter *energy.Meter

	Accesses int64
	Hits     int64
	Misses   int64
	Evicts   int64
	Wbacks   int64
}

// NewLevel builds a level. SizeBytes must be divisible by Ways*LineBytes
// into a power-of-two set count.
func NewLevel(cfg LevelConfig, m *energy.Meter) (*Level, error) {
	if cfg.Ways <= 0 || cfg.LineBytes <= 0 || cfg.SizeBytes <= 0 {
		return nil, fmt.Errorf("cache: level %q has non-positive geometry", cfg.Name)
	}
	sets := cfg.SizeBytes / (cfg.Ways * cfg.LineBytes)
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: level %q: set count %d is not a positive power of two", cfg.Name, sets)
	}
	l := &Level{cfg: cfg, sets: sets, data: make([][]line, sets), meter: m}
	for i := range l.data {
		l.data[i] = make([]line, cfg.Ways)
	}
	return l, nil
}

// SetMeter redirects the level's energy accounting to a different meter.
// The sharded launch path points a shard's claimed L3 slices at the shard's
// recording meter for the duration of an engine run, then restores the
// run-wide meter; tag, LRU and counter state are untouched.
func (l *Level) SetMeter(m *energy.Meter) { l.meter = m }

func (l *Level) index(addr int64) (set int, tag int64) {
	lineAddr := addr / int64(l.cfg.LineBytes)
	return int(lineAddr & int64(l.sets-1)), lineAddr
}

func (l *Level) energy() {
	if l.meter != nil {
		l.meter.Add(l.cfg.EnergyCat, l.cfg.EnergyPJ)
	}
}

// Lookup probes the level without counting an access (used by prefetch
// filtering). It does not update LRU state.
func (l *Level) Lookup(addr int64) bool {
	set, tag := l.index(addr)
	for i := range l.data[set] {
		if l.data[set][i].valid && l.data[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Access probes the level for addr, updating LRU and dirty state on hit.
// It counts one access and its energy.
func (l *Level) Access(addr int64, write bool) (hit bool) {
	l.Accesses++
	l.energy()
	l.clock++
	set, tag := l.index(addr)
	for i := range l.data[set] {
		ln := &l.data[set][i]
		if ln.valid && ln.tag == tag {
			ln.used = l.clock
			if write {
				ln.dirty = true
			}
			l.Hits++
			return true
		}
	}
	l.Misses++
	return false
}

// Insert fills addr's line, evicting LRU if needed. It returns the evicted
// line's address and dirtiness when an eviction of a valid line occurred.
func (l *Level) Insert(addr int64, dirty bool) (evicted int64, evictedDirty, didEvict bool) {
	l.clock++
	set, tag := l.index(addr)
	victim := 0
	for i := range l.data[set] {
		ln := &l.data[set][i]
		if ln.valid && ln.tag == tag { // already present (race with prefetch)
			ln.used = l.clock
			ln.dirty = ln.dirty || dirty
			return 0, false, false
		}
		if !ln.valid {
			victim = i
		} else if l.data[set][victim].valid && ln.used < l.data[set][victim].used {
			victim = i
		}
	}
	v := &l.data[set][victim]
	if v.valid {
		evicted = v.tag * int64(l.cfg.LineBytes)
		evictedDirty = v.dirty
		didEvict = true
		l.Evicts++
		if evictedDirty {
			l.Wbacks++
		}
	}
	*v = line{tag: tag, valid: true, dirty: dirty, used: l.clock}
	return evicted, evictedDirty, didEvict
}

// InvalidateRange drops every line overlapping [base, base+bytes), counting
// dirty ones, and returns (linesDropped, dirtyLines). Used for the
// software-managed coherence flush before offload (§IV-D).
func (l *Level) InvalidateRange(base, bytes int64) (dropped, dirty int) {
	end := base + bytes
	for s := range l.data {
		for i := range l.data[s] {
			ln := &l.data[s][i]
			if !ln.valid {
				continue
			}
			addr := ln.tag * int64(l.cfg.LineBytes)
			if addr+int64(l.cfg.LineBytes) > base && addr < end {
				dropped++
				if ln.dirty {
					dirty++
				}
				ln.valid = false
			}
		}
	}
	return dropped, dirty
}

// Latency returns the level's access latency in cycles.
func (l *Level) Latency() int { return l.cfg.Latency }

// LineBytes returns the level's line size.
func (l *Level) LineBytes() int { return l.cfg.LineBytes }
