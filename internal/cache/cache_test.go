package cache

import (
	"testing"
	"testing/quick"

	"distda/internal/dram"
	"distda/internal/energy"
	"distda/internal/noc"
)

func smallLevel(t *testing.T) *Level {
	t.Helper()
	l, err := NewLevel(LevelConfig{
		Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64,
		Latency: 2, EnergyPJ: 10, EnergyCat: energy.CatL1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLevelGeometryValidation(t *testing.T) {
	if _, err := NewLevel(LevelConfig{SizeBytes: 0, Ways: 2, LineBytes: 64}, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	// 3 sets: not a power of two.
	if _, err := NewLevel(LevelConfig{SizeBytes: 3 * 2 * 64, Ways: 2, LineBytes: 64}, nil); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
}

func TestLevelHitMiss(t *testing.T) {
	l := smallLevel(t) // 8 sets x 2 ways
	if l.Access(0, false) {
		t.Fatal("cold access hit")
	}
	l.Insert(0, false)
	if !l.Access(0, false) {
		t.Fatal("inserted line missed")
	}
	if !l.Access(63, false) {
		t.Fatal("same-line offset missed")
	}
	if l.Access(64, false) {
		t.Fatal("next line hit without insert")
	}
	if l.Accesses != 4 || l.Hits != 2 || l.Misses != 2 {
		t.Fatalf("counters = %d/%d/%d", l.Accesses, l.Hits, l.Misses)
	}
}

func TestLevelLRUEviction(t *testing.T) {
	l := smallLevel(t)                           // 8 sets, 2 ways; set stride = 8*64 = 512B
	a, b, c := int64(0), int64(512), int64(1024) // all map to set 0
	l.Insert(a, false)
	l.Insert(b, false)
	l.Access(a, false) // a most recent
	ev, dirty, ok := l.Insert(c, false)
	if !ok || dirty || ev != b {
		t.Fatalf("evicted %#x dirty=%v ok=%v, want b=%#x clean", ev, dirty, ok, b)
	}
	if !l.Lookup(a) || !l.Lookup(c) || l.Lookup(b) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestLevelDirtyWriteback(t *testing.T) {
	l := smallLevel(t)
	l.Insert(0, false)
	l.Access(0, true) // dirty it
	l.Insert(512, false)
	ev, dirty, ok := l.Insert(1024, false)
	if !ok || !dirty || ev != 0 {
		t.Fatalf("dirty eviction: ev=%#x dirty=%v ok=%v", ev, dirty, ok)
	}
	if l.Wbacks != 1 {
		t.Fatalf("Wbacks = %d", l.Wbacks)
	}
}

func TestLevelInsertExistingMergesDirty(t *testing.T) {
	l := smallLevel(t)
	l.Insert(0, false)
	_, _, ok := l.Insert(0, true)
	if ok {
		t.Fatal("re-insert evicted")
	}
	l.Insert(512, false)
	_, dirty, _ := l.Insert(1024, false) // evicts LRU; 0 was refreshed by re-insert
	_ = dirty
	// Directly verify dirtiness survived via invalidate.
	_, d := l.InvalidateRange(0, 64)
	if d != 1 && l.Lookup(0) {
		t.Fatal("merged dirty bit lost")
	}
}

func TestInvalidateRange(t *testing.T) {
	l := smallLevel(t)
	l.Insert(0, true)
	l.Insert(64, false)
	l.Insert(128, false)
	dropped, dirty := l.InvalidateRange(0, 128) // lines 0 and 64
	if dropped != 2 || dirty != 1 {
		t.Fatalf("dropped=%d dirty=%d", dropped, dirty)
	}
	if l.Lookup(0) || l.Lookup(64) || !l.Lookup(128) {
		t.Fatal("invalidate range boundaries wrong")
	}
}

func sys(t *testing.T) (*Hierarchy, *dram.Memory, *noc.Mesh, *energy.Meter) {
	t.Helper()
	meter := energy.NewMeter(energy.Default32nm())
	mem := dram.NewMemory(dram.DefaultConfig(), meter)
	mesh := noc.New(noc.DefaultConfig(), meter)
	h, err := New(DefaultConfig(meter.Table), mem, mesh, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem, mesh, meter
}

func TestHostAccessColdThenWarm(t *testing.T) {
	h, mem, _, _ := sys(t)
	cold := h.HostAccess(0x10000, false)
	if mem.Accesses == 0 {
		t.Fatal("cold access did not reach DRAM")
	}
	warm := h.HostAccess(0x10000, false)
	if warm >= cold {
		t.Fatalf("warm latency %d !< cold latency %d", warm, cold)
	}
	if warm != h.l1.Latency() {
		t.Fatalf("warm latency = %d, want L1 %d", warm, h.l1.Latency())
	}
}

func TestHomeClusterAnchoring(t *testing.T) {
	h, _, _, _ := sys(t)
	span := h.cfg.ClusterSpanBytes
	if h.HomeCluster(0) != 0 || h.HomeCluster(span-1) != 0 {
		t.Fatal("first span not cluster 0")
	}
	if h.HomeCluster(span) != 1 {
		t.Fatal("second span not cluster 1")
	}
	if h.HomeCluster(span*int64(h.Clusters())) != 0 {
		t.Fatal("span wrap")
	}
}

func TestClusterAccessLocalVsRemote(t *testing.T) {
	h, _, mesh, _ := sys(t)
	span := h.cfg.ClusterSpanBytes
	// Warm the line at cluster 2's home.
	addr := span*2 + 128
	h.ClusterAccess(2, addr, false, 64)
	before := mesh.TotalBytes()
	latLocal, hit := h.ClusterAccess(2, addr, false, 64)
	if !hit {
		t.Fatal("warm cluster access missed")
	}
	if mesh.TotalBytes() != before {
		t.Fatal("local cluster access generated NoC traffic")
	}
	latRemote, _ := h.ClusterAccess(5, addr, false, 64)
	if latRemote <= latLocal {
		t.Fatalf("remote latency %d !> local %d", latRemote, latLocal)
	}
	if mesh.TotalBytes() == before {
		t.Fatal("remote cluster access generated no NoC traffic")
	}
}

func TestPrefetcherImprovesStreaming(t *testing.T) {
	// Stream through a large array twice: once with prefetch, once without.
	run := func(pf bool) int64 {
		meter := energy.NewMeter(energy.Default32nm())
		mem := dram.NewMemory(dram.DefaultConfig(), meter)
		mesh := noc.New(noc.DefaultConfig(), meter)
		cfg := DefaultConfig(meter.Table)
		cfg.L2Prefetch = pf
		h, err := New(cfg, mem, mesh, meter)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for addr := int64(0); addr < 512<<10; addr += 8 {
			total += int64(h.HostAccess(addr, false))
		}
		return total
	}
	with, without := run(true), run(false)
	if with >= without {
		t.Fatalf("prefetch did not help: with=%d without=%d", with, without)
	}
}

func TestFlushRangePushesDirtyLines(t *testing.T) {
	h, _, _, _ := sys(t)
	h.HostAccess(0x2000, true) // dirty in L1
	cost := h.FlushRange(0x2000, 64)
	if cost <= 0 {
		t.Fatal("flush cost zero")
	}
	l1, _, _ := h.Levels()
	if l1.Lookup(0x2000) {
		t.Fatal("flushed line still in L1")
	}
	// Data must now hit in L3 without DRAM.
	_, hit := h.ClusterAccess(h.HomeCluster(0x2000), 0x2000, false, 64)
	if !hit {
		t.Fatal("flushed dirty line not visible in L3")
	}
}

func TestCacheAccessCounters(t *testing.T) {
	h, _, _, _ := sys(t)
	h.HostAccess(0, false)
	h.HostAccess(0, false)
	l1, l2, l3 := h.CacheAccesses()
	if l1 != 2 || l2 != 1 || l3 != 1 {
		t.Fatalf("accesses l1/l2/l3 = %d/%d/%d, want 2/1/1", l1, l2, l3)
	}
}

// Property: hits + misses == accesses at every level, and warm re-access of
// any address hits L1.
func TestHierarchyCounterInvariant(t *testing.T) {
	h, _, _, _ := sys(t)
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			h.HostAccess(int64(a%(1<<24)), a%3 == 0)
		}
		l1, l2, _ := h.Levels()
		if l1.Hits+l1.Misses != l1.Accesses {
			return false
		}
		if l2.Hits+l2.Misses != l2.Accesses {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	meter := energy.NewMeter(energy.Default32nm())
	cfg := DefaultConfig(meter.Table)
	cfg.Clusters = 0
	if _, err := New(cfg, nil, nil, meter); err == nil {
		t.Fatal("zero clusters accepted")
	}
	cfg = DefaultConfig(meter.Table)
	cfg.Clusters = 100
	mesh := noc.New(noc.DefaultConfig(), meter)
	if _, err := New(cfg, nil, mesh, meter); err == nil {
		t.Fatal("clusters > mesh nodes accepted")
	}
}

func TestStridePrefetcherDetection(t *testing.T) {
	p := newStridePrefetcher(4)
	// Feed lines 0,1,2,... : stride 1 after warmup.
	var fired bool
	for i := int64(0); i < 6; i++ {
		if s, ok := p.observe(i); ok {
			if s != 1 {
				t.Fatalf("stride = %d, want 1", s)
			}
			fired = true
		}
	}
	if !fired {
		t.Fatal("unit stride never detected")
	}
	// Random jumps across pages should not fire for a fresh detector.
	p2 := newStridePrefetcher(4)
	for _, l := range []int64{0, 1000, 5000, 90000, 44, 70000} {
		if _, ok := p2.observe(l); ok {
			t.Fatal("random pattern detected as stride")
		}
	}
}
