package cache

import (
	"fmt"

	"distda/internal/dram"
	"distda/internal/energy"
	"distda/internal/noc"
)

// Config assembles the Table III hierarchy.
type Config struct {
	L1, L2, L3Cluster LevelConfig
	Clusters          int
	BanksPerCluster   int
	ClusterSpanBytes  int64 // address-range chunk anchoring data to clusters
	HostNode          int   // mesh node of the host tile
	MemNode           int   // mesh node of the memory controller
	L2Prefetch        bool  // stride prefetcher at L2 (Table III)
	PrefetchDegree    int
}

// DefaultConfig returns Table III's parameters with 32 nm energy.
func DefaultConfig(t energy.Table) Config {
	return Config{
		L1: LevelConfig{Name: "L1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64,
			Latency: 2, EnergyPJ: t.L1AccessPJ, EnergyCat: energy.CatL1},
		L2: LevelConfig{Name: "L2", SizeBytes: 128 << 10, Ways: 16, LineBytes: 64,
			Latency: 4, EnergyPJ: t.L2AccessPJ, EnergyCat: energy.CatL2},
		L3Cluster: LevelConfig{Name: "L3", SizeBytes: 256 << 10, Ways: 16, LineBytes: 64,
			Latency: 10, EnergyPJ: t.L3AccessPJ, EnergyCat: energy.CatL3},
		Clusters:         8,
		BanksPerCluster:  4,
		ClusterSpanBytes: 64 << 10,
		HostNode:         0,
		MemNode:          7,
		L2Prefetch:       true,
		PrefetchDegree:   2,
	}
}

// Hierarchy is the full host-visible cache system plus the distributed L3
// the accelerators attach to.
type Hierarchy struct {
	cfg   Config
	l1    *Level
	l2    *Level
	l3    []*Level // one per cluster
	mem   *dram.Memory
	mesh  *noc.Mesh
	meter *energy.Meter
	pf    *stridePrefetcher

	PrefetchIssued int64
	PrefetchUseful int64
}

// New assembles the hierarchy.
func New(cfg Config, mem *dram.Memory, mesh *noc.Mesh, meter *energy.Meter) (*Hierarchy, error) {
	if cfg.Clusters <= 0 {
		return nil, fmt.Errorf("cache: cluster count %d", cfg.Clusters)
	}
	if mesh != nil && cfg.Clusters > mesh.Nodes() {
		return nil, fmt.Errorf("cache: %d clusters but mesh has %d nodes", cfg.Clusters, mesh.Nodes())
	}
	h := &Hierarchy{cfg: cfg, mem: mem, mesh: mesh, meter: meter}
	var err error
	if h.l1, err = NewLevel(cfg.L1, meter); err != nil {
		return nil, err
	}
	if h.l2, err = NewLevel(cfg.L2, meter); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Clusters; i++ {
		lvl, err := NewLevel(cfg.L3Cluster, meter)
		if err != nil {
			return nil, err
		}
		h.l3 = append(h.l3, lvl)
	}
	if cfg.L2Prefetch {
		h.pf = newStridePrefetcher(8)
	}
	return h, nil
}

// HomeCluster returns the static-NUCA home cluster of an address: data is
// anchored to clusters in ClusterSpanBytes chunks so an object's consecutive
// region stays local to one cluster (§IV-D "home bank").
func (h *Hierarchy) HomeCluster(addr int64) int {
	if addr < 0 {
		addr = 0
	}
	return int((addr / h.cfg.ClusterSpanBytes) % int64(h.cfg.Clusters))
}

// Clusters returns the cluster count.
func (h *Hierarchy) Clusters() int { return h.cfg.Clusters }

// ClusterSpan returns the address-range chunk size anchoring data to
// clusters (HomeCluster changes every ClusterSpan bytes).
func (h *Hierarchy) ClusterSpan() int64 { return h.cfg.ClusterSpanBytes }

// HostNode returns the host's mesh node.
func (h *Hierarchy) HostNode() int { return h.cfg.HostNode }

// Counters for Fig. 8. Total cache accesses across L1+L2+L3.
func (h *Hierarchy) CacheAccesses() (l1, l2, l3 int64) {
	l1, l2 = h.l1.Accesses, h.l2.Accesses
	for _, c := range h.l3 {
		l3 += c.Accesses
	}
	return l1, l2, l3
}

// transfer moves bytes over the mesh if present, returning latency.
func (h *Hierarchy) transfer(a, b, bytes int, class noc.Class) int {
	if h.mesh == nil || a == b {
		return 0
	}
	return h.mesh.Transfer(a, b, bytes, class)
}

// dramFill fetches a line into cluster cl's L3 and returns its latency.
// Dirty L3 evictions write back to memory.
func (h *Hierarchy) dramFill(cl int, addr int64, write bool) int {
	lat := h.transfer(cl, h.cfg.MemNode, 8, noc.HostCtrl) // request
	lat += h.mem.AccessAt(addr, false)
	lat += h.transfer(h.cfg.MemNode, cl, h.l3[cl].LineBytes(), noc.HostData)
	if ev, dirty, ok := h.l3[cl].Insert(addr, write); ok && dirty {
		h.transfer(cl, h.cfg.MemNode, h.l3[cl].LineBytes(), noc.HostData)
		h.mem.AccessAt(ev, true)
	}
	return lat
}

// l3Access performs an L3 access at the home cluster of addr on behalf of a
// requester at mesh node reqNode, filling from DRAM on miss. It returns
// (latency, home cluster, hitInL3).
func (h *Hierarchy) l3Access(reqNode int, addr int64, write bool) (int, int, bool) {
	home := h.HomeCluster(addr)
	lat := h.transfer(reqNode, home, 8, noc.HostCtrl) // request control
	l3 := h.l3[home]
	lat += l3.Latency()
	hit := l3.Access(addr, write)
	if !hit {
		lat += h.dramFill(home, addr, write)
	}
	// Response data back to the requester.
	lat += h.transfer(home, reqNode, l3.LineBytes(), noc.HostData)
	return lat, home, hit
}

// HostAccess models a demand load/store from the host core through
// L1 → L2 → L3(home) → DRAM and returns the total latency in host cycles.
func (h *Hierarchy) HostAccess(addr int64, write bool) int {
	lat := h.l1.Latency()
	if h.l1.Access(addr, write) {
		return lat
	}
	lat += h.l2.Latency()
	l2hit := h.l2.Access(addr, write)
	if h.pf != nil {
		h.prefetch(addr)
	}
	if l2hit {
		h.fillL1(addr, write)
		return lat
	}
	l3lat, _, _ := h.l3Access(h.cfg.HostNode, addr, false)
	lat += l3lat
	h.fillL2(addr, false)
	h.fillL1(addr, write)
	return lat
}

func (h *Hierarchy) fillL1(addr int64, dirty bool) {
	if ev, evDirty, ok := h.l1.Insert(addr, dirty); ok && evDirty {
		// Writeback into L2 (local, no NoC).
		h.l2.Access(ev, true)
		h.fillL2(ev, true)
	}
}

func (h *Hierarchy) fillL2(addr int64, dirty bool) {
	if ev, evDirty, ok := h.l2.Insert(addr, dirty); ok && evDirty {
		// Writeback to home L3 over the NoC.
		home := h.HomeCluster(ev)
		h.transfer(h.cfg.HostNode, home, h.l2.LineBytes(), noc.HostData)
		if !h.l3[home].Access(ev, true) {
			h.dramFill(home, ev, true)
		}
	}
}

// prefetch runs the stride detector on the L2 access stream and issues
// next-line fills into L2.
func (h *Hierarchy) prefetch(addr int64) {
	lineBytes := int64(h.l2.LineBytes())
	strideLines, ok := h.pf.observe(addr / lineBytes)
	if !ok {
		return
	}
	for d := 1; d <= h.cfg.PrefetchDegree; d++ {
		target := addr + int64(d)*strideLines*lineBytes
		if target < 0 {
			continue
		}
		if h.l2.Lookup(target) {
			continue
		}
		h.PrefetchIssued++
		if h.meter != nil {
			h.meter.Add(energy.CatL2, h.meter.Table.PrefetchPJ)
		}
		// Fetch from L3/DRAM into L2 (latency hidden; traffic real).
		if _, _, hit := h.l3Access(h.cfg.HostNode, target, false); hit {
			h.PrefetchUseful++
		}
		h.fillL2(target, false)
	}
}

// ClusterAccess models an access from an accelerator attached to cluster cl
// directly into the L3 layer (accelerators bypass host L1/L2; their local
// ACP keeps requests within the cluster when the data is home, §IV-D). It
// returns the latency in host cycles and whether the line was on-chip.
// bytes is the payload moved to the requester (a full line for stream fills,
// a word for cp_read/cp_write).
func (h *Hierarchy) ClusterAccess(cl int, addr int64, write bool, bytes int) (int, bool) {
	home := h.HomeCluster(addr)
	lat := 0
	if cl != home {
		lat += h.transfer(cl, home, 8, noc.HostCtrl)
	}
	l3 := h.l3[home]
	lat += l3.Latency()
	hit := l3.Access(addr, write)
	if !hit {
		lat += h.dramFill(home, addr, write)
	}
	if cl != home {
		lat += h.transfer(home, cl, bytes, noc.HostData)
	}
	return lat, hit
}

// FlushRange implements the software-managed coherence hand-off: every
// host-private (L1/L2) line of the range is invalidated, dirty lines are
// pushed to their home L3 bank. It returns the cycle cost charged to the
// host.
func (h *Hierarchy) FlushRange(base, bytes int64) int {
	d1, dirty1 := h.l1.InvalidateRange(base, bytes)
	d2, dirty2 := h.l2.InvalidateRange(base, bytes)
	cost := (d1 + d2) * 2 // tag sweep
	for i := 0; i < dirty1+dirty2; i++ {
		// Model the writeback of a dirty line to its home bank; the range
		// midpoint is representative enough for home selection since spans
		// are far larger than lines.
		addr := base + int64(i)*int64(h.l1.LineBytes())
		if addr >= base+bytes {
			addr = base
		}
		home := h.HomeCluster(addr)
		cost += h.transfer(h.cfg.HostNode, home, h.l1.LineBytes(), noc.HostData)
		if !h.l3[home].Access(addr, true) {
			h.dramFill(home, addr, true)
		}
	}
	return cost
}

// InvalidateAcceleratorRange drops the range from host L1/L2 only (used
// when ownership moves to accelerators and host copies must not be reused).
func (h *Hierarchy) InvalidateAcceleratorRange(base, bytes int64) {
	h.l1.InvalidateRange(base, bytes)
	h.l2.InvalidateRange(base, bytes)
}

// ShardView returns a hierarchy that shares this one's cache levels (tags,
// LRU state and hit/miss counters stay common) but routes NoC transfers and
// DRAM accesses through the given shard-private mesh and memory. It exists
// for the accelerator-side ClusterAccess path only: a shard's view must be
// used exclusively for addresses homed at L3 slices that shard has claimed,
// and never for host-side accesses (HostAccess, FlushRange, prefetch),
// which remain the original hierarchy's business between engine runs.
func (h *Hierarchy) ShardView(mesh *noc.Mesh, mem *dram.Memory) *Hierarchy {
	return &Hierarchy{cfg: h.cfg, l1: h.l1, l2: h.l2, l3: h.l3, mem: mem, mesh: mesh}
}

// L3Slice exposes one cluster's L3 slice (for the sharded launch path's
// per-run meter redirection).
func (h *Hierarchy) L3Slice(cluster int) *Level { return h.l3[cluster] }

// Levels exposes the raw levels for tests and reports.
func (h *Hierarchy) Levels() (l1, l2 *Level, l3 []*Level) { return h.l1, h.l2, h.l3 }

// stridePrefetcher is a small table of page-indexed stream entries.
type stridePrefetcher struct {
	entries []pfEntry
	clock   uint64
}

type pfEntry struct {
	page     int64
	lastLine int64
	stride   int64
	conf     int
	used     uint64
	valid    bool
}

func newStridePrefetcher(n int) *stridePrefetcher {
	return &stridePrefetcher{entries: make([]pfEntry, n)}
}

// observe feeds one L2 access (line address) to the detector. When a stream
// is confident it returns (strideInLines, true).
func (p *stridePrefetcher) observe(lineAddr int64) (int64, bool) {
	p.clock++
	page := lineAddr >> 6 // 4 KB pages of 64 B lines
	var victim, found = 0, -1
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.page == page {
			found = i
			break
		}
		if !e.valid || e.used < p.entries[victim].used || !p.entries[victim].valid {
			victim = i
		}
	}
	if found == -1 {
		p.entries[victim] = pfEntry{page: page, lastLine: lineAddr, valid: true, used: p.clock}
		return 0, false
	}
	e := &p.entries[found]
	e.used = p.clock
	stride := lineAddr - e.lastLine
	if stride == 0 {
		return 0, false
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 1
	}
	e.lastLine = lineAddr
	if e.conf >= 2 {
		return e.stride, true
	}
	return 0, false
}
