// Package cgra models the statically mapped coarse-grained reconfigurable
// fabric of the Dist-DA-F / Mono-DA-F configurations. The mapper performs
// modulo scheduling: the initiation interval is the larger of the resource
// minimum (ops per functional-unit class over provisioned PEs) and the
// recurrence minimum (the longest loop-carried dependence chain), matching
// the way the paper provisions a 5x5 tile per L3 cluster (§VI-E).
package cgra

import (
	"fmt"

	"distda/internal/ir"
	"distda/internal/microcode"
)

// GridConfig describes a fabric tile's provisioned resources.
type GridConfig struct {
	Name       string
	IntPEs     int
	ComplexPEs int
	FloatPEs   int
	MemPorts   int // consume/produce/random ports serviceable per cycle
}

// Grid5x5 is the per-cluster Dist-DA-F tile: fifteen integer, four complex
// and four floating-point ALUs plus buffer ports (§VI-E).
func Grid5x5() GridConfig {
	return GridConfig{Name: "5x5", IntPEs: 15, ComplexPEs: 4, FloatPEs: 4, MemPorts: 4}
}

// Grid8x8 is the Mono-DA-F tile supporting larger monolithic offloads.
func Grid8x8() GridConfig {
	return GridConfig{Name: "8x8", IntPEs: 40, ComplexPEs: 12, FloatPEs: 12, MemPorts: 8}
}

// Mapping is the result of modulo-scheduling a micro-program onto a grid.
type Mapping struct {
	II    int // initiation interval in fabric cycles
	Depth int // pipeline depth (iteration latency) in fabric cycles
	Ops   int // mapped operations
	// MemSerial marks a loop-carried dependence through a random-access
	// load (pointer chasing): successive iterations cannot overlap because
	// the next address needs the previous load's data.
	MemSerial bool
}

// Map schedules prog onto g. Predicated consumes/produces are rejected: the
// compiler keeps channel operations unconditional so input counts per
// iteration are static.
func Map(prog microcode.Program, g GridConfig) (Mapping, error) {
	if len(prog) == 0 {
		return Mapping{}, fmt.Errorf("cgra: empty program")
	}
	if g.IntPEs <= 0 || g.ComplexPEs <= 0 || g.FloatPEs <= 0 || g.MemPorts <= 0 {
		return Mapping{}, fmt.Errorf("cgra: grid %q has non-positive resources", g.Name)
	}
	var intOps, cplxOps, fpOps, memOps int
	for i, op := range prog {
		switch op.Code {
		case microcode.Consume, microcode.Produce:
			if op.Pred >= 0 {
				return Mapping{}, fmt.Errorf("cgra: op %d: predicated channel operation not mappable", i)
			}
			memOps++
		case microcode.LoadObj, microcode.StoreObj:
			memOps++
		default:
			switch op.Class() {
			case ir.ClassInt:
				intOps++
			case ir.ClassComplex:
				cplxOps++
			case ir.ClassFloat:
				fpOps++
			}
		}
	}
	resMII := maxInt(
		ceilDiv(intOps, g.IntPEs),
		ceilDiv(cplxOps, g.ComplexPEs),
		ceilDiv(fpOps, g.FloatPEs),
		ceilDiv(memOps, g.MemPorts),
		1,
	)
	depth, recMII := analyzeDeps(prog)
	ii := maxInt(resMII, recMII)
	return Mapping{II: ii, Depth: depth, Ops: len(prog), MemSerial: memSerialRecurrence(prog)}, nil
}

// memSerialRecurrence reports whether a loop-carried register dependence
// passes through a LoadObj: the recurrence latency then includes the memory
// access and iterations serialize.
func memSerialRecurrence(prog microcode.Program) bool {
	n := len(prog)
	// reach[i][j]: op j is dataflow-reachable from op i within one
	// iteration (following register defs).
	reach := make([][]bool, n)
	for i := range reach {
		reach[i] = make([]bool, n)
	}
	lastWriter := map[int]int{}
	preds := make([][]int, n)
	carried := map[int][]int{} // reg -> ops reading the carried value
	for i, op := range prog {
		for _, r := range readRegs(op) {
			if w, ok := lastWriter[r]; ok {
				preds[i] = append(preds[i], w)
			} else {
				carried[r] = append(carried[r], i)
			}
		}
		if d, ok := writeReg(op); ok {
			lastWriter[d] = i
		}
	}
	for i := 0; i < n; i++ {
		for _, p := range preds[i] {
			reach[p][i] = true
			for q := 0; q < n; q++ {
				if reach[q][p] {
					reach[q][i] = true
				}
			}
		}
	}
	onPath := func(from, via, to int) bool {
		a := from == via || reach[from][via]
		b := via == to || reach[via][to]
		return a && b
	}
	for r, readers := range carried {
		w, written := lastWriter[r]
		if !written {
			continue
		}
		for _, rd := range readers {
			for i, op := range prog {
				if op.Code == microcode.LoadObj && onPath(rd, i, w) {
					return true
				}
			}
		}
	}
	return false
}

// analyzeDeps builds the register dataflow DAG of one iteration and returns
// (critical path length, longest loop-carried recurrence chain). Each op
// takes one fabric cycle.
func analyzeDeps(prog microcode.Program) (depth, recMII int) {
	n := len(prog)
	// lastWriter[r] = index of most recent op writing register r.
	lastWriter := map[int]int{}
	// carriedReaders[r] = ops reading r before any write (value from the
	// previous iteration).
	carriedReaders := map[int][]int{}
	preds := make([][]int, n)
	for i, op := range prog {
		for _, r := range readRegs(op) {
			if w, ok := lastWriter[r]; ok {
				preds[i] = append(preds[i], w)
			} else {
				carriedReaders[r] = append(carriedReaders[r], i)
			}
		}
		if d, ok := writeReg(op); ok {
			lastWriter[d] = i
		}
	}
	// Longest path to each node.
	level := make([]int, n)
	for i := 0; i < n; i++ {
		level[i] = 1
		for _, p := range preds[i] {
			if level[p]+1 > level[i] {
				level[i] = level[p] + 1
			}
		}
		if level[i] > depth {
			depth = level[i]
		}
	}
	// Recurrence: for each register read-before-write and later written, the
	// chain from its first carried reader to its (final) writer bounds II.
	recMII = 1
	for r, readers := range carriedReaders {
		w, written := lastWriter[r]
		if !written {
			continue
		}
		for _, rd := range readers {
			if rd <= w {
				// Chain length in ops from the reader to the writer along
				// the DAG; level difference is a sound upper-path estimate.
				chain := level[w] - level[rd] + 1
				if chain > recMII {
					recMII = chain
				}
			}
		}
	}
	return depth, recMII
}

// readRegs returns the registers an op reads (including its predicate).
func readRegs(op microcode.Op) []int {
	var rs []int
	switch op.Code {
	case microcode.Produce:
		rs = append(rs, op.A)
	case microcode.LoadObj, microcode.ALUI, microcode.Un, microcode.Mov:
		rs = append(rs, op.A)
	case microcode.StoreObj, microcode.ALU:
		rs = append(rs, op.A, op.B)
	case microcode.SelOp:
		rs = append(rs, op.A, op.B, op.C)
	}
	if op.Pred >= 0 {
		rs = append(rs, op.Pred)
	}
	return rs
}

// writeReg returns the register an op writes, if any.
func writeReg(op microcode.Op) (int, bool) {
	switch op.Code {
	case microcode.Consume, microcode.LoadObj, microcode.ALU, microcode.ALUI,
		microcode.Un, microcode.SelOp, microcode.MovI, microcode.Mov, microcode.Iter:
		return op.Dst, true
	default:
		return 0, false
	}
}

func ceilDiv(a, b int) int {
	if a == 0 {
		return 0
	}
	return (a + b - 1) / b
}

func maxInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
