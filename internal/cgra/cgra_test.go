package cgra

import (
	"testing"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/memfake"
	"distda/internal/microcode"
)

func op(c microcode.Code) microcode.Op { return microcode.NewOp(c) }

func TestMapResourceMII(t *testing.T) {
	// 9 independent complex ops on a grid with 4 complex PEs:
	// II = ceil(9/4) = 3.
	var prog microcode.Program
	for i := 0; i < 9; i++ {
		o := op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = i+1, 0, ir.Mul, 2
		prog = append(prog, o)
	}
	m, err := Map(prog, Grid5x5())
	if err != nil {
		t.Fatal(err)
	}
	if m.II != 3 {
		t.Fatalf("II = %d, want 3", m.II)
	}
	if m.Depth != 1 {
		t.Fatalf("Depth = %d, want 1 (independent ops)", m.Depth)
	}
	// A serial chain of 9 multiplies is a recurrence-free chain when the
	// final register is not fed back: depth 9, II still 3.
	var chain microcode.Program
	for i := 0; i < 9; i++ {
		o := op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = i+2, i+1, ir.Mul, 2
		chain = append(chain, o)
	}
	mc, err := Map(chain, Grid5x5())
	if err != nil {
		t.Fatal(err)
	}
	if mc.Depth != 9 || mc.II != 3 {
		t.Fatalf("chain II/Depth = %d/%d, want 3/9", mc.II, mc.Depth)
	}
}

func TestMapIndependentOpsDepthOne(t *testing.T) {
	var prog microcode.Program
	for i := 0; i < 5; i++ {
		o := op(microcode.MovI)
		o.Dst, o.Imm = i+1, float64(i)
		prog = append(prog, o)
	}
	m, err := Map(prog, Grid5x5())
	if err != nil {
		t.Fatal(err)
	}
	if m.II != 1 || m.Depth != 1 {
		t.Fatalf("II/Depth = %d/%d, want 1/1", m.II, m.Depth)
	}
}

func TestMapRecurrenceMII(t *testing.T) {
	// r2 = ((r2+1)*2): a 2-op loop-carried chain: recMII = 2.
	add := op(microcode.ALUI)
	add.Dst, add.A, add.Bin, add.Imm = 3, 2, ir.Add, 1
	mul := op(microcode.ALUI)
	mul.Dst, mul.A, mul.Bin, mul.Imm = 2, 3, ir.Mul, 2
	m, err := Map(microcode.Program{add, mul}, Grid5x5())
	if err != nil {
		t.Fatal(err)
	}
	if m.II != 2 {
		t.Fatalf("II = %d, want 2 (recurrence)", m.II)
	}
}

func TestMapRejectsPredicatedConsume(t *testing.T) {
	o := op(microcode.Consume)
	o.Dst, o.Access, o.Pred = 1, 0, 2
	if _, err := Map(microcode.Program{o}, Grid5x5()); err == nil {
		t.Fatal("predicated consume accepted")
	}
}

func TestMapRejectsEmptyOrBadGrid(t *testing.T) {
	if _, err := Map(microcode.Program{}, Grid5x5()); err == nil {
		t.Fatal("empty program accepted")
	}
	o := op(microcode.Nop)
	if _, err := Map(microcode.Program{o}, GridConfig{Name: "bad"}); err == nil {
		t.Fatal("zero-resource grid accepted")
	}
}

func TestGrid8x8LowersII(t *testing.T) {
	var prog microcode.Program
	for i := 0; i < 24; i++ {
		o := op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = i%4+1, i%4+1, ir.Add, 1
		prog = append(prog, o)
	}
	m5, _ := Map(prog, Grid5x5())
	m8, _ := Map(prog, Grid8x8())
	if m8.II > m5.II {
		t.Fatalf("8x8 II %d > 5x5 II %d", m8.II, m5.II)
	}
}

// fabricDoubler mirrors the iocore doubler but on the fabric.
func fabricDoubler(t *testing.T, n int) (*engine.Engine, *Fabric, *memfake.Mem) {
	t.Helper()
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i + 1)
	}
	mem := memfake.New(8, map[string][]float64{"A": a, "B": make([]float64, n)})
	fetch := &memfake.Fetch{Lat: 8}
	stats := &accessunit.Stats{}
	meter := energy.NewMeter(energy.Default32nm())

	bufIn, _ := accessunit.NewBuffer(16, meter)
	inPort := accessunit.NewInPort(bufIn, 0)
	fsmIn, _ := accessunit.NewStreamIn(bufIn, mem, fetch, 0, "A", 0, 1, int64(n), stats, meter)
	bufOut, _ := accessunit.NewBuffer(16, meter)
	fsmOut, _ := accessunit.NewStreamOut(bufOut, mem, fetch, 0, "B", 0, 1, stats, meter)

	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	mul := op(microcode.ALUI)
	mul.Dst, mul.A, mul.Bin, mul.Imm = 2, 1, ir.Mul, 2
	prod := op(microcode.Produce)
	prod.A, prod.Access = 2, 1

	def := &core.AccelDef{
		ID: 0, Name: "fdoubler",
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "A", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
			{ID: 1, Kind: core.StreamOut, Obj: "B", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
		},
		Program: microcode.Program{cons, mul, prod},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(n))},
	}
	f, err := NewFabric(def, Grid5x5(), int64(n),
		map[int]*accessunit.InPort{0: inPort},
		map[int]*accessunit.OutPort{1: {Buf: bufOut}},
		accessunit.NewRandomPort(mem, fetch, 0, stats, meter),
		int64(engine.Div(1)), meter)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	eng.Add(fsmIn, 2)
	eng.Add(f, 1) // fabric at 1 GHz
	eng.Add(fsmOut, 2)
	return eng, f, mem
}

func TestFabricStreamDoubler(t *testing.T) {
	const n = 32
	eng, f, mem := fabricDoubler(t, n)
	if _, err := eng.Run(1 << 21); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mem.Objs["B"][i]; got != float64(2*(i+1)) {
			t.Fatalf("B[%d] = %g", i, got)
		}
	}
	if f.Iters != n {
		t.Fatalf("iters = %d", f.Iters)
	}
	if f.Mapping().II != 1 {
		t.Fatalf("II = %d, want 1", f.Mapping().II)
	}
}

func TestFabricReduction(t *testing.T) {
	const n = 16
	a := make([]float64, n)
	var want float64
	for i := range a {
		a[i] = float64(i + 1)
		want += a[i]
	}
	mem := memfake.New(8, map[string][]float64{"A": a})
	fetch := &memfake.Fetch{Lat: 4}
	stats := &accessunit.Stats{}
	buf, _ := accessunit.NewBuffer(8, nil)
	in := accessunit.NewInPort(buf, 0)
	fsm, _ := accessunit.NewStreamIn(buf, mem, fetch, 0, "A", 0, 1, n, stats, nil)

	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	add := op(microcode.ALU)
	add.Dst, add.A, add.B, add.Bin = 2, 2, 1, ir.Add

	def := &core.AccelDef{
		ID: 0,
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "A", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
		},
		Program: microcode.Program{cons, add},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(n)},
	}
	f, err := NewFabric(def, Grid5x5(), n,
		map[int]*accessunit.InPort{0: in}, nil,
		accessunit.NewRandomPort(mem, fetch, 0, stats, nil),
		int64(engine.Div(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	f.SetReg(2, 0)
	eng := engine.New()
	eng.Add(fsm, 2)
	eng.Add(f, 1)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := f.Reg(2); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestFabricWhileInputTerminates(t *testing.T) {
	// Producer closes after 5 elements; fabric consumes until drained.
	src, _ := accessunit.NewBuffer(8, nil)
	in := accessunit.NewInPort(src, 0)
	for i := 0; i < 5; i++ {
		src.Push(float64(i))
	}
	src.Close()
	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	add := op(microcode.ALU)
	add.Dst, add.A, add.B, add.Bin = 2, 2, 1, ir.Add
	def := &core.AccelDef{
		ID: 0,
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.ChanIn, ElemBytes: 8},
		},
		Program: microcode.Program{cons, add},
		Trip:    core.TripSpec{Kind: core.TripWhileInput, InputAccess: 0},
	}
	f, err := NewFabric(def, Grid5x5(), -1, map[int]*accessunit.InPort{0: in}, nil, nil,
		int64(engine.Div(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	eng.Add(f, 1)
	if _, err := eng.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	if got := f.Reg(2); got != 10 {
		t.Fatalf("sum = %g, want 10", got)
	}
	if f.Iters != 5 {
		t.Fatalf("iters = %d", f.Iters)
	}
}

func TestFabricUnwiredConsumeRejected(t *testing.T) {
	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	def := &core.AccelDef{
		ID:       0,
		Accesses: []core.AccessDecl{{ID: 0, Kind: core.ChanIn, ElemBytes: 8}},
		Program:  microcode.Program{cons},
		Trip:     core.TripSpec{Kind: core.TripCounted, Count: ir.C(1)},
	}
	if _, err := NewFabric(def, Grid5x5(), 1, nil, nil, nil, 6, nil); err == nil {
		t.Fatal("unwired consume accepted")
	}
}

func TestFabricPipelinesFasterThanSerial(t *testing.T) {
	// With II=1 and depth>1, n iterations should take ~n+depth fabric
	// cycles, far less than n*depth.
	const n = 64
	eng, f, _ := fabricDoubler(t, n)
	cycles, err := eng.Run(1 << 21)
	if err != nil {
		t.Fatal(err)
	}
	fabricCycles := cycles / int64(engine.Div(1))
	serial := int64(n * f.Mapping().Depth * 3)
	if fabricCycles >= serial {
		t.Fatalf("no pipelining: %d fabric cycles vs serial bound %d", fabricCycles, serial)
	}
}
