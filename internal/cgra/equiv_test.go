package cgra

import (
	"math/rand"
	"testing"

	"distda/internal/core"
	"distda/internal/engine"
	"distda/internal/iocore"
	"distda/internal/ir"
	"distda/internal/microcode"
)

// randProgram builds a random straight-line arithmetic micro-program over a
// small register window, including predication, selects and loop-carried
// recurrences — everything except memory and channel ops.
func randProgram(r *rand.Rand, n int) microcode.Program {
	const regs = 8
	bins := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.Min, ir.Max, ir.Lt, ir.Ge, ir.And, ir.Or, ir.Ne}
	uns := []ir.UnOp{ir.Neg, ir.Abs, ir.Not, ir.Floor}
	var p microcode.Program
	for i := 0; i < n; i++ {
		o := microcode.NewOp(microcode.Nop)
		switch r.Intn(6) {
		case 0:
			o.Code = microcode.MovI
			o.Dst = r.Intn(regs)
			o.Imm = float64(r.Intn(21) - 10)
		case 1:
			o.Code = microcode.Mov
			o.Dst, o.A = r.Intn(regs), r.Intn(regs)
		case 2:
			o.Code = microcode.ALU
			o.Dst, o.A, o.B = r.Intn(regs), r.Intn(regs), r.Intn(regs)
			o.Bin = bins[r.Intn(len(bins))]
		case 3:
			o.Code = microcode.ALUI
			o.Dst, o.A = r.Intn(regs), r.Intn(regs)
			o.Bin = bins[r.Intn(len(bins))]
			o.Imm = float64(r.Intn(9) - 4)
		case 4:
			o.Code = microcode.Un
			o.Dst, o.A = r.Intn(regs), r.Intn(regs)
			o.UnOp = uns[r.Intn(len(uns))]
		case 5:
			o.Code = microcode.SelOp
			o.Dst, o.A, o.B, o.C = r.Intn(regs), r.Intn(regs), r.Intn(regs), r.Intn(regs)
		}
		// Predicate only non-channel ops (the mapper requires that anyway).
		if r.Intn(4) == 0 {
			o.Pred = r.Intn(regs)
		}
		p = append(p, o)
	}
	// An Iter op ties results to the iteration count.
	it := microcode.NewOp(microcode.Iter)
	it.Dst = r.Intn(regs)
	return append(p, it)
}

// TestIOAndFabricComputeIdentically runs the same random programs on both
// substrates (R3: the interface must not dictate the substrate) and
// compares the full register files.
func TestIOAndFabricComputeIdentically(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		prog := randProgram(r, 3+r.Intn(12))
		trips := int64(1 + r.Intn(9))
		def := &core.AccelDef{
			ID:      0,
			Program: prog,
			Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(trips))},
		}
		init := make([]float64, 8)
		for i := range init {
			init[i] = float64(r.Intn(11) - 5)
		}

		c, err := iocore.New(def, trips, nil, nil, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f, err := NewFabric(def, Grid8x8(), trips, nil, nil, nil, int64(engine.Div(1)), nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, v := range init {
			c.SetReg(i, v)
			f.SetReg(i, v)
		}
		e1 := engine.New()
		e1.Add(c, 2)
		if _, err := e1.Run(1 << 22); err != nil {
			t.Fatalf("trial %d iocore: %v", trial, err)
		}
		e2 := engine.New()
		e2.Add(f, 1)
		if _, err := e2.Run(1 << 22); err != nil {
			t.Fatalf("trial %d fabric: %v", trial, err)
		}
		for reg := 0; reg < 8; reg++ {
			a, b := c.Reg(reg), f.Reg(reg)
			if a != b && !(a != a && b != b) { // NaN == NaN for this purpose
				t.Fatalf("trial %d: r%d diverges: iocore %g vs fabric %g\nprogram:\n%s",
					trial, reg, a, b, prog)
			}
		}
	}
}

// TestWidth4MatchesWidth1Functionally checks the multi-issue in-order core
// against single issue on the same random programs.
func TestWidth4MatchesWidth1Functionally(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		prog := randProgram(r, 3+r.Intn(12))
		trips := int64(1 + r.Intn(5))
		def := &core.AccelDef{
			ID:      0,
			Program: prog,
			Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(trips))},
		}
		run := func(width int) []float64 {
			c, err := iocore.New(def, trips, nil, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			c.Width = width
			e := engine.New()
			e.Add(c, 2)
			if _, err := e.Run(1 << 22); err != nil {
				t.Fatal(err)
			}
			out := make([]float64, 8)
			for i := range out {
				out[i] = c.Reg(i)
			}
			return out
		}
		w1, w4 := run(1), run(4)
		for i := range w1 {
			if w1[i] != w4[i] && !(w1[i] != w1[i] && w4[i] != w4[i]) {
				t.Fatalf("trial %d: r%d: width1 %g vs width4 %g\n%s", trial, i, w1[i], w4[i], prog)
			}
		}
	}
}
