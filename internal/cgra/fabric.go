package cgra

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/microcode"
	"distda/internal/trace"
)

// Fabric executes one accelerator definition on a statically mapped grid:
// iterations are initiated every II fabric cycles when operands are
// available, complete Depth cycles later, and deliver their produced
// operands in order.
type Fabric struct {
	def     *core.AccelDef
	prog    microcode.Program
	mapping Mapping
	regs    [microcode.NumRegs]float64
	trips   int64 // -1: while-input
	iter    int64

	// inputs / outputs are indexed by access id: core.Validate guarantees
	// the ids are dense (0..n-1), so a slice index replaces the map lookup
	// on the per-iteration operand paths. Unwired accesses hold nil.
	inputs  []*accessunit.InPort
	outputs []*accessunit.OutPort
	// tripIn caches the while-input watched port (nil unless trips < 0 and
	// the access is wired).
	tripIn *accessunit.InPort
	random *accessunit.RandomPort
	meter  *energy.Meter

	div int64 // fabric clock divisor (base cycles per fabric cycle)

	nextStart int64
	inflight  []flight
	// consumes lists each consumed input access and its consumes per
	// iteration, in ascending access order (a slice instead of a map keeps
	// the per-initiation operand scan cheap and its order deterministic).
	consumes []consumeReq
	nprod    int // produce ops per iteration: pre-sizes each flight's outs
	lastNow  int64
	done     bool

	// Counters.
	Ops   int64
	Iters int64

	// Trace, when enabled, records one span per memory-extended iteration
	// (initiations whose latency exceeds the pipeline depth because of
	// random-access stalls) and an instant at completion. Set after
	// construction; timing is unaffected either way.
	Trace trace.Scope
	// IterHist, when non-nil, observes per-iteration initiation-to-ready
	// latencies (base cycles).
	IterHist *trace.Hist
}

type flight struct {
	ready int64
	outs  []outVal
}

type outVal struct {
	access int
	v      float64
}

// consumeReq is one input access the fabric pops from each iteration.
type consumeReq struct {
	access int
	n      int64 // operands consumed per iteration
}

// NewFabric maps def's program onto g and returns the executor. trips < 0
// selects while-input orchestration.
func NewFabric(def *core.AccelDef, g GridConfig, trips int64,
	inputs map[int]*accessunit.InPort, outputs map[int]*accessunit.OutPort,
	random *accessunit.RandomPort, div int64, meter *energy.Meter) (*Fabric, error) {
	m, err := Map(def.Program, g)
	if err != nil {
		return nil, fmt.Errorf("cgra: accel %d (%s): %w", def.ID, def.Name, err)
	}
	if div <= 0 {
		return nil, fmt.Errorf("cgra: invalid clock divisor %d", div)
	}
	n := len(def.Accesses)
	cnt := make([]int64, n)
	for oi := range def.Program {
		op := &def.Program[oi]
		switch op.Code {
		case microcode.Consume, microcode.Produce:
			if op.Access < 0 || op.Access >= n {
				return nil, fmt.Errorf("cgra: accel %d: access id %d out of range [0,%d)", def.ID, op.Access, n)
			}
			if op.Code == microcode.Consume {
				cnt[op.Access]++
			}
		}
	}
	nprod := 0
	for oi := range def.Program {
		if def.Program[oi].Code == microcode.Produce {
			nprod++
		}
	}
	f := &Fabric{
		def: def, prog: def.Program, mapping: m, trips: trips,
		inputs:  make([]*accessunit.InPort, n),
		outputs: make([]*accessunit.OutPort, n),
		random:  random,
		div:     div, meter: meter, nprod: nprod,
	}
	for id, p := range inputs {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("cgra: accel %d: input access id %d out of range [0,%d)", def.ID, id, n)
		}
		f.inputs[id] = p
	}
	for id, p := range outputs {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("cgra: accel %d: output access id %d out of range [0,%d)", def.ID, id, n)
		}
		f.outputs[id] = p
	}
	for acc, c := range cnt {
		if c == 0 {
			continue
		}
		if f.inputs[acc] == nil {
			return nil, fmt.Errorf("cgra: accel %d: access %d consumed but not wired", def.ID, acc)
		}
		f.consumes = append(f.consumes, consumeReq{access: acc, n: c})
	}
	if trips < 0 {
		if t := def.Trip.InputAccess; t >= 0 && t < n {
			f.tripIn = f.inputs[t]
		}
	}
	return f, nil
}

// Mapping returns the modulo schedule chosen for this fabric.
func (f *Fabric) Mapping() Mapping { return f.mapping }

// BusyBaseCycles returns the fabric's pipelined-initiation time in engine
// base cycles (one initiation per iteration at the fabric clock) — a
// profiling accessor, no hot-path counters.
func (f *Fabric) BusyBaseCycles() int64 { return f.Iters * f.div }

// TileOps returns the mapped operation counts per functional-unit class
// (integer, complex, float ALUs and memory ports). The mapper is analytic —
// modulo scheduling without physical placement — so per-tile attribution is
// per PE class: each mapped op occupies one PE of its class for one fabric
// cycle per iteration.
func (f *Fabric) TileOps() (intOps, cplxOps, fpOps, memOps int64) {
	for oi := range f.prog {
		op := &f.prog[oi]
		switch op.Code {
		case microcode.Consume, microcode.Produce, microcode.LoadObj, microcode.StoreObj:
			memOps++
		default:
			switch op.Class() {
			case ir.ClassInt:
				intOps++
			case ir.ClassComplex:
				cplxOps++
			case ir.ClassFloat:
				fpOps++
			}
		}
	}
	return intOps, cplxOps, fpOps, memOps
}

// SetReg initializes a register (cp_set_rf).
func (f *Fabric) SetReg(r int, v float64) { f.regs[r] = v }

// Reg reads a register (cp_load_rf). Meaningful once Done.
func (f *Fabric) Reg(r int) float64 { return f.regs[r] }

// Done reports orchestrator completion.
func (f *Fabric) Done() bool { return f.done }

func (f *Fabric) finish() {
	for _, p := range f.outputs {
		if p == nil {
			continue
		}
		if !p.Buf.Closed() {
			p.Buf.Close()
		}
	}
	f.done = true
	f.Trace.Instant("done", f.lastNow, trace.KV{K: "accel", V: int64(f.def.ID)},
		trace.KV{K: "iters", V: f.Iters}, trace.KV{K: "ops", V: f.Ops})
}

// Step advances one fabric clock edge.
func (f *Fabric) Step(now int64) bool {
	if f.done {
		return false
	}
	f.lastNow = now
	progress := false
	// Deliver the oldest completed iteration's outputs, in order.
	for len(f.inflight) > 0 && f.inflight[0].ready <= now {
		head := &f.inflight[0]
		for len(head.outs) > 0 {
			out := head.outs[0]
			p := f.outputs[out.access]
			if !p.Buf.CanPush() {
				break
			}
			p.Buf.Push(out.v)
			head.outs = head.outs[1:]
			progress = true
		}
		if len(head.outs) > 0 {
			break // back-pressure: hold delivery order
		}
		f.inflight = f.inflight[1:]
		progress = true
	}
	if len(f.inflight) > 0 && f.inflight[0].ready > now {
		progress = true // pipeline timer running
	}
	// Completion check.
	if f.trips >= 0 && f.iter >= f.trips {
		if len(f.inflight) == 0 {
			f.finish()
			return true
		}
		return progress
	}
	if f.trips < 0 {
		p := f.tripIn
		if p == nil {
			panic(fmt.Sprintf("cgra: accel %d: while-input access not wired", f.def.ID))
		}
		if p.Buf.Drained(p.Reader) && len(f.inflight) == 0 {
			f.finish()
			return true
		}
	}
	// Initiate a new iteration when the schedule and operands allow.
	if now < f.nextStart {
		return true
	}
	for _, cr := range f.consumes {
		p := f.inputs[cr.access]
		if p.Buf.Level(p.Reader) < cr.n {
			if p.Buf.Drained(p.Reader) && f.trips < 0 {
				return progress // will terminate on the drained check above
			}
			return progress // waiting on operands
		}
	}
	f.startIteration(now)
	return true
}

// NextEvent implements engine.Hinter: the fabric's next effect is the
// earlier of the head in-flight iteration's completion and the next
// initiation slot — immediate when a delivery, a completion check, or an
// operand-ready initiation can happen now, Never when it is blocked on
// operand arrival or on output back-pressure with nothing in the
// pipeline about to mature.
func (f *Fabric) NextEvent(now int64) int64 {
	if f.done {
		return 0
	}
	lb := engine.Never
	if len(f.inflight) > 0 {
		head := &f.inflight[0]
		if head.ready > now {
			lb = head.ready // pipeline timer: delivery matures then
		} else if len(head.outs) == 0 || f.outputs[head.outs[0].access].Buf.CanPush() {
			return 0 // can deliver (or pop the completed flight) now
		}
		// else: delivery blocked on the consumer; initiation may still go.
	} else {
		if f.trips >= 0 && f.iter >= f.trips {
			return 0 // counted trips done, pipeline empty: will finish
		}
		if f.trips < 0 {
			if p := f.tripIn; p != nil && p.Buf.Drained(p.Reader) {
				return 0 // watched input drained, pipeline empty: will finish
			}
		}
	}
	if f.trips >= 0 && f.iter >= f.trips {
		return lb // no more initiations: only delivery events remain
	}
	if now < f.nextStart {
		if f.nextStart < lb {
			lb = f.nextStart // II schedule: next initiation slot
		}
		return lb
	}
	for _, cr := range f.consumes {
		p := f.inputs[cr.access]
		if p.Buf.Level(p.Reader) < cr.n {
			return lb // waiting on operands (or drained: caught above next edge)
		}
	}
	return 0 // can initiate now
}

// startIteration functionally executes one iteration and schedules its
// completion Depth fabric cycles (plus random-access latency) later.
func (f *Fabric) startIteration(now int64) {
	var outs []outVal
	if f.nprod > 0 {
		outs = make([]outVal, 0, f.nprod)
	}
	extraLat := int64(0)
	for oi := range f.prog {
		op := &f.prog[oi]
		if op.Pred >= 0 && f.regs[op.Pred] == 0 {
			continue // predicated off (channel ops are never predicated)
		}
		f.countOp(op)
		switch op.Code {
		case microcode.Nop:
		case microcode.Consume:
			p := f.inputs[op.Access]
			f.regs[op.Dst] = p.Buf.Pop(p.Reader)
		case microcode.Produce:
			outs = append(outs, outVal{access: op.Access, v: f.regs[op.A]})
		case microcode.LoadObj:
			v, lat, err := f.random.Load(op.Obj, int64(f.regs[op.A]))
			if err != nil {
				panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
			}
			f.regs[op.Dst] = v
			extraLat += int64(lat)
		case microcode.StoreObj:
			lat, err := f.random.Store(op.Obj, int64(f.regs[op.A]), f.regs[op.B])
			if err != nil {
				panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
			}
			if lat > 8 {
				lat = 8 // posted write occupancy
			}
			extraLat += int64(lat)
		case microcode.ALU:
			f.regs[op.Dst] = f.apply(op.Bin, f.regs[op.A], f.regs[op.B])
		case microcode.ALUI:
			f.regs[op.Dst] = f.apply(op.Bin, f.regs[op.A], op.Imm)
		case microcode.Un:
			f.regs[op.Dst] = ir.ApplyUn(op.UnOp, f.regs[op.A])
		case microcode.SelOp:
			if f.regs[op.C] != 0 {
				f.regs[op.Dst] = f.regs[op.A]
			} else {
				f.regs[op.Dst] = f.regs[op.B]
			}
		case microcode.MovI:
			f.regs[op.Dst] = op.Imm
		case microcode.Mov:
			f.regs[op.Dst] = f.regs[op.A]
		case microcode.Iter:
			f.regs[op.Dst] = float64(f.iter)
		default:
			panic(fmt.Sprintf("cgra: accel %d: bad opcode %v", f.def.ID, op.Code))
		}
	}
	ready := now + int64(f.mapping.Depth)*f.div + extraLat
	if n := len(f.inflight); n > 0 && ready < f.inflight[n-1].ready {
		ready = f.inflight[n-1].ready // in-order completion
	}
	if extraLat > 0 {
		f.Trace.Span("mem-stall", now, extraLat, trace.KV{K: "accel", V: int64(f.def.ID)})
	}
	f.IterHist.Observe(float64(ready - now))
	f.inflight = append(f.inflight, flight{ready: ready, outs: outs})
	if f.mapping.MemSerial {
		f.nextStart = ready // pointer chase: no iteration overlap
	} else {
		f.nextStart = now + int64(f.mapping.II)*f.div
	}
	f.iter++
	f.Iters++
}

func (f *Fabric) countOp(op *microcode.Op) {
	f.Ops++
	if f.meter != nil {
		t := &f.meter.Table // by pointer: the table is ~17 words, copied per op otherwise
		e := t.CGRAOpPJ
		switch op.Class() {
		case ir.ClassInt:
			e += t.IntOpPJ
		case ir.ClassComplex:
			e += t.ComplexOpPJ
		case ir.ClassFloat:
			e += t.FloatOpPJ
		}
		f.meter.Add(energy.CatAccel, e)
	}
}

func (f *Fabric) apply(op ir.BinOp, a, b float64) float64 {
	v, err := ir.ApplyBin(op, a, b)
	if err != nil {
		panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
	}
	return v
}
