package cgra

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/ir"
	"distda/internal/microcode"
)

// Fabric executes one accelerator definition on a statically mapped grid:
// iterations are initiated every II fabric cycles when operands are
// available, complete Depth cycles later, and deliver their produced
// operands in order.
type Fabric struct {
	def     *core.AccelDef
	prog    microcode.Program
	mapping Mapping
	regs    [microcode.NumRegs]float64
	trips   int64 // -1: while-input
	iter    int64

	inputs  map[int]*accessunit.InPort
	outputs map[int]*accessunit.OutPort
	random  *accessunit.RandomPort
	meter   *energy.Meter

	div int64 // fabric clock divisor (base cycles per fabric cycle)

	nextStart int64
	inflight  []flight
	consumes  map[int]int // per input access-id: consumes per iteration
	done      bool

	// Counters.
	Ops   int64
	Iters int64
}

type flight struct {
	ready int64
	outs  []outVal
}

type outVal struct {
	access int
	v      float64
}

// NewFabric maps def's program onto g and returns the executor. trips < 0
// selects while-input orchestration.
func NewFabric(def *core.AccelDef, g GridConfig, trips int64,
	inputs map[int]*accessunit.InPort, outputs map[int]*accessunit.OutPort,
	random *accessunit.RandomPort, div int64, meter *energy.Meter) (*Fabric, error) {
	m, err := Map(def.Program, g)
	if err != nil {
		return nil, fmt.Errorf("cgra: accel %d (%s): %w", def.ID, def.Name, err)
	}
	if div <= 0 {
		return nil, fmt.Errorf("cgra: invalid clock divisor %d", div)
	}
	consumes := map[int]int{}
	for _, op := range def.Program {
		if op.Code == microcode.Consume {
			consumes[op.Access]++
		}
	}
	for acc := range consumes {
		if _, ok := inputs[acc]; !ok {
			return nil, fmt.Errorf("cgra: accel %d: access %d consumed but not wired", def.ID, acc)
		}
	}
	return &Fabric{
		def: def, prog: def.Program, mapping: m, trips: trips,
		inputs: inputs, outputs: outputs, random: random,
		div: div, meter: meter, consumes: consumes,
	}, nil
}

// Mapping returns the modulo schedule chosen for this fabric.
func (f *Fabric) Mapping() Mapping { return f.mapping }

// SetReg initializes a register (cp_set_rf).
func (f *Fabric) SetReg(r int, v float64) { f.regs[r] = v }

// Reg reads a register (cp_load_rf). Meaningful once Done.
func (f *Fabric) Reg(r int) float64 { return f.regs[r] }

// Done reports orchestrator completion.
func (f *Fabric) Done() bool { return f.done }

func (f *Fabric) finish() {
	for _, p := range f.outputs {
		if !p.Buf.Closed() {
			p.Buf.Close()
		}
	}
	f.done = true
}

// Step advances one fabric clock edge.
func (f *Fabric) Step(now int64) bool {
	if f.done {
		return false
	}
	progress := false
	// Deliver the oldest completed iteration's outputs, in order.
	for len(f.inflight) > 0 && f.inflight[0].ready <= now {
		head := &f.inflight[0]
		for len(head.outs) > 0 {
			out := head.outs[0]
			p := f.outputs[out.access]
			if !p.Buf.CanPush() {
				break
			}
			p.Buf.Push(out.v)
			head.outs = head.outs[1:]
			progress = true
		}
		if len(head.outs) > 0 {
			break // back-pressure: hold delivery order
		}
		f.inflight = f.inflight[1:]
		progress = true
	}
	if len(f.inflight) > 0 && f.inflight[0].ready > now {
		progress = true // pipeline timer running
	}
	// Completion check.
	if f.trips >= 0 && f.iter >= f.trips {
		if len(f.inflight) == 0 {
			f.finish()
			return true
		}
		return progress
	}
	if f.trips < 0 {
		p := f.inputs[f.def.Trip.InputAccess]
		if p == nil {
			panic(fmt.Sprintf("cgra: accel %d: while-input access not wired", f.def.ID))
		}
		if p.Buf.Drained(p.Reader) && len(f.inflight) == 0 {
			f.finish()
			return true
		}
	}
	// Initiate a new iteration when the schedule and operands allow.
	if now < f.nextStart {
		return true
	}
	for acc, n := range f.consumes {
		p := f.inputs[acc]
		if p.Buf.Level(p.Reader) < int64(n) {
			if p.Buf.Drained(p.Reader) && f.trips < 0 {
				return progress // will terminate on the drained check above
			}
			return progress // waiting on operands
		}
	}
	f.startIteration(now)
	return true
}

// startIteration functionally executes one iteration and schedules its
// completion Depth fabric cycles (plus random-access latency) later.
func (f *Fabric) startIteration(now int64) {
	var outs []outVal
	extraLat := int64(0)
	for _, op := range f.prog {
		if op.Pred >= 0 && f.regs[op.Pred] == 0 {
			continue // predicated off (channel ops are never predicated)
		}
		f.countOp(op)
		switch op.Code {
		case microcode.Nop:
		case microcode.Consume:
			p := f.inputs[op.Access]
			f.regs[op.Dst] = p.Buf.Pop(p.Reader)
		case microcode.Produce:
			outs = append(outs, outVal{access: op.Access, v: f.regs[op.A]})
		case microcode.LoadObj:
			v, lat, err := f.random.Load(op.Obj, int64(f.regs[op.A]))
			if err != nil {
				panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
			}
			f.regs[op.Dst] = v
			extraLat += int64(lat)
		case microcode.StoreObj:
			lat, err := f.random.Store(op.Obj, int64(f.regs[op.A]), f.regs[op.B])
			if err != nil {
				panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
			}
			if lat > 8 {
				lat = 8 // posted write occupancy
			}
			extraLat += int64(lat)
		case microcode.ALU:
			f.regs[op.Dst] = f.apply(op.Bin, f.regs[op.A], f.regs[op.B])
		case microcode.ALUI:
			f.regs[op.Dst] = f.apply(op.Bin, f.regs[op.A], op.Imm)
		case microcode.Un:
			f.regs[op.Dst] = ir.ApplyUn(op.UnOp, f.regs[op.A])
		case microcode.SelOp:
			if f.regs[op.C] != 0 {
				f.regs[op.Dst] = f.regs[op.A]
			} else {
				f.regs[op.Dst] = f.regs[op.B]
			}
		case microcode.MovI:
			f.regs[op.Dst] = op.Imm
		case microcode.Mov:
			f.regs[op.Dst] = f.regs[op.A]
		case microcode.Iter:
			f.regs[op.Dst] = float64(f.iter)
		default:
			panic(fmt.Sprintf("cgra: accel %d: bad opcode %v", f.def.ID, op.Code))
		}
	}
	ready := now + int64(f.mapping.Depth)*f.div + extraLat
	if n := len(f.inflight); n > 0 && ready < f.inflight[n-1].ready {
		ready = f.inflight[n-1].ready // in-order completion
	}
	f.inflight = append(f.inflight, flight{ready: ready, outs: outs})
	if f.mapping.MemSerial {
		f.nextStart = ready // pointer chase: no iteration overlap
	} else {
		f.nextStart = now + int64(f.mapping.II)*f.div
	}
	f.iter++
	f.Iters++
}

func (f *Fabric) countOp(op microcode.Op) {
	f.Ops++
	if f.meter != nil {
		t := f.meter.Table
		e := t.CGRAOpPJ
		switch op.Class() {
		case ir.ClassInt:
			e += t.IntOpPJ
		case ir.ClassComplex:
			e += t.ComplexOpPJ
		case ir.ClassFloat:
			e += t.FloatOpPJ
		}
		f.meter.Add(energy.CatAccel, e)
	}
}

func (f *Fabric) apply(op ir.BinOp, a, b float64) float64 {
	v, err := ir.ApplyBin(op, a, b)
	if err != nil {
		panic(fmt.Sprintf("cgra: accel %d: %v", f.def.ID, err))
	}
	return v
}
