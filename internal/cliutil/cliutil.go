// Package cliutil holds the flag handling, name resolution and exit-code
// conventions shared by the distda command-line tools, so the three cmds
// parse scales, workloads, configurations and observability flags
// identically.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"distda/internal/artifact"
	"distda/internal/sim"
	"distda/internal/trace"
	"distda/internal/workloads"
)

// Process exit codes shared by the distda tools.
const (
	// ExitOK: success.
	ExitOK = 0
	// ExitError: a simulation, compilation or I/O error.
	ExitError = 1
	// ExitUsage: bad flags or arguments.
	ExitUsage = 2
	// ExitDegraded: the run completed but one or more matrix cells timed
	// out and rendered as n/a (see exp.Options.CellTimeout). Distinct from
	// ExitError so harnesses can accept partial tables deliberately.
	ExitDegraded = 3
)

// ParseScale resolves a -scale flag value.
func ParseScale(name string) (workloads.Scale, error) {
	switch name {
	case "test":
		return workloads.ScaleTest, nil
	case "bench":
		return workloads.ScaleBench, nil
	case "paper":
		return workloads.ScalePaper, nil
	default:
		return 0, fmt.Errorf("unknown scale %q (want test, bench or paper)", name)
	}
}

// LookupWorkload resolves a workload by name, including the case-study and
// multithreaded variants that workloads.ByName does not serve.
func LookupWorkload(name string, scale workloads.Scale) (*workloads.Workload, error) {
	switch name {
	case "spmv":
		return workloads.SpMV(scale), nil
	case "bfs-mt":
		return workloads.BFSMT(scale), nil
	case "pathfinder-mt":
		return workloads.PathfinderMT(scale), nil
	default:
		return workloads.ByName(name, scale)
	}
}

// LookupConfig resolves a configuration by name, case-insensitively
// ("dist-da-io" selects Dist-DA-IO). The named sim constructors are the
// only source of configurations here — no Config is assembled by hand.
func LookupConfig(name string) (sim.Config, error) {
	all := sim.AllPaperConfigs()
	all = append(all, sim.DistDAIOSW(), sim.DistDAFA(), sim.DistDAOffChip(), sim.DistDAPIM())
	for _, c := range all {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	var zero sim.Config
	return zero, fmt.Errorf("unknown configuration %q (want OoO, Mono-CA, Mono-DA-IO, Mono-DA-F, Dist-DA-IO, Dist-DA-F, Dist-DA-IO+SW, Dist-DA-F+A, Dist-DA-OffChip or Dist-DA-PIM)", name)
}

// StringList is a repeatable string flag (flag.Value).
type StringList []string

// String implements flag.Value.
func (l *StringList) String() string { return fmt.Sprint(*l) }

// Set implements flag.Value by appending.
func (l *StringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// OpenCache returns the artifact cache for a -cache-dir flag value: a
// disk-backed cache under dir, or a process-private in-memory cache when
// dir is empty.
func OpenCache(dir string) *artifact.Cache {
	return artifact.New(artifact.Config{Dir: dir})
}

// WriteTrace exports the tracer to path as Chrome trace_event JSON.
func WriteTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
