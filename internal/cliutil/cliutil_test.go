package cliutil

import (
	"flag"
	"strings"
	"testing"

	"distda/internal/workloads"
)

func TestParseScale(t *testing.T) {
	for name, want := range map[string]workloads.Scale{
		"test":  workloads.ScaleTest,
		"bench": workloads.ScaleBench,
		"paper": workloads.ScalePaper,
	} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("ParseScale accepted an unknown scale")
	}
}

func TestLookupWorkload(t *testing.T) {
	for _, name := range []string{"fdtd-2d", "bfs", "spmv", "bfs-mt", "pathfinder-mt"} {
		w, err := LookupWorkload(name, workloads.ScaleTest)
		if err != nil || w == nil {
			t.Errorf("LookupWorkload(%q) failed: %v", name, err)
		}
	}
	if _, err := LookupWorkload("nope", workloads.ScaleTest); err == nil {
		t.Error("LookupWorkload accepted an unknown name")
	}
}

func TestLookupConfigCaseInsensitive(t *testing.T) {
	for in, want := range map[string]string{
		"ooo":             "OoO",
		"dist-da-io":      "Dist-DA-IO",
		"DIST-DA-F":       "Dist-DA-F",
		"mono-ca":         "Mono-CA",
		"dist-da-io+sw":   "Dist-DA-IO+SW",
		"dist-da-offchip": "Dist-DA-OffChip",
		"dist-da-pim":     "Dist-DA-PIM",
	} {
		c, err := LookupConfig(in)
		if err != nil {
			t.Errorf("LookupConfig(%q): %v", in, err)
			continue
		}
		if c.Name != want {
			t.Errorf("LookupConfig(%q) = %q, want %q", in, c.Name, want)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("LookupConfig(%q) returned an invalid config: %v", in, err)
		}
	}
	if _, err := LookupConfig("warp-drive"); err == nil {
		t.Error("LookupConfig accepted an unknown name")
	}
}

func TestStringListFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var figs StringList
	fs.Var(&figs, "fig", "")
	if err := fs.Parse([]string{"-fig", "7", "-fig", "11b"}); err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 || figs[0] != "7" || figs[1] != "11b" {
		t.Errorf("figs = %v", figs)
	}
	if s := figs.String(); !strings.Contains(s, "11b") {
		t.Errorf("String() = %q", s)
	}
}

func TestOpenCache(t *testing.T) {
	if OpenCache("") == nil || OpenCache(t.TempDir()) == nil {
		t.Fatal("OpenCache returned nil")
	}
}
