package cliutil

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"distda/internal/obs"
	"distda/internal/profile"
)

// Introspection is a running -http live introspection endpoint. It wraps
// the bound listener and server so callers can both discover the resolved
// address (":0" binds a real port) and stop the server cleanly — CLIs shut
// it down on exit and the distda-serve job server drains it together with
// the job API during graceful shutdown.
type Introspection struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound address ("host:port"). Safe on nil.
func (s *Introspection) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Shutdown stops the introspection server gracefully: the listener closes
// immediately and in-flight requests get until ctx's deadline to finish.
// Safe on nil and after a previous shutdown.
func (s *Introspection) Shutdown(ctx context.Context) error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// ServeIntrospection starts the -http live introspection endpoint for long
// runs on addr (e.g. "localhost:6060") and returns a handle exposing the
// bound address and graceful Shutdown.
//
// Routes (all on a private mux — this does not touch http.DefaultServeMux):
//
//	/progress        JSON progress/ETA view fed by matrix cell completions
//	/metrics         Prometheus text exposition of the wall-clock registry
//	/debug/vars      expvar (Go runtime counters + published vars)
//	/debug/pprof/*   net/http/pprof handlers for the host process
//
// prog may be nil (the /progress route then serves the zero snapshot —
// useful for single-run tools that only want pprof/expvar). reg may be
// nil (/metrics then serves an empty but valid exposition).
func ServeIntrospection(addr string, prog *profile.Progress, reg *obs.Registry) (*Introspection, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cliutil: -http listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewIntrospectionMux(prog, reg)}
	go func() {
		// Serve returns http.ErrServerClosed after Shutdown; anything else
		// is shutdown noise on a process that is exiting anyway.
		_ = srv.Serve(ln)
	}()
	return &Introspection{srv: srv, addr: ln.Addr().String()}, nil
}

// NewIntrospectionMux builds the introspection routes without binding a
// listener (ServeIntrospection's testable core; distda-serve mounts the
// same mux under its job API).
func NewIntrospectionMux(prog *profile.Progress, reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(prog.Snapshot()) // nil-safe: zero snapshot
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		_ = reg.WritePrometheus(w) // nil-safe: empty exposition
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
