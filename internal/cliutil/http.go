package cliutil

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"distda/internal/profile"
)

// ServeIntrospection starts the -http live introspection endpoint for long
// runs on addr (e.g. "localhost:6060") and returns the bound address (the
// listener resolves ":0" to a real port). The server runs until the process
// exits — runs are short-lived processes, so there is no graceful-shutdown
// plumbing.
//
// Routes (all on a private mux — this does not touch http.DefaultServeMux):
//
//	/progress        JSON progress/ETA view fed by matrix cell completions
//	/debug/vars      expvar (Go runtime counters + published vars)
//	/debug/pprof/*   net/http/pprof handlers for the host process
//
// prog may be nil (the /progress route then serves the zero snapshot —
// useful for single-run tools that only want pprof/expvar).
func ServeIntrospection(addr string, prog *profile.Progress) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("cliutil: -http listen %s: %w", addr, err)
	}
	mux := NewIntrospectionMux(prog)
	go func() {
		// The listener lives for the process; serve errors after that are
		// shutdown noise, not actionable.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}

// NewIntrospectionMux builds the introspection routes without binding a
// listener (ServeIntrospection's testable core).
func NewIntrospectionMux(prog *profile.Progress) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(prog.Snapshot()) // nil-safe: zero snapshot
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
