package cliutil

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distda/internal/obs"
	"distda/internal/profile"
)

func TestIntrospectionMuxProgress(t *testing.T) {
	prog := profile.NewProgress(4)
	prog.Record(profile.CellStatus{Workload: "fdtd-2d", Config: "Dist-DA-F", Dur: 2 * time.Second})
	srv := httptest.NewServer(NewIntrospectionMux(prog, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s profile.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Total != 4 || s.Done != 1 || s.Last.Workload != "fdtd-2d" {
		t.Errorf("snapshot = %+v", s)
	}

	// The nil-progress mux (single-run tools) serves the zero snapshot
	// rather than erroring.
	nilSrv := httptest.NewServer(NewIntrospectionMux(nil, nil))
	defer nilSrv.Close()
	resp2, err := http.Get(nilSrv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var z profile.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if z != (profile.Snapshot{}) {
		t.Errorf("nil-progress snapshot = %+v", z)
	}
}

func TestIntrospectionMuxMetrics(t *testing.T) {
	reg := obs.New()
	reg.Counter("distda_demo_total", "Demo counter.").With().Add(3)
	srv := httptest.NewServer(NewIntrospectionMux(nil, reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type = %q", ct)
	}
	vals, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if vals["distda_demo_total"] != 3 {
		t.Errorf("distda_demo_total = %v, want 3", vals["distda_demo_total"])
	}

	// Nil registry: empty but valid exposition, not an error.
	nilSrv := httptest.NewServer(NewIntrospectionMux(nil, nil))
	defer nilSrv.Close()
	resp2, err := http.Get(nilSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("nil-registry /metrics status = %d", resp2.StatusCode)
	}
	if vals, err := obs.ParseText(resp2.Body); err != nil || len(vals) != 0 {
		t.Errorf("nil-registry exposition = %v, %v", vals, err)
	}
}

func TestIntrospectionMuxDebugRoutes(t *testing.T) {
	srv := httptest.NewServer(NewIntrospectionMux(nil, nil))
	defer srv.Close()
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

func TestServeIntrospectionBindsEphemeralPort(t *testing.T) {
	intro, err := ServeIntrospection("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bound := intro.Addr()
	if !strings.HasPrefix(bound, "127.0.0.1:") || strings.HasSuffix(bound, ":0") {
		t.Fatalf("bound address = %q, want resolved 127.0.0.1 port", bound)
	}
	resp, err := http.Get("http://" + bound + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}

	// Graceful shutdown: the listener closes and further requests fail; a
	// second Shutdown (and a nil handle) are no-ops.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := intro.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + bound + "/progress"); err == nil {
		t.Error("request after Shutdown succeeded, want connection error")
	}
	if err := intro.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	var nilIntro *Introspection
	if err := nilIntro.Shutdown(ctx); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
	if nilIntro.Addr() != "" {
		t.Errorf("nil Addr = %q", nilIntro.Addr())
	}
}

func TestWriteStatsAndFolded(t *testing.T) {
	p := profile.New()
	p.AddRun(100)
	r := p.Region("k", "r0")
	r.AddLaunch(1, 2, 3, 4)
	dir := t.TempDir()

	statsPath := filepath.Join(dir, "stats.txt")
	if err := WriteStats(p, statsPath); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Begin Simulation Statistics") {
		t.Errorf("stats file missing header:\n%s", b)
	}

	foldedPath := filepath.Join(dir, "folded.txt")
	if err := WriteFolded(p, foldedPath); err != nil {
		t.Fatal(err)
	}
	f, err := os.ReadFile(foldedPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(f), "k;r0;[queue] 2") {
		t.Errorf("folded file missing stack:\n%s", f)
	}
}
