package cliutil

import (
	"os"

	"distda/internal/profile"
)

// WriteStats exports the profiler's gem5-style stats dump to path.
func WriteStats(p *profile.Profiler, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteStats(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFolded exports the profiler's folded stacks (FlameGraph/speedscope
// input) to path.
func WriteFolded(p *profile.Profiler, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteFolded(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
