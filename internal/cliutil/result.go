package cliutil

import (
	"fmt"
	"io"
	"sort"

	"distda/internal/core"
	"distda/internal/sim"
)

// FprintResult writes the human-readable single-run result report — cycles,
// energy breakdown, traffic categories, interface mechanism usage and
// validation status. It is the one renderer for single-run output: both
// distda-run and the distda-serve job server print through it, so a served
// "run" job's result is byte-identical to the equivalent distda-run stdout.
func FprintResult(w io.Writer, r *sim.Result) {
	fmt.Fprintf(w, "workload      %s\n", r.Workload)
	fmt.Fprintf(w, "config        %s\n", r.Config)
	fmt.Fprintf(w, "validated     %v\n", r.Validated)
	fmt.Fprintf(w, "cycles        %d (2 GHz host clock)\n", r.Cycles)
	fmt.Fprintf(w, "instructions  %d host + %d accel, IPC %.2f\n", r.HostInstr, r.AccelOps, r.IPC())
	fmt.Fprintf(w, "mem ops       %d (%.3f per cycle)\n", r.MemOps, r.MemOpRate())
	fmt.Fprintf(w, "energy        %.3f uJ\n", r.EnergyPJ/1e6)
	cats := make([]string, 0, len(r.EnergyByCat))
	for c := range r.EnergyByCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Fprintf(w, "  %-10s  %10.3f uJ\n", c, r.EnergyByCat[c]/1e6)
	}
	fmt.Fprintf(w, "cache acc     L1 %d, L2 %d, L3 %d, DRAM %d\n", r.CacheL1, r.CacheL2, r.CacheL3, r.DRAM)
	fmt.Fprintf(w, "data moved    %d bytes\n", r.DataMovedBytes)
	fmt.Fprintf(w, "accel traffic intra %d, D-A %d, A-A %d bytes\n", r.IntraBytes, r.DABytes, r.AABytes)
	fmt.Fprintf(w, "NoC bytes     ctrl %d, data %d, acc_ctrl %d, acc_data %d\n",
		r.NoCBytes["ctrl"], r.NoCBytes["data"], r.NoCBytes["acc_ctrl"], r.NoCBytes["acc_data"])
	if r.Launches > 0 {
		fmt.Fprintf(w, "offloads      %d launches, %.1f buffers avg, %%init %.2f\n",
			r.Launches, r.AvgBuffers, r.InitOverheadPct())
		fmt.Fprintf(w, "mechanisms   ")
		for _, in := range core.Intrinsics() {
			if r.MMIO.Used(in) {
				fmt.Fprintf(w, " %s", in)
			}
		}
		fmt.Fprintln(w)
	}
}
