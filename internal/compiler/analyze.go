// Package compiler implements the paper's compilation flow (§V, Fig. 6):
// innermost loops are abstracted as DFGs of memory-object / access / compute
// nodes, classified via affine (scalar-evolution) analysis, partitioned to
// minimize communication under the ≤1-object-per-partition goal, placed, and
// emitted as distributed accelerator definitions with interface intrinsics.
package compiler

import (
	"fmt"

	"distda/internal/ir"
)

// vkind discriminates value-graph nodes.
type vkind int

const (
	vScalarIn    vkind = iota // loop-invariant input, cp_set_rf at launch
	vConst                    // immediate
	vIter                     // innermost induction variable value (lo + iter)
	vOp                       // binary op
	vUn                       // unary op
	vSel                      // select
	vLoadStream               // affine load: consume from a stream-in buffer
	vLoadRandom               // indirect load: cp_read
	vStoreStream              // affine unpredicated store: produce to stream-out
	vStoreRandom              // indirect or predicated store: cp_write
	vCarried                  // loop-carried local (register recurrence seed)
	vForward                  // store-to-load forwarded value (distance 1)
)

func (k vkind) String() string {
	names := [...]string{"scalar", "const", "iter", "op", "un", "sel",
		"load.stream", "load.random", "store.stream", "store.random", "carried", "forward"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("vkind(%d)", int(k))
}

// vnode is one value-graph node. args carry dataflow inputs; stores also use
// val/idx/pred; carried/forward nodes get a next-value back edge.
type vnode struct {
	id   int
	kind vkind

	expr ir.Expr   // vScalarIn: launch-time expression; vConst unused
	cval float64   // vConst
	op   ir.BinOp  // vOp
	un   ir.UnOp   // vUn
	args []*vnode  // vOp/vUn/vSel inputs (Sel: cond,t,f)
	obj  string    // loads/stores
	aff  ir.Affine // stream accesses: affine wrt innermost IV
	idx  *vnode    // random accesses: index value
	val  *vnode    // stores: stored value
	pred *vnode    // predicated stores

	// vCarried / vForward.
	localName string  // carried local's host name ("" for forwards)
	init      ir.Expr // launch-time initial value
	next      *vnode  // value that becomes this node at the next iteration
}

// region is the analyzed form of one innermost loop.
type region struct {
	loop  *ir.For
	class regionClass
	why   string // for not-offloaded: the reason
	nodes []*vnode
	// stores in statement order (for memory-order edges).
	sideEffects []*vnode
	// trip count expression: max(0, hi-lo) with step 1.
	trips ir.Expr
	// lo expression for iv reconstruction.
	lo ir.Expr
	// carried locals in discovery order (for ScalarInit/Out emission).
	carried []*vnode
	// folded: the epilogue store was absorbed into the offload.
	folded bool
}

type regionClass int

const (
	classParallelizable regionClass = iota
	classPipelinable
	classNotOffloaded
)

// analyzer walks one innermost loop body symbolically.
type analyzer struct {
	k     *ir.Kernel
	loop  *ir.For
	reg   *region
	env   map[string]*vnode // local name -> current value node
	preds []*vnode          // predicate stack (if-conversion)
	memo  map[string]*vnode // CSE over pure nodes
	// invariantDefs: locals defined before the loop usable in affine offsets
	// — conservatively empty inside the loop (locals defined in-body are not
	// loop-invariant).
	outerLocals map[string]bool
	noStreams   bool
	fail        string
}

// analyzeLoop builds the value graph of one innermost loop. outerLocals
// names host locals defined before the loop (their values are launch
// constants). Returns a region; class records offloadability.
func analyzeLoop(k *ir.Kernel, loop *ir.For, outerLocals map[string]bool, noStreams bool, epilogue *ir.Store) *region {
	a := &analyzer{
		k: k, loop: loop,
		reg:         &region{loop: loop},
		env:         map[string]*vnode{},
		memo:        map[string]*vnode{},
		outerLocals: outerLocals,
		noStreams:   noStreams,
	}
	// Step must be the unit constant for stream configuration.
	if st, ok := loop.Step.(ir.Const); !ok || st.V != 1 {
		return a.reject("non-unit loop step")
	}
	a.reg.lo = loop.Lo
	a.reg.trips = ir.MaxE(ir.C(0), ir.SubE(loop.Hi, loop.Lo))
	a.stmts(loop.Body)
	if a.fail != "" {
		return a.reject(a.fail)
	}
	a.resolveCarried()
	if a.fail != "" {
		return a.reject(a.fail)
	}
	a.forwardStores()
	if a.fail != "" {
		return a.reject(a.fail)
	}
	if epilogue != nil {
		a.foldEpilogue(epilogue)
	}
	a.classify()
	return a.reg
}

// foldEpilogue absorbs the store following the loop into the offload: on
// the last iteration the accelerator writes f(final reduction value)
// directly (the paper's dataflow epilogue — A2 updating C in Fig. 1d).
// This removes the host's cp_load_rf synchronization. The fold is abandoned
// (without failing the region) when the expressions are not representable
// or the target object aliases a streamed one.
func (a *analyzer) foldEpilogue(st *ir.Store) {
	mark := len(a.reg.nodes)
	sideMark := len(a.reg.sideEffects)
	ok := func() bool {
		// The target object must not be stream-accessed by the region
		// (single serializing point per object).
		for _, n := range a.reg.nodes {
			if (n.kind == vLoadStream || n.kind == vStoreStream) && n.obj == st.Obj {
				return false
			}
		}
		idx := a.eval(st.Idx)
		val := a.eval(st.Val)
		if a.fail != "" {
			return false
		}
		// The store executes on the last iteration, where every in-body
		// value equals its post-loop value. The only unsound inputs are
		// launch-time scalar loads (evaluated by the host before the loop)
		// of objects the region itself writes — their post-loop values
		// would differ.
		written := map[string]bool{st.Obj: true}
		for _, n := range a.reg.nodes {
			if n.kind == vStoreStream || n.kind == vStoreRandom {
				written[n.obj] = true
			}
		}
		unsafe := false
		var scan func(n *vnode, seen map[*vnode]bool)
		scan = func(n *vnode, seen map[*vnode]bool) {
			if n == nil || seen[n] || unsafe {
				return
			}
			seen[n] = true
			if n.kind == vScalarIn && n.expr != nil {
				ir.WalkExpr(n.expr, func(e ir.Expr) {
					if ld, ok := e.(ir.Load); ok && written[ld.Obj] {
						unsafe = true
					}
				})
			}
			for _, d := range append(append([]*vnode{}, n.args...), n.idx, n.val, n.pred, n.next) {
				scan(d, seen)
			}
		}
		seen := map[*vnode]bool{}
		scan(idx, seen)
		scan(val, seen)
		if unsafe {
			return false
		}
		iter := a.cse("iter", func() *vnode { return a.node(&vnode{kind: vIter}) })
		last := a.cse("lastiter", func() *vnode {
			return a.node(&vnode{kind: vScalarIn, expr: ir.SubE(ir.AddE(a.reg.lo, a.reg.trips), ir.C(1))})
		})
		pred := a.node(&vnode{kind: vOp, op: ir.Eq, args: []*vnode{iter, last}})
		n := a.node(&vnode{kind: vStoreRandom, obj: st.Obj, idx: idx, val: val, pred: pred})
		a.reg.sideEffects = append(a.reg.sideEffects, n)
		return true
	}()
	if !ok {
		a.fail = ""
		a.reg.nodes = a.reg.nodes[:mark]
		a.reg.sideEffects = a.reg.sideEffects[:sideMark]
		return
	}
	a.reg.folded = true
}

func (a *analyzer) reject(why string) *region {
	a.reg.class = classNotOffloaded
	a.reg.why = why
	return a.reg
}

func (a *analyzer) node(n *vnode) *vnode {
	n.id = len(a.reg.nodes)
	a.reg.nodes = append(a.reg.nodes, n)
	return n
}

// cse returns a memoized node for pure values.
func (a *analyzer) cse(key string, mk func() *vnode) *vnode {
	if n, ok := a.memo[key]; ok {
		return n
	}
	n := mk()
	a.memo[key] = n
	return n
}

func (a *analyzer) curPred() *vnode {
	if len(a.preds) == 0 {
		return nil
	}
	return a.preds[len(a.preds)-1]
}

func (a *analyzer) stmts(body []ir.Stmt) {
	for _, s := range body {
		if a.fail != "" {
			return
		}
		switch x := s.(type) {
		case ir.Let:
			v := a.eval(x.E)
			if a.fail != "" {
				return
			}
			if p := a.curPred(); p != nil {
				// Predicated definition: merge with the prior value. A local
				// first defined under this predicate is live only on the
				// predicated path (the kernel validator enforces that), so it
				// binds directly; downstream uses carry the same predicate.
				if old, ok := a.env[x.Name]; ok {
					v = a.node(&vnode{kind: vSel, args: []*vnode{p, v, old}})
				} else if a.outerLocals[x.Name] {
					old = a.hostLocalOrFail(x.Name)
					if a.fail != "" {
						return
					}
					v = a.node(&vnode{kind: vSel, args: []*vnode{p, v, old}})
				}
			}
			a.env[x.Name] = v
		case ir.Store:
			a.store(x)
		case ir.If:
			cond := a.eval(x.Cond)
			if a.fail != "" {
				return
			}
			thenPred := a.andPred(cond)
			a.preds = append(a.preds, thenPred)
			a.stmts(x.Then)
			a.preds = a.preds[:len(a.preds)-1]
			if a.fail != "" {
				return
			}
			if len(x.Else) > 0 {
				notCond := a.node(&vnode{kind: vUn, un: ir.Not, args: []*vnode{cond}})
				elsePred := a.andPred(notCond)
				a.preds = append(a.preds, elsePred)
				a.stmts(x.Else)
				a.preds = a.preds[:len(a.preds)-1]
			}
		case *ir.For:
			a.fail = "nested loop inside innermost loop"
		default:
			a.fail = fmt.Sprintf("unsupported statement %T", s)
		}
	}
}

func (a *analyzer) andPred(c *vnode) *vnode {
	if p := a.curPred(); p != nil {
		return a.node(&vnode{kind: vOp, op: ir.And, args: []*vnode{p, c}})
	}
	return c
}

// hostLocalOrFail produces a scalar-input (or carried placeholder) node for
// a local defined before the loop.
func (a *analyzer) hostLocalOrFail(name string) *vnode {
	if !a.outerLocals[name] {
		a.fail = fmt.Sprintf("read of undefined local %q", name)
		return nil
	}
	// A pre-loop local read inside the body: if the body also assigns it,
	// it is loop-carried; resolveCarried sorts that out. Start as carried
	// placeholder so both cases unify.
	return a.cse("carried:"+name, func() *vnode {
		return a.node(&vnode{kind: vCarried, localName: name, init: ir.L(name)})
	})
}

func (a *analyzer) eval(e ir.Expr) *vnode {
	if a.fail != "" {
		return nil
	}
	switch x := e.(type) {
	case ir.Const:
		return a.cse(fmt.Sprintf("c:%g", x.V), func() *vnode {
			return a.node(&vnode{kind: vConst, cval: x.V})
		})
	case ir.Param:
		return a.cse("p:"+x.Name, func() *vnode {
			return a.node(&vnode{kind: vScalarIn, expr: x})
		})
	case ir.IV:
		if x.Name == a.loop.IV {
			return a.cse("iter", func() *vnode {
				return a.node(&vnode{kind: vIter})
			})
		}
		// Outer IV: launch-time constant.
		return a.cse("iv:"+x.Name, func() *vnode {
			return a.node(&vnode{kind: vScalarIn, expr: x})
		})
	case ir.Local:
		if v, ok := a.env[x.Name]; ok {
			return v
		}
		return a.hostLocalOrFail(x.Name)
	case ir.Load:
		return a.load(x)
	case ir.Bin:
		va := a.eval(x.A)
		vb := a.eval(x.B)
		if a.fail != "" {
			return nil
		}
		return a.node(&vnode{kind: vOp, op: x.Op, args: []*vnode{va, vb}})
	case ir.Un:
		va := a.eval(x.A)
		if a.fail != "" {
			return nil
		}
		return a.node(&vnode{kind: vUn, un: x.Op, args: []*vnode{va}})
	case ir.Sel:
		c := a.eval(x.Cond)
		tv := a.eval(x.T)
		fv := a.eval(x.F)
		if a.fail != "" {
			return nil
		}
		return a.node(&vnode{kind: vSel, args: []*vnode{c, tv, fv}})
	default:
		a.fail = fmt.Sprintf("unsupported expression %T", e)
		return nil
	}
}

// affineOf classifies an index expression against the innermost IV. The
// defs map exposes nothing: in-body locals may be iteration-variant, so an
// index through a local is only affine if the local's defining expression
// chain is re-derivable; we conservatively reject locals here and rely on
// direct index expressions (the workloads use them).
func (a *analyzer) affineOf(idx ir.Expr) (ir.Affine, bool) {
	return ir.AnalyzeAffine(idx, map[string]bool{a.loop.IV: true}, nil)
}

func (a *analyzer) load(x ir.Load) *vnode {
	if aff, ok := a.affineOf(x.Idx); ok && !a.noStreams {
		if len(aff.Coeffs) == 0 {
			// Loop-invariant load: the host reads it at launch.
			return a.cse("inv:"+x.String(), func() *vnode {
				return a.node(&vnode{kind: vScalarIn, expr: x})
			})
		}
		key := "ldstream:" + x.Obj + ":" + aff.String()
		return a.cse(key, func() *vnode {
			return a.node(&vnode{kind: vLoadStream, obj: x.Obj, aff: aff})
		})
	}
	// Indirect: the index is a computed value.
	idxNode := a.eval(x.Idx)
	if a.fail != "" {
		return nil
	}
	n := a.node(&vnode{kind: vLoadRandom, obj: x.Obj, idx: idxNode, pred: a.curPred()})
	a.reg.sideEffects = append(a.reg.sideEffects, n)
	return n
}

func (a *analyzer) store(x ir.Store) {
	val := a.eval(x.Val)
	if a.fail != "" {
		return
	}
	pred := a.curPred()
	if aff, ok := a.affineOf(x.Idx); ok && pred == nil && len(aff.Coeffs) == 1 && !a.noStreams {
		n := a.node(&vnode{kind: vStoreStream, obj: x.Obj, aff: aff, val: val})
		a.reg.sideEffects = append(a.reg.sideEffects, n)
		return
	}
	idxNode := a.eval(x.Idx)
	if a.fail != "" {
		return
	}
	n := a.node(&vnode{kind: vStoreRandom, obj: x.Obj, idx: idxNode, val: val, pred: pred})
	a.reg.sideEffects = append(a.reg.sideEffects, n)
}

// resolveCarried wires loop-carried locals: a carried placeholder whose
// local was reassigned in the body gets a next-value edge; one never
// reassigned degrades to a plain scalar input.
func (a *analyzer) resolveCarried() {
	for _, n := range a.reg.nodes {
		if n.kind != vCarried || n.localName == "" {
			continue
		}
		if cur, ok := a.env[n.localName]; ok && cur != n {
			n.next = cur
			a.reg.carried = append(a.reg.carried, n)
		} else {
			n.kind = vScalarIn
			n.expr = ir.L(n.localName)
		}
	}
	// Locals assigned in the body but never read before assignment are
	// loop-local temporaries unless read after the loop; the emitter exports
	// final values for all assigned locals via cp_load_rf, which requires
	// them to be representable: any env entry whose value node exists is
	// exportable, nothing to do here.
}

// forwardStores detects stream loads that read what a stream store wrote
// exactly one iteration earlier (in-place stencils like seidel-2d) and
// replaces them with a distance-1 forwarded register. Loads at distance
// <= 0 read not-yet-written (old) values, which prefetching preserves;
// distances > 1 are rejected.
func (a *analyzer) forwardStores() {
	stores := map[string][]*vnode{}
	streamReadObjs := map[string]bool{}
	randomObjs := map[string]bool{}
	for _, n := range a.reg.nodes {
		switch n.kind {
		case vStoreStream:
			stores[n.obj] = append(stores[n.obj], n)
		case vLoadStream:
			streamReadObjs[n.obj] = true
		case vLoadRandom, vStoreRandom:
			randomObjs[n.obj] = true
		}
	}
	// Conservative aliasing rule: an object with stream writes may not also
	// be randomly accessed in the same region (ordering through the drain
	// FSM would be unverifiable).
	for obj := range randomObjs {
		if len(stores[obj]) > 0 {
			a.fail = fmt.Sprintf("object %q has both stream stores and random accesses", obj)
			return
		}
	}
	for _, n := range a.reg.nodes {
		if n.kind != vLoadStream || len(stores[n.obj]) == 0 {
			continue
		}
		st := stores[n.obj][0]
		if len(stores[n.obj]) > 1 {
			a.fail = fmt.Sprintf("object %q has multiple stream stores", n.obj)
			return
		}
		// The load at iteration i reads the element the store writes at
		// iteration i+d. Classify by sampling (d, trips) pairs — the
		// compile-time analog of the runtime constant-distance check:
		//  - every sample has d >= 0: the write is in the future; prefetched
		//    (old) values are correct;
		//  - every sample has d == -1: forward the previous iteration's
		//    store value through a register;
		//  - every sample has -d >= trips: the write pointer never reaches
		//    the load's elements within one launch (a stencil's previous
		//    row); earlier launches produced those values.
		samples, ok := a.distanceSamples(n.aff, st.aff)
		switch {
		case !ok:
			a.fail = fmt.Sprintf("object %q: unresolvable load/store distance", n.obj)
			return
		case allSamples(samples, func(s distSample) bool { return s.d >= 0 }):
			// Old values stream correctly.
		case allSamples(samples, func(s distSample) bool { return s.d == -1 }):
			n.next = st.val
			n.init = a.initialLoadExpr(n) // uses n.aff; compute before clearing
			n.kind = vForward
			n.aff = ir.Affine{}
		case allSamples(samples, func(s distSample) bool { return -s.d >= s.trips }):
			// No intra-launch overlap.
		default:
			a.fail = fmt.Sprintf("object %q: load/store distance %g unsupported", n.obj, samples[0].d)
			return
		}
	}
}

// distSample is one sampled (distance, trip-count) evaluation.
type distSample struct {
	d     float64
	trips float64
}

func allSamples(ss []distSample, pred func(distSample) bool) bool {
	for _, s := range ss {
		if !pred(s) {
			return false
		}
	}
	return true
}

// distanceSamples evaluates (loadOffset - storeOffset)/stride and the trip
// count under several sampled symbol environments. Matching the paper,
// access distances are runtime constants checked at configuration time;
// sampling is the compile-time analog. Trip-count expressions containing
// loads (dynamic bounds) are unverifiable and fail closed.
func (a *analyzer) distanceSamples(load, store ir.Affine) ([]distSample, bool) {
	lc, okL := load.Coeffs[a.loop.IV]
	sc, okS := store.Coeffs[a.loop.IV]
	if !okL || !okS {
		return nil, false
	}
	var out []distSample
	for trial := 0; trial < 4; trial++ {
		env := sampleEnv(a.k, trial)
		lcV, err1 := ir.EvalScalar(lc, env.params, env.ivs)
		scV, err2 := ir.EvalScalar(sc, env.params, env.ivs)
		lo, err3 := ir.EvalScalar(load.Offset, env.params, env.ivs)
		so, err4 := ir.EvalScalar(store.Offset, env.params, env.ivs)
		trips, err5 := ir.EvalScalar(a.reg.trips, env.params, env.ivs)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil {
			return nil, false
		}
		if lcV != scV || lcV == 0 {
			return nil, false
		}
		out = append(out, distSample{d: (lo - so) / lcV, trips: trips})
	}
	return out, true
}

type sampledEnv struct {
	params map[string]float64
	ivs    map[string]float64
}

// sampleEnv binds every parameter and any IV name to distinct pseudo-random
// values per trial; offsets that agree across samples are treated as
// runtime constants.
func sampleEnv(k *ir.Kernel, trial int) sampledEnv {
	env := sampledEnv{params: map[string]float64{}, ivs: map[string]float64{}}
	seed := float64(97 + trial*61)
	for i, p := range k.Params {
		env.params[p] = seed + float64(i*13+7)
	}
	// IV names: collect from all loops.
	for i, f := range ir.Loops(k.Body) {
		env.ivs[f.IV] = seed/2 + float64(i*17+3)
	}
	return env
}

// initialLoadExpr builds the launch-time expression for a forwarded load's
// first-iteration value: the original index with the IV bound to lo.
func (a *analyzer) initialLoadExpr(n *vnode) ir.Expr {
	// index(iv=lo) = offset + coeff*lo
	coeff := n.aff.Coeffs[a.loop.IV]
	idx := ir.AddE(n.aff.Offset, ir.MulE(coeff, a.reg.lo))
	return ir.Load{Obj: n.obj, Idx: idx}
}

// classify applies §V-A-2's three-way conservative classification.
func (a *analyzer) classify() {
	hasRandomWrite := false
	for _, n := range a.reg.nodes {
		if n.kind == vStoreRandom {
			hasRandomWrite = true
		}
	}
	switch {
	case hasRandomWrite:
		a.reg.class = classPipelinable
	default:
		a.reg.class = classParallelizable
	}
}
