package compiler

import (
	"fmt"
	"sort"

	"distda/internal/core"
	"distda/internal/ir"
	"distda/internal/microcode"
)

// partBuild accumulates one accelerator definition.
type partBuild struct {
	id      int
	prog    []microcode.Op
	access  []core.AccessDecl
	inits   []core.ScalarBind
	outs    []core.ScalarBind
	regOf   map[int]int // vnode id -> register holding its value here
	free    []int
	nextReg int
	pinned  map[int]bool // registers excluded from reuse
	loReg   int
	objs    map[string]bool
	// finalMovs: (dstReg, src vnode) applied at end of each iteration.
	finalMovs []pendingMov
}

type pendingMov struct {
	dst int
	src *vnode
}

func newPartBuild(id int) *partBuild {
	return &partBuild{id: id, regOf: map[int]int{}, pinned: map[int]bool{}, loReg: -1, objs: map[string]bool{}}
}

func (pb *partBuild) alloc(pin bool) (int, error) {
	var r int
	if len(pb.free) > 0 && !pin {
		r = pb.free[len(pb.free)-1]
		pb.free = pb.free[:len(pb.free)-1]
	} else {
		r = pb.nextReg
		pb.nextReg++
		if pb.nextReg > microcode.NumRegs {
			return 0, fmt.Errorf("compiler: partition %d exceeds %d registers", pb.id, microcode.NumRegs)
		}
	}
	if pin {
		pb.pinned[r] = true
	}
	return r, nil
}

func (pb *partBuild) release(r int) {
	if !pb.pinned[r] {
		pb.free = append(pb.free, r)
	}
}

func (pb *partBuild) op(o microcode.Op) { pb.prog = append(pb.prog, o) }

func (pb *partBuild) addAccess(d core.AccessDecl) int {
	d.ID = len(pb.access)
	pb.access = append(pb.access, d)
	return d.ID
}

// emit lowers the partitioned value graph into accelerator definitions.
func (em *emitter) emit() ([]*core.AccelDef, error) {
	parts := make([]*partBuild, em.nParts)
	for i := range parts {
		parts[i] = newPartBuild(i)
	}
	topoIdx := map[int]int{}
	for i, n := range em.topo {
		topoIdx[n.id] = i
	}

	// lastUse[p][nodeID] = topo index of the node's last consumer in part p.
	lastUse := make([]map[int]int, em.nParts)
	for i := range lastUse {
		lastUse[i] = map[int]int{}
	}
	noteUse := func(p int, d *vnode, at int) {
		if cur, ok := lastUse[p][d.id]; !ok || at > cur {
			lastUse[p][d.id] = at
		}
	}
	const endOfProgram = 1 << 30
	for _, n := range em.topo {
		p := em.part[n.id]
		for _, d := range deps(n) {
			noteUse(p, d, topoIdx[n.id])
		}
		if n.next != nil {
			// The recurrence's next value feeds the end-of-iteration update.
			noteUse(em.part[n.id], n.next, endOfProgram)
		}
	}

	remoteConsumers := em.remoteConsumers()
	// channel peers to fix up: producer (part, access) <-> consumer (part, access).
	type chanEnd struct{ part, access int }
	type channel struct{ prod, cons chanEnd }
	var channels []channel
	chanByKey := map[string]int{} // "node:consPart" -> channel index

	// use returns the register holding d's value within part p, emitting a
	// channel consume on first remote use.
	use := func(pb *partBuild, d *vnode) (int, error) {
		if r, ok := pb.regOf[d.id]; ok {
			return r, nil
		}
		if em.part[d.id] == pb.id {
			return 0, fmt.Errorf("compiler: node %d used before definition in part %d", d.id, pb.id)
		}
		key := fmt.Sprintf("%d:%d", d.id, pb.id)
		ci, ok := chanByKey[key]
		if !ok {
			return 0, fmt.Errorf("compiler: no channel for node %d into part %d", d.id, pb.id)
		}
		accID := pb.addAccess(core.AccessDecl{Kind: core.ChanIn, ElemBytes: 8})
		channels[ci].cons = chanEnd{part: pb.id, access: accID}
		r, err := pb.alloc(false)
		if err != nil {
			return 0, err
		}
		o := microcode.NewOp(microcode.Consume)
		o.Dst, o.Access = r, accID
		pb.op(o)
		pb.regOf[d.id] = r
		return r, nil
	}
	// maybeFree releases operand registers whose last use has passed.
	maybeFree := func(pb *partBuild, at int, ds ...*vnode) {
		for _, d := range ds {
			if d == nil {
				continue
			}
			if r, ok := pb.regOf[d.id]; ok && lastUse[pb.id][d.id] <= at {
				pb.release(r)
				delete(pb.regOf, d.id)
			}
		}
	}

	for i, n := range em.topo {
		pb := parts[em.part[n.id]]
		if err := em.emitNode(pb, n, use, maybeFree, i); err != nil {
			return nil, err
		}
		// Forward this value to remote consumer parts.
		if cps := remoteConsumers[n.id]; len(cps) > 0 {
			src, ok := pb.regOf[n.id]
			if !ok {
				return nil, fmt.Errorf("compiler: node %d (%v) has remote consumers but no value register", n.id, n.kind)
			}
			for _, q := range cps {
				accID := pb.addAccess(core.AccessDecl{Kind: core.ChanOut, ElemBytes: 8})
				chanByKey[fmt.Sprintf("%d:%d", n.id, q)] = len(channels)
				channels = append(channels, channel{prod: chanEnd{part: pb.id, access: accID}})
				o := microcode.NewOp(microcode.Produce)
				o.A, o.Access = src, accID
				pb.op(o)
			}
			maybeFree(pb, i, n)
		}
	}

	// End-of-iteration recurrence updates.
	for _, pb := range parts {
		for _, mv := range pb.finalMovs {
			src, ok := pb.regOf[mv.src.id]
			if !ok {
				return nil, fmt.Errorf("compiler: recurrence next value (node %d) not materialized in part %d", mv.src.id, pb.id)
			}
			if src == mv.dst {
				continue
			}
			o := microcode.NewOp(microcode.Mov)
			o.Dst, o.A = mv.dst, src
			pb.op(o)
		}
	}

	// Assemble accel defs.
	defs := make([]*core.AccelDef, em.nParts)
	for i, pb := range parts {
		objs := make([]string, 0, len(pb.objs))
		for o := range pb.objs {
			objs = append(objs, o)
		}
		sort.Strings(objs)
		anchor, place := em.placement(objs)
		defs[i] = &core.AccelDef{
			ID:         i,
			Name:       fmt.Sprintf("A%d", i),
			Objects:    objs,
			AnchorObj:  anchor,
			Place:      place,
			Accesses:   pb.access,
			Program:    pb.prog,
			Trip:       core.TripSpec{Kind: core.TripCounted, Count: em.reg.trips},
			ScalarInit: pb.inits,
			ScalarOut:  pb.outs,
		}
		if len(pb.prog) == 0 {
			return nil, fmt.Errorf("compiler: partition %d has an empty program", i)
		}
	}
	// Fix up channel peers.
	for _, ch := range channels {
		p := &defs[ch.prod.part].Accesses[ch.prod.access]
		c := &defs[ch.cons.part].Accesses[ch.cons.access]
		if c.Kind != core.ChanIn {
			return nil, fmt.Errorf("compiler: channel consumer never materialized (produced value unused remotely)")
		}
		p.Peer = core.PeerRef{Accel: ch.cons.part, Access: ch.cons.access}
		c.Peer = core.PeerRef{Accel: ch.prod.part, Access: ch.prod.access}
	}
	return defs, nil
}

// remoteConsumers maps node id -> sorted list of other parts consuming it.
func (em *emitter) remoteConsumers() map[int][]int {
	set := map[int]map[int]bool{}
	for _, n := range em.reg.nodes {
		for _, d := range deps(n) {
			pd, pn := em.part[d.id], em.part[n.id]
			if pd != pn {
				if set[d.id] == nil {
					set[d.id] = map[int]bool{}
				}
				set[d.id][pn] = true
			}
		}
		if n.next != nil && em.part[n.next.id] != em.part[n.id] {
			// Should have been merged; treat as an ordinary remote use.
			if set[n.next.id] == nil {
				set[n.next.id] = map[int]bool{}
			}
			set[n.next.id][em.part[n.id]] = true
		}
	}
	out := map[int][]int{}
	for id, ps := range set {
		for p := range ps {
			out[id] = append(out[id], p)
		}
		sort.Ints(out[id])
	}
	return out
}

// emitNode lowers one value-graph node inside its part.
func (em *emitter) emitNode(pb *partBuild, n *vnode,
	use func(*partBuild, *vnode) (int, error),
	maybeFree func(*partBuild, int, ...*vnode), at int) error {

	predReg := -1
	if n.pred != nil {
		r, err := use(pb, n.pred)
		if err != nil {
			return err
		}
		predReg = r
	}

	switch n.kind {
	case vConst:
		r, err := pb.alloc(true)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.MovI)
		o.Dst, o.Imm = r, n.cval
		pb.op(o)
		pb.regOf[n.id] = r

	case vScalarIn:
		r, err := pb.alloc(true)
		if err != nil {
			return err
		}
		pb.inits = append(pb.inits, core.ScalarBind{Reg: r, Name: fmt.Sprintf("in%d", n.id), Expr: n.expr})
		pb.regOf[n.id] = r

	case vIter:
		if pb.loReg < 0 {
			lr, err := pb.alloc(true)
			if err != nil {
				return err
			}
			pb.loReg = lr
			pb.inits = append(pb.inits, core.ScalarBind{Reg: lr, Name: "lo", Expr: em.reg.lo})
		}
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.Iter)
		o.Dst = r
		pb.op(o)
		o = microcode.NewOp(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = r, r, pb.loReg, ir.Add
		pb.op(o)
		pb.regOf[n.id] = r

	case vOp:
		a, err := use(pb, n.args[0])
		if err != nil {
			return err
		}
		b, err := use(pb, n.args[1])
		if err != nil {
			return err
		}
		maybeFree(pb, at, n.args[0], n.args[1])
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = r, a, b, n.op
		pb.op(o)
		pb.regOf[n.id] = r

	case vUn:
		a, err := use(pb, n.args[0])
		if err != nil {
			return err
		}
		maybeFree(pb, at, n.args[0])
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.Un)
		o.Dst, o.A, o.UnOp = r, a, n.un
		pb.op(o)
		pb.regOf[n.id] = r

	case vSel:
		c, err := use(pb, n.args[0])
		if err != nil {
			return err
		}
		tv, err := use(pb, n.args[1])
		if err != nil {
			return err
		}
		fv, err := use(pb, n.args[2])
		if err != nil {
			return err
		}
		maybeFree(pb, at, n.args[0], n.args[1], n.args[2])
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.SelOp)
		o.Dst, o.A, o.B, o.C = r, tv, fv, c
		pb.op(o)
		pb.regOf[n.id] = r

	case vLoadStream:
		decl, err := em.streamDecl(core.StreamIn, n)
		if err != nil {
			return err
		}
		accID := pb.addAccess(decl)
		pb.objs[n.obj] = true
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.Consume)
		o.Dst, o.Access = r, accID
		pb.op(o)
		pb.regOf[n.id] = r

	case vLoadRandom:
		a, err := use(pb, n.idx)
		if err != nil {
			return err
		}
		maybeFree(pb, at, n.idx)
		pb.objs[n.obj] = true
		r, err := pb.alloc(false)
		if err != nil {
			return err
		}
		o := microcode.NewOp(microcode.LoadObj)
		o.Dst, o.A, o.Obj, o.Pred = r, a, n.obj, predReg
		pb.op(o)
		pb.regOf[n.id] = r

	case vStoreStream:
		v, err := use(pb, n.val)
		if err != nil {
			return err
		}
		decl, err := em.streamDecl(core.StreamOut, n)
		if err != nil {
			return err
		}
		accID := pb.addAccess(decl)
		pb.objs[n.obj] = true
		o := microcode.NewOp(microcode.Produce)
		o.A, o.Access = v, accID
		pb.op(o)
		maybeFree(pb, at, n.val)

	case vStoreRandom:
		a, err := use(pb, n.idx)
		if err != nil {
			return err
		}
		v, err := use(pb, n.val)
		if err != nil {
			return err
		}
		pb.objs[n.obj] = true
		o := microcode.NewOp(microcode.StoreObj)
		o.A, o.B, o.Obj, o.Pred = a, v, n.obj, predReg
		pb.op(o)
		maybeFree(pb, at, n.idx, n.val)

	case vCarried, vForward:
		r, err := pb.alloc(true)
		if err != nil {
			return err
		}
		pb.inits = append(pb.inits, core.ScalarBind{Reg: r, Name: "carry" + fmt.Sprint(n.id), Expr: n.init})
		pb.regOf[n.id] = r
		pb.finalMovs = append(pb.finalMovs, pendingMov{dst: r, src: n.next})
		if n.localName != "" && em.readsAfter[n.localName] {
			pb.outs = append(pb.outs, core.ScalarBind{Reg: r, Name: n.localName})
		}

	default:
		return fmt.Errorf("compiler: unknown node kind %v", n.kind)
	}
	if n.pred != nil {
		maybeFree(pb, at, n.pred)
	}
	return nil
}

// streamDecl builds a stream access declaration from an affine access.
func (em *emitter) streamDecl(kind core.AccessKind, n *vnode) (core.AccessDecl, error) {
	obj, ok := em.k.Object(n.obj)
	if !ok {
		return core.AccessDecl{}, fmt.Errorf("compiler: unknown object %q", n.obj)
	}
	coeff := n.aff.Coeffs[em.reg.loop.IV]
	if coeff == nil {
		return core.AccessDecl{}, fmt.Errorf("compiler: stream access on %q has no IV coefficient", n.obj)
	}
	start := ir.AddE(n.aff.Offset, ir.MulE(coeff, em.reg.lo))
	return core.AccessDecl{
		Kind:      kind,
		Obj:       n.obj,
		ElemBytes: obj.ElemBytes,
		Start:     start,
		Stride:    coeff,
		Length:    em.reg.trips,
	}, nil
}

// placement applies the §V-A-4 vertical rule: anchor at the largest object;
// objects too small to amortize the control transfer stay near the host.
func (em *emitter) placement(objs []string) (string, core.Placement) {
	anchor := ""
	best := -1
	for _, o := range objs {
		if d, ok := em.k.Object(o); ok && d.Bytes() > best {
			best = d.Bytes()
			anchor = o
		}
	}
	if anchor == "" {
		return "", core.PlaceL3 // pure compute: the runtime co-locates it
	}
	if best < smallObjectBytes {
		return anchor, core.PlaceHost
	}
	return anchor, core.PlaceL3
}
