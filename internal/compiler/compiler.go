package compiler

import (
	"fmt"

	"distda/internal/core"
	"distda/internal/dfg"
	"distda/internal/ir"
)

// Mode selects the compute-distribution lowering.
type Mode int

const (
	// ModeDist: distributed computation (Dist-DA) — the partition count is
	// chosen by the §V-A-3 iteration.
	ModeDist Mode = iota
	// ModeMono: monolithic computation (Mono-CA / Mono-DA) — one partition,
	// accesses still specialized.
	ModeMono
)

// Options configure a compilation.
type Options struct {
	Mode Mode
	// MaxPartitions caps the partition iteration (0 = automatic).
	MaxPartitions int
	// NoObjConstraint drops the ≤1-object-per-partition preference
	// (ablation).
	NoObjConstraint bool
	// NoStreamSpecialization lowers affine accesses as random accesses —
	// the multithreading case study skips the stream step (§VI-D).
	NoStreamSpecialization bool
	// NoEpilogueFold keeps post-loop stores on the host (the naive blocked
	// offload of the §VI-D case study, Dist-DA-B).
	NoEpilogueFold bool
	// PIMBytes, when positive, steers offloaded regions whose summed object
	// footprint is at least this many bytes to the "pimdram" backend
	// (per-region near-L3 vs in-DRAM placement). Zero disables it.
	PIMBytes int
}

// Compiled is the result of compiling one kernel.
type Compiled struct {
	Kernel  *ir.Kernel
	Regions []*core.Region
	ByLoop  map[*ir.For]*core.Region
	Infos   []*RegionInfo
}

// RegionInfo carries per-region reporting data (Table VI).
type RegionInfo struct {
	Region *core.Region
	Graph  *dfg.Graph // pre-partitioning DFG
	Insts  int        // total micro-ops across the region's partitions
	Why    string     // reason when not offloaded
}

// Offloaded reports whether the region executes on accelerators.
func (ri *RegionInfo) Offloaded() bool {
	return ri.Region.Class != core.ClassNotOffloaded && len(ri.Region.Accels) > 0
}

// Compile analyzes every innermost loop of k and emits offload regions.
func Compile(k *ir.Kernel, opts Options) (*Compiled, error) {
	if err := ir.Validate(k); err != nil {
		return nil, err
	}
	if opts.Mode == ModeMono {
		opts.MaxPartitions = 1
	}
	out := &Compiled{Kernel: k, ByLoop: map[*ir.For]*core.Region{}}
	for idx, loop := range ir.InnermostLoops(k.Body) {
		name := fmt.Sprintf("%s.r%d", k.Name, idx)
		outer := outerLocals(k.Body, loop)
		var epi *ir.Store
		if !opts.NoEpilogueFold {
			epi = epilogueStore(k.Body, loop)
		}
		reg := analyzeLoop(k, loop, outer, opts.NoStreamSpecialization, epi)
		if reg.class != classNotOffloaded {
			skip := (*ir.Stmt)(nil)
			if reg.folded {
				skip = epilogueStmt(k.Body, loop)
			}
			if why := checkEscapes(k.Body, loop, reg, skip); why != "" {
				reg.class = classNotOffloaded
				reg.why = why
			}
		}
		skipForReads := (*ir.Stmt)(nil)
		if reg.folded {
			skipForReads = epilogueStmt(k.Body, loop)
		}
		readsAfter := localsReadAfter(k.Body, loop, skipForReads)
		cr, err := emitRegion(k, reg, opts, name, readsAfter)
		if err != nil {
			return nil, err
		}
		cr.FoldedEpilogue = reg.folded && cr.Class != core.ClassNotOffloaded && len(cr.Accels) > 0
		if opts.PIMBytes > 0 && cr.Class != core.ClassNotOffloaded && len(cr.Accels) > 0 &&
			regionFootprint(k, cr) >= opts.PIMBytes {
			cr.Backend = "pimdram"
		}
		info := &RegionInfo{Region: cr, Why: reg.why}
		if cr.Class != core.ClassNotOffloaded {
			info.Graph = buildDFG(reg)
			for _, a := range cr.Accels {
				info.Insts += len(a.Program)
			}
		}
		out.Regions = append(out.Regions, cr)
		out.ByLoop[loop] = cr
		out.Infos = append(out.Infos, info)
	}
	return out, nil
}

// regionFootprint sums the declared sizes of the distinct objects a
// region's accelerators touch — the data-residence figure the in-DRAM
// placement threshold compares against.
func regionFootprint(k *ir.Kernel, r *core.Region) int {
	seen := map[string]bool{}
	total := 0
	for _, a := range r.Accels {
		for _, obj := range a.Objects {
			if seen[obj] {
				continue
			}
			seen[obj] = true
			if d, ok := k.Object(obj); ok {
				total += d.Bytes()
			}
		}
	}
	return total
}

// epilogueStore returns the Store statement immediately following the
// target loop in its parent statement list, if any (fold candidate).
func epilogueStore(body []ir.Stmt, target *ir.For) *ir.Store {
	p := epilogueStmt(body, target)
	if p == nil {
		return nil
	}
	if st, ok := (*p).(ir.Store); ok {
		return &st
	}
	return nil
}

// epilogueStmt returns the address of the statement slot immediately after
// the target loop in its parent list, nil if the loop is last.
func epilogueStmt(body []ir.Stmt, target *ir.For) *ir.Stmt {
	var find func(ss []ir.Stmt) *ir.Stmt
	find = func(ss []ir.Stmt) *ir.Stmt {
		for i := range ss {
			switch x := ss[i].(type) {
			case *ir.For:
				if x == target {
					if i+1 < len(ss) {
						return &ss[i+1]
					}
					return nil
				}
				if p := find(x.Body); p != nil {
					return p
				}
			case ir.If:
				if p := find(x.Then); p != nil {
					return p
				}
				if p := find(x.Else); p != nil {
					return p
				}
			}
		}
		return nil
	}
	return find(body)
}

// outerLocals returns the (superset of) locals defined lexically before the
// target loop; the kernel validator already guarantees real definedness.
func outerLocals(body []ir.Stmt, target *ir.For) map[string]bool {
	defs := map[string]bool{}
	found := false
	var walk func([]ir.Stmt)
	walk = func(ss []ir.Stmt) {
		for _, s := range ss {
			if found {
				return
			}
			switch x := s.(type) {
			case ir.Let:
				defs[x.Name] = true
			case ir.If:
				walk(x.Then)
				walk(x.Else)
			case *ir.For:
				if x == target {
					found = true
					return
				}
				walk(x.Body)
			}
		}
	}
	walk(body)
	return defs
}

// checkEscapes rejects regions whose non-carried in-body locals are read
// after the loop (their final values would not reach the host).
func checkEscapes(body []ir.Stmt, target *ir.For, reg *region, skip *ir.Stmt) string {
	assigned := map[string]bool{}
	ir.WalkStmts(target.Body, func(s ir.Stmt) {
		if let, ok := s.(ir.Let); ok {
			assigned[let.Name] = true
		}
	}, nil)
	carried := map[string]bool{}
	for _, c := range reg.carried {
		carried[c.localName] = true
	}
	after := localsReadAfter(body, target, skip)
	for name := range assigned {
		if after[name] && !carried[name] {
			return fmt.Sprintf("local %q assigned in loop is read after it", name)
		}
	}
	return ""
}

// localsReadAfter collects local reads that can observe a value produced by
// the target loop: reads lexically after it, and reads in later iterations
// of enclosing loops — excluding reads inside the target itself, which see
// the same-iteration redefinition.
func localsReadAfter(body []ir.Stmt, target *ir.For, skip *ir.Stmt) map[string]bool {
	reads := map[string]bool{}
	noteExpr := func(e ir.Expr) {
		ir.WalkExpr(e, func(x ir.Expr) {
			if l, ok := x.(ir.Local); ok {
				reads[l.Name] = true
			}
		})
	}
	noteKilled := func(e ir.Expr, killed map[string]bool) {
		ir.WalkExpr(e, func(x ir.Expr) {
			if l, ok := x.(ir.Local); ok && !killed[l.Name] {
				reads[l.Name] = true
			}
		})
	}
	// collect gathers reads in ss that can observe the target's values:
	// a Let kills subsequent reads of its local on that path; the target
	// subtree itself is skipped (its reads see same-iteration defs).
	var collect func(ss []ir.Stmt, killed map[string]bool)
	collect = func(ss []ir.Stmt, killed map[string]bool) {
		for i := range ss {
			if skip != nil && &ss[i] == skip {
				continue // the folded epilogue store never executes on the host
			}
			s := ss[i]
			switch x := s.(type) {
			case ir.Let:
				noteKilled(x.E, killed)
				killed[x.Name] = true
			case ir.Store:
				noteKilled(x.Idx, killed)
				noteKilled(x.Val, killed)
			case ir.If:
				noteKilled(x.Cond, killed)
				collect(x.Then, cloneKilled(killed))
				collect(x.Else, cloneKilled(killed))
			case *ir.For:
				if x == target {
					continue
				}
				noteKilled(x.Lo, killed)
				noteKilled(x.Hi, killed)
				noteKilled(x.Step, killed)
				collect(x.Body, cloneKilled(killed))
			}
		}
	}
	var walk func(ss []ir.Stmt) bool
	walk = func(ss []ir.Stmt) bool {
		for i, s := range ss {
			switch x := s.(type) {
			case *ir.For:
				if x == target {
					collect(ss[i+1:], map[string]bool{})
					return true
				}
				if walk(x.Body) {
					// Later iterations of the enclosing loop re-read its
					// whole body (minus the target) and its bounds.
					collect(x.Body, map[string]bool{})
					noteExpr(x.Lo)
					noteExpr(x.Hi)
					collect(ss[i+1:], map[string]bool{})
					return true
				}
			case ir.If:
				if walk(x.Then) || walk(x.Else) {
					collect(ss[i+1:], map[string]bool{})
					return true
				}
			}
		}
		return false
	}
	walk(body)
	return reads
}

func cloneKilled(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// buildDFG renders the value graph as the paper's three-node-kind DFG for
// reporting and inspection (Fig. 3-2, Table VI dims).
func buildDFG(reg *region) *dfg.Graph {
	g := dfg.New()
	nodeID := map[int]int{}
	objNode := map[string]int{}
	obj := func(name string) int {
		if id, ok := objNode[name]; ok {
			return id
		}
		n := g.AddNode(&dfg.Node{Kind: dfg.KindObject, Obj: name, Label: name})
		objNode[name] = n.ID
		return n.ID
	}
	for _, v := range reg.nodes {
		var dn *dfg.Node
		switch v.kind {
		case vLoadStream:
			dn = &dfg.Node{Kind: dfg.KindAccess, Obj: v.obj, Dir: dfg.Read, Pattern: dfg.PatAffine, Affine: v.aff, Label: "ld " + v.obj}
		case vLoadRandom:
			dn = &dfg.Node{Kind: dfg.KindAccess, Obj: v.obj, Dir: dfg.Read, Pattern: dfg.PatIndirect, Label: "ld* " + v.obj}
		case vStoreStream:
			dn = &dfg.Node{Kind: dfg.KindAccess, Obj: v.obj, Dir: dfg.Write, Pattern: dfg.PatAffine, Affine: v.aff, Label: "st " + v.obj}
		case vStoreRandom:
			dn = &dfg.Node{Kind: dfg.KindAccess, Obj: v.obj, Dir: dfg.Write, Pattern: dfg.PatIndirect, Label: "st* " + v.obj}
		case vOp:
			dn = &dfg.Node{Kind: dfg.KindCompute, Class: v.op.Class(), Label: v.op.String()}
		case vUn:
			dn = &dfg.Node{Kind: dfg.KindCompute, Class: v.un.Class(), Label: v.un.String()}
		default:
			dn = &dfg.Node{Kind: dfg.KindCompute, Class: ir.ClassInt, Label: v.kind.String()}
		}
		nodeID[v.id] = g.AddNode(dn).ID
	}
	for _, v := range reg.nodes {
		for _, d := range deps(v) {
			_ = g.AddEdge(dfg.Edge{From: nodeID[d.id], To: nodeID[v.id], Bytes: 8})
		}
		if v.next != nil {
			_ = g.AddEdge(dfg.Edge{From: nodeID[v.next.id], To: nodeID[v.id], Bytes: 8, Recurrence: true})
		}
		switch v.kind {
		case vLoadStream, vLoadRandom:
			_ = g.AddEdge(dfg.Edge{From: obj(v.obj), To: nodeID[v.id], Bytes: 8})
		case vStoreStream, vStoreRandom:
			_ = g.AddEdge(dfg.Edge{From: nodeID[v.id], To: obj(v.obj), Bytes: 8})
		}
	}
	return g
}
