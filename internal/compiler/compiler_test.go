package compiler

import (
	"testing"

	"distda/internal/core"
	"distda/internal/ir"
	"distda/internal/microcode"
)

func vecAdd(n int) *ir.Kernel {
	return &ir.Kernel{
		Name:   "vecadd",
		Params: []string{"N"},
		Objects: []ir.ObjDecl{
			{Name: "A", Len: n, ElemBytes: 8},
			{Name: "B", Len: n, ElemBytes: 8},
			{Name: "C", Len: n, ElemBytes: 8},
		},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.St("C", ir.V("i"), ir.AddE(ir.Ld("A", ir.V("i")), ir.Ld("B", ir.V("i")))),
			),
		},
	}
}

func compileOK(t *testing.T, k *ir.Kernel, opts Options) *Compiled {
	t.Helper()
	c, err := Compile(k, opts)
	if err != nil {
		t.Fatalf("Compile(%s): %v", k.Name, err)
	}
	return c
}

func onlyRegion(t *testing.T, c *Compiled) *core.Region {
	t.Helper()
	if len(c.Regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(c.Regions))
	}
	return c.Regions[0]
}

func countAccess(r *core.Region, kind core.AccessKind) int {
	n := 0
	for _, a := range r.Accels {
		for _, acc := range a.Accesses {
			if acc.Kind == kind {
				n++
			}
		}
	}
	return n
}

func TestCompileVecAddDist(t *testing.T) {
	c := compileOK(t, vecAdd(4096), Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class != core.ClassParallelizable {
		t.Fatalf("class = %v", r.Class)
	}
	if len(r.Accels) == 0 {
		t.Fatal("no accels")
	}
	if got := countAccess(r, core.StreamIn); got != 2 {
		t.Fatalf("stream-ins = %d, want 2", got)
	}
	if got := countAccess(r, core.StreamOut); got != 1 {
		t.Fatalf("stream-outs = %d, want 1", got)
	}
	// Channels are symmetric.
	if countAccess(r, core.ChanIn) != countAccess(r, core.ChanOut) {
		t.Fatal("chan in/out mismatch")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestCompileVecAddMonoIsSinglePartition(t *testing.T) {
	c := compileOK(t, vecAdd(4096), Options{Mode: ModeMono})
	r := onlyRegion(t, c)
	if len(r.Accels) != 1 {
		t.Fatalf("mono accels = %d, want 1", len(r.Accels))
	}
	if countAccess(r, core.ChanIn) != 0 {
		t.Fatal("mono compile has channels")
	}
}

func TestCompileDistPartitionsByObject(t *testing.T) {
	// Each partition should touch at most one memory object for this
	// cleanly separable kernel.
	c := compileOK(t, vecAdd(4096), Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	for _, a := range r.Accels {
		if len(a.Objects) > 1 {
			t.Fatalf("accel %d touches %v (more than one object)", a.ID, a.Objects)
		}
	}
}

func TestCompileReductionExportsCarriedLocal(t *testing.T) {
	k := &ir.Kernel{
		Name:    "reduce",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("sum", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("sum", ir.AddE(ir.L("sum"), ir.Ld("A", ir.V("i")))),
			),
			ir.St("S", ir.C(0), ir.L("sum")),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class == core.ClassNotOffloaded {
		t.Fatal("reduction not offloaded")
	}
	// The trailing S[0] = sum store folds into the offload: the accelerator
	// writes it on the last iteration and no cp_load_rf sync remains.
	if !r.FoldedEpilogue {
		t.Fatal("epilogue store not folded")
	}
	for _, a := range r.Accels {
		if len(a.ScalarOut) != 0 {
			t.Fatalf("folded reduction still exports scalars: %+v", a.ScalarOut)
		}
	}
	hasStore := false
	for _, a := range r.Accels {
		for _, op := range a.Program {
			if op.Code == microcode.StoreObj && op.Pred >= 0 {
				hasStore = true
			}
		}
	}
	if !hasStore {
		t.Fatal("no predicated epilogue store in any program")
	}
}

func TestCompileReductionKeepsScalarOutWhenReadTwice(t *testing.T) {
	// sum feeds two post-loop stores: only the first can fold, so the
	// carried local must still be exported for the second.
	k := &ir.Kernel{
		Name:    "reduce2",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "S", Len: 2, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("sum", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("sum", ir.AddE(ir.L("sum"), ir.Ld("A", ir.V("i")))),
			),
			ir.St("S", ir.C(0), ir.L("sum")),
			ir.St("S", ir.C(1), ir.MulE(ir.L("sum"), ir.C(2))),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	outs := 0
	for _, a := range r.Accels {
		for _, sb := range a.ScalarOut {
			if sb.Name == "sum" {
				outs++
			}
		}
	}
	if outs != 1 {
		t.Fatalf("sum exported %d times, want 1", outs)
	}
}

func TestCompilePointerChase(t *testing.T) {
	k := &ir.Kernel{
		Name:    "chase",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "next", Len: 8192, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Set("p", ir.C(0)),
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("p", ir.Ld("next", ir.L("p"))),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class == core.ClassNotOffloaded {
		t.Fatalf("pointer chase not offloaded: %s", c.Infos[0].Why)
	}
	// Exactly one partition: the chase is one recurrence on one object.
	if len(r.Accels) != 1 {
		t.Fatalf("accels = %d, want 1", len(r.Accels))
	}
	hasLoadObj := false
	for _, op := range r.Accels[0].Program {
		if op.Code == microcode.LoadObj {
			hasLoadObj = true
		}
	}
	if !hasLoadObj {
		t.Fatal("no random load in pointer chase program")
	}
}

func TestCompileInPlaceStencilForwards(t *testing.T) {
	// A[i] = A[i-1] + A[i]: distance-1 forward plus distance-0 old value.
	k := &ir.Kernel{
		Name:    "scan",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(1), ir.P("N"),
				ir.St("A", ir.V("i"), ir.AddE(ir.Ld("A", ir.SubE(ir.V("i"), ir.C(1))), ir.Ld("A", ir.V("i")))),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class == core.ClassNotOffloaded {
		t.Fatalf("in-place stencil rejected: %s", c.Infos[0].Why)
	}
	// The forwarded load becomes a register recurrence: at most one
	// stream-in remains (the distance-0 load).
	if got := countAccess(r, core.StreamIn); got != 1 {
		t.Fatalf("stream-ins = %d, want 1 (distance-1 load forwarded)", got)
	}
}

func TestCompileDistanceTwoRejected(t *testing.T) {
	k := &ir.Kernel{
		Name:    "d2",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(2), ir.P("N"),
				ir.St("A", ir.V("i"), ir.Ld("A", ir.SubE(ir.V("i"), ir.C(2)))),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	if onlyRegion(t, c).Class != core.ClassNotOffloaded {
		t.Fatal("distance-2 in-place accepted")
	}
}

func TestCompileIndirectIsPipelinable(t *testing.T) {
	// hist[idx[i]] += 1: random read+write.
	k := &ir.Kernel{
		Name:    "hist",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "idx", Len: 4096, ElemBytes: 8}, {Name: "hist", Len: 4096, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("x", ir.Ld("idx", ir.V("i"))),
				ir.St("hist", ir.L("x"), ir.AddE(ir.Ld("hist", ir.L("x")), ir.C(1))),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class != core.ClassPipelinable {
		t.Fatalf("class = %v, want pipelinable", r.Class)
	}
}

func TestCompilePredicatedStoreBecomesRandom(t *testing.T) {
	k := &ir.Kernel{
		Name:    "filter",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "B", Len: 4096, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Cond(ir.GtE(ir.Ld("A", ir.V("i")), ir.C(0)),
					[]ir.Stmt{ir.St("B", ir.V("i"), ir.C(1))}, nil),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class != core.ClassPipelinable {
		t.Fatalf("class = %v, want pipelinable (predicated store)", r.Class)
	}
	pred := false
	for _, a := range r.Accels {
		for _, op := range a.Program {
			if op.Code == microcode.StoreObj && op.Pred >= 0 {
				pred = true
			}
		}
	}
	if !pred {
		t.Fatal("no predicated random store emitted")
	}
}

func TestCompileNonUnitStepNotOffloaded(t *testing.T) {
	k := vecAdd(4096)
	k.Body[0].(*ir.For).Step = ir.C(2)
	c := compileOK(t, k, Options{Mode: ModeDist})
	if onlyRegion(t, c).Class != core.ClassNotOffloaded {
		t.Fatal("non-unit step offloaded")
	}
}

func TestCompileEscapingLocalNotOffloaded(t *testing.T) {
	k := &ir.Kernel{
		Name:    "escape",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("last", ir.Ld("A", ir.V("i"))), // not carried, read after
			),
			ir.Set("y", ir.L("last")), // non-store epilogue: unfoldable
			ir.St("S", ir.C(0), ir.L("y")),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	if onlyRegion(t, c).Class != core.ClassNotOffloaded {
		t.Fatal("escaping local offloaded")
	}
}

func TestCompileEscapingLocalFoldsWhenStoredDirectly(t *testing.T) {
	// The same escape as a direct store is legal: it folds into the offload.
	k := &ir.Kernel{
		Name:    "escape-fold",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Set("last", ir.Ld("A", ir.V("i"))),
			),
			ir.St("S", ir.C(0), ir.L("last")),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class == core.ClassNotOffloaded || !r.FoldedEpilogue {
		t.Fatalf("direct-store escape did not fold (class %v, folded %v)", r.Class, r.FoldedEpilogue)
	}
}

func TestCompileOuterLoopConfigExprs(t *testing.T) {
	// Row-major traversal: inner loop streams row i of A into B.
	k := &ir.Kernel{
		Name:    "rows",
		Params:  []string{"N", "W"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 64 * 64, ElemBytes: 8}, {Name: "B", Len: 64 * 64, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"),
				ir.Loop("j", ir.C(0), ir.P("W"),
					ir.St("B", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j")),
						ir.MulE(ir.Ld("A", ir.Idx2(ir.V("i"), ir.P("W"), ir.V("j"))), ir.C(2))),
				),
			),
		},
	}
	c := compileOK(t, k, Options{Mode: ModeDist})
	r := onlyRegion(t, c)
	if r.Class == core.ClassNotOffloaded {
		t.Fatal("row traversal rejected")
	}
	// The stream start must reference the outer IV i: evaluate it at i=3.
	var start ir.Expr
	for _, a := range r.Accels {
		for _, acc := range a.Accesses {
			if acc.Kind == core.StreamIn && acc.Obj == "A" {
				start = acc.Start
			}
		}
	}
	if start == nil {
		t.Fatal("no stream-in on A")
	}
	v, err := ir.EvalScalar(start, map[string]float64{"N": 64, "W": 64}, map[string]float64{"i": 3})
	if err != nil {
		t.Fatalf("start eval: %v", err)
	}
	if v != 3*64 {
		t.Fatalf("start(i=3) = %g, want 192", v)
	}
}

func TestCompileInfosReportInsts(t *testing.T) {
	c := compileOK(t, vecAdd(4096), Options{Mode: ModeDist})
	info := c.Infos[0]
	if !info.Offloaded() {
		t.Fatal("not offloaded")
	}
	if info.Insts <= 0 {
		t.Fatal("no instruction count")
	}
	if info.Graph == nil {
		t.Fatal("no DFG")
	}
	w, h, err := info.Graph.Dims()
	if err != nil || w <= 0 || h <= 0 {
		t.Fatalf("dims %dx%d err=%v", w, h, err)
	}
}

func TestCompileProgramsValidate(t *testing.T) {
	kernels := []*ir.Kernel{vecAdd(4096)}
	for _, k := range kernels {
		for _, mode := range []Mode{ModeDist, ModeMono} {
			c := compileOK(t, k, Options{Mode: mode})
			for _, r := range c.Regions {
				for _, a := range r.Accels {
					if err := a.Program.Validate(len(a.Accesses)); err != nil {
						t.Fatalf("%s mode %d accel %d: %v", k.Name, mode, a.ID, err)
					}
				}
			}
		}
	}
}
