package compiler

import (
	"fmt"
	"sort"

	"distda/internal/core"
	"distda/internal/ir"
	"distda/internal/partition"
)

// weights for the partitioning graph.
const (
	wData   = 8    // one 8-byte operand per iteration
	wObject = 500  // keep accessors near their object node
	wPinned = 4000 // carried/forward recurrences must not split
)

// smallObjectBytes: objects below this footprint anchor near the host
// (§V-A-4: short irregular sequences are not amortized at the LLC).
const smallObjectBytes = 4096

// emitRegion lowers an analyzed region to a core.Region. readsAfter names
// host locals read after the loop: only those carried locals get cp_load_rf
// bindings (anything else would force a needless host synchronization).
func emitRegion(k *ir.Kernel, reg *region, opts Options, name string, readsAfter map[string]bool) (*core.Region, error) {
	out := &core.Region{Name: name, Loop: reg.loop}
	switch reg.class {
	case classNotOffloaded:
		out.Class = core.ClassNotOffloaded
		return out, nil
	case classPipelinable:
		out.Class = core.ClassPipelinable
	default:
		out.Class = core.ClassParallelizable
	}
	em := &emitter{k: k, reg: reg, opts: opts, readsAfter: readsAfter}
	if err := em.partition(); err != nil {
		return nil, err
	}
	accels, err := em.emit()
	if err != nil {
		// Fall back: regions the emitter cannot map run on the host.
		out.Class = core.ClassNotOffloaded
		out.Accels = nil
		return out, nil
	}
	out.Accels = accels
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: emitted invalid region %q: %w", name, err)
	}
	return out, nil
}

type emitter struct {
	k          *ir.Kernel
	reg        *region
	opts       Options
	readsAfter map[string]bool

	part   []int // vnode id -> part
	nParts int
	topo   []*vnode
}

// deps returns a node's forward dataflow inputs.
func deps(n *vnode) []*vnode {
	var ds []*vnode
	ds = append(ds, n.args...)
	for _, d := range []*vnode{n.idx, n.val, n.pred} {
		if d != nil {
			ds = append(ds, d)
		}
	}
	return ds
}

// orderEdges returns memory-ordering constraints: random accesses to the
// same object retain statement order (one serializing point per object).
func (em *emitter) orderEdges() [][2]*vnode {
	var out [][2]*vnode
	last := map[string]*vnode{}
	for _, n := range em.reg.sideEffects {
		if n.kind != vLoadRandom && n.kind != vStoreRandom {
			continue
		}
		if p, ok := last[n.obj]; ok {
			out = append(out, [2]*vnode{p, n})
		}
		last[n.obj] = n
	}
	return out
}

// topoSort orders all vnodes by forward deps plus memory-order edges.
func (em *emitter) topoSort() error {
	nodes := em.reg.nodes
	indeg := make([]int, len(nodes))
	succ := make([][]int, len(nodes))
	addEdge := func(a, b *vnode) {
		succ[a.id] = append(succ[a.id], b.id)
		indeg[b.id]++
	}
	for _, n := range nodes {
		for _, d := range deps(n) {
			addEdge(d, n)
		}
	}
	for _, e := range em.orderEdges() {
		addEdge(e[0], e[1])
	}
	var queue []int
	for i := range nodes {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		// Deterministic: smallest id first.
		sort.Ints(queue)
		id := queue[0]
		queue = queue[1:]
		em.topo = append(em.topo, nodes[id])
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(em.topo) != len(nodes) {
		return fmt.Errorf("compiler: value graph has a forward cycle")
	}
	return nil
}

// objects returns the distinct objects touched by access nodes.
func (em *emitter) objects() []string {
	set := map[string]bool{}
	for _, n := range em.reg.nodes {
		switch n.kind {
		case vLoadStream, vLoadRandom, vStoreStream, vStoreRandom:
			set[n.obj] = true
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// partition assigns nodes to parts per §V-A-3: iterate the partition count,
// preferring solutions with at most one object per partition and minimal
// cut, then apply correctness merges (recurrences, same-object random
// accesses, same-iteration channel cycles).
func (em *emitter) partition() error {
	if err := em.topoSort(); err != nil {
		return err
	}
	nodes := em.reg.nodes
	objs := em.objects()
	objID := map[string]int{}
	for i, o := range objs {
		objID[o] = len(nodes) + i
	}
	g := partition.NewGraph(len(nodes) + len(objs))
	edge := func(a, b, w int) {
		if err := g.AddEdge(a, b, w); err != nil {
			panic(err)
		}
	}
	for _, n := range nodes {
		for _, d := range deps(n) {
			edge(d.id, n.id, wData)
		}
		if n.next != nil {
			edge(n.id, n.next.id, wPinned)
		}
		switch n.kind {
		case vLoadStream, vLoadRandom, vStoreStream, vStoreRandom:
			edge(n.id, objID[n.obj], wObject)
		}
	}

	maxK := em.opts.MaxPartitions
	if maxK <= 0 {
		maxK = len(nodes)
		if maxK > 8 {
			maxK = 8 // one partition per L3 cluster at most
		}
	}
	var best *solution
	for k := 1; k <= maxK; k++ {
		assign, cut, err := partition.Partition(g, k)
		if err != nil {
			return err
		}
		maxObjs := 0
		perPart := map[int]map[string]bool{}
		for _, n := range nodes {
			switch n.kind {
			case vLoadStream, vLoadRandom, vStoreStream, vStoreRandom:
				p := assign[n.id]
				if perPart[p] == nil {
					perPart[p] = map[string]bool{}
				}
				perPart[p][n.obj] = true
			}
		}
		for _, set := range perPart {
			if len(set) > maxObjs {
				maxObjs = len(set)
			}
		}
		cand := &solution{assign: assign, k: k, cut: cut, maxObjs: maxObjs}
		if better(cand, best, !em.opts.NoObjConstraint) {
			best = cand
		}
		if maxObjs <= 1 {
			break // §V-A-3: stop once one data structure per partition
		}
	}
	em.part = best.assign[:len(nodes)]
	em.nParts = best.k

	em.mergeForCorrectness()
	em.compactParts()
	return nil
}

// solution is one candidate partitioning.
type solution struct {
	assign  []int
	k       int
	cut     int
	maxObjs int
}

// better ranks partitioning solutions: fewest objects per part first (when
// the constraint is on), then lowest cut, then fewer parts.
func better(cand, best *solution, objConstraint bool) bool {
	if best == nil {
		return true
	}
	if objConstraint && cand.maxObjs != best.maxObjs {
		return cand.maxObjs < best.maxObjs
	}
	if cand.cut != best.cut {
		return cand.cut < best.cut
	}
	return cand.k < best.k
}

// mergeForCorrectness unions parts that must co-reside: recurrence chains,
// random accessors of one object, and any same-iteration channel cycle.
func (em *emitter) mergeForCorrectness() {
	parent := make([]int, em.nParts)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	for _, n := range em.reg.nodes {
		if n.next != nil {
			union(em.part[n.id], em.part[n.next.id])
		}
	}
	// Random accesses to one object share its serializing point.
	objPart := map[string]int{}
	for _, n := range em.reg.nodes {
		if n.kind == vLoadRandom || n.kind == vStoreRandom {
			if p, ok := objPart[n.obj]; ok {
				union(p, em.part[n.id])
			} else {
				objPart[n.obj] = em.part[n.id]
			}
		}
	}
	// Stream stores anchor at their object's partition too: a second stream
	// access of the same object must not land elsewhere (single write
	// pointer per object).
	streamPart := map[string]int{}
	for _, n := range em.reg.nodes {
		if n.kind == vStoreStream {
			if p, ok := streamPart[n.obj]; ok {
				union(p, em.part[n.id])
			} else {
				streamPart[n.obj] = em.part[n.id]
			}
		}
	}
	apply := func() {
		for id := range em.part {
			em.part[id] = find(em.part[id])
		}
	}
	apply()

	// Break same-iteration channel cycles by merging the parts involved.
	for {
		cyc := em.findPartCycle()
		if cyc == nil {
			return
		}
		for _, p := range cyc[1:] {
			union(cyc[0], p)
		}
		apply()
	}
}

// findPartCycle returns a cycle in the part-level dataflow graph, nil if
// acyclic.
func (em *emitter) findPartCycle() []int {
	adj := map[int]map[int]bool{}
	for _, n := range em.reg.nodes {
		for _, d := range deps(n) {
			pa, pb := em.part[d.id], em.part[n.id]
			if pa != pb {
				if adj[pa] == nil {
					adj[pa] = map[int]bool{}
				}
				adj[pa][pb] = true
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var stack []int
	var dfs func(p int) []int
	dfs = func(p int) []int {
		color[p] = gray
		stack = append(stack, p)
		for q := range adj[p] {
			if color[q] == gray {
				// Extract the cycle from the stack.
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i] == q {
						return append([]int{}, stack[i:]...)
					}
				}
			}
			if color[q] == white {
				if c := dfs(q); c != nil {
					return c
				}
			}
		}
		color[p] = black
		stack = stack[:len(stack)-1]
		return nil
	}
	var partIDs []int
	seen := map[int]bool{}
	for _, p := range em.part {
		if !seen[p] {
			seen[p] = true
			partIDs = append(partIDs, p)
		}
	}
	sort.Ints(partIDs)
	for _, p := range partIDs {
		if color[p] == white {
			if c := dfs(p); c != nil {
				return c
			}
		}
	}
	return nil
}

// compactParts renumbers parts densely in first-appearance (topo) order.
func (em *emitter) compactParts() {
	remap := map[int]int{}
	for _, n := range em.topo {
		p := em.part[n.id]
		if _, ok := remap[p]; !ok {
			remap[p] = len(remap)
		}
	}
	for id := range em.part {
		em.part[id] = remap[em.part[id]]
	}
	em.nParts = len(remap)
}
