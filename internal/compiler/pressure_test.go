package compiler

import (
	"fmt"
	"testing"

	"distda/internal/core"
	"distda/internal/ir"
)

// TestRegisterPressureFallsBackToHost builds a kernel whose single
// partition would need more than the 32-register file (many distinct
// stream loads and live constants): the emitter must reject it cleanly and
// the region must fall back to host execution rather than fail compilation.
func TestRegisterPressureFallsBackToHost(t *testing.T) {
	// Sum of 40 distinct affine loads of one object: the ≤1-object
	// constraint keeps everything in one partition while each load, the
	// accumulating adds and the pinned scalars demand registers.
	var val ir.Expr = ir.C(0)
	for i := 0; i < 40; i++ {
		val = ir.AddE(val, ir.MulE(ir.Ld("A", ir.AddE(ir.V("i"), ir.C(float64(i)))), ir.C(float64(i+2))))
	}
	k := &ir.Kernel{
		Name:    "pressure",
		Params:  []string{"N"},
		Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "B", Len: 4096, ElemBytes: 8}},
		Body: []ir.Stmt{
			ir.Loop("i", ir.C(0), ir.P("N"), ir.St("B", ir.V("i"), val)),
		},
	}
	// Mono mode forces one partition, maximizing pressure.
	c, err := Compile(k, Options{Mode: ModeMono})
	if err != nil {
		t.Fatalf("Compile must not fail on pressure: %v", err)
	}
	r := c.Regions[0]
	if r.Class != core.ClassNotOffloaded {
		// If it did fit, the programs must still be register-valid.
		for _, a := range r.Accels {
			if err := a.Program.Validate(len(a.Accesses)); err != nil {
				t.Fatalf("oversized program emitted: %v", err)
			}
		}
		t.Logf("40-load kernel fit after register reuse (%d accels)", len(r.Accels))
	}
}

// TestDeepKernelsCompileOrFallBack sweeps expression widths across the
// register boundary: compilation never errors, and whatever offloads are
// emitted validate structurally.
func TestDeepKernelsCompileOrFallBack(t *testing.T) {
	for width := 4; width <= 64; width *= 2 {
		var val ir.Expr = ir.C(1)
		for i := 0; i < width; i++ {
			val = ir.AddE(val, ir.Ld("A", ir.AddE(ir.V("i"), ir.C(float64(i%8)))))
		}
		k := &ir.Kernel{
			Name:    fmt.Sprintf("deep%d", width),
			Params:  []string{"N"},
			Objects: []ir.ObjDecl{{Name: "A", Len: 4096, ElemBytes: 8}, {Name: "B", Len: 4096, ElemBytes: 8}},
			Body: []ir.Stmt{
				ir.Loop("i", ir.C(0), ir.P("N"), ir.St("B", ir.V("i"), val)),
			},
		}
		for _, mode := range []Mode{ModeDist, ModeMono} {
			c, err := Compile(k, Options{Mode: mode})
			if err != nil {
				t.Fatalf("width %d mode %d: %v", width, mode, err)
			}
			for _, r := range c.Regions {
				if err := r.Validate(); err != nil {
					t.Fatalf("width %d mode %d: %v", width, mode, err)
				}
			}
		}
	}
}
