package core

import (
	"testing"

	"distda/internal/ir"
	"distda/internal/microcode"
)

func TestIntrinsicNamesAndStats(t *testing.T) {
	if len(Intrinsics()) != int(NumIntrinsics) {
		t.Fatal("Intrinsics() length")
	}
	if CpConfigStream.String() != "cp_config_stream" || CpRun.String() != "cp_run" {
		t.Fatal("intrinsic names")
	}
	var s IntrinsicStats
	s.Record(CpProduce)
	s.Record(CpProduce)
	s.Record(CpRun)
	if s.Total() != 3 || !s.Used(CpProduce) || s.Used(CpRead) {
		t.Fatalf("stats = %+v", s)
	}
	var other IntrinsicStats
	other.Record(CpRead)
	s.Merge(&other)
	if !s.Used(CpRead) || s.Total() != 4 {
		t.Fatal("merge failed")
	}
}

// pipelineRegion builds a two-accel producer/consumer region:
// A0 streams obj X in and forwards over a channel; A1 consumes and streams
// to obj Y.
func pipelineRegion() *Region {
	prog0 := microcode.Program{
		{Code: microcode.Consume, Dst: 1, Access: 0, Pred: -1},
		{Code: microcode.ALUI, Dst: 2, A: 1, Bin: ir.Mul, Imm: 2, Pred: -1},
		{Code: microcode.Produce, A: 2, Access: 1, Pred: -1},
	}
	prog1 := microcode.Program{
		{Code: microcode.Consume, Dst: 1, Access: 0, Pred: -1},
		{Code: microcode.Produce, A: 1, Access: 1, Pred: -1},
	}
	a0 := &AccelDef{
		ID: 0, Name: "A0", Objects: []string{"X"}, AnchorObj: "X", Place: PlaceL3,
		Accesses: []AccessDecl{
			{ID: 0, Kind: StreamIn, Obj: "X", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.P("N")},
			{ID: 1, Kind: ChanOut, ElemBytes: 8, Peer: PeerRef{Accel: 1, Access: 0}},
		},
		Program: prog0,
		Trip:    TripSpec{Kind: TripCounted, Count: ir.P("N")},
	}
	a1 := &AccelDef{
		ID: 1, Name: "A1", Objects: []string{"Y"}, AnchorObj: "Y", Place: PlaceL3,
		Accesses: []AccessDecl{
			{ID: 0, Kind: ChanIn, ElemBytes: 8, Peer: PeerRef{Accel: 0, Access: 1}},
			{ID: 1, Kind: StreamOut, Obj: "Y", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.P("N")},
		},
		Program: prog1,
		Trip:    TripSpec{Kind: TripCounted, Count: ir.P("N")},
	}
	return &Region{Name: "pipe", Class: ClassParallelizable, Accels: []*AccelDef{a0, a1}}
}

func TestRegionValidateAccepts(t *testing.T) {
	if err := pipelineRegion().Validate(); err != nil {
		t.Fatalf("valid region rejected: %v", err)
	}
}

func TestRegionValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(r *Region)
	}{
		{"duplicate accel id", func(r *Region) { r.Accels[1].ID = 0 }},
		{"non-dense access ids", func(r *Region) { r.Accels[0].Accesses[1].ID = 5 }},
		{"zero elem bytes", func(r *Region) { r.Accels[0].Accesses[0].ElemBytes = 0 }},
		{"stream without object", func(r *Region) { r.Accels[0].Accesses[0].Obj = "" }},
		{"stream missing config", func(r *Region) { r.Accels[0].Accesses[0].Stride = nil }},
		{"unknown peer accel", func(r *Region) { r.Accels[0].Accesses[1].Peer.Accel = 9 }},
		{"unknown peer access", func(r *Region) { r.Accels[0].Accesses[1].Peer.Access = 9 }},
		{"peer not pointing back", func(r *Region) { r.Accels[1].Accesses[0].Peer = PeerRef{Accel: 1, Access: 0} }},
		{"counted trip without count", func(r *Region) { r.Accels[0].Trip.Count = nil }},
		{"while-input on output access", func(r *Region) {
			r.Accels[0].Trip = TripSpec{Kind: TripWhileInput, InputAccess: 1}
		}},
		{"bad program access", func(r *Region) { r.Accels[0].Program[0].Access = 7 }},
		{"scalar bind register range", func(r *Region) {
			r.Accels[0].ScalarInit = []ScalarBind{{Reg: 99, Expr: ir.C(0)}}
		}},
	}
	for _, m := range mutations {
		r := pipelineRegion()
		m.mut(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
	}
}

func TestAccelAccessLookup(t *testing.T) {
	a := pipelineRegion().Accels[0]
	if _, ok := a.Access(0); !ok {
		t.Fatal("access 0 missing")
	}
	if _, ok := a.Access(5); ok {
		t.Fatal("access 5 found")
	}
	if _, ok := a.Access(-1); ok {
		t.Fatal("access -1 found")
	}
}

func TestPlanBuffersChannelsGetOwnBuffers(t *testing.T) {
	r := pipelineRegion()
	a0 := r.Accels[0]
	streams := map[int]EvaledStream{0: {Start: 0, Stride: 1, Length: 64}}
	plan, err := PlanBuffers(a0, streams, 512, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Buffers) != 2 {
		t.Fatalf("buffers = %d, want 2", len(plan.Buffers))
	}
	if plan.ByAccess[0] == plan.ByAccess[1] {
		t.Fatal("stream and channel share a buffer")
	}
}

// combiningAccel builds an accel with three same-object stream reads at
// small constant distances (a stencil) plus one far away.
func combiningAccel() *AccelDef {
	accs := []AccessDecl{}
	for i := 0; i < 4; i++ {
		accs = append(accs, AccessDecl{
			ID: i, Kind: StreamIn, Obj: "A", ElemBytes: 8,
			Start: ir.C(float64(i)), Stride: ir.C(1), Length: ir.C(64),
		})
	}
	return &AccelDef{
		ID: 0, Name: "stencil", Objects: []string{"A"}, AnchorObj: "A",
		Accesses: accs,
		Trip:     TripSpec{Kind: TripCounted, Count: ir.C(64)},
	}
}

func TestPlanBuffersCombinesNearbyAccessors(t *testing.T) {
	a := combiningAccel()
	streams := map[int]EvaledStream{
		0: {Start: 0, Stride: 1}, 1: {Start: 1, Stride: 1},
		2: {Start: 2, Stride: 1}, 3: {Start: 10000, Stride: 1},
	}
	plan, err := PlanBuffers(a, streams, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Buffers) != 2 {
		t.Fatalf("buffers = %d, want 2 (combined stencil + far accessor): %+v", len(plan.Buffers), plan.Buffers)
	}
	if plan.ByAccess[0] != plan.ByAccess[1] || plan.ByAccess[1] != plan.ByAccess[2] {
		t.Fatal("stencil accessors not combined")
	}
	if plan.ByAccess[3] == plan.ByAccess[0] {
		t.Fatal("far accessor combined")
	}
}

func TestPlanBuffersCombiningDisabled(t *testing.T) {
	a := combiningAccel()
	streams := map[int]EvaledStream{
		0: {Start: 0, Stride: 1}, 1: {Start: 1, Stride: 1},
		2: {Start: 2, Stride: 1}, 3: {Start: 3, Stride: 1},
	}
	plan, err := PlanBuffers(a, streams, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Buffers) != 4 {
		t.Fatalf("buffers = %d, want 4 without combining", len(plan.Buffers))
	}
}

func TestPlanBuffersDifferentStridesNotCombined(t *testing.T) {
	a := combiningAccel()
	streams := map[int]EvaledStream{
		0: {Start: 0, Stride: 1}, 1: {Start: 1, Stride: 2},
		2: {Start: 2, Stride: 1}, 3: {Start: 3, Stride: 2},
	}
	plan, err := PlanBuffers(a, streams, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	// stride-1 pair combined, stride-2 pair combined: 2 buffers.
	if len(plan.Buffers) != 2 {
		t.Fatalf("buffers = %d, want 2", len(plan.Buffers))
	}
	if plan.ByAccess[0] != plan.ByAccess[2] || plan.ByAccess[1] != plan.ByAccess[3] {
		t.Fatal("stride grouping wrong")
	}
	if plan.ByAccess[0] == plan.ByAccess[1] {
		t.Fatal("different strides combined")
	}
}

func TestPlanBuffersMissingStreamConfig(t *testing.T) {
	a := combiningAccel()
	if _, err := PlanBuffers(a, nil, 64, true); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestAllocationTable(t *testing.T) {
	var tab AllocationTable
	if tab.AvgBuffers() != 0 {
		t.Fatal("empty table avg")
	}
	tab.RecordLaunch(&BufferPlan{Buffers: make([]BufferAlloc, 3)})
	tab.RecordLaunch(&BufferPlan{Buffers: make([]BufferAlloc, 1)})
	if tab.AvgBuffers() != 2 || tab.Launches() != 2 {
		t.Fatalf("avg = %g launches = %d", tab.AvgBuffers(), tab.Launches())
	}
}

func TestEnumStrings(t *testing.T) {
	if StreamIn.String() != "stream_in" || ChanOut.String() != "chan_out" {
		t.Fatal("access kind strings")
	}
	if PlaceL3.String() != "L3" || PlaceHost.String() != "host" {
		t.Fatal("placement strings")
	}
	if ClassParallelizable.String() != "parallelizable" || ClassNotOffloaded.String() != "not-offloaded" {
		t.Fatal("class strings")
	}
}
