// Package core defines the Dist-DA offload interface — the paper's primary
// contribution (§IV). It contains the Table II interface mechanisms, the
// distributed accelerator definitions the compiler emits (Fig. 3-4), and the
// hardware scheduler's buffer-allocation table with runtime multi-access
// combining (Fig. 2b/2d).
//
// The package is deliberately free of any execution-substrate types: the
// same definitions are mapped onto in-order cores or CGRA fabrics by the
// simulator, which is exactly the architecture-agnosticism requirement R3.
package core

import (
	"fmt"

	"distda/internal/ir"
	"distda/internal/microcode"
)

// Intrinsic enumerates the MMIO-based interface mechanisms of Table II.
type Intrinsic int

const (
	CpConfig Intrinsic = iota
	CpConfigStream
	CpConfigRandom
	CpProduce
	CpConsume
	CpStep
	CpFillBuf
	CpDrainBuf
	CpWrite
	CpRead
	CpFillRA
	CpDrainRA
	CpSetRF
	CpLoadRF
	CpRun
	NumIntrinsics
)

var intrinsicNames = [...]string{
	CpConfig: "cp_config", CpConfigStream: "cp_config_stream", CpConfigRandom: "cp_config_random",
	CpProduce: "cp_produce", CpConsume: "cp_consume", CpStep: "cp_step",
	CpFillBuf: "cp_fill_buf", CpDrainBuf: "cp_drain_buf",
	CpWrite: "cp_write", CpRead: "cp_read", CpFillRA: "cp_fill_ra", CpDrainRA: "cp_drain_ra",
	CpSetRF: "cp_set_rf", CpLoadRF: "cp_load_rf", CpRun: "cp_run",
}

func (i Intrinsic) String() string {
	if int(i) < len(intrinsicNames) {
		return intrinsicNames[i]
	}
	return fmt.Sprintf("intrinsic(%d)", int(i))
}

// Intrinsics lists all mechanisms in Table II order.
func Intrinsics() []Intrinsic {
	out := make([]Intrinsic, NumIntrinsics)
	for i := range out {
		out[i] = Intrinsic(i)
	}
	return out
}

// IntrinsicStats counts dynamic uses of each mechanism. Host-side counts
// feed the %init column of Table VI; the used-set feeds Table V.
type IntrinsicStats [NumIntrinsics]int64

// Record counts one invocation.
func (s *IntrinsicStats) Record(i Intrinsic) { s[i]++ }

// Total returns all invocations.
func (s *IntrinsicStats) Total() int64 {
	var t int64
	for _, v := range s {
		t += v
	}
	return t
}

// Used reports whether the mechanism was invoked at least once.
func (s *IntrinsicStats) Used(i Intrinsic) bool { return s[i] > 0 }

// Merge adds other's counts into s.
func (s *IntrinsicStats) Merge(other *IntrinsicStats) {
	for i := range s {
		s[i] += other[i]
	}
}

// AccessKind classifies an access-id declaration.
type AccessKind int

const (
	// StreamIn: the access unit's FSM prefetches a strided pattern from the
	// anchored memory object into the buffer; the accelerator consumes.
	StreamIn AccessKind = iota
	// StreamOut: the accelerator produces; the FSM drains to the object.
	StreamOut
	// ChanIn: operands arrive from a peer accelerator over the NoC (Fig. 4).
	ChanIn
	// ChanOut: operands are forwarded to a peer accelerator.
	ChanOut
)

var accessKindNames = [...]string{"stream_in", "stream_out", "chan_in", "chan_out"}

func (k AccessKind) String() string {
	if int(k) < len(accessKindNames) {
		return accessKindNames[k]
	}
	return fmt.Sprintf("accesskind(%d)", int(k))
}

// PeerRef names the remote endpoint of a channel access.
type PeerRef struct {
	Accel  int // AccelDef.ID
	Access int // access-id within that accel
}

// AccessDecl declares one access-id of an accelerator definition. Stream
// configuration expressions (Start/Stride/Length in elements) are evaluated
// by the host at launch time with the current outer induction variables —
// this is what cp_config_stream transfers.
type AccessDecl struct {
	ID        int
	Kind      AccessKind
	Obj       string // memory object (streams only)
	ElemBytes int
	Start     ir.Expr // first element index (streams)
	Stride    ir.Expr // element stride between iterations (streams)
	Length    ir.Expr // elements transferred per launch (streams)
	Peer      PeerRef // channels only
}

// TripKind selects the orchestrator's iteration condition (§IV-A: "the
// orchestrator contains the necessary conditions to iterate a given offload
// function, based on loop induction variables or the presence of an input
// value").
type TripKind int

const (
	// TripCounted: iterate a count evaluated at launch.
	TripCounted TripKind = iota
	// TripWhileInput: iterate while the named input channel delivers values
	// (terminates on the producer's end-of-stream).
	TripWhileInput
)

// TripSpec is an accelerator's orchestrator condition.
type TripSpec struct {
	Kind        TripKind
	Count       ir.Expr // TripCounted
	InputAccess int     // TripWhileInput: access-id to watch
}

// Placement is the compiler's vertical placement hint (§V-A-4).
type Placement int

const (
	// PlaceL3: co-locate with the anchored object's home L3 cluster.
	PlaceL3 Placement = iota
	// PlaceHost: short irregular accesses stay near the host, where the
	// control transfer is amortizable.
	PlaceHost
)

func (p Placement) String() string {
	if p == PlaceL3 {
		return "L3"
	}
	return "host"
}

// ScalarBind moves one scalar between a host expression/local and an
// accelerator register (cp_set_rf / cp_load_rf).
type ScalarBind struct {
	Reg  int
	Name string  // host local name (outputs) or diagnostic label (inputs)
	Expr ir.Expr // inputs: evaluated by the host at launch
}

// AccelDef is one distributed accelerator definition (Fig. 3-4): a
// partition of the offloaded DFG with co-located control.
type AccelDef struct {
	ID         int
	Name       string
	Objects    []string // memory objects accessed by this partition
	AnchorObj  string   // object anchoring the home cluster ("" with PlaceHost)
	Place      Placement
	Accesses   []AccessDecl
	Program    microcode.Program
	Trip       TripSpec
	ScalarInit []ScalarBind
	ScalarOut  []ScalarBind
	// Prefill names objects block-fetched into the accel's buffer at launch
	// via cp_fill_ra (user-annotated schedules, §VI-D); random loads of
	// these objects then hit the local SRAM.
	Prefill []string
}

// Access returns the declaration of access-id id.
func (a *AccelDef) Access(id int) (AccessDecl, bool) {
	if id < 0 || id >= len(a.Accesses) {
		return AccessDecl{}, false
	}
	return a.Accesses[id], true
}

// RegionClass is the conservative DFG classification of §V-A-2.
type RegionClass int

const (
	// ClassParallelizable: partitionable, no loop-carried memory dependence.
	ClassParallelizable RegionClass = iota
	// ClassPipelinable: partitionable but serialized by irregular writes.
	ClassPipelinable
	// ClassNotOffloaded: unresolved pointers or dependence cycles.
	ClassNotOffloaded
)

func (c RegionClass) String() string {
	switch c {
	case ClassParallelizable:
		return "parallelizable"
	case ClassPipelinable:
		return "pipelinable"
	default:
		return "not-offloaded"
	}
}

// Region is a compiled offload region: the innermost loop it replaces plus
// the distributed accelerator definitions executing it.
type Region struct {
	Name   string
	Loop   *ir.For
	Class  RegionClass
	Accels []*AccelDef
	// FoldedEpilogue: the store statement immediately following Loop was
	// folded into the offload (executed by the accelerator on the last
	// iteration); the host skips it and needs no scalar read-back.
	FoldedEpilogue bool
	// Backend, when non-empty, names the registered accelerator backend the
	// partitioner selected for this region (e.g. "pimdram" for regions whose
	// data footprint crosses the in-DRAM threshold), overriding the
	// configuration's default backend at launch.
	Backend string
}

// Validate checks structural consistency: dense access ids, channel peers
// that exist and point back, stream fields present, and valid programs.
func (r *Region) Validate() error {
	byID := map[int]*AccelDef{}
	for _, a := range r.Accels {
		if _, dup := byID[a.ID]; dup {
			return fmt.Errorf("core: region %q: duplicate accel id %d", r.Name, a.ID)
		}
		byID[a.ID] = a
	}
	for _, a := range r.Accels {
		for i, acc := range a.Accesses {
			if acc.ID != i {
				return fmt.Errorf("core: region %q accel %d: access ids not dense (%d at %d)", r.Name, a.ID, acc.ID, i)
			}
			if acc.ElemBytes <= 0 {
				return fmt.Errorf("core: region %q accel %d access %d: elem bytes %d", r.Name, a.ID, i, acc.ElemBytes)
			}
			switch acc.Kind {
			case StreamIn, StreamOut:
				if acc.Obj == "" {
					return fmt.Errorf("core: region %q accel %d access %d: stream without object", r.Name, a.ID, i)
				}
				if acc.Start == nil || acc.Stride == nil || acc.Length == nil {
					return fmt.Errorf("core: region %q accel %d access %d: stream missing config", r.Name, a.ID, i)
				}
			case ChanIn, ChanOut:
				peer, ok := byID[acc.Peer.Accel]
				if !ok {
					return fmt.Errorf("core: region %q accel %d access %d: unknown peer accel %d", r.Name, a.ID, i, acc.Peer.Accel)
				}
				pacc, ok := peer.Access(acc.Peer.Access)
				if !ok {
					return fmt.Errorf("core: region %q accel %d access %d: unknown peer access %d", r.Name, a.ID, i, acc.Peer.Access)
				}
				wantKind := ChanOut
				if acc.Kind == ChanOut {
					wantKind = ChanIn
				}
				if pacc.Kind != wantKind || pacc.Peer.Accel != a.ID || pacc.Peer.Access != acc.ID {
					return fmt.Errorf("core: region %q accel %d access %d: peer does not point back", r.Name, a.ID, i)
				}
			default:
				return fmt.Errorf("core: region %q accel %d access %d: unknown kind", r.Name, a.ID, i)
			}
		}
		if err := a.Program.Validate(len(a.Accesses)); err != nil {
			return fmt.Errorf("core: region %q accel %d: %v", r.Name, a.ID, err)
		}
		if a.Trip.Kind == TripCounted && a.Trip.Count == nil {
			return fmt.Errorf("core: region %q accel %d: counted trip without count", r.Name, a.ID)
		}
		if a.Trip.Kind == TripWhileInput {
			acc, ok := a.Access(a.Trip.InputAccess)
			if !ok || (acc.Kind != ChanIn && acc.Kind != StreamIn) {
				return fmt.Errorf("core: region %q accel %d: while-input trip needs an input access", r.Name, a.ID)
			}
		}
		for _, sb := range append(append([]ScalarBind{}, a.ScalarInit...), a.ScalarOut...) {
			if sb.Reg < 0 || sb.Reg >= microcode.NumRegs {
				return fmt.Errorf("core: region %q accel %d: scalar bind register %d out of range", r.Name, a.ID, sb.Reg)
			}
		}
	}
	return nil
}
