package core

import (
	"fmt"
	"sort"
)

// EvaledStream is a stream access's configuration after the host evaluates
// its expressions at launch (indices in elements).
type EvaledStream struct {
	Start  int64
	Stride int64
	Length int64
}

// BufferAlloc is one SRAM buffer granted by the hardware scheduler.
// Combined accessors (Fig. 2d case 1) share a buffer and therefore the data
// window fetched for one is reused by the others.
type BufferAlloc struct {
	Buf      int
	Accesses []int
	Obj      string // "" for channel buffers
}

// BufferPlan is the per-launch buffer allocation table entry set (Fig. 2b):
// the access-id → buf-id mapping for one accelerator context.
type BufferPlan struct {
	Buffers  []BufferAlloc
	ByAccess map[int]int
}

// PlanBuffers implements the hardware scheduler's allocation-time reuse
// detection (§IV-C "Reuse"): stream accessors on the same object with the
// same stride whose access distance is a (runtime) constant within the
// buffer-overflow limit are combined onto a single buffer; everything else
// gets its own buffer. combineWindow is the limit in elements; combining
// can be disabled for ablation.
func PlanBuffers(a *AccelDef, streams map[int]EvaledStream, combineWindow int64, combining bool) (*BufferPlan, error) {
	plan := &BufferPlan{ByAccess: map[int]int{}}
	newBuf := func(obj string, accesses ...int) {
		id := len(plan.Buffers)
		plan.Buffers = append(plan.Buffers, BufferAlloc{Buf: id, Accesses: accesses, Obj: obj})
		for _, acc := range accesses {
			plan.ByAccess[acc] = id
		}
	}

	// Group stream accessors by (object, direction, stride).
	type groupKey struct {
		obj    string
		kind   AccessKind
		stride int64
	}
	groups := map[groupKey][]int{}
	var groupOrder []groupKey
	for _, acc := range a.Accesses {
		switch acc.Kind {
		case ChanIn, ChanOut:
			newBuf("", acc.ID)
		case StreamIn, StreamOut:
			ev, ok := streams[acc.ID]
			if !ok {
				return nil, fmt.Errorf("core: PlanBuffers: accel %d access %d: missing evaluated stream config", a.ID, acc.ID)
			}
			k := groupKey{obj: acc.Obj, kind: acc.Kind, stride: ev.Stride}
			if _, seen := groups[k]; !seen {
				groupOrder = append(groupOrder, k)
			}
			groups[k] = append(groups[k], acc.ID)
		}
	}
	for _, k := range groupOrder {
		ids := groups[k]
		// Only read streams with positive stride are combinable: a shared
		// window buffer has one fill FSM and per-accessor read pointers.
		if !combining || len(ids) == 1 || k.kind != StreamIn || k.stride <= 0 {
			for _, id := range ids {
				newBuf(k.obj, id)
			}
			continue
		}
		// Combine ids whose start distance is a whole number of strides
		// within the window (case 1 of Fig. 2d); non-overlapping accessors
		// are distributed (case 2).
		sort.Slice(ids, func(i, j int) bool { return streams[ids[i]].Start < streams[ids[j]].Start })
		cur := []int{ids[0]}
		base := streams[ids[0]].Start
		for _, id := range ids[1:] {
			d := streams[id].Start - base
			if d <= combineWindow && d%k.stride == 0 {
				cur = append(cur, id)
			} else {
				newBuf(k.obj, cur...)
				cur = []int{id}
				base = streams[id].Start
			}
		}
		newBuf(k.obj, cur...)
	}
	return plan, nil
}

// AllocationTable is the scheduler's per-context record of buffer grants
// (Fig. 2b). It exists for reporting: Table VI's average-#buffers column is
// derived from it.
type AllocationTable struct {
	launches int
	buffers  int64
}

// RecordLaunch notes one accelerator launch and its granted buffer count.
func (t *AllocationTable) RecordLaunch(plan *BufferPlan) {
	t.launches++
	t.buffers += int64(len(plan.Buffers))
}

// AvgBuffers returns the average buffers per launch (0 if never launched).
func (t *AllocationTable) AvgBuffers() float64 {
	if t.launches == 0 {
		return 0
	}
	return float64(t.buffers) / float64(t.launches)
}

// Launches returns the recorded launch count.
func (t *AllocationTable) Launches() int { return t.launches }
