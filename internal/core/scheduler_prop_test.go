package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distda/internal/ir"
)

// TestPlanBuffersProperties checks the scheduler invariants over random
// access sets: every access maps to exactly one buffer, buffers never mix
// objects or directions, and combined accessors share object, stride and a
// bounded start distance.
func TestPlanBuffersProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	objs := []string{"A", "B", "C"}
	f := func(nRaw, windowRaw uint8, combining bool) bool {
		n := 1 + int(nRaw%12)
		window := int64(1 + windowRaw%100)
		def := &AccelDef{ID: 0, Trip: TripSpec{Kind: TripCounted, Count: ir.C(8)}}
		streams := map[int]EvaledStream{}
		for i := 0; i < n; i++ {
			kind := StreamIn
			if rng.Intn(4) == 0 {
				kind = StreamOut
			}
			def.Accesses = append(def.Accesses, AccessDecl{
				ID: i, Kind: kind, Obj: objs[rng.Intn(len(objs))], ElemBytes: 8,
				Start: ir.C(0), Stride: ir.C(1), Length: ir.C(64),
			})
			streams[i] = EvaledStream{
				Start:  int64(rng.Intn(300)),
				Stride: int64(1 + rng.Intn(3)),
				Length: 64,
			}
		}
		plan, err := PlanBuffers(def, streams, window, combining)
		if err != nil {
			return false
		}
		seen := map[int]int{}
		for _, ba := range plan.Buffers {
			if len(ba.Accesses) == 0 {
				return false
			}
			first := def.Accesses[ba.Accesses[0]]
			for _, id := range ba.Accesses {
				if _, dup := seen[id]; dup {
					return false // access in two buffers
				}
				seen[id] = ba.Buf
				acc := def.Accesses[id]
				if acc.Obj != first.Obj || acc.Kind != first.Kind {
					return false // mixed object or direction
				}
				if len(ba.Accesses) > 1 {
					if acc.Kind != StreamIn {
						return false // only read streams combine
					}
					d := streams[id].Start - streams[ba.Accesses[0]].Start
					if d < 0 {
						d = -d
					}
					if d > window || streams[id].Stride != streams[ba.Accesses[0]].Stride {
						return false
					}
					if d%streams[id].Stride != 0 {
						return false
					}
				}
			}
		}
		if len(seen) != n {
			return false // some access unmapped
		}
		for id, buf := range seen {
			if plan.ByAccess[id] != buf {
				return false
			}
		}
		// Without combining, exactly one access per buffer.
		if !combining {
			for _, ba := range plan.Buffers {
				if len(ba.Accesses) != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
