// Package dfg represents offloadable code regions as dataflow graphs of the
// three primitive units from §IV-A of the paper: memory objects, access
// nodes, and compute operations. Edges are annotated with communication
// widths in bytes; partitioning and placement operate on this graph.
package dfg

import (
	"fmt"
	"sort"
	"strings"

	"distda/internal/ir"
)

// Kind discriminates the three primitive node types (Fig. 3-2).
type Kind int

const (
	KindObject  Kind = iota // a memory object / application data structure
	KindAccess              // an address-generating load or store
	KindCompute             // an arithmetic operation
)

func (k Kind) String() string {
	switch k {
	case KindObject:
		return "object"
	case KindAccess:
		return "access"
	case KindCompute:
		return "compute"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Dir is an access direction.
type Dir int

const (
	Read Dir = iota
	Write
)

func (d Dir) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// Pattern classifies an access node's address stream the way the compiler's
// scalar-evolution analysis does (§V-A-2).
type Pattern int

const (
	// PatInvariant: the index does not vary with the offloaded loop.
	PatInvariant Pattern = iota
	// PatAffine: idx is affine in the offloaded induction variables —
	// a stream the access unit's FSM can generate.
	PatAffine
	// PatIndirect: idx depends on loaded data (B[A[i]], pointer chase).
	PatIndirect
)

func (p Pattern) String() string {
	switch p {
	case PatInvariant:
		return "invariant"
	case PatAffine:
		return "affine"
	case PatIndirect:
		return "indirect"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Node is one DFG node. Fields beyond ID/Kind are populated according to
// Kind: object nodes carry Obj; access nodes carry Obj, Dir, Pattern and the
// affine form when PatAffine; compute nodes carry Op metadata.
type Node struct {
	ID      int
	Kind    Kind
	Label   string
	Obj     string // object name (object & access nodes)
	Dir     Dir
	Pattern Pattern
	Affine  ir.Affine  // valid when Pattern == PatAffine
	Class   ir.OpClass // compute nodes: required functional-unit class
}

// Edge is a directed dataflow edge annotated with the operand width in
// bytes. Recurrence marks loop-carried edges (reductions, pointer chases);
// topological traversals skip them.
type Edge struct {
	From, To   int
	Bytes      int
	Recurrence bool
}

// Graph is a DFG. Node IDs are dense indices into Nodes.
type Graph struct {
	Nodes []*Node
	Edges []Edge
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// AddNode appends a node, assigning its ID.
func (g *Graph) AddNode(n *Node) *Node {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n
}

// AddEdge appends an edge after validating endpoints.
func (g *Graph) AddEdge(e Edge) error {
	if e.From < 0 || e.From >= len(g.Nodes) || e.To < 0 || e.To >= len(g.Nodes) {
		return fmt.Errorf("dfg: edge %d->%d out of range (have %d nodes)", e.From, e.To, len(g.Nodes))
	}
	if e.Bytes <= 0 {
		return fmt.Errorf("dfg: edge %d->%d has non-positive width %d", e.From, e.To, e.Bytes)
	}
	g.Edges = append(g.Edges, e)
	return nil
}

// Succs returns successor node IDs of id over forward edges.
func (g *Graph) Succs(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.From == id && !e.Recurrence {
			out = append(out, e.To)
		}
	}
	return out
}

// Preds returns predecessor node IDs of id over forward edges.
func (g *Graph) Preds(id int) []int {
	var out []int
	for _, e := range g.Edges {
		if e.To == id && !e.Recurrence {
			out = append(out, e.From)
		}
	}
	return out
}

// Objects returns the distinct object names referenced by object and access
// nodes, sorted.
func (g *Graph) Objects() []string {
	set := map[string]bool{}
	for _, n := range g.Nodes {
		if n.Obj != "" {
			set[n.Obj] = true
		}
	}
	out := make([]string, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// CountKind returns how many nodes have the given kind.
func (g *Graph) CountKind(k Kind) int {
	n := 0
	for _, nd := range g.Nodes {
		if nd.Kind == k {
			n++
		}
	}
	return n
}

// TopoLevels assigns each node the length of the longest forward-edge path
// reaching it (level 0 = sources) and returns levels grouped by depth.
// Recurrence edges are ignored. An error is returned if forward edges form
// a cycle.
func (g *Graph) TopoLevels() ([][]int, error) {
	n := len(g.Nodes)
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.Edges {
		if e.Recurrence {
			continue
		}
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	level := make([]int, n)
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range succ[id] {
			if l := level[id] + 1; l > level[s] {
				level[s] = l
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != n {
		return nil, fmt.Errorf("dfg: forward edges contain a cycle (%d of %d nodes reachable)", seen, n)
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	out := make([][]int, maxLevel+1)
	for id, l := range level {
		out[l] = append(out[l], id)
	}
	return out, nil
}

// Dims returns the two-dimensional span of the instruction DFG (access and
// compute nodes; object nodes excluded — a stored-then-loaded object forms
// a benign cycle) when ordered topologically: (width, height) as reported
// in Table VI's "DFG dim" column.
func (g *Graph) Dims() (w, h int, err error) {
	n := len(g.Nodes)
	keep := make([]bool, n)
	for i, nd := range g.Nodes {
		keep[i] = nd.Kind != KindObject
	}
	indeg := make([]int, n)
	succ := make([][]int, n)
	for _, e := range g.Edges {
		if e.Recurrence || !keep[e.From] || !keep[e.To] {
			continue
		}
		indeg[e.To]++
		succ[e.From] = append(succ[e.From], e.To)
	}
	level := make([]int, n)
	var queue []int
	total := 0
	for i := 0; i < n; i++ {
		if keep[i] {
			total++
			if indeg[i] == 0 {
				queue = append(queue, i)
			}
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, s := range succ[id] {
			if l := level[id] + 1; l > level[s] {
				level[s] = l
			}
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if seen != total {
		return 0, 0, fmt.Errorf("dfg: instruction subgraph contains a cycle")
	}
	widths := map[int]int{}
	maxLevel := -1
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		widths[level[i]]++
		if widths[level[i]] > w {
			w = widths[level[i]]
		}
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	return w, maxLevel + 1, nil
}

// Dot renders the graph in Graphviz dot syntax for the inspect tool.
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	for _, n := range g.Nodes {
		shape := "ellipse"
		switch n.Kind {
		case KindObject:
			shape = "box3d"
		case KindAccess:
			shape = "box"
		}
		label := n.Label
		if label == "" {
			label = fmt.Sprintf("%s %d", n.Kind, n.ID)
		}
		fmt.Fprintf(&b, "  n%d [shape=%s,label=%q];\n", n.ID, shape, label)
	}
	for _, e := range g.Edges {
		style := ""
		if e.Recurrence {
			style = ",style=dashed"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%dB\"%s];\n", e.From, e.To, e.Bytes, style)
	}
	b.WriteString("}\n")
	return b.String()
}
