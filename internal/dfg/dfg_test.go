package dfg

import (
	"strings"
	"testing"

	"distda/internal/ir"
)

// diamond builds: obj -> load -> [mul, add] -> store -> obj2
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	objA := g.AddNode(&Node{Kind: KindObject, Obj: "A", Label: "A"})
	ld := g.AddNode(&Node{Kind: KindAccess, Obj: "A", Dir: Read, Pattern: PatAffine})
	mul := g.AddNode(&Node{Kind: KindCompute, Class: ir.ClassComplex, Label: "mul"})
	add := g.AddNode(&Node{Kind: KindCompute, Class: ir.ClassInt, Label: "add"})
	st := g.AddNode(&Node{Kind: KindAccess, Obj: "B", Dir: Write, Pattern: PatAffine})
	objB := g.AddNode(&Node{Kind: KindObject, Obj: "B", Label: "B"})
	for _, e := range []Edge{
		{From: objA.ID, To: ld.ID, Bytes: 8},
		{From: ld.ID, To: mul.ID, Bytes: 8},
		{From: ld.ID, To: add.ID, Bytes: 8},
		{From: mul.ID, To: st.ID, Bytes: 8},
		{From: add.ID, To: st.ID, Bytes: 8},
		{From: st.ID, To: objB.ID, Bytes: 8},
	} {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	g.AddNode(&Node{Kind: KindCompute})
	if err := g.AddEdge(Edge{From: 0, To: 5, Bytes: 8}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(Edge{From: 0, To: 0, Bytes: 0}); err == nil {
		t.Fatal("zero-width edge accepted")
	}
}

func TestSuccsPreds(t *testing.T) {
	g := diamond(t)
	if s := g.Succs(1); len(s) != 2 {
		t.Fatalf("Succs(load) = %v", s)
	}
	if p := g.Preds(4); len(p) != 2 {
		t.Fatalf("Preds(store) = %v", p)
	}
}

func TestObjectsAndCounts(t *testing.T) {
	g := diamond(t)
	objs := g.Objects()
	if len(objs) != 2 || objs[0] != "A" || objs[1] != "B" {
		t.Fatalf("Objects = %v", objs)
	}
	if g.CountKind(KindCompute) != 2 || g.CountKind(KindAccess) != 2 || g.CountKind(KindObject) != 2 {
		t.Fatal("CountKind wrong")
	}
}

func TestTopoLevelsAndDims(t *testing.T) {
	g := diamond(t)
	levels, err := g.TopoLevels()
	if err != nil {
		t.Fatal(err)
	}
	// obj(0) -> ld(1) -> {mul,add}(2) -> st(3) -> obj2(4)
	if len(levels) != 5 {
		t.Fatalf("levels = %d, want 5", len(levels))
	}
	if len(levels[2]) != 2 {
		t.Fatalf("level 2 = %v, want 2 nodes", levels[2])
	}
	// Dims excludes object nodes: ld -> {mul,add} -> st.
	w, h, err := g.Dims()
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 || h != 3 {
		t.Fatalf("Dims = %dx%d, want 2x3", w, h)
	}
}

func TestRecurrenceEdgesIgnoredInTopo(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindCompute, Label: "acc"})
	b := g.AddNode(&Node{Kind: KindCompute, Label: "add"})
	if err := g.AddEdge(Edge{From: a.ID, To: b.ID, Bytes: 8}); err != nil {
		t.Fatal(err)
	}
	// Loop-carried back edge.
	if err := g.AddEdge(Edge{From: b.ID, To: a.ID, Bytes: 8, Recurrence: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopoLevels(); err != nil {
		t.Fatalf("recurrence edge broke topo: %v", err)
	}
}

func TestForwardCycleDetected(t *testing.T) {
	g := New()
	a := g.AddNode(&Node{Kind: KindCompute})
	b := g.AddNode(&Node{Kind: KindCompute})
	_ = g.AddEdge(Edge{From: a.ID, To: b.ID, Bytes: 8})
	_ = g.AddEdge(Edge{From: b.ID, To: a.ID, Bytes: 8})
	if _, err := g.TopoLevels(); err == nil {
		t.Fatal("forward cycle not detected")
	}
}

func TestDotOutput(t *testing.T) {
	g := diamond(t)
	dot := g.Dot("diamond")
	for _, want := range []string{"digraph", "box3d", "8B", "->"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
}

func TestKindPatternDirStrings(t *testing.T) {
	if KindObject.String() != "object" || KindAccess.String() != "access" || KindCompute.String() != "compute" {
		t.Fatal("Kind strings")
	}
	if PatInvariant.String() != "invariant" || PatAffine.String() != "affine" || PatIndirect.String() != "indirect" {
		t.Fatal("Pattern strings")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Dir strings")
	}
}
