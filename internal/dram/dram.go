// Package dram models the off-chip LPDDR memory (latency and energy per
// line access) and the slab allocator the runtime uses for
// accelerator-visible data structures (§IV-D): one large contiguous region
// per memory object so translation is a base+offset lookup.
package dram

import (
	"fmt"
	"sort"

	"distda/internal/energy"
)

// Config holds LPDDR timing parameters.
type Config struct {
	LatencyCycles int   // host-clock cycles per line access (row-buffer mixed)
	LineBytes     int64 // transfer granularity
}

// DefaultConfig matches Table III's LPDDR 2 GB part at a 2 GHz host clock.
func DefaultConfig() Config {
	return Config{LatencyCycles: 160, LineBytes: 64}
}

// Memory is the DRAM device model.
type Memory struct {
	cfg   Config
	meter *energy.Meter

	Accesses int64
	Reads    int64
	Writes   int64

	// chanAcc, when non-nil, holds per-channel access counts for the
	// profiling layer (EnableChannelProfile). Accounting is purely
	// observational: channel selection never changes the returned latency.
	chanAcc []int64
}

// NewMemory returns a memory with the given config, metering into m.
func NewMemory(cfg Config, m *energy.Meter) *Memory {
	return &Memory{cfg: cfg, meter: m}
}

// EnableChannelProfile turns on per-channel access attribution across n
// channels (no-op for n <= 0). Off by default: the counters cost one slice
// index per access only when enabled.
func (mem *Memory) EnableChannelProfile(n int) {
	if n > 0 {
		mem.chanAcc = make([]int64, n)
	}
}

// ChannelAccesses returns the per-channel access counts (nil when channel
// profiling is disabled).
func (mem *Memory) ChannelAccesses() []int64 { return mem.chanAcc }

// channelOf maps a line address to a channel: channels interleave at 4 KiB
// granularity, matching the slab's page alignment so one object's pages
// stripe across channels.
func (mem *Memory) channelOf(addr int64) int {
	if addr < 0 {
		addr = -addr
	}
	return int((addr >> 12) % int64(len(mem.chanAcc)))
}

// Access models one line access and returns its latency in host cycles.
func (mem *Memory) Access(write bool) int {
	mem.Accesses++
	if write {
		mem.Writes++
	} else {
		mem.Reads++
	}
	if mem.meter != nil {
		mem.meter.Add(energy.CatDRAM, mem.meter.Table.DRAMAccessPJ)
	}
	return mem.cfg.LatencyCycles
}

// AccessAt models one line access carrying its address, so the profiling
// layer can attribute it to a channel. Timing and energy are identical to
// Access — the address feeds observation only.
func (mem *Memory) AccessAt(addr int64, write bool) int {
	if mem.chanAcc != nil {
		mem.chanAcc[mem.channelOf(addr)]++
	}
	return mem.Access(write)
}

// AddCounters folds another memory's access counters into mem: totals,
// reads, writes and the per-channel profile (when both carry one) add.
// Integer counts only, so folding shard memories in any order reproduces
// the serial totals exactly. Energy is not transferred — the shard's meter
// log owns it.
func (mem *Memory) AddCounters(o *Memory) {
	if o == nil {
		return
	}
	mem.Accesses += o.Accesses
	mem.Reads += o.Reads
	mem.Writes += o.Writes
	if mem.chanAcc != nil && o.chanAcc != nil && len(mem.chanAcc) == len(o.chanAcc) {
		for i, n := range o.chanAcc {
			mem.chanAcc[i] += n
		}
	}
}

// LatencyCycles returns the configured per-access latency in host cycles.
func (mem *Memory) LatencyCycles() int { return mem.cfg.LatencyCycles }

// LineBytes returns the transfer granularity.
func (mem *Memory) LineBytes() int64 { return mem.cfg.LineBytes }

// Region is an allocated address range.
type Region struct {
	Base  int64
	Bytes int64
}

// End returns one past the last byte.
func (r Region) End() int64 { return r.Base + r.Bytes }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr int64) bool { return addr >= r.Base && addr < r.End() }

// Slab is a bump allocator over a large contiguous accelerator-visible
// arena. Objects are page-aligned so the per-object translation block in
// each accelerator is a single base register (§IV-D).
//
// Allocations are held in a slice in allocation order: a kernel owns at
// most a handful of objects, and Lookup sits on the simulator's per-access
// translation path where a linear scan over short names beats the string
// hash a map lookup pays (it was a visible slice of the whole-repro
// profile).
type Slab struct {
	arena  Region
	next   int64
	align  int64
	allocs []alloc
}

type alloc struct {
	name string
	r    Region
}

// NewSlab creates a slab allocator over [base, base+size) with the given
// alignment (must be a power of two).
func NewSlab(base, size, align int64) (*Slab, error) {
	if size <= 0 {
		return nil, fmt.Errorf("dram: slab size must be positive, got %d", size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("dram: slab alignment must be a positive power of two, got %d", align)
	}
	return &Slab{
		arena: Region{Base: base, Bytes: size},
		next:  base,
		align: align,
	}, nil
}

// Alloc reserves bytes for the named object and returns its region.
func (s *Slab) Alloc(name string, bytes int64) (Region, error) {
	if _, ok := s.Lookup(name); ok {
		return Region{}, fmt.Errorf("dram: object %q already allocated", name)
	}
	if bytes <= 0 {
		return Region{}, fmt.Errorf("dram: allocation of %d bytes for %q", bytes, name)
	}
	base := (s.next + s.align - 1) &^ (s.align - 1)
	if base+bytes > s.arena.End() {
		return Region{}, fmt.Errorf("dram: slab exhausted allocating %d bytes for %q (free %d)",
			bytes, name, s.arena.End()-base)
	}
	r := Region{Base: base, Bytes: bytes}
	s.allocs = append(s.allocs, alloc{name: name, r: r})
	s.next = base + bytes
	return r, nil
}

// Lookup returns the region of a named object.
func (s *Slab) Lookup(name string) (Region, bool) {
	for i := range s.allocs {
		if s.allocs[i].name == name {
			return s.allocs[i].r, true
		}
	}
	return Region{}, false
}

// Objects returns allocated object names, sorted.
func (s *Slab) Objects() []string {
	out := make([]string, 0, len(s.allocs))
	for _, a := range s.allocs {
		out = append(out, a.name)
	}
	sort.Strings(out)
	return out
}

// Reset frees everything (end of kernel context).
func (s *Slab) Reset() {
	s.next = s.arena.Base
	s.allocs = s.allocs[:0]
}

// OwnerOf returns the name of the object containing addr, if any.
func (s *Slab) OwnerOf(addr int64) (string, bool) {
	for _, a := range s.allocs {
		if a.r.Contains(addr) {
			return a.name, true
		}
	}
	return "", false
}
