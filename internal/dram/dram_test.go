package dram

import (
	"testing"
	"testing/quick"

	"distda/internal/energy"
)

func TestMemoryAccessCounting(t *testing.T) {
	m := energy.NewMeter(energy.Default32nm())
	mem := NewMemory(DefaultConfig(), m)
	lat := mem.Access(false)
	if lat != DefaultConfig().LatencyCycles {
		t.Fatalf("latency = %d", lat)
	}
	mem.Access(true)
	if mem.Accesses != 2 || mem.Reads != 1 || mem.Writes != 1 {
		t.Fatalf("counts = %d/%d/%d", mem.Accesses, mem.Reads, mem.Writes)
	}
	if m.Get(energy.CatDRAM) != 2*m.Table.DRAMAccessPJ {
		t.Fatalf("energy = %g", m.Get(energy.CatDRAM))
	}
	if mem.LineBytes() != 64 {
		t.Fatalf("line = %d", mem.LineBytes())
	}
}

func TestSlabBasics(t *testing.T) {
	s, err := NewSlab(0x1000, 1<<20, 4096)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Alloc("A", 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Base%4096 != 0 || a.Base < 0x1000 {
		t.Fatalf("A base = %#x", a.Base)
	}
	b, err := s.Alloc("B", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if b.Base < a.End() {
		t.Fatalf("B overlaps A: %#x < %#x", b.Base, a.End())
	}
	if _, err := s.Alloc("A", 10); err == nil {
		t.Fatal("duplicate allocation accepted")
	}
	if _, err := s.Alloc("Z", 0); err == nil {
		t.Fatal("zero-byte allocation accepted")
	}
	if _, err := s.Alloc("huge", 2<<20); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	r, ok := s.Lookup("B")
	if !ok || r != b {
		t.Fatal("Lookup B")
	}
	if owner, ok := s.OwnerOf(a.Base + 1); !ok || owner != "A" {
		t.Fatalf("OwnerOf = %q/%v", owner, ok)
	}
	if _, ok := s.OwnerOf(0); ok {
		t.Fatal("OwnerOf outside allocations")
	}
	objs := s.Objects()
	if len(objs) != 2 || objs[0] != "A" || objs[1] != "B" {
		t.Fatalf("Objects = %v", objs)
	}
	s.Reset()
	if len(s.Objects()) != 0 {
		t.Fatal("Reset did not clear")
	}
	if _, err := s.Alloc("A", 10); err != nil {
		t.Fatalf("realloc after reset: %v", err)
	}
}

func TestSlabRejectsBadConfig(t *testing.T) {
	if _, err := NewSlab(0, 0, 64); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewSlab(0, 100, 3); err == nil {
		t.Fatal("non-power-of-two align accepted")
	}
	if _, err := NewSlab(0, 100, 0); err == nil {
		t.Fatal("zero align accepted")
	}
}

// Property: allocations never overlap and are always aligned.
func TestSlabNonOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s, err := NewSlab(0, 1<<30, 64)
		if err != nil {
			return false
		}
		var regions []Region
		for i, raw := range sizes {
			if i > 50 {
				break
			}
			bytes := int64(raw%10000) + 1
			r, err := s.Alloc(name(i), bytes)
			if err != nil {
				return false
			}
			if r.Base%64 != 0 || r.Bytes != bytes {
				return false
			}
			for _, prev := range regions {
				if r.Base < prev.End() && prev.Base < r.End() {
					return false // overlap
				}
			}
			regions = append(regions, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func name(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i/26)) }

func TestRegionHelpers(t *testing.T) {
	r := Region{Base: 100, Bytes: 10}
	if r.End() != 110 {
		t.Fatal("End")
	}
	if !r.Contains(100) || !r.Contains(109) || r.Contains(110) || r.Contains(99) {
		t.Fatal("Contains")
	}
}
