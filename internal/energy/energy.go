// Package energy models per-event dynamic energy for all system components
// (processor, caches, interconnect, accelerators, access buffers, memory)
// in the spirit of the paper's McPAT + Cacti 32 nm configuration (§VI).
//
// Absolute joules are not the point — the paper's conclusions rest on the
// well-established ordering of per-event costs (DRAM ≫ L3 ≫ L2 ≫ L1 ≫ local
// buffer ≫ ALU) and on the large per-instruction overhead of an out-of-order
// pipeline versus an in-order core or a spatially configured fabric. The
// table below encodes published 32 nm-class values in picojoules.
package energy

import (
	"fmt"
	"sort"
	"strings"
)

// Table holds per-event dynamic energy costs in picojoules.
type Table struct {
	// Cache and memory, per access (one line or one word as noted).
	L1AccessPJ   float64 // per L1 access (word)
	L2AccessPJ   float64 // per L2 access (line probe)
	L3AccessPJ   float64 // per L3 bank access (line)
	DRAMAccessPJ float64 // per 64 B line activate+transfer (LPDDR)

	// Interconnect.
	NoCFlitHopPJ float64 // per 16 B flit per router hop
	MMIOPJ       float64 // per MMIO config/control transaction (endpoint cost)

	// Computation, per operation by functional class.
	IntOpPJ     float64
	ComplexOpPJ float64 // integer mul/div
	FloatOpPJ   float64

	// Per-instruction pipeline overhead (fetch/decode/schedule/commit).
	OoOInstrPJ  float64 // 5-way OoO: rename, ROB, LSQ, bypass — dominates
	IOInstrPJ   float64 // single-issue in-order accelerator core
	CGRAOpPJ    float64 // statically mapped fabric: config-driven, no fetch
	PIMOpPJ     float64 // bank-level in-DRAM compute unit: no front end
	RegFilePJ   float64 // scalar register file read/write
	BufferPJ    float64 // access-unit SRAM buffer read/write (per word)
	PrefetchPJ  float64 // prefetcher decision/issue overhead
	TranslatePJ float64 // obj-id+offset -> physical translation block lookup
}

// Default32nm returns the energy table used throughout the evaluation.
// Values follow published 32 nm characterizations (McPAT/Cacti-class):
// a 32 KB L1 read ≈ 20 pJ, 128 KB L2 ≈ 46 pJ, 2 MB NUCA L3 bank ≈ 94 pJ,
// an LPDDR line access ≈ 4.2 nJ (≈8 pJ/bit), mesh router+link ≈ 35
// pJ/flit/hop, 64-bit int add ≈ 0.6 pJ, int mul ≈ 3.5 pJ, FP op ≈ 4.6 pJ,
// and an Ice-Lake-class OoO pays ≈ 180 pJ of fetch/rename/ROB/LSQ overhead
// per instruction versus ≈ 14 pJ for a single-issue in-order core and
// ≈ 1.5 pJ per statically configured CGRA op.
func Default32nm() Table {
	return Table{
		L1AccessPJ:   20,
		L2AccessPJ:   46,
		L3AccessPJ:   94,
		DRAMAccessPJ: 4200,
		NoCFlitHopPJ: 35,
		MMIOPJ:       30,
		IntOpPJ:      0.6,
		ComplexOpPJ:  3.5,
		FloatOpPJ:    4.6,
		OoOInstrPJ:   180,
		IOInstrPJ:    14,
		CGRAOpPJ:     1.5,
		PIMOpPJ:      2.0,
		RegFilePJ:    1.2,
		BufferPJ:     2.4,
		PrefetchPJ:   4,
		TranslatePJ:  2,
	}
}

// Meter accumulates energy by component category. The canonical
// categories are backed by fixed array slots: Add sits on the per-event
// hot path of every simulated cache access, buffer touch and ALU op, and
// a map assignment there (string hash + probe) showed up as the single
// largest cost in the whole-repro CPU profile. Non-canonical categories
// fall back to a map so the API stays open.
type Meter struct {
	Table   Table
	slots   [numCats]float64
	touched [numCats]bool // category has been Added (even with 0 pJ)
	pj      map[string]float64
	log     *Log
}

// NewMeter returns a meter over the given table.
func NewMeter(t Table) *Meter {
	return &Meter{Table: t, pj: map[string]float64{}}
}

// Event is one recorded Add: the charge plus the (cycle, component) stamp
// under which it occurred. Slot is the canonical-category accumulator index,
// or the bitwise complement of an index into the log's interned open-
// category names. Keeping the struct pointer-free matters: logs grow to
// tens of millions of events per sharded launch, and a string field would
// make the garbage collector scan every one of them.
type Event struct {
	Cycle int64
	PJ    float64
	Comp  int32
	Slot  int16
}

// Log is an energy event recorder for sharded simulation. Float addition is
// not associative, so per-shard meters cannot simply sum their slots into a
// shared meter without perturbing the low bits relative to a serial run.
// Instead each shard's meter records its Adds as stamped events; the shards'
// logs are then merged by (Cycle, Comp) — the exact order in which a serial
// engine would have interleaved them — and replayed into the run's meter
// (ReplayMerge), reproducing the serial accumulation bit for bit.
//
// The owner of the logging meter keeps Cycle and Comp current (the sharded
// launch path updates them before every component step). A Log is
// single-goroutine state: one log per shard, never shared.
type Log struct {
	Cycle  int64
	Comp   int32
	Events []Event
	names  []string // interned open-category names, indexed by ^Event.Slot
}

// nameSlot interns an open-category name and returns its encoded slot. The
// list stays tiny (open categories are the exception), so a linear scan
// beats any map.
func (l *Log) nameSlot(name string) int16 {
	for i, n := range l.names {
		if n == name {
			return ^int16(i)
		}
	}
	l.names = append(l.names, name)
	return ^int16(len(l.names) - 1)
}

// Reset empties the log for reuse, keeping the event buffer's capacity —
// sharded launches recycle logs so steady-state recording allocates
// nothing.
func (l *Log) Reset() {
	l.Cycle, l.Comp = 0, 0
	l.Events = l.Events[:0]
	l.names = l.names[:0]
}

// StartLog switches the meter into recording mode: every subsequent Add is
// appended to l instead of accumulating, stamped with l's current Cycle and
// Comp. Pass nil to return to direct accumulation.
func (m *Meter) StartLog(l *Log) { m.log = l }

// Add accumulates pJ picojoules under the named category.
func (m *Meter) Add(category string, pj float64) {
	if m.log != nil {
		l := m.log
		slot := int16(catIndex(category))
		if slot < 0 {
			slot = l.nameSlot(category)
		}
		l.Events = append(l.Events, Event{Cycle: l.Cycle, PJ: pj, Comp: l.Comp, Slot: slot})
		return
	}
	if i := catIndex(category); i >= 0 {
		m.slots[i] += pj
		m.touched[i] = true
		return
	}
	m.pj[category] += pj
}

// ReplayMerge folds the events of the given logs into the meter in the
// canonical serial order: ascending (Cycle, Comp), with each log's internal
// order preserved. Each log must be internally sorted by (Cycle, Comp) —
// which holds by construction when the stamps follow a cycle-stepped
// engine's (cycle, registration-order) component schedule — and the logs'
// Comp sets must be disjoint, so the merged order is unambiguous. Replaying
// performs the same float additions, in the same order, that a serial run
// would have performed directly.
func (m *Meter) ReplayMerge(logs []*Log) {
	idx := make([]int, len(logs))
	for {
		best := -1
		for i, l := range logs {
			if idx[i] >= len(l.Events) {
				continue
			}
			ev := &l.Events[idx[i]]
			if best < 0 {
				best = i
				continue
			}
			b := &logs[best].Events[idx[best]]
			if ev.Cycle < b.Cycle || (ev.Cycle == b.Cycle && ev.Comp < b.Comp) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		ev := &logs[best].Events[idx[best]]
		idx[best]++
		if ev.Slot >= 0 {
			m.slots[ev.Slot] += ev.PJ
			m.touched[ev.Slot] = true
		} else {
			m.pj[logs[best].names[^ev.Slot]] += ev.PJ
		}
	}
}

// AddN accumulates n events of cost each pJ.
func (m *Meter) AddN(category string, n int64, each float64) {
	m.Add(category, float64(n)*each)
}

// Get returns the accumulated picojoules for a category.
func (m *Meter) Get(category string) float64 {
	if i := catIndex(category); i >= 0 {
		return m.slots[i]
	}
	return m.pj[category]
}

// TotalPJ returns the grand total in picojoules. The sum runs in sorted
// category order: map iteration order is random per run, and float
// addition is not associative, so a map-order sum would make the low
// bits of the total differ between otherwise identical runs — breaking
// bit-exact reproducibility of rendered reports.
func (m *Meter) TotalPJ() float64 {
	t := 0.0
	for _, c := range m.Categories() {
		t += m.Get(c)
	}
	return t
}

// Categories returns the names of every category that has been charged
// at least once, sorted.
func (m *Meter) Categories() []string {
	out := make([]string, 0, numCats+len(m.pj))
	for i, name := range catNames {
		if m.touched[i] {
			out = append(out, name)
		}
	}
	for k := range m.pj {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders a breakdown for reports.
func (m *Meter) String() string {
	var b strings.Builder
	for _, c := range m.Categories() {
		fmt.Fprintf(&b, "%-12s %12.1f pJ\n", c, m.Get(c))
	}
	fmt.Fprintf(&b, "%-12s %12.1f pJ\n", "total", m.TotalPJ())
	return b.String()
}

// Canonical category names shared by all components.
const (
	CatHost   = "host"
	CatL1     = "l1"
	CatL2     = "l2"
	CatL3     = "l3"
	CatDRAM   = "dram"
	CatNoC    = "noc"
	CatAccel  = "accel"
	CatBuffer = "buffer"
	CatMMIO   = "mmio"
)

// catNames lists the canonical categories in slot order.
var catNames = [...]string{
	CatHost, CatL1, CatL2, CatL3, CatDRAM, CatNoC, CatAccel, CatBuffer, CatMMIO,
}

const numCats = len(catNames)

// catIndex maps a canonical category name to its accumulator slot, or -1.
// A string switch compiles to length dispatch plus a handful of compares —
// far cheaper than the hash a map assignment would pay per event.
func catIndex(category string) int {
	switch category {
	case CatHost:
		return 0
	case CatL1:
		return 1
	case CatL2:
		return 2
	case CatL3:
		return 3
	case CatDRAM:
		return 4
	case CatNoC:
		return 5
	case CatAccel:
		return 6
	case CatBuffer:
		return 7
	case CatMMIO:
		return 8
	}
	return -1
}

// Area model (§VI-E). Areas in mm² at 32 nm, matching the paper's overhead
// accounting: an in-order accelerator complex is 1.9 % of one L3 cache
// cluster and a provisioned 5x5 CGRA tile complex 2.9 %.
type Area struct {
	L3ClusterMM2 float64 // one 256 KB L3 cluster incl. NoC router share
	IOCoreMM2    float64 // 1-issue IO core + 2 complex + 2 FP ALUs + buffers + ACP
	CGRATileMM2  float64 // 5x5 CGRA (4 FP, 4 complex, 15 int PEs) + buffers + ACP
	ChipMM2      float64 // whole chip
}

// DefaultArea returns the area model calibrated so the reported overheads
// reproduce the paper's percentages.
func DefaultArea() Area {
	const cluster = 4.6 // mm², 256 KB NUCA cluster at 32 nm
	return Area{
		L3ClusterMM2: cluster,
		IOCoreMM2:    cluster * 0.019,
		CGRATileMM2:  cluster * 0.029,
		ChipMM2:      cluster * 8 / 0.162, // clusters are ~16 % of the chip
	}
}

// IOOverheadPerCluster returns the IO-core area as a fraction of a cluster.
func (a Area) IOOverheadPerCluster() float64 { return a.IOCoreMM2 / a.L3ClusterMM2 }

// CGRAOverheadPerCluster returns the CGRA area as a fraction of a cluster.
func (a Area) CGRAOverheadPerCluster() float64 { return a.CGRATileMM2 / a.L3ClusterMM2 }

// IOOverheadChip returns total IO-core area (8 clusters) over chip area.
func (a Area) IOOverheadChip() float64 { return 8 * a.IOCoreMM2 / a.ChipMM2 }

// CGRAOverheadChip returns total CGRA area (8 clusters) over chip area.
func (a Area) CGRAOverheadChip() float64 { return 8 * a.CGRATileMM2 / a.ChipMM2 }
