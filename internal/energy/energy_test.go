package energy

import (
	"math"
	"strings"
	"testing"
)

func TestMeterAccumulation(t *testing.T) {
	m := NewMeter(Default32nm())
	m.Add(CatL1, 20)
	m.Add(CatL1, 30)
	m.AddN(CatDRAM, 3, 100)
	if m.Get(CatL1) != 50 {
		t.Fatalf("L1 = %g", m.Get(CatL1))
	}
	if m.Get(CatDRAM) != 300 {
		t.Fatalf("DRAM = %g", m.Get(CatDRAM))
	}
	if m.TotalPJ() != 350 {
		t.Fatalf("total = %g", m.TotalPJ())
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != CatDRAM || cats[1] != CatL1 {
		t.Fatalf("categories = %v", cats)
	}
	if !strings.Contains(m.String(), "total") {
		t.Fatal("String() missing total")
	}
}

func TestDefaultTableOrdering(t *testing.T) {
	// The hierarchy-cost ordering that drives every paper conclusion.
	tab := Default32nm()
	if !(tab.DRAMAccessPJ > tab.L3AccessPJ && tab.L3AccessPJ > tab.L2AccessPJ &&
		tab.L2AccessPJ > tab.L1AccessPJ && tab.L1AccessPJ > tab.BufferPJ) {
		t.Fatal("memory energy ordering violated")
	}
	if !(tab.OoOInstrPJ > tab.IOInstrPJ && tab.IOInstrPJ > tab.CGRAOpPJ) {
		t.Fatal("pipeline overhead ordering violated")
	}
	if tab.ComplexOpPJ <= tab.IntOpPJ {
		t.Fatal("complex op should cost more than int op")
	}
}

func TestAreaMatchesPaperOverheads(t *testing.T) {
	a := DefaultArea()
	// §VI-E: IO 1.9 % per cluster (0.3 % chip), CGRA 2.9 % (0.48 % chip).
	if got := a.IOOverheadPerCluster(); math.Abs(got-0.019) > 1e-9 {
		t.Fatalf("IO per-cluster overhead = %g, want 0.019", got)
	}
	if got := a.CGRAOverheadPerCluster(); math.Abs(got-0.029) > 1e-9 {
		t.Fatalf("CGRA per-cluster overhead = %g, want 0.029", got)
	}
	if got := a.IOOverheadChip(); math.Abs(got-0.003) > 5e-4 {
		t.Fatalf("IO chip overhead = %g, want ~0.003", got)
	}
	if got := a.CGRAOverheadChip(); math.Abs(got-0.0048) > 8e-4 {
		t.Fatalf("CGRA chip overhead = %g, want ~0.0048", got)
	}
}
