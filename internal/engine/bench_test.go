package engine

import "testing"

// sleeper models the sparse case: short bursts of work separated by long
// advertised latencies. The fast scheduler should jump straight between
// bursts; the naive loop visits every intervening clock edge.
type sleeper struct {
	items   int
	latency int64
	next    int64
	done    bool
}

func (s *sleeper) Step(now int64) bool {
	if now < s.next {
		return true
	}
	if s.items == 0 {
		s.done = true
		return true
	}
	s.items--
	s.next = now + s.latency
	return true
}

func (s *sleeper) Done() bool { return s.done }

func (s *sleeper) NextEvent(now int64) int64 {
	if s.done || now >= s.next {
		return 0
	}
	return s.next
}

func benchEngine(b *testing.B, mode Mode, build func(e *Engine)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := New()
		e.Mode = mode
		build(e)
		if _, err := e.Run(1 << 30); err != nil {
			b.Fatal(err)
		}
	}
}

var benchGHz = []int{1, 2, 3, 6}

// Dense: every component has work on every one of its clock edges, so
// fast-forwarding never jumps. This measures pure scheduler overhead.
func buildDense(e *Engine) {
	for i := 0; i < 64; i++ {
		e.Add(&ticker{n: 1 << 12}, benchGHz[i%len(benchGHz)])
	}
}

// Sparse: components sleep 3000 base cycles between work items — the
// common shape for accelerator models stalled on memory latencies.
func buildSparse(e *Engine) {
	for i := 0; i < 16; i++ {
		e.Add(&sleeper{items: 64, latency: 3000}, benchGHz[i%len(benchGHz)])
	}
}

// The *Fast benchmarks exercise the default scheduler (adaptive); the
// *Event variants pin the always-event-driven mode for comparison.
func BenchmarkEngineLoopDenseFast(b *testing.B)  { benchEngine(b, ModeAdaptive, buildDense) }
func BenchmarkEngineLoopDenseEvent(b *testing.B) { benchEngine(b, ModeEvent, buildDense) }
func BenchmarkEngineLoopDenseNaive(b *testing.B) { benchEngine(b, ModeNaive, buildDense) }

func BenchmarkEngineLoopSparseFast(b *testing.B)  { benchEngine(b, ModeAdaptive, buildSparse) }
func BenchmarkEngineLoopSparseEvent(b *testing.B) { benchEngine(b, ModeEvent, buildSparse) }
func BenchmarkEngineLoopSparseNaive(b *testing.B) { benchEngine(b, ModeNaive, buildSparse) }
