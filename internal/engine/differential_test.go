package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// The differential fuzz drives randomly wired producer/worker/sink
// pipelines — components with mixed clock divisors, random latencies,
// bounded queues (back-pressure), and a mix of hinted and poll-only
// components — through both schedulers and requires identical elapsed
// cycles and identical per-component effect sequences.

// fq is a bounded FIFO connecting two stages.
type fq struct {
	vals   []int
	cap    int
	closed bool
}

func (q *fq) canPush() bool { return len(q.vals) < q.cap }
func (q *fq) canPop() bool  { return len(q.vals) > 0 }

// effect is one observable state change: which component, at which base
// cycle, doing what.
type effect struct {
	id   int
	now  int64
	kind string
}

// stage produces (in == nil), transforms, or sinks (out == nil) items,
// spending a random latency per item. Latencies are drawn only at effect
// points, so the rng stream is identical whenever the effect sequences
// are.
type stage struct {
	id        int
	in, out   *fq
	produce   int // items to generate when in == nil
	generated int
	holding   bool
	busyUntil int64
	done      bool
	rng       *rand.Rand
	maxLat    int64
	log       *[]effect
}

func (s *stage) note(now int64, kind string) {
	*s.log = append(*s.log, effect{id: s.id, now: now, kind: kind})
}

func (s *stage) Done() bool { return s.done }

func (s *stage) Step(now int64) bool {
	if s.done {
		return false
	}
	if now < s.busyUntil {
		return true // latency timer
	}
	if s.holding {
		if s.out != nil && !s.out.canPush() {
			return false // blocked on full output
		}
		if s.out != nil {
			s.out.vals = append(s.out.vals, 1)
			s.note(now, "push")
		} else {
			s.note(now, "sink")
		}
		s.holding = false
		return true
	}
	if s.in == nil {
		if s.generated < s.produce {
			s.generated++
			s.holding = true
			s.busyUntil = now + s.rng.Int63n(s.maxLat+1)
			s.note(now, "gen")
			return true
		}
	} else {
		if s.in.canPop() {
			s.in.vals = s.in.vals[1:]
			s.holding = true
			s.busyUntil = now + s.rng.Int63n(s.maxLat+1)
			s.note(now, "pop")
			return true
		}
		if !s.in.closed {
			return false // blocked on empty input
		}
	}
	// Source exhausted (or input drained): finish.
	if s.out != nil {
		s.out.closed = true
	}
	s.done = true
	s.note(now, "done")
	return true
}

// NextEvent implements Hinter with the same case analysis as Step.
func (s *stage) NextEvent(now int64) int64 {
	if s.done {
		return 0
	}
	if now < s.busyUntil {
		return s.busyUntil
	}
	if s.holding {
		if s.out != nil && !s.out.canPush() {
			return Never // blocked on the consumer
		}
		return 0
	}
	if s.in == nil {
		return 0 // can generate or finish now
	}
	if s.in.canPop() || s.in.closed {
		return 0
	}
	return Never // blocked on the producer
}

// noHint hides a stage's NextEvent so the engine must poll it.
type noHint struct{ s *stage }

func (n noHint) Step(now int64) bool { return n.s.Step(now) }
func (n noHint) Done() bool          { return n.s.Done() }

// buildPipelines constructs a random component set from seed, appending
// effects to log. Construction is deterministic in seed so the naive and
// fast engines get bit-identical component sets.
func buildPipelines(seed int64, log *[]effect, e *Engine) {
	rng := rand.New(rand.NewSource(seed))
	ghzChoices := []int{1, 2, 3, 6}
	id := 0
	chains := 1 + rng.Intn(4)
	for c := 0; c < chains; c++ {
		depth := 1 + rng.Intn(4)
		var prev *fq
		for d := 0; d < depth; d++ {
			s := &stage{
				id:     id,
				in:     prev,
				rng:    rand.New(rand.NewSource(seed*1000 + int64(id))),
				maxLat: int64(rng.Intn(31)),
				log:    log,
			}
			id++
			if d == 0 {
				s.produce = 1 + rng.Intn(50)
			}
			if d < depth-1 {
				s.out = &fq{cap: 1 + rng.Intn(4)}
				prev = s.out
			}
			ghz := ghzChoices[rng.Intn(len(ghzChoices))]
			if rng.Intn(4) == 0 {
				e.Add(noHint{s}, ghz) // poll-only component
			} else {
				e.Add(s, ghz)
			}
		}
	}
}

func TestDifferentialFuzzFastVsNaive(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		var naiveLog []effect

		en := New()
		en.Mode = ModeNaive
		buildPipelines(seed, &naiveLog, en)
		nElapsed, nErr := en.Run(1 << 22)
		if nErr != nil {
			t.Fatalf("seed %d: naive err=%v", seed, nErr)
		}

		for _, mode := range []Mode{ModeEvent, ModeAdaptive} {
			var fastLog []effect
			ef := New()
			ef.Mode = mode
			buildPipelines(seed, &fastLog, ef)
			fElapsed, fErr := ef.Run(1 << 22)

			if fErr != nil {
				t.Fatalf("seed %d: %s err=%v", seed, mode, fErr)
			}
			if nElapsed != fElapsed {
				t.Fatalf("seed %d: elapsed naive=%d %s=%d", seed, nElapsed, mode, fElapsed)
			}
			if en.Now() != ef.Now() {
				t.Fatalf("seed %d: Now naive=%d %s=%d", seed, en.Now(), mode, ef.Now())
			}
			if !reflect.DeepEqual(naiveLog, fastLog) {
				i := 0
				for i < len(naiveLog) && i < len(fastLog) && naiveLog[i] == fastLog[i] {
					i++
				}
				t.Fatalf("seed %d: effect logs diverge at index %d:\nnaive: %v\n%s: %v",
					seed, i, tail(naiveLog, i), mode, tail(fastLog, i))
			}
		}
	}
}

// TestAdaptiveModeSwitches drives one population dense enough to enter
// dense mode and one sparse enough to stay event-driven, and checks both
// still agree with the naive reference (belt and braces on top of the
// fuzz, with populations engineered to cross the density thresholds).
func TestAdaptiveModeSwitches(t *testing.T) {
	type buildCase struct {
		name  string
		build func(*Engine)
	}
	for _, bc := range []buildCase{
		{"dense", buildDense},
		{"sparse", buildSparse},
		{"mixed", func(e *Engine) {
			// Dense phase followed by a sparse tail: tickers drain first,
			// then sleepers force dense-mode exit and fast-forwarding.
			for i := 0; i < 8; i++ {
				e.Add(&ticker{n: 1 << 8}, benchGHz[i%len(benchGHz)])
			}
			for i := 0; i < 4; i++ {
				e.Add(&sleeper{items: 16, latency: 2500}, benchGHz[i%len(benchGHz)])
			}
		}},
	} {
		en := New()
		en.Mode = ModeNaive
		bc.build(en)
		want, err := en.Run(1 << 30)
		if err != nil {
			t.Fatalf("%s: naive: %v", bc.name, err)
		}
		ea := New()
		bc.build(ea)
		got, err := ea.Run(1 << 30)
		if err != nil {
			t.Fatalf("%s: adaptive: %v", bc.name, err)
		}
		if got != want {
			t.Errorf("%s: adaptive elapsed %d, naive %d", bc.name, got, want)
		}
	}
}

func tail(log []effect, i int) []effect {
	if i > len(log) {
		i = len(log)
	}
	end := i + 5
	if end > len(log) {
		end = len(log)
	}
	return log[i:end]
}

// TestFastForwardJumps verifies the fast scheduler actually skips idle
// spans: a single hinted component with a long latency must be stepped
// only at its effect edges, not on every clock edge in between.
type countingWaiter struct {
	latency int64
	fireAt  int64
	fired   bool
	steps   int
}

func (c *countingWaiter) Step(now int64) bool {
	c.steps++
	if c.fireAt == 0 {
		c.fireAt = now + c.latency
		return true
	}
	if now >= c.fireAt {
		c.fired = true
	}
	return true
}
func (c *countingWaiter) Done() bool { return c.fired }
func (c *countingWaiter) NextEvent(now int64) int64 {
	if c.fired {
		return 0
	}
	if c.fireAt > now {
		return c.fireAt
	}
	return 0
}

func TestFastForwardJumps(t *testing.T) {
	w := &countingWaiter{latency: 6000}
	e := New()
	e.Add(w, 2)
	elapsed, err := e.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !w.fired {
		t.Fatal("waiter never fired")
	}
	if w.steps > 3 {
		t.Fatalf("fast scheduler stepped a sleeping component %d times, want <= 3", w.steps)
	}
	// The naive path must agree on the elapsed cycles while visiting
	// every edge.
	w2 := &countingWaiter{latency: 6000}
	en := New()
	en.Naive = true
	en.Add(w2, 2)
	nElapsed, err := en.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if nElapsed != elapsed {
		t.Fatalf("elapsed: fast %d, naive %d", elapsed, nElapsed)
	}
	if w2.steps <= 3 {
		t.Fatalf("naive scheduler skipped edges (%d steps)", w2.steps)
	}
}

// ---- Add validation (registration misuse is rejected loudly) ----

// adder tries to register a component mid-run.
type adder struct {
	e    *Engine
	done bool
}

func (a *adder) Step(now int64) bool {
	a.e.Add(&ticker{n: 1}, 2)
	a.done = true
	return true
}
func (a *adder) Done() bool { return a.done }

func TestAddDuringRunPanics(t *testing.T) {
	e := New()
	e.Add(&adder{e: e}, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from Add during Run")
		}
		if !strings.Contains(fmt.Sprint(r), "during Run") {
			t.Fatalf("panic = %v", r)
		}
	}()
	_, _ = e.Run(1 << 10)
}

func TestDuplicateAddPanics(t *testing.T) {
	e := New()
	c := &ticker{n: 1}
	e.Add(c, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic from duplicate Add")
		}
		if !strings.Contains(fmt.Sprint(r), "registered twice") {
			t.Fatalf("panic = %v", r)
		}
	}()
	e.Add(c, 1)
}

func TestAddNilPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic from Add(nil)")
		}
	}()
	e.Add(nil, 2)
}

func TestAddBetweenRunsStaysLegal(t *testing.T) {
	e := New()
	e.Add(&ticker{n: 2}, 2)
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	e.Add(&ticker{n: 2}, 2) // must not panic
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
}

func TestZeroValueEngineAdd(t *testing.T) {
	var e Engine
	e.Add(&ticker{n: 1}, 2)
	if _, err := e.Run(1 << 10); err != nil {
		t.Fatal(err)
	}
}

// TestNaiveSchedulerMatchesOriginalSemantics re-runs the package's
// pre-existing scheduler expectations under Naive for both error paths.
func TestNaiveSchedulerErrors(t *testing.T) {
	e := New()
	e.Naive = true
	e.Add(stuck{}, 2)
	if _, err := e.Run(1 << 20); err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
	e2 := New()
	e2.Naive = true
	e2.Add(&ticker{n: 1 << 30}, 2)
	if _, err := e2.Run(100); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

// Deadlock and budget errors must agree between the schedulers for pure
// poll-only component sets (the error cycle is part of the message).
func TestErrorParityOnPollers(t *testing.T) {
	for _, ghz := range []int{1, 2, 3, 6} {
		en := New()
		en.Naive = true
		en.Add(stuck{}, ghz)
		_, nErr := en.Run(1 << 20)
		ef := New()
		ef.Add(stuck{}, ghz)
		_, fErr := ef.Run(1 << 20)
		if nErr == nil || fErr == nil || nErr.Error() != fErr.Error() {
			t.Fatalf("%d GHz: naive=%v fast=%v", ghz, nErr, fErr)
		}

		en2 := New()
		en2.Naive = true
		en2.Add(&ticker{n: 1 << 30}, ghz)
		ne, nErr := en2.Run(1000)
		ef2 := New()
		ef2.Add(&ticker{n: 1 << 30}, ghz)
		fe, fErr := ef2.Run(1000)
		if nErr == nil || fErr == nil || nErr.Error() != fErr.Error() || ne != fe {
			t.Fatalf("%d GHz budget: naive=(%d,%v) fast=(%d,%v)", ghz, ne, nErr, fe, fErr)
		}
	}
}
