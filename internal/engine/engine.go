// Package engine is the cycle-stepped simulation core. Components advance
// on their own clock edges derived from a common base clock, so a 2 GHz
// host, 1 GHz CGRA fabric and 3 GHz sensitivity configurations coexist in
// one run (base tick = 1/6 ns).
package engine

import "fmt"

// BaseGHz is the base clock. Divisors: 6 GHz base → 1 GHz = 6, 2 GHz = 3,
// 3 GHz = 2.
const BaseGHz = 6

// Div returns the base-clock divisor for a component clocked at ghz.
func Div(ghz int) int {
	if ghz <= 0 || BaseGHz%ghz != 0 {
		panic(fmt.Sprintf("engine: unsupported clock %d GHz (base %d)", ghz, BaseGHz))
	}
	return BaseGHz / ghz
}

// Component is a clocked simulation entity. Step is invoked once per edge
// of the component's clock with the current base cycle; it returns whether
// the component made forward progress (consumed/produced/retired/counted
// down a latency). Done reports completion.
type Component interface {
	Step(now int64) (progress bool)
	Done() bool
}

// clocked pairs a component with its divisor.
type clocked struct {
	c   Component
	div int64
}

// Engine drives a set of components to completion.
type Engine struct {
	comps []clocked
	now   int64
}

// New returns an empty engine.
func New() *Engine { return &Engine{} }

// Add registers a component clocked at ghz.
func (e *Engine) Add(c Component, ghz int) {
	e.comps = append(e.comps, clocked{c: c, div: int64(Div(ghz))})
}

// Now returns the current base cycle.
func (e *Engine) Now() int64 { return e.now }

// deadlockWindow is how many consecutive progress-free base cycles (with
// incomplete components) are treated as deadlock. Every legitimate wait in
// the model counts down a timer and therefore reports progress, so a small
// window suffices.
const deadlockWindow = 8

// Run advances until every component is done, returning the elapsed base
// cycles. It fails on deadlock or when maxBaseCycles elapses.
func (e *Engine) Run(maxBaseCycles int64) (int64, error) {
	start := e.now
	idle := 0
	for {
		allDone := true
		for _, cc := range e.comps {
			if !cc.c.Done() {
				allDone = false
				break
			}
		}
		if allDone {
			return e.now - start, nil
		}
		if e.now-start >= maxBaseCycles {
			return e.now - start, fmt.Errorf("engine: exceeded %d base cycles", maxBaseCycles)
		}
		progress := false
		for _, cc := range e.comps {
			if e.now%cc.div != 0 || cc.c.Done() {
				continue
			}
			if cc.c.Step(e.now) {
				progress = true
			}
		}
		if progress {
			idle = 0
		} else {
			idle++
			if idle > deadlockWindow*int(maxDiv(e.comps)) {
				return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
			}
		}
		e.now++
	}
}

func maxDiv(comps []clocked) int64 {
	var m int64 = 1
	for _, c := range comps {
		if c.div > m {
			m = c.div
		}
	}
	return m
}

func (e *Engine) describeStuck() string {
	n := 0
	for _, cc := range e.comps {
		if !cc.c.Done() {
			n++
		}
	}
	return fmt.Sprintf("%d components incomplete", n)
}
