// Package engine is the cycle-stepped simulation core. Components advance
// on their own clock edges derived from a common base clock, so a 2 GHz
// host, 1 GHz CGRA fabric and 3 GHz sensitivity configurations coexist in
// one run (base tick = 1/6 ns).
//
// The default scheduler is adaptive: it watches the observed wake density
// and switches per phase between a dense mode that steps every due clock
// edge with no event bookkeeping at all and the event-driven mode, in which
// components that can predict their next observable effect implement the
// optional Hinter interface and the engine fast-forwards over base cycles
// in which no live component can act instead of polling every component on
// every tick. Components are partitioned into per-divisor rings so a tick
// touches only due, live components; finished components are removed
// (order-preservingly) from their ring. The resulting cycle counts,
// per-component effect sequences and counters are bit-identical across all
// three modes; the naive one-tick-at-a-time loop (ModeNaive) is kept as
// the differential-testing reference.
package engine

import (
	"fmt"
	"math"

	"distda/internal/trace"
)

// BaseGHz is the base clock. Divisors: 6 GHz base → 1 GHz = 6, 2 GHz = 3,
// 3 GHz = 2.
const BaseGHz = 6

// Div returns the base-clock divisor for a component clocked at ghz.
func Div(ghz int) int {
	if ghz <= 0 || BaseGHz%ghz != 0 {
		panic(fmt.Sprintf("engine: unsupported clock %d GHz (base %d)", ghz, BaseGHz))
	}
	return BaseGHz / ghz
}

// Component is a clocked simulation entity. Step is invoked once per edge
// of the component's clock with the current base cycle; it returns whether
// the component made forward progress (consumed/produced/retired/counted
// down a latency). Done reports completion.
//
// Contract: Done may only transition as a result of the component's own
// Step. (All in-tree components satisfy this; it lets the engine track
// completion incrementally instead of rescanning every component each
// tick.) A Step that reports no progress must leave all observable state —
// its own and any shared queues — unchanged: the scheduler relies on
// progress-free windows being state-preserving to reuse NextEvent claims
// without re-querying them.
type Component interface {
	Step(now int64) (progress bool)
	Done() bool
}

// Never is the NextEvent sentinel for "blocked on another component": the
// component will have no observable effect at any future edge unless some
// other component acts first. If every live component reports Never the
// engine declares deadlock.
const Never = int64(math.MaxInt64)

// Hinter is the optional fast-forward interface. NextEvent returns a lower
// bound on the base cycle of the component's next observable effect
// (state change, counter update, or completion), assuming no other
// component acts in the meantime:
//
//   - A value <= now means "poll me": step the component at its next clock
//     edge. Returning 0 is always safe.
//   - A future value T means the component is certain to be a no-op at
//     every one of its clock edges strictly before T (e.g. a latency timer
//     expiring at T). It must never be later than the true next effect;
//     claims must be monotone in the sense that re-asking at a later cycle
//     (with no intervening external action) never yields an earlier-passed
//     opportunity.
//   - Never means the component is blocked on a peer (empty input, full
//     output) and has no self-scheduled future event.
//
// The engine re-queries NextEvent on every processed cycle, so claims only
// need to hold under the no-external-action assumption; they may become
// stale the moment another component steps.
type Hinter interface {
	NextEvent(now int64) int64
}

// Mode selects the scheduling strategy. The zero value is ModeAdaptive,
// the default.
type Mode int

const (
	// ModeAdaptive watches the observed wake density and switches per
	// phase between dense stepping (every due clock edge, no nextWake
	// sweep) and the event-driven scheduler. This is the default.
	ModeAdaptive Mode = iota
	// ModeEvent always runs the event-driven fast-forward scheduler.
	ModeEvent
	// ModeNaive is the reference one-tick-at-a-time scheduler.
	ModeNaive
)

func (m Mode) String() string {
	switch m {
	case ModeAdaptive:
		return "adaptive"
	case ModeEvent:
		return "event"
	case ModeNaive:
		return "naive"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode parses an engine mode name as accepted by the CLIs'
// -engine flag. The empty string means the default (adaptive).
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "adaptive":
		return ModeAdaptive, nil
	case "event":
		return ModeEvent, nil
	case "naive":
		return ModeNaive, nil
	}
	return 0, fmt.Errorf("engine: unknown mode %q (want adaptive, event or naive)", s)
}

// entry is one registered component.
type entry struct {
	c    Component
	hint Hinter // nil when c does not implement Hinter
	div  int64
	id   int // registration order; defines intra-cycle step order

	// Cached NextEvent claim. A cached future claim is reusable while no
	// component in the engine has made progress since it was collected and
	// the owner has not been stepped (see nextWake); cachedWake is the
	// claim already aligned up to the owner's clock edge. cachedEpoch pins
	// the claim to the engine's claimEpoch at collection time.
	cachedClaim int64
	cachedWake  int64
	cachedEpoch uint64
}

// ring groups the live components sharing one clock divisor, in
// registration order.
type ring struct {
	div  int64
	ents []*entry
	// hot rotates nextWake's sweep start to the entry that most recently
	// settled the wake-up cycle: in steady pipeline phases the same busy
	// component keeps doing so, which lets the bounded sweep finish after
	// a single hint query. Purely a performance cursor — claims are
	// combined by min, so sweep order never affects the result.
	hot int
}

// Engine drives a set of components to completion.
type Engine struct {
	rings  []*ring
	byDiv  map[int64]*ring
	seen   map[Component]bool
	nextID int
	live   int   // registered components not yet removed as done
	maxDiv int64 // max divisor ever registered (hoisted from the run loop)
	now    int64

	// claimEpoch versions the cached NextEvent claims: it advances on
	// every processed cycle in which some component made progress (and at
	// the start of every Run, invalidating claims across any mutations
	// made between Runs), so a cached claim is reusable exactly while the
	// no-external-action assumption it was collected under still holds.
	claimEpoch uint64

	// parkWake caches the earliest future internal event at the moment
	// RunUntil parked, letting the next window skip straight to it (or
	// return immediately) while the no-external-action assumption holds.
	parkWake int64

	running bool

	// Trace, when enabled, records one span per Run plus one span per
	// fast-forward jump (the cycles the event-driven scheduler skipped).
	// The zero value is the disabled state; the recording path then costs a
	// single hoisted branch per Run, keeping the disabled-tracing overhead
	// inside the benchmark budget.
	Trace trace.Scope

	// CollectFF, when set, accumulates fast-forward scheduler statistics
	// (FFJumps / FFSkipped) even with tracing disabled, for the profiling
	// layer. Like tracing, the flag's cost is one hoisted branch per
	// processed cycle and it never affects scheduling decisions.
	CollectFF bool
	// FFJumps counts fast-forward jumps across Runs; FFSkipped counts the
	// base cycles those jumps never visited. Populated when CollectFF or
	// tracing is enabled.
	FFJumps, FFSkipped int64

	// Mode selects the scheduling strategy; the zero value is the default
	// adaptive scheduler. All modes produce identical cycle counts and
	// component effect sequences. On error paths (deadlock vs. budget
	// exhaustion in the same window) the modes may report the failure at
	// slightly different base cycles.
	Mode Mode

	// Naive, when set, overrides Mode with ModeNaive: the reference
	// one-tick-at-a-time scheduler in which every base cycle is visited
	// and every live component is inspected (and stepped when due). It is
	// kept as a flag for differential tests written before Mode existed.
	Naive bool
}

// New returns an empty engine.
func New() *Engine {
	return &Engine{
		byDiv:  map[int64]*ring{},
		seen:   map[Component]bool{},
		maxDiv: 1,
	}
}

// Add registers a component clocked at ghz. It panics when called while
// Run is in progress (components joining mid-run would see torn scheduler
// state) and when the same component is registered twice. Adding more
// components between Runs is legal; their clock edges continue from the
// engine's running base clock.
func (e *Engine) Add(c Component, ghz int) {
	if e.running {
		panic("engine: Add called during Run")
	}
	if c == nil {
		panic("engine: Add of nil component")
	}
	if e.seen == nil { // zero-value Engine
		e.byDiv = map[int64]*ring{}
		e.seen = map[Component]bool{}
		e.maxDiv = 1
	}
	if e.seen[c] {
		panic(fmt.Sprintf("engine: component %T registered twice", c))
	}
	e.seen[c] = true
	div := int64(Div(ghz))
	r := e.byDiv[div]
	if r == nil {
		r = &ring{div: div}
		e.byDiv[div] = r
		// Keep rings sorted by ascending divisor: the fastest clock owns
		// the earliest possible edge, so nextWake's bounded sweep can
		// terminate after inspecting it in the common case.
		at := len(e.rings)
		for i, o := range e.rings {
			if div < o.div {
				at = i
				break
			}
		}
		e.rings = append(e.rings, nil)
		copy(e.rings[at+1:], e.rings[at:])
		e.rings[at] = r
	}
	ent := &entry{c: c, div: div, id: e.nextID}
	e.nextID++
	if h, ok := c.(Hinter); ok {
		ent.hint = h
	}
	r.ents = append(r.ents, ent)
	e.live++
	if div > e.maxDiv {
		e.maxDiv = div
	}
}

// Now returns the current base cycle.
func (e *Engine) Now() int64 { return e.now }

// Live returns the number of registered components not yet finished.
func (e *Engine) Live() int { return e.live }

// ffSpanMinCycles is the shortest fast-forward jump that earns its own
// trace span. Shorter jumps (clock-edge alignment gaps) are still counted
// in the Run span's ff_jumps / ff_skipped_cycles aggregates.
const ffSpanMinCycles = 32

// deadlockWindow is how many consecutive progress-free base cycles (with
// incomplete components) are treated as deadlock. Every legitimate wait in
// the model counts down a timer and therefore reports progress (or, under
// the fast-forward scheduler, claims a future event), so a small window
// suffices.
const deadlockWindow = 8

// Run advances until every component is done, returning the elapsed base
// cycles. It fails on deadlock or when maxBaseCycles elapses.
func (e *Engine) Run(maxBaseCycles int64) (int64, error) {
	if e.running {
		panic("engine: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.pruneDone()
	// Anything may have mutated component state between Runs (hosts push
	// into queues, components join); cached claims from a previous Run are
	// not trustworthy.
	e.claimEpoch++
	mode := e.Mode
	if e.Naive {
		mode = ModeNaive
	}
	switch mode {
	case ModeNaive:
		return e.runNaive(maxBaseCycles)
	case ModeEvent:
		return e.runFast(maxBaseCycles)
	default:
		return e.runAdaptive(maxBaseCycles)
	}
}

// RunUntil advances the engine until every component is done or the base
// clock reaches until, whichever comes first, using the event-driven
// scheduler. It reports whether the engine completed, whether any component
// made progress during the call, and the earliest future internal event the
// engine is parked on (Never when it completed or every live component is
// blocked on a peer).
//
// invalidate tells the engine whether external state was injected since the
// previous RunUntil (a window coordinator delivering cross-shard messages).
// When false the engine trusts the claims cached at its last parking point:
// an idle window costs O(1) instead of a full component sweep. Callers must
// pass true on the first call and after every external mutation.
//
// Unlike Run, a stretch in which every live component is blocked on a peer
// (NextEvent = Never) is not treated as deadlock: the engine parks at until
// and returns, on the assumption that the caller — a conservative
// time-window coordinator — will inject cross-shard work before the next
// window. Global deadlock detection is therefore the coordinator's job
// (shard.Graph declares it when every shard parks on Never with nothing in
// flight).
func (e *Engine) RunUntil(until int64, invalidate bool) (done, progress bool, next int64) {
	if e.running {
		panic("engine: RunUntil re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	if invalidate {
		e.pruneDone()
		e.claimEpoch++
		e.parkWake = 0
	}
	if e.live == 0 {
		return true, false, Never
	}
	if !invalidate && e.parkWake > e.now {
		// Nothing external happened and the engine parked knowing its next
		// event: skip the dead cycles without touching any component.
		if e.parkWake >= until {
			e.now = until
			return false, false, e.parkWake
		}
		e.now = e.parkWake
	}
	for {
		if e.now >= until {
			n, _, _ := e.nextWake(false)
			e.parkWake = n
			return false, progress, n
		}
		if e.stepDue() {
			progress = true
			e.claimEpoch++
		}
		if e.live == 0 {
			// Completion is observed one cycle after the completing step,
			// exactly as in Run's schedulers.
			e.now++
			e.parkWake = Never
			return true, progress, Never
		}
		n, _, _ := e.nextWake(false)
		if n >= until {
			// Park at the window boundary: either every live component is
			// blocked on a peer (n == Never) or the next event lies beyond
			// the window — report it so the coordinator can fast-forward.
			e.now = until
			e.parkWake = n
			return false, progress, n
		}
		e.now = n
	}
}

// pruneDone drops components that are already finished before the loop
// starts (components normally leave their ring at the step that completes
// them).
func (e *Engine) pruneDone() {
	for _, r := range e.rings {
		w := 0
		for _, ent := range r.ents {
			if ent.c.Done() {
				e.live--
				continue
			}
			r.ents[w] = ent
			w++
		}
		r.ents = r.ents[:w]
	}
}

// runFast is the event-driven scheduler: it processes only base cycles at
// which some live component may act and jumps the clock directly to the
// earliest claimed pending edge otherwise.
func (e *Engine) runFast(maxBaseCycles int64) (int64, error) {
	start := e.now
	var idle int64
	window := int64(deadlockWindow) * e.maxDiv
	traced := e.Trace.Enabled() // hoisted: the disabled path pays one branch per processed cycle
	obs := traced || e.CollectFF
	var jumps, skipped int64
	for {
		if e.live == 0 {
			if traced {
				e.finishRunSpan(start, jumps, skipped)
			}
			return e.now - start, nil
		}
		if e.now-start >= maxBaseCycles {
			return e.now - start, fmt.Errorf("engine: exceeded %d base cycles", maxBaseCycles)
		}
		progress := e.stepDue()
		if e.live == 0 {
			// The completing step happened this cycle; the naive loop
			// detects completion at the top of the next one.
			e.now++
			if traced {
				e.finishRunSpan(start, jumps, skipped)
			}
			return e.now - start, nil
		}
		if progress {
			e.claimEpoch++
		}
		next, future, _ := e.nextWake(progress)
		if next == Never {
			return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
		}
		if progress || future {
			idle = 0
		} else {
			// Pure polling with no progress: account every skipped base
			// cycle, exactly as the naive per-cycle loop would.
			idle += next - e.now
			if idle > window {
				return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
			}
		}
		if lim := start + maxBaseCycles; next > lim {
			next = lim // land on the budget boundary, like the naive loop
		}
		if obs && next-e.now > 1 {
			d := next - e.now - 1 // cycles the scheduler never visited
			// Per-jump spans only for jumps long enough to mean a real
			// latency (memory lines, drained pipelines); ordinary clock-edge
			// gaps would bury every other track under millions of slivers.
			// The aggregate counters still see every jump.
			if traced && d >= ffSpanMinCycles {
				e.Trace.Span("fast-forward", e.now+1, d, trace.KV{K: "cycles", V: d})
			}
			jumps++
			skipped += d
			e.FFJumps++
			e.FFSkipped += d
		}
		e.now = next
	}
}

// finishRunSpan emits the Run-level span on the engine's trace track.
func (e *Engine) finishRunSpan(start, jumps, skipped int64) {
	e.Trace.Span("engine.Run", start, e.now-start,
		trace.KV{K: "cycles", V: e.now - start},
		trace.KV{K: "ff_jumps", V: jumps},
		trace.KV{K: "ff_skipped_cycles", V: skipped})
}

// Adaptive-mode thresholds. denseEnterStreak is how many consecutive
// progress cycles that woke exactly on the earliest possible clock edge
// are required before the scheduler stops sweeping hints and steps every
// due edge; denseRecheckEvery is how many dense progress cycles separate
// full hint sweeps looking for a fast-forward opportunity (it bounds the
// cycles wasted edge-stepping a phase that has turned sparse).
const (
	denseEnterStreak  = 24
	denseRecheckEvery = 64
)

// runAdaptive switches per phase between the event-driven scheduler and a
// dense mode that advances edge to edge with no nextWake sweep at all —
// the naive loop minus its redundant work. Both behaviors visit a
// superset of the cycles on which components act, so results stay
// bit-identical to the other schedulers; only the scheduler's own
// bookkeeping differs. A cycle without progress immediately drops back to
// the event-driven path (idle accounting there is identical because a
// dense phase by construction just made progress, so idle enters at
// zero), which also keeps deadlock reporting aligned with runFast.
func (e *Engine) runAdaptive(maxBaseCycles int64) (int64, error) {
	start := e.now
	var idle int64
	window := int64(deadlockWindow) * e.maxDiv
	traced := e.Trace.Enabled()
	obs := traced || e.CollectFF
	var jumps, skipped int64
	dense := false
	streak, sinceCheck := 0, 0
	for {
		if e.live == 0 {
			if traced {
				e.finishRunSpan(start, jumps, skipped)
			}
			return e.now - start, nil
		}
		if e.now-start >= maxBaseCycles {
			return e.now - start, fmt.Errorf("engine: exceeded %d base cycles", maxBaseCycles)
		}
		progress := e.stepDue()
		if e.live == 0 {
			e.now++
			if traced {
				e.finishRunSpan(start, jumps, skipped)
			}
			return e.now - start, nil
		}
		if progress {
			e.claimEpoch++
		}
		if dense {
			if !progress {
				// The phase ended; resweep below with event-mode idle
				// accounting (idle is zero entering, as in runFast after
				// a progress cycle).
				dense, streak, sinceCheck = false, 0, 0
			} else {
				next := int64(0)
				if sinceCheck++; sinceCheck >= denseRecheckEvery {
					// Periodic escape valve: a full sweep detects a phase
					// that kept progressing but went sparse (e.g. one
					// component streaming while the rest await a long
					// latency).
					sinceCheck = 0
					nw, _, _ := e.nextWake(false)
					if nw == Never {
						return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
					}
					next = nw
				}
				if edge := e.earliestEdge(); next <= edge {
					next = edge
				} else {
					dense, streak, sinceCheck = false, 0, 0 // real jump: go sparse
				}
				if lim := start + maxBaseCycles; next > lim {
					next = lim
				}
				if obs && next-e.now > 1 {
					d := next - e.now - 1
					if traced && d >= ffSpanMinCycles {
						e.Trace.Span("fast-forward", e.now+1, d, trace.KV{K: "cycles", V: d})
					}
					jumps++
					skipped += d
					e.FFJumps++
					e.FFSkipped += d
				}
				e.now = next
				continue
			}
		}
		next, future, bound := e.nextWake(progress)
		if next == Never {
			return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
		}
		if progress || future {
			idle = 0
		} else {
			idle += next - e.now
			if idle > window {
				return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
			}
		}
		if progress && next == bound {
			// Woke on the earliest possible edge again: the phase looks
			// dense. After enough consecutive such cycles, stop sweeping.
			if streak++; streak >= denseEnterStreak {
				dense, streak, sinceCheck = true, 0, 0
			}
		} else {
			streak = 0
		}
		if lim := start + maxBaseCycles; next > lim {
			next = lim
		}
		if obs && next-e.now > 1 {
			d := next - e.now - 1
			if traced && d >= ffSpanMinCycles {
				e.Trace.Span("fast-forward", e.now+1, d, trace.KV{K: "cycles", V: d})
			}
			jumps++
			skipped += d
			e.FFJumps++
			e.FFSkipped += d
		}
		e.now = next
	}
}

// runNaive is the reference scheduler: one base cycle at a time. Relative
// to the original loop it keeps the incremental bookkeeping (completion
// via the live counter, maxDiv hoisted out of the idle path, finished
// components removed from their ring) but visits every cycle and inspects
// every live component.
func (e *Engine) runNaive(maxBaseCycles int64) (int64, error) {
	start := e.now
	var idle int64
	window := int64(deadlockWindow) * e.maxDiv
	traced := e.Trace.Enabled()
	for {
		if e.live == 0 {
			if traced {
				e.finishRunSpan(start, 0, 0)
			}
			return e.now - start, nil
		}
		if e.now-start >= maxBaseCycles {
			return e.now - start, fmt.Errorf("engine: exceeded %d base cycles", maxBaseCycles)
		}
		progress := e.stepDue()
		if e.live == 0 {
			e.now++
			if traced {
				e.finishRunSpan(start, 0, 0)
			}
			return e.now - start, nil
		}
		if progress {
			idle = 0
		} else {
			idle++
			if idle > window {
				return e.now - start, fmt.Errorf("engine: deadlock at base cycle %d (%s)", e.now, e.describeStuck())
			}
		}
		e.now++
	}
}

// stepDue steps every live component whose clock edge falls on the current
// base cycle, in registration order across rings, removing components that
// finish. Returns whether any step reported progress.
func (e *Engine) stepDue() bool {
	// Collect the rings with an edge this cycle. Divisors divide BaseGHz,
	// so there are at most four.
	var due [8]*ring
	nd := 0
	for _, r := range e.rings {
		if e.now%r.div == 0 && len(r.ents) > 0 {
			if nd == len(due) {
				panic("engine: too many distinct divisors")
			}
			due[nd] = r
			nd++
		}
	}
	if nd == 0 {
		return false
	}
	if nd == 1 {
		return e.stepRing(due[0])
	}
	// k-way merge by registration id so intra-cycle step order matches the
	// flat registration-order loop (observable through shared buffers).
	progress := false
	var rd, wr [8]int
	for {
		best, bestID := -1, int(^uint(0)>>1)
		for i := 0; i < nd; i++ {
			if rd[i] < len(due[i].ents) && due[i].ents[rd[i]].id < bestID {
				best, bestID = i, due[i].ents[rd[i]].id
			}
		}
		if best < 0 {
			break
		}
		r := due[best]
		ent := r.ents[rd[best]]
		rd[best]++
		if ent.c.Done() { // finished without stepping (defensive)
			e.live--
			continue
		}
		ent.cachedClaim = 0 // own Step may move its next effect
		if ent.c.Step(e.now) {
			progress = true
		}
		if ent.c.Done() {
			e.live--
			continue
		}
		r.ents[wr[best]] = ent
		wr[best]++
	}
	for i := 0; i < nd; i++ {
		due[i].ents = due[i].ents[:wr[i]]
	}
	return progress
}

// stepRing steps one ring's components in order, compacting out the ones
// that finish.
func (e *Engine) stepRing(r *ring) bool {
	progress := false
	w := 0
	for _, ent := range r.ents {
		if ent.c.Done() {
			e.live--
			continue
		}
		ent.cachedClaim = 0 // own Step may move its next effect
		if ent.c.Step(e.now) {
			progress = true
		}
		if ent.c.Done() {
			e.live--
			continue
		}
		r.ents[w] = ent
		w++
	}
	r.ents = r.ents[:w]
	return progress
}

// nextWake collects a NextEvent claim from every live component and
// returns the earliest base cycle at which any of them may act (aligned up
// to the claimant's own clock edge, and never before now+1). future
// reports whether some component holds a genuine scheduled future event
// (as opposed to merely asking to be polled), which distinguishes latency
// countdowns from dead polling when accounting idle cycles. bound is the
// earliest possible clock edge when progress is set (-1 otherwise): the
// floor on any answer, which the adaptive scheduler compares against next
// to measure wake density.
//
// progress reports whether the just-processed cycle stepped anything. In
// that case the idle counter resets regardless of the future flag, so the
// sweep may stop as soon as the running minimum reaches the earliest
// possible next clock edge — no later claim can beat it. Each ring's
// sweep starts at the entry that most recently settled the wake-up (its
// hot cursor): in steady pipeline phases that is the same busy component
// again, so dense phases pay a single hint query per cycle.
//
// A future claim is cached on its entry and reused — skipping the
// NextEvent call — while the engine's claimEpoch is unchanged and the
// owner has not been stepped since collection. Both conditions together
// restate the Hinter contract's no-external-action assumption: progress
// bumps the epoch, and a progress-free Step leaves observable state (and
// therefore every component's next effect) unchanged, so a claim
// collected in the same progress-free window still holds. Reusing a claim
// can only schedule the same-or-earlier wake-up a fresh query would, so a
// stale-but-valid claim costs at most a no-op visit — exactly what the
// naive reference loop does every cycle.
//
// The sweep is read-only on component state: components finish only
// inside their own Step (see the Component contract), so stepDue and
// pruneDone own all ring removals and claims may be collected in any
// order (min is commutative).
func (e *Engine) nextWake(progress bool) (next int64, future bool, bound int64) {
	next = Never
	bound = -1
	if progress {
		bound = e.earliestEdge()
	}
	epoch := e.claimEpoch
	for _, r := range e.rings {
		n := len(r.ents)
		start := r.hot
		if start >= n {
			start = 0
		}
		for k := 0; k < n; k++ {
			i := start + k
			if i >= n {
				i -= n
			}
			ent := r.ents[i]
			if ent.c.Done() { // defensive; stepDue removes it at its next edge
				continue
			}
			var t int64
			if ent.cachedEpoch == epoch && ent.cachedClaim > e.now {
				future = true
				t = ent.cachedWake
			} else {
				var claim int64
				if ent.hint != nil {
					claim = ent.hint.NextEvent(e.now)
				}
				if claim == Never {
					continue // blocked on a peer: contributes no wake-up
				}
				t = claim
				if t <= e.now {
					t = e.now + 1
				}
				if rem := t % r.div; rem != 0 {
					t += r.div - rem // align up to the component's next edge
				}
				if claim > e.now {
					future = true
					ent.cachedClaim, ent.cachedWake, ent.cachedEpoch = claim, t, epoch
				}
			}
			if t < next {
				next = t
				if next <= bound {
					r.hot = i
					return next, future, bound
				}
			}
		}
	}
	return next, future, bound
}

// earliestEdge returns the earliest base cycle after now that is a clock
// edge of some non-empty ring — the floor on any nextWake answer.
func (e *Engine) earliestEdge() int64 {
	bound := Never
	for _, r := range e.rings {
		if len(r.ents) == 0 {
			continue
		}
		t := e.now + 1
		if rem := t % r.div; rem != 0 {
			t += r.div - rem
		}
		if t < bound {
			bound = t
		}
	}
	return bound
}

func (e *Engine) describeStuck() string {
	return fmt.Sprintf("%d components incomplete", e.live)
}
