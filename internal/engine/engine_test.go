package engine

import (
	"strings"
	"testing"
)

// ticker counts edges and finishes after n steps.
type ticker struct {
	n     int
	steps int
	seen  []int64
}

func (t *ticker) Step(now int64) bool {
	t.steps++
	t.seen = append(t.seen, now)
	return true
}

func (t *ticker) Done() bool { return t.steps >= t.n }

// stuck never progresses and never finishes.
type stuck struct{}

func (stuck) Step(int64) bool { return false }
func (stuck) Done() bool      { return false }

func TestDivisors(t *testing.T) {
	if Div(1) != 6 || Div(2) != 3 || Div(3) != 2 || Div(6) != 1 {
		t.Fatal("divisors")
	}
}

func TestDivPanicsOnBadClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 4 GHz")
		}
	}()
	Div(4)
}

func TestClockEdges(t *testing.T) {
	slow := &ticker{n: 4}
	fast := &ticker{n: 12}
	e := New()
	e.Add(slow, 1) // every 6 base cycles
	e.Add(fast, 3) // every 2 base cycles
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	for i, now := range slow.seen {
		if now%6 != 0 {
			t.Fatalf("slow edge %d at base cycle %d", i, now)
		}
	}
	for i, now := range fast.seen {
		if now%2 != 0 {
			t.Fatalf("fast edge %d at base cycle %d", i, now)
		}
	}
}

func TestRunReturnsElapsed(t *testing.T) {
	c := &ticker{n: 10}
	e := New()
	e.Add(c, 2) // every 3 base cycles: done after edge at cycle 27
	elapsed, err := e.Run(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed < 27 || elapsed > 30 {
		t.Fatalf("elapsed = %d", elapsed)
	}
	if e.Now() != elapsed {
		t.Fatalf("Now = %d, want %d", e.Now(), elapsed)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New()
	e.Add(stuck{}, 2)
	_, err := e.Run(1 << 20)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v", err)
	}
}

func TestBudgetExceeded(t *testing.T) {
	// A component that always progresses but never finishes.
	e := New()
	e.Add(&ticker{n: 1 << 30}, 2)
	_, err := e.Run(100)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyEngineFinishesImmediately(t *testing.T) {
	elapsed, err := New().Run(10)
	if err != nil || elapsed != 0 {
		t.Fatalf("elapsed=%d err=%v", elapsed, err)
	}
}

func TestSecondRunContinues(t *testing.T) {
	a := &ticker{n: 2}
	e := New()
	e.Add(a, 2)
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	b := &ticker{n: 2}
	e.Add(b, 2)
	if _, err := e.Run(1 << 16); err != nil {
		t.Fatal(err)
	}
	// b's edges continue from the engine's running clock.
	if b.seen[0] < a.seen[len(a.seen)-1] {
		t.Fatalf("second run restarted the clock: %v then %v", a.seen, b.seen)
	}
}
