package engine

import (
	"testing"
	"time"

	"distda/internal/trace"
)

// runFastBaseline is a frozen copy of the event-driven scheduler loop as it
// stood before the tracing subsystem existed — no Trace field reads, no
// hoisted traced branch. It is the differential baseline for the
// disabled-tracer overhead budget: the instrumented loop must stay within a
// few percent of this code and must return identical cycle counts.
func runFastBaseline(e *Engine, maxBaseCycles int64) (int64, error) {
	if e.running {
		panic("engine: Run re-entered")
	}
	e.running = true
	defer func() { e.running = false }()
	e.pruneDone()
	start := e.now
	var idle int64
	window := int64(deadlockWindow) * e.maxDiv
	for {
		if e.live == 0 {
			return e.now - start, nil
		}
		if e.now-start >= maxBaseCycles {
			return e.now - start, errBudget(maxBaseCycles)
		}
		progress := e.stepDue()
		if e.live == 0 {
			e.now++
			return e.now - start, nil
		}
		if progress {
			e.claimEpoch++
		}
		next, future, _ := e.nextWake(progress)
		if next == Never {
			return e.now - start, errDeadlock(e)
		}
		if progress || future {
			idle = 0
		} else {
			idle += next - e.now
			if idle > window {
				return e.now - start, errDeadlock(e)
			}
		}
		if lim := start + maxBaseCycles; next > lim {
			next = lim
		}
		e.now = next
	}
}

type budgetErr int64

func (b budgetErr) Error() string { return "engine: exceeded base-cycle budget" }

func errBudget(n int64) error { return budgetErr(n) }
func errDeadlock(e *Engine) error {
	return budgetErr(-1)
}

// TestTracedRunBitIdentical runs the same component population through the
// baseline loop, the instrumented loop with tracing disabled, and the
// instrumented loop with a live tracer, and requires identical elapsed
// cycles: tracing is observational only.
func TestTracedRunBitIdentical(t *testing.T) {
	builds := map[string]func(*Engine){"dense": buildDense, "sparse": buildSparse}
	for name, build := range builds {
		base := New()
		build(base)
		want, err := runFastBaseline(base, 1<<30)
		if err != nil {
			t.Fatalf("%s: baseline: %v", name, err)
		}

		plain := New()
		build(plain)
		got, err := plain.Run(1 << 30)
		if err != nil {
			t.Fatalf("%s: untraced: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: untraced Run = %d cycles, baseline = %d", name, got, want)
		}

		tr := trace.New()
		traced := New()
		traced.Trace = tr.Component("engine").At(0)
		build(traced)
		got, err = traced.Run(1 << 30)
		if err != nil {
			t.Fatalf("%s: traced: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: traced Run = %d cycles, baseline = %d", name, got, want)
		}
		if tr.Events() == 0 {
			t.Errorf("%s: traced run recorded no events", name)
		}
	}
}

// TestNaiveTracedBitIdentical is the same check for the reference
// scheduler.
func TestNaiveTracedBitIdentical(t *testing.T) {
	plain := New()
	plain.Naive = true
	buildSparse(plain)
	want, err := plain.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	traced := New()
	traced.Naive = true
	traced.Trace = tr.Component("engine").At(0)
	buildSparse(traced)
	got, err := traced.Run(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("naive traced Run = %d cycles, untraced = %d", got, want)
	}
}

// timeRuns measures the wall time of reps back-to-back engine runs.
func timeRuns(reps int, build func(*Engine), run func(*Engine) (int64, error)) time.Duration {
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		e := New()
		build(e)
		if _, err := run(e); err != nil {
			panic(err)
		}
	}
	return time.Since(t0)
}

// TestDisabledTracerOverhead asserts the instrumented scheduler with the
// zero-value (disabled) Trace stays within 2% of the frozen pre-tracing
// baseline loop on the dense benchmark population — the shape where
// scheduler overhead dominates and any per-cycle cost is maximally visible.
// Trials interleave the two loops and the comparison uses best-of-N, which
// discards scheduler noise; the test is skipped under -short and retried on
// marginal results before failing.
func TestDisabledTracerOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped under -short")
	}
	const (
		trials = 11
		reps   = 6
		budget = 1.02 // satellite acceptance: <= 2% overhead
	)
	// Pin the event-driven mode: the baseline is the frozen event loop, so
	// the comparison isolates tracing instrumentation, not the adaptive
	// scheduler's dense fast path.
	current := func(e *Engine) (int64, error) { e.Mode = ModeEvent; return e.Run(1 << 30) }
	baseline := func(e *Engine) (int64, error) { return runFastBaseline(e, 1<<30) }

	measure := func() (base, cur time.Duration) {
		base, cur = time.Duration(1<<62), time.Duration(1<<62)
		// Warm-up pass outside the measurement.
		timeRuns(1, buildDense, baseline)
		timeRuns(1, buildDense, current)
		for i := 0; i < trials; i++ {
			if d := timeRuns(reps, buildDense, baseline); d < base {
				base = d
			}
			if d := timeRuns(reps, buildDense, current); d < cur {
				cur = d
			}
		}
		return base, cur
	}

	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base, cur := measure()
		ratio = float64(cur) / float64(base)
		t.Logf("attempt %d: baseline %v, instrumented %v, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("disabled-tracer overhead %.2f%% exceeds 2%% budget", 100*(ratio-1))
}

// TestAdaptiveDenseOverhead asserts the default adaptive scheduler stays
// within 5% of the naive reference loop on the dense population — the
// shape where the event-driven scheduler's sweep used to cost ~1.6x. The
// adaptive dense mode must make that bookkeeping disappear. Same
// methodology as TestDisabledTracerOverhead: interleaved trials,
// best-of-N, retry on marginal results, skipped under -short.
func TestAdaptiveDenseOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped under -short")
	}
	const (
		trials = 11
		reps   = 6
		budget = 1.05 // tentpole acceptance: DenseFast (adaptive) <= 1.05x DenseNaive
	)
	adaptive := func(e *Engine) (int64, error) { return e.Run(1 << 30) }
	naive := func(e *Engine) (int64, error) { e.Mode = ModeNaive; return e.Run(1 << 30) }

	measure := func() (base, cur time.Duration) {
		base, cur = time.Duration(1<<62), time.Duration(1<<62)
		timeRuns(1, buildDense, naive)
		timeRuns(1, buildDense, adaptive)
		for i := 0; i < trials; i++ {
			if d := timeRuns(reps, buildDense, naive); d < base {
				base = d
			}
			if d := timeRuns(reps, buildDense, adaptive); d < cur {
				cur = d
			}
		}
		return base, cur
	}

	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base, cur := measure()
		ratio = float64(cur) / float64(base)
		t.Logf("attempt %d: naive %v, adaptive %v, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("adaptive dense overhead %.2f%% exceeds 5%% budget vs naive", 100*(ratio-1))
}

// Benchmarks for manual comparison: the frozen baseline loop vs the
// instrumented loop with tracing disabled vs enabled.
func benchLoop(b *testing.B, build func(*Engine), run func(*Engine) (int64, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		e := New()
		build(e)
		if _, err := run(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineLoopDenseBaseline(b *testing.B) {
	benchLoop(b, buildDense, func(e *Engine) (int64, error) { return runFastBaseline(e, 1<<30) })
}

func BenchmarkEngineLoopDenseTraced(b *testing.B) {
	tr := trace.New()
	benchLoop(b, func(e *Engine) {
		e.Trace = tr.Component("engine").At(0)
		buildDense(e)
	}, func(e *Engine) (int64, error) { return e.Run(1 << 30) })
}

func BenchmarkEngineLoopSparseBaseline(b *testing.B) {
	benchLoop(b, buildSparse, func(e *Engine) (int64, error) { return runFastBaseline(e, 1<<30) })
}

func BenchmarkEngineLoopSparseTraced(b *testing.B) {
	tr := trace.New()
	benchLoop(b, func(e *Engine) {
		e.Trace = tr.Component("engine").At(0)
		buildSparse(e)
	}, func(e *Engine) (int64, error) { return e.Run(1 << 30) })
}
