// Package shard parallelizes one simulation across goroutines while keeping
// results bit-identical to a serial run.
//
// Two layers:
//
//   - Partition + Runner: claims-based islanding. Units (in the simulator:
//     the accelerators of one launch) declare the resource tokens they may
//     touch — NUCA L3 slices by home cluster, channel peerings, a shared
//     private cache. Units sharing any token land in one island; islands
//     therefore share no mutable state and may advance on independent
//     engines with unbounded lookahead. The Runner executes islands across
//     a fixed worker pool with a deterministic island→worker assignment,
//     so scheduling (and the race detector's interleavings) can vary while
//     every merge the caller performs happens in canonical island order.
//
//   - Graph + Channel: conservative time-window synchronization for shards
//     that do exchange messages. Every cross-shard channel carries a fixed
//     minimum latency L (the lookahead: in a NUCA mesh, the minimum
//     cross-region NoC traversal). All shards advance inside a window of
//     W <= min L base cycles; messages sent during a window are stamped
//     with their delivery cycle and drained at the barrier in canonical
//     (delivery cycle, channel registration order, send order) — a message
//     sent at cycle t in window [k, k+W) delivers at t+L >= k+L >= k+W, so
//     it is always injected at a barrier before the receiving shard's clock
//     passes it, making the parallel schedule observationally identical to
//     the serial one at any window size and shard count.
package shard

import "sort"

// Partition is a union-find over units claiming resource tokens: units that
// share any token end up in the same island. Claims are conservative — a
// unit must claim every token it may touch during a run; over-claiming only
// costs parallelism, never correctness.
type Partition struct {
	parent []int
	tokens map[string]int
	// readers holds, per token that has only been read so far, the units
	// reading it. A write claim on the token unions them all; reads alone
	// never couple (immutable state is safely shared).
	readers map[string][]int
	written map[string]bool
}

// NewPartition returns a partition over n units, initially all separate.
func NewPartition(n int) *Partition {
	p := &Partition{
		parent: make([]int, n), tokens: map[string]int{},
		readers: map[string][]int{}, written: map[string]bool{},
	}
	for i := range p.parent {
		p.parent[i] = i
	}
	return p
}

// Claim records that unit may mutate the named token, unioning it with
// every unit that claimed (read or wrote) the token before.
func (p *Partition) Claim(unit int, token string) {
	for _, r := range p.readers[token] {
		p.Union(unit, r)
	}
	delete(p.readers, token)
	p.written[token] = true
	if prev, ok := p.tokens[token]; ok {
		p.Union(unit, prev)
		return
	}
	p.tokens[token] = unit
}

// ClaimRead records that unit may read (but never mutate) the named token.
// Readers union with any writer of the token, in either claim order, but
// not with each other.
func (p *Partition) ClaimRead(unit int, token string) {
	if p.written[token] {
		p.Union(unit, p.tokens[token])
		return
	}
	p.readers[token] = append(p.readers[token], unit)
}

// Union merges the islands of units a and b.
func (p *Partition) Union(a, b int) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	// Smaller root wins, keeping representatives stable under claim order.
	if rb < ra {
		ra, rb = rb, ra
	}
	p.parent[rb] = ra
}

func (p *Partition) find(x int) int {
	for p.parent[x] != x {
		p.parent[x] = p.parent[p.parent[x]]
		x = p.parent[x]
	}
	return x
}

// Islands returns the partition as unit-index lists, each sorted ascending,
// ordered by their smallest member. The result is a pure function of the
// claims, independent of claim order.
func (p *Partition) Islands() [][]int {
	byRoot := map[int][]int{}
	for u := range p.parent {
		r := p.find(u)
		byRoot[r] = append(byRoot[r], u)
	}
	out := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
