package shard

import "sync"

// Runner executes island tasks across a fixed pool of worker goroutines.
// Island i is assigned to worker i % Workers; each worker runs its islands
// in ascending index order. The assignment is a pure function of (island
// count, Workers), so which goroutine runs which island never depends on
// timing — only completion order varies, and the caller merges results in
// island order, making the whole construction schedule-independent.
type Runner struct {
	// Workers is the goroutine count. Values below 1 (or above the island
	// count) are clamped.
	Workers int
	// Jitter, when set, is called by each worker immediately before it runs
	// an island. It exists for tests: a jitter that sleeps pseudo-randomly
	// permutes goroutine completion order, proving that merge results do
	// not depend on it.
	Jitter func(worker, island int)
}

// Run executes the island tasks and returns their errors indexed by island
// (nil entries for islands that succeeded). It always waits for every
// island, even after failures.
func (r *Runner) Run(islands []func() error) []error {
	errs := make([]error, len(islands))
	workers := r.Workers
	if workers > len(islands) {
		workers = len(islands)
	}
	if workers <= 1 {
		for i, fn := range islands {
			if r.Jitter != nil {
				r.Jitter(0, i)
			}
			errs[i] = fn()
		}
		return errs
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(islands); i += workers {
				if r.Jitter != nil {
					r.Jitter(w, i)
				}
				errs[i] = islands[i]()
			}
		}(w)
	}
	wg.Wait()
	return errs
}

// FirstError returns the first non-nil error in island order, or nil.
// Reporting the lowest-indexed failure keeps error output deterministic
// under any completion order.
func FirstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
