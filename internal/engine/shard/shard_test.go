package shard

import (
	"reflect"
	"testing"

	"distda/internal/engine"
)

func TestPartitionIslands(t *testing.T) {
	p := NewPartition(5)
	p.Claim(0, "a")
	p.Claim(1, "a") // 0-1 share a
	p.Claim(2, "b")
	p.Claim(3, "c")
	p.Claim(3, "b") // 2-3 share b
	got := p.Islands()
	want := [][]int{{0, 1}, {2, 3}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("islands = %v, want %v", got, want)
	}
}

// TestPartitionClaimOrderIrrelevant checks Islands is a pure function of
// the claim set: reversing claim order yields the same partition.
func TestPartitionClaimOrderIrrelevant(t *testing.T) {
	claims := []struct {
		unit  int
		token string
	}{{0, "x"}, {3, "y"}, {1, "x"}, {2, "y"}, {4, "z"}, {0, "z"}}
	fwd, rev := NewPartition(5), NewPartition(5)
	for _, c := range claims {
		fwd.Claim(c.unit, c.token)
	}
	for i := len(claims) - 1; i >= 0; i-- {
		rev.Claim(claims[i].unit, claims[i].token)
	}
	if !reflect.DeepEqual(fwd.Islands(), rev.Islands()) {
		t.Fatalf("claim order changed islands: %v vs %v", fwd.Islands(), rev.Islands())
	}
}

// TestPartitionReadClaims: readers of a token never couple with each other,
// but a write claim unions every reader — regardless of whether the write
// lands before or after the reads.
func TestPartitionReadClaims(t *testing.T) {
	p := NewPartition(4)
	p.ClaimRead(0, "ro")
	p.ClaimRead(1, "ro")
	p.ClaimRead(2, "ro")
	if got := len(p.Islands()); got != 4 {
		t.Fatalf("read-only sharing merged islands: %d", got)
	}

	// Write after reads: everyone who read the token joins the writer.
	p.Claim(3, "ro")
	if got := p.Islands(); len(got) != 1 {
		t.Fatalf("write-after-read islands = %v, want one", got)
	}

	// Write before reads: later readers join the writer.
	q := NewPartition(3)
	q.Claim(0, "rw")
	q.ClaimRead(1, "rw")
	q.ClaimRead(2, "rw")
	if got := q.Islands(); len(got) != 1 {
		t.Fatalf("read-after-write islands = %v, want one", got)
	}
}

func TestRunnerAssignmentAndFirstError(t *testing.T) {
	r := &Runner{Workers: 2}
	var workers [5]int
	r.Jitter = func(worker, island int) { workers[island] = worker }
	errs := r.Run([]func() error{
		func() error { return nil },
		func() error { return errTest("one") },
		func() error { return nil },
		func() error { return errTest("three") },
		func() error { return nil },
	})
	// Island i runs on worker i % Workers, independent of timing.
	for i, w := range workers {
		if w != i%2 {
			t.Fatalf("island %d ran on worker %d, want %d", i, w, i%2)
		}
	}
	if err := FirstError(errs); err == nil || err.Error() != "one" {
		t.Fatalf("FirstError = %v, want the lowest-indexed failure", err)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

// --- synthetic windowed-pipeline identity ---
//
// producer and consumer mirror the simulator's link protocol in miniature:
// every cross-component observation is a timestamped message the receiver
// holds until its own clock reaches Msg.At. The same components run under
// one serial engine (messages visible immediately, gated on At) and under
// the windowed Graph (messages delivered at barriers, gated on At) — the
// checksum folds the receive cycle in, so any timing drift changes it.

type producer struct {
	n      int
	period int64
	lat    int64
	send   func(at int64, v float64)
	next   int64
	sent   int
}

func (p *producer) Done() bool { return p.sent >= p.n }

func (p *producer) NextEvent(now int64) int64 {
	if p.Done() {
		return 0
	}
	return p.next
}

func (p *producer) Step(now int64) bool {
	if p.Done() || now < p.next {
		return !p.Done() // timer running
	}
	p.send(now+p.lat, float64(p.sent+1))
	p.sent++
	p.next = now + p.period
	return true
}

type consumer struct {
	n     int
	inbox []Msg
	got   int
	sum   float64
}

func (c *consumer) deliver(m Msg) { c.inbox = append(c.inbox, m) }

func (c *consumer) Done() bool { return c.got >= c.n }

func (c *consumer) NextEvent(now int64) int64 {
	if c.Done() {
		return 0
	}
	if len(c.inbox) == 0 {
		return engine.Never
	}
	if at := c.inbox[0].At; at > now {
		return at
	}
	return 0
}

func (c *consumer) Step(now int64) bool {
	progress := false
	for !c.Done() && len(c.inbox) > 0 {
		m := c.inbox[0]
		if m.At > now {
			return true // in-flight timer
		}
		c.inbox = c.inbox[1:]
		c.got++
		c.sum += m.Val * float64(now+1)
		progress = true
	}
	return progress
}

// ring builds s producer→consumer pairs where pair i's producer feeds pair
// (i+1)%s's consumer, returning the components pair-indexed.
func ring(s, n int, period, lat int64) (prods []*producer, cons []*consumer) {
	prods = make([]*producer, s)
	cons = make([]*consumer, s)
	for i := 0; i < s; i++ {
		cons[i] = &consumer{n: n}
		prods[i] = &producer{n: n, period: period, lat: lat}
	}
	return prods, cons
}

// runSerial executes the ring on one engine, the reference schedule.
func runSerial(s, n int, period, lat int64) (int64, []float64, error) {
	prods, cons := ring(s, n, period, lat)
	eng := engine.New()
	for i := 0; i < s; i++ {
		dst := cons[(i+1)%s]
		prods[i].send = func(at int64, v float64) { dst.deliver(Msg{At: at, Val: v}) }
		eng.Add(prods[i], 1)
		eng.Add(cons[i], 1)
	}
	elapsed, err := eng.Run(1 << 20)
	sums := make([]float64, s)
	for i, c := range cons {
		sums[i] = c.sum
	}
	return elapsed, sums, err
}

// runSharded executes the ring with one engine per pair under the Graph.
func runSharded(s, n int, period, lat, window int64, workers int, jitter func(int, int)) (int64, []float64, error) {
	prods, cons := ring(s, n, period, lat)
	g := &Graph{Window: window, Workers: workers, Jitter: jitter}
	for i := 0; i < s; i++ {
		ch := &Channel{Latency: lat, To: (i + 1) % s}
		dst := cons[(i+1)%s]
		ch.Deliver = dst.deliver
		prods[i].send = func(at int64, v float64) { ch.SendAt(at, 0, v) }
		g.AddChannel(ch)
		eng := engine.New()
		eng.Add(prods[i], 1)
		eng.Add(cons[i], 1)
		g.AddShard(eng)
	}
	elapsed, err := g.Run(1 << 20)
	sums := make([]float64, s)
	for i, c := range cons {
		sums[i] = c.sum
	}
	return elapsed, sums, err
}

func TestGraphMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		s, n                int
		period, lat, window int64
		workers             int
	}{
		{2, 16, 1, 4, 4, 2},
		{2, 16, 1, 4, 1, 2}, // smaller window, same result
		{3, 9, 3, 2, 2, 1},  // workers < shards
		{4, 25, 2, 7, 5, 8}, // workers > shards
	} {
		sElapsed, sSums, err := runSerial(tc.s, tc.n, tc.period, tc.lat)
		if err != nil {
			t.Fatalf("%+v: serial: %v", tc, err)
		}
		gElapsed, gSums, err := runSharded(tc.s, tc.n, tc.period, tc.lat, tc.window, tc.workers, nil)
		if err != nil {
			t.Fatalf("%+v: sharded: %v", tc, err)
		}
		if sElapsed != gElapsed || !reflect.DeepEqual(sSums, gSums) {
			t.Errorf("%+v: diverged: serial (%d, %v) vs sharded (%d, %v)",
				tc, sElapsed, sSums, gElapsed, gSums)
		}
	}
}

// TestGraphIdleFastForward regresses the idle-window handling: components
// whose next internal event lies far beyond the window must not trip the
// deadlock detector, and the coordinator must skip the dead windows rather
// than crawl through them (bounded here by the cycle budget).
func TestGraphIdleFastForward(t *testing.T) {
	// Huge inter-send gaps relative to the 2-cycle window.
	sElapsed, sSums, err := runSerial(2, 4, 50_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	gElapsed, gSums, err := runSharded(2, 4, 50_000, 2, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sElapsed != gElapsed || !reflect.DeepEqual(sSums, gSums) {
		t.Fatalf("diverged: serial (%d, %v) vs sharded (%d, %v)", sElapsed, sSums, gElapsed, gSums)
	}
}

func TestGraphWindowExceedsLatency(t *testing.T) {
	_, _, err := runSharded(2, 4, 1, 2, 3, 2, nil)
	if err == nil {
		t.Fatal("window > min latency accepted")
	}
}

func TestGraphDeadlock(t *testing.T) {
	// A lone consumer that never receives anything: blocked on a peer
	// forever, nothing in flight.
	c := &consumer{n: 1}
	eng := engine.New()
	eng.Add(c, 1)
	g := &Graph{Window: 4}
	g.AddShard(eng)
	g.AddChannel(&Channel{Latency: 4, Deliver: c.deliver})
	if _, err := g.Run(1 << 20); err == nil {
		t.Fatal("deadlock undetected")
	}
}

// FuzzShardSchedule drives the synthetic pipeline through fuzz-chosen
// shard counts, window sizes, latencies and send cadences, requiring the
// windowed parallel schedule to reproduce the serial engine bit for bit.
func FuzzShardSchedule(f *testing.F) {
	f.Add(uint8(2), uint8(8), uint8(1), uint8(4), uint8(4), uint8(2))
	f.Add(uint8(4), uint8(16), uint8(3), uint8(7), uint8(2), uint8(8))
	f.Add(uint8(3), uint8(1), uint8(10), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, s, n, period, lat, window, workers uint8) {
		shards := 2 + int(s)%7      // 2..8
		items := 1 + int(n)%32      // 1..32
		per := 1 + int64(period)%16 // 1..16
		l := 1 + int64(lat)%16      // 1..16
		w := 1 + int64(window)%l    // 1..latency
		wk := 1 + int(workers)%(shards+2)
		sElapsed, sSums, err := runSerial(shards, items, per, l)
		if err != nil {
			t.Fatalf("serial: %v", err)
		}
		gElapsed, gSums, err := runSharded(shards, items, per, l, w, wk, nil)
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}
		if sElapsed != gElapsed || !reflect.DeepEqual(sSums, gSums) {
			t.Fatalf("shards=%d items=%d period=%d lat=%d window=%d workers=%d: serial (%d, %v) vs sharded (%d, %v)",
				shards, items, per, l, w, wk, sElapsed, sSums, gElapsed, gSums)
		}
	})
}
