package shard

import (
	"fmt"
	"io"
	"time"

	"distda/internal/obs"
)

// IslandStats is one shard's (island's) share of a sharded run.
type IslandStats struct {
	// Busy is wall-clock time the island's engine spent advancing inside
	// windows (the RunUntil calls).
	Busy time.Duration `json:"busy"`
	// BarrierWait is wall-clock time between the island finishing its
	// window and the round's barrier completing — time spent waiting for
	// slower islands. Only rounds where the island ran count.
	BarrierWait time.Duration `json:"barrier_wait"`
	// Windows is the number of rounds the island actually ran in.
	Windows int64 `json:"windows"`
	// Skipped is the number of rounds the island sat out (parked on a
	// future event with no fresh deliveries).
	Skipped int64 `json:"skipped"`
}

// Stats is wall-clock attribution for sharded execution, collected by
// Graph.Run when Graph.Stats is set. The count fields (Windows,
// IdleFastForwards, Deliveries, per-island Windows/Skipped) are
// deterministic — the window algorithm's round structure is bit-identical
// at any worker count — while Busy and BarrierWait are host wall-clock
// measurements. Collection is observational only: it never changes
// simulated results.
type Stats struct {
	Islands []IslandStats `json:"islands"`
	// Windows is the total number of barrier rounds.
	Windows int64 `json:"windows"`
	// IdleFastForwards counts rounds where nothing stepped and the graph
	// jumped ahead to the earliest wake-up instead of sweeping dead
	// windows.
	IdleFastForwards int64 `json:"idle_fast_forwards"`
	// Deliveries is the total number of cross-shard messages delivered at
	// barriers.
	Deliveries int64 `json:"deliveries"`
	// Launches is the number of sharded Graph.Run calls accumulated here
	// (a simulation performs one per kernel launch).
	Launches int64 `json:"launches"`
}

// Add accumulates o into s, padding the island list as needed. Used to
// merge per-cell collectors in serial cell order, which keeps the
// deterministic count fields independent of -parallel.
func (s *Stats) Add(o *Stats) {
	if o == nil {
		return
	}
	for len(s.Islands) < len(o.Islands) {
		s.Islands = append(s.Islands, IslandStats{})
	}
	for i, is := range o.Islands {
		s.Islands[i].Busy += is.Busy
		s.Islands[i].BarrierWait += is.BarrierWait
		s.Islands[i].Windows += is.Windows
		s.Islands[i].Skipped += is.Skipped
	}
	s.Windows += o.Windows
	s.IdleFastForwards += o.IdleFastForwards
	s.Deliveries += o.Deliveries
	s.Launches += o.Launches
}

// Empty reports whether nothing was recorded (no sharded launches ran).
func (s *Stats) Empty() bool {
	return s == nil || (s.Launches == 0 && s.Windows == 0 && len(s.Islands) == 0)
}

// WriteReport renders a human-readable shard attribution report.
func (s *Stats) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "shard execution: %d launch(es), %d window(s), %d idle fast-forward(s), %d cross-shard deliveries\n",
		s.Launches, s.Windows, s.IdleFastForwards, s.Deliveries)
	for i, is := range s.Islands {
		fmt.Fprintf(w, "  island %d: busy %v, barrier-wait %v, ran %d window(s), skipped %d\n",
			i, is.Busy.Round(time.Microsecond), is.BarrierWait.Round(time.Microsecond),
			is.Windows, is.Skipped)
	}
}

// Record publishes the stats into an obs registry (no-op on a nil
// registry). Counter values are Stored, not Added: callers scrape the
// accumulated totals.
func (s *Stats) Record(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("distda_shard_windows_total",
		"Barrier rounds executed by sharded runs.").With().Store(s.Windows)
	reg.Counter("distda_shard_idle_fastforwards_total",
		"Rounds fast-forwarded past dead windows.").With().Store(s.IdleFastForwards)
	reg.Counter("distda_shard_deliveries_total",
		"Cross-shard messages delivered at barriers.").With().Store(s.Deliveries)
	reg.Counter("distda_shard_launches_total",
		"Sharded kernel launches executed.").With().Store(s.Launches)
	busy := reg.SecondsCounter("distda_shard_busy_seconds_total",
		"Wall-clock time each island spent advancing.", "island")
	wait := reg.SecondsCounter("distda_shard_barrier_wait_seconds_total",
		"Wall-clock time each island waited at window barriers.", "island")
	ran := reg.Counter("distda_shard_active_windows_total",
		"Windows each island actually ran in.", "island")
	skip := reg.Counter("distda_shard_skipped_windows_total",
		"Windows each island sat out.", "island")
	for i, is := range s.Islands {
		l := fmt.Sprint(i)
		busy.With(l).Store(int64(is.Busy))
		wait.With(l).Store(int64(is.BarrierWait))
		ran.With(l).Store(is.Windows)
		skip.With(l).Store(is.Skipped)
	}
}

// Extern feeds the stats to an external stats sink (the profiler's extern
// section) without this package importing it: add is called once per
// statistic with a dotted name, a description, and the value (durations in
// seconds).
func (s *Stats) Extern(add func(name, desc string, v float64)) {
	add("shard.launches", "Sharded kernel launches executed", float64(s.Launches))
	add("shard.windows", "Barrier rounds executed", float64(s.Windows))
	add("shard.idleFastForwards", "Rounds fast-forwarded past dead windows", float64(s.IdleFastForwards))
	add("shard.deliveries", "Cross-shard messages delivered", float64(s.Deliveries))
	for i, is := range s.Islands {
		add(fmt.Sprintf("shard.island%02d.busySeconds", i),
			fmt.Sprintf("Island %d wall-clock busy time (s)", i), is.Busy.Seconds())
		add(fmt.Sprintf("shard.island%02d.barrierWaitSeconds", i),
			fmt.Sprintf("Island %d wall-clock barrier wait (s)", i), is.BarrierWait.Seconds())
		add(fmt.Sprintf("shard.island%02d.windows", i),
			fmt.Sprintf("Island %d windows ran", i), float64(is.Windows))
		add(fmt.Sprintf("shard.island%02d.skipped", i),
			fmt.Sprintf("Island %d windows skipped", i), float64(is.Skipped))
	}
}
