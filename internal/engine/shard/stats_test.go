package shard

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"distda/internal/engine"
	"distda/internal/obs"
)

// runShardedStats is runSharded with a stats collector attached.
func runShardedStats(s, n int, period, lat, window int64, workers int) (int64, []float64, *Stats, error) {
	prods, cons := ring(s, n, period, lat)
	st := &Stats{}
	g := &Graph{Window: window, Workers: workers, Stats: st}
	for i := 0; i < s; i++ {
		ch := &Channel{Latency: lat, To: (i + 1) % s}
		dst := cons[(i+1)%s]
		ch.Deliver = dst.deliver
		prods[i].send = func(at int64, v float64) { ch.SendAt(at, 0, v) }
		g.AddChannel(ch)
		eng := engine.New()
		eng.Add(prods[i], 1)
		eng.Add(cons[i], 1)
		g.AddShard(eng)
	}
	elapsed, err := g.Run(1 << 20)
	sums := make([]float64, s)
	for i, c := range cons {
		sums[i] = c.sum
	}
	return elapsed, sums, st, err
}

// TestStatsObservationalOnly: enabling stats must not change the
// simulated result.
func TestStatsObservationalOnly(t *testing.T) {
	plainElapsed, plainSums, err := runSharded(3, 9, 3, 2, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed, sums, st, err := runShardedStats(3, 9, 3, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != plainElapsed || !reflect.DeepEqual(sums, plainSums) {
		t.Fatalf("stats changed the result: (%d, %v) vs (%d, %v)",
			elapsed, sums, plainElapsed, plainSums)
	}
	if st.Empty() || st.Launches != 1 || st.Windows == 0 || len(st.Islands) != 3 {
		t.Fatalf("stats not collected: %+v", st)
	}
	var ran int64
	for _, is := range st.Islands {
		ran += is.Windows
	}
	if ran == 0 {
		t.Fatalf("no island windows recorded: %+v", st)
	}
}

// TestStatsCountsDeterministic: the deterministic fields (windows,
// deliveries, idle fast-forwards, per-island windows/skipped) must be
// identical at any worker count, because the round structure is.
func TestStatsCountsDeterministic(t *testing.T) {
	strip := func(st *Stats) *Stats {
		out := &Stats{
			Windows:          st.Windows,
			IdleFastForwards: st.IdleFastForwards,
			Deliveries:       st.Deliveries,
			Launches:         st.Launches,
		}
		for _, is := range st.Islands {
			out.Islands = append(out.Islands, IslandStats{Windows: is.Windows, Skipped: is.Skipped})
		}
		return out
	}
	_, _, base, err := runShardedStats(4, 25, 2, 7, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		_, _, st, err := runShardedStats(4, 25, 2, 7, 5, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(strip(st), strip(base)) {
			t.Fatalf("counts differ at %d workers:\n%+v\nvs 1 worker:\n%+v", workers, st, base)
		}
	}
	if base.Deliveries == 0 {
		t.Fatalf("ring run delivered nothing: %+v", base)
	}
}

// TestStatsIdleFastForwardCounted: the sparse ring from
// TestGraphIdleFastForward must report fast-forwarded windows.
func TestStatsIdleFastForwards(t *testing.T) {
	_, _, st, err := runShardedStats(2, 4, 50_000, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.IdleFastForwards == 0 {
		t.Fatalf("sparse run recorded no idle fast-forwards: %+v", st)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{
		Islands:  []IslandStats{{Busy: time.Second, Windows: 2}},
		Windows:  2,
		Launches: 1,
	}
	b := &Stats{
		Islands: []IslandStats{
			{BarrierWait: time.Second, Windows: 1, Skipped: 1},
			{Busy: 2 * time.Second, Windows: 3},
		},
		Windows:          3,
		IdleFastForwards: 1,
		Deliveries:       5,
		Launches:         1,
	}
	a.Add(b)
	a.Add(nil)
	want := &Stats{
		Islands: []IslandStats{
			{Busy: time.Second, BarrierWait: time.Second, Windows: 3, Skipped: 1},
			{Busy: 2 * time.Second, Windows: 3},
		},
		Windows:          5,
		IdleFastForwards: 1,
		Deliveries:       5,
		Launches:         2,
	}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Add merged wrong:\n%+v\nwant\n%+v", a, want)
	}
	if a.Empty() {
		t.Fatal("merged stats reported empty")
	}
	if !(&Stats{}).Empty() {
		t.Fatal("zero stats not empty")
	}
}

func TestStatsReportAndRecord(t *testing.T) {
	_, _, st, err := runShardedStats(2, 16, 1, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	st.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{"shard execution:", "island 0:", "island 1:", "busy", "barrier-wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	reg := obs.New()
	st.Record(reg)
	st.Record(nil) // no-op
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatalf("shard metrics not valid exposition: %v", err)
	}
	if got := m["distda_shard_windows_total"]; got != float64(st.Windows) {
		t.Fatalf("windows_total = %v, want %d", got, st.Windows)
	}
	for _, k := range []string{
		`distda_shard_busy_seconds_total{island="0"}`,
		`distda_shard_barrier_wait_seconds_total{island="1"}`,
		`distda_shard_active_windows_total{island="0"}`,
		`distda_shard_launches_total`,
	} {
		if _, ok := m[k]; !ok {
			t.Fatalf("series %s missing; have %v", k, m)
		}
	}

	ext := map[string]float64{}
	st.Extern(func(name, desc string, v float64) { ext[name] = v })
	if ext["shard.windows"] != float64(st.Windows) || ext["shard.launches"] != 1 {
		t.Fatalf("extern stats wrong: %v", ext)
	}
	if _, ok := ext["shard.island00.busySeconds"]; !ok {
		t.Fatalf("extern missing island stats: %v", ext)
	}
}
