package shard

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"distda/internal/engine"
)

// Msg is one cross-shard message: its payload and the base cycle at which
// it becomes visible to the receiving shard. Kind is opaque to the shard
// layer — senders and receivers agree on its meaning.
type Msg struct {
	At   int64
	Kind int
	Val  float64
}

// Channel carries messages from components of one shard to another shard
// with a fixed minimum latency — the lookahead that makes conservative
// windowing sound. Send is called by source-shard components during their
// Step (single-goroutine: one shard never runs on two workers at once);
// Deliver is invoked only at window barriers, on the coordinator goroutine,
// in canonical (delivery cycle, channel registration order, send order)
// order. The receiving component must hold delivered messages until its own
// clock reaches Msg.At — deliveries are conservative-early, never late.
type Channel struct {
	// Latency is the fixed delivery delay in base cycles (must be >= the
	// window size). In the NUCA machine this is the minimum cross-region
	// NoC traversal: hops × HopCycles.
	Latency int64
	// To is the receiving shard's index (registration order): a barrier
	// delivery marks that shard dirty so its engine re-queries component
	// claims on its next window.
	To int
	// Deliver injects one message into the receiving shard's state.
	Deliver func(Msg)

	pending []Msg
}

// Send enqueues a message sent at base cycle now; it will be delivered at
// now + Latency.
func (c *Channel) Send(now int64, v float64) {
	c.pending = append(c.pending, Msg{At: now + c.Latency, Val: v})
}

// SendAt enqueues a message with an explicit arrival cycle computed by the
// sender (e.g. a per-message NoC latency). The channel's Latency remains
// the conservative lower bound: at must never precede it, and arrivals on
// one channel must be nondecreasing (the route is FIFO) — senders clamp.
func (c *Channel) SendAt(at int64, kind int, v float64) {
	if n := len(c.pending); n > 0 && at < c.pending[n-1].At {
		at = c.pending[n-1].At
	}
	c.pending = append(c.pending, Msg{At: at, Kind: kind, Val: v})
}

// Graph couples per-shard engines with the channels between them and
// advances everything in conservative time windows.
type Graph struct {
	// Window is the synchronization window in base cycles. It must not
	// exceed the minimum channel latency; 0 means "use exactly that
	// minimum" (or run to completion in one window when there are no
	// channels). Any legal window yields bit-identical results — smaller
	// windows only add barriers.
	Window int64
	// Workers bounds the goroutines advancing shards inside a window
	// (values < 1 mean one per shard). Results are identical at any
	// worker count, so Run additionally clamps to GOMAXPROCS — workers
	// beyond the CPUs that can host them only add scheduler switches at
	// every barrier — unless Jitter is set: the concurrency tests install
	// it precisely to force real goroutine interleavings.
	Workers int
	Jitter  func(worker, island int)

	// Stats, when non-nil, accumulates wall-clock attribution for each Run:
	// per-island busy and barrier-wait time, window counts, idle
	// fast-forwards, deliveries. Collection is observational only — it
	// never changes the round structure or the simulated result — and adds
	// two clock reads per island-window when enabled, nothing when nil.
	Stats *Stats

	shards []*engine.Engine
	chans  []*Channel

	dues []due // drain's scratch buffer, reused across barriers
}

// AddShard registers one shard's engine. Shards are identified by
// registration order.
func (g *Graph) AddShard(e *engine.Engine) { g.shards = append(g.shards, e) }

// AddChannel registers a cross-shard channel. Only one shard's components
// may Send on a given channel.
func (g *Graph) AddChannel(c *Channel) { g.chans = append(g.chans, c) }

// Run advances every shard to completion and returns the completion base
// cycle: the maximum over shards of the cycle at which each finished —
// identical to the elapsed cycles a single serial engine over the same
// components would report. It fails when maxBaseCycles elapses first or
// when every live shard is blocked on a peer with nothing in flight
// (global deadlock).
//
// Each round advances only the shards that can act — a shard parked on a
// future event (or on its peers) with no fresh deliveries is skipped, and
// rounds in which nothing can happen fast-forward to the earliest wake-up,
// so synchronization cost scales with activity, not with simulated time.
func (g *Graph) Run(maxBaseCycles int64) (int64, error) {
	n := len(g.shards)
	if n == 0 {
		return 0, nil
	}
	minLat := int64(engine.Never)
	for _, c := range g.chans {
		if c.Latency < minLat {
			minLat = c.Latency
		}
		if c.To < 0 || c.To >= n {
			return 0, fmt.Errorf("shard: channel receiver %d out of range", c.To)
		}
	}
	w := g.Window
	if w <= 0 {
		w = minLat // no channels: Never, clamped to the budget below
	}
	if w > minLat {
		return 0, fmt.Errorf("shard: window %d exceeds minimum channel latency %d", w, minLat)
	}
	if w > maxBaseCycles {
		w = maxBaseCycles
	}
	workers := g.Workers
	if workers < 1 || workers > n {
		workers = n
	}
	if p := runtime.GOMAXPROCS(0); g.Jitter == nil && workers > p {
		workers = p
	}

	done := make([]bool, n)
	doneAt := make([]int64, n)
	progress := make([]bool, n)
	next := make([]int64, n)
	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true // first window: claims unknown
	}

	// Wall-clock attribution, active only when g.Stats is set. busyNS and
	// finNS are written by whichever worker runs island i's task and read
	// by the coordinator after the round — the pool's channel handshake
	// orders those accesses.
	var rec *Stats
	var busyNS, finNS []int64
	if g.Stats != nil {
		rec = &Stats{Islands: make([]IslandStats, n), Launches: 1}
		busyNS = make([]int64, n)
		finNS = make([]int64, n)
		defer g.Stats.Add(rec)
	}

	// One task closure per shard, built once; end and dirty are updated by
	// the coordinator between rounds (the pool's channel handshake orders
	// those writes before the workers' reads).
	var end int64
	tasks := make([]func(), n)
	for i := range g.shards {
		i := i
		tasks[i] = func() {
			var t0 int64
			if rec != nil {
				t0 = time.Now().UnixNano()
			}
			d, p, nx := g.shards[i].RunUntil(end, dirty[i])
			if rec != nil {
				now := time.Now().UnixNano()
				busyNS[i] += now - t0
				finNS[i] = now
			}
			dirty[i] = false
			progress[i], next[i] = p, nx
			if d {
				done[i] = true
				doneAt[i] = g.shards[i].Now()
			}
		}
	}
	pool := newPool(workers, g.Jitter, tasks)
	defer pool.close()
	active := make([]int, 0, n)

	var t int64
	for {
		finished := true
		for i := range done {
			if !done[i] {
				finished = false
				break
			}
		}
		pending := 0
		for _, c := range g.chans {
			pending += len(c.pending)
		}
		if finished && pending == 0 {
			var max int64
			for _, at := range doneAt {
				if at > max {
					max = at
				}
			}
			return max, nil
		}
		if t >= maxBaseCycles {
			return t, fmt.Errorf("shard: exceeded %d base cycles", maxBaseCycles)
		}
		end = t + w
		if end > maxBaseCycles {
			end = maxBaseCycles
		}

		// A shard can act this round only if a barrier delivered into it
		// since its last run, or its next internal event falls inside the
		// window (events exactly at the boundary step next round). Skipped
		// shards keep their parked state; their clocks catch up lazily.
		active = active[:0]
		for i := range g.shards {
			if !done[i] && (dirty[i] || next[i] < end) {
				active = append(active, i)
			}
		}
		pool.run(active)
		if rec != nil {
			// Barrier wait: from each active island's own finish to the
			// round's barrier (the slowest island's finish), i.e. time spent
			// waiting for slower peers.
			rec.Windows++
			barrier := time.Now().UnixNano()
			for _, i := range active {
				rec.Islands[i].Busy += time.Duration(busyNS[i])
				busyNS[i] = 0
				rec.Islands[i].BarrierWait += time.Duration(barrier - finNS[i])
				rec.Islands[i].Windows++
			}
			for i := range g.shards {
				if !done[i] {
					rec.Islands[i].Skipped++
				}
			}
			for _, i := range active {
				if !done[i] {
					rec.Islands[i].Skipped-- // ran, not skipped
				}
			}
		}
		anyProgress := false
		for _, i := range active {
			if progress[i] || done[i] {
				anyProgress = true
			}
		}

		// Barrier: deliver every message that becomes visible before the
		// next window's far edge, in canonical order. Messages sent during
		// window [t, end) carry At >= t + Latency >= t + w = end, so the
		// candidate set for (end, end+w] is complete here.
		delivered := g.drain(end+w, dirty)
		if rec != nil {
			rec.Deliveries += int64(delivered)
		}

		if !anyProgress && delivered == 0 && !finished {
			// Nothing stepped and nothing arrived — but a shard may be
			// parked on a future internal event (a DRAM access, a long
			// fetch) or a message may still be in flight past the horizon.
			// Only when every live shard is blocked on a peer (Never) with
			// nothing pending is this a true deadlock; otherwise fast-
			// forward the dead windows toward the earliest wake-up.
			// Jumping is sound: shards hold parked state, all messages
			// with At <= end+w are delivered, and the jump keeps the next
			// window's far edge at or before the first cycle anything can
			// happen.
			wake := int64(engine.Never)
			for i := range g.shards {
				if !done[i] && next[i] < wake {
					wake = next[i]
				}
			}
			for _, c := range g.chans {
				if len(c.pending) > 0 && c.pending[0].At < wake {
					wake = c.pending[0].At
				}
			}
			if wake == engine.Never {
				return t, fmt.Errorf("shard: deadlock at base cycle %d (no shard progress, nothing in flight)", t)
			}
			if wake-w > end {
				end = wake - w
				if rec != nil {
					rec.IdleFastForwards++
				}
			}
		}
		t = end
	}
}

type due struct {
	m   Msg
	ch  int
	seq int
}

// drain delivers all pending messages with At <= horizon across channels in
// canonical (At, channel registration order, send order) order, marks the
// receiving shards dirty, and returns how many messages were delivered.
func (g *Graph) drain(horizon int64, dirty []bool) int {
	g.dues = g.dues[:0]
	for ci, c := range g.chans {
		if len(c.pending) == 0 {
			continue
		}
		keep := c.pending[:0]
		for si, m := range c.pending {
			if m.At <= horizon {
				g.dues = append(g.dues, due{m: m, ch: ci, seq: si})
			} else {
				keep = append(keep, m)
			}
		}
		c.pending = keep
	}
	if len(g.dues) == 0 {
		return 0
	}
	sort.Slice(g.dues, func(i, j int) bool {
		if g.dues[i].m.At != g.dues[j].m.At {
			return g.dues[i].m.At < g.dues[j].m.At
		}
		if g.dues[i].ch != g.dues[j].ch {
			return g.dues[i].ch < g.dues[j].ch
		}
		return g.dues[i].seq < g.dues[j].seq
	})
	for _, d := range g.dues {
		c := g.chans[d.ch]
		c.Deliver(d.m)
		dirty[c.To] = true
	}
	return len(g.dues)
}

// pool runs rounds of shard tasks on persistent worker goroutines. The
// coordinator acts as worker 0 and runs its own stride inline; helpers
// 1..workers-1 wake per round through their own channel and acknowledge
// when their stride is finished, so a round costs two channel operations
// per participating helper instead of goroutine spawns. Active shard index
// idx is assigned to worker idx % workers — a pure function of the round's
// active set, independent of timing.
type pool struct {
	workers int
	jitter  func(worker, island int)
	tasks   []func()
	active  []int
	start   []chan struct{} // per helper: round kickoff (nil entries unused)
	ack     chan struct{}
}

func newPool(workers int, jitter func(int, int), tasks []func()) *pool {
	p := &pool{workers: workers, jitter: jitter, tasks: tasks}
	if workers > 1 {
		p.start = make([]chan struct{}, workers-1)
		p.ack = make(chan struct{}, workers-1)
		for h := range p.start {
			p.start[h] = make(chan struct{}, 1)
			go p.helper(h + 1)
		}
	}
	return p
}

func (p *pool) helper(w int) {
	for range p.start[w-1] {
		for idx := w; idx < len(p.active); idx += p.workers {
			if p.jitter != nil {
				p.jitter(w, idx)
			}
			p.tasks[p.active[idx]]()
		}
		p.ack <- struct{}{}
	}
}

func (p *pool) run(active []int) {
	p.active = active
	// Helpers with an empty stride are not woken.
	woken := 0
	for w := 1; w < p.workers && w < len(active); w++ {
		p.start[w-1] <- struct{}{}
		woken++
	}
	for idx := 0; idx < len(active); idx += p.workers {
		if p.jitter != nil {
			p.jitter(0, idx)
		}
		p.tasks[active[idx]]()
	}
	for i := 0; i < woken; i++ {
		<-p.ack
	}
}

func (p *pool) close() {
	for _, c := range p.start {
		close(c)
	}
}
