package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"distda/internal/artifact"
	"distda/internal/compiler"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/profile"
	"distda/internal/sim"
	"distda/internal/trace"
	"distda/internal/workloads"
)

// Options configures Build, the unified experiment-matrix runner.
type Options struct {
	// Scale selects the workload input scale.
	Scale workloads.Scale

	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS. The
	// rendered matrix is byte-identical at any worker count.
	Workers int

	// Observe attaches per-cell tracing and metrics collection.
	Observe Observe

	// Cache is the compile cache shared by the cells. When nil, Build uses
	// a private in-memory cache; pass a disk-backed artifact.New to reuse
	// compilations across processes. Cache counters are folded into
	// Observe.Metrics (artifact/ component) after the run.
	Cache *artifact.Cache

	// EngineMode selects the engine scheduling strategy for every cell
	// (adaptive — the zero value —, event-driven, or the naive reference).
	// Results are bit-identical across modes; this picks wall-clock only.
	EngineMode engine.Mode

	// Shards, when above 1, lets each offload launch in every cell execute
	// across up to that many goroutine shards (one per independent NUCA
	// island). Results are bit-identical at any setting.
	Shards int

	// ShardStats, when non-nil, accumulates wall-clock shard attribution
	// (per-island busy/barrier-wait time, window and delivery counts)
	// across every cell. Per-cell collectors merge in serial cell order,
	// so the deterministic count fields are identical at any Workers
	// setting. Observational only.
	ShardStats *shard.Stats

	// Checkpoint, when non-empty, is the path of a JSON checkpoint that is
	// rewritten (atomically) after every completed cell. If the file
	// already holds cells for this scale, those cells are resumed (not
	// re-simulated); the rendered tables stay byte-identical to an
	// uninterrupted run. Degraded cells are never checkpointed, so a
	// resumed run retries them.
	Checkpoint string

	// CellTimeout bounds each cell's wall-clock time (0 = unbounded). A
	// cell that exceeds it degrades to an "n/a" table entry instead of
	// aborting the matrix; Matrix.Degraded records the reason.
	CellTimeout time.Duration

	// Retries is the number of times a cell is re-attempted after a
	// transient failure (see Transient). Timeouts are never retried.
	Retries int

	// RetryBackoff is the base delay between attempts; attempt n waits
	// n*RetryBackoff. Zero selects a small default.
	RetryBackoff time.Duration

	// Hook, when non-nil, runs before every cell attempt (fault-injection
	// point for tests and the CLI's -hang-cell flag). Returning an error
	// fails the attempt exactly as a simulation error would; blocking on
	// ctx.Done simulates a hung cell.
	Hook CellHook

	// Progress, when non-nil, is invoked once per completed cell (including
	// resumed and degraded ones) — the feed for the -http live introspection
	// endpoint. Calls are serialized by Build; the callback must not block
	// for long (it runs on the worker completion path). Invocation order
	// follows completion, not serial cell order.
	Progress func(ProgressEvent)
}

// ProgressEvent describes one completed matrix cell for Options.Progress.
type ProgressEvent struct {
	Workload string
	Config   string
	Index    int // flat serial cell index (workload-major)
	Total    int // total cells in the matrix
	Dur      time.Duration
	Degraded bool // cell timed out and will render n/a
	Resumed  bool // restored from the checkpoint, not re-simulated
}

// CellHook is Options.Hook: a per-attempt fault-injection callback. ctx is
// the cell's context (it carries the per-cell deadline).
type CellHook func(ctx context.Context, workload, config string, attempt int) error

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so Build's retry policy re-attempts the cell. The
// simulator itself never fails transiently — this exists for hooks and
// harnesses that inject recoverable faults.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked with
// Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

const defaultRetryBackoff = 10 * time.Millisecond

// Build runs the full workload × configuration matrix of §VI-A under ctx.
//
// Cells fan out over Options.Workers goroutines; compilation goes through
// the (possibly disk-backed) artifact cache; completed cells are
// checkpointed so an interrupted run resumes with only the missing cells;
// and cells exceeding Options.CellTimeout degrade to "n/a" entries instead
// of sinking the whole matrix. Whatever the combination of workers, cache
// warmth and resumption, a run that completes without degradation renders
// tables byte-identical to a cold serial run.
//
// Canceling ctx aborts the run with an error wrapping sim.ErrCanceled
// (already-checkpointed cells survive for the next attempt).
func Build(ctx context.Context, opts Options) (*Matrix, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opts.Cache
	if cache == nil {
		cache = artifact.New(artifact.Config{})
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = defaultRetryBackoff
	}

	m := &Matrix{
		Scale:     opts.Scale,
		Workloads: workloads.All(opts.Scale),
		Configs:   sim.AllPaperConfigs(),
		Res:       map[string]map[string]*sim.Result{},
		Degraded:  map[string]map[string]string{},
	}
	nw, nc := len(m.Workloads), len(m.Configs)

	// Inputs: serial pre-generation in serial-run order for EVERY cell —
	// including resumed ones. The workload generators share seeded RNG
	// state across NewData calls, so skipping a cell's draw would shift
	// every later cell's inputs and break resume-equivalence.
	data := make([][]map[string][]float64, nw)
	for i, w := range m.Workloads {
		data[i] = make([]map[string][]float64, nc)
		for j := range m.Configs {
			data[i][j] = w.NewData()
		}
	}

	// Resume: load the checkpoint (if any) and mark its cells done.
	ck, err := newCheckpointer(opts.Checkpoint, m)
	if err != nil {
		return nil, err
	}
	resumed := ck.resumed()

	// Observability: per-cell tracers are drawn serially (provider state is
	// never raced) for the cells that will actually run; per-cell metrics
	// registries and profilers are merged serially below.
	tracers := make([][]*trace.Tracer, nw)
	cellMet := make([][]*trace.Metrics, nw)
	cellProf := make([][]*profile.Profiler, nw)
	cellShard := make([][]*shard.Stats, nw)
	for i, w := range m.Workloads {
		tracers[i] = make([]*trace.Tracer, nc)
		cellMet[i] = make([]*trace.Metrics, nc)
		cellProf[i] = make([]*profile.Profiler, nc)
		cellShard[i] = make([]*shard.Stats, nc)
		for j, cfg := range m.Configs {
			if resumed[i*nc+j] != nil {
				continue
			}
			if opts.Observe.Tracer != nil {
				tracers[i][j] = opts.Observe.Tracer(w.Name, cfg.Name)
			}
			if opts.Observe.Metrics != nil {
				cellMet[i][j] = trace.NewMetrics()
			}
			if opts.Observe.Profile != nil {
				cellProf[i][j] = profile.New()
			}
			if opts.ShardStats != nil {
				cellShard[i][j] = &shard.Stats{}
			}
		}
	}

	// Progress: serialize callback invocations; resumed cells report
	// up-front (they complete instantly, before the workers start).
	var progressMu sync.Mutex
	emit := func(ev ProgressEvent) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		opts.Progress(ev)
		progressMu.Unlock()
	}
	for i, w := range m.Workloads {
		for j, cfg := range m.Configs {
			if resumed[i*nc+j] != nil {
				emit(ProgressEvent{Workload: w.Name, Config: cfg.Name,
					Index: i*nc + j, Total: nw * nc, Resumed: true})
			}
		}
	}

	// Fan the unfinished cells out over the worker pool; collect into
	// cell-indexed slots so assembly below runs in deterministic serial
	// order regardless of completion order.
	type outcome struct {
		res      *sim.Result
		err      error
		degraded string // non-empty: reason the cell rendered n/a
	}
	out := make([][]outcome, nw)
	for i := range out {
		out[i] = make([]outcome, nc)
	}
	b := &builder{m: m, opts: opts, cache: cache, backoff: backoff}
	type cellIdx struct{ i, j int }
	jobs := make(chan cellIdx)
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				cfg := m.Configs[c.j]
				cfg.Trace = tracers[c.i][c.j]
				cfg.Metrics = cellMet[c.i][c.j]
				cfg.Profile = cellProf[c.i][c.j]
				cfg.ShardStats = cellShard[c.i][c.j]
				t0 := time.Now()
				res, degraded, err := b.runCell(ctx, m.Workloads[c.i], cfg, data[c.i][c.j])
				out[c.i][c.j] = outcome{res: res, err: err, degraded: degraded}
				if err == nil && degraded == "" {
					if ckErr := ck.record(c.i*nc+c.j, res); ckErr != nil {
						out[c.i][c.j].err = ckErr
					}
				}
				if err == nil {
					emit(ProgressEvent{Workload: m.Workloads[c.i].Name, Config: cfg.Name,
						Index: c.i*nc + c.j, Total: nw * nc,
						Dur: time.Since(t0), Degraded: degraded != ""})
				}
			}
		}()
	}
	for i := 0; i < nw; i++ {
		for j := 0; j < nc; j++ {
			if resumed[i*nc+j] == nil {
				jobs <- cellIdx{i, j}
			}
		}
	}
	close(jobs)
	wg.Wait()

	// Assemble in serial order; the first error in serial order wins, as in
	// a serial loop. Degraded cells keep a nil result (rendered as n/a).
	for i, w := range m.Workloads {
		for j, cfg := range m.Configs {
			if r := resumed[i*nc+j]; r != nil {
				out[i][j] = outcome{res: r}
				continue
			}
			if err := out[i][j].err; err != nil {
				return nil, fmt.Errorf("exp: %s on %s: %w", w.Name, cfg.Name, err)
			}
		}
		m.Res[w.Name] = map[string]*sim.Result{}
		for j, cfg := range m.Configs {
			o := out[i][j]
			if o.degraded != "" {
				if m.Degraded[w.Name] == nil {
					m.Degraded[w.Name] = map[string]string{}
				}
				m.Degraded[w.Name][cfg.Name] = o.degraded
				continue
			}
			m.Res[w.Name][cfg.Name] = o.res
		}
	}

	// Fold per-cell profilers in serial cell order. (Profiler.Merge is
	// commutative, so any order yields the identical profile; serial order
	// keeps the invariant obvious.)
	if prof := opts.Observe.Profile; prof != nil {
		for i := range m.Workloads {
			for j := range m.Configs {
				prof.Merge(cellProf[i][j]) // nil cells no-op
			}
		}
	}

	// Fold per-cell shard attribution in serial cell order: the
	// deterministic count fields end up identical at any worker count.
	if opts.ShardStats != nil {
		for i := range m.Workloads {
			for j := range m.Configs {
				opts.ShardStats.Add(cellShard[i][j])
			}
		}
	}

	// Fold per-cell metrics in serial cell order (identical at any worker
	// count), then the cache counters under the artifact/ component.
	if met := opts.Observe.Metrics; met != nil {
		for i := range m.Workloads {
			for j := range m.Configs {
				if cellMet[i][j] != nil {
					met.Merge(cellMet[i][j])
				}
			}
		}
		st := cache.Stats()
		met.Counter("artifact/requests").Add(st.Requests)
		met.Counter("artifact/mem_hits").Add(st.MemHits)
		met.Counter("artifact/disk_hits").Add(st.DiskHits)
		met.Counter("artifact/compiles").Add(st.Compiles)
		met.Counter("artifact/rebinds").Add(st.Rebinds)
		met.Counter("artifact/evicted").Add(st.Evicted)
		met.Counter("artifact/errors").Add(st.Errors)
		pst := cache.ProgramStats()
		met.Counter("artifact/program_requests").Add(pst.Requests)
		met.Counter("artifact/program_mem_hits").Add(pst.MemHits)
		met.Counter("artifact/program_disk_hits").Add(pst.DiskHits)
		met.Counter("artifact/program_compiles").Add(pst.Compiles)
		met.Counter("artifact/program_rebinds").Add(pst.Rebinds)
		met.Counter("artifact/program_evicted").Add(pst.Evicted)
		met.Counter("artifact/program_errors").Add(pst.Errors)
	}
	return m, nil
}

// builder carries Build's per-run state into the workers.
type builder struct {
	m       *Matrix
	opts    Options
	cache   *artifact.Cache
	backoff time.Duration
}

// runCell executes one cell under the per-cell deadline and retry policy.
// It returns exactly one of: a result, a degradation reason (timeout), or
// an error.
func (b *builder) runCell(ctx context.Context, w *workloads.Workload, cfg sim.Config, data map[string][]float64) (*sim.Result, string, error) {
	cellCtx := ctx
	if b.opts.CellTimeout > 0 {
		var cancel context.CancelFunc
		cellCtx, cancel = context.WithTimeout(ctx, b.opts.CellTimeout)
		defer cancel()
	}
	cfg.Cancel = cellCtx.Done()

	for attempt := 0; ; attempt++ {
		res, err := b.attempt(cellCtx, w, cfg, data, attempt)
		if err == nil {
			return res, "", nil
		}
		timedOut := errors.Is(err, sim.ErrCanceled) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
		if timedOut {
			if ctx.Err() != nil {
				// The run itself was canceled, not just this cell.
				return nil, "", fmt.Errorf("%w (run canceled)", err)
			}
			return nil, fmt.Sprintf("timeout after %s", b.opts.CellTimeout), nil
		}
		if IsTransient(err) && attempt < b.opts.Retries {
			if cfg.Trace != nil {
				cfg.Trace.Component("exp").Instant("retry", 0,
					trace.KV{K: "cell", V: w.Name + "/" + cfg.Name},
					trace.KV{K: "attempt", V: attempt + 1})
			}
			select {
			case <-time.After(time.Duration(attempt+1) * b.backoff):
			case <-cellCtx.Done():
			}
			continue
		}
		return nil, "", err
	}
}

// attempt performs one try of a cell: hook, cached compile, simulation.
// Each attempt runs on a private copy of the cell's input data — a failed
// attempt may have mutated it.
func (b *builder) attempt(ctx context.Context, w *workloads.Workload, cfg sim.Config, data map[string][]float64, attempt int) (*sim.Result, error) {
	if b.opts.Hook != nil {
		if err := b.opts.Hook(ctx, w.Name, cfg.Name, attempt); err != nil {
			return nil, err
		}
	}
	var compiled *compiler.Compiled
	if cfg.HasAccel() {
		copts := sim.CompileOptions(cfg)
		key := artifact.Key(w.Name, b.m.Scale.String(), w.Kernel, copts)
		var err error
		compiled, err = b.cache.GetOrCompile(key, w.Kernel, func() (*compiler.Compiled, error) {
			return compiler.Compile(w.Kernel, copts)
		})
		if err != nil {
			return nil, err
		}
	}
	cfg.EngineMode = b.opts.EngineMode
	cfg.Shards = b.opts.Shards
	if cfg.ValidateEvery {
		// Fetch the kernel's bytecode program for reference validation from
		// the same (possibly disk-backed) cache as the offload artifact.
		pkey := artifact.ProgramKey(w.Name, b.m.Scale.String(), w.Kernel)
		prog, err := b.cache.GetOrProgram(pkey, w.Kernel)
		if err != nil {
			return nil, err
		}
		cfg.Program = prog
	}
	return sim.RunPrecompiled(w.Kernel, w.Params, cloneData(data), cfg, compiled)
}

func cloneData(data map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(data))
	for k, v := range data {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// checkpointVersion is bumped whenever the checkpoint schema changes; old
// files then fail loudly instead of resuming garbage.
const checkpointVersion = 1

// checkpointFile is the on-disk checkpoint: the matrix axes plus one entry
// per completed cell, in serial cell order.
type checkpointFile struct {
	Version   int              `json:"version"`
	Scale     string           `json:"scale"`
	Workloads []string         `json:"workloads"`
	Configs   []string         `json:"configs"`
	Cells     []checkpointCell `json:"cells"`
}

type checkpointCell struct {
	Workload string      `json:"workload"`
	Config   string      `json:"config"`
	Result   *sim.Result `json:"result"`
}

// checkpointer persists completed cells. record is safe for concurrent use;
// every successful record leaves a consistent file on disk (written to a
// temp file and renamed into place).
type checkpointer struct {
	mu    sync.Mutex
	path  string
	m     *Matrix
	cells map[int]*sim.Result // flat index i*len(Configs)+j
}

// newCheckpointer loads an existing checkpoint at path (when present) and
// validates it against the matrix axes. A checkpoint written for different
// axes is an error, not a silent cold start.
func newCheckpointer(path string, m *Matrix) (*checkpointer, error) {
	ck := &checkpointer{path: path, m: m, cells: map[int]*sim.Result{}}
	if path == "" {
		return ck, nil
	}
	raw, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return ck, nil
	}
	if err != nil {
		return nil, fmt.Errorf("exp: checkpoint: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("exp: checkpoint %s: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("exp: checkpoint %s: version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.Scale != m.Scale.String() {
		return nil, fmt.Errorf("exp: checkpoint %s: scale %q, run wants %q", path, f.Scale, m.Scale)
	}
	wIdx := map[string]int{}
	for i, w := range m.Workloads {
		wIdx[w.Name] = i
	}
	cIdx := map[string]int{}
	for j, c := range m.Configs {
		cIdx[c.Name] = j
	}
	for _, cell := range f.Cells {
		i, okW := wIdx[cell.Workload]
		j, okC := cIdx[cell.Config]
		if !okW || !okC || cell.Result == nil {
			return nil, fmt.Errorf("exp: checkpoint %s: unknown cell %s/%s", path, cell.Workload, cell.Config)
		}
		ck.cells[i*len(m.Configs)+j] = cell.Result
	}
	return ck, nil
}

// resumed returns the loaded cells keyed by flat index.
func (c *checkpointer) resumed() map[int]*sim.Result {
	out := make(map[int]*sim.Result, len(c.cells))
	for k, v := range c.cells {
		out[k] = v
	}
	return out
}

// record adds a completed cell and rewrites the checkpoint file.
func (c *checkpointer) record(idx int, r *sim.Result) error {
	if c.path == "" {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cells[idx] = r
	return c.write()
}

// write persists the checkpoint atomically, cells sorted in serial order.
// Caller holds c.mu.
func (c *checkpointer) write() error {
	nc := len(c.m.Configs)
	idxs := make([]int, 0, len(c.cells))
	for idx := range c.cells {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	f := checkpointFile{Version: checkpointVersion, Scale: c.m.Scale.String()}
	for _, w := range c.m.Workloads {
		f.Workloads = append(f.Workloads, w.Name)
	}
	for _, cfg := range c.m.Configs {
		f.Configs = append(f.Configs, cfg.Name)
	}
	for _, idx := range idxs {
		f.Cells = append(f.Cells, checkpointCell{
			Workload: c.m.Workloads[idx/nc].Name,
			Config:   c.m.Configs[idx%nc].Name,
			Result:   c.cells[idx],
		})
	}
	raw, err := json.MarshalIndent(&f, "", " ")
	if err != nil {
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(c.path), ".checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("exp: checkpoint: %w", err)
	}
	return nil
}
