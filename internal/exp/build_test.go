package exp

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distda/internal/artifact"
	"distda/internal/workloads"
)

// renderAll flattens the matrix-backed tables into one comparable string.
func renderAll(m *Matrix) string {
	var b strings.Builder
	b.WriteString(m.Fig7EnergyEfficiency().Render())
	b.WriteString(m.Fig8CacheAccesses().Render())
	b.WriteString(m.Fig11bSpeedup().Render())
	b.WriteString(m.Headline().Render())
	b.WriteString(m.DataMovement().Render())
	return b.String()
}

// TestBuildResumeByteIdentical is the tentpole differential test: a run
// killed after N cells leaves a checkpoint from which resumed runs — at
// several worker counts, over a warm disk cache — render tables
// byte-identical to an uninterrupted serial run.
func TestBuildResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")

	// Reference: uninterrupted serial run (cold cache).
	ref, err := Build(context.Background(), Options{
		Scale:   workloads.ScaleTest,
		Workers: 1,
		Cache:   artifact.New(artifact.Config{Dir: cacheDir}),
	})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(ref)

	// Interrupted run: the hook cancels the whole run after 10 completed
	// cell attempts; the checkpoint keeps whatever finished.
	ckpt := filepath.Join(dir, "checkpoint.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts int64
	_, err = Build(ctx, Options{
		Scale:      workloads.ScaleTest,
		Workers:    2,
		Cache:      artifact.New(artifact.Config{Dir: cacheDir}),
		Checkpoint: ckpt,
		Hook: func(hctx context.Context, workload, config string, attempt int) error {
			if atomic.AddInt64(&attempts, 1) > 10 {
				cancel()
				return hctx.Err()
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("interrupted build reported success")
	}
	raw, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after interruption: %v", err)
	}
	if !strings.Contains(string(raw), `"version": 1`) {
		t.Error("checkpoint missing version field")
	}

	// Resume from the partial checkpoint at several worker counts, each
	// over its own copy (a resumed run completes its checkpoint file).
	for _, workers := range []int{1, 4, 8} {
		path := filepath.Join(dir, "ck-"+string(rune('0'+workers))+".json")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		m, err := Build(context.Background(), Options{
			Scale:      workloads.ScaleTest,
			Workers:    workers,
			Cache:      artifact.New(artifact.Config{Dir: cacheDir}),
			Checkpoint: path,
		})
		if err != nil {
			t.Fatalf("resume with %d workers: %v", workers, err)
		}
		if got := renderAll(m); got != want {
			t.Errorf("resumed run (%d workers) diverged from the uninterrupted run:\n--- got ---\n%s\n--- want ---\n%s",
				workers, got, want)
		}
	}
}

// TestBuildResumeSkipsCompletedCells re-runs over a complete checkpoint:
// nothing executes (the hook would notice) and the tables still render
// byte-identically — the pure-resume path.
func TestBuildResumeSkipsCompletedCells(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "checkpoint.json")
	ref, err := Build(context.Background(), Options{
		Scale:      workloads.ScaleTest,
		Workers:    1,
		Checkpoint: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(context.Background(), Options{
		Scale:      workloads.ScaleTest,
		Checkpoint: ckpt,
		Hook: func(ctx context.Context, workload, config string, attempt int) error {
			t.Errorf("cell %s/%s ran despite a complete checkpoint", workload, config)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderAll(m), renderAll(ref); got != want {
		t.Error("fully resumed run diverged from the original")
	}
}

// TestBuildCellTimeoutDegrades hangs one cell past the per-cell deadline:
// the matrix completes, the cell renders n/a, and every other cell is
// present.
func TestBuildCellTimeoutDegrades(t *testing.T) {
	// The deadline must comfortably exceed any honest test-scale cell (they
	// take milliseconds, but -race inflates that >10x) while only the
	// deliberately hung cell waits it out.
	m, err := Build(context.Background(), Options{
		Scale:       workloads.ScaleTest,
		CellTimeout: 3 * time.Second,
		Hook: func(ctx context.Context, workload, config string, attempt int) error {
			if workload == "fdtd-2d" && config == "Dist-DA-IO" {
				<-ctx.Done() // simulate a hung cell
				return ctx.Err()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if reason := m.Degraded["fdtd-2d"]["Dist-DA-IO"]; !strings.Contains(reason, "timeout") {
		t.Fatalf("degraded reason = %q, want a timeout", reason)
	}
	if m.DegradedCount() != 1 {
		t.Errorf("%d degraded cells, want exactly 1", m.DegradedCount())
	}
	if m.Res["fdtd-2d"]["Dist-DA-IO"] != nil {
		t.Error("degraded cell still has a result")
	}
	if m.Res["fdtd-2d"]["Dist-DA-F"] == nil || m.Res["bfs"]["Dist-DA-IO"] == nil {
		t.Error("healthy cells missing: degradation must not cascade")
	}
	rendered := m.Fig7EnergyEfficiency().Render()
	if !strings.Contains(rendered, "n/a") {
		t.Errorf("rendered table lacks the n/a cell:\n%s", rendered)
	}
}

// TestBuildRealTimeoutDegrades exercises the cooperative-cancellation path
// through the simulator itself (no hook blocking): an absurdly small
// deadline fires mid-simulation and the host aborts at a loop boundary.
func TestBuildRealTimeoutDegrades(t *testing.T) {
	m, err := Build(context.Background(), Options{
		Scale:       workloads.ScaleTest,
		Workers:     2,
		CellTimeout: 1 * time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.DegradedCount() == 0 {
		t.Fatal("no cell degraded under a 1ns deadline")
	}
}

// TestBuildTransientRetry injects transient faults that succeed within the
// retry budget — and verifies exhaustion becomes a hard error.
func TestBuildTransientRetry(t *testing.T) {
	var perCell atomic.Int64
	m, err := Build(context.Background(), Options{
		Scale:        workloads.ScaleTest,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Hook: func(ctx context.Context, workload, config string, attempt int) error {
			if workload == "bfs" && config == "Dist-DA-F" && attempt < 2 {
				perCell.Add(1)
				return Transient(errors.New("injected flake"))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if perCell.Load() != 2 {
		t.Errorf("hook failed %d attempts, want 2", perCell.Load())
	}
	if m.Res["bfs"]["Dist-DA-F"] == nil {
		t.Error("retried cell has no result")
	}
	if m.DegradedCount() != 0 {
		t.Error("transient retries must not degrade cells")
	}

	// Exhausted retries are a hard error, not a degradation.
	_, err = Build(context.Background(), Options{
		Scale:        workloads.ScaleTest,
		Retries:      1,
		RetryBackoff: time.Millisecond,
		Hook: func(ctx context.Context, workload, config string, attempt int) error {
			if workload == "bfs" && config == "Dist-DA-F" {
				return Transient(errors.New("permanent flake"))
			}
			return nil
		},
	})
	if err == nil || !IsTransient(err) {
		t.Errorf("exhausted retries returned %v, want the transient error", err)
	}
}

// TestBuildWarmDiskCacheCompilesNothing is the cache-effectiveness
// criterion: a second build over the same cache directory recompiles zero
// artifacts and renders identical tables.
func TestBuildWarmDiskCacheCompilesNothing(t *testing.T) {
	dir := t.TempDir()
	cold := artifact.New(artifact.Config{Dir: dir})
	ref, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats().Compiles == 0 {
		t.Fatal("cold build compiled nothing")
	}
	warm := artifact.New(artifact.Config{Dir: dir})
	m, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Cache: warm})
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Compiles != 0 {
		t.Errorf("warm build compiled %d artifacts, want 0", st.Compiles)
	}
	if st.DiskHits == 0 {
		t.Error("warm build never hit the disk store")
	}
	if got, want := renderAll(m), renderAll(ref); got != want {
		t.Error("warm-cache run diverged from the cold run")
	}
}

// TestBuildStaleCheckpointRejected: a checkpoint written at another scale
// must fail loudly instead of resuming garbage.
func TestBuildStaleCheckpointRejected(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ck.json")
	if err := os.WriteFile(ckpt, []byte(`{"version":1,"scale":"bench","cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Checkpoint: ckpt})
	if err == nil || !strings.Contains(err.Error(), "scale") {
		t.Errorf("mismatched-scale checkpoint: err = %v, want scale mismatch", err)
	}
	if err := os.WriteFile(ckpt, []byte(`{"version":99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Build(context.Background(), Options{Scale: workloads.ScaleTest, Checkpoint: ckpt})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future-version checkpoint: err = %v, want version mismatch", err)
	}
}
