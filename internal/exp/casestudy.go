package exp

import (
	"fmt"

	"distda/internal/compiler"
	"distda/internal/core"
	"distda/internal/ir"
	"distda/internal/microcode"
	"distda/internal/report"
	"distda/internal/sim"
	"distda/internal/workloads"
)

// Fig12aCaseStudies runs the §VI-D control-intensive offload study on spmv
// and nw under three Dist-DA schedules:
//
//   - Dist-DA-B: the compiler-automated blocked offload — one launch per
//     innermost loop instance with the host synchronizing on every
//     reduction (epilogue folding off). Short rows do not amortize the
//     offload (the paper's 0.44x for spmv).
//   - Dist-DA-BN: the blocked loop nest with localized control — the
//     epilogue store executes on the accelerator, removing the per-row
//     host synchronization (1.22x).
//   - Dist-DA-BNS: the user-identified schedule — a single whole-nest
//     offload in which a bounds-producer partition cp_produces the inner
//     loop bounds consumed by the compute partition (Fig. 5a), pipelining
//     across rows (1.95x).
func Fig12aCaseStudies(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 12a: control-intensive offloads (speedup vs OoO)",
		Columns: []string{"benchmark", "Dist-DA-B", "Dist-DA-BN", "Dist-DA-BNS"},
	}
	if err := spmvRow(t, scale); err != nil {
		return nil, err
	}
	if err := nwRow(t, scale); err != nil {
		return nil, err
	}
	t.AddNote("paper spmv: 0.44x / 1.22x / 1.95x; BNS decouples loop-nest control via produced bounds")
	return t, nil
}

func spmvRow(t *report.Table, scale workloads.Scale) error {
	w := workloads.SpMV(scale)
	base, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.OoO())
	if err != nil {
		return err
	}
	// Dist-DA-B: naive per-row offload, host-side epilogue.
	cfgB := sim.MustConfig(sim.DistDAIO, sim.WithoutEpilogueFold())
	b, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfgB)
	if err != nil {
		return err
	}
	// Dist-DA-BN: user-identified blocked loop nest — the whole nest is one
	// offload with the inner-loop bounds fetched by the accelerator itself.
	bn, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), AnnotateSpMVBN(w))
	if err != nil {
		return err
	}
	// Dist-DA-BNS: whole-nest offload with produced bounds and an explicit
	// cp_fill_ra block schedule for x.
	bns, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), AnnotateSpMVBNS(w))
	if err != nil {
		return err
	}
	t.AddRow("spmv",
		report.F(b.SpeedupVs(base)),
		report.F(bn.SpeedupVs(base)),
		report.F(bns.SpeedupVs(base)))
	return nil
}

func nwRow(t *report.Table, scale workloads.Scale) error {
	w := workloads.NW(scale)
	base, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.OoO())
	if err != nil {
		return err
	}
	cfgB := sim.MustConfig(sim.DistDAIO, sim.WithoutEpilogueFold())
	b, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfgB)
	if err != nil {
		return err
	}
	// BN: the blocked loop nest with localized epilogue control (the
	// automated stream mapping with forwarding — see AnnotateNWNest for the
	// hand-written cp_read/cp_write alternative, which this model shows
	// losing to stream specialization).
	bn, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO())
	if err != nil {
		return err
	}
	// BNS: block scheduling on top — cp_fill_ra-style transfers hide the
	// residual random-access latency.
	cfgS := sim.MustConfig(sim.DistDAIO, sim.WithSWPrefetch(true))
	bns, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfgS)
	if err != nil {
		return err
	}
	t.AddRow("nw",
		report.F(b.SpeedupVs(base)),
		report.F(bn.SpeedupVs(base)),
		report.F(bns.SpeedupVs(base)))
	return nil
}

// AnnotateSpMVBN offloads the whole spmv loop nest as a single accelerator
// (the §VI-D Dist-DA-BN configuration): per nonzero it streams val/colidx,
// gathers x, and at each row boundary writes y and fetches the next bound
// itself with cp_read — localizing the nested loop control without the
// bounds-producer pipeline.
func AnnotateSpMVBN(w *workloads.Workload) func(*compiler.Compiled) error {
	return annotateSpMVNest(false)
}

// AnnotateSpMVBNS replaces the automated per-row mapping with the
// user-specified whole-nest schedule (Dist-DA-BNS): accelerator A0 streams
// the row pointers and produces inner-loop bounds (Fig. 5a) consumed by the
// compute pipeline, and x is block-fetched into the local buffer with
// cp_fill_ra — predicated channel ops, Table V's "U" rows.
func AnnotateSpMVBNS(w *workloads.Workload) func(*compiler.Compiled) error {
	return annotateSpMVNest(true)
}

func annotateSpMVNest(producedBounds bool) func(*compiler.Compiled) error {
	return func(c *compiler.Compiled) error {
		loops := ir.Loops(c.Kernel.Body)
		if len(loops) != 2 {
			return fmt.Errorf("casestudy: spmv shape changed (%d loops)", len(loops))
		}
		outer, inner := loops[0], loops[1]
		op := func(code microcode.Code) microcode.Op { return microcode.NewOp(code) }
		nnz := ir.Ld("rowptr", ir.P("R"))

		var accels []*core.AccelDef
		if producedBounds {
			// A0: bounds producer anchored at rowptr.
			cons := op(microcode.Consume)
			cons.Dst, cons.Access = 1, 0
			mov := op(microcode.Mov)
			mov.Dst, mov.A = 2, 1
			prod := op(microcode.Produce)
			prod.A, prod.Access = 2, 1
			accels = append(accels, &core.AccelDef{
				ID: 0, Name: "bounds", Objects: []string{"rowptr"}, AnchorObj: "rowptr", Place: core.PlaceL3,
				Accesses: []core.AccessDecl{
					{ID: 0, Kind: core.StreamIn, Obj: "rowptr", ElemBytes: 8,
						Start: ir.C(2), Stride: ir.C(1), Length: ir.SubE(ir.P("R"), ir.C(1))},
					{ID: 1, Kind: core.ChanOut, ElemBytes: 8, Peer: core.PeerRef{Accel: 1, Access: 2}},
				},
				Program: microcode.Program{cons, mov, prod},
				Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.SubE(ir.P("R"), ir.C(1))},
			})
		}

		// A1: per-nonzero pipeline with a predicated row epilogue.
		// Registers: 1=val 2=colidx 3=x 4=prod 5=acc 6=e+1 7=rowEnd
		// 8=bound 9=nnz 10=more 11=advance 12=row counter
		var prog microcode.Program
		add := func(o microcode.Op) { prog = append(prog, o) }
		o := op(microcode.Consume)
		o.Dst, o.Access = 1, 0
		add(o) // val
		o = op(microcode.Consume)
		o.Dst, o.Access = 2, 1
		add(o) // colidx
		o = op(microcode.LoadObj)
		o.Dst, o.A, o.Obj = 3, 2, "x"
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 4, 1, 3, ir.Mul
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 5, 5, 4, ir.Add
		add(o) // acc +=
		o = op(microcode.Iter)
		o.Dst = 6
		add(o)
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 6, 6, ir.Add, 1
		add(o) // e+1
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 7, 6, 8, ir.Eq
		add(o) // rowEnd
		o = op(microcode.Produce)
		o.A, o.Access, o.Pred = 5, boundIf(producedBounds, 3, 2), 7
		add(o) // y <- acc
		o = op(microcode.MovI)
		o.Dst, o.Imm, o.Pred = 5, 0, 7
		add(o) // acc = 0
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 10, 6, 9, ir.Ne
		add(o) // not the last edge
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 11, 7, 10, ir.And
		add(o) // advance to next row?
		if producedBounds {
			o = op(microcode.Consume)
			o.Dst, o.Access, o.Pred = 8, 2, 11
			add(o) // next bound from A0
		} else {
			o = op(microcode.ALUI)
			o.Dst, o.A, o.Bin, o.Imm, o.Pred = 12, 12, ir.Add, 1, 11
			add(o) // row++
			o = op(microcode.LoadObj)
			o.Dst, o.A, o.Obj, o.Pred = 8, 12, "rowptr", 11
			add(o) // cp_read the next bound
		}

		accesses := []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "val", ElemBytes: 8,
				Start: ir.C(0), Stride: ir.C(1), Length: nnz},
			{ID: 1, Kind: core.StreamIn, Obj: "colidx", ElemBytes: 8,
				Start: ir.C(0), Stride: ir.C(1), Length: nnz},
		}
		if producedBounds {
			accesses = append(accesses,
				core.AccessDecl{ID: 2, Kind: core.ChanIn, ElemBytes: 8, Peer: core.PeerRef{Accel: 0, Access: 1}},
				core.AccessDecl{ID: 3, Kind: core.StreamOut, Obj: "y", ElemBytes: 8,
					Start: ir.C(0), Stride: ir.C(1), Length: ir.P("R")})
		} else {
			accesses = append(accesses,
				core.AccessDecl{ID: 2, Kind: core.StreamOut, Obj: "y", ElemBytes: 8,
					Start: ir.C(0), Stride: ir.C(1), Length: ir.P("R")})
		}
		objs := []string{"colidx", "val", "x", "y"}
		if !producedBounds {
			objs = append(objs, "rowptr")
		}
		// BN anchors at the gathered x vector (its random probes stay
		// local; the streams arrive line-granular over links); BNS anchors
		// at val since x is prefilled into the local buffer.
		anchor := "x"
		if producedBounds {
			anchor = "val"
		}
		a1 := &core.AccelDef{
			ID: boundIf(producedBounds, 1, 0), Name: "dotpipe", Objects: objs,
			AnchorObj: anchor, Place: core.PlaceL3,
			Accesses: accesses,
			Program:  prog,
			Trip:     core.TripSpec{Kind: core.TripCounted, Count: nnz},
			ScalarInit: []core.ScalarBind{
				{Reg: 5, Name: "acc0", Expr: ir.C(0)},
				{Reg: 8, Name: "bound0", Expr: ir.Ld("rowptr", ir.C(1))},
				{Reg: 9, Name: "nnz", Expr: nnz},
				{Reg: 12, Name: "row0", Expr: ir.C(1)},
			},
		}
		if producedBounds {
			a1.Prefill = []string{"x"} // cp_fill_ra the gather block
		}
		accels = append(accels, a1)
		// Fix peer accel id when A1 is the only accel.
		if !producedBounds {
			// no channels to fix
		}
		region := &core.Region{
			Name:   "spmv.nest",
			Loop:   outer,
			Class:  core.ClassPipelinable,
			Accels: accels,
		}
		if err := region.Validate(); err != nil {
			return fmt.Errorf("casestudy: %w", err)
		}
		c.ByLoop[outer] = region
		delete(c.ByLoop, inner)
		return nil
	}
}

// boundIf selects between two ints.
func boundIf(cond bool, a, b int) int {
	if cond {
		return a
	}
	return b
}

// AnnotateNWNest offloads the whole Needleman-Wunsch matrix as a single
// accelerator (the §VI-D nw annotated configurations): per cell it
// recovers (i, j) from the flat iteration index, reads the previous row
// with cp_read, carries the left neighbor in a register (reloading it at
// row starts under a predicate), and writes the cell with cp_write. With
// prefill, the similarity matrix is block-fetched via cp_fill_ra (the BNS
// schedule).
func AnnotateNWNest(prefill bool) func(*compiler.Compiled) error {
	return func(c *compiler.Compiled) error {
		loops := ir.Loops(c.Kernel.Body)
		if len(loops) != 2 {
			return fmt.Errorf("casestudy: nw shape changed (%d loops)", len(loops))
		}
		outer, inner := loops[0], loops[1]
		op := func(code microcode.Code) microcode.Op { return microcode.NewOp(code) }

		// Registers: 1=N 2=W(=N-1) 3=e 4=i 5=j 6=idx 7=up 8=diag 9=sim
		// 10=left 11=penalty 12=m 13=rowstart 14=tmp
		var prog microcode.Program
		add := func(o microcode.Op) { prog = append(prog, o) }
		o := op(microcode.Iter)
		o.Dst = 3
		add(o)
		// i = floor(e / W) + 1 ; j = e mod W + 1
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 4, 3, 2, ir.Div
		add(o)
		o = op(microcode.Un)
		o.Dst, o.A, o.UnOp = 4, 4, ir.Floor
		add(o)
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 4, 4, ir.Add, 1
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 5, 3, 2, ir.Mod
		add(o)
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 5, 5, ir.Add, 1
		add(o)
		// idx = i*N + j
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 6, 4, 1, ir.Mul
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 6, 6, 5, ir.Add
		add(o)
		// rowstart = (j == 1): reload left = M[idx-1] (the boundary column).
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 13, 5, ir.Eq, 1
		add(o)
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 14, 6, ir.Add, -1
		add(o)
		o = op(microcode.LoadObj)
		o.Dst, o.A, o.Obj, o.Pred = 10, 14, "M", 13
		add(o)
		// up = M[idx-N]; diag = up-row left = M[idx-N-1].
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 14, 6, 1, ir.Sub
		add(o)
		o = op(microcode.LoadObj)
		o.Dst, o.A, o.Obj = 7, 14, "M"
		add(o)
		o = op(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 14, 14, ir.Add, -1
		add(o)
		o = op(microcode.LoadObj)
		o.Dst, o.A, o.Obj = 8, 14, "M"
		add(o)
		// sim = S[idx]
		o = op(microcode.LoadObj)
		o.Dst, o.A, o.Obj = 9, 6, "S"
		add(o)
		// m = max(diag+sim, max(up-P, left-P))
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 8, 8, 9, ir.Add
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 7, 7, 11, ir.Sub
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 10, 10, 11, ir.Sub
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 12, 7, 10, ir.Max
		add(o)
		o = op(microcode.ALU)
		o.Dst, o.A, o.B, o.Bin = 12, 12, 8, ir.Max
		add(o)
		// M[idx] = m; left = m (carried into the next cell of this row).
		o = op(microcode.StoreObj)
		o.A, o.B, o.Obj = 6, 12, "M"
		add(o)
		o = op(microcode.Mov)
		o.Dst, o.A = 10, 12
		add(o)

		trips := ir.MulE(ir.SubE(ir.P("N"), ir.C(1)), ir.SubE(ir.P("N"), ir.C(1)))
		a1 := &core.AccelDef{
			ID: 0, Name: "nwnest", Objects: []string{"M", "S"},
			AnchorObj: "M", Place: core.PlaceL3,
			Program: prog,
			Trip:    core.TripSpec{Kind: core.TripCounted, Count: trips},
			ScalarInit: []core.ScalarBind{
				{Reg: 1, Name: "N", Expr: ir.P("N")},
				{Reg: 2, Name: "W", Expr: ir.SubE(ir.P("N"), ir.C(1))},
				{Reg: 10, Name: "left0", Expr: ir.Ld("M", ir.P("N"))}, // M[1*N+0]
				{Reg: 11, Name: "penalty", Expr: ir.P("P")},
			},
		}
		if prefill {
			a1.Prefill = []string{"S"} // cp_fill_ra the similarity block
		}
		region := &core.Region{
			Name:   "nw.nest",
			Loop:   outer,
			Class:  core.ClassPipelinable,
			Accels: []*core.AccelDef{a1},
		}
		if err := region.Validate(); err != nil {
			return fmt.Errorf("casestudy: %w", err)
		}
		c.ByLoop[outer] = region
		delete(c.ByLoop, inner)
		return nil
	}
}
