// Package exp runs the paper's experiments: it executes the workload ×
// configuration matrix once and renders every table and figure of §VI from
// the collected results.
package exp

import (
	"fmt"

	"distda/internal/ir"
	"distda/internal/profile"
	"distda/internal/report"
	"distda/internal/sim"
	"distda/internal/stats"
	"distda/internal/trace"
	"distda/internal/workloads"
)

// Matrix holds one result per (workload, configuration). Cells that
// degraded (per-cell timeout, see Options.CellTimeout) have no entry in Res
// and carry their reason in Degraded; renderers emit report.NA for them.
type Matrix struct {
	Scale     workloads.Scale
	Workloads []*workloads.Workload
	Configs   []sim.Config
	Res       map[string]map[string]*sim.Result
	Degraded  map[string]map[string]string // workload → config → reason
}

// DegradedCount returns the number of cells that rendered n/a.
func (m *Matrix) DegradedCount() int {
	n := 0
	for _, byCfg := range m.Degraded {
		n += len(byCfg)
	}
	return n
}

// Observe configures observability for a matrix build. Every cell owns its
// private tracer and metrics registry (recording stays lock-free inside the
// worker), so traced or metered matrices remain byte-identical at any
// worker count; per-cell metrics are folded into Metrics in serial cell
// order after the parallel phase.
type Observe struct {
	// Tracer, when non-nil, supplies the tracer for each (workload, config)
	// cell. It is invoked serially before the workers start; return nil to
	// leave a cell untraced.
	Tracer func(workload, config string) *trace.Tracer
	// Metrics, when non-nil, receives every cell's metrics registry via
	// deterministic serial-order Merge.
	Metrics *trace.Metrics
	// Profile, when non-nil, receives every cell's cycle/energy attribution:
	// each cell runs with a private profiler (recording stays lock-free
	// inside the worker) folded into Profile in serial cell order after the
	// parallel phase. Merge is commutative, so the folded profile is
	// identical at any worker count.
	Profile *profile.Profiler
}

func (m *Matrix) get(w, cfg string) *sim.Result { return m.Res[w][cfg] }

// configNames returns the config column labels (skipping the baseline when
// skipBase).
func (m *Matrix) configNames(skipBase bool) []string {
	var out []string
	for i, c := range m.Configs {
		if skipBase && i == 0 {
			continue
		}
		out = append(out, c.Name)
	}
	return out
}

// ratioTable renders one ratio-vs-OoO figure: rows per workload plus a
// geometric-mean row.
func (m *Matrix) ratioTable(title string, metric func(base, r *sim.Result) float64) *report.Table {
	t := &report.Table{Title: title, Columns: append([]string{"benchmark"}, m.configNames(true)...)}
	gm := map[string][]float64{}
	for _, w := range m.Workloads {
		base := m.get(w.Name, "OoO")
		row := []string{w.Name}
		for _, cfg := range m.Configs[1:] {
			r := m.get(w.Name, cfg.Name)
			if base == nil || r == nil {
				row = append(row, report.NA)
				continue
			}
			v := metric(base, r)
			gm[cfg.Name] = append(gm[cfg.Name], v)
			row = append(row, report.F(v))
		}
		t.AddRow(row...)
	}
	row := []string{"geomean"}
	for _, cfg := range m.Configs[1:] {
		if len(gm[cfg.Name]) == 0 {
			row = append(row, report.NA)
			continue
		}
		row = append(row, report.F(stats.Geomean(gm[cfg.Name])))
	}
	t.AddRow(row...)
	if n := m.DegradedCount(); n > 0 {
		t.AddNote("%d cell(s) degraded to n/a; geomeans cover completed cells only", n)
	}
	return t
}

// Fig7EnergyEfficiency renders normalized energy efficiency (OoO = 1).
func (m *Matrix) Fig7EnergyEfficiency() *report.Table {
	t := m.ratioTable("Fig. 7: normalized energy efficiency (vs OoO)",
		func(base, r *sim.Result) float64 { return r.EnergyEfficiencyVs(base) })
	t.AddNote("paper GM targets: Dist-DA-F 3.3x vs OoO, 2.46x vs Mono-CA, 1.46x vs Mono-DA-IO")
	return t
}

// Fig8CacheAccesses renders normalized cache access counts (lower is
// better; OoO = 1).
func (m *Matrix) Fig8CacheAccesses() *report.Table {
	return m.ratioTable("Fig. 8: normalized #cache accesses (vs OoO, lower is better)",
		func(base, r *sim.Result) float64 {
			return stats.Ratio(float64(r.CacheL1+r.CacheL2+r.CacheL3), float64(base.CacheL1+base.CacheL2+base.CacheL3))
		})
}

// Fig9AccessDistribution renders the Dist-DA-F dynamic access distribution:
// intra-buffer vs accelerator-cache (D-A) vs inter-accelerator (A-A) bytes.
func (m *Matrix) Fig9AccessDistribution() *report.Table {
	t := &report.Table{
		Title:   "Fig. 9: dynamic access distribution, Dist-DA-F (% of accel bytes)",
		Columns: []string{"benchmark", "intra%", "D-A%", "A-A%"},
	}
	for _, w := range m.Workloads {
		r := m.get(w.Name, "Dist-DA-F")
		if r == nil {
			t.AddRow(w.Name, report.NA, report.NA, report.NA)
			continue
		}
		total := float64(r.IntraBytes + r.DABytes + r.AABytes)
		if total == 0 {
			total = 1
		}
		t.AddRow(w.Name,
			report.F(100*float64(r.IntraBytes)/total),
			report.F(100*float64(r.DABytes)/total),
			report.F(100*float64(r.AABytes)/total))
	}
	return t
}

// Fig10NoCTraffic renders the NoC byte breakdown for Mono-DA-IO vs
// Dist-DA-F, normalized to Mono-DA-IO's total.
func (m *Matrix) Fig10NoCTraffic() *report.Table {
	t := &report.Table{
		Title: "Fig. 10: NoC bytes by class (normalized to Mono-DA-IO total)",
		Columns: []string{"benchmark",
			"mono:ctrl", "mono:data", "mono:acc_ctrl", "mono:acc_data",
			"dist:ctrl", "dist:data", "dist:acc_ctrl", "dist:acc_data"},
	}
	classes := []string{"ctrl", "data", "acc_ctrl", "acc_data"}
	for _, w := range m.Workloads {
		mono := m.get(w.Name, "Mono-DA-IO")
		dist := m.get(w.Name, "Dist-DA-F")
		if mono == nil || dist == nil {
			row := []string{w.Name}
			for range classes {
				row = append(row, report.NA, report.NA)
			}
			t.AddRow(row...)
			continue
		}
		var monoTotal int64
		for _, c := range classes {
			monoTotal += mono.NoCBytes[c]
		}
		if monoTotal == 0 {
			monoTotal = 1
		}
		row := []string{w.Name}
		for _, r := range []*sim.Result{mono, dist} {
			for _, c := range classes {
				row = append(row, report.F(float64(r.NoCBytes[c])/float64(monoTotal)))
			}
		}
		t.AddRow(row...)
	}
	t.AddNote("Dist-DA reduces inter-accelerator (acc_*) traffic vs Mono-DA (§VI-B)")
	return t
}

// Fig11aIPC renders IPC and memory-operation rate normalized to OoO.
func (m *Matrix) Fig11aIPC() *report.Table {
	t := &report.Table{
		Title:   "Fig. 11a: normalized IPC | mem-op rate (vs OoO)",
		Columns: append([]string{"benchmark"}, m.configNames(true)...),
	}
	for _, w := range m.Workloads {
		base := m.get(w.Name, "OoO")
		row := []string{w.Name}
		for _, cfg := range m.Configs[1:] {
			r := m.get(w.Name, cfg.Name)
			if base == nil || r == nil {
				row = append(row, report.NA)
				continue
			}
			row = append(row, fmt.Sprintf("%s|%s",
				report.F(stats.Ratio(r.IPC(), base.IPC())),
				report.F(stats.Ratio(r.MemOpRate(), base.MemOpRate()))))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig11bSpeedup renders speedup over OoO.
func (m *Matrix) Fig11bSpeedup() *report.Table {
	t := m.ratioTable("Fig. 11b: speedup (vs OoO)",
		func(base, r *sim.Result) float64 { return r.SpeedupVs(base) })
	t.AddNote("paper GM targets: Dist-DA-F 1.59x vs OoO, 1.43x vs Mono-CA, 1.65x vs Mono-DA-IO")
	return t
}

// DataMovement renders byte-movement reduction vs OoO (higher is better).
func (m *Matrix) DataMovement() *report.Table {
	t := m.ratioTable("Data movement reduction (OoO bytes / config bytes)",
		func(base, r *sim.Result) float64 { return r.DataMovementReductionVs(base) })
	t.AddNote("paper GM targets for Dist-DA-F: 2.4x vs OoO, 3.5x vs Mono-CA, 1.48x vs Mono-DA-IO")
	return t
}

// Headline renders the paper's abstract triple — (energy efficiency;
// speedup; data-movement reduction) geomeans of Dist-DA-F against the three
// baselines.
func (m *Matrix) Headline() *report.Table {
	t := &report.Table{
		Title:   "Headline geomeans: Dist-DA-F vs baseline (energy eff; speedup; data movement)",
		Columns: []string{"baseline", "energy-eff", "speedup", "data-movement"},
	}
	geo := func(vs []float64) string {
		if len(vs) == 0 {
			return report.NA
		}
		return report.F(stats.Geomean(vs))
	}
	for _, baseName := range []string{"OoO", "Mono-CA", "Mono-DA-IO"} {
		var eff, spd, dm []float64
		for _, w := range m.Workloads {
			base := m.get(w.Name, baseName)
			r := m.get(w.Name, "Dist-DA-F")
			if base == nil || r == nil {
				continue // degraded cell: the geomean covers completed cells
			}
			eff = append(eff, r.EnergyEfficiencyVs(base))
			spd = append(spd, r.SpeedupVs(base))
			dm = append(dm, r.DataMovementReductionVs(base))
		}
		t.AddRow(baseName, geo(eff), geo(spd), geo(dm))
	}
	t.AddNote("paper: (3.3; 1.59; 2.4) vs OoO, (2.46; 1.43; 3.5) vs Mono-CA, (1.46; 1.65; 1.48) vs Mono-DA-IO")
	// Compute specialization: Dist-DA-F vs Dist-DA-IO (paper: 1.23x energy, 1.43x speedup).
	var eff, spd []float64
	for _, w := range m.Workloads {
		io := m.get(w.Name, "Dist-DA-IO")
		f := m.get(w.Name, "Dist-DA-F")
		if io == nil || f == nil {
			continue
		}
		eff = append(eff, f.EnergyEfficiencyVs(io))
		spd = append(spd, f.SpeedupVs(io))
	}
	t.AddRow("Dist-DA-IO", geo(eff), geo(spd), "-")
	if n := m.DegradedCount(); n > 0 {
		t.AddNote("%d cell(s) degraded to n/a; geomeans cover completed cells only", n)
	}
	return t
}

// Tab6OffloadCharacteristics reproduces Table VI: code/data coverage,
// initialization overhead, buffers, instruction counts and DFG dimensions
// for the Dist-DA-IO configuration.
func (m *Matrix) Tab6OffloadCharacteristics() (*report.Table, error) {
	t := &report.Table{
		Title:   "Table VI: offload characteristics (Dist-DA-IO)",
		Columns: []string{"benchmark", "%cc", "%dc", "%init", "#buf", "#insts", "DFG dim", "insts(B)"},
	}
	for _, w := range m.Workloads {
		compiled, err := sim.Compiled(w.Kernel, sim.DistDAIO())
		if err != nil {
			return nil, err
		}
		prog, err := ir.ProgramFor(w.Kernel)
		if err != nil {
			return nil, err
		}
		counts, err := prog.Run(w.Params, w.NewData(), nil)
		if err != nil {
			return nil, err
		}
		var offInstr, offMem int64
		for loop, reg := range compiled.ByLoop {
			if len(reg.Accels) == 0 {
				continue
			}
			if lc := counts.ByLoop[loop]; lc != nil {
				offInstr += lc.Ops + lc.Loads + lc.Stores + 2*lc.Trips
				offMem += lc.Loads + lc.Stores
			}
		}
		cc := 100 * float64(offInstr) / float64(counts.Instructions())
		dc := 100 * float64(offMem) / float64(counts.MemOps())
		res := m.get(w.Name, "Dist-DA-IO")
		maxInsts, dimW, dimH := 0, 0, 0
		for _, info := range compiled.Infos {
			if info.Offloaded() && info.Insts > maxInsts {
				maxInsts = info.Insts
				dimW, dimH, _ = info.Graph.Dims()
			}
		}
		// The run-derived columns degrade independently of the static
		// (compile-derived) ones.
		initPct, avgBuf := report.NA, report.NA
		if res != nil {
			initPct = fmt.Sprintf("%.2f", res.InitOverheadPct())
			avgBuf = report.F(res.AvgBuffers)
		}
		t.AddRow(w.Name,
			report.F(cc), report.F(dc),
			initPct,
			avgBuf,
			fmt.Sprintf("%d", maxInsts),
			fmt.Sprintf("%dx%d", dimW, dimH),
			fmt.Sprintf("%d", maxInsts*8))
	}
	return t, nil
}

// Tab5MechanismCoverage reproduces Table V: which interface mechanisms each
// benchmark's compiled offloads exercise (C = compiler automated).
func (m *Matrix) Tab5MechanismCoverage() *report.Table {
	names := []string{"cp_produce", "cp_consume", "cp_write", "cp_read", "cp_step",
		"cp_fill_buf", "cp_drain_buf", "cp_config", "cp_config_stream", "cp_set_rf", "cp_load_rf", "cp_run"}
	t := &report.Table{
		Title:   "Table V: interface mechanism coverage (C = compiler automated)",
		Columns: append([]string{"benchmark"}, names...),
	}
	for _, w := range m.Workloads {
		r := m.get(w.Name, "Dist-DA-IO")
		row := []string{w.Name}
		if r == nil {
			for range names {
				row = append(row, report.NA)
			}
			t.AddRow(row...)
			continue
		}
		for _, n := range names {
			mark := ""
			for _, in := range coreIntrinsics() {
				if in.String() == n && r.MMIO[in] > 0 {
					mark = "C"
				}
			}
			row = append(row, mark)
		}
		t.AddRow(row...)
	}
	return t
}

// Tab4Workloads reproduces Table IV's workload inventory.
func (m *Matrix) Tab4Workloads() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Table IV: workloads (%s scale)", m.Scale),
		Columns: []string{"benchmark", "input dataset"},
	}
	for _, w := range m.Workloads {
		t.AddRow(w.Name, w.Desc)
	}
	return t
}
