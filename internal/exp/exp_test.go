package exp

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"

	"distda/internal/workloads"
)

var (
	mOnce sync.Once
	mVal  *Matrix
	mErr  error
)

func testMatrix(t *testing.T) *Matrix {
	t.Helper()
	mOnce.Do(func() { mVal, mErr = Build(context.Background(), Options{Scale: workloads.ScaleTest}) })
	if mErr != nil {
		t.Fatal(mErr)
	}
	return mVal
}

func TestMatrixComplete(t *testing.T) {
	m := testMatrix(t)
	if len(m.Workloads) != 12 {
		t.Fatalf("workloads = %d, want 12", len(m.Workloads))
	}
	if len(m.Configs) != 6 {
		t.Fatalf("configs = %d, want 6", len(m.Configs))
	}
	for _, w := range m.Workloads {
		for _, cfg := range m.Configs {
			r := m.Res[w.Name][cfg.Name]
			if r == nil {
				t.Fatalf("missing result %s/%s", w.Name, cfg.Name)
			}
			if !r.Validated {
				t.Fatalf("%s on %s not validated", w.Name, cfg.Name)
			}
		}
	}
}

func TestFigureTablesRender(t *testing.T) {
	m := testMatrix(t)
	tables := map[string]interface{ Render() string }{
		"fig7":     m.Fig7EnergyEfficiency(),
		"fig8":     m.Fig8CacheAccesses(),
		"fig9":     m.Fig9AccessDistribution(),
		"fig10":    m.Fig10NoCTraffic(),
		"fig11a":   m.Fig11aIPC(),
		"fig11b":   m.Fig11bSpeedup(),
		"headline": m.Headline(),
		"movement": m.DataMovement(),
		"tab4":     m.Tab4Workloads(),
		"tab5":     m.Tab5MechanismCoverage(),
		"area":     Tab3Area(),
		"params":   Tab3Params(),
	}
	for name, tab := range tables {
		text := tab.Render()
		if len(text) < 50 {
			t.Errorf("%s: suspiciously short render:\n%s", name, text)
		}
		if name[:3] == "fig" && !strings.Contains(text, "seidel-2d") && name != "fig10" {
			// every per-benchmark figure lists all workloads
			if !strings.Contains(text, "seidel") {
				t.Errorf("%s: missing benchmark rows:\n%s", name, text)
			}
		}
	}
}

func TestTab6Sane(t *testing.T) {
	m := testMatrix(t)
	tab, err := m.Tab6OffloadCharacteristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		cc, err := strconv.ParseFloat(row[1], 64)
		if err != nil || cc <= 0 || cc > 100 {
			t.Errorf("%s: %%cc = %q", row[0], row[1])
		}
		dc, err := strconv.ParseFloat(row[2], 64)
		if err != nil || dc <= 0 || dc > 100 {
			t.Errorf("%s: %%dc = %q", row[0], row[2])
		}
		insts, err := strconv.Atoi(row[5])
		if err != nil || insts <= 0 {
			t.Errorf("%s: #insts = %q", row[0], row[5])
		}
		bytes, err := strconv.Atoi(row[7])
		if err != nil || bytes != insts*8 {
			t.Errorf("%s: insts(B) = %q, want %d", row[0], row[7], insts*8)
		}
	}
}

func TestTab5CoversCoreMechanisms(t *testing.T) {
	m := testMatrix(t)
	tab := m.Tab5MechanismCoverage()
	// Every workload uses produce/consume/config/run (paper Table V).
	colIdx := map[string]int{}
	for i, c := range tab.Columns {
		colIdx[c] = i
	}
	for _, row := range tab.Rows {
		// Every offloaded benchmark consumes operands and is configured/run;
		// produce appears wherever a stream-out or channel exists (pure
		// reductions write back via cp_write instead).
		for _, mech := range []string{"cp_consume", "cp_config", "cp_run"} {
			if row[colIdx[mech]] != "C" {
				t.Errorf("%s: %s not marked C", row[0], mech)
			}
		}
	}
	// Irregular workloads use cp_read (paper Table V's bfs/pr rows).
	for _, row := range tab.Rows {
		if row[0] == "bfs" && row[colIdx["cp_read"]] != "C" {
			t.Errorf("bfs: cp_read not used")
		}
	}
}

func TestFig12aOrdering(t *testing.T) {
	tab, err := Fig12aCaseStudies(workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		b, _ := strconv.ParseFloat(row[1], 64)
		bns, _ := strconv.ParseFloat(row[3], 64)
		if bns < b {
			t.Errorf("%s: BNS (%g) not better than B (%g)", row[0], bns, b)
		}
	}
}

func TestFig13MonotoneSpeedup(t *testing.T) {
	tab, err := Fig13Clocking(workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		s3 := strings.Split(row[3], "|")[0]
		v, err := strconv.ParseFloat(s3, 64)
		if err != nil {
			t.Fatalf("%s: bad cell %q", row[0], row[3])
		}
		if v < 0.95 {
			t.Errorf("%s: 3 GHz slower than 1 GHz (%g)", row[0], v)
		}
	}
}

func TestFig14Renders(t *testing.T) {
	tab, err := Fig14SoftwareOpt(workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFig12bThreadScaling(t *testing.T) {
	tab, err := Fig12bMultithread(workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		one, _ := strconv.ParseFloat(row[2], 64)
		eight, _ := strconv.ParseFloat(row[5], 64)
		if eight < one {
			t.Errorf("%s/%s: 8 threads (%g) slower than 1 (%g)", row[0], row[1], eight, one)
		}
	}
}

func TestSensAndAblations(t *testing.T) {
	if _, err := SensWorkingSet(workloads.ScaleTest); err != nil {
		t.Fatal(err)
	}
	tab, err := Ablations(workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("ablation rows = %d", len(tab.Rows))
	}
}

func TestHeadlineDirections(t *testing.T) {
	m := testMatrix(t)
	// Dist-DA-F must beat the OoO baseline on energy at any scale.
	tab := m.Headline()
	if len(tab.Rows) != 4 {
		t.Fatalf("headline rows = %d", len(tab.Rows))
	}
	eff, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil || eff <= 1 {
		t.Errorf("energy efficiency vs OoO = %q, want > 1", tab.Rows[0][1])
	}
}
