package exp

import (
	"testing"

	"distda/internal/sim"
	"distda/internal/workloads"
)

// TestAnnotateNWNestValidates runs the hand-written whole-matrix nw
// schedule (cp_read/cp_write per cell, carried left neighbor, predicated
// row-start reload, optional cp_fill_ra of the similarity block) and checks
// functional equivalence with the interpreter. It also records the model
// finding documented in EXPERIMENTS.md: the random-access schedule
// validates but does not beat the compiler's stream mapping here.
func TestAnnotateNWNestValidates(t *testing.T) {
	w := workloads.NW(workloads.ScaleTest)
	for _, prefill := range []bool{false, true} {
		res, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), AnnotateNWNest(prefill))
		if err != nil {
			t.Fatalf("prefill=%v: %v", prefill, err)
		}
		if !res.Validated {
			t.Fatalf("prefill=%v: not validated", prefill)
		}
		if res.Launches != 1 {
			t.Fatalf("prefill=%v: launches = %d, want 1 (whole nest)", prefill, res.Launches)
		}
	}
	// The cp_fill_ra variant must beat the plain random-access variant.
	plain, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), AnnotateNWNest(false))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := sim.RunAnnotated(w.Kernel, w.Params, w.NewData(), sim.DistDAIO(), AnnotateNWNest(true))
	if err != nil {
		t.Fatal(err)
	}
	if pre.Cycles >= plain.Cycles {
		t.Fatalf("prefill did not help: %d vs %d", pre.Cycles, plain.Cycles)
	}
}
