package exp

import (
	"context"
	"reflect"
	"testing"

	"distda/internal/trace"
	"distda/internal/workloads"
)

// TestObservedMatrixIdentical proves observability is purely observational:
// a matrix built with a per-cell tracer and a metrics registry attached, at
// a parallel worker count, is field-for-field identical to a plain serial
// build. This is the repro-level trace-on/off differential — every figure
// and table renders from Res, so equal Res means byte-identical output.
func TestObservedMatrixIdentical(t *testing.T) {
	plain, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	met := trace.NewMetrics()
	var tracers []*trace.Tracer
	obs := Observe{
		Tracer: func(workload, config string) *trace.Tracer {
			tr := trace.New()
			tracers = append(tracers, tr)
			return tr
		},
		Metrics: met,
	}
	observed, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: 8, Observe: obs})
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Res, observed.Res) {
		for w, byCfg := range plain.Res {
			for cfg, r := range byCfg {
				if !reflect.DeepEqual(r, observed.Res[w][cfg]) {
					t.Errorf("%s on %s: observed build diverges:\nplain:    %+v\nobserved: %+v",
						w, cfg, r, observed.Res[w][cfg])
				}
			}
		}
		t.Fatal("observed matrix diverges from plain serial build")
	}

	if want := len(plain.Workloads) * len(plain.Configs); len(tracers) != want {
		t.Errorf("tracer provider called %d times, want %d", len(tracers), want)
	}
	var events int64
	for _, tr := range tracers {
		events += tr.Events()
	}
	if events == 0 {
		t.Error("per-cell tracers recorded no events")
	}
	if len(met.Names()) == 0 {
		t.Error("merged metrics registry is empty")
	}
}

// TestObservedMetricsDeterministic merges per-cell metrics from two
// observed builds at different worker counts and requires identical
// rendered tables: the serial-order merge must hide scheduling.
func TestObservedMetricsDeterministic(t *testing.T) {
	build := func(workers int) string {
		met := trace.NewMetrics()
		if _, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: workers, Observe: Observe{Metrics: met}}); err != nil {
			t.Fatal(err)
		}
		return met.Table().Render()
	}
	if a, b := build(1), build(8); a != b {
		t.Errorf("merged metrics differ between worker counts:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
}
