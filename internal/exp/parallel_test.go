package exp

import (
	"context"
	"reflect"
	"testing"

	"distda/internal/workloads"
)

// TestParallelMatrixDeterminism builds the full experiment matrix serially
// and with eight workers and requires identical results: every sim.Result
// must be field-for-field equal and every rendered table byte-identical.
// The worker count must be an implementation detail, never an output knob.
func TestParallelMatrixDeterminism(t *testing.T) {
	serial, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Res, par.Res) {
		for w, byCfg := range serial.Res {
			for cfg, r := range byCfg {
				if !reflect.DeepEqual(r, par.Res[w][cfg]) {
					t.Errorf("%s on %s: serial and parallel results differ:\nserial:   %+v\nparallel: %+v",
						w, cfg, r, par.Res[w][cfg])
				}
			}
		}
		t.Fatal("serial and parallel matrices diverge")
	}
	renders := map[string]func(*Matrix) string{
		"Fig7":     func(m *Matrix) string { return m.Fig7EnergyEfficiency().Render() },
		"Fig8":     func(m *Matrix) string { return m.Fig8CacheAccesses().Render() },
		"Fig9":     func(m *Matrix) string { return m.Fig9AccessDistribution().Render() },
		"Fig10":    func(m *Matrix) string { return m.Fig10NoCTraffic().Render() },
		"Fig11a":   func(m *Matrix) string { return m.Fig11aIPC().Render() },
		"Fig11b":   func(m *Matrix) string { return m.Fig11bSpeedup().Render() },
		"Headline": func(m *Matrix) string { return m.Headline().Render() },
		"Tab4":     func(m *Matrix) string { return m.Tab4Workloads().Render() },
		"Tab5":     func(m *Matrix) string { return m.Tab5MechanismCoverage().Render() },
	}
	for name, render := range renders {
		if s, p := render(serial), render(par); s != p {
			t.Errorf("%s renders differently from serial and parallel matrices:\n--- serial ---\n%s\n--- parallel ---\n%s", name, s, p)
		}
	}
}

// TestParallelMatrixWorkerCounts exercises odd worker counts (more workers
// than cells, and a count that does not divide the matrix evenly).
func TestParallelMatrixWorkerCounts(t *testing.T) {
	base, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{5, 200} {
		m, err := Build(context.Background(), Options{Scale: workloads.ScaleTest, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base.Res, m.Res) {
			t.Fatalf("workers=%d: matrix differs from serial build", workers)
		}
	}
}
