package exp

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"

	"distda/internal/profile"
	"distda/internal/workloads"
)

// TestBuildProgressEvents pins the Options.Progress contract: exactly one
// event per matrix cell, serialized (no racing callbacks), carrying the
// right Total, in-range workload-major indices, and no duplicates —
// regardless of worker count.
func TestBuildProgressEvents(t *testing.T) {
	var mu sync.Mutex
	var events []ProgressEvent
	m, err := Build(context.Background(), Options{
		Scale:   workloads.ScaleTest,
		Workers: 8,
		Progress: func(ev ProgressEvent) {
			// Build serializes invocations; the mutex here only lets the
			// race detector prove that claim wrong if it ever breaks.
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := len(m.Workloads) * len(m.Configs)
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Total != total {
			t.Errorf("%s/%s: Total = %d, want %d", ev.Workload, ev.Config, ev.Total, total)
		}
		if ev.Index < 0 || ev.Index >= total {
			t.Errorf("%s/%s: index %d out of range", ev.Workload, ev.Config, ev.Index)
		}
		if seen[ev.Index] {
			t.Errorf("cell index %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if ev.Resumed || ev.Degraded {
			t.Errorf("%s/%s: unexpected resumed=%v degraded=%v on a cold run",
				ev.Workload, ev.Config, ev.Resumed, ev.Degraded)
		}
		if ev.Dur < 0 {
			t.Errorf("%s/%s: negative duration %v", ev.Workload, ev.Config, ev.Dur)
		}
	}
}

// TestBuildProgressResumedCells checks that a fully checkpointed rerun
// reports every cell as resumed, up-front, still exactly once each.
func TestBuildProgressResumedCells(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ckpt")
	opts := Options{Scale: workloads.ScaleTest, Workers: 4, Checkpoint: ck}
	if _, err := Build(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	var events []ProgressEvent
	opts.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	m, err := Build(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	total := len(m.Workloads) * len(m.Configs)
	if len(events) != total {
		t.Fatalf("resumed run emitted %d events, want %d", len(events), total)
	}
	for i, ev := range events {
		if !ev.Resumed {
			t.Errorf("%s/%s: not marked resumed on a fully checkpointed run", ev.Workload, ev.Config)
		}
		// Resumed cells are reported serially before the workers start, so
		// their order is the serial cell order.
		if ev.Index != i {
			t.Errorf("event %d has index %d, want serial order", i, ev.Index)
		}
	}
}

// TestBuildProfileDeterministicAcrossWorkers folds per-cell profilers at
// worker counts 1 and 8 and requires byte-identical stats dumps and folded
// stacks — the matrix-level commutativity proof for Profiler.Merge.
func TestBuildProfileDeterministicAcrossWorkers(t *testing.T) {
	build := func(workers int) (string, string) {
		prof := profile.New()
		if _, err := Build(context.Background(), Options{
			Scale:   workloads.ScaleTest,
			Workers: workers,
			Observe: Observe{Profile: prof},
		}); err != nil {
			t.Fatal(err)
		}
		var stats, folded bytes.Buffer
		if err := prof.WriteStats(&stats); err != nil {
			t.Fatal(err)
		}
		if err := prof.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		return stats.String(), folded.String()
	}
	s1, f1 := build(1)
	s8, f8 := build(8)
	if s1 != s8 {
		t.Error("stats dump differs between worker counts 1 and 8")
	}
	if f1 != f8 {
		t.Error("folded stacks differ between worker counts 1 and 8")
	}
	if len(f1) == 0 {
		t.Error("matrix profile produced no folded stacks")
	}
}
