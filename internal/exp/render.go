package exp

import (
	"fmt"
	"io"

	"distda/internal/workloads"
)

// ValidFigs lists the figure names RenderSelection understands, in the
// paper's order (the order -all renders them).
var ValidFigs = []string{"7", "8", "9", "10", "11a", "11b", "12a", "12b", "13", "14"}

// ValidTabs lists the table names RenderSelection understands.
var ValidTabs = []string{"3", "4", "5", "6"}

// Selection names the tables and figures one rendering pass emits. It is
// the job-friendly entry point into the §VI reproduction: distda-repro
// builds one from its flags and the distda-serve job server accepts one as
// JSON, so both front ends share RenderSelection and produce byte-identical
// output for the same selection.
type Selection struct {
	// Figs and Tabs render in the given order (see ValidFigs/ValidTabs).
	Figs []string `json:"figs,omitempty"`
	Tabs []string `json:"tabs,omitempty"`
	// Headline renders the abstract's headline geomeans plus the
	// data-movement table.
	Headline bool `json:"headline,omitempty"`
	// Params renders Table III up front (before any -tab selection), the
	// way distda-repro's -params flag does.
	Params bool `json:"params,omitempty"`
	// Sens renders the working-set sensitivity sweep.
	Sens bool `json:"sens,omitempty"`
	// Area renders the area model.
	Area bool `json:"area,omitempty"`
	// OffChip renders the §VII off-chip placement extension.
	OffChip bool `json:"offchip,omitempty"`
	// PIM renders the PIM-in-DRAM backend comparison (near-L3 vs in-DRAM).
	PIM bool `json:"pim,omitempty"`
	// Ablations renders the DESIGN.md ablation benches.
	Ablations bool `json:"ablations,omitempty"`
}

// SetAll selects everything -all selects: every figure and table plus the
// headline, sensitivity, area, off-chip and ablation sections (Params stays
// as-is; -all never set it either).
func (s *Selection) SetAll() {
	s.Figs = append([]string{}, ValidFigs...)
	s.Tabs = append([]string{}, ValidTabs...)
	s.Headline = true
	s.Sens = true
	s.Area = true
	s.OffChip = true
	s.PIM = true
	s.Ablations = true
}

// Empty reports whether the selection renders nothing.
func (s Selection) Empty() bool {
	return len(s.Figs) == 0 && len(s.Tabs) == 0 && !s.Headline && !s.Params &&
		!s.Sens && !s.Area && !s.OffChip && !s.PIM && !s.Ablations
}

// Validate rejects unknown figure or table names before anything is
// computed, with the same diagnostics the CLI has always produced.
func (s Selection) Validate() error {
	for _, f := range s.Figs {
		if !containsName(ValidFigs, f) {
			return fmt.Errorf("unknown figure %q (want one of %v)", f, ValidFigs)
		}
	}
	for _, t := range s.Tabs {
		if !containsName(ValidTabs, t) {
			return fmt.Errorf("unknown table %q (want one of %v)", t, ValidTabs)
		}
	}
	return nil
}

// NeedsMatrix reports whether rendering the selection requires the full
// workload × configuration matrix (figures 12a-14 and tables 3, plus the
// sens/area/offchip/ablation sections, run from the scale alone).
func (s Selection) NeedsMatrix() bool {
	if s.Headline {
		return true
	}
	for _, t := range s.Tabs {
		if t != "3" {
			return true
		}
	}
	for _, f := range s.Figs {
		switch f {
		case "7", "8", "9", "10", "11a", "11b":
			return true
		}
	}
	return false
}

func containsName(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// RenderSelection writes the selected tables and figures to w in
// distda-repro's order: params, tables, figures, headline (+ data
// movement), sensitivity, area, off-chip, pim, ablations — each table followed
// by a blank line. matrix supplies the built experiment matrix and is
// invoked at most once, and only when the selection needs it, so
// selections of scale-only sections never pay for a matrix build.
//
// Both distda-repro and the distda-serve job server render through this
// function; for an identical (scale, selection, matrix) the bytes written
// here are identical, which is what makes the server's result cache able
// to stand in for a batch CLI invocation.
func RenderSelection(w io.Writer, scale workloads.Scale, sel Selection, matrix func() (*Matrix, error)) error {
	if err := sel.Validate(); err != nil {
		return err
	}
	var m *Matrix
	need := func() (*Matrix, error) {
		if m == nil {
			var err error
			m, err = matrix()
			if err != nil {
				return nil, err
			}
			if m == nil {
				return nil, fmt.Errorf("exp: matrix provider returned nil")
			}
		}
		return m, nil
	}
	emit := func(text string, err error) error {
		if err != nil {
			return err
		}
		_, err = fmt.Fprintln(w, text)
		return err
	}
	matrixTable := func(f func(*Matrix) interface{ Render() string }) error {
		mm, err := need()
		if err != nil {
			return err
		}
		return emit(f(mm).Render(), nil)
	}
	scaleTable := func(f func(workloads.Scale) (interface{ Render() string }, error)) error {
		t, err := f(scale)
		if err != nil {
			return err
		}
		return emit(t.Render(), nil)
	}

	if sel.Params {
		if err := emit(Tab3Params().Render(), nil); err != nil {
			return err
		}
	}
	for _, tab := range sel.Tabs {
		var err error
		switch tab {
		case "3":
			err = emit(Tab3Params().Render(), nil)
		case "4":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Tab4Workloads() })
		case "5":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Tab5MechanismCoverage() })
		case "6":
			mm, merr := need()
			if merr != nil {
				return merr
			}
			t, terr := mm.Tab6OffloadCharacteristics()
			if terr != nil {
				return terr
			}
			err = emit(t.Render(), nil)
		}
		if err != nil {
			return err
		}
	}
	for _, fig := range sel.Figs {
		var err error
		switch fig {
		case "7":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig7EnergyEfficiency() })
		case "8":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig8CacheAccesses() })
		case "9":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig9AccessDistribution() })
		case "10":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig10NoCTraffic() })
		case "11a":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig11aIPC() })
		case "11b":
			err = matrixTable(func(m *Matrix) interface{ Render() string } { return m.Fig11bSpeedup() })
		case "12a":
			err = scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return Fig12aCaseStudies(s) })
		case "12b":
			err = scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return Fig12bMultithread(s) })
		case "13":
			err = scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return Fig13Clocking(s) })
		case "14":
			err = scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return Fig14SoftwareOpt(s) })
		}
		if err != nil {
			return err
		}
	}
	if sel.Headline {
		if err := matrixTable(func(m *Matrix) interface{ Render() string } { return m.Headline() }); err != nil {
			return err
		}
		if err := matrixTable(func(m *Matrix) interface{ Render() string } { return m.DataMovement() }); err != nil {
			return err
		}
	}
	if sel.Sens {
		if err := scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return SensWorkingSet(s) }); err != nil {
			return err
		}
	}
	if sel.Area {
		if err := emit(Tab3Area().Render(), nil); err != nil {
			return err
		}
	}
	if sel.OffChip {
		if err := scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return OffChipExtension(s) }); err != nil {
			return err
		}
	}
	if sel.PIM {
		if err := scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return PIMExtension(s) }); err != nil {
			return err
		}
	}
	if sel.Ablations {
		if err := scaleTable(func(s workloads.Scale) (interface{ Render() string }, error) { return Ablations(s) }); err != nil {
			return err
		}
	}
	return nil
}
