package exp

import (
	"fmt"

	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/report"
	"distda/internal/sim"
	"distda/internal/workloads"
)

func coreIntrinsics() []core.Intrinsic { return core.Intrinsics() }

// Fig12bMultithread runs the §VI-D multithreading case study: bfs and
// pathfinder scaled across 1/2/4/8 threads, normalized to single-threaded
// OoO. Stream specialization is skipped, matching the paper's framework
// limitation.
func Fig12bMultithread(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 12b: multithreading speedup (vs 1-thread OoO)",
		Columns: []string{"benchmark", "config", "x1", "x2", "x4", "x8"},
	}
	for _, w := range []*workloads.Workload{workloads.BFSMT(scale), workloads.PathfinderMT(scale)} {
		base, err := sim.RunThreads(w.Kernel, w.Params, w.NewData(), sim.OoO(), 1)
		if err != nil {
			return nil, err
		}
		for _, cfg := range []sim.Config{sim.OoO(), distMT()} {
			row := []string{w.Name, cfg.Name}
			for _, threads := range []int{1, 2, 4, 8} {
				r, err := sim.RunThreads(w.Kernel, w.Params, w.NewData(), cfg, threads)
				if err != nil {
					return nil, fmt.Errorf("exp: %s %s x%d: %w", w.Name, cfg.Name, threads, err)
				}
				row = append(row, report.F(r.SpeedupVs(base)))
			}
			t.AddRow(row...)
		}
	}
	t.AddNote("stream specialization skipped for Dist-DA threads (§VI-D)")
	return t, nil
}

func distMT() sim.Config {
	return sim.MustConfig(sim.DistDAIO,
		sim.WithName("Dist-DA-IO"),
		sim.WithoutStreamSpecialization())
}

// Fig13Clocking sweeps the Dist-DA-IO accelerator clock 1→3 GHz and
// reports speedup and IPC normalized to 1 GHz.
func Fig13Clocking(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 13: clocking sensitivity, Dist-DA-IO (speedup | IPC vs 1 GHz)",
		Columns: []string{"benchmark", "1GHz", "2GHz", "3GHz"},
	}
	for _, w := range workloads.All(scale) {
		var base *sim.Result
		row := []string{w.Name}
		for _, ghz := range []int{1, 2, 3} {
			r, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO().WithClock(ghz))
			if err != nil {
				return nil, fmt.Errorf("exp: %s @%dGHz: %w", w.Name, ghz, err)
			}
			if base == nil {
				base = r
			}
			// IPC here is per accelerator cycle: at a higher clock the same
			// work takes more (shorter) cycles, so stalls depress it — the
			// effect Fig. 13 reports.
			speedup := r.SpeedupVs(base)
			accelIPC := speedup / float64(ghz)
			row = append(row, fmt.Sprintf("%s|%s",
				report.F(speedup),
				report.F(accelIPC)))
		}
		t.AddRow(row...)
	}
	t.AddNote("speedup grows sub-linearly and IPC drops for access-dominated benchmarks (§VI-E)")
	return t, nil
}

// Fig14SoftwareOpt evaluates Dist-DA-IO+SW (width 4, software prefetch) and
// Dist-DA-F+A (allocation customization), normalized to Dist-DA-IO.
func Fig14SoftwareOpt(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Fig. 14: software optimizations (speedup | energy eff. vs Dist-DA-IO)",
		Columns: []string{"benchmark", "Dist-DA-IO+SW", "Dist-DA-F+A"},
	}
	for _, w := range workloads.All(scale) {
		base, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO())
		if err != nil {
			return nil, err
		}
		row := []string{w.Name}
		for _, cfg := range []sim.Config{sim.DistDAIOSW(), sim.DistDAFA()} {
			r, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfg)
			if err != nil {
				return nil, fmt.Errorf("exp: %s on %s: %w", w.Name, cfg.Name, err)
			}
			row = append(row, fmt.Sprintf("%s|%s",
				report.F(r.SpeedupVs(base)),
				report.F(r.EnergyEfficiencyVs(base))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SensWorkingSet grows fdtd-2d's working set past the 2 MB LLC and compares
// Dist-DA against the Mono-DA baseline (§VI-E: on-chip movement still drops
// ~2.5x; energy gain shrinks to ~10%).
func SensWorkingSet(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Working-set sensitivity: fdtd-2d, Dist-DA-F vs Mono-DA-IO",
		Columns: []string{"size", "on-chip movement reduction", "energy eff. gain"},
	}
	sizes := []workloads.Scale{workloads.ScaleTest, scale}
	if scale == workloads.ScaleTest {
		sizes = []workloads.Scale{workloads.ScaleTest, workloads.ScaleBench}
	}
	for _, s := range sizes {
		w := workloads.FDTD2D(s)
		mono, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.MonoDAIO())
		if err != nil {
			return nil, err
		}
		dist, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAF())
		if err != nil {
			return nil, err
		}
		t.AddRow(w.Desc,
			report.F(dist.DataMovementReductionVs(mono)),
			report.F(dist.EnergyEfficiencyVs(mono)))
	}
	return t, nil
}

// Tab3Area renders the §VI-E area model.
func Tab3Area() *report.Table {
	a := energy.DefaultArea()
	t := &report.Table{
		Title:   "Area overheads (32 nm, §VI-E)",
		Columns: []string{"resource", "per L3 cluster", "whole chip"},
	}
	t.AddRow("IO core complex",
		fmt.Sprintf("%.1f%%", 100*a.IOOverheadPerCluster()),
		fmt.Sprintf("%.2f%%", 100*a.IOOverheadChip()))
	t.AddRow("5x5 CGRA tile",
		fmt.Sprintf("%.1f%%", 100*a.CGRAOverheadPerCluster()),
		fmt.Sprintf("%.2f%%", 100*a.CGRAOverheadChip()))
	t.AddNote("paper: IO 1.9%%/cluster (0.3%% chip), CGRA 2.9%%/cluster (0.48%% chip)")
	return t
}

// Tab3Params renders the simulated parameters (Table III).
func Tab3Params() *report.Table {
	t := &report.Table{Title: "Table III: simulated parameters", Columns: []string{"component", "configuration"}}
	t.AddRow("OoO core", "2 GHz, width-4 issue, MLP 6, dependence-aware stall model")
	t.AddRow("L1 D", "32 KB 8-way, 64 B lines, latency 2")
	t.AddRow("L2", "128 KB 16-way, latency 4, stride prefetcher (8 streams, degree 2)")
	t.AddRow("L3", "2 MB static NUCA, 8 clusters x 256 KB 16-way, latency 10, 64 KB anchoring span")
	t.AddRow("NoC", "4x2 mesh, XY routing, 16 B flits, 2 cycles/hop")
	t.AddRow("Memory", "LPDDR, 64 B lines, 160 host cycles")
	t.AddRow("Accelerators", "IO core @2 GHz or CGRA @1 GHz (5x5 Dist / 8x8 Mono), 1 KB buffers, ACP")
	return t
}

// Ablations evaluates the DESIGN.md design-choice ablations on a streaming
// and an irregular workload.
func Ablations(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablations: Dist-DA-IO variants (speedup | energy eff. vs default)",
		Columns: []string{"variant", "fdtd-2d", "bfs"},
	}
	wls := []*workloads.Workload{workloads.FDTD2D(scale), workloads.BFS(scale)}
	base := make([]*sim.Result, len(wls))
	oooBase := make([]*sim.Result, len(wls))
	for i, w := range wls {
		r, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO())
		if err != nil {
			return nil, err
		}
		base[i] = r
		ro, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.OoO())
		if err != nil {
			return nil, err
		}
		oooBase[i] = ro
	}
	variants := []struct {
		name string
		base func() sim.Config
		opts []sim.Option
	}{
		{"buffer 16 elems", sim.DistDAIO, []sim.Option{sim.WithBufElems(16)}},
		{"buffer 1024 elems", sim.DistDAIO, []sim.Option{sim.WithBufElems(1024)}},
		{"no combining", sim.DistDAIO, []sim.Option{sim.WithCombining(false)}},
		{"no obj constraint", sim.DistDAIO, []sim.Option{sim.WithoutObjConstraint()}},
		{"accels at host", sim.DistDAIO, []sim.Option{sim.WithPlaceAtHost()}},
		{"OoO no prefetcher", sim.OoO, []sim.Option{sim.WithHostPrefetch(false)}},
	}
	for _, v := range variants {
		row := []string{v.name}
		for i, w := range wls {
			cfg := sim.MustConfig(v.base, v.opts...)
			r, err := sim.Run(w.Kernel, w.Params, w.NewData(), cfg)
			if err != nil {
				return nil, fmt.Errorf("exp: ablation %q on %s: %w", v.name, w.Name, err)
			}
			ref := base[i]
			if !cfg.HasAccel() {
				ref = oooBase[i]
			}
			row = append(row, fmt.Sprintf("%s|%s",
				report.F(r.SpeedupVs(ref)),
				report.F(r.EnergyEfficiencyVs(ref))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// OffChipExtension evaluates the §VII discussion point ("if the data is
// resident off-chip, off-chip localization of compute may be preferable"):
// partitions anchored at DRAM-resident objects move to the memory
// controller under Dist-DA-OffChip.
func OffChipExtension(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "§VII extension: off-chip placement (Dist-DA-OffChip vs Dist-DA-IO)",
		Columns: []string{"benchmark", "speedup", "energy eff.", "on-chip NoC bytes"},
	}
	for _, w := range []*workloads.Workload{workloads.Pathfinder(scale), workloads.FDTD2D(scale)} {
		on, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO())
		if err != nil {
			return nil, err
		}
		off, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAOffChip())
		if err != nil {
			return nil, err
		}
		onNoC := float64(on.NoCBytes["data"] + on.NoCBytes["ctrl"])
		offNoC := float64(off.NoCBytes["data"] + off.NoCBytes["ctrl"])
		ratio := 0.0
		if onNoC > 0 {
			ratio = offNoC / onNoC
		}
		t.AddRow(w.Name,
			report.F(off.SpeedupVs(on)),
			report.F(off.EnergyEfficiencyVs(on)),
			report.F(ratio))
	}
	t.AddNote("objects over 1 MB anchor at the memory controller; smaller ones stay on chip")
	return t, nil
}

// PIMExtension compares near-L3 offload (Dist-DA-IO) against the
// PIM-in-DRAM backend (Dist-DA-PIM) on the same kernels: bank-level compute
// units at the DRAM channel, channel-bandwidth-bound issue, and no NoC
// traversal for resident data.
func PIMExtension(scale workloads.Scale) (*report.Table, error) {
	t := &report.Table{
		Title:   "PIM extension: in-DRAM execution (Dist-DA-PIM vs Dist-DA-IO)",
		Columns: []string{"benchmark", "speedup", "energy eff.", "on-chip NoC bytes"},
	}
	for _, w := range []*workloads.Workload{workloads.Pathfinder(scale), workloads.FDTD2D(scale), workloads.BFS(scale)} {
		nearL3, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAIO())
		if err != nil {
			return nil, err
		}
		pim, err := sim.Run(w.Kernel, w.Params, w.NewData(), sim.DistDAPIM())
		if err != nil {
			return nil, err
		}
		nearNoC := float64(nearL3.NoCBytes["data"] + nearL3.NoCBytes["ctrl"])
		pimNoC := float64(pim.NoCBytes["data"] + pim.NoCBytes["ctrl"])
		ratio := 0.0
		if nearNoC > 0 {
			ratio = pimNoC / nearNoC
		}
		t.AddRow(w.Name,
			report.F(pim.SpeedupVs(nearL3)),
			report.F(pim.EnergyEfficiencyVs(nearL3)),
			report.F(ratio))
	}
	t.AddNote("pimdram engines sit at the DRAM channel: issue is bandwidth-bound, resident data skips the NoC")
	return t, nil
}
