package exp

import (
	"context"
	"reflect"
	"testing"

	"distda/internal/engine/shard"
	"distda/internal/workloads"
)

// TestBuildShardStatsDeterministic builds the matrix with a shard
// attribution collector at several -parallel worker counts and requires
// (a) the rendered tables stay byte-identical to a run without the
// collector, and (b) the deterministic count fields (windows, deliveries,
// idle fast-forwards, per-island windows/skipped) are identical at any
// worker count — per-cell collectors merge in serial cell order.
func TestBuildShardStatsDeterministic(t *testing.T) {
	ref, err := Build(context.Background(), Options{
		Scale:   workloads.ScaleTest,
		Workers: 1,
		Shards:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(ref)

	strip := func(st *shard.Stats) *shard.Stats {
		out := &shard.Stats{
			Windows:          st.Windows,
			IdleFastForwards: st.IdleFastForwards,
			Deliveries:       st.Deliveries,
			Launches:         st.Launches,
		}
		for _, is := range st.Islands {
			out.Islands = append(out.Islands, shard.IslandStats{Windows: is.Windows, Skipped: is.Skipped})
		}
		return out
	}

	var base *shard.Stats
	for _, workers := range []int{1, 4} {
		st := &shard.Stats{}
		m, err := Build(context.Background(), Options{
			Scale:      workloads.ScaleTest,
			Workers:    workers,
			Shards:     2,
			ShardStats: st,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderAll(m); got != want {
			t.Fatalf("workers=%d: shard stats changed rendered tables", workers)
		}
		if st.Empty() {
			t.Fatalf("workers=%d: no shard attribution collected (Shards=2 matrix)", workers)
		}
		if base == nil {
			base = st
			continue
		}
		if !reflect.DeepEqual(strip(st), strip(base)) {
			t.Fatalf("deterministic counts differ at workers=%d:\n%+v\nvs workers=1:\n%+v",
				workers, strip(st), strip(base))
		}
	}
}
