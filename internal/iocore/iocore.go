// Package iocore models the lightweight single-issue in-order accelerator
// core of the Dist-DA-IO / Mono-DA-IO configurations: it steps the
// compiler-generated 64-bit micro-program one operation per cycle, blocking
// on empty/full access buffers and on random-access latency.
package iocore

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/microcode"
	"distda/internal/trace"
)

// Core executes one accelerator definition.
type Core struct {
	def   *core.AccelDef
	prog  microcode.Program
	regs  [microcode.NumRegs]float64
	pc    int
	iter  int64
	trips int64 // -1: while-input
	// inputs / output are indexed by access id: core.Validate guarantees the
	// ids are dense (0..n-1), so a slice index replaces the map lookup the
	// per-retired-op path used to pay (hash + probe, profile-visible across
	// the whole repro). Unwired accesses hold nil.
	inputs []*accessunit.InPort
	output []*accessunit.OutPort
	// tripIn caches the while-input watched port (nil unless trips < 0 and
	// the access is wired), hoisting the lookup out of the per-iteration
	// end-of-stream check.
	tripIn *accessunit.InPort
	random *accessunit.RandomPort
	meter  *energy.Meter

	stallUntil int64
	lastNow    int64 // most recent Step edge (timestamp for the done instant)
	done       bool

	// Width is the issue width: micro-ops retired per cycle when nothing
	// blocks (Fig. 14's +SW configuration uses 4). Zero means 1.
	Width int

	// ClockDiv is the core's base-clock divisor (engine.Div of its clock).
	// When set, random-access stall cycles are accounted in bulk at the
	// stall-issuing edge and NextEvent lets the engine skip the stalled
	// edges entirely. When zero (legacy), StallCyc increments once per
	// stalled clock edge and NextEvent degrades to polling, which keeps
	// the event-driven and naive schedulers identical either way.
	ClockDiv int64

	// Counters.
	Ops        int64 // retired micro-ops
	IntOps     int64
	ComplexOps int64
	FloatOps   int64
	Iters      int64
	StallCyc   int64

	// Trace, when enabled, records one span per random-access stall and an
	// instant at orchestrator completion. Set after construction (the zero
	// value is disabled); timing is unaffected either way.
	Trace trace.Scope
	// StallHist, when non-nil, observes random-access stall latencies (base
	// cycles).
	StallHist *trace.Hist
}

// New builds a core for def. trips < 0 selects while-input orchestration
// watching def.Trip.InputAccess.
func New(def *core.AccelDef, trips int64, inputs map[int]*accessunit.InPort, outputs map[int]*accessunit.OutPort,
	random *accessunit.RandomPort, meter *energy.Meter) (*Core, error) {
	if err := def.Program.Validate(len(def.Accesses)); err != nil {
		return nil, err
	}
	n := len(def.Accesses)
	c := &Core{
		def: def, prog: def.Program, trips: trips,
		inputs: make([]*accessunit.InPort, n),
		output: make([]*accessunit.OutPort, n),
		random: random,
		meter:  meter,
	}
	for id, p := range inputs {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("iocore: accel %d: input access id %d out of range [0,%d)", def.ID, id, n)
		}
		c.inputs[id] = p
	}
	for id, p := range outputs {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("iocore: accel %d: output access id %d out of range [0,%d)", def.ID, id, n)
		}
		c.output[id] = p
	}
	if trips < 0 {
		if t := def.Trip.InputAccess; t >= 0 && t < n {
			c.tripIn = c.inputs[t]
		}
	}
	if len(c.prog) == 0 {
		return nil, fmt.Errorf("iocore: accel %d (%s) has empty program", def.ID, def.Name)
	}
	return c, nil
}

// BusyBaseCycles returns the core's useful-work time in engine base cycles,
// derived analytically from the retired-op count (ceil(Ops/Width) issue
// cycles at the core's clock divisor) — a profiling accessor, no hot-path
// counters.
func (c *Core) BusyBaseCycles() int64 {
	width := int64(c.Width)
	if width <= 0 {
		width = 1
	}
	div := c.ClockDiv
	if div <= 0 {
		div = 1
	}
	return (c.Ops + width - 1) / width * div
}

// StallBaseCycles returns the core's stalled time in engine base cycles.
func (c *Core) StallBaseCycles() int64 {
	div := c.ClockDiv
	if div <= 0 {
		div = 1
	}
	return c.StallCyc * div
}

// SetReg initializes a register (cp_set_rf).
func (c *Core) SetReg(r int, v float64) { c.regs[r] = v }

// Reg reads a register (cp_load_rf).
func (c *Core) Reg(r int) float64 { return c.regs[r] }

// Done reports orchestrator completion.
func (c *Core) Done() bool { return c.done }

// finish closes every output buffer so downstream drains and links
// terminate.
func (c *Core) finish() {
	for _, p := range c.output {
		if p == nil {
			continue
		}
		if !p.Buf.Closed() {
			p.Buf.Close()
		}
	}
	c.done = true
	c.Trace.Instant("done", c.lastNow, trace.KV{K: "accel", V: int64(c.def.ID)},
		trace.KV{K: "iters", V: c.Iters}, trace.KV{K: "ops", V: c.Ops})
}

func (c *Core) retire(class ir.OpClass) {
	c.Ops++
	switch class {
	case ir.ClassInt:
		c.IntOps++
	case ir.ClassComplex:
		c.ComplexOps++
	case ir.ClassFloat:
		c.FloatOps++
	}
	if c.meter != nil {
		t := &c.meter.Table // by pointer: the table is ~17 words, copied per retired op otherwise
		e := t.IOInstrPJ
		switch class {
		case ir.ClassInt:
			e += t.IntOpPJ
		case ir.ClassComplex:
			e += t.ComplexOpPJ
		case ir.ClassFloat:
			e += t.FloatOpPJ
		}
		c.meter.Add(energy.CatAccel, e)
	}
	c.pc++
	if c.pc == len(c.prog) {
		c.pc = 0
		c.iter++
		c.Iters++
		if c.trips >= 0 && c.iter >= c.trips {
			c.finish()
		}
	}
}

// Step advances one core clock edge. Returns whether progress was made
// (a retired op, a counted-down stall, or a detected end-of-input).
func (c *Core) Step(now int64) bool {
	if c.done {
		return false
	}
	c.lastNow = now
	if now < c.stallUntil {
		if c.ClockDiv <= 0 {
			c.StallCyc++ // legacy per-edge accounting
		}
		return true
	}
	width := c.Width
	if width <= 0 {
		width = 1
	}
	progress := false
	// written is a register bitmask (NumRegs <= 64): Step runs on every
	// core clock edge, and the map it replaced was a fresh allocation per
	// edge — visible in the whole-repro profile.
	var written uint64
	for i := 0; i < width; i++ {
		// In-order multi-issue: an op reading a register written this cycle
		// waits for the next cycle.
		if i > 0 && c.pc < len(c.prog) && readsAny(&c.prog[c.pc], written) {
			break
		}
		var wrote int = -1
		if c.pc < len(c.prog) {
			if d, ok := destOf(&c.prog[c.pc]); ok {
				wrote = d
			}
		}
		p := c.step1(now)
		progress = progress || p
		if p && wrote >= 0 {
			written |= 1 << uint(wrote)
		}
		if !p || c.done || now < c.stallUntil {
			break
		}
	}
	return progress
}

// setStall blocks the core until now+lat. With ClockDiv set the stalled
// clock edges are accounted here in bulk — floor((lat-1)/div) edges fall
// strictly inside (now, now+lat) — so the engine may skip them; without it
// Step counts them one edge at a time.
func (c *Core) setStall(now, lat int64) {
	c.stallUntil = now + lat
	if c.ClockDiv > 0 && lat > 0 {
		c.StallCyc += (lat - 1) / c.ClockDiv
	}
	if lat > 0 {
		c.Trace.Span("stall", now, lat, trace.KV{K: "accel", V: int64(c.def.ID)})
		c.StallHist.Observe(float64(lat))
	}
}

// NextEvent implements engine.Hinter: a stalled core's next effect is its
// stall expiry (when ClockDiv is known); a core whose next micro-op is a
// consume on an empty-but-open buffer or a produce into a full buffer is
// blocked on a peer; everything else retires on the next edge.
func (c *Core) NextEvent(now int64) int64 {
	if c.done {
		return 0
	}
	if now < c.stallUntil {
		if c.ClockDiv > 0 {
			return c.stallUntil
		}
		return 0 // legacy mode: poll every edge to count stall cycles
	}
	if c.pc == 0 && c.trips < 0 {
		if p := c.tripIn; p != nil && p.Buf.Drained(p.Reader) {
			return 0 // end of watched input: will finish
		}
	}
	op := &c.prog[c.pc] // by pointer: Op is large and this path runs per edge
	if op.Pred >= 0 && c.regs[op.Pred] == 0 {
		return 0 // predicated-off: retires as a nop
	}
	switch op.Code {
	case microcode.Consume:
		if p := c.inputs[op.Access]; p != nil && !p.Buf.CanPop(p.Reader) && !p.Buf.Drained(p.Reader) {
			return engine.Never // blocked on the producer
		}
	case microcode.Produce:
		if p := c.output[op.Access]; p != nil && !p.Buf.CanPush() {
			return engine.Never // blocked on the consumer
		}
	}
	return 0
}

// readsAny reports whether op reads any register in the set bitmask.
func readsAny(op *microcode.Op, set uint64) bool {
	in := func(r int) bool { return r >= 0 && set&(1<<uint(r)) != 0 }
	if in(op.Pred) {
		return true
	}
	switch op.Code {
	case microcode.Produce, microcode.LoadObj, microcode.ALUI, microcode.Un, microcode.Mov:
		return in(op.A)
	case microcode.StoreObj, microcode.ALU:
		return in(op.A) || in(op.B)
	case microcode.SelOp:
		return in(op.A) || in(op.B) || in(op.C)
	default:
		return false
	}
}

// destOf returns the register an op writes, if any.
func destOf(op *microcode.Op) (int, bool) {
	switch op.Code {
	case microcode.Consume, microcode.LoadObj, microcode.ALU, microcode.ALUI,
		microcode.Un, microcode.SelOp, microcode.MovI, microcode.Mov, microcode.Iter:
		return op.Dst, true
	default:
		return 0, false
	}
}

// step1 retires at most one micro-op.
func (c *Core) step1(now int64) bool {
	// While-input orchestration: at iteration start, end-of-stream on the
	// watched input terminates the offload.
	if c.pc == 0 && c.trips < 0 {
		p := c.tripIn
		if p == nil {
			panic(fmt.Sprintf("iocore: accel %d: while-input access %d not wired", c.def.ID, c.def.Trip.InputAccess))
		}
		if p.Buf.Drained(p.Reader) {
			c.finish()
			return true
		}
	}
	op := &c.prog[c.pc] // by pointer: Op is large and this path runs per edge
	if op.Pred >= 0 && c.regs[op.Pred] == 0 {
		c.retire(ir.ClassInt) // predicated-off: retires as a nop
		return true
	}
	switch op.Code {
	case microcode.Nop:
		c.retire(ir.ClassInt)
	case microcode.Consume:
		p := c.inputs[op.Access]
		if p == nil {
			panic(fmt.Sprintf("iocore: accel %d: access %d not wired as input", c.def.ID, op.Access))
		}
		if !p.Buf.CanPop(p.Reader) {
			if p.Buf.Drained(p.Reader) {
				panic(fmt.Sprintf("iocore: accel %d: consume on drained access %d (producer under-delivered)", c.def.ID, op.Access))
			}
			return false // blocked on empty buffer
		}
		c.regs[op.Dst] = p.Buf.Pop(p.Reader)
		c.retire(ir.ClassInt)
	case microcode.Produce:
		p := c.output[op.Access]
		if p == nil {
			panic(fmt.Sprintf("iocore: accel %d: access %d not wired as output", c.def.ID, op.Access))
		}
		if !p.Buf.CanPush() {
			return false // blocked on full buffer (back-pressure)
		}
		p.Buf.Push(c.regs[op.A])
		c.retire(ir.ClassInt)
	case microcode.LoadObj:
		v, lat, err := c.random.Load(op.Obj, int64(c.regs[op.A]))
		if err != nil {
			panic(fmt.Sprintf("iocore: accel %d: %v", c.def.ID, err))
		}
		c.regs[op.Dst] = v
		c.setStall(now, int64(lat))
		c.retire(ir.ClassInt)
	case microcode.StoreObj:
		lat, err := c.random.Store(op.Obj, int64(c.regs[op.A]), c.regs[op.B])
		if err != nil {
			panic(fmt.Sprintf("iocore: accel %d: %v", c.def.ID, err))
		}
		// Posted write: brief port occupancy only.
		occ := int64(lat)
		if occ > 8 {
			occ = 8
		}
		c.setStall(now, occ)
		c.retire(ir.ClassInt)
	case microcode.ALU:
		c.regs[op.Dst] = c.apply(op.Bin, c.regs[op.A], c.regs[op.B])
		c.retire(op.Bin.Class())
	case microcode.ALUI:
		c.regs[op.Dst] = c.apply(op.Bin, c.regs[op.A], op.Imm)
		c.retire(op.Bin.Class())
	case microcode.Un:
		c.regs[op.Dst] = ir.ApplyUn(op.UnOp, c.regs[op.A])
		c.retire(op.UnOp.Class())
	case microcode.SelOp:
		if c.regs[op.C] != 0 {
			c.regs[op.Dst] = c.regs[op.A]
		} else {
			c.regs[op.Dst] = c.regs[op.B]
		}
		c.retire(ir.ClassInt)
	case microcode.MovI:
		c.regs[op.Dst] = op.Imm
		c.retire(ir.ClassInt)
	case microcode.Mov:
		c.regs[op.Dst] = c.regs[op.A]
		c.retire(ir.ClassInt)
	case microcode.Iter:
		c.regs[op.Dst] = float64(c.iter)
		c.retire(ir.ClassInt)
	default:
		panic(fmt.Sprintf("iocore: accel %d: bad opcode %v", c.def.ID, op.Code))
	}
	return true
}

// apply evaluates a binary op, panicking on arithmetic faults (the
// simulator surfaces these as configuration errors).
func (c *Core) apply(op ir.BinOp, a, b float64) float64 {
	v, err := ir.ApplyBin(op, a, b)
	if err != nil {
		panic(fmt.Sprintf("iocore: accel %d: %v", c.def.ID, err))
	}
	return v
}
