package iocore

import (
	"strings"
	"testing"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/memfake"
	"distda/internal/microcode"
	"distda/internal/noc"
)

func op(c microcode.Code) microcode.Op { return microcode.NewOp(c) }

// doubler wires StreamIn(A) -> core(x2) -> StreamOut(B).
func doubler(t *testing.T, n int) (*engine.Engine, *Core, *memfake.Mem) {
	t.Helper()
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i + 1)
	}
	mem := memfake.New(8, map[string][]float64{"A": a, "B": make([]float64, n)})
	fetch := &memfake.Fetch{Lat: 10}
	stats := &accessunit.Stats{}
	meter := energy.NewMeter(energy.Default32nm())

	bufIn, _ := accessunit.NewBuffer(16, meter)
	inPort := accessunit.NewInPort(bufIn, 0)
	fsmIn, err := accessunit.NewStreamIn(bufIn, mem, fetch, 0, "A", 0, 1, int64(n), stats, meter)
	if err != nil {
		t.Fatal(err)
	}
	bufOut, _ := accessunit.NewBuffer(16, meter)
	fsmOut, err := accessunit.NewStreamOut(bufOut, mem, fetch, 0, "B", 0, 1, stats, meter)
	if err != nil {
		t.Fatal(err)
	}

	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	mul := op(microcode.ALUI)
	mul.Dst, mul.A, mul.Bin, mul.Imm = 2, 1, ir.Mul, 2
	prod := op(microcode.Produce)
	prod.A, prod.Access = 2, 1

	def := &core.AccelDef{
		ID: 0, Name: "doubler", Objects: []string{"A", "B"},
		Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "A", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
			{ID: 1, Kind: core.StreamOut, Obj: "B", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(float64(n))},
		},
		Program: microcode.Program{cons, mul, prod},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(n))},
	}
	c, err := New(def, int64(n),
		map[int]*accessunit.InPort{0: inPort},
		map[int]*accessunit.OutPort{1: {Buf: bufOut}},
		accessunit.NewRandomPort(mem, fetch, 0, stats, meter), meter)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	eng.Add(fsmIn, 2)
	eng.Add(c, 2)
	eng.Add(fsmOut, 2)
	return eng, c, mem
}

func TestCoreStreamDoubler(t *testing.T) {
	const n = 32
	eng, c, mem := doubler(t, n)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := mem.Objs["B"][i]; got != float64(2*(i+1)) {
			t.Fatalf("B[%d] = %g, want %g", i, got, float64(2*(i+1)))
		}
	}
	if c.Iters != n || c.Ops != 3*n {
		t.Fatalf("iters=%d ops=%d", c.Iters, c.Ops)
	}
	if !c.Done() {
		t.Fatal("core not done")
	}
}

func TestTwoCorePipelineOverLink(t *testing.T) {
	const n = 24
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	mem := memfake.New(8, map[string][]float64{"A": a, "B": make([]float64, n)})
	fetch := &memfake.Fetch{Lat: 6}
	stats := &accessunit.Stats{}
	meter := energy.NewMeter(energy.Default32nm())

	bufA, _ := accessunit.NewBuffer(8, meter)
	inA := accessunit.NewInPort(bufA, 0)
	fsmA, _ := accessunit.NewStreamIn(bufA, mem, fetch, 0, "A", 0, 1, n, stats, meter)

	// Producer-side channel buffer (proxy) and consumer-side buffer, Fig. 4.
	chSrc, _ := accessunit.NewBuffer(8, meter)
	chDst, _ := accessunit.NewBuffer(8, meter)
	chIn := accessunit.NewInPort(chDst, 0)

	bufB, _ := accessunit.NewBuffer(8, meter)
	fsmB, _ := accessunit.NewStreamOut(bufB, mem, fetch, 0, "B", 0, 1, stats, meter)

	// Core 0: v+1 -> channel.
	c0ops := microcode.Program{}
	o := op(microcode.Consume)
	o.Dst, o.Access = 1, 0
	c0ops = append(c0ops, o)
	o = op(microcode.ALUI)
	o.Dst, o.A, o.Bin, o.Imm = 2, 1, ir.Add, 1
	c0ops = append(c0ops, o)
	o = op(microcode.Produce)
	o.A, o.Access = 2, 1
	c0ops = append(c0ops, o)

	// Core 1: v*3 -> B.
	c1ops := microcode.Program{}
	o = op(microcode.Consume)
	o.Dst, o.Access = 1, 0
	c1ops = append(c1ops, o)
	o = op(microcode.ALUI)
	o.Dst, o.A, o.Bin, o.Imm = 2, 1, ir.Mul, 3
	c1ops = append(c1ops, o)
	o = op(microcode.Produce)
	o.A, o.Access = 2, 1
	c1ops = append(c1ops, o)

	def0 := &core.AccelDef{
		ID: 0, Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "A", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
			{ID: 1, Kind: core.ChanOut, ElemBytes: 8, Peer: core.PeerRef{Accel: 1, Access: 0}},
		},
		Program: c0ops, Trip: core.TripSpec{Kind: core.TripCounted, Count: ir.C(n)},
	}
	def1 := &core.AccelDef{
		ID: 1, Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.ChanIn, ElemBytes: 8, Peer: core.PeerRef{Accel: 0, Access: 1}},
			{ID: 1, Kind: core.StreamOut, Obj: "B", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
		},
		Program: c1ops, Trip: core.TripSpec{Kind: core.TripWhileInput, InputAccess: 0},
	}
	rp := accessunit.NewRandomPort(mem, fetch, 0, stats, meter)
	core0, err := New(def0, n, map[int]*accessunit.InPort{0: inA},
		map[int]*accessunit.OutPort{1: {Buf: chSrc}}, rp, meter)
	if err != nil {
		t.Fatal(err)
	}
	core1, err := New(def1, -1, map[int]*accessunit.InPort{0: chIn},
		map[int]*accessunit.OutPort{1: {Buf: bufB}}, rp, meter)
	if err != nil {
		t.Fatal(err)
	}
	linkTx, linkRx := accessunit.NewLocalLink(chSrc, chDst, noc.New(noc.DefaultConfig(), meter), 0, 1, 8, stats)

	eng := engine.New()
	eng.Add(fsmA, 2)
	eng.Add(core0, 2)
	eng.Add(linkTx, 2)
	eng.Add(linkRx, 2)
	eng.Add(core1, 2)
	eng.Add(fsmB, 2)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64((i + 1) * 3)
		if got := mem.Objs["B"][i]; got != want {
			t.Fatalf("B[%d] = %g, want %g", i, got, want)
		}
	}
	if stats.AABytes != 8*n {
		t.Fatalf("AABytes = %d, want %d", stats.AABytes, 8*n)
	}
}

func TestCoreReductionReadBack(t *testing.T) {
	// Sum A into r2 across iterations, read back with Reg (cp_load_rf).
	const n = 16
	a := make([]float64, n)
	var want float64
	for i := range a {
		a[i] = float64(i * i)
		want += a[i]
	}
	mem := memfake.New(8, map[string][]float64{"A": a})
	fetch := &memfake.Fetch{Lat: 4}
	stats := &accessunit.Stats{}
	buf, _ := accessunit.NewBuffer(8, nil)
	in := accessunit.NewInPort(buf, 0)
	fsm, _ := accessunit.NewStreamIn(buf, mem, fetch, 0, "A", 0, 1, n, stats, nil)

	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	add := op(microcode.ALU)
	add.Dst, add.A, add.B, add.Bin = 2, 2, 1, ir.Add

	def := &core.AccelDef{
		ID: 0, Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "A", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(n)},
		},
		Program: microcode.Program{cons, add},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(n)},
	}
	c, err := New(def, n, map[int]*accessunit.InPort{0: in}, nil,
		accessunit.NewRandomPort(mem, fetch, 0, stats, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	c.SetReg(2, 0) // cp_set_rf accumulator init
	eng := engine.New()
	eng.Add(fsm, 2)
	eng.Add(c, 2)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(2); got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestCorePredicatedRandomStore(t *testing.T) {
	// For each consumed v: if v > 10, out[iter] = v (predicated store).
	vals := []float64{5, 20, 7, 30}
	mem := memfake.New(8, map[string][]float64{"V": vals, "O": make([]float64, 4)})
	fetch := &memfake.Fetch{Lat: 3}
	stats := &accessunit.Stats{}
	buf, _ := accessunit.NewBuffer(8, nil)
	in := accessunit.NewInPort(buf, 0)
	fsm, _ := accessunit.NewStreamIn(buf, mem, fetch, 0, "V", 0, 1, 4, stats, nil)

	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	cmp := op(microcode.ALUI)
	cmp.Dst, cmp.A, cmp.Bin, cmp.Imm = 2, 1, ir.Gt, 10
	it := op(microcode.Iter)
	it.Dst = 3
	st := op(microcode.StoreObj)
	st.A, st.B, st.Obj, st.Pred = 3, 1, "O", 2

	def := &core.AccelDef{
		ID: 0, Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.StreamIn, Obj: "V", ElemBytes: 8, Start: ir.C(0), Stride: ir.C(1), Length: ir.C(4)},
		},
		Program: microcode.Program{cons, cmp, it, st},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(4)},
	}
	c, err := New(def, 4, map[int]*accessunit.InPort{0: in}, nil,
		accessunit.NewRandomPort(mem, fetch, 0, stats, nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	eng.Add(fsm, 2)
	eng.Add(c, 2)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 20, 0, 30}
	for i, w := range want {
		if mem.Objs["O"][i] != w {
			t.Fatalf("O = %v, want %v", mem.Objs["O"], want)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	// A core consuming from a buffer nobody fills.
	buf, _ := accessunit.NewBuffer(4, nil)
	in := accessunit.NewInPort(buf, 0)
	cons := op(microcode.Consume)
	cons.Dst, cons.Access = 1, 0
	def := &core.AccelDef{
		ID: 0, Accesses: []core.AccessDecl{
			{ID: 0, Kind: core.ChanIn, ElemBytes: 8},
		},
		Program: microcode.Program{cons},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(4)},
	}
	c, err := New(def, 4, map[int]*accessunit.InPort{0: in}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New()
	eng.Add(c, 2)
	_, err = eng.Run(1 << 16)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock, got %v", err)
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	def := &core.AccelDef{
		ID:      0,
		Program: microcode.Program{},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(1)},
	}
	if _, err := New(def, 1, nil, nil, nil, nil); err == nil {
		t.Fatal("empty program accepted")
	}

}

func TestAccelEnergyMetered(t *testing.T) {
	const n = 8
	eng, c, _ := doubler(t, n)
	if _, err := eng.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	_ = c
	// Re-derive: the doubler's meter is internal to the helper; just assert
	// op class counters split correctly instead.
	if c.ComplexOps != n { // the mul
		t.Fatalf("complex ops = %d, want %d", c.ComplexOps, n)
	}
	if c.IntOps != 2*n { // consume + produce
		t.Fatalf("int ops = %d, want %d", c.IntOps, 2*n)
	}
}
