package iocore

import (
	"testing"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/memfake"
	"distda/internal/microcode"
)

// TestLiviaStyleTaskInvocation demonstrates the §IV-B observation that
// other offload models compose from the interface: Livia's memory-service
// migration is "cp_set_rf and cp_run to transfer operands and invoke an
// already configured accelerator". One accelerator is configured once; the
// host then dispatches per-item tasks purely with register writes and run
// commands — no reconfiguration.
func TestLiviaStyleTaskInvocation(t *testing.T) {
	table := make([]float64, 64)
	for i := range table {
		table[i] = float64(i * i)
	}
	mem := memfake.New(8, map[string][]float64{"table": table, "out": make([]float64, 8)})
	fetch := &memfake.Fetch{Lat: 12}
	stats := &accessunit.Stats{}
	rp := accessunit.NewRandomPort(mem, fetch, 0, stats, nil)

	// Service: out[r2] = table[r1] + 1 — a single-cacheline task.
	ld := microcode.NewOp(microcode.LoadObj)
	ld.Dst, ld.A, ld.Obj = 3, 1, "table"
	inc := microcode.NewOp(microcode.ALUI)
	inc.Dst, inc.A, inc.Bin, inc.Imm = 3, 3, ir.Add, 1
	st := microcode.NewOp(microcode.StoreObj)
	st.A, st.B, st.Obj = 2, 3, "out"
	def := &core.AccelDef{
		ID:      0,
		Name:    "service",
		Objects: []string{"table", "out"},
		Program: microcode.Program{ld, inc, st},
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(1)},
	}

	// cp_config happened once (the def exists); every task is cp_set_rf x2
	// + cp_run on a fresh single-trip orchestration.
	tasks := []struct{ key, slot int }{{5, 0}, {9, 1}, {63, 2}, {0, 3}}
	for _, task := range tasks {
		c, err := New(def, 1, nil, nil, rp, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.SetReg(1, float64(task.key))  // cp_set_rf operand
		c.SetReg(2, float64(task.slot)) // cp_set_rf result slot
		eng := engine.New()
		eng.Add(c, 2) // cp_run
		if _, err := eng.Run(1 << 16); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range tasks {
		want := float64(task.key*task.key + 1)
		if got := mem.Objs["out"][task.slot]; got != want {
			t.Fatalf("out[%d] = %g, want %g", task.slot, got, want)
		}
	}
}
