package iocore

import (
	"testing"

	"distda/internal/accessunit"
	"distda/internal/core"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/memfake"
	"distda/internal/microcode"
)

// chainProgram builds n dependent adds (r1 = r1+1 chains).
func chainProgram(n int) microcode.Program {
	var p microcode.Program
	for i := 0; i < n; i++ {
		o := microcode.NewOp(microcode.ALUI)
		o.Dst, o.A, o.Bin, o.Imm = 1, 1, ir.Add, 1
		p = append(p, o)
	}
	return p
}

// fanProgram builds n independent movs.
func fanProgram(n int) microcode.Program {
	var p microcode.Program
	for i := 0; i < n; i++ {
		o := microcode.NewOp(microcode.MovI)
		o.Dst, o.Imm = i+1, float64(i)
		p = append(p, o)
	}
	return p
}

func runWidth(t *testing.T, prog microcode.Program, width int, trips int64) int64 {
	t.Helper()
	def := &core.AccelDef{
		ID:      0,
		Program: prog,
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(float64(trips))},
	}
	mem := memfake.New(8, map[string][]float64{"A": make([]float64, 8)})
	rp := accessunit.NewRandomPort(mem, &memfake.Fetch{Lat: 4}, 0, &accessunit.Stats{}, nil)
	c, err := New(def, trips, nil, nil, rp, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Width = width
	eng := engine.New()
	eng.Add(c, 2)
	cycles, err := eng.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	return cycles
}

func TestWidthSpeedsUpIndependentOps(t *testing.T) {
	w1 := runWidth(t, fanProgram(16), 1, 64)
	w4 := runWidth(t, fanProgram(16), 4, 64)
	if w4*3 > w1 {
		t.Fatalf("width 4 on independent ops: %d vs %d (want ~4x)", w4, w1)
	}
}

func TestWidthDoesNotBreakDependences(t *testing.T) {
	// A serial add chain cannot dual-issue: width 4 must not approach 4x.
	w1 := runWidth(t, chainProgram(16), 1, 64)
	w4 := runWidth(t, chainProgram(16), 4, 64)
	if w4*2 < w1 {
		t.Fatalf("width 4 on a dependent chain got %dx (%d vs %d)", w1/w4, w4, w1)
	}
	// Results must still be correct: 16 adds x 64 trips.
	def := &core.AccelDef{
		ID:      0,
		Program: chainProgram(16),
		Trip:    core.TripSpec{Kind: core.TripCounted, Count: ir.C(64)},
	}
	mem := memfake.New(8, map[string][]float64{"A": make([]float64, 8)})
	rp := accessunit.NewRandomPort(mem, &memfake.Fetch{Lat: 4}, 0, &accessunit.Stats{}, nil)
	c, _ := New(def, 64, nil, nil, rp, nil)
	c.Width = 4
	eng := engine.New()
	eng.Add(c, 2)
	if _, err := eng.Run(1 << 22); err != nil {
		t.Fatal(err)
	}
	if got := c.Reg(1); got != 16*64 {
		t.Fatalf("r1 = %g, want %d", got, 16*64)
	}
}
