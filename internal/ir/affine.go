package ir

import (
	"fmt"
	"sort"
)

// Affine is the scalar-evolution form of an index expression with respect to
// a set of induction variables:
//
//	idx = Offset + Σ Coeffs[iv]·iv
//
// Offset and all coefficients are expressions free of those IVs and free of
// loads, so they are evaluable at offload-configuration time (outer IVs and
// parameters are runtime constants then). This is the analog of the LLVM
// SCEV add-recurrences the paper's compiler leans on (§V).
type Affine struct {
	Coeffs map[string]Expr
	Offset Expr
}

// IVs returns the induction variables with non-zero coefficients, sorted.
func (a Affine) IVs() []string {
	out := make([]string, 0, len(a.Coeffs))
	for iv := range a.Coeffs {
		out = append(out, iv)
	}
	sort.Strings(out)
	return out
}

// String renders the affine form for diagnostics.
func (a Affine) String() string {
	s := a.Offset.String()
	for _, iv := range a.IVs() {
		s += fmt.Sprintf(" + (%s)*%s", a.Coeffs[iv], iv)
	}
	return s
}

// AnalyzeAffine rewrites e into affine form with respect to the IVs in
// inner. defs resolves local names to their (loop-invariant) defining
// expressions; locals not present in defs make the expression non-affine.
// The second result reports success. IVs not in inner are treated as
// symbolic constants (they are fixed when the innermost offload is
// configured).
func AnalyzeAffine(e Expr, inner map[string]bool, defs map[string]Expr) (Affine, bool) {
	a, ok := affine(e, inner, defs, 0)
	return a, ok
}

// maxAffineDepth bounds recursion through local definitions so cyclic defs
// cannot loop forever.
const maxAffineDepth = 64

func affine(e Expr, inner map[string]bool, defs map[string]Expr, depth int) (Affine, bool) {
	if depth > maxAffineDepth {
		return Affine{}, false
	}
	switch x := e.(type) {
	case Const, Param:
		return Affine{Offset: e}, true
	case IV:
		if inner[x.Name] {
			return Affine{Coeffs: map[string]Expr{x.Name: C(1)}, Offset: C(0)}, true
		}
		return Affine{Offset: e}, true
	case Local:
		def, ok := defs[x.Name]
		if !ok {
			return Affine{}, false
		}
		return affine(def, inner, defs, depth+1)
	case Load:
		return Affine{}, false
	case Un:
		a, ok := affine(x.A, inner, defs, depth+1)
		if !ok {
			return Affine{}, false
		}
		if x.Op == Neg {
			return scaleAffine(a, C(-1)), true
		}
		// Other unaries are affine only when IV-free.
		if len(a.Coeffs) == 0 {
			return Affine{Offset: Un{Op: x.Op, A: a.Offset}}, true
		}
		return Affine{}, false
	case Bin:
		a, okA := affine(x.A, inner, defs, depth+1)
		b, okB := affine(x.B, inner, defs, depth+1)
		if !okA || !okB {
			return Affine{}, false
		}
		switch x.Op {
		case Add:
			return addAffine(a, b, 1), true
		case Sub:
			return addAffine(a, b, -1), true
		case Mul:
			if len(a.Coeffs) == 0 {
				return scaleAffine(b, a.Offset), true
			}
			if len(b.Coeffs) == 0 {
				return scaleAffine(a, b.Offset), true
			}
			return Affine{}, false // iv*iv: not affine
		default:
			// Div/Mod/Min/...: affine only when both sides are IV-free.
			if len(a.Coeffs) == 0 && len(b.Coeffs) == 0 {
				return Affine{Offset: Bin{Op: x.Op, A: a.Offset, B: b.Offset}}, true
			}
			return Affine{}, false
		}
	case Sel:
		// A select is IV-invariant only when all three parts are.
		for _, part := range []Expr{x.Cond, x.T, x.F} {
			a, ok := affine(part, inner, defs, depth+1)
			if !ok || len(a.Coeffs) != 0 {
				return Affine{}, false
			}
		}
		return Affine{Offset: e}, true
	default:
		return Affine{}, false
	}
}

func addAffine(a, b Affine, sign float64) Affine {
	out := Affine{Coeffs: map[string]Expr{}, Offset: simplifyAdd(a.Offset, scale(b.Offset, sign))}
	for iv, c := range a.Coeffs {
		out.Coeffs[iv] = c
	}
	for iv, c := range b.Coeffs {
		sc := scale(c, sign)
		if prev, ok := out.Coeffs[iv]; ok {
			out.Coeffs[iv] = simplifyAdd(prev, sc)
		} else {
			out.Coeffs[iv] = sc
		}
	}
	for iv, c := range out.Coeffs {
		if k, ok := c.(Const); ok && k.V == 0 {
			delete(out.Coeffs, iv)
		}
	}
	if len(out.Coeffs) == 0 {
		out.Coeffs = nil
	}
	return out
}

func scaleAffine(a Affine, factor Expr) Affine {
	out := Affine{Offset: simplifyMul(a.Offset, factor)}
	if len(a.Coeffs) > 0 {
		out.Coeffs = map[string]Expr{}
		for iv, c := range a.Coeffs {
			out.Coeffs[iv] = simplifyMul(c, factor)
		}
	}
	return out
}

func scale(e Expr, sign float64) Expr {
	if sign == 1 {
		return e
	}
	return simplifyMul(e, C(sign))
}

// simplifyAdd folds constants in a+b.
func simplifyAdd(a, b Expr) Expr {
	ca, aConst := a.(Const)
	cb, bConst := b.(Const)
	switch {
	case aConst && bConst:
		return C(ca.V + cb.V)
	case aConst && ca.V == 0:
		return b
	case bConst && cb.V == 0:
		return a
	default:
		return Bin{Op: Add, A: a, B: b}
	}
}

// simplifyMul folds constants in a*b.
func simplifyMul(a, b Expr) Expr {
	ca, aConst := a.(Const)
	cb, bConst := b.(Const)
	switch {
	case aConst && bConst:
		return C(ca.V * cb.V)
	case aConst && ca.V == 1:
		return b
	case bConst && cb.V == 1:
		return a
	case aConst && ca.V == 0, bConst && cb.V == 0:
		return C(0)
	default:
		return Bin{Op: Mul, A: a, B: b}
	}
}

// EvalScalar evaluates an expression containing only constants, parameters
// and induction variables with the supplied bindings. It rejects loads and
// locals: it exists to evaluate stream configuration values (start, stride)
// at offload time.
func EvalScalar(e Expr, params, ivs map[string]float64) (float64, error) {
	switch x := e.(type) {
	case Const:
		return x.V, nil
	case Param:
		v, ok := params[x.Name]
		if !ok {
			return 0, fmt.Errorf("ir: EvalScalar: unknown parameter %q", x.Name)
		}
		return v, nil
	case IV:
		v, ok := ivs[x.Name]
		if !ok {
			return 0, fmt.Errorf("ir: EvalScalar: unbound induction variable %q", x.Name)
		}
		return v, nil
	case Un:
		a, err := EvalScalar(x.A, params, ivs)
		if err != nil {
			return 0, err
		}
		return ApplyUn(x.Op, a), nil
	case Bin:
		a, err := EvalScalar(x.A, params, ivs)
		if err != nil {
			return 0, err
		}
		b, err := EvalScalar(x.B, params, ivs)
		if err != nil {
			return 0, err
		}
		return ApplyBin(x.Op, a, b)
	case Sel:
		c, err := EvalScalar(x.Cond, params, ivs)
		if err != nil {
			return 0, err
		}
		t, err := EvalScalar(x.T, params, ivs)
		if err != nil {
			return 0, err
		}
		f, err := EvalScalar(x.F, params, ivs)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return t, nil
		}
		return f, nil
	default:
		return 0, fmt.Errorf("ir: EvalScalar: unsupported expression %T", e)
	}
}
