package ir

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAffineSimple(t *testing.T) {
	inner := map[string]bool{"j": true}
	// (i*W + j): affine in j with coeff 1; i*W folds into offset.
	e := Idx2(V("i"), P("W"), V("j"))
	a, ok := AnalyzeAffine(e, inner, nil)
	if !ok {
		t.Fatal("not affine")
	}
	if len(a.Coeffs) != 1 {
		t.Fatalf("coeffs = %v", a.Coeffs)
	}
	c, err := EvalScalar(a.Coeffs["j"], nil, nil)
	if err != nil || c != 1 {
		t.Fatalf("coeff j = %v (%v)", c, err)
	}
	off, err := EvalScalar(a.Offset, map[string]float64{"W": 10}, map[string]float64{"i": 3})
	if err != nil || off != 30 {
		t.Fatalf("offset = %v (%v)", off, err)
	}
}

func TestAffineStrideWithParamCoefficient(t *testing.T) {
	// Column-major: j*W + i, analyzed wrt j: stride W.
	inner := map[string]bool{"j": true}
	e := AddE(MulE(V("j"), P("W")), V("i"))
	a, ok := AnalyzeAffine(e, inner, nil)
	if !ok {
		t.Fatal("not affine")
	}
	c, err := EvalScalar(a.Coeffs["j"], map[string]float64{"W": 64}, nil)
	if err != nil || c != 64 {
		t.Fatalf("stride = %v (%v)", c, err)
	}
}

func TestAffineRejectsIndirect(t *testing.T) {
	inner := map[string]bool{"i": true}
	e := Ld("idx", V("i"))
	if _, ok := AnalyzeAffine(AddE(e, C(1)), inner, nil); ok {
		t.Fatal("load-containing index classified affine")
	}
}

func TestAffineRejectsIVProduct(t *testing.T) {
	inner := map[string]bool{"i": true, "j": true}
	if _, ok := AnalyzeAffine(MulE(V("i"), V("j")), inner, nil); ok {
		t.Fatal("i*j classified affine")
	}
}

func TestAffineNegAndSub(t *testing.T) {
	inner := map[string]bool{"i": true}
	// (N-1) - i => coeff -1, offset N-1.
	e := SubE(SubE(P("N"), C(1)), V("i"))
	a, ok := AnalyzeAffine(e, inner, nil)
	if !ok {
		t.Fatal("not affine")
	}
	c, _ := EvalScalar(a.Coeffs["i"], nil, nil)
	if c != -1 {
		t.Fatalf("coeff = %g, want -1", c)
	}
	off, _ := EvalScalar(a.Offset, map[string]float64{"N": 8}, nil)
	if off != 7 {
		t.Fatalf("offset = %g, want 7", off)
	}
}

func TestAffineThroughLocalDefs(t *testing.T) {
	inner := map[string]bool{"i": true}
	defs := map[string]Expr{"base": MulE(V("row"), P("W"))}
	e := AddE(L("base"), V("i"))
	a, ok := AnalyzeAffine(e, inner, defs)
	if !ok {
		t.Fatal("not affine through local def")
	}
	off, err := EvalScalar(a.Offset, map[string]float64{"W": 5}, map[string]float64{"row": 2})
	if err != nil || off != 10 {
		t.Fatalf("offset = %v (%v)", off, err)
	}
}

func TestAffineUnknownLocalRejected(t *testing.T) {
	inner := map[string]bool{"i": true}
	if _, ok := AnalyzeAffine(AddE(L("mystery"), V("i")), inner, nil); ok {
		t.Fatal("unknown local accepted")
	}
}

func TestAffineCyclicLocalDefsTerminate(t *testing.T) {
	defs := map[string]Expr{"a": L("b"), "b": L("a")}
	if _, ok := AnalyzeAffine(L("a"), map[string]bool{"i": true}, defs); ok {
		t.Fatal("cyclic defs classified affine")
	}
}

func TestAffineZeroCoeffElided(t *testing.T) {
	inner := map[string]bool{"i": true}
	// i - i: coefficient cancels to zero.
	a, ok := AnalyzeAffine(SubE(V("i"), V("i")), inner, nil)
	if !ok {
		t.Fatal("not affine")
	}
	if len(a.Coeffs) != 0 {
		t.Fatalf("coeffs = %v, want none", a.Coeffs)
	}
}

// TestAffineRecoversRandomAffine builds random affine expressions
// c0 + c1*i + c2*j in scrambled association orders and verifies the analyzer
// recovers a form that evaluates identically to direct interpretation.
func TestAffineRecoversRandomAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(c0, c1, c2 int8, iv, jv uint8) bool {
		// Build ((c1*i + c0) + j*c2), sometimes with extra +0/-0 noise.
		e := AddE(AddE(MulE(C(float64(c1)), V("i")), C(float64(c0))), MulE(V("j"), C(float64(c2))))
		if rng.Intn(2) == 0 {
			e = SubE(AddE(e, C(5)), C(5))
		}
		a, ok := AnalyzeAffine(e, map[string]bool{"i": true, "j": true}, nil)
		if !ok {
			return false
		}
		ivs := map[string]float64{"i": float64(iv % 64), "j": float64(jv % 64)}
		want := float64(c0) + float64(c1)*ivs["i"] + float64(c2)*ivs["j"]
		got, err := EvalScalar(a.Offset, nil, ivs)
		if err != nil {
			return false
		}
		for name, coef := range a.Coeffs {
			cv, err := EvalScalar(coef, nil, ivs)
			if err != nil {
				return false
			}
			got += cv * ivs[name]
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalScalarMatchesInterp cross-checks the scalar evaluator against the
// full interpreter on load-free expressions.
func TestEvalScalarMatchesInterp(t *testing.T) {
	f := func(a, b int16) bool {
		av, bv := float64(a), float64(b)
		exprs := []Expr{
			AddE(C(av), C(bv)),
			SubE(C(av), C(bv)),
			MulE(C(av), C(bv)),
			MinE(C(av), C(bv)),
			MaxE(C(av), C(bv)),
			LtE(C(av), C(bv)),
			GeE(C(av), C(bv)),
			AbsE(C(av)),
			NegE(C(bv)),
			SelE(LtE(C(av), C(bv)), C(av), C(bv)),
		}
		for _, e := range exprs {
			k := &Kernel{
				Name:    "x",
				Objects: []ObjDecl{{Name: "o", Len: 1, ElemBytes: 8}},
				Body:    []Stmt{St("o", C(0), e)},
			}
			mem := map[string][]float64{"o": {0}}
			if _, err := Run(k, nil, mem, nil); err != nil {
				return false
			}
			got, err := EvalScalar(e, nil, nil)
			if err != nil || got != mem["o"][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalScalarRejectsLoads(t *testing.T) {
	if _, err := EvalScalar(Ld("A", C(0)), nil, nil); err == nil {
		t.Fatal("EvalScalar accepted a load")
	}
	if _, err := EvalScalar(L("x"), nil, nil); err == nil {
		t.Fatal("EvalScalar accepted a local")
	}
}

func TestAffineStringAndIVs(t *testing.T) {
	a, ok := AnalyzeAffine(AddE(MulE(C(3), V("i")), AddE(V("j"), C(7))), map[string]bool{"i": true, "j": true}, nil)
	if !ok {
		t.Fatal("not affine")
	}
	ivs := a.IVs()
	if len(ivs) != 2 || ivs[0] != "i" || ivs[1] != "j" {
		t.Fatalf("IVs = %v", ivs)
	}
	if a.String() == "" {
		t.Fatal("empty String()")
	}
}
