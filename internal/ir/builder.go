package ir

// Construction helpers. Workload definitions read much closer to the
// original C sources when written with these.

// C builds a constant.
func C(v float64) Expr { return Const{V: v} }

// P reads a scalar parameter.
func P(name string) Expr { return Param{Name: name} }

// V reads an induction variable.
func V(name string) Expr { return IV{Name: name} }

// L reads a local variable.
func L(name string) Expr { return Local{Name: name} }

// Ld loads obj[idx].
func Ld(obj string, idx Expr) Expr { return Load{Obj: obj, Idx: idx} }

// AddE returns a+b.
func AddE(a, b Expr) Expr { return Bin{Op: Add, A: a, B: b} }

// SubE returns a-b.
func SubE(a, b Expr) Expr { return Bin{Op: Sub, A: a, B: b} }

// MulE returns a*b.
func MulE(a, b Expr) Expr { return Bin{Op: Mul, A: a, B: b} }

// DivE returns a/b.
func DivE(a, b Expr) Expr { return Bin{Op: Div, A: a, B: b} }

// ModE returns a mod b (truncated toward zero, as integers).
func ModE(a, b Expr) Expr { return Bin{Op: Mod, A: a, B: b} }

// MinE returns min(a,b).
func MinE(a, b Expr) Expr { return Bin{Op: Min, A: a, B: b} }

// MaxE returns max(a,b).
func MaxE(a, b Expr) Expr { return Bin{Op: Max, A: a, B: b} }

// LtE returns a<b as 0/1.
func LtE(a, b Expr) Expr { return Bin{Op: Lt, A: a, B: b} }

// LeE returns a<=b as 0/1.
func LeE(a, b Expr) Expr { return Bin{Op: Le, A: a, B: b} }

// GtE returns a>b as 0/1.
func GtE(a, b Expr) Expr { return Bin{Op: Gt, A: a, B: b} }

// GeE returns a>=b as 0/1.
func GeE(a, b Expr) Expr { return Bin{Op: Ge, A: a, B: b} }

// EqE returns a==b as 0/1.
func EqE(a, b Expr) Expr { return Bin{Op: Eq, A: a, B: b} }

// NeE returns a!=b as 0/1.
func NeE(a, b Expr) Expr { return Bin{Op: Ne, A: a, B: b} }

// AbsE returns |a|.
func AbsE(a Expr) Expr { return Un{Op: Abs, A: a} }

// NegE returns -a.
func NegE(a Expr) Expr { return Un{Op: Neg, A: a} }

// SqrtE returns sqrt(a).
func SqrtE(a Expr) Expr { return Un{Op: Sqrt, A: a} }

// FloorE returns floor(a).
func FloorE(a Expr) Expr { return Un{Op: Floor, A: a} }

// SelE returns cond != 0 ? t : f with both arms evaluated.
func SelE(cond, t, f Expr) Expr { return Sel{Cond: cond, T: t, F: f} }

// Set binds local name to e.
func Set(name string, e Expr) Stmt { return Let{Name: name, E: e} }

// St stores val to obj[idx].
func St(obj string, idx, val Expr) Stmt { return Store{Obj: obj, Idx: idx, Val: val} }

// Loop builds a unit-step counted loop.
func Loop(iv string, lo, hi Expr, body ...Stmt) *For {
	return &For{IV: iv, Lo: lo, Hi: hi, Step: C(1), Body: body}
}

// ParLoop builds a unit-step loop annotated as parallel (iterations are
// independent; used only by the multithreading case study).
func ParLoop(iv string, lo, hi Expr, body ...Stmt) *For {
	f := Loop(iv, lo, hi, body...)
	f.Parallel = true
	return f
}

// Cond builds an if statement.
func Cond(c Expr, then []Stmt, els []Stmt) Stmt { return If{Cond: c, Then: then, Else: els} }

// Idx2 flattens a 2-D index i*w + j.
func Idx2(i Expr, w Expr, j Expr) Expr { return AddE(MulE(i, w), j) }
