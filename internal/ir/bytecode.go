package ir

import (
	"fmt"
	"sync"
)

// This file lowers a validated kernel to a flat register-based bytecode.
// The tree-walk interpreter (interp.go) stays as the semantic reference;
// the VM (vm.go) executes the bytecode with identical Counts, identical
// error behavior and identical stored data, replacing per-run tree walks
// on the simulator's hot paths (per-run validation, coverage analysis)
// with compile-once-execute-many programs.
//
// Name resolution happens at compile time: every parameter, local and
// induction variable gets a fixed slot in one flat array, replacing the
// interpreter's linear-scan binding environment. Expressions evaluate
// into a virtual register file whose size is the maximum expression
// depth, computed during compilation.

// OpCode enumerates bytecode operations. The encoding is part of the
// serialized program image; changing it requires bumping the artifact
// store's program format version.
type OpCode uint8

const (
	// OpInvalid guards the zero value; executing it is a bug.
	OpInvalid     OpCode = iota
	OpConst              // regs[Dst] = Val
	OpSlot               // regs[Dst] = slots[A]
	OpSlotChecked        // regs[Dst] = slots[A], failing when the local was never assigned
	OpSetSlot            // slots[Dst] = regs[A]; marks the slot assigned
	OpLoad               // regs[Dst] = obj Aux [int(regs[A])], bounds-checked and counted
	OpStoreIdx           // bounds-check int(regs[A]) against obj Aux (before the value evaluates)
	OpStore              // obj Aux [int(regs[A])] = regs[B], counted
	OpBin                // regs[Dst] = BinOp(Aux) applied to regs[A], regs[B]; C is the OpClass
	OpUn                 // regs[Dst] = UnOp(Aux) applied to regs[A]; C is the OpClass
	OpSel                // regs[Dst] = regs[A] != 0 ? regs[B] : regs[C], counted as ClassInt
	OpJump               // pc = Dst
	OpJumpIfZero         // if regs[A] == 0 { pc = Dst }
	OpLoopEnter          // loop Aux: validate step regs[C], slots[Dst] = regs[A], save cur
	OpLoopTest           // loop Aux: if !(slots[A] < regs[B]) { restore cur; pc = Dst }
	OpIterHead           // loop Aux: count the iteration and attribute to its LoopCounts
	OpLoopIncr           // slots[A] += regs[B]; pc = Dst (back to the loop test)
)

// Op is one bytecode instruction. Fields are exported so a program image
// can be gob-encoded by the artifact store; their meaning depends on Code
// (see the OpCode constants).
type Op struct {
	Code    OpCode
	Dst     int32
	A, B, C int32
	Aux     int32
	Val     float64
}

// Program is a compiled kernel: flat bytecode plus the compile-time
// resolved tables it indexes. A Program is immutable after compilation
// and safe for concurrent Run calls; each Run gets its own register file
// and slot array.
type Program struct {
	kernel    *Kernel
	name      string
	params    []string // parameter names in slot order (slots[0:len(params)])
	objs      []ObjDecl
	loops     []*For   // loop table in Loops(kernel.Body) order; IterHead/Enter index it
	slotNames []string // slot index → name, for error messages
	nSlots    int
	nRegs     int
	code      []Op
}

// Kernel returns the kernel this program was compiled from (or bound to,
// after Rebind).
func (p *Program) Kernel() *Kernel { return p.kernel }

// Ops returns the number of bytecode instructions (for tests and stats).
func (p *Program) Ops() int { return len(p.code) }

func (p *Program) String() string {
	return fmt.Sprintf("program(%s: %d ops, %d slots, %d regs)", p.name, len(p.code), p.nSlots, p.nRegs)
}

// NewProgram validates k and lowers it to bytecode. The error for an
// invalid kernel is exactly the Validate error ir.Run would return.
func NewProgram(k *Kernel) (*Program, error) {
	if err := Validate(k); err != nil {
		return nil, err
	}
	c := &bcCompiler{
		k:         k,
		paramSlot: map[string]int32{},
		localSlot: map[string]int32{},
		ivSlot:    map[string]int32{},
		loopIdx:   map[*For]int32{},
		objIdx:    map[string]int32{},
		defined:   map[string]bool{},
	}
	for i, name := range k.Params {
		c.paramSlot[name] = int32(i)
		c.slotNames = append(c.slotNames, name)
	}
	c.nSlots = int32(len(k.Params))
	for i, o := range k.Objects {
		c.objIdx[o.Name] = int32(i)
	}
	loops := Loops(k.Body)
	for i, f := range loops {
		c.loopIdx[f] = int32(i)
	}
	c.stmts(k.Body, 0)
	if c.maxRegs == 0 {
		c.maxRegs = 1
	}
	return &Program{
		kernel:    k,
		name:      k.Name,
		params:    append([]string(nil), k.Params...),
		objs:      append([]ObjDecl(nil), k.Objects...),
		loops:     loops,
		slotNames: c.slotNames,
		nSlots:    int(c.nSlots),
		nRegs:     int(c.maxRegs),
		code:      c.code,
	}, nil
}

// bcCompiler lowers statements and expressions. Registers are allocated
// stack-wise per expression depth; slots are assigned on first definition.
type bcCompiler struct {
	k         *Kernel
	code      []Op
	paramSlot map[string]int32
	localSlot map[string]int32
	ivSlot    map[string]int32
	loopIdx   map[*For]int32
	objIdx    map[string]int32
	slotNames []string
	nSlots    int32
	maxRegs   int32
	// defined tracks locals that are definitely assigned on every path to
	// the current program point — stricter than Validate, which lets a
	// loop body's definitions persist past the loop even though a 0-trip
	// execution never runs them. Reads of locals that Validate accepted
	// but this set cannot prove get the checked opcode, preserving the
	// interpreter's runtime "read of undefined local" error.
	defined map[string]bool
}

func (c *bcCompiler) emit(op Op) int32 {
	c.code = append(c.code, op)
	return int32(len(c.code) - 1)
}

func (c *bcCompiler) reg(r int32) int32 {
	if r+1 > c.maxRegs {
		c.maxRegs = r + 1
	}
	return r
}

func (c *bcCompiler) newSlot(name string) int32 {
	s := c.nSlots
	c.nSlots++
	c.slotNames = append(c.slotNames, name)
	return s
}

func (c *bcCompiler) stmts(body []Stmt, base int32) {
	for _, s := range body {
		c.stmt(s, base)
	}
}

func (c *bcCompiler) stmt(s Stmt, base int32) {
	switch x := s.(type) {
	case Let:
		slot, ok := c.localSlot[x.Name]
		if !ok {
			slot = c.newSlot(x.Name)
			c.localSlot[x.Name] = slot
		}
		c.expr(x.E, base)
		c.emit(Op{Code: OpSetSlot, Dst: slot, A: base})
		c.defined[x.Name] = true
	case Store:
		// Same order as the interpreter: evaluate and bounds-check the
		// index, then evaluate the value.
		c.expr(x.Idx, base)
		c.emit(Op{Code: OpStoreIdx, A: base, Aux: c.objIdx[x.Obj]})
		c.expr(x.Val, c.reg(base+1))
		c.emit(Op{Code: OpStore, A: base, B: base + 1, Aux: c.objIdx[x.Obj]})
	case If:
		c.expr(x.Cond, base)
		jElse := c.emit(Op{Code: OpJumpIfZero, A: base})
		saved := cloneSet(c.defined)
		c.stmts(x.Then, base)
		thenDefined := c.defined
		jEnd := c.emit(Op{Code: OpJump})
		c.code[jElse].Dst = int32(len(c.code))
		c.defined = cloneSet(saved)
		c.stmts(x.Else, base)
		elseDefined := c.defined
		c.code[jEnd].Dst = int32(len(c.code))
		c.defined = saved
		for name := range thenDefined {
			if elseDefined[name] {
				c.defined[name] = true
			}
		}
	case *For:
		li := c.loopIdx[x]
		rLo, rHi, rStep := base, c.reg(base+1), c.reg(base+2)
		c.expr(x.Lo, rLo)
		c.expr(x.Hi, rHi)
		c.expr(x.Step, rStep)
		iv := c.newSlot(x.IV)
		savedIV, hadIV := c.ivSlot[x.IV]
		c.ivSlot[x.IV] = iv
		c.emit(Op{Code: OpLoopEnter, Dst: iv, A: rLo, B: rHi, C: rStep, Aux: li})
		test := c.emit(Op{Code: OpLoopTest, A: iv, B: rHi, Aux: li})
		c.emit(Op{Code: OpIterHead, Aux: li})
		savedDefined := cloneSet(c.defined)
		c.stmts(x.Body, c.reg(base+3))
		c.emit(Op{Code: OpLoopIncr, A: iv, B: rStep, Dst: test})
		c.code[test].Dst = int32(len(c.code))
		// The body may never have executed; its definitions don't count.
		c.defined = savedDefined
		if hadIV {
			c.ivSlot[x.IV] = savedIV
		} else {
			delete(c.ivSlot, x.IV)
		}
	default:
		// Unreachable: Validate rejects unknown statement types.
		panic(fmt.Sprintf("ir: compile of unknown statement %T", s))
	}
}

func (c *bcCompiler) expr(e Expr, dst int32) {
	c.reg(dst)
	switch x := e.(type) {
	case Const:
		c.emit(Op{Code: OpConst, Dst: dst, Val: x.V})
	case Param:
		c.emit(Op{Code: OpSlot, Dst: dst, A: c.paramSlot[x.Name]})
	case IV:
		c.emit(Op{Code: OpSlot, Dst: dst, A: c.ivSlot[x.Name]})
	case Local:
		slot := c.localSlot[x.Name]
		if c.defined[x.Name] {
			c.emit(Op{Code: OpSlot, Dst: dst, A: slot})
		} else {
			c.emit(Op{Code: OpSlotChecked, Dst: dst, A: slot})
		}
	case Load:
		c.expr(x.Idx, dst)
		c.emit(Op{Code: OpLoad, Dst: dst, A: dst, Aux: c.objIdx[x.Obj]})
	case Bin:
		c.expr(x.A, dst)
		c.expr(x.B, c.reg(dst+1))
		c.emit(Op{Code: OpBin, Dst: dst, A: dst, B: dst + 1,
			Aux: int32(x.Op), C: int32(x.Op.Class())})
	case Un:
		c.expr(x.A, dst)
		c.emit(Op{Code: OpUn, Dst: dst, A: dst, Aux: int32(x.Op), C: int32(x.Op.Class())})
	case Sel:
		c.expr(x.Cond, dst)
		c.expr(x.T, c.reg(dst+1))
		c.expr(x.F, c.reg(dst+2))
		c.emit(Op{Code: OpSel, Dst: dst, A: dst, B: dst + 1, C: dst + 2})
	default:
		panic(fmt.Sprintf("ir: compile of unknown expression %T", e))
	}
}

// Image is a serializable snapshot of a compiled program. Loop identities
// (*For pointers) cannot be serialized; they are rebound positionally —
// the loop table is in Loops(kernel.Body) order, which is deterministic
// for a given kernel text — when the image is attached to a kernel again
// via ProgramFromImage.
type Image struct {
	KernelName string
	Params     []string
	Objects    []ObjDecl
	SlotNames  []string
	NLoops     int
	NSlots     int
	NRegs      int
	Code       []Op
}

// Image snapshots the program for serialization.
func (p *Program) Image() Image {
	return Image{
		KernelName: p.name,
		Params:     p.params,
		Objects:    p.objs,
		SlotNames:  p.slotNames,
		NLoops:     len(p.loops),
		NSlots:     p.nSlots,
		NRegs:      p.nRegs,
		Code:       p.code,
	}
}

// ProgramFromImage attaches a deserialized image to kernel k, which must
// be structurally identical to the kernel the image was compiled from
// (same name, parameters, objects and loop count — the invariants a
// content-addressed store key guarantees). The kernel is validated so a
// corrupt pairing fails loudly rather than executing mismatched code.
func ProgramFromImage(img Image, k *Kernel) (*Program, error) {
	if err := Validate(k); err != nil {
		return nil, err
	}
	if img.KernelName != k.Name {
		return nil, fmt.Errorf("ir: program image for kernel %q bound to %q", img.KernelName, k.Name)
	}
	if len(img.Params) != len(k.Params) {
		return nil, fmt.Errorf("ir: program image for %q has %d params, kernel has %d",
			k.Name, len(img.Params), len(k.Params))
	}
	for i, name := range img.Params {
		if k.Params[i] != name {
			return nil, fmt.Errorf("ir: program image param %d is %q, kernel declares %q", i, name, k.Params[i])
		}
	}
	if len(img.Objects) != len(k.Objects) {
		return nil, fmt.Errorf("ir: program image for %q has %d objects, kernel has %d",
			k.Name, len(img.Objects), len(k.Objects))
	}
	for i, o := range img.Objects {
		if k.Objects[i] != o {
			return nil, fmt.Errorf("ir: program image object %d is %+v, kernel declares %+v", i, o, k.Objects[i])
		}
	}
	loops := Loops(k.Body)
	if len(loops) != img.NLoops {
		return nil, fmt.Errorf("ir: program image for %q has %d loops, kernel has %d",
			k.Name, img.NLoops, len(loops))
	}
	return &Program{
		kernel:    k,
		name:      img.KernelName,
		params:    img.Params,
		objs:      img.Objects,
		loops:     loops,
		slotNames: img.SlotNames,
		nSlots:    img.NSlots,
		nRegs:     img.NRegs,
		code:      img.Code,
	}, nil
}

// Rebind returns a shallow copy of the program attached to kernel k,
// which must be structurally identical to the original (same checks as
// ProgramFromImage). Cached programs compiled from one kernel instance
// are rebound to content-equal instances this way, so ByLoop counts key
// on the caller's own *For nodes.
func (p *Program) Rebind(k *Kernel) (*Program, error) {
	if k == p.kernel {
		return p, nil
	}
	return ProgramFromImage(p.Image(), k)
}

// progCache memoizes ProgramFor by kernel identity. Kernels are built
// once per process per workload/scale (and per thread variant), so the
// map stays small; sync.Map gives contention-free hits for the
// experiment matrix's concurrent workers.
var progCache sync.Map // *Kernel → *Program

// ProgramFor returns the process-wide cached compilation of k, compiling
// on first use. Compilation errors are not cached (they are cheap to
// rediscover and only occur on invalid kernels, which hot paths reject
// up front anyway).
func ProgramFor(k *Kernel) (*Program, error) {
	if p, ok := progCache.Load(k); ok {
		return p.(*Program), nil
	}
	p, err := NewProgram(k)
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(k, p)
	return actual.(*Program), nil
}
