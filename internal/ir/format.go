package ir

import (
	"fmt"
	"strings"
)

// Format renders a kernel as readable pseudo-C for diagnostics and the
// inspect tool.
func Format(k *Kernel) string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel %s(", k.Name)
	for i, p := range k.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p)
	}
	b.WriteString(")\n")
	for _, o := range k.Objects {
		fmt.Fprintf(&b, "  object %s[%d] (%dB elems)\n", o.Name, o.Len, o.ElemBytes)
	}
	formatStmts(&b, k.Body, 1)
	return b.String()
}

func formatStmts(b *strings.Builder, ss []Stmt, depth int) {
	pad := strings.Repeat("  ", depth)
	for _, s := range ss {
		switch x := s.(type) {
		case Let:
			fmt.Fprintf(b, "%s%s = %s\n", pad, x.Name, x.E)
		case Store:
			fmt.Fprintf(b, "%s%s[%s] = %s\n", pad, x.Obj, x.Idx, x.Val)
		case If:
			fmt.Fprintf(b, "%sif %s {\n", pad, x.Cond)
			formatStmts(b, x.Then, depth+1)
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", pad)
				formatStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", pad)
		case *For:
			kw := "for"
			if x.Parallel {
				kw = "parfor"
			}
			fmt.Fprintf(b, "%s%s %s = %s .. %s step %s {\n", pad, kw, x.IV, x.Lo, x.Hi, x.Step)
			formatStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", pad)
		default:
			fmt.Fprintf(b, "%s%v\n", pad, s)
		}
	}
}
