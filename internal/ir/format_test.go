package ir

import (
	"strings"
	"testing"
)

func TestFormatKernel(t *testing.T) {
	k := &Kernel{
		Name:    "demo",
		Params:  []string{"N"},
		Objects: []ObjDecl{{Name: "A", Len: 8, ElemBytes: 8}},
		Body: []Stmt{
			Set("s", C(0)),
			ParLoop("i", C(0), P("N"),
				Cond(GtE(Ld("A", V("i")), C(0)),
					[]Stmt{St("A", V("i"), C(1))},
					[]Stmt{St("A", V("i"), C(2))}),
			),
		},
	}
	out := Format(k)
	for _, want := range []string{
		"kernel demo(N)",
		"object A[8] (8B elems)",
		"parfor i = 0 .. $N step 1 {",
		"if (A[i] gt 0) {",
		"} else {",
		"A[i] = 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format missing %q:\n%s", want, out)
		}
	}
	// Nesting depth is reflected by indentation.
	if !strings.Contains(out, "      A[i] = 1") {
		t.Fatalf("indentation wrong:\n%s", out)
	}
}
