package ir

import (
	"fmt"
)

// Hooks receive dynamic-execution events from the interpreter. Any field may
// be nil. The host timing model and the coverage analysis (Table VI) are
// built on these callbacks.
type Hooks struct {
	// OnOp fires once per arithmetic operation (Bin/Un/Sel evaluation).
	OnOp func(class OpClass)
	// OnLoad fires after a successful load of obj[idx].
	OnLoad func(obj string, idx int)
	// OnStore fires after a successful store to obj[idx].
	OnStore func(obj string, idx int)
	// OnLoopIter fires at the start of every iteration of every loop.
	OnLoopIter func(f *For)
}

// LoopCounts aggregates dynamic activity attributed to one loop (activity of
// nested loops is attributed to the innermost enclosing loop only).
type LoopCounts struct {
	Ops    int64
	Loads  int64
	Stores int64
	Trips  int64
}

// Counts aggregates dynamic activity for a whole kernel run.
type Counts struct {
	Ops        int64 // arithmetic operations
	IntOps     int64
	ComplexOps int64
	FloatOps   int64
	Loads      int64
	Stores     int64
	LoopIters  int64 // loop iterations across all loops (control overhead)
	ByLoop     map[*For]*LoopCounts
}

// MemOps returns total loads+stores.
func (c *Counts) MemOps() int64 { return c.Loads + c.Stores }

// Instructions approximates the dynamic instruction count: arithmetic ops,
// memory ops, plus per-iteration loop control (compare+increment+branch ≈ 2).
func (c *Counts) Instructions() int64 {
	return c.Ops + c.Loads + c.Stores + 2*c.LoopIters
}

// runtimeError carries interpreter failures through panic/recover so the
// tree-walk stays uncluttered. It never escapes this package.
type runtimeError struct{ err error }

// binding is one name/value pair in a small linear-scan environment. The
// interpreter sits on the simulator's validation path for every run;
// kernels bind a handful of parameters, induction variables and locals,
// so scanning a short slice (newest first, which also gives shadowing)
// beats the string hash a map pays per lookup.
type binding struct {
	name string
	v    float64
}

func lookupBinding(env []binding, name string) (float64, bool) {
	for i := len(env) - 1; i >= 0; i-- {
		if env[i].name == name {
			return env[i].v, true
		}
	}
	return 0, false
}

func setBinding(env []binding, name string, v float64) []binding {
	for i := len(env) - 1; i >= 0; i-- {
		if env[i].name == name {
			env[i].v = v
			return env
		}
	}
	return append(env, binding{name: name, v: v})
}

// objSlot resolves one declared object to its backing storage.
type objSlot struct {
	name string
	len  int
	buf  []float64
}

type interp struct {
	k      *Kernel
	params []binding
	objs   []objSlot
	hooks  Hooks
	ivs    []binding
	locals []binding
	counts *Counts
	// cur is the LoopCounts of the innermost enclosing loop (nil at top
	// level): events attribute to it without a per-event map lookup.
	cur *LoopCounts
}

func (in *interp) fail(format string, args ...any) {
	panic(runtimeError{fmt.Errorf("ir: kernel %q: "+format, append([]any{in.k.Name}, args...)...)})
}

// Run interprets the kernel against mem (modified in place) and returns
// dynamic counts. mem must contain a slice of the declared length for every
// declared object; params must define every declared parameter.
func Run(k *Kernel, params map[string]float64, mem map[string][]float64, hooks *Hooks) (counts *Counts, err error) {
	if err := Validate(k); err != nil {
		return nil, err
	}
	for _, p := range k.Params {
		if _, ok := params[p]; !ok {
			return nil, fmt.Errorf("ir: kernel %q: missing parameter %q", k.Name, p)
		}
	}
	objs := make([]objSlot, 0, len(k.Objects))
	for _, o := range k.Objects {
		buf, ok := mem[o.Name]
		if !ok {
			return nil, fmt.Errorf("ir: kernel %q: missing memory object %q", k.Name, o.Name)
		}
		if len(buf) != o.Len {
			return nil, fmt.Errorf("ir: kernel %q: object %q has %d elements, declared %d",
				k.Name, o.Name, len(buf), o.Len)
		}
		objs = append(objs, objSlot{name: o.Name, len: o.Len, buf: buf})
	}
	pb := make([]binding, 0, len(k.Params))
	for _, p := range k.Params {
		pb = append(pb, binding{name: p, v: params[p]})
	}
	in := &interp{
		k:      k,
		params: pb,
		objs:   objs,
		counts: &Counts{ByLoop: map[*For]*LoopCounts{}},
	}
	if hooks != nil {
		in.hooks = *hooks
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runtimeError)
			if !ok {
				panic(r)
			}
			counts, err = nil, re.err
		}
	}()
	in.stmts(k.Body)
	return in.counts, nil
}

// slot resolves a declared object's backing storage by name.
func (in *interp) slot(obj string) *objSlot {
	for i := range in.objs {
		if in.objs[i].name == obj {
			return &in.objs[i]
		}
	}
	in.fail("access to undeclared object %q", obj)
	return nil
}

func (in *interp) stmts(body []Stmt) {
	for _, s := range body {
		in.stmt(s)
	}
}

func (in *interp) stmt(s Stmt) {
	switch x := s.(type) {
	case Let:
		in.locals = setBinding(in.locals, x.Name, in.eval(x.E))
	case Store:
		s := in.slot(x.Obj)
		idx := in.indexIn(s, x.Idx)
		v := in.eval(x.Val)
		s.buf[idx] = v
		in.counts.Stores++
		if lc := in.cur; lc != nil {
			lc.Stores++
		}
		if in.hooks.OnStore != nil {
			in.hooks.OnStore(x.Obj, idx)
		}
	case If:
		if in.eval(x.Cond) != 0 {
			in.stmts(x.Then)
		} else {
			in.stmts(x.Else)
		}
	case *For:
		in.forLoop(x)
	default:
		in.fail("unknown statement %T", s)
	}
}

func (in *interp) forLoop(f *For) {
	lo := in.eval(f.Lo)
	hi := in.eval(f.Hi)
	step := in.eval(f.Step)
	if step <= 0 {
		in.fail("loop %s has non-positive step %g", f.IV, step)
	}
	// Push the induction variable; backward binding lookups see the
	// innermost shadow, and truncating on exit restores any outer one.
	pos := len(in.ivs)
	in.ivs = append(in.ivs, binding{name: f.IV})
	savedCur := in.cur
	var lc *LoopCounts // resolved lazily so 0-trip loops leave no entry
	for v := lo; v < hi; v += step {
		in.ivs[pos].v = v
		in.counts.LoopIters++
		if lc == nil {
			if lc = in.counts.ByLoop[f]; lc == nil {
				lc = &LoopCounts{}
				in.counts.ByLoop[f] = lc
			}
			in.cur = lc
		}
		lc.Trips++
		if in.hooks.OnLoopIter != nil {
			in.hooks.OnLoopIter(f)
		}
		in.stmts(f.Body)
	}
	in.ivs = in.ivs[:pos]
	in.cur = savedCur
}

// indexIn evaluates and bounds-checks an index into a resolved object.
func (in *interp) indexIn(s *objSlot, e Expr) int {
	v := in.eval(e)
	idx := int(v)
	if idx < 0 || idx >= s.len {
		in.fail("index %d out of range for object %q (len %d)", idx, s.name, s.len)
	}
	return idx
}

func (in *interp) countOp(class OpClass) {
	in.counts.Ops++
	switch class {
	case ClassInt:
		in.counts.IntOps++
	case ClassComplex:
		in.counts.ComplexOps++
	case ClassFloat:
		in.counts.FloatOps++
	}
	if lc := in.cur; lc != nil {
		lc.Ops++
	}
	if in.hooks.OnOp != nil {
		in.hooks.OnOp(class)
	}
}

func (in *interp) eval(e Expr) float64 {
	switch x := e.(type) {
	case Const:
		return x.V
	case Param:
		v, ok := lookupBinding(in.params, x.Name)
		if !ok {
			in.fail("read of unknown parameter %q", x.Name)
		}
		return v
	case IV:
		v, ok := lookupBinding(in.ivs, x.Name)
		if !ok {
			in.fail("read of induction variable %q outside its loop", x.Name)
		}
		return v
	case Local:
		v, ok := lookupBinding(in.locals, x.Name)
		if !ok {
			in.fail("read of undefined local %q", x.Name)
		}
		return v
	case Load:
		s := in.slot(x.Obj)
		idx := in.indexIn(s, x.Idx)
		in.counts.Loads++
		if lc := in.cur; lc != nil {
			lc.Loads++
		}
		if in.hooks.OnLoad != nil {
			in.hooks.OnLoad(x.Obj, idx)
		}
		return s.buf[idx]
	case Bin:
		a := in.eval(x.A)
		b := in.eval(x.B)
		in.countOp(x.Op.Class())
		v, err := ApplyBin(x.Op, a, b)
		if err != nil {
			in.fail("%v", err)
		}
		return v
	case Un:
		a := in.eval(x.A)
		in.countOp(x.Op.Class())
		return ApplyUn(x.Op, a)
	case Sel:
		c := in.eval(x.Cond)
		t := in.eval(x.T)
		f := in.eval(x.F)
		in.countOp(ClassInt)
		if c != 0 {
			return t
		}
		return f
	default:
		in.fail("unknown expression %T", e)
		return 0
	}
}
