package ir

import (
	"math"
	"testing"
)

func run(t *testing.T, k *Kernel, params map[string]float64, mem map[string][]float64) *Counts {
	t.Helper()
	c, err := Run(k, params, mem, nil)
	if err != nil {
		t.Fatalf("Run(%s): %v", k.Name, err)
	}
	return c
}

func vecAddKernel(n int) *Kernel {
	return &Kernel{
		Name:   "vecadd",
		Params: []string{"N"},
		Objects: []ObjDecl{
			{Name: "A", Len: n, ElemBytes: 8},
			{Name: "B", Len: n, ElemBytes: 8},
			{Name: "C", Len: n, ElemBytes: 8},
		},
		Body: []Stmt{
			Loop("i", C(0), P("N"),
				St("C", V("i"), AddE(Ld("A", V("i")), Ld("B", V("i")))),
			),
		},
	}
}

func TestVecAdd(t *testing.T) {
	const n = 16
	k := vecAddKernel(n)
	mem := map[string][]float64{
		"A": make([]float64, n), "B": make([]float64, n), "C": make([]float64, n),
	}
	for i := 0; i < n; i++ {
		mem["A"][i] = float64(i)
		mem["B"][i] = float64(2 * i)
	}
	c := run(t, k, map[string]float64{"N": n}, mem)
	for i := 0; i < n; i++ {
		if mem["C"][i] != float64(3*i) {
			t.Fatalf("C[%d] = %g, want %g", i, mem["C"][i], float64(3*i))
		}
	}
	if c.Loads != 2*n || c.Stores != n || c.Ops != n {
		t.Fatalf("counts = loads %d stores %d ops %d, want %d/%d/%d", c.Loads, c.Stores, c.Ops, 2*n, n, n)
	}
	if c.LoopIters != n {
		t.Fatalf("LoopIters = %d, want %d", c.LoopIters, n)
	}
}

func TestNestedLoopsAndIf(t *testing.T) {
	// out[i*W+j] = (i+j) even ? 1 : 0 over 4x4.
	k := &Kernel{
		Name:    "checker",
		Params:  []string{"W"},
		Objects: []ObjDecl{{Name: "out", Len: 16, ElemBytes: 4}},
		Body: []Stmt{
			Loop("i", C(0), C(4),
				Loop("j", C(0), C(4),
					Cond(EqE(ModE(AddE(V("i"), V("j")), C(2)), C(0)),
						[]Stmt{St("out", Idx2(V("i"), P("W"), V("j")), C(1))},
						[]Stmt{St("out", Idx2(V("i"), P("W"), V("j")), C(0))},
					),
				),
			),
		},
	}
	mem := map[string][]float64{"out": make([]float64, 16)}
	run(t, k, map[string]float64{"W": 4}, mem)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if (i+j)%2 == 0 {
				want = 1
			}
			if mem["out"][i*4+j] != want {
				t.Fatalf("out[%d,%d] = %g, want %g", i, j, mem["out"][i*4+j], want)
			}
		}
	}
}

func TestLoopCarriedReduction(t *testing.T) {
	// sum over A written to S[0].
	k := &Kernel{
		Name:    "reduce",
		Params:  []string{"N"},
		Objects: []ObjDecl{{Name: "A", Len: 8, ElemBytes: 8}, {Name: "S", Len: 1, ElemBytes: 8}},
		Body: []Stmt{
			Set("sum", C(0)),
			Loop("i", C(0), P("N"),
				Set("sum", AddE(L("sum"), Ld("A", V("i")))),
			),
			St("S", C(0), L("sum")),
		},
	}
	mem := map[string][]float64{"A": {1, 2, 3, 4, 5, 6, 7, 8}, "S": {0}}
	run(t, k, map[string]float64{"N": 8}, mem)
	if mem["S"][0] != 36 {
		t.Fatalf("S[0] = %g, want 36", mem["S"][0])
	}
}

func TestPointerChaseSemantics(t *testing.T) {
	// p = next[p] repeated; a permutation cycle.
	next := []float64{3, 0, 1, 2}
	k := &Kernel{
		Name:    "chase",
		Params:  []string{"N"},
		Objects: []ObjDecl{{Name: "next", Len: 4, ElemBytes: 8}, {Name: "out", Len: 1, ElemBytes: 8}},
		Body: []Stmt{
			Set("p", C(0)),
			Loop("k", C(0), P("N"),
				Set("p", Ld("next", L("p"))),
			),
			St("out", C(0), L("p")),
		},
	}
	mem := map[string][]float64{"next": next, "out": {0}}
	run(t, k, map[string]float64{"N": 5}, mem)
	// 0 -> 3 -> 2 -> 1 -> 0 -> 3
	if mem["out"][0] != 3 {
		t.Fatalf("out = %g, want 3", mem["out"][0])
	}
}

func TestDynamicLoopBoundsFromMemory(t *testing.T) {
	// CSR-style: for each row, sum cols between rowptr[i] and rowptr[i+1].
	k := &Kernel{
		Name:   "csrsum",
		Params: []string{"R"},
		Objects: []ObjDecl{
			{Name: "rowptr", Len: 4, ElemBytes: 8},
			{Name: "vals", Len: 6, ElemBytes: 8},
			{Name: "out", Len: 3, ElemBytes: 8},
		},
		Body: []Stmt{
			Loop("i", C(0), P("R"),
				Set("acc", C(0)),
				Loop("e", Ld("rowptr", V("i")), Ld("rowptr", AddE(V("i"), C(1))),
					Set("acc", AddE(L("acc"), Ld("vals", V("e")))),
				),
				St("out", V("i"), L("acc")),
			),
		},
	}
	mem := map[string][]float64{
		"rowptr": {0, 2, 3, 6},
		"vals":   {1, 2, 10, 100, 200, 300},
		"out":    make([]float64, 3),
	}
	run(t, k, map[string]float64{"R": 3}, mem)
	want := []float64{3, 10, 600}
	for i, w := range want {
		if mem["out"][i] != w {
			t.Fatalf("out[%d] = %g, want %g", i, mem["out"][i], w)
		}
	}
}

func TestSelEvaluatesBothArms(t *testing.T) {
	k := &Kernel{
		Name:    "sel",
		Objects: []ObjDecl{{Name: "o", Len: 1, ElemBytes: 8}},
		Body: []Stmt{
			St("o", C(0), SelE(C(1), C(42), C(7))),
		},
	}
	mem := map[string][]float64{"o": {0}}
	c := run(t, k, nil, mem)
	if mem["o"][0] != 42 {
		t.Fatalf("o = %g, want 42", mem["o"][0])
	}
	if c.Ops != 1 {
		t.Fatalf("ops = %d, want 1 (the select)", c.Ops)
	}
}

func TestOutOfBoundsIsError(t *testing.T) {
	k := &Kernel{
		Name:    "oob",
		Objects: []ObjDecl{{Name: "A", Len: 2, ElemBytes: 8}},
		Body:    []Stmt{St("A", C(5), C(1))},
	}
	if _, err := Run(k, nil, map[string][]float64{"A": {0, 0}}, nil); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestDivisionByZeroIsError(t *testing.T) {
	k := &Kernel{
		Name:    "div0",
		Objects: []ObjDecl{{Name: "A", Len: 1, ElemBytes: 8}},
		Body:    []Stmt{St("A", C(0), DivE(C(1), C(0)))},
	}
	if _, err := Run(k, nil, map[string][]float64{"A": {0}}, nil); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestMissingParamIsError(t *testing.T) {
	k := vecAddKernel(4)
	mem := map[string][]float64{"A": make([]float64, 4), "B": make([]float64, 4), "C": make([]float64, 4)}
	if _, err := Run(k, nil, mem, nil); err == nil {
		t.Fatal("expected missing-parameter error")
	}
}

func TestWrongObjectLengthIsError(t *testing.T) {
	k := vecAddKernel(4)
	mem := map[string][]float64{"A": make([]float64, 3), "B": make([]float64, 4), "C": make([]float64, 4)}
	if _, err := Run(k, map[string]float64{"N": 4}, mem, nil); err == nil {
		t.Fatal("expected object-length error")
	}
}

func TestHooksFire(t *testing.T) {
	const n = 8
	k := vecAddKernel(n)
	mem := map[string][]float64{"A": make([]float64, n), "B": make([]float64, n), "C": make([]float64, n)}
	var loads, stores, ops, iters int
	hooks := &Hooks{
		OnLoad:     func(string, int) { loads++ },
		OnStore:    func(string, int) { stores++ },
		OnOp:       func(OpClass) { ops++ },
		OnLoopIter: func(*For) { iters++ },
	}
	if _, err := Run(k, map[string]float64{"N": n}, mem, hooks); err != nil {
		t.Fatal(err)
	}
	if loads != 2*n || stores != n || ops != n || iters != n {
		t.Fatalf("hooks: loads %d stores %d ops %d iters %d", loads, stores, ops, iters)
	}
}

func TestByLoopAttribution(t *testing.T) {
	inner := Loop("j", C(0), C(3), St("out", V("j"), MulE(V("i"), V("j"))))
	outer := Loop("i", C(0), C(4), inner)
	k := &Kernel{
		Name:    "attr",
		Objects: []ObjDecl{{Name: "out", Len: 3, ElemBytes: 8}},
		Body:    []Stmt{outer},
	}
	mem := map[string][]float64{"out": make([]float64, 3)}
	c := run(t, k, nil, mem)
	lc := c.ByLoop[inner]
	if lc == nil {
		t.Fatal("no counts for inner loop")
	}
	if lc.Trips != 12 || lc.Stores != 12 || lc.Ops != 12 {
		t.Fatalf("inner loop counts = %+v, want trips/stores/ops = 12", *lc)
	}
	oc := c.ByLoop[outer]
	if oc == nil || oc.Trips != 4 {
		t.Fatalf("outer loop trips = %+v, want 4", oc)
	}
	// Inner-loop work must not be attributed to the outer loop.
	if oc.Stores != 0 || oc.Ops != 0 {
		t.Fatalf("outer loop stole inner counts: %+v", *oc)
	}
}

func TestOpClassCounts(t *testing.T) {
	k := &Kernel{
		Name:    "classes",
		Objects: []ObjDecl{{Name: "o", Len: 1, ElemBytes: 8}},
		Body: []Stmt{
			St("o", C(0), AddE(MulE(C(2), C(3)), SqrtE(C(16)))),
		},
	}
	mem := map[string][]float64{"o": {0}}
	c := run(t, k, nil, mem)
	if c.IntOps != 1 || c.ComplexOps != 1 || c.FloatOps != 1 {
		t.Fatalf("class counts int/complex/float = %d/%d/%d, want 1/1/1", c.IntOps, c.ComplexOps, c.FloatOps)
	}
	if mem["o"][0] != 10 {
		t.Fatalf("o = %g, want 10", mem["o"][0])
	}
}

func TestMinMaxAbsSemantics(t *testing.T) {
	k := &Kernel{
		Name:    "mma",
		Objects: []ObjDecl{{Name: "o", Len: 3, ElemBytes: 8}},
		Body: []Stmt{
			St("o", C(0), MinE(C(-2), C(5))),
			St("o", C(1), MaxE(C(-2), C(5))),
			St("o", C(2), AbsE(C(-7))),
		},
	}
	mem := map[string][]float64{"o": make([]float64, 3)}
	run(t, k, nil, mem)
	if mem["o"][0] != -2 || mem["o"][1] != 5 || mem["o"][2] != 7 {
		t.Fatalf("min/max/abs = %v", mem["o"])
	}
}

func TestIVShadowOuterAfterLoop(t *testing.T) {
	// Same IV name in two sequential sibling loops is legal.
	k := &Kernel{
		Name:    "siblings",
		Objects: []ObjDecl{{Name: "o", Len: 2, ElemBytes: 8}},
		Body: []Stmt{
			Loop("i", C(0), C(2), St("o", V("i"), V("i"))),
			Loop("i", C(0), C(2), St("o", V("i"), AddE(Ld("o", V("i")), C(10)))),
		},
	}
	mem := map[string][]float64{"o": make([]float64, 2)}
	run(t, k, nil, mem)
	if mem["o"][0] != 10 || mem["o"][1] != 11 {
		t.Fatalf("o = %v", mem["o"])
	}
}

func TestInstructionsFormula(t *testing.T) {
	c := &Counts{Ops: 10, Loads: 4, Stores: 2, LoopIters: 3}
	if got := c.Instructions(); got != 10+4+2+6 {
		t.Fatalf("Instructions = %d", got)
	}
	if c.MemOps() != 6 {
		t.Fatalf("MemOps = %d", c.MemOps())
	}
}

func TestFloorAndMod(t *testing.T) {
	k := &Kernel{
		Name:    "fm",
		Objects: []ObjDecl{{Name: "o", Len: 2, ElemBytes: 8}},
		Body: []Stmt{
			St("o", C(0), FloorE(C(3.7))),
			St("o", C(1), ModE(C(17), C(5))),
		},
	}
	mem := map[string][]float64{"o": make([]float64, 2)}
	run(t, k, nil, mem)
	if mem["o"][0] != 3 || mem["o"][1] != 2 {
		t.Fatalf("floor/mod = %v", mem["o"])
	}
}

func TestComparisonOps(t *testing.T) {
	cases := []struct {
		op   BinOp
		a, b float64
		want float64
	}{
		{Lt, 1, 2, 1}, {Lt, 2, 2, 0},
		{Le, 2, 2, 1}, {Le, 3, 2, 0},
		{Gt, 3, 2, 1}, {Gt, 2, 2, 0},
		{Ge, 2, 2, 1}, {Ge, 1, 2, 0},
		{Eq, 2, 2, 1}, {Eq, 1, 2, 0},
		{Ne, 1, 2, 1}, {Ne, 2, 2, 0},
		{And, 1, 2, 1}, {And, 1, 0, 0},
		{Or, 0, 2, 1}, {Or, 0, 0, 0},
	}
	for _, tc := range cases {
		k := &Kernel{
			Name:    "cmp",
			Objects: []ObjDecl{{Name: "o", Len: 1, ElemBytes: 8}},
			Body:    []Stmt{St("o", C(0), Bin{Op: tc.op, A: C(tc.a), B: C(tc.b)})},
		}
		mem := map[string][]float64{"o": {math.NaN()}}
		run(t, k, nil, mem)
		if mem["o"][0] != tc.want {
			t.Errorf("%v(%g,%g) = %g, want %g", tc.op, tc.a, tc.b, mem["o"][0], tc.want)
		}
	}
}
