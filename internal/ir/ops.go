package ir

import (
	"errors"
	"math"
)

// ErrDivideByZero is returned by ApplyBin for Div/Mod with a zero divisor.
var ErrDivideByZero = errors.New("ir: division by zero")

// ApplyBin evaluates a binary operator on concrete values. It is the single
// definition of operator semantics shared by the interpreter, the scalar
// evaluator and the accelerator execution models.
func ApplyBin(op BinOp, a, b float64) (float64, error) {
	switch op {
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a / b, nil
	case Mod:
		if int64(b) == 0 {
			return 0, ErrDivideByZero
		}
		return float64(int64(a) % int64(b)), nil
	case Min:
		return math.Min(a, b), nil
	case Max:
		return math.Max(a, b), nil
	case Lt:
		return b2f(a < b), nil
	case Le:
		return b2f(a <= b), nil
	case Gt:
		return b2f(a > b), nil
	case Ge:
		return b2f(a >= b), nil
	case Eq:
		return b2f(a == b), nil
	case Ne:
		return b2f(a != b), nil
	case And:
		return b2f(a != 0 && b != 0), nil
	case Or:
		return b2f(a != 0 || b != 0), nil
	default:
		return 0, errors.New("ir: unknown binary operator")
	}
}

// ApplyUn evaluates a unary operator on a concrete value.
func ApplyUn(op UnOp, a float64) float64 {
	switch op {
	case Neg:
		return -a
	case Abs:
		return math.Abs(a)
	case Sqrt:
		return math.Sqrt(a)
	case Not:
		return b2f(a == 0)
	case Floor:
		return math.Floor(a)
	default:
		return 0
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
