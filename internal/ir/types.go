// Package ir defines the kernel intermediate representation consumed by the
// Dist-DA compiler and the reference interpreter used to validate simulated
// executions.
//
// A Kernel is an imperative loop nest over named memory objects. Index
// expressions are ordinary expressions; the compiler classifies them as
// streaming (affine in induction variables) or irregular (containing loads)
// exactly the way the paper's LLVM scalar-evolution pass would.
package ir

import "fmt"

// BinOp enumerates binary operators. Comparison operators yield 1.0 or 0.0.
type BinOp int

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Mod
	Min
	Max
	Lt
	Le
	Gt
	Ge
	Eq
	Ne
	And // logical: nonzero/nonzero
	Or
)

var binOpNames = [...]string{
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod",
	Min: "min", Max: "max", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Eq: "eq", Ne: "ne", And: "and", Or: "or",
}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// Class reports the functional-unit class an operator needs. The CGRA mapper
// and the area model distinguish integer, complex (mul/div) and floating
// point resources.
type OpClass int

const (
	ClassInt     OpClass = iota // add/sub/compare/logic
	ClassComplex                // mul, div, mod
	ClassFloat                  // sqrt and FP-marked arithmetic
)

// Class returns the functional-unit class of a binary operator.
func (op BinOp) Class() OpClass {
	switch op {
	case Mul, Div, Mod:
		return ClassComplex
	default:
		return ClassInt
	}
}

// UnOp enumerates unary operators.
type UnOp int

const (
	Neg UnOp = iota
	Abs
	Sqrt
	Not
	Floor
)

var unOpNames = [...]string{Neg: "neg", Abs: "abs", Sqrt: "sqrt", Not: "not", Floor: "floor"}

func (op UnOp) String() string {
	if int(op) < len(unOpNames) {
		return unOpNames[op]
	}
	return fmt.Sprintf("unop(%d)", int(op))
}

// Class returns the functional-unit class of a unary operator.
func (op UnOp) Class() OpClass {
	if op == Sqrt {
		return ClassFloat
	}
	return ClassInt
}

// Expr is an expression tree node. All values are float64; integer index
// arithmetic is exact for magnitudes below 2^53.
type Expr interface {
	isExpr()
	String() string
}

// Const is a literal value.
type Const struct{ V float64 }

// Param reads a scalar kernel parameter (loop bound, matrix width, ...).
// Parameters are fixed for a kernel invocation and reach accelerators via
// cp_set_rf.
type Param struct{ Name string }

// IV reads a loop induction variable by name.
type IV struct{ Name string }

// Local reads a mutable local variable introduced by Let.
type Local struct{ Name string }

// Load reads element Idx of memory object Obj.
type Load struct {
	Obj string
	Idx Expr
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Un applies a unary operator.
type Un struct {
	Op UnOp
	A  Expr
}

// Sel is a predicated select: Cond != 0 ? T : F. Both arms are evaluated;
// this mirrors the compiler's if-conversion (§V-A-2, "control-dependencies
// in the DFG are converted to data dependencies by predication").
type Sel struct {
	Cond, T, F Expr
}

func (Const) isExpr() {}
func (Param) isExpr() {}
func (IV) isExpr()    {}
func (Local) isExpr() {}
func (Load) isExpr()  {}
func (Bin) isExpr()   {}
func (Un) isExpr()    {}
func (Sel) isExpr()   {}

func (e Const) String() string { return fmt.Sprintf("%g", e.V) }
func (e Param) String() string { return "$" + e.Name }
func (e IV) String() string    { return e.Name }
func (e Local) String() string { return "%" + e.Name }
func (e Load) String() string  { return fmt.Sprintf("%s[%s]", e.Obj, e.Idx) }
func (e Bin) String() string   { return fmt.Sprintf("(%s %s %s)", e.A, e.Op, e.B) }
func (e Un) String() string    { return fmt.Sprintf("%s(%s)", e.Op, e.A) }
func (e Sel) String() string   { return fmt.Sprintf("sel(%s, %s, %s)", e.Cond, e.T, e.F) }

// Stmt is a statement node.
type Stmt interface {
	isStmt()
	String() string
}

// Let binds or rebinds a local variable. Rebinding the same name inside a
// loop creates a loop-carried dependence (reduction or pointer chase).
type Let struct {
	Name string
	E    Expr
}

// Store writes Val to element Idx of object Obj.
type Store struct {
	Obj string
	Idx Expr
	Val Expr
}

// If executes Then when Cond != 0, otherwise Else. The compiler predicates
// offloadable Ifs into Sel chains.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// For is a counted loop: for IV := Lo; IV < Hi; IV += Step.
// Parallel marks a loop whose iterations carry no cross-iteration
// dependences; the multithreading case study (§VI-D) schedules such
// iterations across threads. The flag corresponds to the paper's programmer
// annotation and is never inferred.
type For struct {
	IV       string
	Lo, Hi   Expr
	Step     Expr
	Body     []Stmt
	Parallel bool
}

func (Let) isStmt()   {}
func (Store) isStmt() {}
func (If) isStmt()    {}
func (*For) isStmt()  {}

func (s Let) String() string   { return fmt.Sprintf("%%%s = %s", s.Name, s.E) }
func (s Store) String() string { return fmt.Sprintf("%s[%s] = %s", s.Obj, s.Idx, s.Val) }
func (s If) String() string {
	return fmt.Sprintf("if %s { %d stmts } else { %d stmts }", s.Cond, len(s.Then), len(s.Else))
}
func (s *For) String() string {
	return fmt.Sprintf("for %s = %s..%s step %s { %d stmts }", s.IV, s.Lo, s.Hi, s.Step, len(s.Body))
}

// ObjDecl declares a memory object (application data structure). Len is the
// element count and ElemBytes the element width used for traffic accounting.
type ObjDecl struct {
	Name      string
	Len       int
	ElemBytes int
}

// Bytes returns the object footprint in bytes.
func (o ObjDecl) Bytes() int { return o.Len * o.ElemBytes }

// Kernel is a complete offloadable program: scalar parameters, memory
// objects and a top-level statement list (typically one loop nest).
type Kernel struct {
	Name    string
	Params  []string
	Objects []ObjDecl
	Body    []Stmt
}

// Object returns the declaration of the named object.
func (k *Kernel) Object(name string) (ObjDecl, bool) {
	for _, o := range k.Objects {
		if o.Name == name {
			return o, true
		}
	}
	return ObjDecl{}, false
}

// HasParam reports whether the kernel declares the named parameter.
func (k *Kernel) HasParam(name string) bool {
	for _, p := range k.Params {
		if p == name {
			return true
		}
	}
	return false
}
