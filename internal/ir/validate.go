package ir

import "fmt"

// Validate checks static well-formedness: objects and parameters referenced
// by the body are declared, object declarations are sane, induction
// variables are read only inside their loops, and locals are defined before
// first use on every straight-line path (If arms are checked independently;
// a local defined in only one arm may not be relied upon afterwards).
func Validate(k *Kernel) error {
	if k.Name == "" {
		return fmt.Errorf("ir: kernel has empty name")
	}
	seenObj := map[string]bool{}
	for _, o := range k.Objects {
		if o.Name == "" {
			return fmt.Errorf("ir: kernel %q: object with empty name", k.Name)
		}
		if seenObj[o.Name] {
			return fmt.Errorf("ir: kernel %q: duplicate object %q", k.Name, o.Name)
		}
		seenObj[o.Name] = true
		if o.Len <= 0 {
			return fmt.Errorf("ir: kernel %q: object %q has non-positive length %d", k.Name, o.Name, o.Len)
		}
		switch o.ElemBytes {
		case 1, 2, 4, 8:
		default:
			return fmt.Errorf("ir: kernel %q: object %q has unsupported element width %d", k.Name, o.Name, o.ElemBytes)
		}
	}
	seenParam := map[string]bool{}
	for _, p := range k.Params {
		if seenParam[p] {
			return fmt.Errorf("ir: kernel %q: duplicate parameter %q", k.Name, p)
		}
		seenParam[p] = true
	}
	v := &validator{k: k, ivs: map[string]bool{}, locals: map[string]bool{}}
	if err := v.stmts(k.Body); err != nil {
		return err
	}
	return nil
}

type validator struct {
	k      *Kernel
	ivs    map[string]bool
	locals map[string]bool
}

func (v *validator) errf(format string, args ...any) error {
	return fmt.Errorf("ir: kernel %q: "+format, append([]any{v.k.Name}, args...)...)
}

func (v *validator) stmts(body []Stmt) error {
	for _, s := range body {
		if err := v.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (v *validator) stmt(s Stmt) error {
	switch x := s.(type) {
	case Let:
		if x.Name == "" {
			return v.errf("let with empty name")
		}
		if err := v.expr(x.E); err != nil {
			return err
		}
		v.locals[x.Name] = true
		return nil
	case Store:
		if _, ok := v.k.Object(x.Obj); !ok {
			return v.errf("store to undeclared object %q", x.Obj)
		}
		if err := v.expr(x.Idx); err != nil {
			return err
		}
		return v.expr(x.Val)
	case If:
		if err := v.expr(x.Cond); err != nil {
			return err
		}
		// Check arms against independent snapshots; keep only definitions
		// common to both arms visible afterwards.
		base := cloneSet(v.locals)
		if err := v.stmts(x.Then); err != nil {
			return err
		}
		thenLocals := v.locals
		v.locals = cloneSet(base)
		if err := v.stmts(x.Else); err != nil {
			return err
		}
		elseLocals := v.locals
		v.locals = base
		for name := range thenLocals {
			if elseLocals[name] {
				v.locals[name] = true
			}
		}
		return nil
	case *For:
		if x.IV == "" {
			return v.errf("for with empty induction variable")
		}
		if v.ivs[x.IV] {
			return v.errf("induction variable %q shadows an enclosing loop", x.IV)
		}
		for _, e := range []Expr{x.Lo, x.Hi, x.Step} {
			if e == nil {
				return v.errf("loop %q has nil bound", x.IV)
			}
			if err := v.expr(e); err != nil {
				return err
			}
		}
		v.ivs[x.IV] = true
		err := v.stmts(x.Body)
		delete(v.ivs, x.IV)
		return err
	default:
		return v.errf("unknown statement %T", s)
	}
}

func (v *validator) expr(e Expr) error {
	var err error
	WalkExpr(e, func(x Expr) {
		if err != nil {
			return
		}
		switch n := x.(type) {
		case Param:
			if !v.k.HasParam(n.Name) {
				err = v.errf("read of undeclared parameter %q", n.Name)
			}
		case IV:
			if !v.ivs[n.Name] {
				err = v.errf("read of induction variable %q outside its loop", n.Name)
			}
		case Local:
			if !v.locals[n.Name] {
				err = v.errf("read of possibly-undefined local %q", n.Name)
			}
		case Load:
			if _, ok := v.k.Object(n.Obj); !ok {
				err = v.errf("load from undeclared object %q", n.Obj)
			}
		}
	})
	return err
}

func cloneSet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
