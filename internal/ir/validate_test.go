package ir

import "testing"

func wantInvalid(t *testing.T, k *Kernel, why string) {
	t.Helper()
	if err := Validate(k); err == nil {
		t.Fatalf("Validate accepted invalid kernel (%s)", why)
	}
}

func TestValidateAcceptsGoodKernel(t *testing.T) {
	if err := Validate(vecAddKernel(8)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	obj := []ObjDecl{{Name: "A", Len: 4, ElemBytes: 8}}
	wantInvalid(t, &Kernel{Name: "", Objects: obj}, "empty name")
	wantInvalid(t, &Kernel{Name: "k", Objects: []ObjDecl{{Name: "", Len: 4, ElemBytes: 8}}}, "empty object name")
	wantInvalid(t, &Kernel{Name: "k", Objects: []ObjDecl{{Name: "A", Len: 0, ElemBytes: 8}}}, "zero length")
	wantInvalid(t, &Kernel{Name: "k", Objects: []ObjDecl{{Name: "A", Len: 4, ElemBytes: 3}}}, "bad width")
	wantInvalid(t, &Kernel{Name: "k", Objects: []ObjDecl{{Name: "A", Len: 4, ElemBytes: 8}, {Name: "A", Len: 4, ElemBytes: 8}}}, "dup object")
	wantInvalid(t, &Kernel{Name: "k", Params: []string{"N", "N"}, Objects: obj}, "dup param")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{St("B", C(0), C(1))}}, "undeclared store object")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{St("A", Ld("B", C(0)), C(1))}}, "undeclared load object")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{St("A", P("N"), C(1))}}, "undeclared param")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{St("A", V("i"), C(1))}}, "IV outside loop")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{St("A", L("x"), C(1))}}, "undefined local")
	wantInvalid(t, &Kernel{Name: "k", Objects: obj, Body: []Stmt{
		Loop("i", C(0), C(2), Loop("i", C(0), C(2), St("A", V("i"), C(1)))),
	}}, "IV shadowing")
}

func TestValidateIVScopeEndsWithLoop(t *testing.T) {
	k := &Kernel{
		Name:    "scope",
		Objects: []ObjDecl{{Name: "A", Len: 4, ElemBytes: 8}},
		Body: []Stmt{
			Loop("i", C(0), C(2), St("A", V("i"), C(1))),
			St("A", V("i"), C(2)), // i no longer in scope
		},
	}
	wantInvalid(t, k, "IV used after loop")
}

func TestValidateLocalsAcrossIfArms(t *testing.T) {
	obj := []ObjDecl{{Name: "A", Len: 4, ElemBytes: 8}}
	// Local defined in both arms is visible afterwards.
	good := &Kernel{
		Name: "both", Objects: obj,
		Body: []Stmt{
			Cond(C(1),
				[]Stmt{Set("x", C(1))},
				[]Stmt{Set("x", C(2))}),
			St("A", C(0), L("x")),
		},
	}
	if err := Validate(good); err != nil {
		t.Fatalf("both-arms local rejected: %v", err)
	}
	// Local defined in only one arm is not.
	bad := &Kernel{
		Name: "one", Objects: obj,
		Body: []Stmt{
			Cond(C(1), []Stmt{Set("x", C(1))}, nil),
			St("A", C(0), L("x")),
		},
	}
	wantInvalid(t, bad, "one-arm local used after if")
}

func TestWalkHelpers(t *testing.T) {
	inner := Loop("j", C(0), C(2), St("B", V("j"), Ld("A", V("j"))))
	outer := Loop("i", C(0), C(2), inner)
	body := []Stmt{outer}

	loops := Loops(body)
	if len(loops) != 2 {
		t.Fatalf("Loops = %d, want 2", len(loops))
	}
	in := InnermostLoops(body)
	if len(in) != 1 || in[0] != inner {
		t.Fatalf("InnermostLoops wrong: %v", in)
	}
	if r := ObjectsRead(body); !r["A"] || r["B"] {
		t.Fatalf("ObjectsRead = %v", r)
	}
	if w := ObjectsWritten(body); !w["B"] || w["A"] {
		t.Fatalf("ObjectsWritten = %v", w)
	}
}

func TestExprCounters(t *testing.T) {
	e := AddE(MulE(Ld("A", V("i")), C(2)), Ld("B", V("i")))
	if got := ExprOps(e); got != 2 {
		t.Fatalf("ExprOps = %d, want 2", got)
	}
	if got := ExprLoads(e); got != 2 {
		t.Fatalf("ExprLoads = %d, want 2", got)
	}
}
