package ir

import "fmt"

// vm executes a compiled Program. One vm serves one Run call; the Program
// itself is shared and read-only.
type vm struct {
	p        *Program
	regs     []float64
	slots    []float64
	assigned []bool // per slot: has the local ever been assigned (params pre-set)
	bufs     [][]float64
	counts   *Counts
	cur      *LoopCounts   // innermost enclosing loop's counts (nil at top level)
	lc       []*LoopCounts // per loop-table index, resolved lazily like the interpreter
	curStack []*LoopCounts
	hooks    Hooks
}

func (v *vm) fail(format string, args ...any) {
	panic(runtimeError{fmt.Errorf("ir: kernel %q: "+format, append([]any{v.p.name}, args...)...)})
}

// Run executes the compiled program against mem (modified in place) and
// returns dynamic counts. Semantics — evaluation order, Counts, hook
// event sequences, error messages, stored data — are bit-identical to
// ir.Run on the same kernel; the differential tests in this package hold
// the two executors to that.
func (p *Program) Run(params map[string]float64, mem map[string][]float64, hooks *Hooks) (counts *Counts, err error) {
	for _, name := range p.params {
		if _, ok := params[name]; !ok {
			return nil, fmt.Errorf("ir: kernel %q: missing parameter %q", p.name, name)
		}
	}
	bufs := make([][]float64, len(p.objs))
	for i, o := range p.objs {
		buf, ok := mem[o.Name]
		if !ok {
			return nil, fmt.Errorf("ir: kernel %q: missing memory object %q", p.name, o.Name)
		}
		if len(buf) != o.Len {
			return nil, fmt.Errorf("ir: kernel %q: object %q has %d elements, declared %d",
				p.name, o.Name, len(buf), o.Len)
		}
		bufs[i] = buf
	}
	v := &vm{
		p:        p,
		regs:     make([]float64, p.nRegs),
		slots:    make([]float64, p.nSlots),
		assigned: make([]bool, p.nSlots),
		bufs:     bufs,
		counts:   &Counts{ByLoop: map[*For]*LoopCounts{}},
		lc:       make([]*LoopCounts, len(p.loops)),
	}
	for i, name := range p.params {
		v.slots[i] = params[name]
		v.assigned[i] = true
	}
	defer func() {
		if r := recover(); r != nil {
			re, ok := r.(runtimeError)
			if !ok {
				panic(r)
			}
			counts, err = nil, re.err
		}
	}()
	if hooks == nil {
		v.exec()
	} else {
		// The hooked variant pays the per-event nil checks the
		// interpreter pays; the hooks-off loop above pays none.
		v.hooks = *hooks
		v.execHooked()
	}
	return v.counts, nil
}

func (v *vm) countOp(class OpClass) {
	v.counts.Ops++
	switch class {
	case ClassInt:
		v.counts.IntOps++
	case ClassComplex:
		v.counts.ComplexOps++
	case ClassFloat:
		v.counts.FloatOps++
	}
	if lc := v.cur; lc != nil {
		lc.Ops++
	}
}

// iterHead performs the per-iteration accounting shared by both loops:
// the iteration count, lazy LoopCounts resolution (0-trip loops leave no
// ByLoop entry) and trip attribution.
func (v *vm) iterHead(li int32) *For {
	f := v.p.loops[li]
	v.counts.LoopIters++
	lc := v.lc[li]
	if lc == nil {
		if lc = v.counts.ByLoop[f]; lc == nil {
			lc = &LoopCounts{}
			v.counts.ByLoop[f] = lc
		}
		v.lc[li] = lc
	}
	v.cur = lc
	lc.Trips++
	return f
}

// exec is the hooks-off dispatch loop.
func (v *vm) exec() {
	code := v.p.code
	regs := v.regs
	slots := v.slots
	for pc := 0; pc < len(code); pc++ {
		op := &code[pc]
		switch op.Code {
		case OpConst:
			regs[op.Dst] = op.Val
		case OpSlot:
			regs[op.Dst] = slots[op.A]
		case OpSlotChecked:
			if !v.assigned[op.A] {
				v.fail("read of undefined local %q", v.p.slotNames[op.A])
			}
			regs[op.Dst] = slots[op.A]
		case OpSetSlot:
			slots[op.Dst] = regs[op.A]
			v.assigned[op.Dst] = true
		case OpLoad:
			o := &v.p.objs[op.Aux]
			idx := int(regs[op.A])
			if idx < 0 || idx >= o.Len {
				v.fail("index %d out of range for object %q (len %d)", idx, o.Name, o.Len)
			}
			v.counts.Loads++
			if lc := v.cur; lc != nil {
				lc.Loads++
			}
			regs[op.Dst] = v.bufs[op.Aux][idx]
		case OpStoreIdx:
			o := &v.p.objs[op.Aux]
			idx := int(regs[op.A])
			if idx < 0 || idx >= o.Len {
				v.fail("index %d out of range for object %q (len %d)", idx, o.Name, o.Len)
			}
		case OpStore:
			v.bufs[op.Aux][int(regs[op.A])] = regs[op.B]
			v.counts.Stores++
			if lc := v.cur; lc != nil {
				lc.Stores++
			}
		case OpBin:
			a, b := regs[op.A], regs[op.B]
			v.countOp(OpClass(op.C))
			var out float64
			switch BinOp(op.Aux) {
			case Add:
				out = a + b
			case Sub:
				out = a - b
			case Mul:
				out = a * b
			default:
				var err error
				out, err = ApplyBin(BinOp(op.Aux), a, b)
				if err != nil {
					v.fail("%v", err)
				}
			}
			regs[op.Dst] = out
		case OpUn:
			a := regs[op.A]
			v.countOp(OpClass(op.C))
			regs[op.Dst] = ApplyUn(UnOp(op.Aux), a)
		case OpSel:
			c, t, f := regs[op.A], regs[op.B], regs[op.C]
			v.countOp(ClassInt)
			if c != 0 {
				regs[op.Dst] = t
			} else {
				regs[op.Dst] = f
			}
		case OpJump:
			pc = int(op.Dst) - 1
		case OpJumpIfZero:
			if regs[op.A] == 0 {
				pc = int(op.Dst) - 1
			}
		case OpLoopEnter:
			step := regs[op.C]
			if step <= 0 {
				v.fail("loop %s has non-positive step %g", v.p.loops[op.Aux].IV, step)
			}
			slots[op.Dst] = regs[op.A]
			v.curStack = append(v.curStack, v.cur)
		case OpLoopTest:
			if !(slots[op.A] < regs[op.B]) {
				n := len(v.curStack) - 1
				v.cur = v.curStack[n]
				v.curStack = v.curStack[:n]
				pc = int(op.Dst) - 1
			}
		case OpIterHead:
			v.iterHead(op.Aux)
		case OpLoopIncr:
			slots[op.A] += regs[op.B]
			pc = int(op.Dst) - 1
		default:
			panic(fmt.Sprintf("ir: vm: invalid opcode %d at pc %d", op.Code, pc))
		}
	}
}

// execHooked mirrors exec with hook dispatch at the counted events. Kept
// as a separate loop so the hooks-off path carries no per-op nil checks.
func (v *vm) execHooked() {
	code := v.p.code
	regs := v.regs
	slots := v.slots
	for pc := 0; pc < len(code); pc++ {
		op := &code[pc]
		switch op.Code {
		case OpConst:
			regs[op.Dst] = op.Val
		case OpSlot:
			regs[op.Dst] = slots[op.A]
		case OpSlotChecked:
			if !v.assigned[op.A] {
				v.fail("read of undefined local %q", v.p.slotNames[op.A])
			}
			regs[op.Dst] = slots[op.A]
		case OpSetSlot:
			slots[op.Dst] = regs[op.A]
			v.assigned[op.Dst] = true
		case OpLoad:
			o := &v.p.objs[op.Aux]
			idx := int(regs[op.A])
			if idx < 0 || idx >= o.Len {
				v.fail("index %d out of range for object %q (len %d)", idx, o.Name, o.Len)
			}
			v.counts.Loads++
			if lc := v.cur; lc != nil {
				lc.Loads++
			}
			if v.hooks.OnLoad != nil {
				v.hooks.OnLoad(o.Name, idx)
			}
			regs[op.Dst] = v.bufs[op.Aux][idx]
		case OpStoreIdx:
			o := &v.p.objs[op.Aux]
			idx := int(regs[op.A])
			if idx < 0 || idx >= o.Len {
				v.fail("index %d out of range for object %q (len %d)", idx, o.Name, o.Len)
			}
		case OpStore:
			idx := int(regs[op.A])
			v.bufs[op.Aux][idx] = regs[op.B]
			v.counts.Stores++
			if lc := v.cur; lc != nil {
				lc.Stores++
			}
			if v.hooks.OnStore != nil {
				v.hooks.OnStore(v.p.objs[op.Aux].Name, idx)
			}
		case OpBin:
			a, b := regs[op.A], regs[op.B]
			class := OpClass(op.C)
			v.countOp(class)
			if v.hooks.OnOp != nil {
				v.hooks.OnOp(class)
			}
			var out float64
			switch BinOp(op.Aux) {
			case Add:
				out = a + b
			case Sub:
				out = a - b
			case Mul:
				out = a * b
			default:
				var err error
				out, err = ApplyBin(BinOp(op.Aux), a, b)
				if err != nil {
					v.fail("%v", err)
				}
			}
			regs[op.Dst] = out
		case OpUn:
			a := regs[op.A]
			class := OpClass(op.C)
			v.countOp(class)
			if v.hooks.OnOp != nil {
				v.hooks.OnOp(class)
			}
			regs[op.Dst] = ApplyUn(UnOp(op.Aux), a)
		case OpSel:
			c, t, f := regs[op.A], regs[op.B], regs[op.C]
			v.countOp(ClassInt)
			if v.hooks.OnOp != nil {
				v.hooks.OnOp(ClassInt)
			}
			if c != 0 {
				regs[op.Dst] = t
			} else {
				regs[op.Dst] = f
			}
		case OpJump:
			pc = int(op.Dst) - 1
		case OpJumpIfZero:
			if regs[op.A] == 0 {
				pc = int(op.Dst) - 1
			}
		case OpLoopEnter:
			step := regs[op.C]
			if step <= 0 {
				v.fail("loop %s has non-positive step %g", v.p.loops[op.Aux].IV, step)
			}
			slots[op.Dst] = regs[op.A]
			v.curStack = append(v.curStack, v.cur)
		case OpLoopTest:
			if !(slots[op.A] < regs[op.B]) {
				n := len(v.curStack) - 1
				v.cur = v.curStack[n]
				v.curStack = v.curStack[:n]
				pc = int(op.Dst) - 1
			}
		case OpIterHead:
			f := v.iterHead(op.Aux)
			if v.hooks.OnLoopIter != nil {
				v.hooks.OnLoopIter(f)
			}
		case OpLoopIncr:
			slots[op.A] += regs[op.B]
			pc = int(op.Dst) - 1
		default:
			panic(fmt.Sprintf("ir: vm: invalid opcode %d at pc %d", op.Code, pc))
		}
	}
}
