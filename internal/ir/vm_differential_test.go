package ir_test

// Differential test: the bytecode VM against the tree-walk interpreter
// over every workload kernel. The two executors must produce
// byte-identical Counts (including per-loop attribution), stored data,
// and hook event sequences — the VM is a drop-in replacement on the hot
// paths (sim validation, Tab6 reference runs) and any divergence would
// silently change simulated results.

import (
	"reflect"
	"testing"

	"distda/internal/ir"
	"distda/internal/workloads"
)

func allKernelWorkloads(s workloads.Scale) []*workloads.Workload {
	ws := workloads.All(s)
	ws = append(ws, workloads.SpMV(s), workloads.BFSMT(s), workloads.PathfinderMT(s))
	return ws
}

func cloneMem(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

type vmEvent struct {
	kind  string
	class ir.OpClass
	obj   string
	idx   int
	loop  *ir.For
}

func captureHooks(log *[]vmEvent) *ir.Hooks {
	return &ir.Hooks{
		OnOp:       func(class ir.OpClass) { *log = append(*log, vmEvent{kind: "op", class: class}) },
		OnLoad:     func(obj string, idx int) { *log = append(*log, vmEvent{kind: "load", obj: obj, idx: idx}) },
		OnStore:    func(obj string, idx int) { *log = append(*log, vmEvent{kind: "store", obj: obj, idx: idx}) },
		OnLoopIter: func(f *ir.For) { *log = append(*log, vmEvent{kind: "iter", loop: f}) },
	}
}

// TestVMDifferentialAllWorkloads runs every workload kernel through both
// executors, hooks off, and compares counts and data exactly.
func TestVMDifferentialAllWorkloads(t *testing.T) {
	for _, w := range allKernelWorkloads(workloads.ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			data := w.NewData()
			memI, memV := cloneMem(data), cloneMem(data)

			want, errI := ir.Run(w.Kernel, w.Params, memI, nil)
			prog, err := ir.ProgramFor(w.Kernel)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got, errV := prog.Run(w.Params, memV, nil)
			if (errI == nil) != (errV == nil) || (errI != nil && errI.Error() != errV.Error()) {
				t.Fatalf("error parity: interp=%v vm=%v", errI, errV)
			}
			if errI != nil {
				return
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("counts diverge:\ninterp: %+v\nvm:     %+v", want, got)
				for f, lc := range want.ByLoop {
					if !reflect.DeepEqual(lc, got.ByLoop[f]) {
						t.Errorf("  loop %s: interp %+v vm %+v", f.IV, lc, got.ByLoop[f])
					}
				}
			}
			for name := range memI {
				if !reflect.DeepEqual(memI[name], memV[name]) {
					t.Errorf("object %q diverges", name)
				}
			}
		})
	}
}

// TestVMDifferentialHooked repeats the comparison with hooks installed
// and additionally requires identical event sequences. This is the mode
// the access-pattern coverage analysis runs in.
func TestVMDifferentialHooked(t *testing.T) {
	for _, w := range allKernelWorkloads(workloads.ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			data := w.NewData()
			memI, memV := cloneMem(data), cloneMem(data)

			var logI, logV []vmEvent
			want, errI := ir.Run(w.Kernel, w.Params, memI, captureHooks(&logI))
			prog, err := ir.ProgramFor(w.Kernel)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			got, errV := prog.Run(w.Params, memV, captureHooks(&logV))
			if (errI == nil) != (errV == nil) || (errI != nil && errI.Error() != errV.Error()) {
				t.Fatalf("error parity: interp=%v vm=%v", errI, errV)
			}
			if errI != nil {
				return
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("counts diverge with hooks on")
			}
			if len(logI) != len(logV) {
				t.Fatalf("event counts diverge: interp %d, vm %d", len(logI), len(logV))
			}
			for i := range logI {
				if logI[i] != logV[i] {
					t.Fatalf("event %d diverges: interp %+v, vm %+v", i, logI[i], logV[i])
				}
			}
			for name := range memI {
				if !reflect.DeepEqual(memI[name], memV[name]) {
					t.Errorf("object %q diverges", name)
				}
			}
		})
	}
}

// BenchmarkExecutors compares the two executors on a representative
// kernel (pathfinder's DP wavefront: loads, stores, sels, a nested
// loop). Hooks off — the configuration the hot paths use.
func BenchmarkExecutors(b *testing.B) {
	w := workloads.Pathfinder(workloads.ScaleTest)
	prog, err := ir.ProgramFor(w.Kernel)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("TreeWalk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ir.Run(w.Kernel, w.Params, w.NewData(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Bytecode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run(w.Params, w.NewData(), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
