package ir

// Fuzz cross-check between the bytecode VM and the tree-walk
// interpreter. A deterministic generator builds random kernels that pass
// Validate — mirroring the validator's scoping rules for induction
// variables and locals — then both executors run the same inputs and
// must agree on counts, stored data, hook event sequences, and error
// strings. The generator deliberately produces runtime-error cases the
// validator cannot rule out: out-of-range indices, divide/mod by zero,
// non-positive steps, and reads of locals only defined inside 0-trip
// loop bodies.

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// memBitsEqual compares stored data bit-for-bit: NaNs produced
// identically by both executors must compare equal, and the invariant is
// bit-identical results, not IEEE ==.
func memBitsEqual(a, b map[string][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if math.Float64bits(va[i]) != math.Float64bits(vb[i]) {
				return false
			}
		}
	}
	return true
}

type kgen struct {
	r      *rand.Rand
	objs   []ObjDecl
	ivs    []string        // in-scope induction variables, innermost last
	locals map[string]bool // validator-style definedness
	depth  int             // loop nesting
	budget int             // remaining statement budget
	nextIV int
}

var fuzzParams = []string{"n", "a", "b"}

func genKernel(seed int64) (*Kernel, map[string]float64, map[string][]float64) {
	r := rand.New(rand.NewSource(seed))
	g := &kgen{
		r: r,
		objs: []ObjDecl{
			{Name: "o0", Len: 5 + r.Intn(4), ElemBytes: 8},
			{Name: "o1", Len: 8 + r.Intn(5), ElemBytes: 4},
		},
		locals: map[string]bool{},
		budget: 6 + r.Intn(8),
	}
	k := &Kernel{
		Name:    fmt.Sprintf("fuzz%d", seed),
		Params:  fuzzParams,
		Objects: g.objs,
		Body:    g.stmts(1 + r.Intn(4)),
	}
	vals := []float64{-2, -1, 0, 0.5, 1, 2, 3}
	params := map[string]float64{
		"n": float64(r.Intn(6)),
		"a": vals[r.Intn(len(vals))],
		"b": vals[r.Intn(len(vals))],
	}
	mem := map[string][]float64{}
	for _, o := range g.objs {
		buf := make([]float64, o.Len)
		for i := range buf {
			buf[i] = float64(r.Intn(7)) - 2
		}
		mem[o.Name] = buf
	}
	return k, params, mem
}

func (g *kgen) stmts(n int) []Stmt {
	var out []Stmt
	for i := 0; i < n && g.budget > 0; i++ {
		g.budget--
		out = append(out, g.stmt())
	}
	if len(out) == 0 {
		out = append(out, g.storeStmt())
	}
	return out
}

func (g *kgen) stmt() Stmt {
	switch c := g.r.Intn(10); {
	case c < 3:
		name := fmt.Sprintf("l%d", g.r.Intn(4))
		s := Set(name, g.expr(2))
		g.locals[name] = true
		return s
	case c < 6:
		return g.storeStmt()
	case c < 8:
		// If: arms checked against independent snapshots, only common
		// definitions persist — same rule as the validator.
		cond := g.expr(2)
		base := cloneSet(g.locals)
		then := g.stmts(1 + g.r.Intn(2))
		thenLocals := g.locals
		g.locals = cloneSet(base)
		els := g.stmts(1 + g.r.Intn(2))
		elseLocals := g.locals
		g.locals = base
		for name := range thenLocals {
			if elseLocals[name] {
				g.locals[name] = true
			}
		}
		return Cond(cond, then, els)
	default:
		if g.depth >= 3 {
			return g.storeStmt()
		}
		iv := fmt.Sprintf("iv%d", g.nextIV) // unique: never shadows
		g.nextIV++
		lo := Expr(C(float64(g.r.Intn(2))))
		hi := Expr(C(float64(g.r.Intn(6))))
		if g.r.Intn(4) == 0 {
			hi = P("n")
		}
		step := Expr(C(1))
		switch g.r.Intn(12) {
		case 0:
			step = C(2)
		case 1:
			step = C(0) // non-positive step: runtime error parity
		}
		g.ivs = append(g.ivs, iv)
		g.depth++
		body := g.stmts(1 + g.r.Intn(3))
		g.depth--
		g.ivs = g.ivs[:len(g.ivs)-1]
		// Loop-body definitions persist per the validator, even though a
		// 0-trip execution never makes them: later reads exercise the
		// undefined-local runtime error in both executors.
		return &For{IV: iv, Lo: lo, Hi: hi, Step: step, Body: body}
	}
}

func (g *kgen) storeStmt() Stmt {
	o := g.objs[g.r.Intn(len(g.objs))]
	return St(o.Name, g.idx(o.Len), g.expr(2))
}

// idx returns an index expression: usually clamped in-range via
// mod-of-abs, sometimes raw so out-of-range errors get coverage.
func (g *kgen) idx(length int) Expr {
	if g.r.Intn(5) == 0 {
		return g.expr(1)
	}
	return ModE(AbsE(g.expr(1)), C(float64(length)))
}

func (g *kgen) expr(depth int) Expr {
	if depth <= 0 || g.r.Intn(3) == 0 {
		return g.leaf()
	}
	switch g.r.Intn(8) {
	case 0, 1, 2:
		ops := []BinOp{Add, Sub, Mul, Div, Mod, Min, Max, Lt, Le, Gt, Ge, Eq, Ne}
		return Bin{Op: ops[g.r.Intn(len(ops))], A: g.expr(depth - 1), B: g.expr(depth - 1)}
	case 3:
		ops := []UnOp{Abs, Neg, Sqrt, Floor}
		return Un{Op: ops[g.r.Intn(len(ops))], A: g.expr(depth - 1)}
	case 4:
		return SelE(g.expr(depth-1), g.expr(depth-1), g.expr(depth-1))
	case 5, 6:
		o := g.objs[g.r.Intn(len(g.objs))]
		return Ld(o.Name, g.idx(o.Len))
	default:
		return g.leaf()
	}
}

func (g *kgen) leaf() Expr {
	switch c := g.r.Intn(8); {
	case c < 3:
		return C(float64(g.r.Intn(9)) - 2)
	case c < 5:
		return P(fuzzParams[g.r.Intn(len(fuzzParams))])
	case c < 7 && len(g.ivs) > 0:
		return V(g.ivs[g.r.Intn(len(g.ivs))])
	default:
		var defined []string
		for _, name := range []string{"l0", "l1", "l2", "l3"} {
			if g.locals[name] {
				defined = append(defined, name)
			}
		}
		if len(defined) > 0 {
			return L(defined[g.r.Intn(len(defined))])
		}
		return C(float64(g.r.Intn(5)))
	}
}

// crossCheck runs one generated kernel through both executors (hooks off
// and hooks on) and reports any divergence.
func crossCheck(t *testing.T, seed int64) {
	t.Helper()
	k, params, mem := genKernel(seed)
	if err := Validate(k); err != nil {
		t.Fatalf("seed %d: generator produced invalid kernel: %v\n%s", seed, err, Format(k))
	}
	p, err := NewProgram(k)
	if err != nil {
		t.Fatalf("seed %d: compile: %v\n%s", seed, err, Format(k))
	}

	memI, memV := copyMem(mem), copyMem(mem)
	cI, errI := Run(k, params, memI, nil)
	cV, errV := p.Run(params, memV, nil)
	diverge := func(stage, format string, args ...any) {
		t.Fatalf("seed %d: %s: %s\nkernel:\n%s", seed, stage, fmt.Sprintf(format, args...), Format(k))
	}
	if (errI == nil) != (errV == nil) || (errI != nil && errI.Error() != errV.Error()) {
		diverge("hooks off", "error parity: interp=%v vm=%v", errI, errV)
	}
	if errI == nil {
		if !reflect.DeepEqual(cI, cV) {
			diverge("hooks off", "counts: interp=%+v vm=%+v", cI, cV)
		}
		if !memBitsEqual(memI, memV) {
			diverge("hooks off", "data: interp=%v vm=%v", memI, memV)
		}
	}

	var logI, logV []hookEvent
	memI, memV = copyMem(mem), copyMem(mem)
	cI, errI = Run(k, params, memI, recordingHooks(&logI))
	cV, errV = p.Run(params, memV, recordingHooks(&logV))
	if (errI == nil) != (errV == nil) || (errI != nil && errI.Error() != errV.Error()) {
		diverge("hooked", "error parity: interp=%v vm=%v", errI, errV)
	}
	if !reflect.DeepEqual(logI, logV) {
		diverge("hooked", "event sequences: interp %d events, vm %d events", len(logI), len(logV))
	}
	if errI == nil {
		if !reflect.DeepEqual(cI, cV) {
			diverge("hooked", "counts: interp=%+v vm=%+v", cI, cV)
		}
		if !memBitsEqual(memI, memV) {
			diverge("hooked", "data: interp=%v vm=%v", memI, memV)
		}
	}
}

// TestVMFuzzCorpus sweeps a fixed seed range on every test run, so the
// cross-check runs in plain CI without -fuzz.
func TestVMFuzzCorpus(t *testing.T) {
	n := int64(500)
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < n; seed++ {
		crossCheck(t, seed)
	}
}

// FuzzVMvsInterp is the open-ended variant: go test -fuzz=FuzzVMvsInterp
// explores seeds beyond the fixed corpus.
func FuzzVMvsInterp(f *testing.F) {
	for seed := int64(0); seed < 16; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		crossCheck(t, seed)
	})
}
