package ir

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

// vmKernel is a small kernel exercising every statement and expression
// form: nested loops, ifs, sels, stores, locals, reductions.
func vmKernel() *Kernel {
	return &Kernel{
		Name:   "vmtest",
		Params: []string{"n", "m"},
		Objects: []ObjDecl{
			{Name: "a", Len: 16, ElemBytes: 8},
			{Name: "out", Len: 16, ElemBytes: 4},
		},
		Body: []Stmt{
			Set("acc", C(0)),
			Loop("i", C(0), P("n"),
				Set("v", Ld("a", V("i"))),
				Cond(GtE(L("v"), C(2)),
					[]Stmt{Set("acc", AddE(L("acc"), L("v")))},
					[]Stmt{Set("acc", SubE(L("acc"), C(1)))},
				),
				Loop("j", C(0), P("m"),
					St("out", ModE(AddE(V("i"), V("j")), C(16)),
						SelE(LtE(V("j"), C(2)), MulE(L("v"), C(2)), SqrtE(AbsE(L("v"))))),
				),
			),
			St("out", C(0), L("acc")),
		},
	}
}

func vmInputs() (map[string]float64, map[string][]float64) {
	params := map[string]float64{"n": 9, "m": 3}
	a := make([]float64, 16)
	for i := range a {
		a[i] = float64((i*7)%5) - 1
	}
	return params, map[string][]float64{"a": a, "out": make([]float64, 16)}
}

func copyMem(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, v := range m {
		c := make([]float64, len(v))
		copy(c, v)
		out[k] = c
	}
	return out
}

// TestVMMatchesInterp checks counts (including per-loop attribution) and
// stored data agree between the executors on the representative kernel.
func TestVMMatchesInterp(t *testing.T) {
	k := vmKernel()
	params, mem := vmInputs()
	memI, memV := copyMem(mem), copyMem(mem)

	want, err := Run(k, params, memI, nil)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	p, err := NewProgram(k)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got, err := p.Run(params, memV, nil)
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("counts diverge:\ninterp: %+v\nvm:     %+v", want, got)
	}
	if !reflect.DeepEqual(memI, memV) {
		t.Errorf("stored data diverges:\ninterp: %v\nvm:     %v", memI, memV)
	}
}

// hookEvent is one recorded hook callback.
type hookEvent struct {
	kind  string
	class OpClass
	obj   string
	idx   int
	loop  *For
}

func recordingHooks(log *[]hookEvent) *Hooks {
	return &Hooks{
		OnOp:       func(class OpClass) { *log = append(*log, hookEvent{kind: "op", class: class}) },
		OnLoad:     func(obj string, idx int) { *log = append(*log, hookEvent{kind: "load", obj: obj, idx: idx}) },
		OnStore:    func(obj string, idx int) { *log = append(*log, hookEvent{kind: "store", obj: obj, idx: idx}) },
		OnLoopIter: func(f *For) { *log = append(*log, hookEvent{kind: "iter", loop: f}) },
	}
}

// TestVMHookSequenceMatchesInterp requires the exact same hook event
// sequence from both executors — the coverage analysis depends on it.
func TestVMHookSequenceMatchesInterp(t *testing.T) {
	k := vmKernel()
	params, mem := vmInputs()

	var logI, logV []hookEvent
	if _, err := Run(k, params, copyMem(mem), recordingHooks(&logI)); err != nil {
		t.Fatalf("interp: %v", err)
	}
	p, err := NewProgram(k)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if _, err := p.Run(params, copyMem(mem), recordingHooks(&logV)); err != nil {
		t.Fatalf("vm: %v", err)
	}
	if !reflect.DeepEqual(logI, logV) {
		i := 0
		for i < len(logI) && i < len(logV) && logI[i] == logV[i] {
			i++
		}
		t.Fatalf("hook sequences diverge at %d (interp %d events, vm %d events)", i, len(logI), len(logV))
	}
}

// TestVMErrorParity drives both executors into every runtime and entry
// error and requires identical error strings.
func TestVMErrorParity(t *testing.T) {
	divK := &Kernel{
		Name:    "dividee",
		Params:  []string{"d"},
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body:    []Stmt{St("o", C(0), DivE(C(1), P("d")))},
	}
	oobK := &Kernel{
		Name:    "oob",
		Params:  []string{"i"},
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body:    []Stmt{Set("x", Ld("o", P("i")))},
	}
	stepK := &Kernel{
		Name:    "badstep",
		Params:  []string{"s"},
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body:    []Stmt{&For{IV: "i", Lo: C(0), Hi: C(4), Step: P("s"), Body: []Stmt{St("o", V("i"), C(1))}}},
	}
	undefK := &Kernel{
		Name:    "undef",
		Params:  []string{"n"},
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body: []Stmt{
			Loop("i", C(0), P("n"), Set("x", C(1))),
			// Validate accepts this (the loop body defines x), but a
			// 0-trip execution reaches the read with x unassigned.
			St("o", C(0), L("x")),
		},
	}
	mem := func() map[string][]float64 { return map[string][]float64{"o": make([]float64, 4)} }
	cases := []struct {
		name   string
		k      *Kernel
		params map[string]float64
		mem    map[string][]float64
	}{
		{"divide-by-zero", divK, map[string]float64{"d": 0}, mem()},
		{"mod-by-zero", &Kernel{Name: "modz", Params: []string{"d"},
			Objects: divK.Objects, Body: []Stmt{St("o", C(0), ModE(C(5), P("d")))}},
			map[string]float64{"d": 0.5}, mem()},
		{"index-oob-high", oobK, map[string]float64{"i": 9}, mem()},
		{"index-oob-negative", oobK, map[string]float64{"i": -1}, mem()},
		{"store-index-oob", &Kernel{Name: "soob", Params: []string{"i"},
			Objects: divK.Objects, Body: []Stmt{St("o", P("i"), C(1))}},
			map[string]float64{"i": 4}, mem()},
		{"non-positive-step", stepK, map[string]float64{"s": 0}, mem()},
		{"negative-step", stepK, map[string]float64{"s": -2}, mem()},
		{"undefined-local", undefK, map[string]float64{"n": 0}, mem()},
		{"missing-param", divK, map[string]float64{}, mem()},
		{"missing-object", divK, map[string]float64{"d": 1}, map[string][]float64{}},
		{"wrong-object-size", divK, map[string]float64{"d": 1},
			map[string][]float64{"o": make([]float64, 3)}},
	}
	for _, tc := range cases {
		_, errI := Run(tc.k, tc.params, copyMem(tc.mem), nil)
		p, err := NewProgram(tc.k)
		if err != nil {
			t.Fatalf("%s: compile: %v", tc.name, err)
		}
		_, errV := p.Run(tc.params, copyMem(tc.mem), nil)
		if errI == nil || errV == nil {
			t.Fatalf("%s: expected errors, interp=%v vm=%v", tc.name, errI, errV)
		}
		if errI.Error() != errV.Error() {
			t.Errorf("%s: error strings diverge:\ninterp: %v\nvm:     %v", tc.name, errI, errV)
		}
	}

	// Success case for the undefined-local kernel: one trip defines x.
	_, errI := Run(undefK, map[string]float64{"n": 1}, mem(), nil)
	p, _ := NewProgram(undefK)
	_, errV := p.Run(map[string]float64{"n": 1}, mem(), nil)
	if errI != nil || errV != nil {
		t.Errorf("undefined-local with n=1: interp=%v vm=%v", errI, errV)
	}
}

// TestVMInvalidKernelParity: NewProgram returns the same validation error
// ir.Run reports for an invalid kernel.
func TestVMInvalidKernelParity(t *testing.T) {
	bad := &Kernel{
		Name:    "bad",
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body:    []Stmt{St("o", C(0), L("nope"))},
	}
	_, errI := Run(bad, nil, map[string][]float64{"o": make([]float64, 4)}, nil)
	_, errV := NewProgram(bad)
	if errI == nil || errV == nil || errI.Error() != errV.Error() {
		t.Fatalf("validation parity: interp=%v compile=%v", errI, errV)
	}
}

// TestVMZeroTripLoopNoByLoopEntry preserves the interpreter's lazy
// ByLoop semantics: loops that never trip leave no entry.
func TestVMZeroTripLoopNoByLoopEntry(t *testing.T) {
	k := &Kernel{
		Name:    "zerotrip",
		Params:  []string{"n"},
		Objects: []ObjDecl{{Name: "o", Len: 4, ElemBytes: 8}},
		Body:    []Stmt{Loop("i", C(0), P("n"), St("o", V("i"), C(1)))},
	}
	p, err := NewProgram(k)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := p.Run(map[string]float64{"n": 0}, map[string][]float64{"o": make([]float64, 4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(counts.ByLoop) != 0 || counts.LoopIters != 0 {
		t.Fatalf("0-trip loop left counts: %+v", counts)
	}
}

// TestProgramImageRoundtrip serializes a program image through gob (the
// artifact store's wire format) and rebinds it to a structurally
// identical kernel; execution must match the original program.
func TestProgramImageRoundtrip(t *testing.T) {
	k := vmKernel()
	p, err := NewProgram(k)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.Image()); err != nil {
		t.Fatal(err)
	}
	var img Image
	if err := gob.NewDecoder(&buf).Decode(&img); err != nil {
		t.Fatal(err)
	}
	k2 := vmKernel() // structurally identical, distinct pointers
	p2, err := ProgramFromImage(img, k2)
	if err != nil {
		t.Fatal(err)
	}
	params, mem := vmInputs()
	mem2 := copyMem(mem)
	c1, err1 := p.Run(params, mem, nil)
	c2, err2 := p2.Run(params, mem2, nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("err1=%v err2=%v", err1, err2)
	}
	if !reflect.DeepEqual(mem, mem2) {
		t.Error("data diverges after image roundtrip")
	}
	// ByLoop keys differ by design (k vs k2 loop nodes); compare
	// positionally via the loop tables.
	if c1.Ops != c2.Ops || c1.Loads != c2.Loads || c1.Stores != c2.Stores || c1.LoopIters != c2.LoopIters {
		t.Errorf("counts diverge: %+v vs %+v", c1, c2)
	}
	l1, l2 := Loops(k.Body), Loops(k2.Body)
	for i := range l1 {
		if !reflect.DeepEqual(c1.ByLoop[l1[i]], c2.ByLoop[l2[i]]) {
			t.Errorf("loop %d counts diverge: %+v vs %+v", i, c1.ByLoop[l1[i]], c2.ByLoop[l2[i]])
		}
	}
}

// TestProgramFromImageRejectsMismatch: binding an image to a different
// kernel shape fails loudly.
func TestProgramFromImageRejectsMismatch(t *testing.T) {
	p, err := NewProgram(vmKernel())
	if err != nil {
		t.Fatal(err)
	}
	other := &Kernel{
		Name:    "vmtest",
		Params:  []string{"n"}, // fewer params
		Objects: vmKernel().Objects,
		Body:    []Stmt{St("out", C(0), P("n"))},
	}
	if _, err := ProgramFromImage(p.Image(), other); err == nil {
		t.Fatal("image bound to mismatched kernel without error")
	}
}

// TestProgramForMemoizes: same kernel pointer yields the same program.
func TestProgramForMemoizes(t *testing.T) {
	k := vmKernel()
	p1, err := ProgramFor(k)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ProgramFor(k)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("ProgramFor recompiled an already-cached kernel")
	}
}
