package ir

// WalkExpr calls fn for e and every sub-expression, pre-order.
func WalkExpr(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case Bin:
		WalkExpr(x.A, fn)
		WalkExpr(x.B, fn)
	case Un:
		WalkExpr(x.A, fn)
	case Sel:
		WalkExpr(x.Cond, fn)
		WalkExpr(x.T, fn)
		WalkExpr(x.F, fn)
	case Load:
		WalkExpr(x.Idx, fn)
	}
}

// WalkStmts calls stmtFn for every statement (pre-order, recursing into If
// arms and For bodies) and exprFn for every expression appearing in them.
// Either callback may be nil.
func WalkStmts(stmts []Stmt, stmtFn func(Stmt), exprFn func(Expr)) {
	we := func(e Expr) {
		if exprFn != nil {
			WalkExpr(e, exprFn)
		}
	}
	for _, s := range stmts {
		if stmtFn != nil {
			stmtFn(s)
		}
		switch x := s.(type) {
		case Let:
			we(x.E)
		case Store:
			we(x.Idx)
			we(x.Val)
		case If:
			we(x.Cond)
			WalkStmts(x.Then, stmtFn, exprFn)
			WalkStmts(x.Else, stmtFn, exprFn)
		case *For:
			we(x.Lo)
			we(x.Hi)
			we(x.Step)
			WalkStmts(x.Body, stmtFn, exprFn)
		}
	}
}

// Loops returns every For statement in the kernel, outermost first.
func Loops(stmts []Stmt) []*For {
	var out []*For
	WalkStmts(stmts, func(s Stmt) {
		if f, ok := s.(*For); ok {
			out = append(out, f)
		}
	}, nil)
	return out
}

// InnermostLoops returns loops that contain no nested For.
func InnermostLoops(stmts []Stmt) []*For {
	var out []*For
	for _, f := range Loops(stmts) {
		if len(Loops(f.Body)) == 0 {
			out = append(out, f)
		}
	}
	return out
}

// ObjectsRead returns the set of object names loaded anywhere in stmts.
func ObjectsRead(stmts []Stmt) map[string]bool {
	set := map[string]bool{}
	WalkStmts(stmts, nil, func(e Expr) {
		if ld, ok := e.(Load); ok {
			set[ld.Obj] = true
		}
	})
	return set
}

// ObjectsWritten returns the set of object names stored anywhere in stmts.
func ObjectsWritten(stmts []Stmt) map[string]bool {
	set := map[string]bool{}
	WalkStmts(stmts, func(s Stmt) {
		if st, ok := s.(Store); ok {
			set[st.Obj] = true
		}
	}, nil)
	return set
}

// ExprOps counts the arithmetic operations (Bin/Un/Sel) in an expression.
func ExprOps(e Expr) int {
	n := 0
	WalkExpr(e, func(x Expr) {
		switch x.(type) {
		case Bin, Un, Sel:
			n++
		}
	})
	return n
}

// ExprLoads counts the Load nodes in an expression.
func ExprLoads(e Expr) int {
	n := 0
	WalkExpr(e, func(x Expr) {
		if _, ok := x.(Load); ok {
			n++
		}
	})
	return n
}
