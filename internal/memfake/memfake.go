// Package memfake provides in-process implementations of the accessunit
// Memory and Fetcher interfaces for substrate tests that do not need the
// full cache hierarchy.
package memfake

import "fmt"

// Mem lays named float64 slices out contiguously with page gaps.
type Mem struct {
	Objs  map[string][]float64
	Base  map[string]int64
	ElemB int
}

// New builds a Mem with the given element width over objs.
func New(elemB int, objs map[string][]float64) *Mem {
	m := &Mem{Objs: objs, Base: map[string]int64{}, ElemB: elemB}
	addr := int64(0)
	for name, s := range objs {
		m.Base[name] = addr
		addr += int64(len(s)*elemB) + 4096
	}
	return m
}

func (m *Mem) check(obj string, idx int64) error {
	s, ok := m.Objs[obj]
	if !ok {
		return fmt.Errorf("memfake: no object %q", obj)
	}
	if idx < 0 || idx >= int64(len(s)) {
		return fmt.Errorf("memfake: index %d out of range for %q (len %d)", idx, obj, len(s))
	}
	return nil
}

// Read returns obj[idx].
func (m *Mem) Read(obj string, idx int64) (float64, error) {
	if err := m.check(obj, idx); err != nil {
		return 0, err
	}
	return m.Objs[obj][idx], nil
}

// Write sets obj[idx] = v.
func (m *Mem) Write(obj string, idx int64, v float64) error {
	if err := m.check(obj, idx); err != nil {
		return err
	}
	m.Objs[obj][idx] = v
	return nil
}

// AddrOf returns the flat address of obj[idx].
func (m *Mem) AddrOf(obj string, idx int64) (int64, error) {
	if err := m.check(obj, idx); err != nil {
		return 0, err
	}
	return m.Base[obj] + idx*int64(m.ElemB), nil
}

// ElemBytes returns the element width of obj.
func (m *Mem) ElemBytes(obj string) (int, error) {
	if _, ok := m.Objs[obj]; !ok {
		return 0, fmt.Errorf("memfake: no object %q", obj)
	}
	return m.ElemB, nil
}

// Fetch returns a fixed latency and counts accesses.
type Fetch struct {
	Lat      int
	Accesses int
	Bytes    int
}

// Access counts one access and returns the fixed latency.
func (f *Fetch) Access(cluster int, addr int64, write bool, bytes int) int {
	f.Accesses++
	f.Bytes += bytes
	return f.Lat
}

// LineBytes returns the 64 B line size.
func (f *Fetch) LineBytes() int { return 64 }
