package microcode

import (
	"strings"
	"testing"

	"distda/internal/ir"
)

func TestOpStringsDisassemble(t *testing.T) {
	p := Program{
		{Code: Consume, Dst: 1, Access: 0, Pred: -1},
		{Code: ALU, Dst: 2, A: 1, B: 1, Bin: ir.Add, Pred: -1},
		{Code: ALUI, Dst: 3, A: 2, Bin: ir.Mul, Imm: 4, Pred: -1},
		{Code: Un, Dst: 4, A: 3, UnOp: ir.Sqrt, Pred: -1},
		{Code: SelOp, Dst: 5, A: 1, B: 2, C: 4, Pred: -1},
		{Code: MovI, Dst: 6, Imm: 7, Pred: -1},
		{Code: Mov, Dst: 7, A: 6, Pred: -1},
		{Code: Iter, Dst: 8, Pred: -1},
		{Code: LoadObj, Dst: 9, A: 8, Obj: "A", Pred: -1},
		{Code: StoreObj, A: 8, B: 9, Obj: "B", Pred: 4},
		{Code: Produce, A: 9, Access: 1, Pred: -1},
		{Code: Nop, Pred: -1},
	}
	text := p.String()
	for _, want := range []string{"consume", "add", "mul", "sqrt", "iter", "A[r8]", "B[r8] = r9", "[r4]", "produce"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
	if err := p.Validate(2); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	if p.Bytes() != len(p)*OpBytes {
		t.Fatal("Bytes")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		op   Op
	}{
		{"consume bad access", Op{Code: Consume, Dst: 1, Access: 5, Pred: -1}},
		{"consume bad dst", Op{Code: Consume, Dst: -1, Access: 0, Pred: -1}},
		{"produce bad access", Op{Code: Produce, A: 1, Access: -1, Pred: -1}},
		{"loadobj no object", Op{Code: LoadObj, Dst: 1, A: 1, Pred: -1}},
		{"storeobj no object", Op{Code: StoreObj, A: 1, B: 1, Pred: -1}},
		{"alu reg range", Op{Code: ALU, Dst: NumRegs, A: 0, B: 0, Pred: -1}},
		{"sel cond range", Op{Code: SelOp, Dst: 1, A: 0, B: 0, C: NumRegs, Pred: -1}},
		{"pred range", Op{Code: Nop, Pred: NumRegs}},
		{"unknown opcode", Op{Code: Code(99), Pred: -1}},
	}
	for _, c := range cases {
		p := Program{c.op}
		if err := p.Validate(2); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestOpClass(t *testing.T) {
	if (Op{Code: ALU, Bin: ir.Mul}).Class() != ir.ClassComplex {
		t.Fatal("mul class")
	}
	if (Op{Code: Un, UnOp: ir.Sqrt}).Class() != ir.ClassFloat {
		t.Fatal("sqrt class")
	}
	if (Op{Code: Consume}).Class() != ir.ClassInt {
		t.Fatal("consume class")
	}
}

func TestNewOpHasNoPred(t *testing.T) {
	if NewOp(Nop).Pred != -1 {
		t.Fatal("NewOp pred")
	}
}
