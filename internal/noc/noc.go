// Package noc models the mesh network-on-chip connecting L3 cache clusters,
// the host tile and the memory controller. Messages are accounted per
// traffic class so Fig. 10's breakdown (host ctrl/data vs inter-accelerator
// ctrl/data) can be regenerated. Routing is dimension-ordered (XY) and
// latency is hops × per-hop delay plus flit serialization; credit-based
// back-pressure is abstracted as lossless transfer (the decoupling buffers
// at endpoints provide the rate matching, §IV-C).
package noc

import (
	"fmt"

	"distda/internal/energy"
)

// Class labels a message for Fig. 10 accounting.
type Class int

const (
	// HostCtrl: host-initiated request/response control (MMIO config,
	// cp_run, scalar register transfers).
	HostCtrl Class = iota
	// HostData: demand data moving on behalf of the host (cache fills,
	// writebacks, host load/store data).
	HostData
	// AccCtrl: inter-accelerator control (produce/consume handshakes,
	// credits, step notifications).
	AccCtrl
	// AccData: inter-accelerator operand data.
	AccData
	numClasses
)

var classNames = [...]string{"ctrl", "data", "acc_ctrl", "acc_data"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Classes lists all traffic classes in Fig. 10 order.
func Classes() []Class { return []Class{HostCtrl, HostData, AccCtrl, AccData} }

// Config describes the mesh.
type Config struct {
	Width, Height int // node grid; clusters occupy nodes 0..W*H-1
	FlitBytes     int
	HopCycles     int // router+link traversal per hop
}

// DefaultConfig is the 4x2 cluster mesh of Table III.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 2, FlitBytes: 16, HopCycles: 2}
}

// Mesh is the NoC model.
type Mesh struct {
	cfg   Config
	meter *energy.Meter

	Bytes    [numClasses]int64
	Messages [numClasses]int64
	FlitHops [numClasses]int64

	// linkFlits, when non-nil, counts flits traversing each directed link
	// (indexed from*Nodes()+to for adjacent node pairs along the XY route).
	// Allocated by EnableLinkProfile; purely observational.
	linkFlits []int64
}

// New returns a mesh with the given config, metering energy into m.
func New(cfg Config, m *energy.Meter) *Mesh {
	return &Mesh{cfg: cfg, meter: m}
}

// Nodes returns the node count.
func (n *Mesh) Nodes() int { return n.cfg.Width * n.cfg.Height }

// EnableLinkProfile turns on per-link flit attribution: Transfer walks each
// message's XY route and counts flits per directed link. Off by default —
// the route walk costs nothing unless enabled.
func (n *Mesh) EnableLinkProfile() {
	n.linkFlits = make([]int64, n.Nodes()*n.Nodes())
}

// LinkName returns the canonical directed-link label between adjacent nodes.
func (n *Mesh) LinkName(from, to int) string {
	return fmt.Sprintf("n%d->n%d", from, to)
}

// VisitLinks calls fn for every directed link with traffic, in ascending
// (from, to) order. No-op when link profiling is disabled.
func (n *Mesh) VisitLinks(fn func(from, to int, flits int64)) {
	if n.linkFlits == nil {
		return
	}
	nodes := n.Nodes()
	for from := 0; from < nodes; from++ {
		for to := 0; to < nodes; to++ {
			if f := n.linkFlits[from*nodes+to]; f > 0 {
				fn(from, to, f)
			}
		}
	}
}

// walkRoute visits the directed links of the XY route from a to b.
func (n *Mesh) walkRoute(a, b int, fn func(from, to int)) {
	w := n.cfg.Width
	cx, cy := a%w, a/w
	bx, by := b%w, b/w
	for cx != bx {
		nx := cx + sign(bx-cx)
		fn(cy*w+cx, cy*w+nx)
		cx = nx
	}
	for cy != by {
		ny := cy + sign(by-cy)
		fn(cy*w+cx, ny*w+cx)
		cy = ny
	}
}

// Hops returns the XY-routed hop count between nodes a and b.
func (n *Mesh) Hops(a, b int) int {
	ax, ay := a%n.cfg.Width, a/n.cfg.Width
	bx, by := b%n.cfg.Width, b/n.cfg.Width
	return abs(ax-bx) + abs(ay-by)
}

// Flits returns the flit count for a payload of the given bytes (minimum 1:
// even a pure control message occupies a head flit).
func (n *Mesh) Flits(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + n.cfg.FlitBytes - 1) / n.cfg.FlitBytes
}

// MinLatency returns the smallest latency any message can experience from
// node a to node b: one local cycle when co-located, otherwise the pure
// route traversal (hops × per-hop delay, single-flit payload). It performs
// no accounting — conservative window coordinators use it as the lookahead
// bound under which Transfer's per-message latency can never fall.
func (n *Mesh) MinLatency(a, b int) int {
	hops := n.Hops(a, b)
	if hops == 0 {
		return 1
	}
	return hops * n.cfg.HopCycles
}

// Transfer accounts for one message of the given class from node a to node
// b and returns its latency in cycles. Transfers between co-located
// endpoints (a == b) cost one local hop's latency but no flit-hop energy.
func (n *Mesh) Transfer(a, b, bytes int, class Class) int {
	if a < 0 || a >= n.Nodes() || b < 0 || b >= n.Nodes() {
		panic(fmt.Sprintf("noc: transfer between invalid nodes %d -> %d (mesh has %d)", a, b, n.Nodes()))
	}
	hops := n.Hops(a, b)
	flits := n.Flits(bytes)
	n.Bytes[class] += int64(bytes)
	n.Messages[class]++
	n.FlitHops[class] += int64(flits * hops)
	if n.meter != nil && hops > 0 {
		n.meter.AddN(energy.CatNoC, int64(flits*hops), n.meter.Table.NoCFlitHopPJ)
	}
	if n.linkFlits != nil && hops > 0 {
		nodes := n.Nodes()
		n.walkRoute(a, b, func(from, to int) {
			n.linkFlits[from*nodes+to] += int64(flits)
		})
	}
	if hops == 0 {
		return 1
	}
	return hops*n.cfg.HopCycles + (flits - 1)
}

// AddCounters folds another mesh's traffic counters into n: per-class
// bytes, messages and flit-hops add, and per-link flit profiles add when
// both meshes carry one. Every field is an integer count, so folding
// shard meshes in any order reproduces the serial totals exactly. Energy is
// not transferred — the shard's meter log owns it.
func (n *Mesh) AddCounters(o *Mesh) {
	if o == nil {
		return
	}
	for c := 0; c < int(numClasses); c++ {
		n.Bytes[c] += o.Bytes[c]
		n.Messages[c] += o.Messages[c]
		n.FlitHops[c] += o.FlitHops[c]
	}
	if n.linkFlits != nil && o.linkFlits != nil && len(n.linkFlits) == len(o.linkFlits) {
		for i, f := range o.linkFlits {
			n.linkFlits[i] += f
		}
	}
}

// TotalBytes returns bytes moved across all classes.
func (n *Mesh) TotalBytes() int64 {
	var t int64
	for _, b := range n.Bytes {
		t += b
	}
	return t
}

// BytesByClass returns the per-class byte counts in Fig. 10 order.
func (n *Mesh) BytesByClass() map[string]int64 {
	out := map[string]int64{}
	for _, c := range Classes() {
		out[c.String()] = n.Bytes[c]
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func sign(x int) int {
	if x < 0 {
		return -1
	}
	if x > 0 {
		return 1
	}
	return 0
}
