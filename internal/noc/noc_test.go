package noc

import (
	"testing"
	"testing/quick"

	"distda/internal/energy"
)

func TestHopsManhattan(t *testing.T) {
	m := New(DefaultConfig(), nil)
	// 4x2 mesh: node 0 = (0,0), node 7 = (3,1).
	if h := m.Hops(0, 7); h != 4 {
		t.Fatalf("Hops(0,7) = %d, want 4", h)
	}
	if h := m.Hops(3, 3); h != 0 {
		t.Fatalf("Hops(3,3) = %d, want 0", h)
	}
	if h := m.Hops(0, 1); h != 1 {
		t.Fatalf("Hops(0,1) = %d, want 1", h)
	}
	if h := m.Hops(1, 5); h != 1 {
		t.Fatalf("Hops(1,5) = %d, want 1", h)
	}
}

func TestHopsSymmetricProperty(t *testing.T) {
	m := New(DefaultConfig(), nil)
	f := func(a, b uint8) bool {
		x, y := int(a)%m.Nodes(), int(b)%m.Nodes()
		return m.Hops(x, y) == m.Hops(y, x) && m.Hops(x, y) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	m := New(DefaultConfig(), nil)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%m.Nodes(), int(b)%m.Nodes(), int(c)%m.Nodes()
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlits(t *testing.T) {
	m := New(DefaultConfig(), nil)
	cases := []struct{ bytes, want int }{{0, 1}, {1, 1}, {16, 1}, {17, 2}, {64, 4}}
	for _, c := range cases {
		if got := m.Flits(c.bytes); got != c.want {
			t.Fatalf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestTransferAccounting(t *testing.T) {
	meter := energy.NewMeter(energy.Default32nm())
	m := New(DefaultConfig(), meter)
	lat := m.Transfer(0, 7, 64, AccData)
	// 4 hops x 2 cycles + 3 extra flits of serialization.
	if lat != 11 {
		t.Fatalf("latency = %d, want 11", lat)
	}
	if m.Bytes[AccData] != 64 || m.Messages[AccData] != 1 || m.FlitHops[AccData] != 16 {
		t.Fatalf("accounting = %d/%d/%d", m.Bytes[AccData], m.Messages[AccData], m.FlitHops[AccData])
	}
	if got := meter.Get(energy.CatNoC); got != 16*meter.Table.NoCFlitHopPJ {
		t.Fatalf("energy = %g", got)
	}
	if m.TotalBytes() != 64 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestLocalTransferCostsNoEnergy(t *testing.T) {
	meter := energy.NewMeter(energy.Default32nm())
	m := New(DefaultConfig(), meter)
	lat := m.Transfer(3, 3, 64, HostData)
	if lat != 1 {
		t.Fatalf("local latency = %d, want 1", lat)
	}
	if meter.Get(energy.CatNoC) != 0 {
		t.Fatal("local transfer burned NoC energy")
	}
	if m.Bytes[HostData] != 64 {
		t.Fatal("local transfer bytes not counted")
	}
}

func TestTransferPanicsOnBadNode(t *testing.T) {
	m := New(DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid node")
		}
	}()
	m.Transfer(0, 99, 8, HostCtrl)
}

func TestClassNamesAndBytesByClass(t *testing.T) {
	m := New(DefaultConfig(), nil)
	m.Transfer(0, 1, 8, HostCtrl)
	m.Transfer(0, 1, 32, AccCtrl)
	by := m.BytesByClass()
	if by["ctrl"] != 8 || by["acc_ctrl"] != 32 || by["data"] != 0 || by["acc_data"] != 0 {
		t.Fatalf("BytesByClass = %v", by)
	}
	if len(Classes()) != 4 {
		t.Fatal("Classes() length")
	}
	if HostCtrl.String() != "ctrl" || AccData.String() != "acc_data" {
		t.Fatal("class names")
	}
}
