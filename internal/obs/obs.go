// Package obs is the wall-clock telemetry layer: a labeled
// counter/gauge/histogram registry with Prometheus text-format exposition,
// plus per-job lifecycle spans exportable as Chrome trace_event files.
//
// It is deliberately separate from internal/trace, which measures
// *simulated* time (base cycles on the run-global clock, bit-identical
// across runs). obs measures the *service*: how long jobs wait in the
// queue, how long stages take on the host's wall clock, how busy shard
// workers are. Nothing in this package ever feeds back into a simulation —
// recording is observational only, and the differential tests in
// internal/serve and internal/sim prove served bytes and simulated results
// are bit-identical with obs enabled or disabled.
//
// Concurrency and determinism: instruments record through atomics, so any
// number of goroutines may write concurrently. Counters and histogram
// bucket counts are integers, and histogram sums accumulate in fixed-point
// nanounits (1e-9), so the merged value of a fixed multiset of observations
// is identical regardless of arrival order or worker count — the exposition
// bytes for a given set of observations are deterministic.
//
// The disabled state is a nil *Registry: it hands out nil vectors, which
// hand out nil instruments, whose recording methods no-op — so
// instrumentation is unconditional at call sites and costs a nil check when
// off (bounded at <=2% by TestDisabledObsOverhead, in the style of the
// engine's TestDisabledTracerOverhead).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is a metric family's type.
type Kind int

// Metric family kinds, matching the Prometheus TYPE names.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds: half a millisecond through one minute, roughly 2-2.5x apart.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Registry is a set of named metric families. The zero value is not usable;
// construct with New. A nil *Registry is the disabled state: every method
// is safe to call and every instrument it hands out no-ops.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// New returns an enabled registry.
func New() *Registry {
	return &Registry{fam: map[string]*family{}}
}

// family is one named metric with a fixed label schema. Series are created
// lazily per label-value tuple.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // label names, exposition order
	bounds  []float64 // histogram bucket upper bounds (ascending)
	seconds bool      // counter accumulates nanoseconds, rendered as seconds

	mu     sync.Mutex
	series map[string]*series
}

// series is one (family, label values) instrument. Exactly one of the
// value holders is used, per the family kind.
type series struct {
	values []string
	c      Counter
	g      Gauge
	h      Histogram
}

// register returns the named family, creating it on first use. Registering
// the same name with a different kind or label schema is a programming
// error and panics — families are process-lifetime singletons.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64, seconds bool) *family {
	if err := checkName(name); err != nil {
		panic("obs: " + err.Error())
	}
	for _, l := range labels {
		// Label names follow the metric-name grammar minus the colon.
		if err := checkName(l); err != nil || strings.Contains(l, ":") {
			panic(fmt.Sprintf("obs: invalid label name %q", l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fam[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: %s re-registered with a different schema", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: bounds, seconds: seconds,
		series: map[string]*series{},
	}
	r.fam[name] = f
	return f
}

// get returns the series for the given label values, creating it lazily.
func (f *family) get(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s takes %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...)}
		if f.kind == KindHistogram {
			s.h.bounds = f.bounds
			s.h.buckets = make([]atomic.Int64, len(f.bounds)+1)
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or returns) a counter family. A counter only goes up;
// the rendered value is the accumulated integer count. Nil on a nil
// registry.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil, false)}
}

// SecondsCounter registers a counter family that accumulates durations
// (internally integer nanoseconds, so concurrent adds merge
// deterministically) and renders as float seconds. Record through
// Counter.AddDuration. Nil on a nil registry.
func (r *Registry) SecondsCounter(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, KindCounter, labels, nil, true)}
}

// Gauge registers (or returns) a gauge family: a last-written float value.
// Nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, KindGauge, labels, nil, false)}
}

// Histogram registers (or returns) a histogram family with the given
// bucket upper bounds (nil selects DefBuckets; bounds must be ascending).
// Nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: %s bucket bounds not ascending", name))
		}
	}
	return &HistogramVec{fam: r.register(name, help, KindHistogram, labels, buckets, false)}
}

// CounterVec is a counter family handle; With resolves one labeled series.
// Nil-safe.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values (in the family's
// label order), creating the series on first use. Nil on a nil vector.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return &v.fam.get(values).c
}

// GaugeVec is a gauge family handle. Nil-safe.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values. Nil on a nil vector.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return &v.fam.get(values).g
}

// HistogramVec is a histogram family handle. Nil-safe.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values. Nil on a nil
// vector.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return &v.fam.get(values).h
}

// Counter is a monotonically increasing integer metric (or, for
// SecondsCounter families, an accumulated duration in nanoseconds).
// All methods are atomic and nil-receiver safe.
type Counter struct{ n atomic.Int64 }

// Add accumulates n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration accumulates d's nanoseconds — the recording method for
// SecondsCounter families.
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Store overwrites the accumulated value. It exists for scrape-time
// mirroring of cumulative counters owned by another subsystem (the
// artifact caches); normal instrumentation should only Add.
func (c *Counter) Store(v int64) {
	if c == nil {
		return
	}
	c.n.Store(v)
}

// Value returns the accumulated count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value float metric. Atomic and nil-receiver safe.
type Gauge struct{ bits atomic.Uint64 }

// Set records the value (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last set value (0 on nil or never-set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram. Observations land in the first
// bucket whose upper bound is >= the value (cumulative rendering adds them
// up); the sum accumulates in fixed-point nanounits so concurrent
// observation order never changes the rendered bytes. Atomic and
// nil-receiver safe.
type Histogram struct {
	bounds   []float64
	buckets  []atomic.Int64 // len(bounds)+1; last is +Inf
	sumNanos atomic.Int64   // fixed-point sum, 1e-9 units
}

// Observe records one sample (no-op on nil). For latency histograms the
// unit is seconds.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(math.Round(v * 1e9)))
}

// ObserveDuration records d as seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, d.Seconds())
	h.buckets[i].Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNanos.Load()) / 1e9
}

// checkName validates a metric or label name against the Prometheus
// grammar: [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}
