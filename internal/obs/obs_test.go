package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Jobs.", "outcome")
	c.With("done").Inc()
	c.With("done").Add(2)
	c.With("failed").Inc()
	if got := c.With("done").Value(); got != 3 {
		t.Fatalf("done = %d, want 3", got)
	}
	if got := c.With("failed").Value(); got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
}

func TestSecondsCounter(t *testing.T) {
	r := New()
	c := r.SecondsCounter("busy_seconds_total", "Busy.", "island")
	c.With("0").AddDuration(1500 * time.Millisecond)
	c.With("0").AddDuration(500 * time.Millisecond)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `busy_seconds_total{island="0"} 2`) {
		t.Fatalf("seconds counter not rendered as seconds:\n%s", buf.String())
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("queue_depth", "Depth.")
	g.With().Set(7)
	if got := g.With().Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
	g.With().Set(3)
	if got := g.With().Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.With().Observe(v)
	}
	hh := h.With()
	if got := hh.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got, want := hh.Sum(), 55.65; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Bucket membership: <=0.1 gets 0.05 and 0.1 (bound inclusive),
	// <=1 gets 0.5, <=10 gets 5, +Inf gets 50.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := hh.buckets[i].Load(); got != w {
			t.Fatalf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "Latency.", nil)
	h.With().ObserveDuration(3 * time.Millisecond)
	if got := h.With().Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	c := r.Counter("a", "A.", "l")
	g := r.Gauge("b", "B.")
	h := r.Histogram("c", "C.", nil)
	sc := r.SecondsCounter("d", "D.")
	c.With("x").Inc()
	c.With("x").Add(5)
	sc.With().AddDuration(time.Second)
	g.With().Set(1)
	h.With().Observe(1)
	h.With().ObserveDuration(time.Second)
	if c.With("x").Value() != 0 || g.With().Value() != 0 || h.With().Count() != 0 || h.With().Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry exposition not empty: %q", buf.String())
	}
}

func TestReRegisterSameSchema(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "X.", "l")
	b := r.Counter("x_total", "X.", "l")
	a.With("v").Inc()
	b.With("v").Inc()
	if got := a.With("v").Value(); got != 2 {
		t.Fatalf("re-registered family not shared: %d", got)
	}
}

func TestReRegisterMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "X.", "l")
	for _, fn := range []func(){
		func() { r.Gauge("x_total", "X.", "l") },
		func() { r.Counter("x_total", "X.", "other") },
		func() { r.Counter("x_total", "X.", "l", "extra") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("schema mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestBadNamesPanic(t *testing.T) {
	r := New()
	for _, fn := range []func(){
		func() { r.Counter("9bad", "X.") },
		func() { r.Counter("has space", "X.") },
		func() { r.Counter("", "X.") },
		func() { r.Counter("ok_total", "X.", "bad-label") },
		func() { r.Counter("ok2_total", "X.", "bad:label") },
		func() { r.Histogram("h", "X.", []float64{2, 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid name/bounds did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestWrongLabelCountPanics(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "X.", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	c.With("only-one")
}

// TestConcurrentDeterminism records a fixed multiset of observations from
// k goroutines for several k and asserts the exposition bytes are
// identical: counters are integers and histogram sums are fixed-point, so
// arrival order and worker count must not change the rendered output.
func TestConcurrentDeterminism(t *testing.T) {
	render := func(workers int) string {
		r := New()
		c := r.Counter("jobs_total", "Jobs.", "outcome", "tenant")
		h := r.Histogram("stage_seconds", "Stages.", nil, "stage")
		s := r.SecondsCounter("busy_seconds_total", "Busy.", "island")
		type ob struct {
			outcome, tenant, stage string
			v                      float64
		}
		var all []ob
		for i := 0; i < 240; i++ {
			all = append(all, ob{
				outcome: []string{"done", "failed", "cache_hit"}[i%3],
				tenant:  []string{"a", "b"}[i%2],
				stage:   []string{"queued", "executing", "rendering"}[i%3],
				v:       float64(i%17) * 0.013,
			})
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(all); i += workers {
					o := all[i]
					c.With(o.outcome, o.tenant).Inc()
					h.With(o.stage).Observe(o.v)
					s.With(fmt.Sprint(i % 4)).AddDuration(time.Duration(o.v * 1e9))
				}
			}(w)
		}
		wg.Wait()
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	base := render(1)
	for _, k := range []int{2, 4, 8} {
		if got := render(k); got != base {
			t.Fatalf("exposition differs at %d workers:\n--- 1 worker ---\n%s\n--- %d workers ---\n%s", k, base, k, got)
		}
	}
}
