package obs

import (
	"testing"
	"time"
)

// The workload stands in for the serve hot path: stages of real work with
// telemetry calls between them, exactly as the job path makes them with
// telemetry disabled (nil counter Inc, nil histogram Observe, nil span
// list Open/Close). Instrumentation density matches the real path — per
// stage, not per instruction.
const (
	workStages   = 4_000
	workPerStage = 512
)

//go:noinline
func stageWork(seed uint64) uint64 {
	acc := seed
	for i := 0; i < workPerStage; i++ {
		acc = acc*2654435761 + uint64(i)
	}
	return acc
}

//go:noinline
func plainLoop() uint64 {
	var acc uint64 = 1
	for i := 0; i < workStages; i++ {
		acc = stageWork(acc)
	}
	return acc
}

//go:noinline
func instrumentedLoop(c *Counter, h *Histogram, l *SpanList) uint64 {
	var acc uint64 = 1
	for i := 0; i < workStages; i++ {
		sp := l.Open("stage")
		acc = stageWork(acc)
		l.Close(sp)
		c.Inc()
		h.Observe(float64(i))
	}
	return acc
}

var sinkU64 uint64

// TestDisabledObsOverhead asserts the disabled (nil-registry) recording
// path stays within 2% of the uninstrumented loop — the obs analogue of
// the engine's TestDisabledTracerOverhead, same methodology: interleaved
// trials, best-of-N, retry on marginal results, skipped under -short.
func TestDisabledObsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison; skipped under -short")
	}
	const (
		trials = 11
		reps   = 6
		budget = 1.02 // acceptance: <= 2% disabled-path overhead
	)
	var r *Registry // disabled
	c := r.Counter("jobs_total", "Jobs.").With()
	h := r.Histogram("lat", "Lat.", nil).With()
	var l *SpanList

	timePlain := func() time.Duration {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			sinkU64 += plainLoop()
		}
		return time.Since(t0)
	}
	timeInstrumented := func() time.Duration {
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			sinkU64 += instrumentedLoop(c, h, l)
		}
		return time.Since(t0)
	}

	measure := func() (base, cur time.Duration) {
		base, cur = time.Duration(1<<62), time.Duration(1<<62)
		timePlain()
		timeInstrumented()
		for i := 0; i < trials; i++ {
			if d := timePlain(); d < base {
				base = d
			}
			if d := timeInstrumented(); d < cur {
				cur = d
			}
		}
		return base, cur
	}

	var ratio float64
	for attempt := 0; attempt < 3; attempt++ {
		base, cur := measure()
		ratio = float64(cur) / float64(base)
		t.Logf("attempt %d: plain %v, instrumented %v, ratio %.4f", attempt, base, cur, ratio)
		if ratio <= budget {
			return
		}
	}
	t.Errorf("disabled-obs overhead %.2f%% exceeds 2%% budget", 100*(ratio-1))
}

func BenchmarkDisabledCounterInc(b *testing.B) {
	var r *Registry
	c := r.Counter("x", "X.").With()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	r := New()
	c := r.Counter("x", "X.").With()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("x", "X.", nil).With()
	for i := 0; i < b.N; i++ {
		h.Observe(0.01)
	}
}
