package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders the registry in the Prometheus text exposition
// format. The output is deterministic: families sort by name, series sort
// by their label-value tuple, labels render in registration order, and
// every family gets HELP and TYPE lines. A nil registry writes nothing
// (a valid, empty exposition).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.Lock()
	fams := make([]*family, 0, len(r.fam))
	for _, f := range r.fam {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		f.mu.Lock()
		ser := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ser = append(ser, s)
		}
		f.mu.Unlock()
		if len(ser) == 0 {
			continue
		}
		sort.Slice(ser, func(i, j int) bool {
			a, b := ser[i].values, ser[j].values
			for k := range a {
				if a[k] != b[k] {
					return a[k] < b[k]
				}
			}
			return false
		})
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			switch f.kind {
			case KindCounter:
				if f.seconds {
					fmt.Fprintf(bw, "%s%s %s\n", f.name, labelSet(f.labels, s.values, "", ""),
						formatFloat(float64(s.c.Value())/1e9))
				} else {
					fmt.Fprintf(bw, "%s%s %d\n", f.name, labelSet(f.labels, s.values, "", ""), s.c.Value())
				}
			case KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, labelSet(f.labels, s.values, "", ""),
					formatFloat(s.g.Value()))
			case KindHistogram:
				var cum int64
				for i, b := range f.bounds {
					cum += s.h.buckets[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						labelSet(f.labels, s.values, "le", formatFloat(b)), cum)
				}
				cum += s.h.buckets[len(f.bounds)].Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					labelSet(f.labels, s.values, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, labelSet(f.labels, s.values, "", ""),
					formatFloat(s.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, labelSet(f.labels, s.values, "", ""), cum)
			}
		}
	}
	return bw.Flush()
}

// labelSet renders `{n1="v1",n2="v2"}` (empty string when there are no
// labels). extraName/extraValue append one more pair (the histogram `le`).
func labelSet(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the shortest way that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseText parses and validates a Prometheus text exposition, returning
// every sample keyed by its series string exactly as exposed — name plus
// label set, e.g. `distda_jobs_total{outcome="done",tenant="anonymous"}`.
// It enforces the format rules the tests and the smoke client rely on:
// valid metric and label names, HELP/TYPE comment syntax, at most one TYPE
// per family declared before its samples, parseable sample values, and no
// duplicate series.
func ParseText(r io.Reader) (map[string]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	out := map[string]float64{}
	typed := map[string]string{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			fields := strings.SplitN(rest, " ", 3)
			switch fields[0] {
			case "TYPE":
				if len(fields) < 3 {
					return nil, fmt.Errorf("obs: line %d: malformed TYPE comment", lineNo)
				}
				name, kind := fields[1], strings.TrimSpace(fields[2])
				if err := checkName(name); err != nil {
					return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("obs: line %d: unknown TYPE %q", lineNo, kind)
				}
				if _, dup := typed[name]; dup {
					return nil, fmt.Errorf("obs: line %d: duplicate TYPE for %s", lineNo, name)
				}
				typed[name] = kind
			case "HELP":
				if len(fields) < 2 {
					return nil, fmt.Errorf("obs: line %d: malformed HELP comment", lineNo)
				}
				if err := checkName(fields[1]); err != nil {
					return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
				}
			default:
				// Plain comment: ignored.
			}
			continue
		}
		key, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %v", lineNo, err)
		}
		if _, dup := out[key]; dup {
			return nil, fmt.Errorf("obs: line %d: duplicate series %s", lineNo, key)
		}
		out[key] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSample parses one `name{labels} value [timestamp]` line.
func parseSample(line string) (key string, value float64, err error) {
	nameEnd := strings.IndexAny(line, "{ \t")
	if nameEnd < 0 {
		return "", 0, fmt.Errorf("sample without value: %q", line)
	}
	name := line[:nameEnd]
	if err := checkName(name); err != nil {
		return "", 0, err
	}
	rest := line[nameEnd:]
	labels := ""
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", 0, err
		}
		labels = rest[:end]
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", 0, fmt.Errorf("malformed sample %q", line)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return "", 0, fmt.Errorf("bad sample timestamp %q", fields[1])
		}
	}
	return name + labels, v, nil
}

// scanLabels validates a `{n="v",...}` label set starting at s[0] == '{'
// and returns the index just past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label set")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// Label name.
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("label without value")
		}
		if err := checkName(s[i:j]); err != nil {
			return 0, err
		}
		if strings.Contains(s[i:j], ":") {
			return 0, fmt.Errorf("invalid label name %q", s[i:j])
		}
		i = j + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("unquoted label value")
		}
		i++
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
