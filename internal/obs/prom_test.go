package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestExpositionGolden pins the full text format: HELP/TYPE lines, family
// ordering by name, series ordering by label values, escaping, histogram
// cumulative buckets.
func TestExpositionGolden(t *testing.T) {
	r := New()
	c := r.Counter("b_jobs_total", `Jobs with a back\slash and
newline.`, "outcome")
	c.With("do\"ne").Add(2)
	c.With("a\\b\nc").Inc()
	g := r.Gauge("a_depth", "Depth.")
	g.With().Set(1.5)
	h := r.Histogram("c_lat_seconds", "Latency.", []float64{0.5, 2})
	h.With().Observe(0.25)
	h.With().Observe(1)
	h.With().Observe(10)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP a_depth Depth.
# TYPE a_depth gauge
a_depth 1.5
# HELP b_jobs_total Jobs with a back\\slash and\nnewline.
# TYPE b_jobs_total counter
b_jobs_total{outcome="a\\b\nc"} 1
b_jobs_total{outcome="do\"ne"} 2
# HELP c_lat_seconds Latency.
# TYPE c_lat_seconds histogram
c_lat_seconds_bucket{le="0.5"} 1
c_lat_seconds_bucket{le="2"} 2
c_lat_seconds_bucket{le="+Inf"} 3
c_lat_seconds_sum 11.25
c_lat_seconds_count 3
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionOrderingDeterminism registers series in two different
// orders and asserts identical bytes.
func TestExpositionOrderingDeterminism(t *testing.T) {
	build := func(rev bool) string {
		r := New()
		c := r.Counter("jobs_total", "Jobs.", "outcome", "tenant")
		pairs := [][2]string{{"done", "a"}, {"done", "b"}, {"failed", "a"}, {"cache_hit", "z"}}
		if rev {
			for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
		for _, p := range pairs {
			c.With(p[0], p[1]).Inc()
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := build(false), build(true); a != b {
		t.Fatalf("series creation order changed exposition:\n%s\nvs\n%s", a, b)
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "Jobs.", "outcome", "tenant")
	c.With("done", "a").Add(3)
	c.With("fail\"ed", "b\\c").Inc()
	g := r.Gauge("depth", "Depth.")
	g.With().Set(2.5)
	h := r.Histogram("lat_seconds", "Lat.", []float64{1})
	h.With().Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ParseText(&buf)
	if err != nil {
		t.Fatalf("ParseText on own exposition: %v", err)
	}
	checks := map[string]float64{
		`jobs_total{outcome="done",tenant="a"}`:        3,
		`jobs_total{outcome="fail\"ed",tenant="b\\c"}`: 1,
		`depth`:                         2.5,
		`lat_seconds_bucket{le="1"}`:    1,
		`lat_seconds_bucket{le="+Inf"}`: 1,
		`lat_seconds_sum`:               0.5,
		`lat_seconds_count`:             1,
	}
	for k, want := range checks {
		got, ok := m[k]
		if !ok {
			t.Fatalf("series %s missing; have %v", k, m)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", k, got, want)
		}
	}
}

func TestParseTextMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":            "9bad 1\n",
		"no value":            "metric_only\n",
		"bad value":           "m notanumber\n",
		"unterminated labels": `m{a="x" 1` + "\n",
		"unquoted label":      "m{a=x} 1\n",
		"bad label name":      `m{9a="x"} 1` + "\n",
		"colon label name":    `m{a:b="x"} 1` + "\n",
		"duplicate series":    "m 1\nm 2\n",
		"bad TYPE":            "# TYPE m frobnicator\n",
		"short TYPE":          "# TYPE m\n",
		"duplicate TYPE":      "# TYPE m counter\n# TYPE m counter\n",
		"bad HELP name":       "# HELP 9bad text\n",
		"extra fields":        "m 1 2 3\n",
		"bad timestamp":       "m 1 notatime\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: ParseText accepted %q", name, text)
		}
	}
}

func TestParseTextAcceptsComments(t *testing.T) {
	text := "# just a comment\n\n# HELP m Help text here.\n# TYPE m counter\nm 4 1700000000000\n"
	m, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m["m"] != 4 {
		t.Fatalf("m = %v, want 4", m["m"])
	}
}
