package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one named wall-clock interval in a job's lifecycle. A zero End
// means the span is still open. Spans are wall-clock observations only —
// they never influence the simulation (simulated-time intervals live in
// internal/trace).
type Span struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end,omitempty"` // zero (open span) is omitted by MarshalJSON
}

// MarshalJSON omits the end field while the span is open (`omitempty`
// does not apply to struct-typed time.Time on this Go version).
func (s Span) MarshalJSON() ([]byte, error) {
	type closed Span
	if s.End.IsZero() {
		return json.Marshal(struct {
			Name  string    `json:"name"`
			Start time.Time `json:"start"`
		}{s.Name, s.Start})
	}
	return json.Marshal(closed(s))
}

// Duration returns End-Start, or 0 for an open span.
func (s Span) Duration() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// SpanList is a concurrency-safe ordered collection of spans. The zero
// value is ready to use; a nil *SpanList no-ops on every method, so
// recording sites stay unconditional.
type SpanList struct {
	mu    sync.Mutex
	spans []Span
}

// Open starts a new span and returns a handle for Close. Returns -1 on a
// nil list.
func (l *SpanList) Open(name string) int {
	if l == nil {
		return -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans = append(l.spans, Span{Name: name, Start: time.Now()})
	return len(l.spans) - 1
}

// Close ends the span opened with the given handle. No-op on a nil list,
// a negative handle, or an already-closed span.
func (l *SpanList) Close(h int) {
	if l == nil || h < 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if h < len(l.spans) && l.spans[h].End.IsZero() {
		l.spans[h].End = time.Now()
	}
}

// Add appends a closed span with explicit bounds.
func (l *SpanList) Add(name string, start, end time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spans = append(l.spans, Span{Name: name, Start: start, End: end})
}

// Mark appends an instantaneous span (Start == End == now) — used for
// point events like a cache-hit short-circuit.
func (l *SpanList) Mark(name string) {
	now := time.Now()
	l.Add(name, now, now)
}

// Snapshot returns a copy of the spans recorded so far (nil on a nil
// list).
func (l *SpanList) Snapshot() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// WriteTraceEvents renders spans as a Chrome trace_event JSON array
// (load in chrome://tracing or Perfetto). Timestamps are microseconds
// relative to the earliest span start; each event carries its absolute
// start in args. Open spans render as instantaneous at their start.
func WriteTraceEvents(w io.Writer, pid string, spans []Span) error {
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	type event struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   int64          `json:"ts"`
		Dur  int64          `json:"dur"`
		Pid  string         `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args,omitempty"`
	}
	events := make([]event, 0, len(spans))
	for _, s := range spans {
		events = append(events, event{
			Name: s.Name,
			Ph:   "X",
			Ts:   s.Start.Sub(epoch).Microseconds(),
			Dur:  s.Duration().Microseconds(),
			Pid:  pid,
			Tid:  1,
			Args: map[string]any{"start": s.Start.Format(time.RFC3339Nano)},
		})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("obs: write trace events: %w", err)
	}
	return nil
}
