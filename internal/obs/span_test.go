package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestSpanListLifecycle(t *testing.T) {
	var l SpanList
	h := l.Open("queued")
	time.Sleep(time.Millisecond)
	l.Close(h)
	l.Mark("cache_hit")
	l.Add("executing", time.Unix(1, 0), time.Unix(2, 0))

	got := l.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(got))
	}
	if got[0].Name != "queued" || got[0].End.IsZero() || got[0].Duration() <= 0 {
		t.Fatalf("queued span not closed: %+v", got[0])
	}
	if got[1].Name != "cache_hit" || got[1].Duration() != 0 {
		t.Fatalf("mark span not instantaneous: %+v", got[1])
	}
	if got[2].Duration() != time.Second {
		t.Fatalf("explicit span duration = %v, want 1s", got[2].Duration())
	}

	// Close is idempotent and tolerates bad handles.
	end := got[0].End
	l.Close(h)
	l.Close(-1)
	l.Close(99)
	if got2 := l.Snapshot(); !got2[0].End.Equal(end) {
		t.Fatal("re-Close moved the span end")
	}
}

func TestNilSpanListSafe(t *testing.T) {
	var l *SpanList
	h := l.Open("x")
	l.Close(h)
	l.Mark("y")
	l.Add("z", time.Now(), time.Now())
	if l.Snapshot() != nil {
		t.Fatal("nil SpanList snapshot not nil")
	}
}

func TestOpenSpanHasZeroEnd(t *testing.T) {
	var l SpanList
	l.Open("executing")
	s := l.Snapshot()[0]
	if !s.End.IsZero() || s.Duration() != 0 {
		t.Fatalf("open span should have zero End: %+v", s)
	}
	// The zero End must serialize away so clients see open vs closed.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte(`"end"`)) {
		t.Fatalf("open span serialized an end time: %s", b)
	}
}

func TestWriteTraceEvents(t *testing.T) {
	epoch := time.Unix(100, 0)
	spans := []Span{
		{Name: "queued", Start: epoch, End: epoch.Add(2 * time.Millisecond)},
		{Name: "executing", Start: epoch.Add(2 * time.Millisecond), End: epoch.Add(10 * time.Millisecond)},
		{Name: "open", Start: epoch.Add(3 * time.Millisecond)},
	}
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, "job-1", spans); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Pid  string `json:"pid"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Ph != "X" || events[0].Ts != 0 || events[0].Dur != 2000 || events[0].Pid != "job-1" {
		t.Fatalf("first event wrong: %+v", events[0])
	}
	if events[1].Ts != 2000 || events[1].Dur != 8000 {
		t.Fatalf("second event wrong: %+v", events[1])
	}
	if events[2].Dur != 0 {
		t.Fatalf("open span should export zero duration: %+v", events[2])
	}
}

func TestWriteTraceEventsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, "p", nil); err != nil {
		t.Fatal(err)
	}
	var events []any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil || len(events) != 0 {
		t.Fatalf("empty export not an empty JSON array: %q (%v)", buf.String(), err)
	}
}
