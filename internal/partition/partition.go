// Package partition implements a multilevel k-way graph partitioner in the
// style the paper configures Metis for (§V-A-3): heavy-edge-matching
// coarsening, greedy region-growing initial partitioning, and
// boundary-refinement uncoarsening. The objective is minimum edge cut under
// a loose node-weight balance constraint; the compiler's ≤1-memory-object
// constraint is enforced by its partition-count iteration loop, not here.
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is an undirected weighted graph with weighted nodes. Parallel edges
// accumulate weight.
type Graph struct {
	nodeW []int
	adj   []map[int]int // adj[a][b] = edge weight
}

// NewGraph creates a graph with n nodes of weight 1.
func NewGraph(n int) *Graph {
	g := &Graph{nodeW: make([]int, n), adj: make([]map[int]int, n)}
	for i := range g.nodeW {
		g.nodeW[i] = 1
		g.adj[i] = map[int]int{}
	}
	return g
}

// N returns the node count.
func (g *Graph) N() int { return len(g.nodeW) }

// SetNodeWeight sets the weight of node v.
func (g *Graph) SetNodeWeight(v, w int) { g.nodeW[v] = w }

// NodeWeight returns the weight of node v.
func (g *Graph) NodeWeight(v int) int { return g.nodeW[v] }

// AddEdge adds w to the undirected edge (a,b). Self-loops are ignored.
func (g *Graph) AddEdge(a, b, w int) error {
	if a < 0 || a >= g.N() || b < 0 || b >= g.N() {
		return fmt.Errorf("partition: edge (%d,%d) out of range for %d nodes", a, b, g.N())
	}
	if w <= 0 {
		return fmt.Errorf("partition: edge (%d,%d) has non-positive weight %d", a, b, w)
	}
	if a == b {
		return nil
	}
	g.adj[a][b] += w
	g.adj[b][a] += w
	return nil
}

// EdgeWeight returns the weight of edge (a,b), 0 if absent.
func (g *Graph) EdgeWeight(a, b int) int { return g.adj[a][b] }

// TotalNodeWeight returns the sum of node weights.
func (g *Graph) TotalNodeWeight() int {
	t := 0
	for _, w := range g.nodeW {
		t += w
	}
	return t
}

// Cut returns the total weight of edges crossing parts under assign.
func Cut(g *Graph, assign []int) int {
	cut := 0
	for a := range g.adj {
		for b, w := range g.adj[a] {
			if a < b && assign[a] != assign[b] {
				cut += w
			}
		}
	}
	return cut
}

// imbalanceFactor bounds part weight at factor × ideal. The paper's
// objective is communication, not balance, so this is deliberately loose.
const imbalanceFactor = 1.6

// coarsenStop stops coarsening once the graph is this small.
func coarsenStop(k int) int {
	s := 4 * k
	if s < 32 {
		s = 32
	}
	return s
}

// Partition splits g into k parts minimizing edge cut. It returns the part
// assignment per node and the achieved cut. Deterministic for a given graph
// (internal RNG is fixed-seeded).
func Partition(g *Graph, k int) ([]int, int, error) {
	n := g.N()
	if k <= 0 {
		return nil, 0, fmt.Errorf("partition: k must be positive, got %d", k)
	}
	assign := make([]int, n)
	if k == 1 || n == 0 {
		return assign, 0, nil
	}
	if k >= n {
		for i := range assign {
			assign[i] = i % k
		}
		return assign, Cut(g, assign), nil
	}
	rng := rand.New(rand.NewSource(42))

	// Multilevel coarsening.
	levels := []*Graph{g}
	maps := [][]int{} // maps[l][fineNode] = coarseNode at level l+1
	cur := g
	for cur.N() > coarsenStop(k) {
		coarse, m := matchCoarsen(cur, rng)
		if coarse.N() >= cur.N() { // stalled
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, m)
		cur = coarse
	}

	// Initial partition at the coarsest level.
	coarseAssign := growRegions(cur, k, rng)
	refine(cur, coarseAssign, k, rng)

	// Uncoarsen with refinement.
	for l := len(maps) - 1; l >= 0; l-- {
		fine := levels[l]
		fineAssign := make([]int, fine.N())
		for v := range fineAssign {
			fineAssign[v] = coarseAssign[maps[l][v]]
		}
		refine(fine, fineAssign, k, rng)
		coarseAssign = fineAssign
	}
	return coarseAssign, Cut(g, coarseAssign), nil
}

// matchCoarsen performs one round of heavy-edge matching and returns the
// coarse graph plus the fine→coarse node map.
func matchCoarsen(g *Graph, rng *rand.Rand) (*Graph, []int) {
	n := g.N()
	order := rng.Perm(n)
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		best, bestW := -1, 0
		for u, w := range g.adj[v] {
			if match[u] == -1 && (w > bestW || (w == bestW && u < best)) {
				best, bestW = u, w
			}
		}
		if best == -1 {
			match[v] = v
		} else {
			match[v] = best
			match[best] = v
		}
	}
	m := make([]int, n)
	next := 0
	for v := 0; v < n; v++ {
		if match[v] >= v { // representative of its pair (or singleton)
			m[v] = next
			if match[v] != v {
				m[match[v]] = next
			}
			next++
		}
	}
	coarse := NewGraph(next)
	for v := 0; v < n; v++ {
		if match[v] >= v {
			w := g.nodeW[v]
			if match[v] != v {
				w += g.nodeW[match[v]]
			}
			coarse.nodeW[m[v]] = w
		}
	}
	for a := range g.adj {
		for b, w := range g.adj[a] {
			if a < b && m[a] != m[b] {
				coarse.adj[m[a]][m[b]] += w
				coarse.adj[m[b]][m[a]] += w
			}
		}
	}
	return coarse, m
}

// growRegions seeds k regions and grows them greedily by connection weight,
// balancing by node weight.
func growRegions(g *Graph, k int, rng *rand.Rand) []int {
	n := g.N()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	target := (g.TotalNodeWeight() + k - 1) / k
	partW := make([]int, k)
	// Seeds: spread via random order, preferring high-degree nodes.
	deg := make([]int, n)
	for v := range g.adj {
		for _, w := range g.adj[v] {
			deg[v] += w
		}
	}
	order := rng.Perm(n)
	sort.SliceStable(order, func(i, j int) bool { return deg[order[i]] > deg[order[j]] })
	seeded := 0
	for _, v := range order {
		if seeded == k {
			break
		}
		ok := true
		for u := range g.adj[v] {
			if assign[u] != -1 { // avoid adjacent seeds when possible
				ok = false
				break
			}
		}
		if ok || n-seeded <= k {
			assign[v] = seeded
			partW[seeded] += g.nodeW[v]
			seeded++
		}
	}
	for seeded < k { // fallback: any unassigned node
		for _, v := range order {
			if assign[v] == -1 {
				assign[v] = seeded
				partW[seeded] += g.nodeW[v]
				seeded++
				break
			}
		}
	}
	// Grow: repeatedly attach the unassigned node with the strongest
	// connection to the lightest eligible part.
	for {
		bestV, bestP, bestGain := -1, -1, -1
		for v := 0; v < n; v++ {
			if assign[v] != -1 {
				continue
			}
			conn := make([]int, k)
			touched := false
			for u, w := range g.adj[v] {
				if assign[u] != -1 {
					conn[assign[u]] += w
					touched = true
				}
			}
			if !touched {
				continue
			}
			for p := 0; p < k; p++ {
				w := conn[p]
				if w == 0 || partW[p]+g.nodeW[v] > int(float64(target)*imbalanceFactor) {
					continue
				}
				if w > bestGain || (w == bestGain && bestP >= 0 && partW[p] < partW[bestP]) {
					bestV, bestP, bestGain = v, p, w
				}
			}
		}
		if bestV == -1 {
			break
		}
		assign[bestV] = bestP
		partW[bestP] += g.nodeW[bestV]
	}
	// Any disconnected leftovers go to the lightest part.
	for v := 0; v < n; v++ {
		if assign[v] == -1 {
			p := lightest(partW)
			assign[v] = p
			partW[p] += g.nodeW[v]
		}
	}
	return assign
}

func lightest(partW []int) int {
	best := 0
	for p, w := range partW {
		if w < partW[best] {
			best = p
		}
	}
	return best
}

// refine performs greedy boundary refinement: repeatedly move the node with
// the highest positive cut gain to a neighboring part, respecting balance.
func refine(g *Graph, assign []int, k int, _ *rand.Rand) {
	n := g.N()
	target := (g.TotalNodeWeight() + k - 1) / k
	maxW := int(float64(target) * imbalanceFactor)
	partW := make([]int, k)
	for v, p := range assign {
		partW[p] += g.nodeW[v]
	}
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			p := assign[v]
			conn := make(map[int]int)
			for u, w := range g.adj[v] {
				conn[assign[u]] += w
			}
			bestQ, bestGain := -1, 0
			for q := 0; q < k; q++ {
				if q == p {
					continue
				}
				gain := conn[q] - conn[p]
				if gain <= 0 {
					continue
				}
				if partW[q]+g.nodeW[v] > maxW {
					continue
				}
				// Never empty a part.
				if partW[p]-g.nodeW[v] <= 0 {
					continue
				}
				if gain > bestGain {
					bestQ, bestGain = q, gain
				}
			}
			if bestQ != -1 {
				partW[p] -= g.nodeW[v]
				partW[bestQ] += g.nodeW[v]
				assign[v] = bestQ
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}
