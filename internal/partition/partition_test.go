package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// twoCliques builds two size-m cliques (internal weight heavy) joined by a
// single light bridge edge; the obvious 2-way partition cuts only the bridge.
func twoCliques(m int) *Graph {
	g := NewGraph(2 * m)
	for c := 0; c < 2; c++ {
		base := c * m
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				_ = g.AddEdge(base+i, base+j, 10)
			}
		}
	}
	_ = g.AddEdge(0, m, 1)
	return g
}

func TestPartitionTwoCliques(t *testing.T) {
	g := twoCliques(6)
	assign, cut, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 1 {
		t.Fatalf("cut = %d, want 1 (assign=%v)", cut, assign)
	}
	// Each clique must be wholly in one part.
	for i := 1; i < 6; i++ {
		if assign[i] != assign[0] {
			t.Fatalf("clique 0 split: %v", assign)
		}
		if assign[6+i] != assign[6] {
			t.Fatalf("clique 1 split: %v", assign)
		}
	}
	if assign[0] == assign[6] {
		t.Fatalf("cliques merged: %v", assign)
	}
}

func TestPartitionK1IsTrivial(t *testing.T) {
	g := twoCliques(4)
	assign, cut, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cut != 0 {
		t.Fatalf("cut = %d", cut)
	}
	for _, p := range assign {
		if p != 0 {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestPartitionKGreaterThanN(t *testing.T) {
	g := NewGraph(3)
	_ = g.AddEdge(0, 1, 1)
	assign, _, err := Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 3 {
		t.Fatalf("assign len = %d", len(assign))
	}
}

func TestPartitionInvalidK(t *testing.T) {
	if _, _, err := Partition(NewGraph(3), 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := g.AddEdge(0, 1, 0); err == nil {
		t.Fatal("zero-weight edge accepted")
	}
	if err := g.AddEdge(1, 1, 3); err != nil {
		t.Fatal("self loop should be silently ignored")
	}
	if g.EdgeWeight(1, 1) != 0 {
		t.Fatal("self loop stored")
	}
	_ = g.AddEdge(0, 1, 2)
	_ = g.AddEdge(0, 1, 3)
	if g.EdgeWeight(0, 1) != 5 || g.EdgeWeight(1, 0) != 5 {
		t.Fatalf("parallel edges not accumulated: %d", g.EdgeWeight(0, 1))
	}
}

func TestNodeWeights(t *testing.T) {
	g := NewGraph(3)
	g.SetNodeWeight(1, 7)
	if g.NodeWeight(1) != 7 || g.NodeWeight(0) != 1 {
		t.Fatal("node weights")
	}
	if g.TotalNodeWeight() != 9 {
		t.Fatalf("total = %d", g.TotalNodeWeight())
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g1 := twoCliques(8)
	g2 := twoCliques(8)
	a1, c1, _ := Partition(g1, 3)
	a2, c2, _ := Partition(g2, 3)
	if c1 != c2 {
		t.Fatalf("cuts differ: %d vs %d", c1, c2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("assignments differ at %d", i)
		}
	}
}

// randomGraph builds a connected random graph with n nodes.
func randomGraph(n int, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		_ = g.AddEdge(v, rng.Intn(v), 1+rng.Intn(9)) // spanning tree: connected
	}
	extra := n * 2
	for i := 0; i < extra; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b {
			_ = g.AddEdge(a, b, 1+rng.Intn(9))
		}
	}
	return g
}

// Property: every node is assigned a valid part, every part is non-empty,
// and the reported cut matches a recomputation.
func TestPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(nRaw, kRaw uint8) bool {
		n := 4 + int(nRaw%60)
		k := 2 + int(kRaw%4)
		if k > n {
			k = n
		}
		g := randomGraph(n, rng)
		assign, cut, err := Partition(g, k)
		if err != nil {
			return false
		}
		if len(assign) != n {
			return false
		}
		used := make([]bool, k)
		for _, p := range assign {
			if p < 0 || p >= k {
				return false
			}
			used[p] = true
		}
		for _, u := range used {
			if !u {
				return false
			}
		}
		return cut == Cut(g, assign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: multilevel refinement never does worse than a naive round-robin
// assignment on structured graphs.
func TestPartitionBeatsRoundRobin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(40)
		g := randomGraph(n, rng)
		k := 2 + rng.Intn(3)
		_, cut, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		rr := make([]int, n)
		for i := range rr {
			rr[i] = i % k
		}
		if cut > Cut(g, rr) {
			t.Fatalf("n=%d k=%d: multilevel cut %d worse than round-robin %d", n, k, cut, Cut(g, rr))
		}
	}
}

// Property: balance constraint is respected (within the documented factor)
// for unit-weight graphs.
func TestPartitionBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(50)
		k := 2 + rng.Intn(3)
		g := randomGraph(n, rng)
		assign, _, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		partW := make([]int, k)
		for _, p := range assign {
			partW[p]++
		}
		target := (n + k - 1) / k
		limit := int(float64(target)*imbalanceFactor) + 1
		for p, w := range partW {
			if w > limit {
				t.Fatalf("n=%d k=%d: part %d weight %d exceeds limit %d", n, k, p, w, limit)
			}
		}
	}
}

func TestLargeGraphCoarsens(t *testing.T) {
	// Exercise the multilevel path (N > coarsenStop).
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(500, rng)
	assign, cut, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 500 || cut != Cut(g, assign) {
		t.Fatal("large graph partition inconsistent")
	}
}
