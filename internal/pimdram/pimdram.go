// Package pimdram models a processing-in-memory backend in the spirit of
// DaPPA: streaming kernels execute at the DRAM channel on bank-level
// compute units. The engine interprets the same compiler-generated 64-bit
// micro-programs as the in-order core, but its timing model is memory-side:
//
//   - Bank-level parallelism retires a whole iteration's micro-ops in one
//     engine cycle when no channel is blocked (compute is effectively free
//     next to the arrays).
//   - Issue is channel-bandwidth bound: an iteration streaming B bytes
//     cannot initiate more often than ceil(B / ChanBytesPerCycle) engine
//     cycles — the DRAM channel, not the ALUs, is the bottleneck.
//   - Random accesses pay the raw DRAM access latency through the
//     memory-controller path; resident data never traverses the on-chip
//     NoC (the simulator places PIM engines at the memory-controller node
//     and feeds them through the direct-DRAM fetcher).
//
// The backend registers as "pimdram"; sim configs select it with
// WithBackend("pimdram") or per-region via the compiler's PIM threshold.
package pimdram

import (
	"fmt"

	"distda/internal/accessunit"
	"distda/internal/backend"
	"distda/internal/core"
	"distda/internal/energy"
	"distda/internal/engine"
	"distda/internal/ir"
	"distda/internal/microcode"
	"distda/internal/profile"
	"distda/internal/trace"
)

// ChanBytesPerCycle is the modeled DRAM channel bandwidth per engine cycle
// at 1 GHz (≈16 GB/s, an LPDDR channel's peak).
const ChanBytesPerCycle = 16

// MaxWidth bounds the request port width; the iteration-at-a-time issue
// model makes widths beyond the per-iteration op count meaningless, so the
// cap only guards nonsense configs.
const MaxWidth = 4

func init() { backend.Register(pimBackend{}) }

type pimBackend struct{}

func (pimBackend) Name() string { return "pimdram" }

func (pimBackend) Caps() backend.Caps {
	return backend.Caps{MaxPortWidth: MaxWidth, InDRAM: true, RandomAccess: true}
}

func (pimBackend) ValidateOptions(opts backend.Options) error {
	for _, kv := range opts {
		return fmt.Errorf("pimdram backend: unknown option %q", kv.Key)
	}
	return nil
}

func (pimBackend) NewEngine(spec backend.LaunchSpec) (backend.Engine, error) {
	if spec.Width > MaxWidth {
		return nil, fmt.Errorf("pimdram backend: port width %d exceeds the maximum %d", spec.Width, MaxWidth)
	}
	e, err := newEngine(spec)
	if err != nil {
		return nil, err
	}
	return &pimEngine{e: e}, nil
}

// pimEngine adapts *Engine to the backend.Engine contract (the raw model
// exposes its counters as fields, which would collide with the Ops method).
type pimEngine struct{ e *Engine }

func (w *pimEngine) Step(now int64) bool       { return w.e.Step(now) }
func (w *pimEngine) Done() bool                { return w.e.Done() }
func (w *pimEngine) NextEvent(now int64) int64 { return w.e.NextEvent(now) }
func (w *pimEngine) SetReg(r int, v float64)   { w.e.SetReg(r, v) }
func (w *pimEngine) Reg(r int) float64         { return w.e.Reg(r) }
func (w *pimEngine) Ops() int64                { return w.e.Ops }

func (w *pimEngine) AttachTrace(tr *trace.Tracer, off int64) { w.e.AttachTrace(tr, off) }

func (w *pimEngine) AddProfile(p *profile.Profiler, r *profile.Region) { w.e.AddProfile(p, r) }

// Engine executes one accelerator definition at the DRAM channel.
type Engine struct {
	def   *core.AccelDef
	prog  microcode.Program
	regs  [microcode.NumRegs]float64
	pc    int
	iter  int64
	trips int64 // -1: while-input
	// inputs / output are indexed by access id (core.Validate guarantees
	// dense ids); unwired accesses hold nil.
	inputs []*accessunit.InPort
	output []*accessunit.OutPort
	tripIn *accessunit.InPort
	random *accessunit.RandomPort
	meter  *energy.Meter
	div    int64

	// iterBytes is the static per-iteration channel traffic: the summed
	// element bytes of every stream/channel consume and produce in the
	// program (predication ignored — an upper bound is the right shape for
	// a bandwidth bottleneck).
	iterBytes int64

	stallUntil int64
	lastNow    int64
	done       bool

	// Counters.
	Ops      int64
	Iters    int64
	StallCyc int64

	// Trace records one span per bandwidth or random-access stall and an
	// instant at completion; set via AttachTrace (zero value disabled).
	Trace trace.Scope
	// StallHist observes stall latencies in base cycles (nil-safe).
	StallHist *trace.Hist
}

func newEngine(spec backend.LaunchSpec) (*Engine, error) {
	def := spec.Def
	if err := def.Program.Validate(len(def.Accesses)); err != nil {
		return nil, err
	}
	if len(def.Program) == 0 {
		return nil, fmt.Errorf("pimdram: accel %d (%s) has empty program", def.ID, def.Name)
	}
	n := len(def.Accesses)
	e := &Engine{
		def: def, prog: def.Program, trips: spec.Trips,
		inputs: make([]*accessunit.InPort, n),
		output: make([]*accessunit.OutPort, n),
		random: spec.Random,
		meter:  spec.Meter,
		div:    int64(engine.Div(spec.GHz)),
	}
	for id, p := range spec.In {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("pimdram: accel %d: input access id %d out of range [0,%d)", def.ID, id, n)
		}
		e.inputs[id] = p
	}
	for id, p := range spec.Out {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("pimdram: accel %d: output access id %d out of range [0,%d)", def.ID, id, n)
		}
		e.output[id] = p
	}
	if spec.Trips < 0 {
		if t := def.Trip.InputAccess; t >= 0 && t < n {
			e.tripIn = e.inputs[t]
		}
	}
	for _, op := range e.prog {
		switch op.Code {
		case microcode.Consume, microcode.Produce:
			e.iterBytes += int64(def.Accesses[op.Access].ElemBytes)
		}
	}
	e.StallHist = spec.Metrics.Histogram("pimdram/stall_lat")
	return e, nil
}

// BusyBaseCycles is the engine's useful-work time in base cycles: one
// issue cycle per iteration (bank-level units retire the whole iteration).
func (e *Engine) BusyBaseCycles() int64 { return e.Iters * e.div }

// StallBaseCycles is the engine's stalled time (channel bandwidth plus
// random-access latency) in base cycles.
func (e *Engine) StallBaseCycles() int64 { return e.StallCyc * e.div }

// SetReg initializes a register (cp_set_rf).
func (e *Engine) SetReg(r int, v float64) { e.regs[r] = v }

// Reg reads a register (cp_load_rf).
func (e *Engine) Reg(r int) float64 { return e.regs[r] }

// Done reports orchestrator completion.
func (e *Engine) Done() bool { return e.done }

// finish closes every output buffer so downstream drains and links
// terminate.
func (e *Engine) finish() {
	for _, p := range e.output {
		if p == nil {
			continue
		}
		if !p.Buf.Closed() {
			p.Buf.Close()
		}
	}
	e.done = true
	e.Trace.Instant("done", e.lastNow, trace.KV{K: "accel", V: int64(e.def.ID)},
		trace.KV{K: "iters", V: e.Iters}, trace.KV{K: "ops", V: e.Ops})
}

// setStall blocks the engine until now+lat, accounting the stalled engine
// edges in bulk so the scheduler may fast-forward over them.
func (e *Engine) setStall(now, lat int64) {
	if lat <= 0 {
		return
	}
	e.stallUntil = now + lat
	e.StallCyc += (lat - 1) / e.div
	e.Trace.Span("stall", now, lat, trace.KV{K: "accel", V: int64(e.def.ID)})
	e.StallHist.Observe(float64(lat))
}

// Step advances one engine clock edge: it retires micro-ops until the
// current iteration completes, a channel blocks, or a random access
// stalls. Returns whether progress was made.
func (e *Engine) Step(now int64) bool {
	if e.done {
		return false
	}
	e.lastNow = now
	if now < e.stallUntil {
		return true
	}
	progress := false
	startIter := e.iter
	for {
		p := e.step1(now)
		progress = progress || p
		if !p || e.done || now < e.stallUntil {
			break
		}
		if e.iter != startIter {
			// Iteration boundary: charge the channel-bandwidth bound. The
			// next edge is one engine cycle away already, so only the excess
			// beyond one cycle stalls.
			if bw := (e.iterBytes + ChanBytesPerCycle - 1) / ChanBytesPerCycle; bw > 1 {
				e.setStall(now, (bw-1)*e.div)
			}
			break
		}
	}
	return progress
}

// NextEvent implements the scheduler's fast-forward hint, mirroring the
// in-order core: stalled engines wake at stall expiry; a consume on an
// empty-but-open buffer or a produce into a full one is blocked on a peer.
func (e *Engine) NextEvent(now int64) int64 {
	if e.done {
		return 0
	}
	if now < e.stallUntil {
		return e.stallUntil
	}
	if e.pc == 0 && e.trips < 0 {
		if p := e.tripIn; p != nil && p.Buf.Drained(p.Reader) {
			return 0 // end of watched input: will finish
		}
	}
	op := &e.prog[e.pc]
	if op.Pred >= 0 && e.regs[op.Pred] == 0 {
		return 0 // predicated-off: retires as a nop
	}
	switch op.Code {
	case microcode.Consume:
		if p := e.inputs[op.Access]; p != nil && !p.Buf.CanPop(p.Reader) && !p.Buf.Drained(p.Reader) {
			return engine.Never // blocked on the producer
		}
	case microcode.Produce:
		if p := e.output[op.Access]; p != nil && !p.Buf.CanPush() {
			return engine.Never // blocked on the consumer
		}
	}
	return 0
}

func (e *Engine) retire(class ir.OpClass) {
	e.Ops++
	if e.meter != nil {
		// Bank-level units have no fetch/decode front end; the per-op cost
		// is the in-DRAM ALU itself.
		t := &e.meter.Table
		x := t.PIMOpPJ
		switch class {
		case ir.ClassInt:
			x += t.IntOpPJ
		case ir.ClassComplex:
			x += t.ComplexOpPJ
		case ir.ClassFloat:
			x += t.FloatOpPJ
		}
		e.meter.Add(energy.CatAccel, x)
	}
	e.pc++
	if e.pc == len(e.prog) {
		e.pc = 0
		e.iter++
		e.Iters++
		if e.trips >= 0 && e.iter >= e.trips {
			e.finish()
		}
	}
}

// step1 retires at most one micro-op; functional semantics match the
// reference interpreter (and the in-order core) exactly.
func (e *Engine) step1(now int64) bool {
	if e.pc == 0 && e.trips < 0 {
		p := e.tripIn
		if p == nil {
			panic(fmt.Sprintf("pimdram: accel %d: while-input access %d not wired", e.def.ID, e.def.Trip.InputAccess))
		}
		if p.Buf.Drained(p.Reader) {
			e.finish()
			return true
		}
	}
	op := &e.prog[e.pc]
	if op.Pred >= 0 && e.regs[op.Pred] == 0 {
		e.retire(ir.ClassInt) // predicated-off: retires as a nop
		return true
	}
	switch op.Code {
	case microcode.Nop:
		e.retire(ir.ClassInt)
	case microcode.Consume:
		p := e.inputs[op.Access]
		if p == nil {
			panic(fmt.Sprintf("pimdram: accel %d: access %d not wired as input", e.def.ID, op.Access))
		}
		if !p.Buf.CanPop(p.Reader) {
			if p.Buf.Drained(p.Reader) {
				panic(fmt.Sprintf("pimdram: accel %d: consume on drained access %d (producer under-delivered)", e.def.ID, op.Access))
			}
			return false // blocked on empty buffer
		}
		e.regs[op.Dst] = p.Buf.Pop(p.Reader)
		e.retire(ir.ClassInt)
	case microcode.Produce:
		p := e.output[op.Access]
		if p == nil {
			panic(fmt.Sprintf("pimdram: accel %d: access %d not wired as output", e.def.ID, op.Access))
		}
		if !p.Buf.CanPush() {
			return false // blocked on full buffer (back-pressure)
		}
		p.Buf.Push(e.regs[op.A])
		e.retire(ir.ClassInt)
	case microcode.LoadObj:
		v, lat, err := e.random.Load(op.Obj, int64(e.regs[op.A]))
		if err != nil {
			panic(fmt.Sprintf("pimdram: accel %d: %v", e.def.ID, err))
		}
		e.regs[op.Dst] = v
		e.setStall(now, int64(lat))
		e.retire(ir.ClassInt)
	case microcode.StoreObj:
		lat, err := e.random.Store(op.Obj, int64(e.regs[op.A]), e.regs[op.B])
		if err != nil {
			panic(fmt.Sprintf("pimdram: accel %d: %v", e.def.ID, err))
		}
		// Posted write into the row buffer: brief port occupancy only.
		occ := int64(lat)
		if occ > 8 {
			occ = 8
		}
		e.setStall(now, occ)
		e.retire(ir.ClassInt)
	case microcode.ALU:
		e.regs[op.Dst] = e.apply(op.Bin, e.regs[op.A], e.regs[op.B])
		e.retire(op.Bin.Class())
	case microcode.ALUI:
		e.regs[op.Dst] = e.apply(op.Bin, e.regs[op.A], op.Imm)
		e.retire(op.Bin.Class())
	case microcode.Un:
		e.regs[op.Dst] = ir.ApplyUn(op.UnOp, e.regs[op.A])
		e.retire(op.UnOp.Class())
	case microcode.SelOp:
		if e.regs[op.C] != 0 {
			e.regs[op.Dst] = e.regs[op.A]
		} else {
			e.regs[op.Dst] = e.regs[op.B]
		}
		e.retire(ir.ClassInt)
	case microcode.MovI:
		e.regs[op.Dst] = op.Imm
		e.retire(ir.ClassInt)
	case microcode.Mov:
		e.regs[op.Dst] = e.regs[op.A]
		e.retire(ir.ClassInt)
	case microcode.Iter:
		e.regs[op.Dst] = float64(e.iter)
		e.retire(ir.ClassInt)
	default:
		panic(fmt.Sprintf("pimdram: accel %d: bad opcode %v", e.def.ID, op.Code))
	}
	return true
}

func (e *Engine) apply(op ir.BinOp, a, b float64) float64 {
	v, err := ir.ApplyBin(op, a, b)
	if err != nil {
		panic(fmt.Sprintf("pimdram: accel %d: %v", e.def.ID, err))
	}
	return v
}

// AttachTrace binds the engine's trace scope on the run-global timeline.
func (e *Engine) AttachTrace(tr *trace.Tracer, off int64) {
	e.Trace = tr.Component(fmt.Sprintf("pim:%d", e.def.ID)).At(off)
}

// AddProfile folds the engine's cycle attribution into the profiler.
func (e *Engine) AddProfile(p *profile.Profiler, r *profile.Region) {
	label := fmt.Sprintf("pim:%d", e.def.ID)
	pc := p.Component("pim", label)
	pc.AddBusy(e.BusyBaseCycles())
	pc.AddStall(e.StallBaseCycles())
	pc.AddEvents(e.Ops)
	r.AddComponent(label, e.BusyBaseCycles()+e.StallBaseCycles())
}
