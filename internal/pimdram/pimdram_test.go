package pimdram_test

import (
	"testing"

	"distda/internal/backend"
	"distda/internal/backend/backendtest"
	"distda/internal/pimdram"
)

func TestConformance(t *testing.T) {
	backendtest.Conformance(t, "pimdram")
}

func TestCaps(t *testing.T) {
	be, ok := backend.Lookup("pimdram")
	if !ok {
		t.Fatal("pimdram backend not registered")
	}
	caps := be.Caps()
	if !caps.InDRAM {
		t.Fatal("pimdram must report InDRAM placement")
	}
	if caps.NearData {
		t.Fatal("pimdram is channel-side, not near-L3")
	}
	if caps.MaxPortWidth != pimdram.MaxWidth {
		t.Fatalf("MaxPortWidth = %d, want %d", caps.MaxPortWidth, pimdram.MaxWidth)
	}
}
