package profile

import (
	"fmt"

	"distda/internal/report"
)

// LatencyBreakdown renders the offload latency breakdown table — the
// paper's overhead analysis: per software region, how many base cycles one
// launch spends in dispatch (host-side flush + configuration), queue
// (waiting behind a prior launch for accelerator resources), execute, and
// writeback (sync wait + scalar read-back), plus each phase's share of the
// region's end-to-end latency.
func (p *Profiler) LatencyBreakdown() *report.Table {
	t := &report.Table{
		Title: "Offload latency breakdown (base cycles per launch)",
		Columns: []string{"kernel:region", "launches",
			"dispatch", "queue", "execute", "writeback", "total",
			"dispatch%", "queue%", "execute%", "writeback%"},
	}
	if p == nil {
		t.AddNote("profiling disabled")
		return t
	}
	per := func(phase, launches int64) string {
		if launches == 0 {
			return report.NA
		}
		return report.F(float64(phase) / float64(launches))
	}
	pct := func(phase, total int64) string {
		if total == 0 {
			return report.NA
		}
		return fmt.Sprintf("%.1f", 100*float64(phase)/float64(total))
	}
	for _, r := range p.Regions() {
		total := r.Total()
		t.AddRow(
			r.Kernel+":"+r.Name,
			fmt.Sprintf("%d", r.Launches),
			per(r.Dispatch, r.Launches),
			per(r.Queue, r.Launches),
			per(r.Execute, r.Launches),
			per(r.Writeback, r.Launches),
			per(total, r.Launches),
			pct(r.Dispatch, total),
			pct(r.Queue, total),
			pct(r.Execute, total),
			pct(r.Writeback, total),
		)
	}
	if len(t.Rows) == 0 {
		t.AddNote("no offload launches recorded")
	}
	return t
}
