package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteFolded writes the profile of simulated time as folded stacks —
// the `frame;frame;frame count` format FlameGraph's flamegraph.pl and
// speedscope both ingest directly. Stacks are keyed
// kernel;region;component, with the offload phases that are not spent on a
// hardware component (dispatch, queue wait, writeback) emitted as pseudo
// component frames so every attributed cycle appears exactly once. Counts
// are base cycles. Lines are sorted; zero-count stacks are skipped. The
// output is deterministic for any shard merge order.
func (p *Profiler) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if p == nil {
		return bw.Flush()
	}
	var lines []string
	for _, r := range p.Regions() {
		stack := func(comp string, n int64) {
			if n > 0 {
				lines = append(lines, fmt.Sprintf("%s;%s;%s %d", r.Kernel, r.Name, comp, n))
			}
		}
		stack("[dispatch]", r.Dispatch)
		stack("[queue]", r.Queue)
		stack("[writeback]", r.Writeback)
		// Execute cycles split across the components that ran the region when
		// the per-launch fold recorded them; any remainder (e.g. engine
		// scheduling slack not attributed to a specific unit) folds into a
		// catch-all frame so the region's stack total still sums to Total().
		var attributed int64
		for _, rc := range r.regionComponents() {
			stack(rc.Label, rc.Base)
			attributed += rc.Base
		}
		if rest := r.Execute - attributed; rest > 0 {
			stack("[execute-other]", rest)
		}
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(bw, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}
