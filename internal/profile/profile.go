// Package profile is the aggregation layer over internal/trace: it
// attributes simulated cycles and energy to hardware components (cores,
// access units, CGRA fabrics, NoC links, DRAM channels) and to software
// regions (kernel, offloaded loop region), and renders the result as a
// deterministic gem5-style stats dump, a FlameGraph-compatible folded-stacks
// export, and an offload latency breakdown table (dispatch / queue /
// execute / writeback — the paper's overhead analysis).
//
// Like the tracer, the disabled state is structural: a nil *Profiler hands
// out nil *Component / *Region / *Queue handles whose recording methods
// no-op, so model code instruments unconditionally and pays one predictable
// branch when profiling is off. Profiling is observational only — the
// simulator's cycle counts and results are bit-identical with it on or off
// (differential tests enforce this).
//
// Per-cell profilers from a parallel experiment matrix are folded together
// with Merge; every attribution is a commutative sum or an exact histogram
// merge, so the merged profile is identical at any worker count.
package profile

import (
	"sort"
	"sync"

	"distda/internal/stats"
	"distda/internal/trace"
)

// Profiler is one run's (or one merged matrix's) attribution store.
// Registration (Component/Region/Queue) is mutex-guarded and may happen
// from any goroutine; recording through a returned handle is lock-free and
// owned by the run's single goroutine, exactly like trace.Metrics.
type Profiler struct {
	mu      sync.Mutex
	comps   map[compKey]*Component
	regions map[regKey]*Region
	queues  map[compKey]*Queue
	spans   map[spanKey]*SpanAgg
	extern  map[string]*externStat

	totalBase int64 // simulated base cycles across absorbed runs
	runs      int64
}

// externStat is one statistic contributed by another subsystem (shard
// attribution, for example) through Extern.
type externStat struct {
	desc string
	v    float64
}

type compKey struct{ kind, name string }
type regKey struct{ kernel, name string }
type spanKey struct{ track, name string }

// New returns an enabled profiler.
func New() *Profiler {
	return &Profiler{
		comps:   map[compKey]*Component{},
		regions: map[regKey]*Region{},
		queues:  map[compKey]*Queue{},
		spans:   map[spanKey]*SpanAgg{},
		extern:  map[string]*externStat{},
	}
}

// Enabled reports whether attribution is being kept.
func (p *Profiler) Enabled() bool { return p != nil }

// AddRun accounts one completed simulation of totalBase simulated base
// cycles — the utilization denominator. No-op on nil.
func (p *Profiler) AddRun(totalBase int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.totalBase += totalBase
	p.runs++
	p.mu.Unlock()
}

// TotalBase returns the accumulated simulated base cycles (0 on nil).
func (p *Profiler) TotalBase() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalBase
}

// Component returns (creating on first use) the attribution record for one
// hardware component, identified by a kind ("core", "noc_link", ...) and an
// instance name. Nil on a nil profiler.
func (p *Profiler) Component(kind, name string) *Component {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k := compKey{kind, name}
	c, ok := p.comps[k]
	if !ok {
		c = &Component{Kind: kind, Name: name}
		p.comps[k] = c
	}
	return c
}

// Region returns (creating on first use) the attribution record for one
// software region of a kernel. Nil on a nil profiler.
func (p *Profiler) Region(kernel, name string) *Region {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k := regKey{kernel, name}
	r, ok := p.regions[k]
	if !ok {
		r = &Region{Kernel: kernel, Name: name, comps: map[string]int64{}}
		p.regions[k] = r
	}
	return r
}

// Queue returns (creating on first use) the occupancy histogram for one
// queue-like structure (decoupling buffers, pending-line windows). Nil on a
// nil profiler.
func (p *Profiler) Queue(kind, name string) *Queue {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	k := compKey{kind, name}
	q, ok := p.queues[k]
	if !ok {
		q = &Queue{Kind: kind, Name: name}
		p.queues[k] = q
	}
	return q
}

// Component attributes simulated base cycles, events and energy to one
// hardware component. All methods are nil-receiver safe.
type Component struct {
	Kind, Name string
	Busy       int64   // base cycles doing useful work
	Stall      int64   // base cycles stalled waiting (0 where not modeled)
	Events     int64   // component-specific unit: ops, accesses, flit-hops
	EnergyPJ   float64 // dynamic energy attributed to this component
}

// AddBusy attributes n busy base cycles (no-op on nil).
func (c *Component) AddBusy(n int64) {
	if c == nil {
		return
	}
	c.Busy += n
}

// AddStall attributes n stalled base cycles (no-op on nil).
func (c *Component) AddStall(n int64) {
	if c == nil {
		return
	}
	c.Stall += n
}

// AddEvents attributes n component events (no-op on nil).
func (c *Component) AddEvents(n int64) {
	if c == nil {
		return
	}
	c.Events += n
}

// AddEnergy attributes pj picojoules (no-op on nil).
func (c *Component) AddEnergy(pj float64) {
	if c == nil {
		return
	}
	c.EnergyPJ += pj
}

// Region attributes offload activity to one software region. All methods
// are nil-receiver safe.
type Region struct {
	Kernel, Name string
	Launches     int64
	// The offload latency phases, in base cycles, mirroring the paper's
	// overhead analysis: host-side configuration (dispatch), waiting for
	// accelerator resources behind a prior launch (queue), the engine-run
	// execution itself (execute), and the host-side sync + scalar read-back
	// (writeback).
	Dispatch, Queue, Execute, Writeback int64

	comps map[string]int64 // component label -> base cycles (folded stacks)
}

// AddLaunch accounts one launch's phase cycles (no-op on nil).
func (r *Region) AddLaunch(dispatch, queue, execute, writeback int64) {
	if r == nil {
		return
	}
	r.Launches++
	r.Dispatch += dispatch
	r.Queue += queue
	r.Execute += execute
	r.Writeback += writeback
}

// AddComponent attributes base cycles of this region's execution to a named
// component — the kernel→region→component folded-stack edge (no-op on nil).
func (r *Region) AddComponent(label string, base int64) {
	if r == nil || base == 0 {
		return
	}
	r.comps[label] += base
}

// Total returns the region's end-to-end attributed base cycles.
func (r *Region) Total() int64 {
	if r == nil {
		return 0
	}
	return r.Dispatch + r.Queue + r.Execute + r.Writeback
}

// Queue is an occupancy histogram handle. Observe sits on simulation hot
// paths (buffer pushes), so the nil fast path is a single branch.
type Queue struct {
	Kind, Name string
	h          stats.Histogram
}

// Observe records one occupancy sample (no-op on nil).
func (q *Queue) Observe(depth int64) {
	if q == nil {
		return
	}
	q.h.Observe(float64(depth))
}

// Hist returns a copy of the underlying histogram (zero value on nil).
func (q *Queue) Hist() stats.Histogram {
	if q == nil {
		return stats.Histogram{}
	}
	return q.h
}

// SpanAgg aggregates the trace spans sharing one (track, name): the bridge
// from raw trace events to attribution (see AbsorbTrace).
type SpanAgg struct {
	Track, Name string
	Count       int64
	Cycles      int64 // summed span durations, base cycles
	Instants    int64
}

// AbsorbTrace folds a tracer's buffered events into the profiler's span
// aggregates: spans sum their durations per (track, name), instants count.
// Iteration order is the tracer's deterministic visit order, and every
// accumulation is commutative, so absorbing shards in any order yields the
// same profile. No-op on a nil profiler or nil tracer.
func (p *Profiler) AbsorbTrace(tr *trace.Tracer) {
	if p == nil || tr == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	tr.VisitEvents(func(ev trace.Event) {
		k := spanKey{ev.Track, ev.Name}
		a, ok := p.spans[k]
		if !ok {
			a = &SpanAgg{Track: ev.Track, Name: ev.Name}
			p.spans[k] = a
		}
		if ev.Instant {
			a.Instants++
			return
		}
		a.Count++
		a.Cycles += ev.Dur
	})
}

// Merge folds other into p: components, regions, spans and the cycle
// denominator add; queue histograms merge exactly. Merging shards in any
// order yields identical results (every operation is commutative), which is
// what lets the experiment matrix fold per-cell profilers at any worker
// count. A nil p or other is a no-op.
func (p *Profiler) Merge(other *Profiler) {
	if p == nil || other == nil {
		return
	}
	other.mu.Lock()
	defer other.mu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalBase += other.totalBase
	p.runs += other.runs
	for k, oc := range other.comps {
		c, ok := p.comps[k]
		if !ok {
			c = &Component{Kind: oc.Kind, Name: oc.Name}
			p.comps[k] = c
		}
		c.Busy += oc.Busy
		c.Stall += oc.Stall
		c.Events += oc.Events
		c.EnergyPJ += oc.EnergyPJ
	}
	for k, or := range other.regions {
		r, ok := p.regions[k]
		if !ok {
			r = &Region{Kernel: or.Kernel, Name: or.Name, comps: map[string]int64{}}
			p.regions[k] = r
		}
		r.Launches += or.Launches
		r.Dispatch += or.Dispatch
		r.Queue += or.Queue
		r.Execute += or.Execute
		r.Writeback += or.Writeback
		for label, n := range or.comps {
			r.comps[label] += n
		}
	}
	for k, oq := range other.queues {
		q, ok := p.queues[k]
		if !ok {
			q = &Queue{Kind: oq.Kind, Name: oq.Name}
			p.queues[k] = q
		}
		q.h.Merge(&oq.h)
	}
	for k, os := range other.spans {
		a, ok := p.spans[k]
		if !ok {
			a = &SpanAgg{Track: os.Track, Name: os.Name}
			p.spans[k] = a
		}
		a.Count += os.Count
		a.Cycles += os.Cycles
		a.Instants += os.Instants
	}
	for k, oe := range other.extern {
		e, ok := p.extern[k]
		if !ok {
			e = &externStat{desc: oe.desc}
			p.extern[k] = e
		}
		e.v += oe.v
	}
}

// Extern accumulates one externally-computed statistic under the given
// dotted name — the hook other subsystems (shard attribution) use to land
// their numbers in the stats dump without this package importing them.
// Values with the same name sum; Merge sums across profilers. No-op on nil.
func (p *Profiler) Extern(name, desc string, v float64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.extern[name]
	if !ok {
		e = &externStat{desc: desc}
		p.extern[name] = e
	}
	e.v += v
}

// Components returns every component sorted by (kind, name).
func (p *Profiler) Components() []*Component {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Component, 0, len(p.comps))
	for _, c := range p.comps {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Regions returns every region sorted by (kernel, name).
func (p *Profiler) Regions() []*Region {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Region, 0, len(p.regions))
	for _, r := range p.regions {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Queues returns every queue sorted by (kind, name).
func (p *Profiler) Queues() []*Queue {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Queue, 0, len(p.queues))
	for _, q := range p.queues {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Spans returns every span aggregate sorted by (track, name).
func (p *Profiler) Spans() []*SpanAgg {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*SpanAgg, 0, len(p.spans))
	for _, a := range p.spans {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// regionComponents returns a region's folded-stack edges sorted by label.
func (r *Region) regionComponents() []struct {
	Label string
	Base  int64
} {
	out := make([]struct {
		Label string
		Base  int64
	}, 0, len(r.comps))
	for label, n := range r.comps {
		out = append(out, struct {
			Label string
			Base  int64
		}{label, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
