package profile

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"distda/internal/trace"
)

// -update regenerates the golden files under testdata/ from the current
// export output. Run `go test ./internal/profile -update` after an
// intentional schema change, then review the diff like any other code.
var update = flag.Bool("update", false, "rewrite the golden files")

// shardA/shardB/shardC build per-cell profilers with deliberately
// overlapping keys, the shape Merge sees when folding a parallel experiment
// matrix: the same component appears in several shards, some keys exist in
// only one shard, and queue histograms overlap.
func shardA() *Profiler {
	p := New()
	p.AddRun(1000)
	c := p.Component("core", "core:0")
	c.AddBusy(300)
	c.AddStall(50)
	c.AddEvents(120)
	c.AddEnergy(42.5)
	p.Component("dram", "chan0").AddBusy(200)
	r := p.Region("fdtd-2d", "r0")
	r.AddLaunch(10, 40, 200, 5)
	r.AddComponent("core:0", 180)
	q := p.Queue("buffer", "buf0")
	for i := int64(0); i < 8; i++ {
		q.Observe(i)
	}
	tr := trace.New()
	tc := tr.Component("host.cpu")
	tc.Span("offload", 0, 100)
	tc.Span("offload", 200, 50)
	tc.Instant("flush", 10)
	p.AbsorbTrace(tr)
	return p
}

func shardB() *Profiler {
	p := New()
	p.AddRun(2000)
	p.Component("core", "core:0").AddBusy(700)
	p.Component("core", "core:1").AddEvents(9)
	r := p.Region("fdtd-2d", "r0")
	r.AddLaunch(20, 60, 400, 15)
	r.AddComponent("core:0", 150)
	r.AddComponent("core:1", 100)
	q := p.Queue("buffer", "buf0")
	for i := int64(4); i < 16; i++ {
		q.Observe(i)
	}
	tr := trace.New()
	tr.Component("host.cpu").Span("offload", 0, 75)
	p.AbsorbTrace(tr)
	return p
}

func shardC() *Profiler {
	p := New()
	p.AddRun(500)
	p.Component("noc_link", "n0->n1").AddEvents(33)
	r := p.Region("bfs", "r0")
	r.AddLaunch(5, 0, 95, 0)
	r.AddComponent("fabric:0", 95)
	p.Queue("buffer", "buf1").Observe(2)
	return p
}

// merged folds the three shards in the given order into a fresh profiler.
func merged(order ...func() *Profiler) *Profiler {
	p := New()
	for _, mk := range order {
		p.Merge(mk())
	}
	return p
}

func TestExportGolden(t *testing.T) {
	p := merged(shardA, shardB, shardC)
	outputs := map[string]string{}

	var stats bytes.Buffer
	if err := p.WriteStats(&stats); err != nil {
		t.Fatal(err)
	}
	outputs["stats"] = stats.String()

	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	outputs["folded"] = folded.String()

	outputs["breakdown"] = p.LatencyBreakdown().Render()

	for name, got := range outputs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/profile -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("export mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestMergeOrderInvariance pins the commutativity contract that lets the
// experiment matrix fold per-cell profilers at any worker count: every merge
// order produces byte-identical exports.
func TestMergeOrderInvariance(t *testing.T) {
	orders := [][]func() *Profiler{
		{shardA, shardB, shardC},
		{shardC, shardB, shardA},
		{shardB, shardA, shardC},
	}
	var ref string
	for i, order := range orders {
		p := merged(order...)
		var stats, folded bytes.Buffer
		if err := p.WriteStats(&stats); err != nil {
			t.Fatal(err)
		}
		if err := p.WriteFolded(&folded); err != nil {
			t.Fatal(err)
		}
		got := stats.String() + "\n===\n" + folded.String() + "\n===\n" + p.LatencyBreakdown().Render()
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("merge order %d produced different exports", i)
		}
	}
}

func TestNilProfilerIsSafeAndDisabled(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Error("nil profiler reports enabled")
	}
	// Every handle off a nil profiler is nil and every record call no-ops.
	c := p.Component("core", "core:0")
	c.AddBusy(1)
	c.AddStall(1)
	c.AddEvents(1)
	c.AddEnergy(1)
	r := p.Region("k", "r")
	r.AddLaunch(1, 2, 3, 4)
	r.AddComponent("core:0", 5)
	if r.Total() != 0 {
		t.Error("nil region has nonzero total")
	}
	q := p.Queue("buffer", "buf0")
	q.Observe(3)
	if h := q.Hist(); h.N != 0 {
		t.Error("nil queue recorded samples")
	}
	p.AddRun(100)
	p.AbsorbTrace(trace.New())
	p.Merge(New())
	if p.TotalBase() != 0 {
		t.Error("nil profiler accumulated cycles")
	}
	if p.Components() != nil || p.Regions() != nil || p.Queues() != nil || p.Spans() != nil {
		t.Error("nil profiler returned non-nil listings")
	}

	var stats bytes.Buffer
	if err := p.WriteStats(&stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), "profiling disabled") {
		t.Errorf("nil stats dump missing disabled marker:\n%s", stats.String())
	}
	var folded bytes.Buffer
	if err := p.WriteFolded(&folded); err != nil {
		t.Fatal(err)
	}
	if folded.Len() != 0 {
		t.Errorf("nil folded output not empty: %q", folded.String())
	}
	if out := p.LatencyBreakdown().Render(); !strings.Contains(out, "profiling disabled") {
		t.Errorf("nil breakdown missing disabled note:\n%s", out)
	}
}

func TestAbsorbTraceAggregation(t *testing.T) {
	tr := trace.New()
	c := tr.Component("engine")
	c.Span("run", 0, 10)
	c.Span("run", 20, 30)
	c.Instant("wakeup", 5)
	c.Instant("wakeup", 6)
	p := New()
	p.AbsorbTrace(tr)
	spans := p.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	byName := map[string]*SpanAgg{}
	for _, a := range spans {
		byName[a.Name] = a
	}
	run := byName["run"]
	if run == nil || run.Count != 2 || run.Cycles != 40 || run.Instants != 0 {
		t.Errorf("run aggregate = %+v, want count 2 cycles 40", run)
	}
	wake := byName["wakeup"]
	if wake == nil || wake.Instants != 2 || wake.Count != 0 {
		t.Errorf("wakeup aggregate = %+v, want 2 instants", wake)
	}
}

func TestFoldedStacksSumToRegionTotal(t *testing.T) {
	// Every attributed cycle appears exactly once: the folded lines of a
	// region sum to Region.Total() when the component attribution fits
	// inside the execute window.
	p := New()
	r := p.Region("k", "r0")
	r.AddLaunch(10, 40, 200, 5)
	r.AddComponent("core:0", 120)
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
		var n int64
		for _, ch := range fields[1] {
			n = n*10 + int64(ch-'0')
		}
		sum += n
	}
	if sum != r.Total() {
		t.Errorf("folded stacks sum to %d, want region total %d\n%s", sum, r.Total(), buf.String())
	}
}

func TestProgressSnapshot(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	p := NewProgress(4)
	p.start = base
	p.now = func() time.Time { return now }

	if s := p.Snapshot(); s.Done != 0 || s.ETAS != 0 || s.PercentDone != 0 {
		t.Errorf("empty snapshot = %+v", s)
	}

	now = base.Add(10 * time.Second)
	p.Record(CellStatus{Workload: "fdtd-2d", Config: "Dist-DA-F", Dur: 2 * time.Second})
	p.Record(CellStatus{Workload: "bfs", Config: "OoO", Dur: time.Second, Degraded: true})
	s := p.Snapshot()
	if s.Done != 2 || s.Total != 4 || s.Degraded != 1 {
		t.Errorf("snapshot counts = %+v", s)
	}
	if s.PercentDone != 50 {
		t.Errorf("percent = %v, want 50", s.PercentDone)
	}
	// 2 cells in 10s -> 5s per cell -> 2 remaining -> 10s ETA.
	if s.ETAS != 10 {
		t.Errorf("eta = %v, want 10", s.ETAS)
	}
	if s.Last.Workload != "bfs" || !s.Last.Degraded || s.Last.DurMS != 1000 {
		t.Errorf("last cell = %+v", s.Last)
	}

	// SetTotal rewrites the denominator for callers that learn it late.
	p.SetTotal(2)
	if s := p.Snapshot(); s.PercentDone != 100 || s.ETAS != 0 {
		t.Errorf("completed snapshot = %+v", s)
	}

	var nilP *Progress
	nilP.SetTotal(3)
	nilP.Record(CellStatus{})
	if s := nilP.Snapshot(); s != (Snapshot{}) {
		t.Errorf("nil progress snapshot = %+v", s)
	}
}
