package profile

import (
	"sync"
	"time"
)

// Progress tracks live completion of a long experiment-matrix run for the
// -http introspection endpoint: per-cell completion events feed it, and
// Snapshot produces the JSON progress/ETA view. It is wall-clock based (the
// only part of the observability stack that is — everything else counts
// simulated cycles) and safe for concurrent use from matrix workers.
type Progress struct {
	mu        sync.Mutex
	start     time.Time
	total     int
	done      int
	degraded  int
	resumed   int
	simulated time.Duration // summed wall-clock across completed cells
	last      CellStatus
	now       func() time.Time // test seam; nil means time.Now
}

// CellStatus describes one completed matrix cell.
type CellStatus struct {
	Workload string        `json:"workload"`
	Config   string        `json:"config"`
	Dur      time.Duration `json:"-"`
	DurMS    float64       `json:"dur_ms"`
	Degraded bool          `json:"degraded"`
	Resumed  bool          `json:"resumed"`
}

// NewProgress returns a progress tracker expecting total cells.
func NewProgress(total int) *Progress {
	return &Progress{total: total, start: time.Now()}
}

// SetTotal updates the expected cell count (for callers that learn it from
// the first completion event). Safe on nil and for concurrent use.
func (p *Progress) SetTotal(total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total = total
	p.mu.Unlock()
}

// Record accounts one completed cell. Safe on nil and for concurrent use.
func (p *Progress) Record(st CellStatus) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if st.Degraded {
		p.degraded++
	}
	if st.Resumed {
		p.resumed++
	}
	p.simulated += st.Dur
	st.DurMS = float64(st.Dur) / float64(time.Millisecond)
	p.last = st
}

// Snapshot is the JSON view served at /progress.
type Snapshot struct {
	Total       int        `json:"total"`
	Done        int        `json:"done"`
	Degraded    int        `json:"degraded"`
	Resumed     int        `json:"resumed"`
	PercentDone float64    `json:"percent_done"`
	ElapsedS    float64    `json:"elapsed_s"`
	ETAS        float64    `json:"eta_s"` // estimated seconds remaining (0 when unknown/finished)
	Last        CellStatus `json:"last_cell"`
}

// Snapshot returns the current progress view. The ETA extrapolates the
// observed per-cell rate over the remaining cells; it is 0 until the first
// cell completes. Safe on nil (returns the zero snapshot).
func (p *Progress) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	nowFn := p.now
	if nowFn == nil {
		nowFn = time.Now
	}
	elapsed := nowFn().Sub(p.start)
	s := Snapshot{
		Total:    p.total,
		Done:     p.done,
		Degraded: p.degraded,
		Resumed:  p.resumed,
		ElapsedS: elapsed.Seconds(),
		Last:     p.last,
	}
	if p.total > 0 {
		s.PercentDone = 100 * float64(p.done) / float64(p.total)
	}
	if p.done > 0 && p.done < p.total {
		perCell := elapsed / time.Duration(p.done)
		s.ETAS = (perCell * time.Duration(p.total-p.done)).Seconds()
	}
	return s
}
