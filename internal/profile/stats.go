package profile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteStats writes the profile as a gem5-style stats dump: one
// `name  value  # description` line per statistic, grouped by section and
// sorted within each group, bracketed by the gem5 begin/end markers. The
// output is deterministic for a deterministic run (and for any merge order
// of parallel shards).
//
// Schema (documented in docs/OBSERVABILITY.md):
//
//	sim.total_base_cycles / sim.runs
//	<kind>.<name>.busy_cycles / .stall_cycles / .events / .energy_pj
//	<kind>.<name>.utilization         (busy / total base cycles)
//	region.<kernel>:<region>.launches / .dispatch_cycles / .queue_cycles /
//	    .execute_cycles / .writeback_cycles / .total_cycles
//	queue.<kind>.<name>.occ::samples/::mean/::min/::max/::p50/::p95/::p99
//	span.<track>.<name>.count / .cycles / .instants
func (p *Profiler) WriteStats(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "---------- Begin Simulation Statistics ----------"); err != nil {
		return err
	}
	line := func(name string, value string, desc string) {
		fmt.Fprintf(bw, "%-58s %20s  # %s\n", name, value, desc)
	}
	iv := func(name string, v int64, desc string) { line(name, fmt.Sprintf("%d", v), desc) }
	fv := func(name string, v float64, desc string) { line(name, fmt.Sprintf("%.6f", v), desc) }

	if p == nil {
		iv("sim.total_base_cycles", 0, "profiling disabled")
		fmt.Fprintln(bw, "---------- End Simulation Statistics   ----------")
		return bw.Flush()
	}

	p.mu.Lock()
	total := p.totalBase
	runs := p.runs
	p.mu.Unlock()

	iv("sim.total_base_cycles", total, "simulated base cycles across absorbed runs (6 GHz base clock)")
	iv("sim.runs", runs, "simulation runs absorbed into this profile")

	for _, c := range p.Components() {
		prefix := c.Kind + "." + c.Name
		iv(prefix+".busy_cycles", c.Busy, "base cycles doing useful work")
		if c.Stall != 0 {
			iv(prefix+".stall_cycles", c.Stall, "base cycles stalled")
		}
		if c.Events != 0 {
			iv(prefix+".events", c.Events, "component events (ops/accesses/flit-hops)")
		}
		if c.EnergyPJ != 0 {
			fv(prefix+".energy_pj", c.EnergyPJ, "dynamic energy attributed (pJ)")
		}
		if total > 0 {
			fv(prefix+".utilization", float64(c.Busy)/float64(total), "busy cycles / total base cycles")
		}
	}

	for _, r := range p.Regions() {
		prefix := "region." + r.Kernel + ":" + r.Name
		iv(prefix+".launches", r.Launches, "offload launches of this region")
		iv(prefix+".dispatch_cycles", r.Dispatch, "host-side flush + configuration (base cycles)")
		iv(prefix+".queue_cycles", r.Queue, "waiting behind prior launches (base cycles)")
		iv(prefix+".execute_cycles", r.Execute, "accelerator execution (base cycles)")
		iv(prefix+".writeback_cycles", r.Writeback, "sync wait + scalar read-back (base cycles)")
		iv(prefix+".total_cycles", r.Total(), "end-to-end offload latency (base cycles)")
	}

	for _, q := range p.Queues() {
		h := q.Hist()
		prefix := "queue." + q.Kind + "." + q.Name + ".occ"
		iv(prefix+"::samples", h.N, "occupancy samples")
		fv(prefix+"::mean", h.Mean(), "mean occupancy")
		fv(prefix+"::min", h.Min, "min observed occupancy")
		fv(prefix+"::max", h.Max, "max observed occupancy")
		fv(prefix+"::p50", h.Percentile(50), "p50 occupancy (bucket upper bound)")
		fv(prefix+"::p95", h.Percentile(95), "p95 occupancy (bucket upper bound)")
		fv(prefix+"::p99", h.Percentile(99), "p99 occupancy (bucket upper bound)")
	}

	for _, a := range p.Spans() {
		prefix := "span." + a.Track + "." + a.Name
		if a.Count > 0 {
			iv(prefix+".count", a.Count, "trace spans aggregated")
			iv(prefix+".cycles", a.Cycles, "summed span duration (base cycles)")
		}
		if a.Instants > 0 {
			iv(prefix+".instants", a.Instants, "instant events")
		}
	}

	// External statistics (shard attribution and friends), sorted by name.
	p.mu.Lock()
	names := make([]string, 0, len(p.extern))
	for name := range p.extern {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := p.extern[name]
		fv(name, e.v, e.desc)
	}
	p.mu.Unlock()

	if _, err := fmt.Fprintln(bw, "---------- End Simulation Statistics   ----------"); err != nil {
		return err
	}
	return bw.Flush()
}
