package report

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files under testdata/ from the current
// renderer output. Run `go test ./internal/report -update` after an
// intentional formatting change, then review the diff like any other code.
var update = flag.Bool("update", false, "rewrite the golden files")

// goldenTables is the fixed corpus: every layout feature of the renderer is
// exercised by at least one table, so any change to alignment, separators,
// titles or notes shows up as a golden diff.
func goldenTables() map[string]*Table {
	basic := &Table{
		Title:   "Fig. 7: energy efficiency over OoO",
		Columns: []string{"workload", "Mono-CA", "Mono-DA-F", "Dist-DA-IO", "Dist-DA-F"},
	}
	basic.AddRow("fdtd-2d", "1.12", "3.41", "6.02", "8.73")
	basic.AddRow("bfs", "0.98", "2.10", "3.88", "4.12")
	basic.AddRow("geomean", "1.05", "2.68", "4.83", "6.00")
	basic.AddNote("paper geomean: 8.0x (Dist-DA-F)")

	degraded := &Table{
		Title:   "Fig. 11b: speedup over OoO",
		Columns: []string{"workload", "Dist-DA-IO", "Dist-DA-F"},
	}
	degraded.AddRow("fdtd-2d", NA, "2.54")
	degraded.AddRow("bfs", "1.31", "1.46")
	degraded.AddRow("geomean", NA, "1.93")
	degraded.AddNote("1 cell(s) degraded to %s; geomean skips them", NA)

	untitled := &Table{Columns: []string{"component", "metric", "value"}}
	untitled.AddRow("artifact", "compiles", "12")
	untitled.AddRow("artifact", "disk_hits", "0")
	untitled.AddRow("engine", "fast_forwards", "48219")

	ragged := &Table{
		Title:   "ragged rows",
		Columns: []string{"name", "a", "b"},
	}
	ragged.AddRow("full", "1", "2")
	ragged.AddRow("short", "1") // fewer cells than columns
	ragged.AddRow("a-very-long-row-label", "100000", "3")

	return map[string]*Table{
		"basic":    basic,
		"degraded": degraded,
		"untitled": untitled,
		"ragged":   ragged,
	}
}

func TestRenderGolden(t *testing.T) {
	for name, tab := range goldenTables() {
		t.Run(name, func(t *testing.T) {
			got := tab.Render()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/report -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("render mismatch for %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestGoldenNACells pins the degraded-cell contract independently of the
// golden bytes: NA renders inline, right-aligned like any numeric cell, and
// never collapses the row.
func TestGoldenNACells(t *testing.T) {
	tab := goldenTables()["degraded"]
	out := tab.Render()
	if want := 3; len(tab.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), want)
	}
	for _, line := range []string{"fdtd-2d", "geomean", NA} {
		if !containsLine(out, line) {
			t.Errorf("rendered table lacks %q:\n%s", line, out)
		}
	}
}

func containsLine(out, sub string) bool {
	for i := 0; i+len(sub) <= len(out); i++ {
		if out[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
