// Metrics.Table determinism lives with the report golden corpus because the
// contract under test is a rendering one: the table a merged registry
// produces must be byte-stable across shard merge orders. The test is in an
// external test package so it can import internal/trace (which itself
// imports internal/report).
package report_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"distda/internal/trace"
)

var updateMetrics = flag.Bool("update-metrics", false, "rewrite the metrics golden file")

// shard builds one parallel cell's registry. The corpus deliberately
// includes a counter, a gauge and a histogram registered under the SAME full
// name ("engine/work") — the tie the kind ordering in Metrics.Table breaks;
// before that tiebreaker the rendered order depended on map iteration and
// differed between runs and merge orders.
// Gauge values are the same in every shard: Merge is last-write-wins for
// gauges by design, so only identical values are merge-order invariant —
// the property under test here is row ordering, not gauge semantics.
func shard(seed int64) *trace.Metrics {
	m := trace.NewMetrics()
	m.Counter("engine/work").Add(10 * seed)
	m.Gauge("engine/work").Set(7)
	m.Histogram("engine/work").Observe(float64(seed))
	m.Counter("artifact/compiles").Add(seed)
	m.Gauge("noc/peak_occupancy").Set(42)
	m.Histogram("dram/burst").ObserveN(float64(seed), 4)
	return m
}

func mergeOrder(order ...int64) string {
	m := trace.NewMetrics()
	for _, s := range order {
		m.Merge(shard(s))
	}
	return m.Table().Render()
}

// TestMetricsTableMergeDeterministic renders the merged registry for every
// permutation of three shards and requires byte-identical tables, pinned to
// a golden file. This is the regression test for the ordering fix: same-name
// counter/gauge/histogram rows sort by kind, not by map iteration order.
func TestMetricsTableMergeDeterministic(t *testing.T) {
	got := mergeOrder(1, 2, 3)
	for _, order := range [][]int64{{1, 3, 2}, {2, 1, 3}, {2, 3, 1}, {3, 1, 2}, {3, 2, 1}} {
		if other := mergeOrder(order...); other != got {
			t.Errorf("merge order %v renders differently:\n--- reference ---\n%s--- got ---\n%s",
				order, got, other)
		}
	}
	// And within one registry, repeated renders must agree (map iteration
	// must not leak into row order).
	m := trace.NewMetrics()
	m.Merge(shard(1))
	m.Merge(shard(2))
	first := m.Table().Render()
	for i := 0; i < 16; i++ {
		if r := m.Table().Render(); r != first {
			t.Fatalf("render %d differs from first render", i)
		}
	}

	path := filepath.Join("testdata", "metrics_merge.golden")
	if *updateMetrics {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/report -update-metrics`): %v", err)
	}
	if got != string(want) {
		t.Errorf("merged metrics table mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
