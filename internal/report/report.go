// Package report renders evaluation tables and figure series as aligned
// text, one renderer per paper table/figure.
package report

import (
	"fmt"
	"strings"
)

// Table is a labeled grid of formatted cells.
type Table struct {
	Title   string
	Columns []string // including the leading row-label column
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row; the first cell is the label.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NA is the cell text for values that could not be computed — e.g. a
// degraded (timed-out) matrix cell. Renderers emit it instead of dropping
// the row so every table keeps its full shape.
const NA = "n/a"

// F formats a float for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// Render returns the aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i]+2, cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
