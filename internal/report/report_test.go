package report

import (
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
	}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "12345")
	tab.AddNote("a note %d", 7)
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "== demo ==") {
		t.Fatalf("title line: %q", lines[0])
	}
	// Header, separator and both rows share the same width.
	if len(lines) != 6 {
		t.Fatalf("lines = %d: %q", len(lines), lines)
	}
	if len(lines[3]) != len(lines[4]) {
		t.Fatalf("row widths differ: %q vs %q", lines[3], lines[4])
	}
	if !strings.Contains(lines[5], "note: a note 7") {
		t.Fatalf("note line: %q", lines[5])
	}
}

func TestF(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.437, "0.44"},
		{3.14159, "3.14"},
		{42.4, "42.4"},
		{1234.5, "1234"},
	}
	for _, c := range cases {
		if got := F(c.v); got != c.want {
			t.Errorf("F(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestRenderWithoutTitle(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("x")
	if strings.Contains(tab.Render(), "==") {
		t.Fatal("unexpected title")
	}
}
