package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"distda/internal/cliutil"
	"distda/internal/obs"
)

// Handler returns the server's HTTP API.
//
//	POST   /api/v1/jobs             submit a JobSpec, returns 202 + JobStatus
//	GET    /api/v1/jobs             list all jobs (submission order)
//	GET    /api/v1/jobs/{id}        job status (state, progress, timings, spans)
//	GET    /api/v1/jobs/{id}/result rendered output once done (text/plain)
//	GET    /api/v1/jobs/{id}/events server-sent progress events until terminal
//	GET    /api/v1/jobs/{id}/trace  lifecycle spans as a Chrome trace_event file
//	DELETE /api/v1/jobs/{id}        cancel a queued or running job
//	GET    /api/v1/stats            server counters + cache statistics
//	GET    /metrics                 Prometheus text exposition (wall-clock)
//	GET    /healthz                 liveness probe
//	GET    /readyz                  readiness probe (503 once draining)
//	/progress, /debug/vars, /debug/pprof/*  live introspection (cliutil mux)
//
// Backpressure surfaces as HTTP 429 (queue full or tenant rate limit,
// distinguished by the error body) and shutdown as 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	intro := cliutil.NewIntrospectionMux(nil, s.obsReg)
	mux.Handle("/progress", intro)
	mux.Handle("/debug/", intro)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
		return
	}
	j, err := s.Submit(spec)
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrShuttingDown):
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	st := s.Status(j)
	w.Header().Set("Location", "/api/v1/jobs/"+st.ID)
	code := http.StatusAccepted
	if st.State == StateDone {
		code = http.StatusOK // result cache hit: already complete
	}
	writeJSON(w, code, st)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, s.Status(j))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	if err := s.Cancel(j.id); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.Status(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	out, state, errMsg := s.Result(j)
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(out)
	case StateFailed:
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("job failed: %s", errMsg))
	case StateCanceled:
		writeErr(w, http.StatusGone, fmt.Errorf("job canceled"))
	default:
		// Still queued or running: point the client at the status view.
		writeJSON(w, http.StatusAccepted, s.Status(j))
	}
}

// handleEvents streams job progress as server-sent events: one "progress"
// event per snapshot change, then a final "done" event with the terminal
// status. Clients: curl -N .../events
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	send := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		if canFlush {
			fl.Flush()
		}
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	var last string
	for {
		st := s.Status(j)
		if cur, _ := json.Marshal(st.Progress); string(cur) != last {
			last = string(cur)
			send("progress", st.Progress)
		}
		select {
		case <-j.Done():
			send("done", s.Status(j))
			return
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics renders the wall-clock telemetry registry in Prometheus
// text exposition format. Scrape-time mirrors (queue gauges, cache
// counters, shard attribution) are refreshed first.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.obsReg == nil {
		http.Error(w, "telemetry disabled (Config.Obs is nil)", http.StatusNotFound)
		return
	}
	s.syncObs()
	w.Header().Set("Content-Type", obs.ContentType)
	_ = s.obsReg.WritePrometheus(w)
}

// handleReady reports readiness: 200 while accepting jobs, 503 once a
// graceful drain has begun — load balancers stop routing new work while
// in-flight jobs finish.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleTrace exports a job's lifecycle spans as a Chrome trace_event
// JSON file (load in chrome://tracing or Perfetto).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	st := s.Status(j)
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteTraceEvents(w, st.ID, st.Spans)
}
