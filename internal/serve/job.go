// Package serve implements the distda-serve job server: a long-running
// HTTP service that accepts experiment jobs (one workload × configuration
// run, or a §VI reproduction matrix selection) as JSON, executes them on a
// bounded worker pool with per-tenant fairness and rate limiting, and
// returns rendered results that are byte-identical to the equivalent
// distda-run / distda-repro batch invocation.
//
// Results are content-addressed with artifact.ResultKey, so an identical
// re-submission — same scale, configuration, kernel text, selection — is
// served from the result cache without recomputing, across requests,
// tenants and server restarts.
package serve

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"distda/internal/artifact"
	"distda/internal/cliutil"
	"distda/internal/engine"
	"distda/internal/exp"
	"distda/internal/ir"
	"distda/internal/sim"
	"distda/internal/workloads"
)

// Job kinds.
const (
	// KindRun executes one workload under one configuration and renders
	// the distda-run result block.
	KindRun = "run"
	// KindMatrix builds the experiment matrix (as needed) and renders a
	// distda-repro table/figure selection.
	KindMatrix = "matrix"
)

// JobSpec is the request body for POST /api/v1/jobs. Exactly the knobs the
// batch CLIs expose travel here, so every job has a byte-identical
// command-line equivalent.
type JobSpec struct {
	// Kind selects the job type: "run" or "matrix". Defaults to "run"
	// when a workload is named and "matrix" otherwise.
	Kind string `json:"kind,omitempty"`
	// Tenant is the fairness/rate-limit bucket this job bills to.
	// Defaults to "anonymous".
	Tenant string `json:"tenant,omitempty"`
	// Scale is the input scale: test, bench or paper (default bench, like
	// the CLIs).
	Scale string `json:"scale,omitempty"`
	// Engine selects the engine scheduler: adaptive, event or naive
	// (default adaptive). Engine mode changes wall-clock only — results
	// are bit-identical across modes — so it is deliberately excluded
	// from the result-cache key.
	Engine string `json:"engine,omitempty"`
	// Shards, when above 1, executes each offload launch across up to
	// that many goroutine shards (one per independent NUCA island). Like
	// Engine it changes wall-clock only — results are bit-identical at
	// any shard count — and is excluded from the result-cache key.
	Shards int `json:"shards,omitempty"`

	// Run-job fields (Kind == "run").
	Workload string `json:"workload,omitempty"`
	// Config names the hardware configuration (default Dist-DA-F,
	// case-insensitive, same names as distda-run -c).
	Config  string `json:"config,omitempty"`
	Threads int    `json:"threads,omitempty"`
	GHz     int    `json:"ghz,omitempty"`
	// Kernel optionally replaces the workload's kernel with custom source
	// in the ir.Format dialect (dump a starting point with
	// distda-inspect -src). The custom kernel runs against the workload's
	// generated input objects, so it must declare compatible objects.
	Kernel string `json:"kernel,omitempty"`
	// Params overrides individual kernel parameters by name.
	Params map[string]float64 `json:"params,omitempty"`

	// Matrix-job fields (Kind == "matrix").
	Selection exp.Selection `json:"selection,omitempty"`
	// All selects everything distda-repro -all selects.
	All bool `json:"all,omitempty"`
}

// plan is a validated, fully resolved job: every name looked up, defaults
// applied, custom kernel parsed, result key derived. Planning happens at
// submission time so malformed jobs fail with 400 before queueing.
type plan struct {
	spec   JobSpec // normalized copy (defaults filled in)
	kind   string
	tenant string
	scale  workloads.Scale
	mode   engine.Mode
	key    string // artifact.ResultKey content address

	// Run jobs.
	workload *workloads.Workload
	cfg      sim.Config // named config with clock override applied
	kernel   *ir.Kernel // effective kernel, before thread strip-mining

	// Matrix jobs.
	sel exp.Selection
}

// Backend is the resolved accelerator backend a run job launches on
// ("" for backend-less configs and for matrix jobs, which span many).
func (p *plan) Backend() string {
	if p.kind != KindRun {
		return ""
	}
	return p.cfg.Backend
}

// planJob validates and resolves a submitted spec.
func planJob(spec JobSpec) (*plan, error) {
	p := &plan{spec: spec}
	if spec.Kind == "" {
		if spec.Workload != "" {
			spec.Kind = KindRun
		} else {
			spec.Kind = KindMatrix
		}
	}
	p.kind = spec.Kind
	p.tenant = spec.Tenant
	if p.tenant == "" {
		p.tenant = "anonymous"
	}
	if spec.Scale == "" {
		spec.Scale = "bench"
	}
	scale, err := cliutil.ParseScale(spec.Scale)
	if err != nil {
		return nil, err
	}
	p.scale = scale
	if spec.Engine == "" {
		spec.Engine = "adaptive"
	}
	mode, err := engine.ParseMode(spec.Engine)
	if err != nil {
		return nil, err
	}
	p.mode = mode
	if spec.Shards < 0 {
		return nil, fmt.Errorf("shards must be non-negative, got %d", spec.Shards)
	}

	switch p.kind {
	case KindRun:
		if err := p.planRun(&spec); err != nil {
			return nil, err
		}
	case KindMatrix:
		if err := p.planMatrix(&spec); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown job kind %q (want %q or %q)", p.kind, KindRun, KindMatrix)
	}
	p.spec = spec
	return p, nil
}

func (p *plan) planRun(spec *JobSpec) error {
	if spec.Workload == "" {
		return fmt.Errorf("run job needs a workload (see distda-run -list)")
	}
	w, err := cliutil.LookupWorkload(spec.Workload, p.scale)
	if err != nil {
		return err
	}
	if spec.Config == "" {
		spec.Config = "Dist-DA-F"
	}
	cfg, err := cliutil.LookupConfig(spec.Config)
	if err != nil {
		return err
	}
	switch spec.GHz {
	case 0:
	case 1, 2, 3:
		cfg = cfg.WithClock(spec.GHz)
	default:
		return fmt.Errorf("unsupported clock %d GHz (want 1, 2 or 3)", spec.GHz)
	}
	if spec.Threads == 0 {
		spec.Threads = 1
	}
	if spec.Threads < 1 {
		return fmt.Errorf("threads must be positive, got %d", spec.Threads)
	}
	kernel := w.Kernel
	if spec.Kernel != "" {
		kernel, err = ParseKernel(spec.Kernel)
		if err != nil {
			return err
		}
	}
	if len(spec.Params) > 0 {
		merged := make(map[string]float64, len(w.Params)+len(spec.Params))
		for k, v := range w.Params {
			merged[k] = v
		}
		for k, v := range spec.Params {
			merged[k] = v
		}
		w = &workloads.Workload{Name: w.Name, Desc: w.Desc, Kernel: w.Kernel, Params: merged, Gen: w.Gen}
	}
	p.workload = w
	p.cfg = cfg
	p.kernel = kernel

	// The content address covers everything that determines the result
	// bytes: scale and workload name pin the deterministically generated
	// inputs, the canonical config name pins the hardware model (clock
	// override included via WithClock's name suffix), and the formatted
	// kernel text plus resolved parameters pin the computation. Engine
	// mode is excluded on purpose — it only changes wall-clock.
	p.key = artifact.ResultKey(
		KindRun,
		p.scale.String(),
		cfg.Name,
		strconv.Itoa(spec.Threads),
		w.Name,
		ir.Format(kernel),
		formatParams(w.Params),
	)
	return nil
}

func (p *plan) planMatrix(spec *JobSpec) error {
	if spec.Workload != "" || spec.Config != "" || spec.Kernel != "" {
		return fmt.Errorf("matrix jobs take a selection, not workload/config/kernel fields")
	}
	sel := spec.Selection
	if spec.All {
		sel.SetAll()
	}
	if err := sel.Validate(); err != nil {
		return err
	}
	if sel.Empty() {
		return fmt.Errorf("empty selection: pick figures/tables or set all")
	}
	p.sel = sel
	spec.Selection = sel

	// Selection order matters for the rendered bytes, so the key hashes
	// the canonical JSON encoding (fixed field order) rather than a
	// sorted view.
	selJSON, err := json.Marshal(sel)
	if err != nil {
		return err
	}
	p.key = artifact.ResultKey(KindMatrix, p.scale.String(), string(selJSON))
	return nil
}

// formatParams serializes a parameter map deterministically for hashing.
func formatParams(params map[string]float64) string {
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%g\n", k, params[k])
	}
	return b.String()
}

// Equivalent returns the batch CLI invocation that produces this job's
// exact output bytes, for the status response and the docs' byte-identity
// claim.
func (p *plan) Equivalent() string {
	switch p.kind {
	case KindRun:
		parts := []string{"distda-run", "-w", p.spec.Workload, "-c", p.spec.Config, "-scale", p.spec.Scale}
		if p.spec.GHz != 0 {
			parts = append(parts, "-ghz", strconv.Itoa(p.spec.GHz))
		}
		if p.spec.Threads != 1 {
			parts = append(parts, "-threads", strconv.Itoa(p.spec.Threads))
		}
		if p.spec.Kernel != "" || len(p.spec.Params) > 0 {
			return "" // custom kernels have no CLI equivalent
		}
		return strings.Join(parts, " ")
	case KindMatrix:
		parts := []string{"distda-repro", "-scale", p.spec.Scale}
		if p.spec.All {
			return strings.Join(append(parts, "-all"), " ")
		}
		s := p.sel
		for _, f := range s.Figs {
			parts = append(parts, "-fig", f)
		}
		for _, t := range s.Tabs {
			parts = append(parts, "-tab", t)
		}
		if s.Headline {
			parts = append(parts, "-headline")
		}
		if s.Params {
			parts = append(parts, "-params")
		}
		if s.Sens {
			parts = append(parts, "-sens")
		}
		if s.Area {
			parts = append(parts, "-area")
		}
		if s.OffChip {
			parts = append(parts, "-offchip")
		}
		if s.PIM {
			parts = append(parts, "-pim")
		}
		if s.Ablations {
			parts = append(parts, "-ablations")
		}
		return strings.Join(parts, " ")
	}
	return ""
}
