package serve

// Custom-kernel support for submitted jobs: ParseKernel reads the textual
// kernel dialect ir.Format emits (the same pseudo-C distda-inspect -src
// prints), so a client can round-trip any kernel the tools can show — or
// write one from scratch — and POST it as the job's "kernel" field. The
// grammar is exactly Format's output language:
//
//	kernel name(p1, p2)
//	  object a[64] (8B elems)
//	  acc = 0
//	  for i = 0 .. $n step 1 {
//	    acc = (%acc add a[i])
//	    if (i lt $n) { out[i] = %acc }
//	  }
//
// Expressions are fully parenthesized binary forms `(a add b)`, unary
// calls `neg(x)`, predicated selects `sel(c, t, f)`, loads `obj[idx]`,
// parameters `$p`, locals `%v`, bare induction variables, and numeric
// literals. Whitespace and indentation are insignificant.

import (
	"fmt"
	"strconv"
	"strings"

	"distda/internal/ir"
)

// ParseKernel parses kernel source in the ir.Format dialect and validates
// the result with the IR validator. For every kernel k the tools can
// print, ParseKernel(ir.Format(k)) reproduces k up to formatting:
// ir.Format of the parsed kernel is byte-identical to the input's
// canonical form.
func ParseKernel(src string) (*ir.Kernel, error) {
	p := &kernelParser{lex: newLexer(src)}
	k, err := p.parse()
	if err != nil {
		return nil, err
	}
	if err := ir.Validate(k); err != nil {
		return nil, fmt.Errorf("serve: kernel %q: %w", k.Name, err)
	}
	return k, nil
}

// --- lexer ---

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokParam // $name
	tokLocal // %name
	tokPunct // one of ( ) [ ] { } , = and ".."
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokParam:
		return "$" + t.text
	case tokLocal:
		return "%" + t.text
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	toks []token
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdent(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans one token. Identifiers may contain '-' (workload kernels use
// names like fdtd-2d) but never start with it; '-' followed by a digit
// starts a negative number.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\n' {
			l.line++
			l.pos++
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	start, line := l.pos, l.line
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: line}, nil
	case c == '$' || c == '%':
		l.pos++
		ns := l.pos
		for l.pos < len(l.src) && isIdent(l.src[l.pos]) {
			l.pos++
		}
		if l.pos == ns {
			return token{}, fmt.Errorf("serve: kernel source line %d: %q without a name", line, string(c))
		}
		kind := tokParam
		if c == '%' {
			kind = tokLocal
		}
		return token{kind: kind, text: l.src[ns:l.pos], line: line}, nil
	case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && (isDigit(l.src[l.pos+1]) || l.src[l.pos+1] == '.')),
		c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case c == '.':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
			l.pos += 2
			return token{kind: tokPunct, text: "..", line: line}, nil
		}
		return token{}, fmt.Errorf("serve: kernel source line %d: stray '.'", line)
	case strings.IndexByte("()[]{},=", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), line: line}, nil
	default:
		return token{}, fmt.Errorf("serve: kernel source line %d: unexpected character %q", line, string(c))
	}
}

// lexNumber scans a Go %g-style literal: [-]digits[.digits][e[+-]digits].
// A '.' is consumed only when followed by a digit, so "0 .. 10" lexes as
// number, "..", number.
func (l *lexer) lexNumber() (token, error) {
	start, line := l.pos, l.line
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && isDigit(l.src[l.pos+1]) {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		p := l.pos + 1
		if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
			p++
		}
		if p < len(l.src) && isDigit(l.src[p]) {
			l.pos = p
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	text := l.src[start:l.pos]
	if _, err := strconv.ParseFloat(text, 64); err != nil {
		return token{}, fmt.Errorf("serve: kernel source line %d: bad number %q", line, text)
	}
	return token{kind: tokNumber, text: text, line: line}, nil
}

// --- parser ---

type kernelParser struct {
	lex    *lexer
	tok    token
	peeked bool
}

func (p *kernelParser) peek() (token, error) {
	if !p.peeked {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.tok, p.peeked = t, true
	}
	return p.tok, nil
}

func (p *kernelParser) next() (token, error) {
	t, err := p.peek()
	p.peeked = false
	return t, err
}

func (p *kernelParser) expectPunct(text string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokPunct || t.text != text {
		return fmt.Errorf("serve: kernel source line %d: expected %q, got %s", t.line, text, t)
	}
	return nil
}

func (p *kernelParser) expectIdent(word string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t.kind != tokIdent || t.text != word {
		return fmt.Errorf("serve: kernel source line %d: expected %q, got %s", t.line, word, t)
	}
	return nil
}

func (p *kernelParser) ident() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokIdent {
		return "", fmt.Errorf("serve: kernel source line %d: expected identifier, got %s", t.line, t)
	}
	return t.text, nil
}

func (p *kernelParser) intLit() (int, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	if t.kind != tokNumber {
		return 0, fmt.Errorf("serve: kernel source line %d: expected integer, got %s", t.line, t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("serve: kernel source line %d: expected integer, got %q", t.line, t.text)
	}
	return n, nil
}

func (p *kernelParser) parse() (*ir.Kernel, error) {
	if err := p.expectIdent("kernel"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	k := &ir.Kernel{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokPunct && t.text == ")" {
			p.peeked = false
			break
		}
		param, err := p.ident()
		if err != nil {
			return nil, err
		}
		k.Params = append(k.Params, param)
		t, err = p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind == tokPunct && t.text == "," {
			p.peeked = false
		}
	}
	// Object declarations: object name[len] (NB elems). The element width
	// lexes as number then the bare identifier "B".
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		if t.kind != tokIdent || t.text != "object" {
			break
		}
		p.peeked = false
		o := ir.ObjDecl{}
		if o.Name, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		if o.Len, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if o.ElemBytes, err = p.intLit(); err != nil {
			return nil, err
		}
		if err := p.expectIdent("B"); err != nil {
			return nil, err
		}
		if err := p.expectIdent("elems"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		k.Objects = append(k.Objects, o)
	}
	body, err := p.stmts(false)
	if err != nil {
		return nil, err
	}
	k.Body = body
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, fmt.Errorf("serve: kernel source line %d: trailing %s after kernel body", t.line, t)
	}
	return k, nil
}

// stmts parses statements until EOF (top level) or a closing '}' (inside a
// block; the '}' is consumed).
func (p *kernelParser) stmts(inBlock bool) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for {
		t, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch {
		case t.kind == tokEOF:
			if inBlock {
				return nil, fmt.Errorf("serve: kernel source line %d: unexpected end of input inside block", t.line)
			}
			return out, nil
		case t.kind == tokPunct && t.text == "}":
			if !inBlock {
				return nil, fmt.Errorf("serve: kernel source line %d: unexpected '}'", t.line)
			}
			p.peeked = false
			return out, nil
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *kernelParser) stmt() (ir.Stmt, error) {
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind != tokIdent {
		return nil, fmt.Errorf("serve: kernel source line %d: expected statement, got %s", t.line, t)
	}
	switch t.text {
	case "if":
		p.peeked = false
		return p.ifStmt()
	case "for", "parfor":
		p.peeked = false
		return p.forStmt(t.text == "parfor")
	}
	// Let (`name = expr`) or Store (`name[idx] = expr`).
	p.peeked = false
	name := t.text
	t2, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t2.kind == tokPunct && t2.text == "[" {
		p.peeked = false
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		return ir.Store{Obj: name, Idx: idx, Val: val}, nil
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return ir.Let{Name: name, E: e}, nil
}

func (p *kernelParser) ifStmt() (ir.Stmt, error) {
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	then, err := p.stmts(true)
	if err != nil {
		return nil, err
	}
	s := ir.If{Cond: cond, Then: then}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokIdent && t.text == "else" {
		p.peeked = false
		if err := p.expectPunct("{"); err != nil {
			return nil, err
		}
		if s.Else, err = p.stmts(true); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *kernelParser) forStmt(parallel bool) (ir.Stmt, error) {
	iv, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(".."); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("step"); err != nil {
		return nil, err
	}
	step, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	body, err := p.stmts(true)
	if err != nil {
		return nil, err
	}
	return &ir.For{IV: iv, Lo: lo, Hi: hi, Step: step, Body: body, Parallel: parallel}, nil
}

var binOps = map[string]ir.BinOp{
	"add": ir.Add, "sub": ir.Sub, "mul": ir.Mul, "div": ir.Div, "mod": ir.Mod,
	"min": ir.Min, "max": ir.Max, "lt": ir.Lt, "le": ir.Le, "gt": ir.Gt,
	"ge": ir.Ge, "eq": ir.Eq, "ne": ir.Ne, "and": ir.And, "or": ir.Or,
}

var unOps = map[string]ir.UnOp{
	"neg": ir.Neg, "abs": ir.Abs, "sqrt": ir.Sqrt, "not": ir.Not, "floor": ir.Floor,
}

func (p *kernelParser) expr() (ir.Expr, error) {
	t, err := p.next()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokNumber:
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: kernel source line %d: bad number %q", t.line, t.text)
		}
		return ir.Const{V: v}, nil
	case tokParam:
		return ir.Param{Name: t.text}, nil
	case tokLocal:
		return ir.Local{Name: t.text}, nil
	case tokPunct:
		if t.text != "(" {
			return nil, fmt.Errorf("serve: kernel source line %d: expected expression, got %s", t.line, t)
		}
		// Parenthesized binary form: (a op b).
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		opTok, err := p.next()
		if err != nil {
			return nil, err
		}
		op, ok := binOps[opTok.text]
		if opTok.kind != tokIdent || !ok {
			return nil, fmt.Errorf("serve: kernel source line %d: unknown binary operator %s", opTok.line, opTok)
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return ir.Bin{Op: op, A: a, B: b}, nil
	case tokIdent:
		if t.text == "sel" {
			if next, err := p.peek(); err == nil && next.kind == tokPunct && next.text == "(" {
				p.peeked = false
				c, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
				tt, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(","); err != nil {
					return nil, err
				}
				f, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return ir.Sel{Cond: c, T: tt, F: f}, nil
			} else if err != nil {
				return nil, err
			}
		}
		if op, ok := unOps[t.text]; ok {
			if next, err := p.peek(); err == nil && next.kind == tokPunct && next.text == "(" {
				p.peeked = false
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return ir.Un{Op: op, A: a}, nil
			} else if err != nil {
				return nil, err
			}
		}
		// Load (`obj[idx]`) or bare induction variable.
		if next, err := p.peek(); err == nil && next.kind == tokPunct && next.text == "[" {
			p.peeked = false
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return ir.Load{Obj: t.text, Idx: idx}, nil
		} else if err != nil {
			return nil, err
		}
		return ir.IV{Name: t.text}, nil
	default:
		return nil, fmt.Errorf("serve: kernel source line %d: expected expression, got %s", t.line, t)
	}
}
