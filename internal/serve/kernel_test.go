package serve

import (
	"strings"
	"testing"

	"distda/internal/ir"
	"distda/internal/workloads"
)

// TestParseKernelRoundTripsAllWorkloads proves the parser accepts exactly
// the dialect ir.Format emits: for every kernel the suite ships (all
// twelve benchmarks at every scale, the case study, and the multithreaded
// variants), parsing the formatted source and re-formatting reproduces the
// bytes. A client can therefore dump any kernel with distda-inspect -src,
// edit it, and submit the result as a custom-kernel job.
func TestParseKernelRoundTripsAllWorkloads(t *testing.T) {
	var kernels []*ir.Kernel
	for _, scale := range []workloads.Scale{workloads.ScaleTest, workloads.ScaleBench} {
		for _, w := range workloads.All(scale) {
			kernels = append(kernels, w.Kernel)
		}
		kernels = append(kernels,
			workloads.SpMV(scale).Kernel,
			workloads.BFSMT(scale).Kernel,
			workloads.PathfinderMT(scale).Kernel)
	}
	for _, k := range kernels {
		src := ir.Format(k)
		parsed, err := ParseKernel(src)
		if err != nil {
			t.Errorf("%s: parse failed: %v\nsource:\n%s", k.Name, err, src)
			continue
		}
		if got := ir.Format(parsed); got != src {
			t.Errorf("%s: round trip diverged\n--- formatted original\n%s\n--- formatted reparse\n%s", k.Name, src, got)
		}
	}
}

func TestParseKernelHandwritten(t *testing.T) {
	src := `kernel saxpy(n, a)
  object x[64] (8B elems)
  object y[64] (8B elems)
  acc = 0
  for i = 0 .. $n step 1 {
    y[i] = (($a mul x[i]) add y[i])
    acc = (%acc add y[i])
    if (i lt 4) {
      y[i] = sel((y[i] gt 0), y[i], neg(y[i]))
    } else {
      y[i] = 0.5
    }
  }
`
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "saxpy" || len(k.Params) != 2 || len(k.Objects) != 2 {
		t.Fatalf("kernel header = %q %v %v", k.Name, k.Params, k.Objects)
	}
	if k.Objects[0].Name != "x" || k.Objects[0].Len != 64 || k.Objects[0].ElemBytes != 8 {
		t.Fatalf("object 0 = %+v", k.Objects[0])
	}
	loop, ok := k.Body[1].(*ir.For)
	if !ok || loop.IV != "i" || loop.Parallel {
		t.Fatalf("body[1] = %#v", k.Body[1])
	}
	// Reformatting and reparsing is stable.
	if reparsed, err := ParseKernel(ir.Format(k)); err != nil {
		t.Fatal(err)
	} else if ir.Format(reparsed) != ir.Format(k) {
		t.Error("handwritten kernel not round-trip stable")
	}
}

func TestParseKernelParfor(t *testing.T) {
	src := "kernel p(n)\n  object a[8] (8B elems)\n  parfor i = 0 .. $n step 1 {\n    a[i] = i\n  }\n"
	k, err := ParseKernel(src)
	if err != nil {
		t.Fatal(err)
	}
	if loop := k.Body[0].(*ir.For); !loop.Parallel {
		t.Error("parfor not marked parallel")
	}
}

func TestParseKernelErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"empty", "", `expected "kernel"`},
		{"not a kernel", "object a[4] (8B elems)", `expected "kernel"`},
		{"unknown op", "kernel k(n)\n  x = (1 bogus 2)\n", "unknown binary operator"},
		{"unclosed block", "kernel k(n)\n  for i = 0 .. $n step 1 {\n    x = 1\n", "unexpected end of input"},
		{"stray brace", "kernel k(n)\n  }\n", "unexpected"},
		{"bad char", "kernel k(n)\n  x = 1 ; y = 2\n", "unexpected character"},
		{"stray dot", "kernel k(n)\n  x = .\n", "stray '.'"},
		{"trailing", "kernel k()\n  x = 1\n) ", "expected statement"},
		// Parses but fails IR validation: the object is undeclared.
		{"validation", "kernel k(n)\n  a[0] = 1\n", "ir: kernel"},
		{"undefined local", "kernel k(n)\n  x = %y\n", "ir: kernel"},
	}
	for _, c := range cases {
		_, err := ParseKernel(c.src)
		if err == nil {
			t.Errorf("%s: parse succeeded, want error containing %q", c.name, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.wantSub)
		}
	}
}
