package serve

import (
	"fmt"
	"strings"

	"distda/internal/engine/shard"
	"distda/internal/obs"
)

// Job outcome labels for the distda_jobs_total counter.
const (
	outcomeSubmitted    = "submitted"
	outcomeCacheHit     = "cache_hit"
	outcomeCoalesced    = "coalesced"
	outcomeRejectedRate = "rejected_rate"
	outcomeRejectedFull = "rejected_full"
	outcomeRestored     = "restored"
	outcomeDone         = "done"
	outcomeFailed       = "failed"
	outcomeCanceled     = "canceled"
)

// serveMetrics is the server's wall-clock metric handles. Built from a
// possibly-nil registry: with telemetry disabled every field is a nil
// vector whose instruments no-op, so record sites stay unconditional and
// the disabled path costs a nil check (bounded by TestDisabledObsOverhead).
type serveMetrics struct {
	// jobs counts job lifecycle events by outcome × tenant.
	jobs *obs.CounterVec
	// queueDepth / running are point-in-time gauges, refreshed at scrape.
	queueDepth *obs.GaugeVec
	running    *obs.GaugeVec
	// queueWait is time from submission to execution start, per tenant.
	queueWait *obs.HistogramVec
	// stage is wall-clock latency per job lifecycle stage (queued,
	// executing, compile, simulate, build, render).
	stage *obs.HistogramVec
	// resultCache / compileCache mirror the artifact cache counters at
	// scrape time (event label: requests, mem_hits, ...).
	resultCache  *obs.CounterVec
	compileCache *obs.CounterVec
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	return &serveMetrics{
		jobs: reg.Counter("distda_jobs_total",
			"Job lifecycle events by outcome and tenant.", "outcome", "tenant"),
		queueDepth: reg.Gauge("distda_queue_depth",
			"Executions waiting in the job queue."),
		running: reg.Gauge("distda_running_jobs",
			"Executions currently running."),
		queueWait: reg.Histogram("distda_job_queue_wait_seconds",
			"Wall-clock wait from submission to execution start.", nil, "tenant"),
		stage: reg.Histogram("distda_job_stage_seconds",
			"Wall-clock latency per job lifecycle stage.", nil, "stage"),
		resultCache: reg.Counter("distda_result_cache_events_total",
			"Result cache counters, mirrored at scrape time.", "event"),
		compileCache: reg.Counter("distda_compile_cache_events_total",
			"Compile cache counters, mirrored at scrape time.", "event"),
	}
}

// observeStages feeds every closed span of a finished execution into the
// per-stage latency histograms.
func (m *serveMetrics) observeStages(spans []obs.Span) {
	for _, sp := range spans {
		if sp.End.IsZero() || sp.End.Equal(sp.Start) {
			continue // open spans and point markers are not stages
		}
		m.stage.With(sp.Name).ObserveDuration(sp.Duration())
	}
}

// runObs carries one execution's observability state into the runner:
// lifecycle spans (always collected — they are part of the job JSON) and
// the shard attribution collector (only when a registry is attached).
// Everything here is observational: the rendered bytes are bit-identical
// with or without it (TestObsDifferential).
type runObs struct {
	spans *obs.SpanList
	shard *shard.Stats
}

// syncObs refreshes the scrape-time mirrors: queue/running gauges, cache
// counters, accumulated shard attribution. Called by the /metrics handler
// just before rendering.
func (s *Server) syncObs() {
	st := s.Stats()
	s.met.queueDepth.With().Set(float64(st.QueueLen))
	s.met.running.With().Set(float64(st.Running))

	rc := st.ResultCache
	for _, c := range []struct {
		event string
		v     int64
	}{
		{"requests", rc.Requests}, {"mem_hits", rc.MemHits}, {"disk_hits", rc.DiskHits},
		{"misses", rc.Misses}, {"stores", rc.Stores}, {"evicted", rc.Evicted}, {"errors", rc.Errors},
	} {
		s.met.resultCache.With(c.event).Store(c.v)
	}
	cc := st.CompileCache
	for _, c := range []struct {
		event string
		v     int64
	}{
		{"requests", cc.Requests}, {"mem_hits", cc.MemHits}, {"disk_hits", cc.DiskHits},
		{"compiles", cc.Compiles}, {"rebinds", cc.Rebinds}, {"evicted", cc.Evicted}, {"errors", cc.Errors},
	} {
		s.met.compileCache.With(c.event).Store(c.v)
	}

	if s.obsReg != nil {
		s.mu.Lock()
		agg := s.shardAgg
		agg.Islands = append([]shard.IslandStats(nil), s.shardAgg.Islands...)
		s.mu.Unlock()
		agg.Record(s.obsReg)
	}
}

// logkv emits one structured log line: through the slog logger when
// configured, otherwise rendered as "msg key=val ..." through the legacy
// Logf hook (so existing embedders keep their lines).
func (s *Server) logkv(msg string, kv ...any) {
	if s.logger != nil {
		s.logger.Info(msg, kv...)
		return
	}
	if s.cfg.Logf == nil {
		return
	}
	var b strings.Builder
	b.WriteString(msg)
	for i := 0; i+1 < len(kv); i += 2 {
		fmt.Fprintf(&b, " %v=%v", kv[i], kv[i+1])
	}
	s.cfg.Logf("%s", b.String())
}
