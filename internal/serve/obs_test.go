package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"distda/internal/obs"
)

// scrape fetches /metrics and parses the exposition.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/metrics = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("content type = %q", ct)
	}
	vals, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return vals
}

// TestObsDifferential is the tentpole guarantee: telemetry is observational
// only. The same job served with a registry + structured logger attached
// and with both disabled returns bit-identical bytes.
func TestObsDifferential(t *testing.T) {
	var logBuf bytes.Buffer
	obsCfg := Config{
		Workers: 1,
		Obs:     obs.New(),
		Logf:    func(format string, args ...any) { logBuf.WriteString(format) },
	}
	_, tsObs := newTestServer(t, obsCfg)
	_, tsPlain := newTestServer(t, Config{Workers: 1})

	spec := `{"workload": "fdtd-2d", "config": "Dist-DA-F+A", "scale": "test", "shards": 2}`
	var outputs [][]byte
	for _, ts := range []string{tsObs.URL, tsPlain.URL} {
		resp, err := http.Post(ts+"/api/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		deadline := waitDoneURL(t, ts, st.ID)
		if deadline.State != StateDone {
			t.Fatalf("state = %s (%s)", deadline.State, deadline.Error)
		}
		r2, err := http.Get(ts + "/api/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		outputs = append(outputs, body)
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Errorf("telemetry changed the served bytes\n--- with obs\n%s\n--- without\n%s",
			outputs[0], outputs[1])
	}
}

// waitDoneURL is waitDone for a raw base URL instead of an httptest server.
func waitDoneURL(t *testing.T, base, id string) JobStatus {
	t.Helper()
	for i := 0; i < 6000; i++ {
		resp, err := http.Get(base + "/api/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestMetricsEndpoint drives a job through the server and checks the key
// series move: per-tenant × per-outcome job counts, queue-wait and stage
// histograms, cache mirrors, and (shards > 1) shard attribution.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Obs: obs.New()})

	before := scrape(t, ts.URL)
	if before[`distda_jobs_total{outcome="done",tenant="anonymous"}`] != 0 {
		t.Fatalf("fresh server has done jobs: %v", before)
	}

	// Dist-DA-F+A's alloc-spread placement reliably splits launches into
	// several islands, so shards: 2 exercises the attribution path.
	spec := `{"workload": "pathfinder", "config": "Dist-DA-F+A", "scale": "test", "shards": 2}`
	_, st := postJob(t, ts, spec)
	if fin := waitDone(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}

	after := scrape(t, ts.URL)
	for key, want := range map[string]float64{
		`distda_jobs_total{outcome="submitted",tenant="anonymous"}`: 1,
		`distda_jobs_total{outcome="done",tenant="anonymous"}`:      1,
		`distda_job_queue_wait_seconds_count{tenant="anonymous"}`:   1,
		`distda_job_stage_seconds_count{stage="executing"}`:         1,
		`distda_job_stage_seconds_count{stage="simulate"}`:          1,
		`distda_job_stage_seconds_count{stage="rendering"}`:         1,
	} {
		if after[key] != want {
			t.Errorf("%s = %v, want %v", key, after[key], want)
		}
	}
	if _, ok := after["distda_queue_depth"]; !ok {
		t.Error("no distda_queue_depth gauge")
	}
	if after[`distda_result_cache_events_total{event="stores"}`] != 1 {
		t.Errorf("result cache stores = %v, want 1",
			after[`distda_result_cache_events_total{event="stores"}`])
	}
	// Sharded execution (shards: 2) leaves per-island attribution behind.
	if after["distda_shard_windows_total"] == 0 {
		t.Error("no shard windows recorded for a shards=2 job")
	}
	if after[`distda_shard_active_windows_total{island="0"}`] == 0 {
		t.Error("no per-island window attribution")
	}

	// An identical resubmission is a result-cache hit, not a new execution.
	_, st2 := postJob(t, ts, spec)
	if st2.State != StateDone {
		t.Fatalf("resubmit state = %s, want done (cache hit)", st2.State)
	}
	final := scrape(t, ts.URL)
	if final[`distda_jobs_total{outcome="cache_hit",tenant="anonymous"}`] != 1 {
		t.Errorf("cache_hit count = %v, want 1",
			final[`distda_jobs_total{outcome="cache_hit",tenant="anonymous"}`])
	}
	if final[`distda_jobs_total{outcome="done",tenant="anonymous"}`] != 1 {
		t.Error("cache hit incremented the done count")
	}
}

// TestMetricsDisabled: without a registry the endpoint 404s rather than
// serving an empty page that scrapers would mistake for healthy-but-idle.
func TestMetricsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without registry = %d, want 404", resp.StatusCode)
	}
}

// TestReadyzFlipsOnDrain: /readyz answers 200 while accepting and 503 the
// moment a graceful drain begins, while /healthz stays 200 (the process is
// alive either way).
func TestReadyzFlipsOnDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d", code)
	}
	s.StartDrain()
	s.StartDrain() // idempotent
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz after StartDrain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after StartDrain = %d, want 200", code)
	}
	if _, err := s.Submit(JobSpec{Workload: "bfs", Scale: "test"}); err != ErrShuttingDown {
		t.Errorf("submit while draining = %v, want ErrShuttingDown", err)
	}
	// Shutdown after StartDrain still runs the full drain + journal path.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after drain: %v", err)
	}
}

// TestJobSpansAndTrace: executed jobs expose their lifecycle spans in the
// status JSON and as a Chrome trace_event file; cache hits carry the
// short-circuit marker instead of execution stages.
func TestJobSpansAndTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Obs: obs.New()})
	spec := `{"workload": "bfs", "scale": "test"}`
	_, st := postJob(t, ts, spec)
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}

	names := make(map[string]bool)
	for _, sp := range fin.Spans {
		names[sp.Name] = true
		if sp.Name == "queued" || sp.Name == "executing" {
			if sp.End.IsZero() || sp.End.Before(sp.Start) {
				t.Errorf("span %s not closed properly: %+v", sp.Name, sp)
			}
		}
	}
	for _, want := range []string{"received", "queued", "executing", "simulate", "rendering"} {
		if !names[want] {
			t.Errorf("done job missing span %q (have %v)", want, fin.Spans)
		}
	}

	// Chrome trace export: a JSON array of complete ("ph":"X") events.
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not a JSON array: %v", err)
	}
	if len(events) < 3 {
		t.Fatalf("trace has %d events, want >= 3", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Errorf("trace event ph = %v, want X", ev["ph"])
		}
	}

	// Cache hit: the resubmission marks the short-circuit and never queues.
	_, st2 := postJob(t, ts, spec)
	hit := getStatus(t, ts, st2.ID)
	hitNames := make(map[string]bool)
	for _, sp := range hit.Spans {
		hitNames[sp.Name] = true
	}
	if !hitNames["received"] || !hitNames["cache_hit"] {
		t.Errorf("cache-hit spans = %+v, want received + cache_hit", hit.Spans)
	}
	if hitNames["queued"] || hitNames["executing"] {
		t.Errorf("cache-hit job has execution spans: %+v", hit.Spans)
	}
}
