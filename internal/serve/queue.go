package serve

import (
	"errors"
	"sync"
)

// Queue errors.
var (
	// ErrQueueFull is returned by push when the bounded queue is at
	// capacity; the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrQueueClosed is returned by push after shutdown began.
	ErrQueueClosed = errors.New("serve: job queue closed")
)

// queue is the bounded, tenant-fair job queue. Each tenant gets a FIFO
// sub-queue; dequeue round-robins across tenants with pending work, so one
// tenant flooding the queue cannot starve another — within a tenant,
// submission order is preserved. The capacity bound is global: a full
// queue rejects everyone (backpressure), which is what keeps the server's
// memory footprint flat under overload.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	n      int
	subs   map[string][]*execution
	ring   []string // tenants with pending work, round-robin order
	next   int      // ring cursor
	closed bool
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity, subs: make(map[string][]*execution)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues e at the tail of its tenant's sub-queue.
func (q *queue) push(e *execution) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.n >= q.cap {
		return ErrQueueFull
	}
	if _, ok := q.subs[e.tenant]; !ok {
		q.ring = append(q.ring, e.tenant)
	}
	q.subs[e.tenant] = append(q.subs[e.tenant], e)
	q.n++
	q.cond.Signal()
	return nil
}

// pop blocks until an execution is available and returns it, or returns
// false once the queue is closed (remaining entries are abandoned to
// drain, not handed to workers).
func (q *queue) pop() (*execution, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return nil, false
	}
	return q.take(), true
}

// take removes and returns the next execution in round-robin order.
// Caller holds q.mu and has checked q.n > 0.
func (q *queue) take() *execution {
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	sub := q.subs[tenant]
	e := sub[0]
	sub = sub[1:]
	if len(sub) == 0 {
		delete(q.subs, tenant)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// The cursor now indexes the tenant that followed the removed one.
	} else {
		q.subs[tenant] = sub
		q.next++
	}
	q.n--
	return e
}

// remove deletes e from its tenant's sub-queue (job canceled while
// queued). Returns false if e was already dequeued.
func (q *queue) remove(e *execution) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	sub := q.subs[e.tenant]
	for i, cand := range sub {
		if cand != e {
			continue
		}
		sub = append(sub[:i], sub[i+1:]...)
		if len(sub) == 0 {
			delete(q.subs, e.tenant)
			for ri, t := range q.ring {
				if t == e.tenant {
					q.ring = append(q.ring[:ri], q.ring[ri+1:]...)
					if ri < q.next {
						q.next--
					}
					break
				}
			}
		} else {
			q.subs[e.tenant] = sub
		}
		q.n--
		return true
	}
	return false
}

// len returns the number of queued executions.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// close stops the queue: pop returns false, push returns ErrQueueClosed,
// and every still-queued execution is returned in fair dequeue order so
// shutdown can journal them.
func (q *queue) close() []*execution {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var rest []*execution
	for q.n > 0 {
		rest = append(rest, q.take())
	}
	q.cond.Broadcast()
	return rest
}
