package serve

import (
	"testing"
	"time"
)

func exec(tenant string) *execution {
	return &execution{tenant: tenant}
}

func TestQueueTenantFairness(t *testing.T) {
	q := newQueue(16)
	a1, a2, a3, b1 := exec("a"), exec("a"), exec("a"), exec("b")
	// Tenant a floods the queue before b's single job arrives; round-robin
	// still serves b second, and a's jobs stay FIFO among themselves.
	for _, e := range []*execution{a1, a2, a3, b1} {
		if err := q.push(e); err != nil {
			t.Fatal(err)
		}
	}
	want := []*execution{a1, b1, a2, a3}
	for i, w := range want {
		got, ok := q.pop()
		if !ok || got != w {
			t.Fatalf("pop %d = %v (tenant %s), want tenant %s", i, got, got.tenant, w.tenant)
		}
	}
}

func TestQueueBoundAndClose(t *testing.T) {
	q := newQueue(2)
	if err := q.push(exec("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(exec("b")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(exec("c")); err != ErrQueueFull {
		t.Fatalf("push over capacity = %v, want ErrQueueFull", err)
	}
	rest := q.close()
	if len(rest) != 2 {
		t.Fatalf("close drained %d executions, want 2", len(rest))
	}
	if err := q.push(exec("a")); err != ErrQueueClosed {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after close returned an execution")
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(8)
	a1, a2, b1 := exec("a"), exec("a"), exec("b")
	for _, e := range []*execution{a1, a2, b1} {
		if err := q.push(e); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove(a1) {
		t.Fatal("remove of queued execution failed")
	}
	if q.remove(a1) {
		t.Fatal("second remove of same execution succeeded")
	}
	if got, _ := q.pop(); got != a2 {
		t.Fatalf("pop = tenant %s, want a2", got.tenant)
	}
	if got, _ := q.pop(); got != b1 {
		t.Fatalf("pop = tenant %s, want b1", got.tenant)
	}
	if q.len() != 0 {
		t.Fatalf("len = %d, want 0", q.len())
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue(4)
	got := make(chan *execution, 1)
	go func() {
		e, _ := q.pop()
		got <- e
	}()
	e := exec("a")
	time.Sleep(10 * time.Millisecond)
	if err := q.push(e); err != nil {
		t.Fatal(err)
	}
	select {
	case g := <-got:
		if g != e {
			t.Fatal("pop returned the wrong execution")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not wake on push")
	}
}

func TestLimiterTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newLimiter(1, 2, func() time.Time { return now })
	// Burst of 2, then dry.
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("burst tokens rejected")
	}
	if l.allow("a") {
		t.Fatal("allowed past burst")
	}
	// Tenants are isolated.
	if !l.allow("b") {
		t.Fatal("tenant b rejected by tenant a's empty bucket")
	}
	// One token per second accrues.
	now = now.Add(time.Second)
	if !l.allow("a") {
		t.Fatal("accrued token rejected")
	}
	if l.allow("a") {
		t.Fatal("allowed with empty bucket")
	}
	// Accrual caps at burst.
	now = now.Add(time.Hour)
	if !l.allow("a") || !l.allow("a") {
		t.Fatal("capped burst rejected")
	}
	if l.allow("a") {
		t.Fatal("accrued past burst cap")
	}
	// Rate 0 disables limiting.
	open := newLimiter(0, 1, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		if !open.allow("a") {
			t.Fatal("unlimited limiter rejected")
		}
	}
}
