package serve

import (
	"sync"
	"time"
)

// limiter is a per-tenant token bucket: each tenant accrues Rate tokens
// per second up to Burst, and a submission spends one. Tenants are
// isolated — one tenant burning its budget never affects another's.
// The clock is injectable so tests are deterministic.
type limiter struct {
	mu    sync.Mutex
	rate  float64 // tokens per second; <= 0 disables limiting
	burst float64
	now   func() time.Time
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate float64, burst int, now func() time.Time) *limiter {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), now: now, m: make(map[string]*bucket)}
}

// allow reports whether tenant may submit now, spending a token if so.
func (l *limiter) allow(tenant string) bool {
	if l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	t := l.now()
	b, ok := l.m[tenant]
	if !ok {
		b = &bucket{tokens: l.burst, last: t}
		l.m[tenant] = b
	} else {
		b.tokens += t.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
