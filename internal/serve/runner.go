package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"distda/internal/artifact"
	"distda/internal/cliutil"
	"distda/internal/compiler"
	"distda/internal/exp"
	"distda/internal/profile"
	"distda/internal/sim"
)

// errDegraded marks a matrix result that contains timed-out ("n/a") cells.
// Degraded output is still returned to the submitting client, but it is
// never stored in the result cache — a later identical submission should
// get the chance to compute the full table.
var errDegraded = errors.New("serve: result degraded by cell timeouts")

// runner executes planned jobs. It owns the knobs that are server policy
// rather than job identity: worker counts, cell timeouts, retry budget,
// checkpoint directory. None of these feed the result key — they change
// wall-clock and fault tolerance, never the rendered bytes.
type runner struct {
	cache       *artifact.Cache
	cellWorkers int           // exp.Options.Workers for matrix jobs
	cellTimeout time.Duration // exp.Options.CellTimeout
	retries     int           // exp.Options.Retries
	stateDir    string        // matrix checkpoints live here
}

// run executes the plan and returns the rendered result bytes — exactly
// the bytes the equivalent batch CLI writes to stdout. Progress is
// recorded per completed matrix cell (run jobs count as a single cell).
// A degraded matrix render is returned alongside errDegraded. o carries
// wall-clock observability (stage spans, shard attribution); it never
// feeds the simulation, so the bytes are identical with or without it.
func (r *runner) run(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error) {
	switch p.kind {
	case KindRun:
		return r.runOne(ctx, p, prog, o)
	case KindMatrix:
		return r.runMatrix(ctx, p, prog, o)
	}
	return nil, fmt.Errorf("serve: unknown plan kind %q", p.kind)
}

// runOne replicates distda-run: strip-mine for threads, compile through
// the shared content-addressed cache, simulate, render with FprintResult.
func (r *runner) runOne(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error) {
	prog.SetTotal(1)
	cfg := p.cfg
	cfg.EngineMode = p.mode
	cfg.Shards = p.spec.Shards
	cfg.Threads = p.spec.Threads
	cfg.Cancel = ctx.Done()
	cfg.ShardStats = o.shard
	kernel := sim.ThreadKernel(p.kernel, p.spec.Threads)
	var compiled *compiler.Compiled
	if cfg.HasAccel() {
		h := o.spans.Open("compile")
		copts := sim.CompileOptions(cfg)
		key := artifact.Key(p.workload.Name, p.scale.String(), kernel, copts)
		var err error
		compiled, err = r.cache.GetOrCompile(key, kernel, func() (*compiler.Compiled, error) {
			return compiler.Compile(kernel, copts)
		})
		o.spans.Close(h)
		if err != nil {
			return nil, err
		}
	}
	start := time.Now()
	h := o.spans.Open("simulate")
	res, err := sim.RunPrecompiled(kernel, p.workload.Params, p.workload.NewData(), cfg, compiled)
	o.spans.Close(h)
	if err != nil {
		return nil, err
	}
	prog.Record(profile.CellStatus{Workload: p.workload.Name, Config: cfg.Name, Dur: time.Since(start)})
	h = o.spans.Open("rendering")
	var buf bytes.Buffer
	cliutil.FprintResult(&buf, res)
	o.spans.Close(h)
	return buf.Bytes(), nil
}

// runMatrix replicates distda-repro: build the matrix lazily (only if the
// selection needs it) and render the selection. The build checkpoints
// under the job's result key, so a server restarted mid-job resumes the
// finished cells instead of recomputing them.
func (r *runner) runMatrix(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error) {
	degraded := false
	buildErr := error(nil)
	var m *exp.Matrix
	build := func() (*exp.Matrix, error) {
		if m != nil || buildErr != nil {
			return m, buildErr
		}
		h := o.spans.Open("build")
		defer o.spans.Close(h)
		opts := exp.Options{
			Scale:       p.scale,
			Workers:     r.cellWorkers,
			Cache:       r.cache,
			EngineMode:  p.mode,
			Shards:      p.spec.Shards,
			CellTimeout: r.cellTimeout,
			Retries:     r.retries,
			Checkpoint:  r.checkpointPath(p),
			ShardStats:  o.shard,
			Progress: func(ev exp.ProgressEvent) {
				if ev.Degraded {
					degraded = true
				}
				prog.Record(profile.CellStatus{
					Workload: ev.Workload, Config: ev.Config,
					Dur: ev.Dur, Degraded: ev.Degraded, Resumed: ev.Resumed,
				})
			},
		}
		m, buildErr = exp.Build(ctx, opts)
		return m, buildErr
	}
	var buf bytes.Buffer
	h := o.spans.Open("rendering")
	err := exp.RenderSelection(&buf, p.scale, p.sel, build)
	o.spans.Close(h)
	if err != nil {
		return nil, err
	}
	if path := r.checkpointPath(p); path != "" && m != nil && !degraded {
		os.Remove(path) // complete build; the result cache supersedes it
	}
	if degraded {
		return buf.Bytes(), errDegraded
	}
	return buf.Bytes(), nil
}

// checkpointPath returns the per-job matrix checkpoint file, keyed by the
// job's content address so only byte-identical resubmissions resume it.
func (r *runner) checkpointPath(p *plan) string {
	if r.stateDir == "" {
		return ""
	}
	return filepath.Join(r.stateDir, p.key+".ckpt")
}
