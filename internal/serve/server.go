package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"distda/internal/artifact"
	"distda/internal/engine/shard"
	"distda/internal/obs"
	"distda/internal/profile"
)

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrRateLimited: the tenant's token bucket is empty (429).
	ErrRateLimited = errors.New("serve: tenant rate limit exceeded")
	// ErrShuttingDown: the server no longer accepts jobs (503).
	ErrShuttingDown = errors.New("serve: server shutting down")
	// ErrUnknownJob: no job with that ID (404).
	ErrUnknownJob = errors.New("serve: unknown job")
)

// JobState is a job's lifecycle phase.
type JobState string

// Job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Config parameterizes a Server. The zero value works: in-memory cache,
// no rate limit, no state directory.
type Config struct {
	// Workers is the number of jobs executing concurrently (default 2).
	// Each matrix job additionally parallelizes its cells (CellWorkers).
	Workers int
	// CellWorkers is exp.Options.Workers for matrix jobs (0 = GOMAXPROCS).
	CellWorkers int
	// QueueDepth bounds the job queue (default 64); a full queue rejects
	// submissions with ErrQueueFull (HTTP 429).
	QueueDepth int
	// Rate is the per-tenant sustained submission rate in jobs/second
	// (0 = unlimited); Burst is the bucket depth (default 8).
	Rate  float64
	Burst int
	// Cache is the shared artifact cache for compiled kernels and result
	// envelopes (nil = process-private in-memory cache). Point it at the
	// same -cache-dir the batch CLIs use to share compilations.
	Cache *artifact.Cache
	// StateDir, when set, holds matrix checkpoints and the shutdown
	// journal, letting a restarted server resume unfinished jobs
	// byte-identically.
	StateDir string
	// CellTimeout and Retries are passed through to exp.Options for
	// matrix jobs.
	CellTimeout time.Duration
	Retries     int
	// Shards is the server-wide default for JobSpec.Shards: jobs that do
	// not set shards execute each offload launch across up to this many
	// goroutine shards. Wall-clock only — results stay bit-identical.
	Shards int
	// Obs, when non-nil, receives wall-clock telemetry: per-tenant ×
	// per-outcome job counts, queue depth/wait, per-stage latency
	// histograms, cache hit mirrors and shard attribution — rendered by
	// the /metrics endpoint. Observational only: served bytes are
	// bit-identical with it on or off.
	Obs *obs.Registry
	// Logger, when non-nil, receives structured request logs keyed by job
	// ID. It takes precedence over Logf.
	Logger *slog.Logger
	// Logf, when non-nil (and Logger is nil), receives one rendered line
	// per job state change.
	Logf func(format string, args ...any)
	// Now is the rate limiter's clock (tests; nil = time.Now).
	Now func() time.Time
}

// Job is one submitted experiment. All fields are guarded by the owning
// Server's mutex; read them through Status.
type Job struct {
	id        string
	plan      *plan
	submitted time.Time

	state     JobState
	errMsg    string
	output    []byte
	cached    bool // served straight from the result cache
	coalesced bool // attached to another job's in-flight execution
	degraded  bool // matrix rendered with n/a cells (not cached)
	started   time.Time
	finished  time.Time
	exec      *execution
	spans     []obs.Span // job-local lifecycle spans (markers, short-circuits)
	done      chan struct{}
}

// execution is one unit of work on the queue. Concurrent submissions with
// the same content address attach to a single execution — the simulation
// runs once and every attached job receives the same bytes.
type execution struct {
	key      string
	tenant   string
	plan     *plan
	progress *profile.Progress
	ctx      context.Context
	cancel   context.CancelFunc
	jobs     []*Job // attached jobs; guarded by Server.mu
	userStop bool   // canceled because the last attached job was canceled

	// Observability (wall-clock only, never feeds the simulation): the
	// lifecycle span list shared by every attached job, the handle of the
	// open "queued" span, and the shard attribution collector (nil unless
	// an obs registry is configured).
	spans      *obs.SpanList
	queuedSpan int
	shardStats *shard.Stats
}

// Stats are the server's cumulative counters plus current queue state.
type Stats struct {
	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	Failed       int64 `json:"failed"`
	Canceled     int64 `json:"canceled"`
	CacheHits    int64 `json:"cache_hits"` // served without executing
	Coalesced    int64 `json:"coalesced"`  // attached to an in-flight execution
	RejectedFull int64 `json:"rejected_full"`
	RejectedRate int64 `json:"rejected_rate"`
	Restored     int64 `json:"restored"` // journaled jobs resubmitted at startup
	// Backends counts submitted run jobs by resolved accelerator backend
	// ("none" for backend-less configs; matrix jobs are not counted — they
	// span many backends).
	Backends     map[string]int64     `json:"backends,omitempty"`
	QueueLen     int                  `json:"queue_len"`
	Running      int                  `json:"running"`
	ResultCache  artifact.ResultStats `json:"result_cache"`
	CompileCache artifact.Stats       `json:"compile_cache"`
}

// Server is the job server: a bounded tenant-fair queue feeding a fixed
// worker pool, with result caching and execution coalescing keyed by
// content address.
type Server struct {
	cfg     Config
	cache   *artifact.Cache
	queue   *queue
	limiter *limiter
	run     func(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error)

	obsReg *obs.Registry
	met    *serveMetrics
	logger *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	byID     []string // submission order, for List and the journal
	execs    map[string]*execution
	nextID   int
	running  int
	closed   bool
	draining bool
	shutdown bool
	stats    Stats
	shardAgg shard.Stats // accumulated shard attribution across executions
}

// NewServer builds a server, starts its worker pool, and — when
// Config.StateDir holds a shutdown journal — resubmits the journaled jobs
// under their original IDs.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 8
	}
	cache := cfg.Cache
	if cache == nil {
		cache = artifact.New(artifact.Config{})
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, err
		}
	}
	r := &runner{
		cache:       cache,
		cellWorkers: cfg.CellWorkers,
		cellTimeout: cfg.CellTimeout,
		retries:     cfg.Retries,
		stateDir:    cfg.StateDir,
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		queue:      newQueue(cfg.QueueDepth),
		limiter:    newLimiter(cfg.Rate, cfg.Burst, cfg.Now),
		run:        r.run,
		obsReg:     cfg.Obs,
		met:        newServeMetrics(cfg.Obs),
		logger:     cfg.Logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		execs:      make(map[string]*execution),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if err := s.restore(); err != nil {
		s.Shutdown(context.Background())
		return nil, err
	}
	return s, nil
}

// Submit plans, admits and enqueues a job. It returns the job even when
// it completed instantly from the result cache. Errors: planning failures
// (malformed spec), ErrRateLimited, ErrQueueFull, ErrShuttingDown.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	if spec.Shards == 0 {
		spec.Shards = s.cfg.Shards
	}
	p, err := planJob(spec)
	if err != nil {
		return nil, err
	}
	return s.admit(p, "", true)
}

// admit registers a planned job. id preserves a restored job's identity
// ("" = assign fresh); limit applies the tenant rate limiter.
func (s *Server) admit(p *plan, id string, limit bool) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	if limit && !s.limiter.allow(p.tenant) {
		s.stats.RejectedRate++
		s.met.jobs.With(outcomeRejectedRate, p.tenant).Inc()
		return nil, ErrRateLimited
	}
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("j%06d", s.nextID)
	}
	j := &Job{
		id:        id,
		plan:      p,
		submitted: time.Now(),
		state:     StateQueued,
		done:      make(chan struct{}),
	}

	j.spans = append(j.spans, obs.Span{Name: "received", Start: j.submitted, End: j.submitted})

	// Fast path: an identical job already ran to completion.
	if env, ok := s.cache.GetResult(p.key); ok {
		j.state = StateDone
		j.cached = true
		j.output = env.Body
		j.finished = j.submitted
		now := time.Now()
		j.spans = append(j.spans, obs.Span{Name: "cache_hit", Start: now, End: now})
		close(j.done)
		s.register(j)
		s.stats.CacheHits++
		s.met.jobs.With(outcomeCacheHit, p.tenant).Inc()
		s.logkv("job done (result cache hit)", "job", id, "tenant", p.tenant, "key", short(p.key))
		return j, nil
	}

	// Coalesce: an identical job is queued or running right now. Attach;
	// the bytes are identical by construction, so one execution serves
	// every submitter.
	if e, ok := s.execs[p.key]; ok {
		j.exec = e
		j.coalesced = true
		if len(e.jobs) > 0 && e.jobs[0].state == StateRunning {
			j.state = StateRunning
			j.started = e.jobs[0].started
		}
		now := time.Now()
		j.spans = append(j.spans, obs.Span{Name: "coalesced", Start: now, End: now})
		e.jobs = append(e.jobs, j)
		s.register(j)
		s.stats.Coalesced++
		s.met.jobs.With(outcomeCoalesced, p.tenant).Inc()
		s.logkv("job coalesced onto in-flight execution", "job", id, "tenant", p.tenant, "key", short(p.key))
		return j, nil
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	e := &execution{
		key:      p.key,
		tenant:   p.tenant,
		plan:     p,
		progress: profile.NewProgress(0),
		ctx:      ctx,
		cancel:   cancel,
		spans:    &obs.SpanList{},
	}
	if s.obsReg != nil {
		e.shardStats = &shard.Stats{}
	}
	e.jobs = []*Job{j}
	j.exec = e
	e.queuedSpan = e.spans.Open("queued")
	if err := s.queue.push(e); err != nil {
		cancel()
		if errors.Is(err, ErrQueueFull) {
			s.stats.RejectedFull++
			s.met.jobs.With(outcomeRejectedFull, p.tenant).Inc()
		}
		return nil, err
	}
	s.execs[p.key] = e
	s.register(j)
	s.logkv("job queued", "job", id, "kind", p.kind, "tenant", p.tenant, "key", short(p.key))
	return j, nil
}

// short truncates a content-address key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12] + "…"
	}
	return key
}

// register indexes the job. Caller holds s.mu.
func (s *Server) register(j *Job) {
	s.jobs[j.id] = j
	s.byID = append(s.byID, j.id)
	s.stats.Submitted++
	s.met.jobs.With(outcomeSubmitted, j.plan.tenant).Inc()
	if j.plan.kind == KindRun {
		name := j.plan.Backend()
		if name == "" {
			name = "none"
		}
		if s.stats.Backends == nil {
			s.stats.Backends = make(map[string]int64)
		}
		s.stats.Backends[name]++
	}
}

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		e, ok := s.queue.pop()
		if !ok {
			return
		}
		s.execute(e)
	}
}

func (s *Server) execute(e *execution) {
	s.mu.Lock()
	if len(e.jobs) == 0 {
		// Every submitter canceled between dequeue and here.
		if s.execs[e.key] == e {
			delete(s.execs, e.key)
		}
		e.cancel()
		s.mu.Unlock()
		return
	}
	now := time.Now()
	for _, j := range e.jobs {
		j.state = StateRunning
		j.started = now
		s.met.queueWait.With(j.plan.tenant).ObserveDuration(now.Sub(j.submitted))
	}
	s.running++
	s.mu.Unlock()

	e.spans.Close(e.queuedSpan)
	execSpan := e.spans.Open("executing")
	out, err := s.run(e.ctx, e.plan, e.progress, &runObs{spans: e.spans, shard: e.shardStats})
	e.spans.Close(execSpan)
	s.met.observeStages(e.spans.Snapshot())

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running--
	s.shardAgg.Add(e.shardStats) // nil no-ops
	if s.execs[e.key] == e {
		delete(s.execs, e.key)
	}
	e.cancel()
	degraded := errors.Is(err, errDegraded)
	if degraded {
		err = nil
	}
	if err == nil && !degraded {
		// Cache the rendered bytes so identical resubmissions — and
		// restarted servers — answer without simulating.
		if cerr := s.cache.PutResult(e.key, map[string]string{
			"kind":       e.plan.kind,
			"equivalent": e.plan.Equivalent(),
		}, out); cerr != nil {
			s.logkv("result cache store failed", "key", short(e.key), "err", cerr)
		}
	}
	for _, j := range e.jobs {
		switch {
		case err == nil:
			j.state = StateDone
			j.output = out
			j.degraded = degraded
			s.stats.Completed++
			s.met.jobs.With(outcomeDone, j.plan.tenant).Inc()
		case e.ctx.Err() != nil && e.userStop:
			j.state = StateCanceled
			j.errMsg = "canceled"
			s.stats.Canceled++
			s.met.jobs.With(outcomeCanceled, j.plan.tenant).Inc()
		case e.ctx.Err() != nil && s.draining:
			// Interrupted by shutdown: back to queued so the journal
			// resubmits it; the matrix checkpoint keeps the finished
			// cells.
			j.state = StateQueued
			j.exec = nil
			s.logkv("job requeued for journal (drain interrupted it)", "job", j.id)
			continue
		default:
			j.state = StateFailed
			j.errMsg = err.Error()
			s.stats.Failed++
			s.met.jobs.With(outcomeFailed, j.plan.tenant).Inc()
		}
		j.finished = time.Now()
		close(j.done)
		s.logkv("job "+string(j.state), "job", j.id, "tenant", j.plan.tenant,
			"state", j.state, "wall", j.finished.Sub(j.submitted).Round(time.Millisecond))
	}
}

// Cancel detaches the job; when it is the execution's last attached job,
// the execution itself is removed from the queue or its context canceled.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrUnknownJob
	}
	if j.state != StateQueued && j.state != StateRunning {
		return nil // already terminal; idempotent
	}
	e := j.exec
	if e != nil {
		for i, cand := range e.jobs {
			if cand == j {
				e.jobs = append(e.jobs[:i], e.jobs[i+1:]...)
				break
			}
		}
		if len(e.jobs) == 0 {
			e.userStop = true
			s.queue.remove(e)
			// Drop the dead execution from the coalescing registry either
			// way, so a fresh identical submission starts over instead of
			// attaching to a canceled context.
			if s.execs[e.key] == e {
				delete(s.execs, e.key)
			}
			e.cancel() // removes queued work's context, aborts running work
		}
	}
	j.state = StateCanceled
	j.errMsg = "canceled"
	j.finished = time.Now()
	j.exec = nil
	close(j.done)
	s.stats.Canceled++
	s.met.jobs.With(outcomeCanceled, j.plan.tenant).Inc()
	s.logkv("job canceled", "job", id, "tenant", j.plan.tenant)
	return nil
}

// Get returns the job by ID.
func (s *Server) Get(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return j, nil
	}
	return nil, ErrUnknownJob
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	st := s.stats
	if len(s.stats.Backends) > 0 {
		st.Backends = make(map[string]int64, len(s.stats.Backends))
		for k, v := range s.stats.Backends {
			st.Backends[k] = v
		}
	}
	st.Running = s.running
	s.mu.Unlock()
	st.QueueLen = s.queue.len()
	st.ResultCache = s.cache.ResultStats()
	st.CompileCache = s.cache.Stats()
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the wire representation of a job.
type JobStatus struct {
	ID         string           `json:"id"`
	Kind       string           `json:"kind"`
	Tenant     string           `json:"tenant"`
	State      JobState         `json:"state"`
	Error      string           `json:"error,omitempty"`
	Cached     bool             `json:"cached,omitempty"`
	Coalesced  bool             `json:"coalesced,omitempty"`
	Degraded   bool             `json:"degraded,omitempty"`
	Key        string           `json:"key"`
	Backend    string           `json:"backend,omitempty"` // resolved accelerator backend (run jobs)
	Equivalent string           `json:"equivalent,omitempty"`
	Submitted  time.Time        `json:"submitted"`
	Started    *time.Time       `json:"started,omitempty"`
	Finished   *time.Time       `json:"finished,omitempty"`
	Progress   profile.Snapshot `json:"progress"`
	// Spans are the job's wall-clock lifecycle spans (received, queued,
	// executing, per-stage, cache_hit/coalesced markers). Open spans have
	// no "end" field. Exportable as a Chrome trace via /api/v1/jobs/{id}/trace.
	Spans []obs.Span `json:"spans,omitempty"`
	Spec  JobSpec    `json:"spec"`
}

// Status snapshots the job for the API.
func (s *Server) Status(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Kind:       j.plan.kind,
		Tenant:     j.plan.tenant,
		State:      j.state,
		Error:      j.errMsg,
		Cached:     j.cached,
		Coalesced:  j.coalesced,
		Degraded:   j.degraded,
		Key:        j.plan.key,
		Backend:    j.plan.Backend(),
		Equivalent: j.plan.Equivalent(),
		Submitted:  j.submitted,
		Spec:       j.plan.spec,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Spans = append(st.Spans, j.spans...)
	if j.exec != nil {
		st.Progress = j.exec.progress.Snapshot()
		st.Spans = append(st.Spans, j.exec.spans.Snapshot()...)
	}
	return st
}

// Result returns the rendered output bytes once the job is done.
func (s *Server) Result(j *Job) ([]byte, JobState, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.output, j.state, j.errMsg
}

// List returns all jobs' statuses in submission order.
func (s *Server) List() []JobStatus {
	s.mu.Lock()
	ids := append([]string(nil), s.byID...)
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j != nil {
			out = append(out, s.Status(j))
		}
	}
	return out
}

// StartDrain stops accepting new jobs: submissions return ErrShuttingDown
// and readiness probes (GET /readyz) flip to 503, while queued and running
// work proceeds. Idempotent; Shutdown calls it first.
func (s *Server) StartDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	s.draining = true
	s.logkv("drain started: rejecting new submissions",
		"queued", s.queue.len(), "running", s.running)
}

// Draining reports whether the server has stopped accepting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Shutdown stops accepting jobs, waits for running executions until ctx
// expires (then cancels them), and journals every unfinished job to
// StateDir so a restarted server resumes it — byte-identically, thanks to
// the result cache and the per-job matrix checkpoints.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		return nil
	}
	s.shutdown = true
	s.mu.Unlock()

	s.queue.close() // queued executions stay in s.jobs as StateQueued

	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	select {
	case <-workersDone:
	case <-ctx.Done():
		s.baseCancel() // abort in-flight simulations
		<-workersDone
	}
	s.baseCancel()
	return s.journal()
}

type journalFile struct {
	Version int            `json:"version"`
	NextID  int            `json:"next_id"`
	Jobs    []journalEntry `json:"jobs"`
}

type journalEntry struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
}

func (s *Server) journalPath() string {
	return filepath.Join(s.cfg.StateDir, "journal.json")
}

// journal writes the unfinished jobs (queued, or interrupted mid-run) to
// StateDir in submission order.
func (s *Server) journal() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	s.mu.Lock()
	jf := journalFile{Version: 1, NextID: s.nextID}
	for _, id := range s.byID {
		j := s.jobs[id]
		if j.state == StateQueued || j.state == StateRunning {
			jf.Jobs = append(jf.Jobs, journalEntry{ID: j.id, Spec: j.plan.spec})
		}
	}
	s.mu.Unlock()
	if len(jf.Jobs) == 0 {
		os.Remove(s.journalPath())
		return nil
	}
	data, err := json.MarshalIndent(&jf, "", "  ")
	if err != nil {
		return err
	}
	tmp := s.journalPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.journalPath())
}

// restore resubmits journaled jobs under their original IDs, bypassing
// the rate limiter (they were admitted once already).
func (s *Server) restore() error {
	if s.cfg.StateDir == "" {
		return nil
	}
	data, err := os.ReadFile(s.journalPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var jf journalFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return fmt.Errorf("serve: corrupt journal %s: %w", s.journalPath(), err)
	}
	sort.SliceStable(jf.Jobs, func(i, k int) bool { return jf.Jobs[i].ID < jf.Jobs[k].ID })
	s.mu.Lock()
	s.nextID = jf.NextID
	s.mu.Unlock()
	for _, ent := range jf.Jobs {
		p, err := planJob(ent.Spec)
		if err != nil {
			s.logkv("dropping journaled job", "job", ent.ID, "err", err)
			continue
		}
		if _, err := s.admit(p, ent.ID, false); err != nil {
			return fmt.Errorf("serve: restoring job %s: %w", ent.ID, err)
		}
		s.met.jobs.With(outcomeRestored, p.tenant).Inc()
		s.logkv("journaled job restored", "job", ent.ID, "tenant", p.tenant)
		s.mu.Lock()
		s.stats.Restored++
		s.stats.Submitted-- // restored, not newly submitted
		s.mu.Unlock()
	}
	os.Remove(s.journalPath())
	return nil
}
