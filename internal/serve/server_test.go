package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"distda/internal/artifact"
	"distda/internal/cliutil"
	"distda/internal/compiler"
	"distda/internal/exp"
	"distda/internal/ir"
	"distda/internal/profile"
	"distda/internal/sim"
	"distda/internal/workloads"
)

// directRun renders a single run the way distda-run does, independently of
// the server, for byte-identity comparisons.
func directRun(t *testing.T, wname, cname string) []byte {
	t.Helper()
	w, err := cliutil.LookupWorkload(wname, workloads.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := cliutil.LookupConfig(cname)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Threads = 1
	kernel := sim.ThreadKernel(w.Kernel, 1)
	var compiled *compiler.Compiled
	if cfg.HasAccel() {
		compiled, err = compiler.Compile(kernel, sim.CompileOptions(cfg))
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := sim.RunPrecompiled(kernel, w.Params, w.NewData(), cfg, compiled)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cliutil.FprintResult(&buf, res)
	return buf.Bytes()
}

// directMatrix renders a selection the way distda-repro does.
func directMatrix(t *testing.T, sel exp.Selection) []byte {
	t.Helper()
	var buf bytes.Buffer
	err := exp.RenderSelection(&buf, workloads.ScaleTest, sel, func() (*exp.Matrix, error) {
		return exp.Build(context.Background(), exp.Options{Scale: workloads.ScaleTest})
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decode %q: %v", data, err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func getResult(t *testing.T, ts *httptest.Server, id string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func TestRunJobMatchesBatchCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, st := postJob(t, ts, `{"workload": "fdtd-2d", "config": "Dist-DA-F", "scale": "test"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if st.Kind != KindRun || st.Equivalent != "distda-run -w fdtd-2d -c Dist-DA-F -scale test" {
		t.Fatalf("status = %+v", st)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	if fin.Progress.Done != 1 || fin.Progress.Total != 1 {
		t.Errorf("progress = %+v, want 1/1", fin.Progress)
	}
	code, body := getResult(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, body)
	}
	if want := directRun(t, "fdtd-2d", "Dist-DA-F"); !bytes.Equal(body, want) {
		t.Errorf("server output differs from batch CLI\n--- server\n%s\n--- direct\n%s", body, want)
	}
}

func TestMatrixJobMatchesBatchCLIAndCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	spec := `{"kind": "matrix", "scale": "test", "selection": {"figs": ["7"], "tabs": ["4"], "headline": true}}`
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	if want := "distda-repro -scale test -fig 7 -tab 4 -headline"; st.Equivalent != want {
		t.Errorf("equivalent = %q, want %q", st.Equivalent, want)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	if fin.Progress.Done == 0 {
		t.Errorf("no matrix cells recorded in progress: %+v", fin.Progress)
	}
	_, body := getResult(t, ts, st.ID)
	want := directMatrix(t, exp.Selection{Figs: []string{"7"}, Tabs: []string{"4"}, Headline: true})
	if !bytes.Equal(body, want) {
		t.Errorf("server matrix output differs from batch render")
	}

	// Identical resubmission: answered instantly from the result cache,
	// byte-identically, with the counters to prove nothing recomputed.
	resp2, st2 := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200 (cache hit)", resp2.StatusCode)
	}
	if !st2.Cached || st2.State != StateDone {
		t.Fatalf("resubmit status = %+v, want cached done", st2)
	}
	_, body2 := getResult(t, ts, st2.ID)
	if !bytes.Equal(body2, body) {
		t.Error("cached result differs from computed result")
	}
	stats := s.Stats()
	if stats.CacheHits != 1 || stats.ResultCache.Stores != 1 || stats.ResultCache.MemHits != 1 {
		t.Errorf("stats = cache_hits=%d result_cache=%+v, want 1 hit / 1 store", stats.CacheHits, stats.ResultCache)
	}
}

func TestEngineModeExcludedFromResultKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"workload": "cholesky", "scale": "test", "engine": "adaptive"}`)
	waitDone(t, ts, st.ID)
	// Same job under a different engine scheduler: results are
	// bit-identical by design, so the cache answers without running.
	resp, st2 := postJob(t, ts, `{"workload": "cholesky", "scale": "test", "engine": "naive"}`)
	if resp.StatusCode != http.StatusOK || !st2.Cached {
		t.Fatalf("naive-engine resubmit = %d cached=%v, want cache hit", resp.StatusCode, st2.Cached)
	}
	if st.Key != st2.Key {
		t.Errorf("engine mode changed the result key: %s vs %s", st.Key, st2.Key)
	}
}

func TestCustomKernelJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Resubmit fdtd-2d with its own kernel source round-tripped through
	// the parser: identical text, so it must also content-address
	// identically to the stock job.
	w, _ := cliutil.LookupWorkload("fdtd-2d", workloads.ScaleTest)
	spec, _ := json.Marshal(JobSpec{Workload: "fdtd-2d", Scale: "test", Kernel: ir.Format(w.Kernel)})
	_, st := postJob(t, ts, string(spec))
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	_, body := getResult(t, ts, st.ID)
	if want := directRun(t, "fdtd-2d", "Dist-DA-F"); !bytes.Equal(body, want) {
		t.Error("custom-kernel job (stock source) output differs from stock run")
	}
	if st.Equivalent != "" {
		t.Errorf("custom-kernel job claimed a CLI equivalent: %q", st.Equivalent)
	}

	// A bad kernel fails at submission, before queueing.
	resp, _ := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test", "kernel": "kernel broken("}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kernel submit = %d, want 400", resp.StatusCode)
	}
}

func TestJobReportsBackend(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// A custom-kernel run job reports its config's resolved backend both in
	// the job JSON and in the per-backend submission counters.
	w, _ := cliutil.LookupWorkload("fdtd-2d", workloads.ScaleTest)
	spec, _ := json.Marshal(JobSpec{Workload: "fdtd-2d", Config: "Dist-DA-F", Scale: "test", Kernel: ir.Format(w.Kernel)})
	_, st := postJob(t, ts, string(spec))
	if st.Backend != "cgra" {
		t.Errorf("custom-kernel Dist-DA-F job backend = %q, want cgra", st.Backend)
	}
	_, stIO := postJob(t, ts, `{"workload": "fdtd-2d", "config": "Dist-DA-IO", "scale": "test"}`)
	if stIO.Backend != "iocore" {
		t.Errorf("Dist-DA-IO job backend = %q, want iocore", stIO.Backend)
	}
	_, stOoO := postJob(t, ts, `{"workload": "fdtd-2d", "config": "OoO", "scale": "test"}`)
	if stOoO.Backend != "" {
		t.Errorf("OoO job backend = %q, want empty", stOoO.Backend)
	}
	_, stMat := postJob(t, ts, `{"kind": "matrix", "scale": "test", "selection": {"headline": true}}`)
	if stMat.Backend != "" {
		t.Errorf("matrix job backend = %q, want empty", stMat.Backend)
	}
	for _, id := range []string{st.ID, stIO.ID, stOoO.ID, stMat.ID} {
		waitDone(t, ts, id)
	}
	stats := s.Stats()
	want := map[string]int64{"cgra": 1, "iocore": 1, "none": 1}
	for name, n := range want {
		if stats.Backends[name] != n {
			t.Errorf("stats.Backends[%q] = %d, want %d (all: %v)", name, stats.Backends[name], n, stats.Backends)
		}
	}
	if len(stats.Backends) != len(want) {
		t.Errorf("stats.Backends = %v, want exactly %v (matrix jobs uncounted)", stats.Backends, want)
	}
	// GET /api/v1/stats carries the same counters over the wire.
	resp, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var wire Stats
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	if wire.Backends["cgra"] != 1 || wire.Backends["iocore"] != 1 || wire.Backends["none"] != 1 {
		t.Errorf("wire stats backends = %v", wire.Backends)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"malformed json", `{"workload": `},
		{"unknown field", `{"wrkload": "bfs"}`},
		{"unknown workload", `{"workload": "nope", "scale": "test"}`},
		{"unknown config", `{"workload": "bfs", "config": "nope"}`},
		{"unknown scale", `{"workload": "bfs", "scale": "huge"}`},
		{"unknown engine", `{"workload": "bfs", "engine": "warp"}`},
		{"bad ghz", `{"workload": "bfs", "ghz": 7}`},
		{"bad threads", `{"workload": "bfs", "threads": -1}`},
		{"empty matrix", `{"kind": "matrix", "scale": "test"}`},
		{"bad fig", `{"kind": "matrix", "selection": {"figs": ["99"]}}`},
		{"matrix with workload", `{"kind": "matrix", "workload": "bfs", "all": true}`},
		{"unknown kind", `{"kind": "sweep"}`},
	}
	for _, c := range cases {
		resp, _ := postJob(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", c.name, resp.StatusCode)
		}
	}
	if st := getStatus(t, ts, "j999999"); st.ID != "" {
		t.Error("unknown job returned a status")
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs/j999999/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job result = %d, want 404", resp.StatusCode)
	}
}

// stubServer returns a server whose runner blocks until release is closed.
func stubServer(t *testing.T, cfg Config) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	s, ts := newTestServer(t, cfg)
	s.run = func(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error) {
		select {
		case <-release:
			return []byte("stub " + p.spec.Workload + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, ts, release
}

func TestQueueFullBackpressure(t *testing.T) {
	_, ts, release := stubServer(t, Config{Workers: 1, QueueDepth: 1})
	defer close(release)
	_, st1 := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test"}`)
	// Wait for the worker to pick up job 1, so job 2 holds the only slot.
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, st1.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp2, _ := postJob(t, ts, `{"workload": "cholesky", "scale": "test"}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2 = %d, want 202", resp2.StatusCode)
	}
	resp3, _ := postJob(t, ts, `{"workload": "adi", "scale": "test"}`)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3 = %d, want 429 (queue full)", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestTenantRateLimit(t *testing.T) {
	now := time.Unix(5000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	_, ts, release := stubServer(t, Config{Workers: 1, Rate: 1, Burst: 1, Now: clock})
	defer close(release)
	resp1, _ := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test", "tenant": "alice"}`)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp1.StatusCode)
	}
	resp2, _ := postJob(t, ts, `{"workload": "cholesky", "scale": "test", "tenant": "alice"}`)
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429 (rate limited)", resp2.StatusCode)
	}
	// Another tenant is unaffected; alice recovers after a second.
	resp3, _ := postJob(t, ts, `{"workload": "cholesky", "scale": "test", "tenant": "bob"}`)
	if resp3.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's submit = %d, want 202", resp3.StatusCode)
	}
	mu.Lock()
	now = now.Add(time.Second)
	mu.Unlock()
	resp4, _ := postJob(t, ts, `{"workload": "adi", "scale": "test", "tenant": "alice"}`)
	if resp4.StatusCode != http.StatusAccepted {
		t.Fatalf("alice after refill = %d, want 202", resp4.StatusCode)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s, ts, release := stubServer(t, Config{Workers: 1, QueueDepth: 8})
	defer close(release)
	_, running := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test"}`)
	deadline := time.Now().Add(10 * time.Second)
	for getStatus(t, ts, running.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, queued := postJob(t, ts, `{"workload": "cholesky", "scale": "test"}`)

	del := func(id string) int {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(queued.ID); code != http.StatusOK {
		t.Fatalf("cancel queued = %d", code)
	}
	if st := getStatus(t, ts, queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job state = %s, want canceled", st.State)
	}
	// The canceled queued job never reaches the worker.
	if got := s.queue.len(); got != 0 {
		t.Errorf("queue len = %d after cancel, want 0", got)
	}
	if code := del(running.ID); code != http.StatusOK {
		t.Fatalf("cancel running = %d", code)
	}
	st := waitDone(t, ts, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("running job state = %s, want canceled", st.State)
	}
	if code, _ := getResult(t, ts, running.ID); code != http.StatusGone {
		t.Errorf("canceled job result = %d, want 410", code)
	}
}

func TestIdenticalSubmissionsCoalesce(t *testing.T) {
	s, ts, release := stubServer(t, Config{Workers: 1, QueueDepth: 8})
	_, a := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test", "tenant": "alice"}`)
	_, b := postJob(t, ts, `{"workload": "fdtd-2d", "scale": "test", "tenant": "bob"}`)
	if a.Key != b.Key {
		t.Fatalf("identical specs got different keys")
	}
	if !b.Coalesced {
		t.Error("second identical submission not coalesced")
	}
	close(release)
	fa, fb := waitDone(t, ts, a.ID), waitDone(t, ts, b.ID)
	if fa.State != StateDone || fb.State != StateDone {
		t.Fatalf("states = %s/%s", fa.State, fb.State)
	}
	_, bodyA := getResult(t, ts, a.ID)
	_, bodyB := getResult(t, ts, b.ID)
	if !bytes.Equal(bodyA, bodyB) {
		t.Error("coalesced jobs returned different bytes")
	}
	stats := s.Stats()
	if stats.Coalesced != 1 {
		t.Errorf("coalesced counter = %d, want 1", stats.Coalesced)
	}
}

func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"workload": "bfs", "scale": "test"}`)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body) // server closes the stream on done
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "event: done") {
		t.Errorf("stream missing done event:\n%s", data)
	}
}

func TestShutdownJournalsAndResumesByteIdentically(t *testing.T) {
	stateDir := t.TempDir()
	cacheDir := t.TempDir()
	sel := exp.Selection{Figs: []string{"7"}}
	spec := JobSpec{Kind: KindMatrix, Scale: "test", Selection: sel}

	s1, err := NewServer(Config{
		Workers:  1,
		Cache:    artifact.New(artifact.Config{Dir: cacheDir}),
		StateDir: stateDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Interpose on the runner so the test knows the build started before
	// shutdown interrupts it.
	started := make(chan struct{})
	real := s1.run
	s1.run = func(ctx context.Context, p *plan, prog *profile.Progress, o *runObs) ([]byte, error) {
		close(started)
		return real(ctx, p, prog, o)
	}
	j1, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	canceled, cancel := context.WithCancel(context.Background())
	cancel() // zero drain budget: abort mid-build and journal
	if err := s1.Shutdown(canceled); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "journal.json")); err != nil {
		t.Fatalf("no journal after interrupted shutdown: %v", err)
	}
	if _, err := s1.Submit(spec); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown = %v", err)
	}

	// A restarted server resumes the journaled job under its original ID
	// and produces the bytes the batch CLI would have.
	s2, err := NewServer(Config{
		Workers:  1,
		Cache:    artifact.New(artifact.Config{Dir: cacheDir}),
		StateDir: stateDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	j2, err := s2.Get(j1.id)
	if err != nil {
		t.Fatalf("restored server lost job %s: %v", j1.id, err)
	}
	select {
	case <-j2.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("resumed job did not finish")
	}
	out, state, errMsg := s2.Result(j2)
	if state != StateDone {
		t.Fatalf("resumed job state = %s (%s)", state, errMsg)
	}
	if want := directMatrix(t, sel); !bytes.Equal(out, want) {
		t.Error("resumed job output differs from batch render")
	}
	if s2.Stats().Restored != 1 {
		t.Errorf("restored counter = %d, want 1", s2.Stats().Restored)
	}
	// Clean shutdown with nothing pending removes the journal.
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(stateDir, "journal.json")); !os.IsNotExist(err) {
		t.Errorf("journal left behind after clean shutdown: %v", err)
	}
}

// TestConcurrentSubmissionsRace hammers the server with concurrent
// submissions, polls and cancels; run under -race this is the
// concurrency-safety proof, and every completed job's bytes must match
// the direct CLI rendering.
func TestConcurrentSubmissionsRace(t *testing.T) {
	s, _ := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	names := []string{"fdtd-2d", "cholesky", "bfs"}
	want := make(map[string][]byte, len(names))
	for _, n := range names {
		want[n] = directRun(t, n, "Dist-DA-F")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			j, err := s.Submit(JobSpec{Workload: name, Scale: "test", Tenant: fmt.Sprintf("t%d", i%4)})
			if err != nil {
				errs <- err
				return
			}
			<-j.Done()
			out, state, errMsg := s.Result(j)
			if state != StateDone {
				errs <- fmt.Errorf("%s: state %s (%s)", name, state, errMsg)
				return
			}
			if !bytes.Equal(out, want[name]) {
				errs <- fmt.Errorf("%s: bytes differ from direct run", name)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.Stats(); st.Completed == 0 {
		t.Error("no completions recorded")
	}
}
