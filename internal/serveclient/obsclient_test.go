package serveclient

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"distda/internal/obs"
	"distda/internal/serve"
)

// TestMetricsReadyTrace drives a job and checks the observability helpers:
// Ready flips to ErrUnavailable on drain, Metrics parses the exposition
// and shows the job counters moving, Trace returns a Chrome trace file.
func TestMetricsReadyTrace(t *testing.T) {
	s, c := newPair(t, serve.Config{Workers: 1, Obs: obs.New()})
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}
	before, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	doneKey := `distda_jobs_total{outcome="done",tenant="anonymous"}`
	if before[doneKey] != 0 {
		t.Fatalf("fresh server: %s = %v", doneKey, before[doneKey])
	}

	st, err := c.Submit(ctx, serve.JobSpec{Workload: "bfs", Scale: "test"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	fin, err := c.Wait(ctx, st.ID, nil)
	if err != nil || fin.State != serve.StateDone {
		t.Fatalf("wait: %v (state %s %s)", err, fin.State, fin.Error)
	}

	after, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if after[doneKey] != 1 {
		t.Errorf("%s = %v, want 1", doneKey, after[doneKey])
	}
	if after[`distda_job_stage_seconds_count{stage="executing"}`] != 1 {
		t.Errorf("no executing-stage latency recorded: %v", after)
	}
	if _, ok := after["distda_queue_depth"]; !ok {
		t.Error("no queue depth gauge in scrape")
	}

	raw, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace is not a JSON array: %v\n%s", err, raw)
	}
	if len(events) == 0 {
		t.Error("trace has no events")
	}

	s.StartDrain()
	if err := c.Ready(ctx); !errors.Is(err, ErrUnavailable) {
		t.Errorf("ready while draining = %v, want ErrUnavailable", err)
	}
}

// TestMetricsDisabledServer: a server without a registry 404s the scrape
// and the client surfaces it as ErrNotFound.
func TestMetricsDisabledServer(t *testing.T) {
	_, c := newPair(t, serve.Config{Workers: 1})
	if _, err := c.Metrics(context.Background()); !errors.Is(err, ErrNotFound) {
		t.Errorf("metrics on obs-less server = %v, want ErrNotFound", err)
	}
}
