// Package serveclient is a typed Go client for the distda-serve HTTP API.
// It mirrors the wire types from internal/serve (JobSpec in, JobStatus and
// Stats out), maps API error bodies to typed errors, supports
// context cancellation on every call, and reads the server-sent progress
// stream so callers can follow a job without polling.
//
// Typical use:
//
//	c := serveclient.New("http://localhost:8080")
//	st, err := c.Submit(ctx, serve.JobSpec{Workload: "fdtd-2d", Scale: "test"})
//	...
//	fin, err := c.Wait(ctx, st.ID, nil) // follows the SSE stream
//	out, err := c.Result(ctx, fin.ID)
package serveclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"distda/internal/obs"
	"distda/internal/profile"
	"distda/internal/serve"
)

// Sentinel errors. APIError implements Is against these, so callers can
// write errors.Is(err, serveclient.ErrNotFound) without inspecting codes.
var (
	// ErrNotFound: no job with that ID (HTTP 404).
	ErrNotFound = errors.New("serveclient: job not found")
	// ErrBusy: the server applied backpressure — queue full or tenant
	// rate limit (HTTP 429). Retry after a backoff.
	ErrBusy = errors.New("serveclient: server busy")
	// ErrUnavailable: the server is shutting down (HTTP 503).
	ErrUnavailable = errors.New("serveclient: server unavailable")
	// ErrNotDone: the job has not reached a terminal state yet
	// (Result on a queued or running job, HTTP 202).
	ErrNotDone = errors.New("serveclient: job not done")
	// ErrJobFailed: the job reached StateFailed; the APIError message
	// carries the failure reason.
	ErrJobFailed = errors.New("serveclient: job failed")
	// ErrJobCanceled: the job reached StateCanceled (HTTP 410).
	ErrJobCanceled = errors.New("serveclient: job canceled")
)

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	StatusCode int    // HTTP status
	Message    string // the server's "error" field (or raw body)
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serveclient: %s (HTTP %d)", e.Message, e.StatusCode)
}

// Is maps status codes onto the package sentinels.
func (e *APIError) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.StatusCode == http.StatusNotFound
	case ErrBusy:
		return e.StatusCode == http.StatusTooManyRequests
	case ErrUnavailable:
		return e.StatusCode == http.StatusServiceUnavailable
	case ErrJobCanceled:
		return e.StatusCode == http.StatusGone
	}
	return false
}

// Client talks to one distda-serve instance. It is safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (default
// http.DefaultClient). Note the SSE stream in Events/Wait is long-lived, so
// a client with a short Timeout will cut it off — use context deadlines for
// per-call limits instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"; a trailing slash is tolerated).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// apiErr converts a non-2xx response into an *APIError, decoding the
// server's JSON error body when present.
func apiErr(resp *http.Response, body []byte) error {
	var ae struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &ae) == nil && ae.Error != "" {
		msg = ae.Error
	}
	if msg == "" {
		msg = resp.Status
	}
	return &APIError{StatusCode: resp.StatusCode, Message: msg}
}

// do issues a request and returns the response body for 2xx codes.
func (c *Client) do(ctx context.Context, method, path string, in io.Reader) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, in)
	if err != nil {
		return nil, nil, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp, nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return resp, body, apiErr(resp, body)
	}
	return resp, body, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	_, body, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// Health checks the liveness probe.
func (c *Client) Health(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	return err
}

// Submit posts a job. The returned status is the submission snapshot: a
// result-cache hit comes back already StateDone with Cached set.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	var st serve.JobStatus
	data, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	_, body, err := c.do(ctx, http.MethodPost, "/api/v1/jobs", bytes.NewReader(data))
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	return st, c.getJSON(ctx, "/api/v1/jobs/"+id, &st)
}

// List returns all jobs in submission order.
func (c *Client) List(ctx context.Context) ([]serve.JobStatus, error) {
	var out []serve.JobStatus
	return out, c.getJSON(ctx, "/api/v1/jobs", &out)
}

// Stats returns the server counters.
func (c *Client) Stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	return st, c.getJSON(ctx, "/api/v1/stats", &st)
}

// Ready checks the readiness probe: nil while the server accepts jobs, an
// error satisfying errors.Is(err, ErrUnavailable) once it is draining.
func (c *Client) Ready(ctx context.Context) error {
	_, _, err := c.do(ctx, http.MethodGet, "/readyz", nil)
	return err
}

// Metrics scrapes GET /metrics and parses the Prometheus text exposition
// into a flat map keyed "name" or "name{label=\"value\",...}" (labels as
// the server rendered them). Gauges and counters map to their value;
// histograms contribute their _bucket/_sum/_count series.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	_, body, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	return obs.ParseText(bytes.NewReader(body))
}

// Trace fetches a job's lifecycle spans as a Chrome trace_event JSON file
// (load in chrome://tracing or Perfetto).
func (c *Client) Trace(ctx context.Context, id string) ([]byte, error) {
	_, body, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/trace", nil)
	return body, err
}

// Result returns the rendered output bytes of a finished job. A job that
// is still queued or running returns ErrNotDone; a failed job returns an
// error wrapping ErrJobFailed with the failure message; a canceled job
// returns an error satisfying errors.Is(err, ErrJobCanceled).
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, body, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+id+"/result", nil)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) && ae.StatusCode == http.StatusInternalServerError {
			return nil, fmt.Errorf("%w: %s", ErrJobFailed, ae.Message)
		}
		return nil, err
	}
	if resp.StatusCode == http.StatusAccepted {
		return nil, ErrNotDone
	}
	return body, nil
}

// Cancel cancels a queued or running job (idempotent on terminal jobs) and
// returns the resulting status.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	_, body, err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+id, nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(body, &st)
}

// Event is one server-sent event from a job's progress stream.
type Event struct {
	// Name is the event type: "progress" or "done".
	Name string
	// Progress is set for "progress" events.
	Progress profile.Snapshot
	// Status is set for the final "done" event.
	Status *serve.JobStatus
}

// Events follows the job's server-sent event stream, invoking fn for each
// event until the stream ends (the server sends "done" when the job
// reaches a terminal state), fn returns a non-nil error, or ctx is
// canceled. A non-nil error from fn stops the stream and is returned.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return apiErr(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var event string
	var data strings.Builder
	flush := func() error {
		if event == "" && data.Len() == 0 {
			return nil
		}
		ev := Event{Name: event}
		switch event {
		case "progress":
			if err := json.Unmarshal([]byte(data.String()), &ev.Progress); err != nil {
				return fmt.Errorf("serveclient: bad progress event: %w", err)
			}
		case "done":
			var st serve.JobStatus
			if err := json.Unmarshal([]byte(data.String()), &st); err != nil {
				return fmt.Errorf("serveclient: bad done event: %w", err)
			}
			ev.Status = &st
		}
		event = ""
		data.Reset()
		return fn(ev)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		// Context cancellation surfaces as a read error on the stream.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return flush()
}

// Wait blocks until the job reaches a terminal state and returns its final
// status. It follows the SSE progress stream, invoking onProgress (when
// non-nil) for each snapshot; if the stream drops before the terminal
// event, it falls back to polling Status.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(profile.Snapshot)) (serve.JobStatus, error) {
	var final *serve.JobStatus
	err := c.Events(ctx, id, func(ev Event) error {
		switch ev.Name {
		case "progress":
			if onProgress != nil {
				onProgress(ev.Progress)
			}
		case "done":
			final = ev.Status
		}
		return nil
	})
	if err != nil {
		return serve.JobStatus{}, err
	}
	if final != nil {
		return *final, nil
	}
	// Stream ended without a terminal event (e.g. server-side write cut):
	// poll until the job settles.
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case serve.StateDone, serve.StateFailed, serve.StateCanceled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
