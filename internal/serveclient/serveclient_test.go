package serveclient

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"distda/internal/profile"
	"distda/internal/serve"
)

func newPair(t *testing.T, cfg serve.Config) (*serve.Server, *Client) {
	t.Helper()
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Shutdown(context.Background())
	})
	return s, New(ts.URL + "/") // trailing slash must be tolerated
}

func TestSubmitWaitResult(t *testing.T) {
	_, c := newPair(t, serve.Config{Workers: 2})
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	st, err := c.Submit(ctx, serve.JobSpec{Workload: "fdtd-2d", Config: "Dist-DA-IO", Scale: "test"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" || st.Kind != serve.KindRun {
		t.Fatalf("submit status = %+v", st)
	}
	if st.Backend != "iocore" {
		t.Errorf("backend = %q, want iocore", st.Backend)
	}
	var snaps []profile.Snapshot
	fin, err := c.Wait(ctx, st.ID, func(s profile.Snapshot) { snaps = append(snaps, s) })
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != serve.StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	if len(snaps) == 0 {
		t.Error("no progress snapshots streamed")
	}
	out, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !bytes.Contains(out, []byte("fdtd-2d")) {
		t.Errorf("result does not mention the workload:\n%s", out)
	}
	// Resubmission hits the result cache and the client sees it.
	st2, err := c.Submit(ctx, serve.JobSpec{Workload: "fdtd-2d", Config: "Dist-DA-IO", Scale: "test"})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !st2.Cached || st2.State != serve.StateDone {
		t.Errorf("resubmit = %+v, want cached done", st2)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.CacheHits != 1 || stats.Backends["iocore"] != 2 {
		t.Errorf("stats = hits=%d backends=%v", stats.CacheHits, stats.Backends)
	}
	jobs, err := c.List(ctx)
	if err != nil || len(jobs) != 2 {
		t.Errorf("list = %d jobs, err %v; want 2", len(jobs), err)
	}
}

func TestTypedErrors(t *testing.T) {
	_, c := newPair(t, serve.Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Status(ctx, "j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown job status err = %v, want ErrNotFound", err)
	}
	var ae *APIError
	if _, err := c.Submit(ctx, serve.JobSpec{Workload: "no-such-workload", Scale: "test"}); err == nil {
		t.Error("bad submit succeeded")
	} else if !errors.As(err, &ae) || ae.StatusCode != http.StatusBadRequest || ae.Message == "" {
		t.Errorf("bad submit err = %v, want *APIError with 400 + message", err)
	}
	if _, err := c.Submit(ctx, serve.JobSpec{Workload: "fdtd-2d", Kernel: "kernel broken("}); err == nil {
		t.Error("bad kernel accepted")
	}
}

func TestResultNotDoneAndCancel(t *testing.T) {
	// One worker pinned by a slow-ish job keeps the second job queued long
	// enough to observe ErrNotDone and cancel it.
	_, c := newPair(t, serve.Config{Workers: 1})
	ctx := context.Background()
	first, err := c.Submit(ctx, serve.JobSpec{Workload: "cholesky", Config: "OoO", Scale: "test"})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, serve.JobSpec{Workload: "bfs", Config: "OoO", Scale: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(ctx, queued.ID); !errors.Is(err, ErrNotDone) && err != nil {
		// The job may legitimately finish before we ask; only a wrong error
		// type fails the test.
		t.Errorf("queued result err = %v, want ErrNotDone or nil", err)
	}
	st, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st.State != serve.StateCanceled && st.State != serve.StateDone {
		t.Errorf("canceled state = %s", st.State)
	}
	if st.State == serve.StateCanceled {
		if _, err := c.Result(ctx, queued.ID); !errors.Is(err, ErrJobCanceled) {
			t.Errorf("canceled result err = %v, want ErrJobCanceled", err)
		}
	}
	if _, err := c.Wait(ctx, first.ID, nil); err != nil {
		t.Fatalf("wait first: %v", err)
	}
}

func TestWaitContextCancel(t *testing.T) {
	_, c := newPair(t, serve.Config{Workers: 1})
	bg := context.Background()
	// Pin the worker so the watched job never starts.
	if _, err := c.Submit(bg, serve.JobSpec{Workload: "cholesky", Config: "Dist-DA-F", Scale: "test"}); err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(bg, serve.JobSpec{Workload: "bfs", Config: "Dist-DA-F", Scale: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 200*time.Millisecond)
	defer cancel()
	if _, err := c.Wait(ctx, queued.ID, nil); !errors.Is(err, context.DeadlineExceeded) {
		// A fast machine may finish both jobs inside the deadline.
		if err != nil {
			t.Errorf("wait err = %v, want DeadlineExceeded or success", err)
		}
	}
}
