package sim

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"distda/internal/engine"
	"distda/internal/workloads"
)

var updateBackendGolden = flag.Bool("update-backend-golden", false,
	"rewrite the pre-refactor backend golden files")

// goldenConfigs are the configurations pinned by the backend refactor
// goldens: the six paper configs plus the §VII off-chip extension.
func goldenConfigs() []Config {
	return append(AllPaperConfigs(), DistDAOffChip())
}

// TestBackendGolden pins iocore/CGRA simulation results byte-identical to
// the goldens captured before the pluggable-backend refactor. For every
// workload × configuration the run executes under all three engine
// scheduling modes; the three results must agree with each other and with
// the committed golden JSON. Any behavioral drift introduced by routing
// launches through internal/backend shows up here as a byte diff.
func TestBackendGolden(t *testing.T) {
	dir := filepath.Join("testdata", "backend_golden")
	if *updateBackendGolden {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range workloads.All(workloads.ScaleTest) {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			// One generation per workload: every config and mode must see
			// identical input data. workloads.All hands out freshly seeded
			// generators, so the first draw is deterministic.
			data := w.NewData()
			got := map[string]*Result{}
			for _, cfg := range goldenConfigs() {
				var first *Result
				for _, mode := range []engine.Mode{engine.ModeAdaptive, engine.ModeEvent, engine.ModeNaive} {
					c := cfg
					c.EngineMode = mode
					r, err := Run(w.Kernel, w.Params, copyData(data), c)
					if err != nil {
						t.Fatalf("%s on %s (%s): %v", w.Name, cfg.Name, mode, err)
					}
					if first == nil {
						first = r
						continue
					}
					if fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", first) {
						t.Fatalf("%s on %s: %s mode diverges from adaptive", w.Name, cfg.Name, mode)
					}
				}
				// Intra-run sharding is wall-clock only: any shard count
				// must land on the same golden bytes as the serial run.
				for _, shards := range []int{2, 4, 8} {
					c := cfg
					c.Shards = shards
					r, err := Run(w.Kernel, w.Params, copyData(data), c)
					if err != nil {
						t.Fatalf("%s on %s (shards=%d): %v", w.Name, cfg.Name, shards, err)
					}
					if fmt.Sprintf("%+v", r) != fmt.Sprintf("%+v", first) {
						t.Fatalf("%s on %s: shards=%d diverges from serial", w.Name, cfg.Name, shards)
					}
				}
				got[cfg.Name] = first
			}
			raw, err := json.MarshalIndent(got, "", " ")
			if err != nil {
				t.Fatal(err)
			}
			raw = append(raw, '\n')
			path := filepath.Join(dir, w.Name+".json")
			if *updateBackendGolden {
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-backend-golden): %v", err)
			}
			if string(raw) != string(want) {
				t.Errorf("%s: results differ from pre-refactor golden %s\n(regenerate only if the behavioral change is intended: go test ./internal/sim -run TestBackendGolden -update-backend-golden)", w.Name, path)
			}
		})
	}
}
