// Package sim assembles the full system of Table III and executes kernels
// under the paper's tested configurations (§VI-A): an OoO host baseline, a
// monolithic accelerator with centralized accesses (Mono-CA), monolithic
// compute with decentralized accesses (Mono-DA-IO/-F), and distributed
// compute with decentralized accesses (Dist-DA-IO/-F). Offloaded regions
// execute functionally inside the cycle engine and results are validated
// against the reference interpreter.
package sim

import (
	"distda/internal/backend"
	"distda/internal/compiler"
	"distda/internal/engine"
	"distda/internal/engine/shard"
	"distda/internal/ir"
	"distda/internal/profile"
	"distda/internal/trace"

	// Every in-tree accelerator backend registers itself; importing the
	// aggregate here guarantees registration precedes any config validation.
	_ "distda/internal/backend/all"
)

// Config describes one tested configuration.
type Config struct {
	Name string
	// Backend names the registered accelerator backend ("iocore", "cgra",
	// "pimdram") executing offloaded regions; empty means no accelerators
	// (the OoO baseline). BackendOpts carries backend-scoped configuration —
	// the CGRA grid shape, for example, is backend.Opt("grid", "5x5") rather
	// than a top-level field.
	Backend     string
	BackendOpts backend.Options
	Distribute  bool // distributed computation (Dist-DA) vs monolithic
	Centralized bool // Mono-CA: access units centralized at the accel node
	AccelGHz    int  // accelerator clock (Table III: IO 2 GHz, CGRA 1 GHz)

	BufElems      int   // per-buffer decoupling window, in elements
	CombineWindow int64 // multi-access combining window, in elements
	Combining     bool  // Fig. 2d runtime combining
	HostPrefetch  bool  // host L2 stride prefetcher

	IOWidth     int  // in-order issue width (Fig. 14 +SW uses 4)
	SWPrefetch  bool // software prefetch for accel random loads (Fig. 14)
	AllocSpread bool // allocation customization (Fig. 14 +A)
	NoStreams   bool // skip stream specialization (§VI-D multithreading)
	NoFolding   bool // keep epilogue stores on the host (Dist-DA-B)

	// OffChip enables the §VII extension: partitions anchored at objects
	// larger than OffChipThreshold bytes are placed at the memory
	// controller and access DRAM directly, bypassing the on-chip L3 path.
	OffChip          bool
	OffChipThreshold int

	// PIMThreshold, when positive, lets the partitioner steer individual
	// offloaded regions to the "pimdram" backend: a region whose summed
	// object footprint is at least PIMThreshold bytes executes in DRAM
	// regardless of Config.Backend. Zero disables per-region selection.
	PIMThreshold int

	CompilerMode  compiler.Mode
	MaxEngine     int64 // engine budget per launch, base cycles
	PrivCacheKB   int   // Mono-CA private cache size (0 = none)
	NoObjConstr   bool  // ablation: drop ≤1-object preference
	PlaceAtHost   bool  // ablation: ignore placement hints, keep accels at the host tile
	Threads       int   // software threads for parallel-annotated loops
	HostPrefDeg   int
	MonoCAAt2GHz  bool // kept for clarity; Mono-CA accel runs at 2 GHz
	ValidateEvery bool // compare against the interpreter after Run

	// Trace, when non-nil, receives cycle-accurate span/instant events from
	// the host timeline, the engine scheduler and every assembled component
	// (fill/drain FSMs, cores, fabrics). Timestamps are engine base cycles
	// on the run-global clock; export with Tracer.WriteChromeJSON. Tracing
	// is observational only: cycle counts and results are bit-identical
	// with it on or off (the differential tests enforce this).
	Trace *trace.Tracer

	// Metrics, when non-nil, receives per-component counters, gauges and
	// latency histograms at assembly and collection time. Registries from
	// parallel runs can be folded together with Metrics.Merge.
	Metrics *trace.Metrics

	// Profile, when non-nil, receives the run's cycle and energy attribution
	// (per-component busy/stall, per-region offload latency phases,
	// queue-occupancy histograms). Like tracing, profiling is observational
	// only: cycle counts and results are bit-identical with it on or off.
	// Profilers from parallel runs fold together with Profiler.Merge.
	Profile *profile.Profiler

	// EngineMode selects the engine scheduling strategy for every offload
	// launch: adaptive (the zero value and default; switches between dense
	// edge-stepping and event-driven fast-forward by observed wake
	// density), pure event-driven, or the naive one-tick-at-a-time
	// reference. Results are bit-identical across all three (the
	// differential tests enforce it).
	EngineMode engine.Mode

	// Shards, when above 1, lets each offload launch execute across up to
	// that many goroutines: the assembled components are partitioned by the
	// NUCA resources they may touch (L3 home clusters, channel peerings)
	// into islands that share no mutable state, and the islands advance on
	// independent engines in parallel. Results — cycle counts, energy to the
	// last bit, every counter — are bit-identical to a serial run at any
	// shard count (the differential and golden tests sweep {1,2,4,8}).
	// Launches whose components all land in one island, runs with a tracer
	// attached, and the Mono-CA private-cache path fall back to serial
	// execution. Zero or 1 means serial.
	Shards int

	// ShardStats, when non-nil, accumulates wall-clock shard attribution
	// (per-island busy/barrier-wait time, window counts, idle
	// fast-forwards) across every sharded launch of the run. Observational
	// only: results are bit-identical with it on or off. Serial launches
	// (Shards <= 1, single-island partitions, traced runs) record nothing.
	ShardStats *shard.Stats

	// NaiveEngine drives every offload launch with the engine's reference
	// one-tick-at-a-time scheduler instead of the event-driven fast-forward
	// one. Results are bit-identical either way (the differential tests
	// enforce it); this exists for those tests and for wall-clock
	// comparisons. It overrides EngineMode when set.
	NaiveEngine bool

	// Program, when non-nil and compiled from this run's kernel, is the
	// bytecode program used for reference validation (ValidateEvery)
	// instead of compiling one on the fly. Populated by the experiment
	// matrix from the artifact cache; runs with a nil or mismatched
	// Program fall back to the process-wide ir.ProgramFor cache.
	Program *ir.Program

	// Cancel, when non-nil, interrupts the run when closed: the host stops
	// at the next loop boundary and Run returns an error wrapping
	// ErrCanceled. Wire a context's Done channel here (WithCancel) to give
	// a simulation a deadline. Cancellation is observational until it
	// fires: a run that completes without Cancel closing is bit-identical
	// to one with Cancel nil.
	Cancel <-chan struct{}
}

// Base is the shared substrate-independent default configuration every
// named constructor starts from. It is not directly runnable (it has no
// name); seed NewConfig with it to build fully custom configurations.
func Base() Config {
	var c Config
	c.BufElems = 128
	c.CombineWindow = 64
	c.Combining = true
	c.HostPrefetch = true
	c.HostPrefDeg = 2
	c.IOWidth = 1
	c.MaxEngine = 1 << 34
	c.ValidateEvery = true
	return c
}

// HasAccel reports whether the configuration offloads to an accelerator
// backend at all (false only for the OoO host baseline).
func (c Config) HasAccel() bool { return c.Backend != "" }

// OoO is the out-of-order host baseline (①).
func OoO() Config {
	return MustConfig(Base, WithName("OoO"))
}

// MonoCA is the monolithic accelerator on the L3 bus with centralized,
// stream-specialized accesses and an 8 KB private cache (②).
func MonoCA() Config {
	return MustConfig(Base,
		WithName("Mono-CA"),
		WithBackend("iocore"),
		WithAccelGHz(2),
		WithCentralized(true),
		WithCompilerMode(compiler.ModeMono),
		WithPrivCacheKB(8))
}

// MonoDAIO is monolithic compute with decentralized accesses on an in-order
// core at 2 GHz (③).
func MonoDAIO() Config {
	return MustConfig(Base,
		WithName("Mono-DA-IO"),
		WithBackend("iocore"),
		WithAccelGHz(2),
		WithCompilerMode(compiler.ModeMono))
}

// MonoDAF is monolithic compute with decentralized accesses on an 8x8 CGRA
// at 1 GHz (④).
func MonoDAF() Config {
	return MustConfig(Base,
		WithName("Mono-DA-F"),
		WithBackend("cgra", backend.Opt("grid", "8x8")),
		WithAccelGHz(1),
		WithCompilerMode(compiler.ModeMono))
}

// DistDAIO is distributed compute + decentralized accesses on in-order
// cores at 2 GHz (⑤).
func DistDAIO() Config {
	return MustConfig(Base,
		WithName("Dist-DA-IO"),
		WithBackend("iocore"),
		WithAccelGHz(2),
		WithDistribute(true),
		WithCompilerMode(compiler.ModeDist))
}

// DistDAF is distributed compute + decentralized accesses on 5x5 CGRA
// tiles at 1 GHz (⑥).
func DistDAF() Config {
	return MustConfig(Base,
		WithName("Dist-DA-F"),
		WithBackend("cgra", backend.Opt("grid", "5x5")),
		WithAccelGHz(1),
		WithDistribute(true),
		WithCompilerMode(compiler.ModeDist))
}

// DistDAIOSW is Fig. 14's Dist-DA-IO+SW: issue width 4 plus software
// prefetching in the offloaded code.
func DistDAIOSW() Config {
	return MustConfig(DistDAIO,
		WithName("Dist-DA-IO+SW"),
		WithIOWidth(4),
		WithSWPrefetch(true))
}

// DistDAFA is Fig. 14's Dist-DA-F+A: manually customized data-structure
// allocation for intra-cluster locality.
func DistDAFA() Config {
	return MustConfig(DistDAF,
		WithName("Dist-DA-F+A"),
		WithAllocSpread(true))
}

// WithClock returns the config with the accelerator clock replaced
// (clocking sensitivity, Fig. 13).
func (c Config) WithClock(ghz int) Config {
	c.AccelGHz = ghz
	c.Name = c.Name + nameGHz(ghz)
	return c
}

func nameGHz(ghz int) string {
	switch ghz {
	case 1:
		return "@1GHz"
	case 2:
		return "@2GHz"
	case 3:
		return "@3GHz"
	default:
		return "@?"
	}
}

// DistDAOffChip is the §VII "extending the interface to off-chip data
// residence" extension: Dist-DA-IO plus near-memory placement for
// DRAM-resident objects.
func DistDAOffChip() Config {
	return MustConfig(DistDAIO,
		WithName("Dist-DA-OffChip"),
		WithOffChip(1<<20))
}

// DistDAPIM is the PIM-in-DRAM configuration: distributed offload lowering
// as in Dist-DA-IO, but every region executes on bank-level compute units
// at the DRAM channel (1 GHz engine clock, channel-bandwidth-bound issue,
// no NoC traversal for resident data).
func DistDAPIM() Config {
	return MustConfig(DistDAIO,
		WithName("Dist-DA-PIM"),
		WithBackend("pimdram"),
		WithAccelGHz(1))
}

// AllPaperConfigs returns the six configurations of §VI-A in paper order.
func AllPaperConfigs() []Config {
	return []Config{OoO(), MonoCA(), MonoDAIO(), MonoDAF(), DistDAIO(), DistDAF()}
}
