// Package sim assembles the full system of Table III and executes kernels
// under the paper's tested configurations (§VI-A): an OoO host baseline, a
// monolithic accelerator with centralized accesses (Mono-CA), monolithic
// compute with decentralized accesses (Mono-DA-IO/-F), and distributed
// compute with decentralized accesses (Dist-DA-IO/-F). Offloaded regions
// execute functionally inside the cycle engine and results are validated
// against the reference interpreter.
package sim

import (
	"distda/internal/cgra"
	"distda/internal/compiler"
	"distda/internal/trace"
)

// Substrate selects the accelerator execution substrate.
type Substrate int

const (
	// SubNone: no accelerators (the OoO baseline).
	SubNone Substrate = iota
	// SubIO: lightweight single-issue in-order cores.
	SubIO
	// SubCGRA: statically mapped CGRA fabric.
	SubCGRA
)

// Config describes one tested configuration.
type Config struct {
	Name        string
	Substrate   Substrate
	Distribute  bool // distributed computation (Dist-DA) vs monolithic
	Centralized bool // Mono-CA: access units centralized at the accel node
	AccelGHz    int  // accelerator clock (Table III: IO 2 GHz, CGRA 1 GHz)
	Grid        cgra.GridConfig

	BufElems      int   // per-buffer decoupling window, in elements
	CombineWindow int64 // multi-access combining window, in elements
	Combining     bool  // Fig. 2d runtime combining
	HostPrefetch  bool  // host L2 stride prefetcher

	IOWidth     int  // in-order issue width (Fig. 14 +SW uses 4)
	SWPrefetch  bool // software prefetch for accel random loads (Fig. 14)
	AllocSpread bool // allocation customization (Fig. 14 +A)
	NoStreams   bool // skip stream specialization (§VI-D multithreading)
	NoFolding   bool // keep epilogue stores on the host (Dist-DA-B)

	// OffChip enables the §VII extension: partitions anchored at objects
	// larger than OffChipThreshold bytes are placed at the memory
	// controller and access DRAM directly, bypassing the on-chip L3 path.
	OffChip          bool
	OffChipThreshold int

	CompilerMode  compiler.Mode
	MaxEngine     int64 // engine budget per launch, base cycles
	PrivCacheKB   int   // Mono-CA private cache size (0 = none)
	NoObjConstr   bool  // ablation: drop ≤1-object preference
	PlaceAtHost   bool  // ablation: ignore placement hints, keep accels at the host tile
	Threads       int   // software threads for parallel-annotated loops
	HostPrefDeg   int
	MonoCAAt2GHz  bool // kept for clarity; Mono-CA accel runs at 2 GHz
	ValidateEvery bool // compare against the interpreter after Run

	// Trace, when non-nil, receives cycle-accurate span/instant events from
	// the host timeline, the engine scheduler and every assembled component
	// (fill/drain FSMs, cores, fabrics). Timestamps are engine base cycles
	// on the run-global clock; export with Tracer.WriteChromeJSON. Tracing
	// is observational only: cycle counts and results are bit-identical
	// with it on or off (the differential tests enforce this).
	Trace *trace.Tracer

	// Metrics, when non-nil, receives per-component counters, gauges and
	// latency histograms at assembly and collection time. Registries from
	// parallel runs can be folded together with Metrics.Merge.
	Metrics *trace.Metrics

	// NaiveEngine drives every offload launch with the engine's reference
	// one-tick-at-a-time scheduler instead of the event-driven fast-forward
	// one. Results are bit-identical either way (the differential tests
	// enforce it); this exists for those tests and for wall-clock
	// comparisons.
	NaiveEngine bool
}

func baseAccel() Config {
	return Config{
		BufElems:      128,
		CombineWindow: 64,
		Combining:     true,
		HostPrefetch:  true,
		HostPrefDeg:   2,
		IOWidth:       1,
		MaxEngine:     1 << 34,
		ValidateEvery: true,
	}
}

// OoO is the out-of-order host baseline (①).
func OoO() Config {
	c := baseAccel()
	c.Name = "OoO"
	c.Substrate = SubNone
	return c
}

// MonoCA is the monolithic accelerator on the L3 bus with centralized,
// stream-specialized accesses and an 8 KB private cache (②).
func MonoCA() Config {
	c := baseAccel()
	c.Name = "Mono-CA"
	c.Substrate = SubIO
	c.AccelGHz = 2
	c.Centralized = true
	c.CompilerMode = compiler.ModeMono
	c.PrivCacheKB = 8
	return c
}

// MonoDAIO is monolithic compute with decentralized accesses on an in-order
// core at 2 GHz (③).
func MonoDAIO() Config {
	c := baseAccel()
	c.Name = "Mono-DA-IO"
	c.Substrate = SubIO
	c.AccelGHz = 2
	c.CompilerMode = compiler.ModeMono
	return c
}

// MonoDAF is monolithic compute with decentralized accesses on an 8x8 CGRA
// at 1 GHz (④).
func MonoDAF() Config {
	c := baseAccel()
	c.Name = "Mono-DA-F"
	c.Substrate = SubCGRA
	c.AccelGHz = 1
	c.Grid = cgra.Grid8x8()
	c.CompilerMode = compiler.ModeMono
	return c
}

// DistDAIO is distributed compute + decentralized accesses on in-order
// cores at 2 GHz (⑤).
func DistDAIO() Config {
	c := baseAccel()
	c.Name = "Dist-DA-IO"
	c.Substrate = SubIO
	c.AccelGHz = 2
	c.Distribute = true
	c.CompilerMode = compiler.ModeDist
	return c
}

// DistDAF is distributed compute + decentralized accesses on 5x5 CGRA
// tiles at 1 GHz (⑥).
func DistDAF() Config {
	c := baseAccel()
	c.Name = "Dist-DA-F"
	c.Substrate = SubCGRA
	c.AccelGHz = 1
	c.Grid = cgra.Grid5x5()
	c.Distribute = true
	c.CompilerMode = compiler.ModeDist
	return c
}

// DistDAIOSW is Fig. 14's Dist-DA-IO+SW: issue width 4 plus software
// prefetching in the offloaded code.
func DistDAIOSW() Config {
	c := DistDAIO()
	c.Name = "Dist-DA-IO+SW"
	c.IOWidth = 4
	c.SWPrefetch = true
	return c
}

// DistDAFA is Fig. 14's Dist-DA-F+A: manually customized data-structure
// allocation for intra-cluster locality.
func DistDAFA() Config {
	c := DistDAF()
	c.Name = "Dist-DA-F+A"
	c.AllocSpread = true
	return c
}

// WithClock returns the config with the accelerator clock replaced
// (clocking sensitivity, Fig. 13).
func (c Config) WithClock(ghz int) Config {
	c.AccelGHz = ghz
	c.Name = c.Name + nameGHz(ghz)
	return c
}

func nameGHz(ghz int) string {
	switch ghz {
	case 1:
		return "@1GHz"
	case 2:
		return "@2GHz"
	case 3:
		return "@3GHz"
	default:
		return "@?"
	}
}

// DistDAOffChip is the §VII "extending the interface to off-chip data
// residence" extension: Dist-DA-IO plus near-memory placement for
// DRAM-resident objects.
func DistDAOffChip() Config {
	c := DistDAIO()
	c.Name = "Dist-DA-OffChip"
	c.OffChip = true
	c.OffChipThreshold = 1 << 20
	return c
}

// AllPaperConfigs returns the six configurations of §VI-A in paper order.
func AllPaperConfigs() []Config {
	return []Config{OoO(), MonoCA(), MonoDAIO(), MonoDAF(), DistDAIO(), DistDAF()}
}
