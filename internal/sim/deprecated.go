package sim

// Deprecated substrate-era configuration surface, kept for one release.
// The Substrate enum and the CGRA-only WithGrid option predate the
// pluggable backend registry (internal/backend); new code selects backends
// by name with WithBackend and moves backend-specific knobs into
// backend-scoped options. This file is the only non-test code outside
// internal/backend allowed to import the concrete accelerator packages
// (scripts/verify.sh enforces the ban and exempts it explicitly).

import (
	"distda/internal/backend"
	"distda/internal/cgra"
)

// Substrate selects the accelerator execution substrate.
//
// Deprecated: backends are selected by registry name; use WithBackend.
type Substrate int

const (
	// SubNone: no accelerators (the OoO baseline).
	//
	// Deprecated: use WithBackend("").
	SubNone Substrate = iota
	// SubIO: lightweight single-issue in-order cores.
	//
	// Deprecated: use WithBackend("iocore").
	SubIO
	// SubCGRA: statically mapped CGRA fabric.
	//
	// Deprecated: use WithBackend("cgra", backend.Opt("grid", ...)).
	SubCGRA
)

// WithSubstrate selects the accelerator execution substrate.
//
// Deprecated: use WithBackend. SubCGRA keeps any grid option already set
// (or the one a later WithGrid supplies).
func WithSubstrate(s Substrate) Option {
	return func(c *Config) {
		switch s {
		case SubNone:
			c.Backend = ""
			c.BackendOpts = nil
		case SubIO:
			c.Backend = "iocore"
			c.BackendOpts = nil
		case SubCGRA:
			c.Backend = "cgra"
		}
	}
}

// WithGrid sets the CGRA fabric provisioning.
//
// Deprecated: use WithBackend("cgra", backend.Opt("grid", g.Name)).
func WithGrid(g cgra.GridConfig) Option {
	return func(c *Config) {
		c.Backend = "cgra"
		c.BackendOpts = append(c.BackendOpts, backend.Opt("grid", g.Name))
	}
}
